package mpcrete

// End-to-end tests of the command-line tools: each binary is run via
// `go run` against real inputs, exercising flag parsing, file I/O, and
// the full pipeline (program -> trace -> simulation -> analysis).

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runTool invokes `go run ./cmd/<tool> args...` and returns combined
// output.
func runTool(t *testing.T, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "./cmd/" + tool}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v failed: %v\n%s", tool, args, err, out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()

	// 1. ops5run executes a program and records a trace.
	prog := filepath.Join(dir, "count.ops5")
	wmes := filepath.Join(dir, "count.wmes")
	tracePath := filepath.Join(dir, "count.trace")
	if err := os.WriteFile(prog, []byte(`
(p count-up
    (counter ^value <v> ^limit <l>)
    (counter ^value < <l>)
    -->
    (write tick <v>)
    (modify 1 ^value (compute <v> + 1)))
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wmes, []byte("(counter ^value 0 ^limit 3)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runTool(t, "ops5run", "-program", prog, "-wmes", wmes, "-trace", tracePath, "-v")
	for _, want := range []string{"tick 0", "tick 1", "tick 2", "fired 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("ops5run output missing %q:\n%s", want, out)
		}
	}

	// 2. mpcsim replays the recorded trace.
	out = runTool(t, "mpcsim", "-trace", tracePath, "-procs", "4", "-overhead", "run2")
	for _, want := range []string{"speedup:", "makespan:", "network idle"} {
		if !strings.Contains(out, want) {
			t.Errorf("mpcsim output missing %q:\n%s", want, out)
		}
	}
}

func TestCLISectionsAndAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()
	tourney := filepath.Join(dir, "tourney.trace")

	out := runTool(t, "tracegen", "-section", "tourney", "-o", tourney)
	if !strings.Contains(out, "10667L/83R") {
		t.Errorf("tracegen stats missing Table 5-2 counts:\n%s", out)
	}

	out = runTool(t, "traceanalyze", "-trace", tourney, "-tune", "-procs", "8")
	for _, want := range []string{"cross-product", "copy-and-constraint", "speedup at 8 processors"} {
		if !strings.Contains(out, want) {
			t.Errorf("traceanalyze output missing %q:\n%s", want, out)
		}
	}

	// Simulate with the pair mapping and a topology for flag coverage.
	out = runTool(t, "mpcsim", "-trace", tourney, "-procs", "4", "-pairs", "-topology", "mesh", "-perhop", "0.2")
	if !strings.Contains(out, "pairs=true") {
		t.Errorf("mpcsim pairs output:\n%s", out)
	}
}

func TestCLIExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	out := runTool(t, "experiments", "-table", "5-2")
	for _, want := range []string{"rubik", "2388", "6114", "tourney", "10667"} {
		if !strings.Contains(out, want) {
			t.Errorf("experiments table 5-2 missing %q:\n%s", want, out)
		}
	}
	out = runTool(t, "experiments", "-exp", "probmodel")
	if !strings.Contains(out, "P(even)") {
		t.Errorf("probmodel output:\n%s", out)
	}
}
