module mpcrete

go 1.24
