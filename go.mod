module mpcrete

go 1.22
