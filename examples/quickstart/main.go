// Quickstart: define an OPS5 production system, run the
// match-resolve-act interpreter, and inspect the result.
package main

import (
	"fmt"
	"log"
	"os"

	"mpcrete/internal/engine"
	"mpcrete/internal/ops5"
)

const program = `
(literalize task name state)
(literalize worker name)

; Assign any unassigned task to an idle worker.
(p assign
    (task ^name <t> ^state open)
    (worker ^name <w>)
    -(assignment ^task <t>)
    -(assignment ^worker <w>)
    -->
    (make assignment ^task <t> ^worker <w>)
    (modify 1 ^state assigned)
    (write assigned <t> to <w>))

; Halt when no open tasks remain.
(p done
    -(task ^state open)
    (clock ^t <now>)
    -->
    (write all tasks assigned at <now>)
    (halt))
`

func main() {
	prog, err := ops5.ParseProgram(program)
	if err != nil {
		log.Fatal(err)
	}
	e, err := engine.New(prog, engine.Options{Output: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}

	// Initial working memory.
	e.MakeWME("clock", "t", 0)
	for i := 1; i <= 3; i++ {
		e.MakeWME("task", "name", fmt.Sprintf("t%d", i), "state", "open")
		e.MakeWME("worker", "name", fmt.Sprintf("w%d", i))
	}

	fired, err := e.Run(100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfired %d productions, %d wmes in working memory, halted=%v\n",
		fired, e.WMCount(), e.Halted())

	s := e.Network().Stats()
	fmt.Printf("rete network: %d alpha patterns, %d join nodes, %d negative nodes\n",
		s.AlphaPatterns, s.JoinNodes, s.NegativeNodes)
}
