// Speedup: sweep the Rubik characteristic section across machine
// sizes and message-overhead settings — the Fig 5-1 / Fig 5-2
// experiment in miniature — and show the effect of the off-line greedy
// bucket distribution.
package main

import (
	"fmt"
	"log"

	"mpcrete/internal/core"
	"mpcrete/internal/sched"
	"mpcrete/internal/workloads"
)

func main() {
	tr := workloads.Rubik()
	fmt.Printf("%s\n\n", tr)

	fmt.Println("speedup by processors and message overhead (round-robin buckets):")
	fmt.Printf("%5s", "procs")
	for _, ov := range core.OverheadRuns() {
		fmt.Printf("  %8s", ov.Name)
	}
	fmt.Println()
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		fmt.Printf("%5d", p)
		for _, ov := range core.OverheadRuns() {
			cfg := core.NewConfig(p, core.WithOverhead(ov))
			sp, _, _, err := core.Speedup(tr, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %8.2f", sp)
		}
		fmt.Println()
	}

	fmt.Println("\nbucket distribution strategies at 16 processors (zero overheads):")
	base := core.NewConfig(16)
	rr, _, _, err := core.Speedup(tr, base)
	if err != nil {
		log.Fatal(err)
	}
	greedy := base
	greedy.PerCycle = sched.GreedyPerCycle(tr.BucketLoad(false), tr.NBuckets, 16)
	gr, _, _, err := core.Speedup(tr, greedy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  round-robin: %.2f   greedy (oracle): %.2f   improvement: %.2fx\n", rr, gr, gr/rr)
}
