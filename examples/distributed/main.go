// Distributed: run the REAL parallel distributed-Rete runtime — match
// processors as goroutines, tokens as messages, distributed
// termination detection — and check it against the sequential matcher.
package main

import (
	"fmt"
	"log"

	"mpcrete/internal/ops5"
	"mpcrete/internal/parallel"
	"mpcrete/internal/rete"
	"mpcrete/internal/sched"
	"mpcrete/internal/workloads"
)

func main() {
	prog, err := ops5.ParseProgram(workloads.TourneyLike)
	if err != nil {
		log.Fatal(err)
	}

	// Two independent networks: one for the sequential reference, one
	// for the parallel runtime (each owns its own token memories).
	seqNet, err := rete.Compile(prog.Productions)
	if err != nil {
		log.Fatal(err)
	}
	parNet, err := rete.Compile(prog.Productions)
	if err != nil {
		log.Fatal(err)
	}

	seq := rete.NewMatcher(seqNet, rete.MatcherOptions{})
	rt, err := parallel.New(parNet, parallel.Options{
		Workers:  4,
		Detector: parallel.FourCounterDetector, // Mattern's method
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	// Feed both the same wme stream: teams and slots whose pairing
	// production is a pure cross product.
	wmes, err := ops5.ParseWMEs(workloads.TourneyLikeWMEs(10, 8))
	if err != nil {
		log.Fatal(err)
	}
	seqCS, parCS := map[string]bool{}, map[string]bool{}
	for i, w := range wmes {
		w.ID, w.TimeTag = i+1, i+1
		ch := []rete.Change{{Tag: rete.Add, WME: w}}
		for _, ic := range seq.Apply(ch) {
			apply(seqCS, ic)
		}
		for _, ic := range rt.Apply(ch) {
			apply(parCS, ic)
		}
	}

	fmt.Printf("sequential conflict set: %d instantiations\n", len(seqCS))
	fmt.Printf("parallel conflict set:   %d instantiations\n", len(parCS))
	if !equal(seqCS, parCS) {
		log.Fatal("DIVERGENCE between sequential and parallel match")
	}
	fmt.Println("conflict sets identical ✓")

	st := rt.Stats()
	fmt.Println("\nper-worker activations (bucket ownership decides placement):")
	for w, n := range st.Processed {
		fmt.Printf("  worker %d: %6d activations, %6d messages sent\n", w, n, st.MsgsSent[w])
	}
	fmt.Printf("instantiation messages to control: %d\n", st.Insts)

	// Live bucket migration: the cost the paper called prohibitive,
	// measured. Rotate every bucket to the next worker.
	newPart := make(sched.Partition, rete.DefaultNBuckets)
	for b := range newPart {
		newPart[b] = (b + 1) % 4
	}
	mig, err := rt.Repartition(newPart)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull repartition: %d buckets reassigned, %d stored tokens migrated in %d messages\n",
		mig.BucketsMoved, mig.EntriesMoved, mig.Messages)

	// Matching continues correctly on the new layout.
	w := ops5.NewWME("team", "name", "t-late")
	w.ID, w.TimeTag = 10_000, 10_000
	late := rt.Apply([]rete.Change{{Tag: rete.Add, WME: w}})
	fmt.Printf("post-migration match still works: %d new pairings for a late team\n", len(late))
}

func apply(cs map[string]bool, ic rete.InstChange) {
	if ic.Tag == rete.Add {
		cs[ic.Key()] = true
	} else {
		delete(cs, ic.Key())
	}
}

func equal(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
