// Monkey: the classic monkey-and-bananas planning demo with OPS5
// watch tracing, plus the dynamic production-management features —
// a production added live against existing working memory, and
// excision.
package main

import (
	"fmt"
	"log"
	"os"

	"mpcrete/internal/engine"
	"mpcrete/internal/ops5"
	"mpcrete/internal/workloads"
)

func main() {
	prog, err := ops5.ParseProgram(workloads.MonkeyBananas)
	if err != nil {
		log.Fatal(err)
	}
	// Watch level 1 echoes each firing with its time tags, as OPS5's
	// (watch 1) did.
	e, err := engine.New(prog, engine.Options{Output: os.Stdout, Watch: 1})
	if err != nil {
		log.Fatal(err)
	}
	wmes, err := ops5.ParseWMEs(workloads.MonkeyBananasWMEs)
	if err != nil {
		log.Fatal(err)
	}
	e.InsertWMEs(wmes...)

	fired, err := e.Run(50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan complete: %d firings, halted=%v\n", fired, e.Halted())

	// Dynamic production management: add an observer production LIVE.
	// Its private Rete nodes are primed by replaying current working
	// memory, so it matches the monkey's final state immediately —
	// nothing is re-asserted.
	obs, err := ops5.ParseProduction(`
(p observe (monkey ^holds bananas ^at <loc>) --> (write observer: monkey holds bananas at <loc>))`)
	if err != nil {
		log.Fatal(err)
	}
	if err := e.AddProductionLive(obs); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nconflict set after live addition:")
	for _, in := range e.ConflictSet() {
		fmt.Printf("  %s (time tags %v)\n", in.Prod.Name, in.TimeTags)
	}

	// And excise it again: its instantiations leave the conflict set.
	if err := e.ExciseProduction("observe"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after excising the observer: %d instantiations\n", len(e.ConflictSet()))
}
