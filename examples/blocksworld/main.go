// Blocksworld: run the classic blocks-world OPS5 program end to end —
// interpret it, record the hash-table activity trace of its match
// phases, and replay that trace on the simulated message-passing
// computer, exactly the paper's methodology.
package main

import (
	"fmt"
	"log"

	"mpcrete/internal/core"
	"mpcrete/internal/workloads"
)

func main() {
	// 1. Run the real program with a trace recorder attached.
	tr, e, err := workloads.RecordRun("blocks", workloads.BlocksWorld, workloads.BlocksWorldWMEs(8), 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine: fired %d, halted %v, wm size %d\n", e.Fired(), e.Halted(), e.WMCount())
	fmt.Printf("recorded: %s\n\n", tr)

	// 2. Replay the recorded trace on MPC models of increasing size.
	fmt.Println("procs  speedup  makespan(µs)  messages")
	for _, p := range []int{1, 2, 4, 8, 16} {
		cfg := core.NewConfig(p, core.WithOverhead(core.OverheadRuns()[1])) // 5/3 µs
		sp, res, _, err := core.Speedup(tr, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %7.2f  %12.1f  %8d\n", p, sp, res.Makespan.Microseconds(), res.Net.Messages)
	}
}
