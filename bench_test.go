// Package mpcrete's root benchmark suite regenerates every table and
// figure of the paper's evaluation under `go test -bench`. Each
// benchmark reports the headline quantity of its experiment as a
// custom metric (speedup, improvement factor, etc.), so the bench
// output doubles as the numbers tabulated in EXPERIMENTS.md.
package mpcrete

import (
	"bytes"
	"fmt"
	"testing"

	"mpcrete/internal/analysis"

	"mpcrete/internal/core"
	"mpcrete/internal/engine"
	"mpcrete/internal/experiments"
	"mpcrete/internal/obs"
	"mpcrete/internal/ops5"
	"mpcrete/internal/parallel"
	"mpcrete/internal/rete"
	"mpcrete/internal/sched"
	"mpcrete/internal/sweep"
	"mpcrete/internal/trace"
	"mpcrete/internal/workloads"
)

// sectionsForBench caches the generated sections.
var sectionsForBench = map[string]func() *trace.Trace{
	"rubik":   workloads.Rubik,
	"tourney": workloads.Tourney,
	"weaver":  workloads.Weaver,
}

func benchSpeedup(b *testing.B, tr *trace.Trace, cfg core.Config) {
	b.Helper()
	var sp float64
	for i := 0; i < b.N; i++ {
		var err error
		sp, _, _, err = core.Speedup(tr, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sp, "speedup")
}

// BenchmarkFig51ZeroOverhead regenerates Figure 5-1: speedups with
// zero message-passing overheads.
func BenchmarkFig51ZeroOverhead(b *testing.B) {
	for name, gen := range sectionsForBench {
		tr := gen()
		for _, p := range []int{8, 16, 32} {
			b.Run(fmt.Sprintf("%s/p%d", name, p), func(b *testing.B) {
				benchSpeedup(b, tr, core.Config{
					MatchProcs: p,
					Costs:      core.DefaultCosts(),
					Latency:    core.NectarLatency(),
				})
			})
		}
	}
}

// BenchmarkFig52OverheadSweep regenerates Figure 5-2: the impact of
// the Table 5-1 message-processing overheads at 32 processors.
func BenchmarkFig52OverheadSweep(b *testing.B) {
	for name, gen := range sectionsForBench {
		tr := gen()
		for _, ov := range core.OverheadRuns() {
			b.Run(fmt.Sprintf("%s/%s", name, ov.Name), func(b *testing.B) {
				benchSpeedup(b, tr, core.Config{
					MatchProcs: 32,
					Costs:      core.DefaultCosts(),
					Overhead:   ov,
					Latency:    core.NectarLatency(),
				})
			})
		}
	}
}

// BenchmarkTable52Activations regenerates Table 5-2: the activation
// counts of the three sections (reported as metrics).
func BenchmarkTable52Activations(b *testing.B) {
	for name, gen := range sectionsForBench {
		b.Run(name, func(b *testing.B) {
			var s trace.Stats
			for i := 0; i < b.N; i++ {
				s = gen().Stats()
			}
			b.ReportMetric(float64(s.LeftActivations), "left")
			b.ReportMetric(float64(s.RightActivations), "right")
		})
	}
}

// BenchmarkFig54Unsharing regenerates Figure 5-4: Weaver speedups
// with the unsharing transformation (run2 overheads, 32 processors).
func BenchmarkFig54Unsharing(b *testing.B) {
	weaver := workloads.Weaver()
	unshared := trace.SplitFanout(weaver, 10, 4)
	cfg := core.Config{
		MatchProcs: 32,
		Costs:      core.DefaultCosts(),
		Overhead:   core.OverheadRuns()[1],
		Latency:    core.NectarLatency(),
	}
	b.Run("base", func(b *testing.B) { benchSpeedup(b, weaver, cfg) })
	b.Run("unshared", func(b *testing.B) { benchSpeedup(b, unshared, cfg) })
}

// BenchmarkFig55Distribution regenerates Figure 5-5: the left-token
// distribution across 16 processors for Rubik, reporting the max/mean
// imbalance of the first cycle.
func BenchmarkFig55Distribution(b *testing.B) {
	var d experiments.Fig55Data
	for i := 0; i < b.N; i++ {
		var err error
		d, err = experiments.Fig55()
		if err != nil {
			b.Fatal(err)
		}
	}
	max, sum := 0, 0
	for _, v := range d.Cycle1 {
		if v > max {
			max = v
		}
		sum += v
	}
	b.ReportMetric(float64(max)*float64(len(d.Cycle1))/float64(sum), "max/mean")
}

// BenchmarkFig56CopyConstraint regenerates Figure 5-6: Tourney with
// copy-and-constraint on the cross-product node (run2, 32 procs).
func BenchmarkFig56CopyConstraint(b *testing.B) {
	tourney := workloads.Tourney()
	cc := trace.ScatterNode(tourney, workloads.TourneyHotNode, 8)
	cfg := core.Config{
		MatchProcs: 32,
		Costs:      core.DefaultCosts(),
		Overhead:   core.OverheadRuns()[1],
		Latency:    core.NectarLatency(),
	}
	b.Run("base", func(b *testing.B) { benchSpeedup(b, tourney, cfg) })
	b.Run("copy-and-constraint", func(b *testing.B) { benchSpeedup(b, cc, cfg) })
}

// BenchmarkGreedyDistribution regenerates the Section 5.2.2
// distribution-strategy comparison (the paper's ~1.4x greedy gain).
func BenchmarkGreedyDistribution(b *testing.B) {
	for name, gen := range sectionsForBench {
		tr := gen()
		base := core.Config{MatchProcs: 16, Costs: core.DefaultCosts(), Latency: core.NectarLatency()}
		b.Run(name+"/roundrobin", func(b *testing.B) { benchSpeedup(b, tr, base) })
		b.Run(name+"/random", func(b *testing.B) {
			cfg := base
			cfg.Partition = sched.Random(tr.NBuckets, 16, 12345)
			benchSpeedup(b, tr, cfg)
		})
		b.Run(name+"/greedy", func(b *testing.B) {
			cfg := base
			cfg.PerCycle = sched.GreedyPerCycle(tr.BucketLoad(false), tr.NBuckets, 16)
			benchSpeedup(b, tr, cfg)
		})
	}
}

// BenchmarkProbModel regenerates the Section 5.2.2 balls-in-bins
// analysis, reporting the speedup bound at P=16.
func BenchmarkProbModel(b *testing.B) {
	m := sched.Model{Buckets: 512, Active: 64, Procs: 16}
	var r sched.Result
	for i := 0; i < b.N; i++ {
		r = m.MonteCarlo(2000, 7)
	}
	b.ReportMetric(r.SpeedupBound, "bound")
	b.ReportMetric(m.PEven(), "P(even)")
}

// BenchmarkGenerations regenerates the Section 1 motivation: the same
// mapping on first-generation vs new-generation MPC hardware.
func BenchmarkGenerations(b *testing.B) {
	for i, m := range experiments.Machines() {
		m := m
		_ = i
		b.Run(m.Name, func(b *testing.B) {
			benchSpeedup(b, workloads.Rubik(), core.Config{
				MatchProcs: 32,
				Costs:      core.DefaultCosts(),
				Overhead:   m.Overhead,
				Latency:    m.Latency,
				Topology:   m.Topology,
				PerHop:     m.PerHop,
			})
		})
	}
}

// Ablation benchmarks: design choices called out in DESIGN.md.

// BenchmarkAblationRootGranularity compares the paper's grouped,
// broadcast-and-filter root distribution against centralized constant
// tests with per-root messages.
func BenchmarkAblationRootGranularity(b *testing.B) {
	tr := workloads.Rubik()
	cfg := core.Config{
		MatchProcs: 16,
		Costs:      core.DefaultCosts(),
		Overhead:   core.OverheadRuns()[2],
		Latency:    core.NectarLatency(),
	}
	b.Run("grouped", func(b *testing.B) { benchSpeedup(b, tr, cfg) })
	b.Run("central", func(b *testing.B) {
		c := cfg
		c.CentralRoots = true
		benchSpeedup(b, tr, c)
	})
}

// BenchmarkAblationBroadcast compares hardware and software broadcast
// of the cycle packet.
func BenchmarkAblationBroadcast(b *testing.B) {
	tr := workloads.Weaver()
	cfg := core.Config{
		MatchProcs: 32,
		Costs:      core.DefaultCosts(),
		Overhead:   core.OverheadRuns()[3],
		Latency:    core.NectarLatency(),
	}
	b.Run("hardware", func(b *testing.B) { benchSpeedup(b, tr, cfg) })
	b.Run("software", func(b *testing.B) {
		c := cfg
		c.SoftwareBroadcast = true
		benchSpeedup(b, tr, c)
	})
}

// BenchmarkAblationProcessorPairs compares the Fig 3-3 single-
// processor mapping with the Fig 3-2 processor-pair mapping at equal
// partition count (the pair machine uses twice the processors).
func BenchmarkAblationProcessorPairs(b *testing.B) {
	tr := workloads.Rubik()
	cfg := core.Config{
		MatchProcs: 16,
		Costs:      core.DefaultCosts(),
		Overhead:   core.OverheadRuns()[1],
		Latency:    core.NectarLatency(),
	}
	b.Run("single", func(b *testing.B) { benchSpeedup(b, tr, cfg) })
	b.Run("pairs", func(b *testing.B) {
		c := cfg
		c.Pairs = true
		benchSpeedup(b, tr, c)
	})
}

// BenchmarkAblationHashedMemories compares hashed token memories
// against the classic linear memories (NBuckets=1) in the sequential
// matcher — the data-structure choice the whole mapping rests on. The
// workload is a discriminating equijoin over large memories, where the
// paper cites up to a 10x reduction in token comparisons; a
// cross-product join would show no difference by construction.
func BenchmarkAblationHashedMemories(b *testing.B) {
	prog, err := ops5.ParseProgram(`
(p link (node ^id <v>) (edge ^from <v>) --> (halt))
`)
	if err != nil {
		b.Fatal(err)
	}
	const n = 600
	for _, bench := range []struct {
		name     string
		nbuckets int
	}{{"hashed1024", 1024}, {"linear", 1}} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				net, err := rete.Compile(prog.Productions)
				if err != nil {
					b.Fatal(err)
				}
				m := rete.NewMatcher(net, rete.MatcherOptions{NBuckets: bench.nbuckets})
				id := 1
				add := func(w *ops5.WME) {
					w.ID, w.TimeTag = id, id
					id++
					m.Apply([]rete.Change{{Tag: rete.Add, WME: w}})
				}
				for j := 0; j < n; j++ {
					add(ops5.NewWME("node", "id", j))
				}
				for j := 0; j < n; j++ {
					add(ops5.NewWME("edge", "from", j, "to", (j+1)%n))
				}
			}
		})
	}
}

// BenchmarkAblationSharing compares shared and unshared network
// compilation for the sequential engine.
func BenchmarkAblationSharing(b *testing.B) {
	for _, bench := range []struct {
		name    string
		disable bool
	}{{"shared", false}, {"unshared", true}} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prog, err := ops5.ParseProgram(workloads.BlocksWorld)
				if err != nil {
					b.Fatal(err)
				}
				e, err := engine.New(prog, engine.Options{DisableSharing: bench.disable})
				if err != nil {
					b.Fatal(err)
				}
				wmes, err := ops5.ParseWMEs(workloads.BlocksWorldWMEs(6))
				if err != nil {
					b.Fatal(err)
				}
				e.InsertWMEs(wmes...)
				if _, err := e.Run(200); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSequentialEngine measures interpreter throughput on the
// counter chain (MRA cycles per second).
func BenchmarkSequentialEngine(b *testing.B) {
	prog, err := ops5.ParseProgram(workloads.CounterChain)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		e, err := engine.New(prog, engine.Options{})
		if err != nil {
			b.Fatal(err)
		}
		e.MakeWME("counter", "value", 0, "limit", 100)
		if _, err := e.Run(200); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelRuntime measures the real goroutine runtime against
// the sequential matcher on a cross-product burst.
func BenchmarkParallelRuntime(b *testing.B) {
	prog, err := ops5.ParseProgram(workloads.TourneyLike)
	if err != nil {
		b.Fatal(err)
	}
	mkChanges := func() []rete.Change {
		wmes, err := ops5.ParseWMEs(workloads.TourneyLikeWMEs(30, 25))
		if err != nil {
			b.Fatal(err)
		}
		changes := make([]rete.Change, len(wmes))
		for i, w := range wmes {
			w.ID, w.TimeTag = i+1, i+1
			changes[i] = rete.Change{Tag: rete.Add, WME: w}
		}
		return changes
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			net, err := rete.Compile(prog.Productions)
			if err != nil {
				b.Fatal(err)
			}
			m := rete.NewMatcher(net, rete.MatcherOptions{})
			m.Apply(mkChanges())
		}
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("parallel%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				net, err := rete.Compile(prog.Productions)
				if err != nil {
					b.Fatal(err)
				}
				rt, err := parallel.New(net, parallel.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				rt.Apply(mkChanges())
				rt.Close()
			}
		})
	}
}

// BenchmarkRecorderOverhead compares a simulation run with no
// observability attached (the nil-recorder fast path — every obs
// instrument is a no-op on a nil receiver) against one recording a
// full timeline and metrics registry. The "off" case is the guardrail:
// instrumenting the simulator hot paths must stay essentially free
// (within ~2%) when nothing is attached.
func BenchmarkRecorderOverhead(b *testing.B) {
	tr := workloads.Rubik()
	base := core.Config{
		MatchProcs: 16,
		Costs:      core.DefaultCosts(),
		Overhead:   core.OverheadRuns()[1],
		Latency:    core.NectarLatency(),
	}
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Simulate(tr, base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recording", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := base
			cfg.Recorder = obs.NewRecorder()
			cfg.Metrics = obs.NewRegistry()
			if _, err := core.Simulate(tr, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Infrastructure benchmarks: the codecs, the analyzer, and live
// bucket migration.

// BenchmarkTraceCodec measures trace serialization round-trips on the
// largest section.
func BenchmarkTraceCodec(b *testing.B) {
	tr := workloads.Tourney()
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := trace.Encode(&buf, tr); err != nil {
			b.Fatal(err)
		}
		if _, err := trace.Decode(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buf.Len()), "bytes")
}

// BenchmarkNetworkCodec measures compiled-network serialization on the
// configurator program.
func BenchmarkNetworkCodec(b *testing.B) {
	prog, err := ops5.ParseProgram(workloads.Configurator)
	if err != nil {
		b.Fatal(err)
	}
	net, err := rete.Compile(prog.Productions)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := rete.EncodeNetwork(&buf, net); err != nil {
			b.Fatal(err)
		}
		if _, err := rete.DecodeNetwork(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buf.Len()), "bytes")
}

// BenchmarkAnalysis measures the Section 5.2 analyzer over the heavy
// Tourney trace.
func BenchmarkAnalysis(b *testing.B) {
	tr := workloads.Tourney()
	for i := 0; i < b.N; i++ {
		if r := analysis.Analyze(tr, analysis.Options{}); len(r.HotNodes) == 0 {
			b.Fatal("analysis lost the hot node")
		}
	}
}

// BenchmarkRepartition measures live bucket migration in the goroutine
// runtime — the cost the paper declared prohibitive.
func BenchmarkRepartition(b *testing.B) {
	prog, err := ops5.ParseProgram(workloads.TourneyLike)
	if err != nil {
		b.Fatal(err)
	}
	net, err := rete.Compile(prog.Productions)
	if err != nil {
		b.Fatal(err)
	}
	rt, err := parallel.New(net, parallel.Options{Workers: 4, NBuckets: 256})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	wmes, err := ops5.ParseWMEs(workloads.TourneyLikeWMEs(20, 16))
	if err != nil {
		b.Fatal(err)
	}
	var changes []rete.Change
	for i, w := range wmes {
		w.ID, w.TimeTag = i+1, i+1
		changes = append(changes, rete.Change{Tag: rete.Add, WME: w})
	}
	rt.Apply(changes)
	parts := []sched.Partition{
		sched.Random(256, 4, 1),
		sched.Random(256, 4, 2),
	}
	b.ResetTimer()
	var moved int
	for i := 0; i < b.N; i++ {
		st, err := rt.Repartition(parts[i%2])
		if err != nil {
			b.Fatal(err)
		}
		moved = st.EntriesMoved
	}
	b.ReportMetric(float64(moved), "entries")
}

// BenchmarkQueens measures the sequential engine on the backtracking
// n-queens search (the heaviest bundled OPS5 program).
func BenchmarkQueens(b *testing.B) {
	prog, err := ops5.ParseProgram(workloads.Queens)
	if err != nil {
		b.Fatal(err)
	}
	wmeSrc := workloads.QueensWMEs(6)
	for i := 0; i < b.N; i++ {
		e, err := engine.New(prog, engine.Options{})
		if err != nil {
			b.Fatal(err)
		}
		wmes, err := ops5.ParseWMEs(wmeSrc)
		if err != nil {
			b.Fatal(err)
		}
		e.InsertWMEs(wmes...)
		fired, err := e.Run(50000)
		if err != nil {
			b.Fatal(err)
		}
		if !e.Halted() {
			b.Fatalf("did not halt after %d firings", fired)
		}
	}
}

// BenchmarkSweepParallelVsSequential compares the concurrent sweep
// engine against an in-order reference run of the same grid (all three
// sections x 5 processor counts under run2 overheads, with baselines).
// A fresh engine per iteration keeps the memoization cache from
// leaking across iterations, so "parallel" measures one cold sweep:
// worker-pool concurrency plus the shared-baseline cache. On a
// multi-core host the parallel case is expected to run >=2x faster;
// on a single core the cache alone still wins.
func BenchmarkSweepParallelVsSequential(b *testing.B) {
	spec := sweep.Spec{
		Name: "bench",
		Traces: []*trace.Trace{
			workloads.Rubik(), workloads.Tourney(), workloads.Weaver(),
		},
		Procs:     []int{2, 4, 8, 16, 32},
		Overheads: core.OverheadRuns()[1:2],
		Baseline:  true,
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sweep.New().RunSequential(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sweep.New().Run(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkContinuum regenerates the Section 6 continuum-of-mappings
// comparison at 32 processors.
func BenchmarkContinuum(b *testing.B) {
	tr := workloads.Rubik()
	base := core.Config{
		MatchProcs: 32,
		Costs:      core.DefaultCosts(),
		Overhead:   core.OverheadRuns()[1],
		Latency:    core.NectarLatency(),
	}
	b.Run("replicated", func(b *testing.B) {
		cfg := base
		cfg.Replicated = true
		benchSpeedup(b, tr, cfg)
	})
	b.Run("distributed", func(b *testing.B) { benchSpeedup(b, tr, base) })
	b.Run("master-copy", func(b *testing.B) {
		cfg := base
		cfg.Partition = make(sched.Partition, tr.NBuckets)
		benchSpeedup(b, tr, cfg)
	})
}
