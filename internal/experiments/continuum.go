package experiments

import (
	"fmt"
	"io"

	"mpcrete/internal/core"
	"mpcrete/internal/sched"
	"mpcrete/internal/stats"
	"mpcrete/internal/sweep"
	"mpcrete/internal/trace"
	"mpcrete/internal/workloads"
)

// Continuum reproduces the Section 6 closing discussion: the paper
// places its mapping "near the center of a continuum" whose extremes
// are (a) the hash tables replicated on every processor — copies must
// be kept consistent by continuous updates — and (b) a single master
// copy on one processor, with every other processor contending for
// it. This experiment implements all three points and compares them
// on a section.
type ContinuumResult struct {
	Section string
	Series  []SpeedupSeries // replicated, distributed, master
}

// Continuum sweeps the three mappings over the processor counts.
func Continuum(section string) (*ContinuumResult, error) {
	gen := map[string]func() *trace.Trace{
		"rubik":   workloads.Rubik,
		"tourney": workloads.Tourney,
		"weaver":  workloads.Weaver,
	}[section]
	if gen == nil {
		return nil, fmt.Errorf("experiments: unknown section %q", section)
	}
	tr := gen()

	res, err := sweep.Run(sweep.Spec{
		Name:      "continuum/" + section,
		Traces:    []*trace.Trace{tr},
		Procs:     ProcCounts,
		Overheads: core.OverheadRuns()[1:2],
		Variants: []sweep.Variant{
			{Name: "replicated", Mutate: func(c *core.Config) { c.Replicated = true }},
			{Name: "distributed"},
			{Name: "master-copy", Mutate: func(c *core.Config) {
				c.Partition = make(sched.Partition, tr.NBuckets) // everything on slot 0
			}},
		},
		Baseline: true,
	})
	if err != nil {
		return nil, err
	}
	series, err := seriesFromGroups(res, func(k sweep.Key) string { return k.Variant })
	if err != nil {
		return nil, err
	}
	return &ContinuumResult{Section: section, Series: series}, nil
}

// RenderContinuum prints the comparison.
func RenderContinuum(w io.Writer, r *ContinuumResult) {
	fmt.Fprintf(w, "== Sec 6 continuum of mappings: %s (run2 overheads) ==\n", r.Section)
	header := []string{"procs"}
	for _, s := range r.Series {
		header = append(header, s.Label)
	}
	rows := [][]string{header}
	for i, p := range ProcCounts {
		row := []string{fmt.Sprintf("%d", p)}
		for _, s := range r.Series {
			row = append(row, fmt.Sprintf("%.2f", s.Points[i].Speedup))
		}
		rows = append(rows, row)
	}
	stats.Table(w, rows)
	fmt.Fprintln(w)
}
