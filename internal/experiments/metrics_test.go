package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunMetricsDeterministic is the acceptance check that a seeded
// run's metrics CSV is byte-for-byte identical across invocations.
func TestRunMetricsDeterministic(t *testing.T) {
	export := func() string {
		reg, _, err := SectionRunMetrics("rubik", 16)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := reg.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := export(), export()
	if a != b {
		t.Error("metrics CSV differs between two identical runs")
	}
	for _, want := range []string{"series,core/per_cycle,", "counter,sim/messages,", "histogram,trace/tokens_per_bucket,"} {
		if !strings.Contains(a, want) {
			t.Errorf("metrics CSV missing %q", want)
		}
	}
}

func TestRenderPerCycle(t *testing.T) {
	reg, res, err := SectionRunMetrics("weaver", 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderPerCycle(&buf, reg)
	lines := strings.Count(buf.String(), "\n")
	if lines != len(res.CycleTimes) {
		t.Errorf("rendered %d lines for %d cycles:\n%s", lines, len(res.CycleTimes), buf.String())
	}
	if !strings.Contains(buf.String(), "cycle 1:") {
		t.Errorf("missing cycle 1 line:\n%s", buf.String())
	}
}

func TestSectionRunMetricsUnknown(t *testing.T) {
	if _, _, err := SectionRunMetrics("nope", 4); err == nil {
		t.Error("expected error for unknown section")
	}
}
