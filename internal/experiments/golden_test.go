package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden experiment output")

// renderAll produces the complete experiment suite output, as
// cmd/experiments -all does. Every generator and Monte-Carlo run is
// seeded, so the output is byte-for-byte reproducible.
func renderAll(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	RenderTable51(&buf)
	RenderTable52(&buf)

	fig51, err := Fig51()
	if err != nil {
		t.Fatal(err)
	}
	RenderSeries(&buf, "Fig 5-1: speedups with zero message-passing overheads", fig51)

	fig52, err := Fig52()
	if err != nil {
		t.Fatal(err)
	}
	RenderFig52(&buf, fig52)

	fig54, err := Fig54()
	if err != nil {
		t.Fatal(err)
	}
	RenderSeries(&buf, "Fig 5-4: Weaver speedups with unsharing (run2 overheads)", fig54)

	fig55, err := Fig55()
	if err != nil {
		t.Fatal(err)
	}
	RenderFig55(&buf, fig55)

	fig56, err := Fig56()
	if err != nil {
		t.Fatal(err)
	}
	RenderSeries(&buf, "Fig 5-6: Tourney speedups with copy-and-constraint (run2 overheads)", fig56)

	greedy, err := GreedyExperiment(16)
	if err != nil {
		t.Fatal(err)
	}
	RenderGreedy(&buf, greedy)

	RenderProbModel(&buf, ProbModel())

	gens, err := Generations()
	if err != nil {
		t.Fatal(err)
	}
	RenderGenerations(&buf, gens)

	abl, err := Ablations(16)
	if err != nil {
		t.Fatal(err)
	}
	RenderAblations(&buf, abl, 16)

	ad, err := AdaptiveExperiment(16)
	if err != nil {
		t.Fatal(err)
	}
	RenderAdaptive(&buf, ad)
	return buf.Bytes()
}

// TestGoldenOutput pins the full experiment suite byte-for-byte.
// Regenerate with: go test ./internal/experiments -run TestGolden -update
func TestGoldenOutput(t *testing.T) {
	got := renderAll(t)
	path := filepath.Join("testdata", "experiments_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %d bytes", len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		gl, wl := splitLines(got), splitLines(want)
		for i := 0; i < len(gl) || i < len(wl); i++ {
			g, w := "", ""
			if i < len(gl) {
				g = gl[i]
			}
			if i < len(wl) {
				w = wl[i]
			}
			if g != w {
				t.Fatalf("experiment output diverged at line %d:\n got: %q\nwant: %q\n(run with -update after intentional changes)", i+1, g, w)
			}
		}
		t.Fatal("outputs differ in length only")
	}
}

func splitLines(b []byte) []string {
	var out []string
	start := 0
	for i, c := range b {
		if c == '\n' {
			out = append(out, string(b[start:i]))
			start = i + 1
		}
	}
	if start < len(b) {
		out = append(out, string(b[start:]))
	}
	return out
}
