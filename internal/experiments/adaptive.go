package experiments

import (
	"fmt"
	"io"

	"mpcrete/internal/core"
	"mpcrete/internal/sched"
	"mpcrete/internal/sweep"
	"mpcrete/internal/workloads"
)

// AdaptiveResult is one row of the adaptive-vs-static ablation: the
// speedups of the three static assignments and the online adaptive
// repartitioner on one skewed section, under the run-2 overheads (so
// the migration messages are charged at measured cost).
type AdaptiveResult struct {
	Section    string
	Procs      int
	RoundRobin float64 // speedup, static count-based
	Random     float64 // speedup, static randomized
	Aggregate  float64 // speedup, static greedy over aggregate load
	Adaptive   float64 // speedup, online adaptive repartitioning
	// BestStatic is max(RoundRobin, Random, Aggregate); Improvement
	// is Adaptive / BestStatic. The paper's Section 5.2.2 judged
	// migration "too costly" without measuring it — Improvement > 1
	// on drifting skew is the measured counterpoint.
	BestStatic  float64
	Improvement float64
	// Migrations / BucketsMoved are the adaptive run's online
	// repartitioning acts (cycle boundaries that moved >= 1 bucket,
	// and the total buckets moved).
	Migrations   int
	BucketsMoved int
}

// AdaptiveExperiment runs the adaptive-vs-static comparison on the
// skewed sections: one sweep with a strategy axis, four cells per
// section. The adaptive strategy starts from the same round-robin
// assignment the static default uses and is allowed only information
// a live runtime has (completed cycles' activation counters), so the
// comparison is online-vs-offline, not oracle-vs-offline.
func AdaptiveExperiment(procs int) ([]AdaptiveResult, error) {
	res, err := sweep.Run(sweep.Spec{
		Name:      "adaptive",
		Traces:    workloads.SkewedSections(),
		Procs:     []int{procs},
		Overheads: core.OverheadRuns()[1:2],
		Strategies: []sched.Strategy{
			sched.RoundRobinStrategy{},
			sched.RandomStrategy{Seed: 12345},
			sched.GreedyAggregateStrategy{},
			sched.AdaptiveStrategy{},
		},
		Baseline: true,
	})
	if err != nil {
		return nil, err
	}
	if err := res.Err(); err != nil {
		return nil, err
	}
	var out []AdaptiveResult
	for i := 0; i+3 < len(res.Cells); i += 4 {
		rr, rnd, agg, ad := res.Cells[i], res.Cells[i+1], res.Cells[i+2], res.Cells[i+3]
		best := rr.Speedup
		if rnd.Speedup > best {
			best = rnd.Speedup
		}
		if agg.Speedup > best {
			best = agg.Speedup
		}
		row := AdaptiveResult{
			Section:     rr.Key.Trace,
			Procs:       procs,
			RoundRobin:  rr.Speedup,
			Random:      rnd.Speedup,
			Aggregate:   agg.Speedup,
			Adaptive:    ad.Speedup,
			BestStatic:  best,
			Improvement: ad.Speedup / best,
		}
		if ad.Result != nil {
			row.Migrations = ad.Result.Migrations
			row.BucketsMoved = ad.Result.BucketsMoved
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderAdaptive prints the adaptive-vs-static comparison.
func RenderAdaptive(w io.Writer, rs []AdaptiveResult) {
	fmt.Fprintln(w, "== Adaptive repartitioning vs static assignment (skewed sections, run2 overheads) ==")
	fmt.Fprintf(w, "%-10s %6s %8s %8s %8s %8s %8s %6s %7s\n",
		"section", "procs", "rrobin", "random", "aggr", "adapt", "vs-best", "migs", "moved")
	for _, r := range rs {
		fmt.Fprintf(w, "%-10s %6d %8.2f %8.2f %8.2f %8.2f %7.2fx %6d %7d\n",
			r.Section, r.Procs, r.RoundRobin, r.Random, r.Aggregate, r.Adaptive,
			r.Improvement, r.Migrations, r.BucketsMoved)
	}
	fmt.Fprintln(w)
}
