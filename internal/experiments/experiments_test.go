package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestFig51Shapes(t *testing.T) {
	series, err := Fig51()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	byName := map[string]SpeedupSeries{}
	for _, s := range series {
		byName[s.Label] = s
		// Speedup at P=1 must be ~1 and grow from there.
		if sp := s.Points[0].Speedup; sp < 0.99 || sp > 1.01 {
			t.Errorf("%s: speedup at P=1 = %v", s.Label, sp)
		}
		last := s.Points[len(s.Points)-1].Speedup
		if last < s.Points[0].Speedup {
			t.Errorf("%s: no speedup at all (%v)", s.Label, last)
		}
	}
	// Paper shape: Rubik has the largest overall speedup; the three
	// sections reach the 8-12x band the paper reports (we accept a
	// broad band: > 5x for rubik).
	best := func(s SpeedupSeries) float64 {
		b := 0.0
		for _, p := range s.Points {
			if p.Speedup > b {
				b = p.Speedup
			}
		}
		return b
	}
	rubik, tourney, weaver := best(byName["rubik"]), best(byName["tourney"]), best(byName["weaver"])
	if rubik <= tourney || rubik <= weaver {
		t.Errorf("rubik should lead: rubik=%.1f tourney=%.1f weaver=%.1f", rubik, tourney, weaver)
	}
	if rubik < 5 {
		t.Errorf("rubik best speedup %.1f, want substantial (paper: 8-12)", rubik)
	}
	// Tourney is dominated by a single-bucket cross product: it must
	// show the worst scalability of the three.
	if tourney >= weaver {
		t.Errorf("tourney (cross-product) should trail weaver: %.1f vs %.1f", tourney, weaver)
	}
}

func TestFig52OverheadOrdering(t *testing.T) {
	data, err := Fig52()
	if err != nil {
		t.Fatal(err)
	}
	for name, series := range data {
		if len(series) != 4 {
			t.Fatalf("%s: %d overhead series", name, len(series))
		}
		// At every processor count, higher overhead must not raise the
		// speedup.
		for pi := range ProcCounts {
			for oi := 1; oi < len(series); oi++ {
				lo := series[oi-1].Points[pi].Speedup
				hi := series[oi].Points[pi].Speedup
				if hi > lo*1.001 {
					t.Errorf("%s: overhead run %d beats run %d at P=%d (%.2f > %.2f)",
						name, oi, oi-1, ProcCounts[pi], hi, lo)
				}
			}
		}
	}
	// Loss ordering at P=32 (paper: Rubik ~30%, Tourney ~45%, Weaver
	// up to 50%): rubik must retain the most speedup under run4.
	retained := func(name string) float64 {
		s := data[name]
		pi := indexOfProc(32)
		return s[3].Points[pi].Speedup / s[0].Points[pi].Speedup
	}
	rr, rt, rw := retained("rubik"), retained("tourney"), retained("weaver")
	if rr <= rt || rr <= rw {
		t.Errorf("rubik should lose least to overheads: rubik=%.2f tourney=%.2f weaver=%.2f", rr, rt, rw)
	}
}

func TestTable52MatchesPaper(t *testing.T) {
	rows := Table52()
	want := map[string][3]int{
		"rubik":   {2388, 6114, 8502},
		"tourney": {10667, 83, 10750},
		"weaver":  {338, 78, 416},
	}
	for _, r := range rows {
		w, ok := want[r.Program]
		if !ok {
			t.Errorf("unexpected program %s", r.Program)
			continue
		}
		if r.Left != w[0] || r.Right != w[1] || r.Total != w[2] {
			t.Errorf("%s: %d/%d/%d, want %v", r.Program, r.Left, r.Right, r.Total, w)
		}
	}
}

func TestFig54UnsharingImproves(t *testing.T) {
	series, err := Fig54()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatal("want base + unshared")
	}
	// At larger machines the unshared trace must beat the base
	// substantially (paper: "a substantial improvement").
	pi := indexOfProc(32)
	base, unshared := series[0].Points[pi].Speedup, series[1].Points[pi].Speedup
	if unshared <= base*1.15 {
		t.Errorf("unsharing: %.2f -> %.2f, want > 15%% improvement", base, unshared)
	}
}

func TestFig55Alternation(t *testing.T) {
	d, err := Fig55()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cycle1) != 16 || len(d.Cycle2) != 16 {
		t.Fatalf("proc counts = %d/%d", len(d.Cycle1), len(d.Cycle2))
	}
	// Uneven distribution within each cycle...
	if max, mean := maxOf(d.Cycle1), meanOf(d.Cycle1); float64(max) < 1.5*mean {
		t.Errorf("cycle 1 not skewed: max=%d mean=%.1f", max, mean)
	}
	// ...and busy/idle alternation across cycles: processors busy in
	// cycle 1 are (mostly) different from those busy in cycle 2.
	flips := 0
	for i := range d.Cycle1 {
		busy1, busy2 := d.Cycle1[i] > 0, d.Cycle2[i] > 0
		if busy1 != busy2 {
			flips++
		}
	}
	if flips < 4 {
		t.Errorf("only %d processors flip busy/idle between cycles", flips)
	}
}

func TestFig56CopyConstraintImproves(t *testing.T) {
	series, err := Fig56()
	if err != nil {
		t.Fatal(err)
	}
	pi := indexOfProc(32)
	base, cc := series[0].Points[pi].Speedup, series[1].Points[pi].Speedup
	if cc <= base {
		t.Errorf("copy-and-constraint: %.2f -> %.2f, want improvement", base, cc)
	}
}

func TestGreedyExperimentImprovement(t *testing.T) {
	rs, err := GreedyExperiment(16)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]GreedyResult{}
	for _, r := range rs {
		byName[r.Section] = r
		if r.Greedy < r.RoundRobin*0.99 {
			t.Errorf("%s: greedy %.2f worse than round-robin %.2f", r.Section, r.Greedy, r.RoundRobin)
		}
	}
	// Rubik's clustered left activity is where the paper's ~1.4x
	// showed up; require a visible gain there.
	if r := byName["rubik"]; r.Improvement < 1.1 {
		t.Errorf("rubik greedy improvement = %.2fx, want > 1.1x (paper: ~1.4x)", r.Improvement)
	}
}

func TestProbModelConclusions(t *testing.T) {
	rs := ProbModel()
	if len(rs) != 5 {
		t.Fatalf("rows = %d", len(rs))
	}
	for _, r := range rs {
		if r.PEven >= 0.01 {
			t.Errorf("%+v: P(even) = %v, want < 1%%", r.Model, r.PEven)
		}
	}
	// Efficiency falls with processors (rows 0,1,2 share A=64).
	if !(rs[0].Efficiency > rs[1].Efficiency && rs[1].Efficiency > rs[2].Efficiency) {
		t.Errorf("efficiency should fall with procs: %v %v %v", rs[0].Efficiency, rs[1].Efficiency, rs[2].Efficiency)
	}
	// More active buckets -> better efficiency (rows 3 vs 4, P=16).
	if rs[4].Efficiency <= rs[3].Efficiency {
		t.Errorf("dense should beat sparse: %v vs %v", rs[4].Efficiency, rs[3].Efficiency)
	}
}

func TestAblations(t *testing.T) {
	rs, err := Ablations(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 12 {
		t.Fatalf("rows = %d, want 4 variants x 3 sections", len(rs))
	}
	get := func(name, section string) float64 {
		for _, r := range rs {
			if r.Name == name && r.Section == section {
				return r.Speedup
			}
		}
		t.Fatalf("missing %s/%s", name, section)
		return 0
	}
	// Grouped roots must beat centralized alpha on the right-heavy
	// Rubik section (thousands of per-root messages otherwise).
	if g, c := get("grouped+hw-bcast", "rubik"), get("central-roots", "rubik"); g <= c {
		t.Errorf("grouped %.2f should beat central %.2f on rubik", g, c)
	}
}

func TestRenderers(t *testing.T) {
	var buf bytes.Buffer
	RenderTable51(&buf)
	RenderTable52(&buf)
	series, err := Fig51()
	if err != nil {
		t.Fatal(err)
	}
	RenderSeries(&buf, "Fig 5-1", series)
	d, err := Fig55()
	if err != nil {
		t.Fatal(err)
	}
	RenderFig55(&buf, d)
	out := buf.String()
	for _, want := range []string{"Table 5-1", "Table 5-2", "Fig 5-1", "Fig 5-5", "rubik", "tourney", "weaver"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func maxOf(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func meanOf(xs []int) float64 {
	s := 0
	for _, x := range xs {
		s += x
	}
	return float64(s) / float64(len(xs))
}

// TestDipsPhenomenon reproduces the Section 5.1 remark: "there are
// dips in the speedup graphs showing a decrease in the speedup with
// an increase in the number of processors".
func TestDipsPhenomenon(t *testing.T) {
	dips, err := Dips("rubik", 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(dips) == 0 {
		t.Fatal("no dips found on rubik; the partition-imbalance effect should produce some")
	}
	for _, d := range dips {
		if d.Speedup >= d.Prev {
			t.Errorf("bogus dip %+v", d)
		}
	}
	if _, err := Dips("nope", 4); err == nil {
		t.Error("unknown section accepted")
	}
}

// TestContinuum reproduces the Section 6 closing argument: the
// distributed mapping sits between two losing extremes — replicated
// tables (every copy pays every store) and a single master copy
// (everything serializes on one processor).
func TestContinuum(t *testing.T) {
	r, err := Continuum("rubik")
	if err != nil {
		t.Fatal(err)
	}
	pi := indexOfProc(32)
	replicated := r.Series[0].Points[pi].Speedup
	distributed := r.Series[1].Points[pi].Speedup
	master := r.Series[2].Points[pi].Speedup
	if !(distributed > replicated && distributed > master) {
		t.Errorf("distributed %.2f should beat replicated %.2f and master %.2f",
			distributed, replicated, master)
	}
	// The master copy cannot exceed ~1 (all match work on one
	// processor, minus the constant-test duplication).
	if master > 1.5 {
		t.Errorf("master-copy speedup = %.2f, want ~1", master)
	}
	// Replication caps hard: every processor pays every store, so the
	// speedup bound is total/storework regardless of P.
	if replicated > distributed/1.5 {
		t.Errorf("replicated %.2f should trail distributed %.2f clearly", replicated, distributed)
	}
	if _, err := Continuum("nope"); err == nil {
		t.Error("unknown section accepted")
	}
}
