package experiments

import (
	"fmt"
	"io"

	"mpcrete/internal/ops5"
	"mpcrete/internal/rete"
)

// RenderFig53 demonstrates the Fig 5-3 unsharing transformation on a
// concrete network: two productions sharing a two-input node are
// unshared, and the before/after structure is shown (node counts and
// the DOT rendering of each network).
func RenderFig53(w io.Writer) error {
	srcs := []string{
		`(p o1 (i1 ^x <v>) (i2 ^x <v>) (o ^k 1) --> (halt))`,
		`(p o2 (i1 ^x <v>) (i2 ^x <v>) (o ^k 2) --> (halt))`,
	}
	var prods []*ops5.Production
	for _, src := range srcs {
		p, err := ops5.ParseProduction(src)
		if err != nil {
			return err
		}
		prods = append(prods, p)
	}
	net, err := rete.Compile(prods)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Fig 5-3: unsharing the shared (i1,i2) two-input node ==")
	fmt.Fprintf(w, "before: %+v\n", net.Stats())

	var shared *rete.Node
	for _, n := range net.Nodes {
		if n.IsTwoInput() && len(n.Succs) > 1 {
			shared = n
		}
	}
	copies, err := net.Unshare(shared)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "after:  %+v (node %d split into %d single-successor copies)\n",
		net.Stats(), shared.ID, len(copies))
	fmt.Fprintln(w, "\nDOT rendering of the unshared network:")
	if err := rete.WriteDOT(w, net); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}
