package experiments

import (
	"fmt"
	"io"

	"mpcrete/internal/core"
	"mpcrete/internal/simnet"
	"mpcrete/internal/stats"
	"mpcrete/internal/sweep"
	"mpcrete/internal/trace"
	"mpcrete/internal/workloads"
)

// Machine describes one generation of message-passing computer for the
// Section 1 motivation experiment: the paper argues that first-
// generation MPCs (Cosmic-Cube class, ~2 ms store-and-forward network
// latency, ~300 µs message handling) could not exploit the ~100-
// instruction granularity of production-system match, while the new
// generation (wormhole routing, 0.5 µs latency, single-digit-µs
// handling) can.
type Machine struct {
	Name     string
	Overhead core.OverheadSetting
	Latency  simnet.Time
	Topology simnet.Topology
	PerHop   simnet.Time
}

// Machines returns the generations compared: the Cosmic-Cube-class
// first generation, a mid-generation mesh with wormhole routing, and
// the Nectar-class machine the paper simulates.
func Machines() []Machine {
	return []Machine{
		{
			Name:     "first-gen (cosmic-cube class)",
			Overhead: core.OverheadSetting{Name: "1st-gen", Send: simnet.US(200), Recv: simnet.US(100)},
			Latency:  simnet.US(100),
			Topology: simnet.Hypercube{},
			PerHop:   simnet.US(700), // ~2 ms across a few store-and-forward hops
		},
		{
			Name:     "wormhole mesh",
			Overhead: core.OverheadRuns()[2], // 16 µs
			Latency:  simnet.US(0.5),
			Topology: simnet.Mesh2D{W: 8, H: 8},
			PerHop:   simnet.US(0.2),
		},
		{
			Name:     "nectar class",
			Overhead: core.OverheadRuns()[1], // 8 µs
			Latency:  core.NectarLatency(),
		},
	}
}

// GenerationsResult is one machine's speedup curve on Rubik.
type GenerationsResult struct {
	Machine Machine
	Series  SpeedupSeries
}

// Generations reproduces the paper's Section 1 motivation
// quantitatively: the same mapping and workload on three machine
// generations — one sweep with the machines as the variant axis.
func Generations() ([]GenerationsResult, error) {
	machines := Machines()
	variants := make([]sweep.Variant, len(machines))
	for i, m := range machines {
		m := m
		variants[i] = sweep.Variant{
			Name: m.Name,
			Mutate: func(c *core.Config) {
				c.Overhead = m.Overhead
				c.Latency = m.Latency
				c.Topology = m.Topology
				c.PerHop = m.PerHop
			},
		}
	}
	res, err := sweep.Run(sweep.Spec{
		Name:     "generations",
		Traces:   []*trace.Trace{workloads.Rubik()},
		Procs:    ProcCounts,
		Variants: variants,
		Baseline: true,
	})
	if err != nil {
		return nil, err
	}
	series, err := seriesFromGroups(res, func(k sweep.Key) string { return k.Variant })
	if err != nil {
		return nil, err
	}
	out := make([]GenerationsResult, len(machines))
	for i := range machines {
		out[i] = GenerationsResult{Machine: machines[i], Series: series[i]}
	}
	return out, nil
}

// RenderGenerations prints the generation comparison.
func RenderGenerations(w io.Writer, rs []GenerationsResult) {
	fmt.Fprintln(w, "== Sec 1 motivation: machine generations (Rubik section) ==")
	header := []string{"procs"}
	for _, r := range rs {
		header = append(header, r.Machine.Name)
	}
	rows := [][]string{header}
	for i, p := range ProcCounts {
		row := []string{fmt.Sprintf("%d", p)}
		for _, r := range rs {
			row = append(row, fmt.Sprintf("%.2f", r.Series.Points[i].Speedup))
		}
		rows = append(rows, row)
	}
	stats.Table(w, rows)
	fmt.Fprintln(w)
}
