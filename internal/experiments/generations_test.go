package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestGenerationsMotivation verifies the paper's Section 1 argument
// quantitatively: first-generation MPCs cannot exploit match-phase
// parallelism at ~100-instruction granularity, new-generation MPCs
// can.
func TestGenerationsMotivation(t *testing.T) {
	rs, err := Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("machines = %d", len(rs))
	}
	best := func(r GenerationsResult) float64 {
		b := 0.0
		for _, p := range r.Series.Points {
			if p.Speedup > b {
				b = p.Speedup
			}
		}
		return b
	}
	firstGen, mesh, nectar := best(rs[0]), best(rs[1]), best(rs[2])
	// The paper's impossibility claim, quantified: on first-generation
	// hardware the best achievable speedup is small in absolute terms
	// and the parallel efficiency is negligible (< 10% of the machine),
	// so fine-grained match parallelism is not worth the hardware.
	if firstGen > 4 {
		t.Errorf("first-generation best speedup = %.2f, want <= 4", firstGen)
	}
	p32 := indexOfProc(32)
	if eff := rs[0].Series.Points[p32].Speedup / 32; eff > 0.10 {
		t.Errorf("first-generation efficiency at P=32 = %.0f%%, want < 10%%", 100*eff)
	}
	if nectar < 8 {
		t.Errorf("nectar-class best speedup = %.2f, want >= 8", nectar)
	}
	if !(nectar > mesh && mesh > firstGen) {
		t.Errorf("generation ordering broken: %.2f / %.2f / %.2f", firstGen, mesh, nectar)
	}
	// First-generation machines should get WORSE than serial at scale
	// (message handling swamps the 100-instruction tasks).
	last := rs[0].Series.Points[len(rs[0].Series.Points)-1]
	first := rs[0].Series.Points[0]
	if last.Speedup > firstGen {
		t.Errorf("first-gen should not improve at %d procs", last.Procs)
	}
	_ = first

	var buf bytes.Buffer
	RenderGenerations(&buf, rs)
	if !strings.Contains(buf.String(), "cosmic-cube") {
		t.Error("render missing machine names")
	}
}
