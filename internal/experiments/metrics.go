package experiments

import (
	"fmt"
	"io"

	"mpcrete/internal/core"
	"mpcrete/internal/obs"
	"mpcrete/internal/trace"
	"mpcrete/internal/workloads"
)

// CollectRunMetrics simulates a trace with a fresh metrics registry
// attached and returns both. The registry's CSV/JSON exports are
// deterministic, so a seeded run exports byte-for-byte identically on
// every invocation — the property the experiment harness relies on to
// diff runs across code changes.
func CollectRunMetrics(tr *trace.Trace, cfg core.Config) (*obs.Registry, *core.Result, error) {
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	res, err := core.Simulate(tr, cfg)
	if err != nil {
		return nil, nil, err
	}
	return reg, res, nil
}

// SectionRunMetrics collects metrics for one of the paper's workload
// sections (rubik, tourney, weaver) at the given processor count
// under run2 overheads — the configuration the analysis sections of
// the paper keep returning to.
func SectionRunMetrics(section string, procs int) (*obs.Registry, *core.Result, error) {
	var tr *trace.Trace
	for _, s := range workloads.Sections() {
		if s.Name == section {
			tr = s
		}
	}
	if tr == nil {
		return nil, nil, fmt.Errorf("experiments: unknown section %q", section)
	}
	return CollectRunMetrics(tr, core.NewConfig(procs, core.WithOverhead(core.OverheadRuns()[1])))
}

// RenderPerCycle prints the per-cycle summary recorded in a run's
// metrics registry (the -v output of cmd/mpcsim and
// cmd/traceanalyze): cycle, activations, messages, and makespan
// contribution.
func RenderPerCycle(w io.Writer, reg *obs.Registry) {
	s := reg.LookupSeries("core/per_cycle")
	if s == nil {
		fmt.Fprintln(w, "(no per-cycle metrics recorded)")
		return
	}
	for _, row := range s.Rows() {
		fmt.Fprintf(w, "  cycle %d: %d activations, %d messages, %.1f µs\n",
			int(row[0]), int(row[1]), int(row[2]), row[3])
	}
}
