// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 5). Each experiment returns structured
// data (consumed by the benchmarks and tests) and has a Render
// function producing the human-readable form (used by
// cmd/experiments and EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"io"

	"mpcrete/internal/core"
	"mpcrete/internal/sched"
	"mpcrete/internal/stats"
	"mpcrete/internal/trace"
	"mpcrete/internal/workloads"
)

// ProcCounts is the processor sweep used by the speedup figures.
var ProcCounts = []int{1, 2, 4, 8, 16, 32, 64}

// SpeedupPoint is one measurement of a speedup curve.
type SpeedupPoint struct {
	Procs       int
	Speedup     float64
	NetworkIdle float64
}

// SpeedupSeries is one labelled curve.
type SpeedupSeries struct {
	Label  string
	Points []SpeedupPoint
}

// sweep runs a processor sweep for a trace under an overhead setting,
// with optional per-trace config mutation.
func sweep(tr *trace.Trace, ov core.OverheadSetting, mutate func(*core.Config)) (SpeedupSeries, error) {
	s := SpeedupSeries{Label: fmt.Sprintf("%s/%s", tr.Name, ov.Name)}
	for _, p := range ProcCounts {
		cfg := core.Config{
			MatchProcs: p,
			Costs:      core.DefaultCosts(),
			Overhead:   ov,
			Latency:    core.NectarLatency(),
		}
		if mutate != nil {
			mutate(&cfg)
		}
		sp, res, _, err := core.Speedup(tr, cfg)
		if err != nil {
			return s, err
		}
		s.Points = append(s.Points, SpeedupPoint{
			Procs:       p,
			Speedup:     sp,
			NetworkIdle: res.Net.NetworkIdleFraction(),
		})
	}
	return s, nil
}

// Fig51 reproduces Figure 5-1: speedups with zero message-passing
// overheads for the three sections.
func Fig51() ([]SpeedupSeries, error) {
	var out []SpeedupSeries
	zero := core.OverheadRuns()[0]
	for _, tr := range workloads.Sections() {
		s, err := sweep(tr, zero, nil)
		if err != nil {
			return nil, err
		}
		s.Label = tr.Name
		out = append(out, s)
	}
	return out, nil
}

// Table51 reproduces Table 5-1: the overhead settings themselves.
func Table51() []core.OverheadSetting { return core.OverheadRuns() }

// Fig52 reproduces Figure 5-2: speedups for each section under each
// overhead run.
func Fig52() (map[string][]SpeedupSeries, error) {
	out := map[string][]SpeedupSeries{}
	for _, tr := range workloads.Sections() {
		for _, ov := range core.OverheadRuns() {
			s, err := sweep(tr, ov, nil)
			if err != nil {
				return nil, err
			}
			out[tr.Name] = append(out[tr.Name], s)
		}
	}
	return out, nil
}

// Table52Row is one row of Table 5-2.
type Table52Row struct {
	Program string
	Left    int
	Right   int
	Total   int
}

// Table52 reproduces Table 5-2: activation counts per section.
func Table52() []Table52Row {
	var rows []Table52Row
	for _, tr := range workloads.Sections() {
		s := tr.Stats()
		rows = append(rows, Table52Row{
			Program: tr.Name,
			Left:    s.LeftActivations,
			Right:   s.RightActivations,
			Total:   s.Total,
		})
	}
	return rows
}

// Fig54 reproduces Figure 5-4: Weaver speedups before and after
// unsharing the multiple-successor bottleneck (fan-out split 4 ways;
// the trace-level form of the Fig 5-3 transformation).
func Fig54() ([]SpeedupSeries, error) {
	weaver := workloads.Weaver()
	unshared := trace.SplitFanout(weaver, 10, 4)
	unshared.Name = "weaver-unshared"
	var out []SpeedupSeries
	for _, tr := range []*trace.Trace{weaver, unshared} {
		s, err := sweep(tr, core.OverheadRuns()[1], nil) // 8 µs total, a realistic run
		if err != nil {
			return nil, err
		}
		s.Label = tr.Name
		out = append(out, s)
	}
	return out, nil
}

// Fig55Data is the Figure 5-5 distribution: left activations per
// processor for two consecutive Rubik cycles.
type Fig55Data struct {
	Procs  int
	Cycle1 []int
	Cycle2 []int
}

// Fig55 reproduces Figure 5-5 at P=16 with round-robin buckets.
func Fig55() (Fig55Data, error) {
	tr := workloads.Rubik()
	cfg := core.Config{
		MatchProcs: 16,
		Costs:      core.DefaultCosts(),
		Latency:    core.NectarLatency(),
	}
	res, err := core.Simulate(tr, cfg)
	if err != nil {
		return Fig55Data{}, err
	}
	return Fig55Data{
		Procs:  16,
		Cycle1: res.LeftActsPerSlot[0],
		Cycle2: res.LeftActsPerSlot[1],
	}, nil
}

// Fig56 reproduces Figure 5-6: Tourney speedups before and after
// copy-and-constraint on the cross-product node (split 8 ways): the
// split production's copies give the hash function the discrimination
// the original join lacked, so the hot node's tokens spread over 8
// buckets.
func Fig56() ([]SpeedupSeries, error) {
	tourney := workloads.Tourney()
	cc := trace.ScatterNode(tourney, workloads.TourneyHotNode, 8)
	cc.Name = "tourney-c&c"
	var out []SpeedupSeries
	for _, tr := range []*trace.Trace{tourney, cc} {
		s, err := sweep(tr, core.OverheadRuns()[1], nil)
		if err != nil {
			return nil, err
		}
		s.Label = tr.Name
		out = append(out, s)
	}
	return out, nil
}

// Dip is one occurrence of the Fig 5-2 "dips" phenomenon: adding a
// processor DECREASES the speedup, because the round-robin bucket
// partition happens to co-locate more of the active buckets at the
// larger machine size.
type Dip struct {
	Procs   int // the machine size where the speedup fell
	Speedup float64
	Prev    float64 // speedup at Procs-1
}

// Dips sweeps processor counts one by one on a section and returns
// every monotonicity violation (the paper observed these and traced
// them to uneven active-bucket distribution; Section 5.1).
func Dips(section string, maxProcs int) ([]Dip, error) {
	var tr = map[string]func() *trace.Trace{
		"rubik":   workloads.Rubik,
		"tourney": workloads.Tourney,
		"weaver":  workloads.Weaver,
	}[section]
	if tr == nil {
		return nil, fmt.Errorf("experiments: unknown section %q", section)
	}
	t := tr()
	var dips []Dip
	prev := 0.0
	for p := 1; p <= maxProcs; p++ {
		cfg := core.Config{MatchProcs: p, Costs: core.DefaultCosts(), Latency: core.NectarLatency()}
		sp, _, _, err := core.Speedup(t, cfg)
		if err != nil {
			return nil, err
		}
		if p > 1 && sp < prev {
			dips = append(dips, Dip{Procs: p, Speedup: sp, Prev: prev})
		}
		prev = sp
	}
	return dips, nil
}

// RenderDips prints the dip analysis.
func RenderDips(w io.Writer, section string, dips []Dip, maxProcs int) {
	fmt.Fprintf(w, "== Fig 5-1/5-2 dips: %s, P=1..%d (round-robin buckets) ==\n", section, maxProcs)
	if len(dips) == 0 {
		fmt.Fprintln(w, "no dips")
		return
	}
	rows := [][]string{{"procs", "speedup", "previous"}}
	for _, d := range dips {
		rows = append(rows, []string{
			fmt.Sprintf("%d", d.Procs),
			fmt.Sprintf("%.2f", d.Speedup),
			fmt.Sprintf("%.2f", d.Prev),
		})
	}
	stats.Table(w, rows)
	fmt.Fprintln(w)
}

// GreedyResult compares bucket-distribution strategies on one section
// at a fixed processor count (Section 5.2.2). AggregateGreedy is the
// realizable variant (one static assignment balanced on total load);
// Greedy is the paper's per-cycle oracle. The gap between them is the
// paper's central load-balancing finding: the aggregate is even, the
// individual cycles are not.
type GreedyResult struct {
	Section         string
	Procs           int
	RoundRobin      float64 // speedup
	Random          float64
	AggregateGreedy float64
	Greedy          float64
	// Improvement is Greedy / RoundRobin (the paper measured ~1.4).
	Improvement float64
}

// GreedyExperiment runs the distribution-strategy comparison.
func GreedyExperiment(procs int) ([]GreedyResult, error) {
	var out []GreedyResult
	for _, tr := range workloads.Sections() {
		base := core.Config{
			MatchProcs: procs,
			Costs:      core.DefaultCosts(),
			Latency:    core.NectarLatency(),
		}
		rrSp, _, _, err := core.Speedup(tr, base)
		if err != nil {
			return nil, err
		}
		rnd := base
		rnd.Partition = sched.Random(tr.NBuckets, procs, 12345)
		rndSp, _, _, err := core.Speedup(tr, rnd)
		if err != nil {
			return nil, err
		}
		agg := base
		agg.Partition = sched.GreedyAggregate(tr.BucketLoad(false), tr.NBuckets, procs)
		aggSp, _, _, err := core.Speedup(tr, agg)
		if err != nil {
			return nil, err
		}
		gr := base
		gr.PerCycle = sched.GreedyPerCycle(tr.BucketLoad(false), tr.NBuckets, procs)
		grSp, _, _, err := core.Speedup(tr, gr)
		if err != nil {
			return nil, err
		}
		out = append(out, GreedyResult{
			Section:         tr.Name,
			Procs:           procs,
			RoundRobin:      rrSp,
			Random:          rndSp,
			AggregateGreedy: aggSp,
			Greedy:          grSp,
			Improvement:     grSp / rrSp,
		})
	}
	return out, nil
}

// ProbModelResult holds one row of the Section 5.2.2 model analysis.
type ProbModelResult struct {
	Model        sched.Model
	PEven        float64
	PAllOnOne    float64
	EMaxLoad     float64
	SpeedupBound float64
	Efficiency   float64
}

// ProbModel evaluates the balls-in-bins model across the parameter
// ranges that support the paper's three conclusions.
func ProbModel() []ProbModelResult {
	var out []ProbModelResult
	cases := []sched.Model{
		{Buckets: 512, Active: 64, Procs: 4},
		{Buckets: 512, Active: 64, Procs: 16},
		{Buckets: 512, Active: 64, Procs: 64},
		{Buckets: 512, Active: 32, Procs: 16},
		{Buckets: 512, Active: 384, Procs: 16},
	}
	for _, m := range cases {
		mc := m.MonteCarlo(4000, 7)
		out = append(out, ProbModelResult{
			Model:        m,
			PEven:        m.PEven(),
			PAllOnOne:    m.PAllOnOne(),
			EMaxLoad:     mc.EMaxLoad,
			SpeedupBound: mc.SpeedupBound,
			Efficiency:   mc.SpeedupBound / float64(m.Procs),
		})
	}
	return out
}

// Ablations compares design choices the mapping depends on, all at the
// same machine scale: grouped vs centralized root distribution,
// hardware vs software broadcast, and the Fig 3-2 processor-pair
// variant (which uses 2P processors for P partitions).
type AblationRow struct {
	Name    string
	Section string
	Speedup float64
}

// Ablations runs the design-choice comparisons at the given partition
// count under the run-2 overheads.
func Ablations(procs int) ([]AblationRow, error) {
	var out []AblationRow
	for _, tr := range workloads.Sections() {
		mk := func(name string, mutate func(*core.Config)) error {
			cfg := core.Config{
				MatchProcs: procs,
				Costs:      core.DefaultCosts(),
				Overhead:   core.OverheadRuns()[1],
				Latency:    core.NectarLatency(),
			}
			if mutate != nil {
				mutate(&cfg)
			}
			sp, _, _, err := core.Speedup(tr, cfg)
			if err != nil {
				return err
			}
			out = append(out, AblationRow{Name: name, Section: tr.Name, Speedup: sp})
			return nil
		}
		if err := mk("grouped+hw-bcast", nil); err != nil {
			return nil, err
		}
		if err := mk("central-roots", func(c *core.Config) { c.CentralRoots = true }); err != nil {
			return nil, err
		}
		if err := mk("sw-bcast", func(c *core.Config) { c.SoftwareBroadcast = true }); err != nil {
			return nil, err
		}
		if err := mk("processor-pairs", func(c *core.Config) { c.Pairs = true }); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Rendering

// RenderSeries prints speedup curves as an aligned table.
func RenderSeries(w io.Writer, title string, series []SpeedupSeries) {
	fmt.Fprintf(w, "== %s ==\n", title)
	header := []string{"procs"}
	for _, s := range series {
		header = append(header, s.Label)
	}
	rows := [][]string{header}
	for i, p := range ProcCounts {
		row := []string{fmt.Sprintf("%d", p)}
		for _, s := range series {
			if i < len(s.Points) {
				row = append(row, fmt.Sprintf("%.2f", s.Points[i].Speedup))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	stats.Table(w, rows)
	fmt.Fprintln(w)
}

// RenderTable51 prints the overhead settings.
func RenderTable51(w io.Writer) {
	fmt.Fprintln(w, "== Table 5-1: message-processing overheads ==")
	rows := [][]string{{"run", "send", "recv", "total"}}
	for _, o := range Table51() {
		rows = append(rows, []string{
			o.Name,
			fmt.Sprintf("%.0fus", o.Send.Microseconds()),
			fmt.Sprintf("%.0fus", o.Recv.Microseconds()),
			fmt.Sprintf("%.0fus", o.Total().Microseconds()),
		})
	}
	stats.Table(w, rows)
	fmt.Fprintln(w)
}

// RenderTable52 prints the activation counts.
func RenderTable52(w io.Writer) {
	fmt.Fprintln(w, "== Table 5-2: activations in the three sections ==")
	rows := [][]string{{"program", "left", "right", "total", "left%"}}
	for _, r := range Table52() {
		rows = append(rows, []string{
			r.Program,
			fmt.Sprintf("%d", r.Left),
			fmt.Sprintf("%d", r.Right),
			fmt.Sprintf("%d", r.Total),
			fmt.Sprintf("%.0f%%", 100*float64(r.Left)/float64(r.Total)),
		})
	}
	stats.Table(w, rows)
	fmt.Fprintln(w)
}

// RenderFig55 prints the distribution bars.
func RenderFig55(w io.Writer, d Fig55Data) {
	fmt.Fprintf(w, "== Fig 5-5: Rubik left-token distribution (P=%d) ==\n", d.Procs)
	stats.Bars(w, "cycle 1:", d.Cycle1, 40)
	stats.Bars(w, "cycle 2:", d.Cycle2, 40)
	fmt.Fprintf(w, "cycle-1 max/mean = %.2f, cycle-2 max/mean = %.2f\n\n",
		safeRatio(stats.Max(d.Cycle1), stats.Mean(d.Cycle1)),
		safeRatio(stats.Max(d.Cycle2), stats.Mean(d.Cycle2)))
}

func safeRatio(max int, mean float64) float64 {
	if mean == 0 {
		return 0
	}
	return float64(max) / mean
}

// RenderGreedy prints the distribution-strategy comparison.
func RenderGreedy(w io.Writer, rs []GreedyResult) {
	fmt.Fprintln(w, "== Sec 5.2.2: bucket distribution strategies ==")
	rows := [][]string{{"section", "procs", "round-robin", "random", "agg-greedy", "oracle-greedy", "oracle/rr"}}
	for _, r := range rs {
		rows = append(rows, []string{
			r.Section, fmt.Sprintf("%d", r.Procs),
			fmt.Sprintf("%.2f", r.RoundRobin),
			fmt.Sprintf("%.2f", r.Random),
			fmt.Sprintf("%.2f", r.AggregateGreedy),
			fmt.Sprintf("%.2f", r.Greedy),
			fmt.Sprintf("%.2fx", r.Improvement),
		})
	}
	stats.Table(w, rows)
	fmt.Fprintln(w)
}

// RenderProbModel prints the model analysis.
func RenderProbModel(w io.Writer, rs []ProbModelResult) {
	fmt.Fprintln(w, "== Sec 5.2.2: probabilistic model of active-bucket distribution ==")
	rows := [][]string{{"buckets", "active", "procs", "P(even)", "P(one-proc)", "E[max]", "bound", "efficiency"}}
	for _, r := range rs {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Model.Buckets),
			fmt.Sprintf("%d", r.Model.Active),
			fmt.Sprintf("%d", r.Model.Procs),
			fmt.Sprintf("%.2e", r.PEven),
			fmt.Sprintf("%.2e", r.PAllOnOne),
			fmt.Sprintf("%.1f", r.EMaxLoad),
			fmt.Sprintf("%.1f", r.SpeedupBound),
			fmt.Sprintf("%.0f%%", 100*r.Efficiency),
		})
	}
	stats.Table(w, rows)
	fmt.Fprintln(w)
}

// RenderAblations prints the design-choice comparison.
func RenderAblations(w io.Writer, rs []AblationRow, procs int) {
	fmt.Fprintf(w, "== Ablations (P=%d partitions, run2 overheads) ==\n", procs)
	rows := [][]string{{"variant", "section", "speedup"}}
	for _, r := range rs {
		rows = append(rows, []string{r.Name, r.Section, fmt.Sprintf("%.2f", r.Speedup)})
	}
	stats.Table(w, rows)
	fmt.Fprintln(w)
}

// RenderFig52 prints the overhead sweep per section, including the
// speedup retained at the largest machine and the network idle
// fraction observed.
func RenderFig52(w io.Writer, data map[string][]SpeedupSeries) {
	for _, name := range []string{"rubik", "tourney", "weaver"} {
		RenderSeries(w, "Fig 5-2: "+name+" under overheads", data[name])
	}
	fmt.Fprintln(w, "speedup retained at P=32 (run4 vs run1):")
	for _, name := range []string{"rubik", "tourney", "weaver"} {
		series := data[name]
		p32 := indexOfProc(32)
		if p32 < 0 {
			continue
		}
		base := series[0].Points[p32].Speedup
		worst := series[len(series)-1].Points[p32].Speedup
		fmt.Fprintf(w, "  %-8s %.2f -> %.2f (%.0f%% retained, network idle %.1f%%)\n",
			name, base, worst, 100*worst/base, 100*series[len(series)-1].Points[p32].NetworkIdle)
	}
	fmt.Fprintln(w)
}

func indexOfProc(p int) int {
	for i, q := range ProcCounts {
		if q == p {
			return i
		}
	}
	return -1
}
