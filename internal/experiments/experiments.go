// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 5). Each experiment declares its grid
// as a sweep.Spec and runs it on the shared concurrent sweep engine
// (internal/sweep), returning structured data (consumed by the
// benchmarks, tests, and the -json CLI mode); each has a Render
// function producing the human-readable form (used by
// cmd/experiments and EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"io"

	"mpcrete/internal/core"
	"mpcrete/internal/sched"
	"mpcrete/internal/stats"
	"mpcrete/internal/sweep"
	"mpcrete/internal/trace"
	"mpcrete/internal/workloads"
)

// ProcCounts is the processor sweep used by the speedup figures.
var ProcCounts = []int{1, 2, 4, 8, 16, 32, 64}

// SpeedupPoint is one measurement of a speedup curve.
type SpeedupPoint struct {
	Procs       int
	Speedup     float64
	NetworkIdle float64
}

// SpeedupSeries is one labelled curve.
type SpeedupSeries struct {
	Label  string
	Points []SpeedupPoint
}

// speedupPoint converts one sweep cell into a curve point.
func speedupPoint(c sweep.Cell) SpeedupPoint {
	return SpeedupPoint{
		Procs:       c.Key.Procs,
		Speedup:     c.Speedup,
		NetworkIdle: c.Result.Net.NetworkIdleFraction(),
	}
}

// seriesFromGroups converts a sweep's ordered cells into one speedup
// series per group (cells sharing everything but the proc count),
// labelled by label.
func seriesFromGroups(res *sweep.Results, label func(sweep.Key) string) ([]SpeedupSeries, error) {
	if err := res.Err(); err != nil {
		return nil, err
	}
	var out []SpeedupSeries
	for _, g := range res.Groups() {
		s := SpeedupSeries{Label: label(g[0].Key)}
		for _, c := range g {
			s.Points = append(s.Points, speedupPoint(c))
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig51 reproduces Figure 5-1: speedups with zero message-passing
// overheads for the three sections.
func Fig51() ([]SpeedupSeries, error) {
	res, err := sweep.Run(sweep.Spec{
		Name:      "fig5-1",
		Traces:    workloads.Sections(),
		Procs:     ProcCounts,
		Overheads: core.OverheadRuns()[:1],
		Baseline:  true,
	})
	if err != nil {
		return nil, err
	}
	return seriesFromGroups(res, func(k sweep.Key) string { return k.Trace })
}

// Table51 reproduces Table 5-1: the overhead settings themselves.
func Table51() []core.OverheadSetting { return core.OverheadRuns() }

// Fig52 reproduces Figure 5-2: speedups for each section under each
// overhead run.
func Fig52() (map[string][]SpeedupSeries, error) {
	res, err := sweep.Run(sweep.Spec{
		Name:      "fig5-2",
		Traces:    workloads.Sections(),
		Procs:     ProcCounts,
		Overheads: core.OverheadRuns(),
		Baseline:  true,
	})
	if err != nil {
		return nil, err
	}
	if err := res.Err(); err != nil {
		return nil, err
	}
	out := map[string][]SpeedupSeries{}
	for _, g := range res.Groups() {
		s := SpeedupSeries{Label: fmt.Sprintf("%s/%s", g[0].Key.Trace, g[0].Key.Overhead)}
		for _, c := range g {
			s.Points = append(s.Points, speedupPoint(c))
		}
		out[g[0].Key.Trace] = append(out[g[0].Key.Trace], s)
	}
	return out, nil
}

// Table52Row is one row of Table 5-2.
type Table52Row struct {
	Program string
	Left    int
	Right   int
	Total   int
}

// Table52 reproduces Table 5-2: activation counts per section.
func Table52() []Table52Row {
	var rows []Table52Row
	for _, tr := range workloads.Sections() {
		s := tr.Stats()
		rows = append(rows, Table52Row{
			Program: tr.Name,
			Left:    s.LeftActivations,
			Right:   s.RightActivations,
			Total:   s.Total,
		})
	}
	return rows
}

// Fig54 reproduces Figure 5-4: Weaver speedups before and after
// unsharing the multiple-successor bottleneck (fan-out split 4 ways;
// the trace-level form of the Fig 5-3 transformation).
func Fig54() ([]SpeedupSeries, error) {
	weaver := workloads.Weaver()
	unshared := trace.SplitFanout(weaver, 10, 4)
	unshared.Name = "weaver-unshared"
	res, err := sweep.Run(sweep.Spec{
		Name:      "fig5-4",
		Traces:    []*trace.Trace{weaver, unshared},
		Procs:     ProcCounts,
		Overheads: core.OverheadRuns()[1:2], // 8 µs total, a realistic run
		Baseline:  true,
	})
	if err != nil {
		return nil, err
	}
	return seriesFromGroups(res, func(k sweep.Key) string { return k.Trace })
}

// Fig55Data is the Figure 5-5 distribution: left activations per
// processor for two consecutive Rubik cycles.
type Fig55Data struct {
	Procs  int
	Cycle1 []int
	Cycle2 []int
}

// Fig55 reproduces Figure 5-5 at P=16 with round-robin buckets.
func Fig55() (Fig55Data, error) {
	res, err := sweep.Run(sweep.Spec{
		Name:   "fig5-5",
		Traces: []*trace.Trace{workloads.Rubik()},
		Procs:  []int{16},
	})
	if err != nil {
		return Fig55Data{}, err
	}
	if err := res.Err(); err != nil {
		return Fig55Data{}, err
	}
	r := res.Cells[0].Result
	return Fig55Data{
		Procs:  16,
		Cycle1: r.LeftActsPerSlot[0],
		Cycle2: r.LeftActsPerSlot[1],
	}, nil
}

// Fig56 reproduces Figure 5-6: Tourney speedups before and after
// copy-and-constraint on the cross-product node (split 8 ways): the
// split production's copies give the hash function the discrimination
// the original join lacked, so the hot node's tokens spread over 8
// buckets.
func Fig56() ([]SpeedupSeries, error) {
	tourney := workloads.Tourney()
	cc := trace.ScatterNode(tourney, workloads.TourneyHotNode, 8)
	cc.Name = "tourney-c&c"
	res, err := sweep.Run(sweep.Spec{
		Name:      "fig5-6",
		Traces:    []*trace.Trace{tourney, cc},
		Procs:     ProcCounts,
		Overheads: core.OverheadRuns()[1:2],
		Baseline:  true,
	})
	if err != nil {
		return nil, err
	}
	return seriesFromGroups(res, func(k sweep.Key) string { return k.Trace })
}

// Dip is one occurrence of the Fig 5-2 "dips" phenomenon: adding a
// processor DECREASES the speedup, because the round-robin bucket
// partition happens to co-locate more of the active buckets at the
// larger machine size.
type Dip struct {
	Procs   int // the machine size where the speedup fell
	Speedup float64
	Prev    float64 // speedup at Procs-1
}

// Dips sweeps processor counts one by one on a section and returns
// every monotonicity violation (the paper observed these and traced
// them to uneven active-bucket distribution; Section 5.1).
func Dips(section string, maxProcs int) ([]Dip, error) {
	var tr = map[string]func() *trace.Trace{
		"rubik":   workloads.Rubik,
		"tourney": workloads.Tourney,
		"weaver":  workloads.Weaver,
	}[section]
	if tr == nil {
		return nil, fmt.Errorf("experiments: unknown section %q", section)
	}
	t := tr()
	procs := make([]int, maxProcs)
	for i := range procs {
		procs[i] = i + 1
	}
	res, err := sweep.Run(sweep.Spec{
		Name:     "dips/" + section,
		Traces:   []*trace.Trace{t},
		Procs:    procs,
		Baseline: true,
	})
	if err != nil {
		return nil, err
	}
	if err := res.Err(); err != nil {
		return nil, err
	}
	var dips []Dip
	prev := 0.0
	for i, c := range res.Cells {
		if i > 0 && c.Speedup < prev {
			dips = append(dips, Dip{Procs: c.Key.Procs, Speedup: c.Speedup, Prev: prev})
		}
		prev = c.Speedup
	}
	return dips, nil
}

// RenderDips prints the dip analysis.
func RenderDips(w io.Writer, section string, dips []Dip, maxProcs int) {
	fmt.Fprintf(w, "== Fig 5-1/5-2 dips: %s, P=1..%d (round-robin buckets) ==\n", section, maxProcs)
	if len(dips) == 0 {
		fmt.Fprintln(w, "no dips")
		return
	}
	rows := [][]string{{"procs", "speedup", "previous"}}
	for _, d := range dips {
		rows = append(rows, []string{
			fmt.Sprintf("%d", d.Procs),
			fmt.Sprintf("%.2f", d.Speedup),
			fmt.Sprintf("%.2f", d.Prev),
		})
	}
	stats.Table(w, rows)
	fmt.Fprintln(w)
}

// GreedyResult compares bucket-distribution strategies on one section
// at a fixed processor count (Section 5.2.2). AggregateGreedy is the
// realizable variant (one static assignment balanced on total load);
// Greedy is the paper's per-cycle oracle. The gap between them is the
// paper's central load-balancing finding: the aggregate is even, the
// individual cycles are not.
type GreedyResult struct {
	Section         string
	Procs           int
	RoundRobin      float64 // speedup
	Random          float64
	AggregateGreedy float64
	Greedy          float64
	// Improvement is Greedy / RoundRobin (the paper measured ~1.4).
	Improvement float64
}

// GreedyExperiment runs the distribution-strategy comparison: one
// sweep with a strategy axis, four cells per section.
func GreedyExperiment(procs int) ([]GreedyResult, error) {
	res, err := sweep.Run(sweep.Spec{
		Name:   "greedy",
		Traces: workloads.Sections(),
		Procs:  []int{procs},
		Strategies: []sched.Strategy{
			sched.RoundRobinStrategy{},
			sched.RandomStrategy{Seed: 12345},
			sched.GreedyAggregateStrategy{},
			sched.GreedyPerCycleStrategy{},
		},
		Baseline: true,
	})
	if err != nil {
		return nil, err
	}
	if err := res.Err(); err != nil {
		return nil, err
	}
	var out []GreedyResult
	for i := 0; i+3 < len(res.Cells); i += 4 {
		rr, rnd, agg, oracle := res.Cells[i], res.Cells[i+1], res.Cells[i+2], res.Cells[i+3]
		out = append(out, GreedyResult{
			Section:         rr.Key.Trace,
			Procs:           procs,
			RoundRobin:      rr.Speedup,
			Random:          rnd.Speedup,
			AggregateGreedy: agg.Speedup,
			Greedy:          oracle.Speedup,
			Improvement:     oracle.Speedup / rr.Speedup,
		})
	}
	return out, nil
}

// ProbModelResult holds one row of the Section 5.2.2 model analysis.
type ProbModelResult struct {
	Model        sched.Model
	PEven        float64
	PAllOnOne    float64
	EMaxLoad     float64
	SpeedupBound float64
	Efficiency   float64
}

// ProbModel evaluates the balls-in-bins model across the parameter
// ranges that support the paper's three conclusions.
func ProbModel() []ProbModelResult {
	var out []ProbModelResult
	cases := []sched.Model{
		{Buckets: 512, Active: 64, Procs: 4},
		{Buckets: 512, Active: 64, Procs: 16},
		{Buckets: 512, Active: 64, Procs: 64},
		{Buckets: 512, Active: 32, Procs: 16},
		{Buckets: 512, Active: 384, Procs: 16},
	}
	for _, m := range cases {
		mc := m.MonteCarlo(4000, 7)
		out = append(out, ProbModelResult{
			Model:        m,
			PEven:        m.PEven(),
			PAllOnOne:    m.PAllOnOne(),
			EMaxLoad:     mc.EMaxLoad,
			SpeedupBound: mc.SpeedupBound,
			Efficiency:   mc.SpeedupBound / float64(m.Procs),
		})
	}
	return out
}

// Ablations compares design choices the mapping depends on, all at the
// same machine scale: grouped vs centralized root distribution,
// hardware vs software broadcast, and the Fig 3-2 processor-pair
// variant (which uses 2P processors for P partitions).
type AblationRow struct {
	Name    string
	Section string
	Speedup float64
}

// Ablations runs the design-choice comparisons at the given partition
// count under the run-2 overheads: one sweep with a variant axis.
func Ablations(procs int) ([]AblationRow, error) {
	res, err := sweep.Run(sweep.Spec{
		Name:      "ablations",
		Traces:    workloads.Sections(),
		Procs:     []int{procs},
		Overheads: core.OverheadRuns()[1:2],
		Variants: []sweep.Variant{
			{Name: "grouped+hw-bcast"},
			{Name: "central-roots", Mutate: func(c *core.Config) { c.CentralRoots = true }},
			{Name: "sw-bcast", Mutate: func(c *core.Config) { c.SoftwareBroadcast = true }},
			{Name: "processor-pairs", Mutate: func(c *core.Config) { c.Pairs = true }},
		},
		Baseline: true,
	})
	if err != nil {
		return nil, err
	}
	if err := res.Err(); err != nil {
		return nil, err
	}
	var out []AblationRow
	for _, c := range res.Cells {
		out = append(out, AblationRow{Name: c.Key.Variant, Section: c.Key.Trace, Speedup: c.Speedup})
	}
	return out, nil
}

// Rendering

// RenderSeries prints speedup curves as an aligned table.
func RenderSeries(w io.Writer, title string, series []SpeedupSeries) {
	fmt.Fprintf(w, "== %s ==\n", title)
	header := []string{"procs"}
	for _, s := range series {
		header = append(header, s.Label)
	}
	rows := [][]string{header}
	for i, p := range ProcCounts {
		row := []string{fmt.Sprintf("%d", p)}
		for _, s := range series {
			if i < len(s.Points) {
				row = append(row, fmt.Sprintf("%.2f", s.Points[i].Speedup))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	stats.Table(w, rows)
	fmt.Fprintln(w)
}

// RenderTable51 prints the overhead settings.
func RenderTable51(w io.Writer) {
	fmt.Fprintln(w, "== Table 5-1: message-processing overheads ==")
	rows := [][]string{{"run", "send", "recv", "total"}}
	for _, o := range Table51() {
		rows = append(rows, []string{
			o.Name,
			fmt.Sprintf("%.0fus", o.Send.Microseconds()),
			fmt.Sprintf("%.0fus", o.Recv.Microseconds()),
			fmt.Sprintf("%.0fus", o.Total().Microseconds()),
		})
	}
	stats.Table(w, rows)
	fmt.Fprintln(w)
}

// RenderTable52 prints the activation counts.
func RenderTable52(w io.Writer) {
	fmt.Fprintln(w, "== Table 5-2: activations in the three sections ==")
	rows := [][]string{{"program", "left", "right", "total", "left%"}}
	for _, r := range Table52() {
		rows = append(rows, []string{
			r.Program,
			fmt.Sprintf("%d", r.Left),
			fmt.Sprintf("%d", r.Right),
			fmt.Sprintf("%d", r.Total),
			fmt.Sprintf("%.0f%%", 100*float64(r.Left)/float64(r.Total)),
		})
	}
	stats.Table(w, rows)
	fmt.Fprintln(w)
}

// RenderFig55 prints the distribution bars.
func RenderFig55(w io.Writer, d Fig55Data) {
	fmt.Fprintf(w, "== Fig 5-5: Rubik left-token distribution (P=%d) ==\n", d.Procs)
	stats.Bars(w, "cycle 1:", d.Cycle1, 40)
	stats.Bars(w, "cycle 2:", d.Cycle2, 40)
	fmt.Fprintf(w, "cycle-1 max/mean = %.2f, cycle-2 max/mean = %.2f\n\n",
		safeRatio(stats.Max(d.Cycle1), stats.Mean(d.Cycle1)),
		safeRatio(stats.Max(d.Cycle2), stats.Mean(d.Cycle2)))
}

func safeRatio(max int, mean float64) float64 {
	if mean == 0 {
		return 0
	}
	return float64(max) / mean
}

// RenderGreedy prints the distribution-strategy comparison.
func RenderGreedy(w io.Writer, rs []GreedyResult) {
	fmt.Fprintln(w, "== Sec 5.2.2: bucket distribution strategies ==")
	rows := [][]string{{"section", "procs", "round-robin", "random", "agg-greedy", "oracle-greedy", "oracle/rr"}}
	for _, r := range rs {
		rows = append(rows, []string{
			r.Section, fmt.Sprintf("%d", r.Procs),
			fmt.Sprintf("%.2f", r.RoundRobin),
			fmt.Sprintf("%.2f", r.Random),
			fmt.Sprintf("%.2f", r.AggregateGreedy),
			fmt.Sprintf("%.2f", r.Greedy),
			fmt.Sprintf("%.2fx", r.Improvement),
		})
	}
	stats.Table(w, rows)
	fmt.Fprintln(w)
}

// RenderProbModel prints the model analysis.
func RenderProbModel(w io.Writer, rs []ProbModelResult) {
	fmt.Fprintln(w, "== Sec 5.2.2: probabilistic model of active-bucket distribution ==")
	rows := [][]string{{"buckets", "active", "procs", "P(even)", "P(one-proc)", "E[max]", "bound", "efficiency"}}
	for _, r := range rs {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Model.Buckets),
			fmt.Sprintf("%d", r.Model.Active),
			fmt.Sprintf("%d", r.Model.Procs),
			fmt.Sprintf("%.2e", r.PEven),
			fmt.Sprintf("%.2e", r.PAllOnOne),
			fmt.Sprintf("%.1f", r.EMaxLoad),
			fmt.Sprintf("%.1f", r.SpeedupBound),
			fmt.Sprintf("%.0f%%", 100*r.Efficiency),
		})
	}
	stats.Table(w, rows)
	fmt.Fprintln(w)
}

// RenderAblations prints the design-choice comparison.
func RenderAblations(w io.Writer, rs []AblationRow, procs int) {
	fmt.Fprintf(w, "== Ablations (P=%d partitions, run2 overheads) ==\n", procs)
	rows := [][]string{{"variant", "section", "speedup"}}
	for _, r := range rs {
		rows = append(rows, []string{r.Name, r.Section, fmt.Sprintf("%.2f", r.Speedup)})
	}
	stats.Table(w, rows)
	fmt.Fprintln(w)
}

// RenderFig52 prints the overhead sweep per section, including the
// speedup retained at the largest machine and the network idle
// fraction observed.
func RenderFig52(w io.Writer, data map[string][]SpeedupSeries) {
	for _, name := range []string{"rubik", "tourney", "weaver"} {
		RenderSeries(w, "Fig 5-2: "+name+" under overheads", data[name])
	}
	fmt.Fprintln(w, "speedup retained at P=32 (run4 vs run1):")
	for _, name := range []string{"rubik", "tourney", "weaver"} {
		series := data[name]
		p32 := indexOfProc(32)
		if p32 < 0 {
			continue
		}
		base := series[0].Points[p32].Speedup
		worst := series[len(series)-1].Points[p32].Speedup
		fmt.Fprintf(w, "  %-8s %.2f -> %.2f (%.0f%% retained, network idle %.1f%%)\n",
			name, base, worst, 100*worst/base, 100*series[len(series)-1].Points[p32].NetworkIdle)
	}
	fmt.Fprintln(w)
}

func indexOfProc(p int) int {
	for i, q := range ProcCounts {
		if q == p {
			return i
		}
	}
	return -1
}
