package simnet

import "testing"

// TestEventLoopAllocationFree pins the tentpole property of the event
// loop rewrite: once the event heap and pending rings are warm, an
// uninstrumented simulation (no recorder, no network tracking)
// performs zero heap allocations — events are heap values, tasks live
// in rings, and the Ctx is reused.
func TestEventLoopAllocationFree(t *testing.T) {
	type ping struct{ n int }
	s := New(Config{Procs: 2, SendOverhead: US(2), RecvOverhead: US(1), Latency: US(0.5)},
		func(ctx *Ctx, p Payload) {
			pg := p.(*ping)
			ctx.Busy(US(3))
			if pg.n > 0 {
				pg.n--
				ctx.Send(1-ctx.Proc(), pg)
			}
		})
	msg := &ping{}
	run := func() {
		msg.n = 200
		s.Inject(0, msg, s.Now())
		s.Run()
	}
	run() // warm the heap and the rings
	if allocs := testing.AllocsPerRun(10, run); allocs != 0 {
		t.Errorf("event loop allocates %.1f objects per 200-message run, want 0", allocs)
	}
}

// TestEventLoopBoundedAllocsWithTracking checks the bounded accounting
// path: with TrackNetwork set, steady-state allocations stay O(1) per
// run (the compaction buffer is reused), not O(messages).
func TestEventLoopBoundedAllocsWithTracking(t *testing.T) {
	type ping struct{ n int }
	s := New(Config{Procs: 2, Latency: US(0.5), TrackNetwork: true},
		func(ctx *Ctx, p Payload) {
			pg := p.(*ping)
			ctx.Busy(US(3))
			if pg.n > 0 {
				pg.n--
				ctx.Send(1-ctx.Proc(), pg)
			}
		})
	msg := &ping{}
	run := func() {
		msg.n = 2 * netCompactAt // force several compactions over the test
		s.Inject(0, msg, s.Now())
		s.Run()
	}
	run()
	if allocs := testing.AllocsPerRun(5, run); allocs > 1 {
		t.Errorf("tracked event loop allocates %.1f objects per %d-message run, want <= 1", allocs, 2*netCompactAt)
	}
}
