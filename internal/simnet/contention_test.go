package simnet

import (
	"testing"
)

func TestRouteEnumeration(t *testing.T) {
	cases := []struct {
		topo     RoutedTopology
		from, to int
		want     []Link
	}{
		{Crossbar{}, 2, 2, nil},
		{Crossbar{}, 1, 3, []Link{{-1, 3}}},
		{Mesh2D{W: 3, H: 2}, 0, 5, []Link{{0, 1}, {1, 2}, {2, 5}}}, // x first, then y
		{Hypercube{}, 0, 5, []Link{{0, 1}, {1, 5}}},                // bits 0 then 2
		{Ring{N: 5}, 4, 1, []Link{{4, 0}, {0, 1}}},                 // wraps forward
		{Ring{N: 5}, 0, 4, []Link{{0, 4}}},                         // shorter backward
	}
	for _, c := range cases {
		got := c.topo.Route(c.from, c.to)
		if len(got) != len(c.want) {
			t.Errorf("%s.Route(%d,%d) = %v, want %v", c.topo.Name(), c.from, c.to, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s.Route(%d,%d)[%d] = %v, want %v", c.topo.Name(), c.from, c.to, i, got[i], c.want[i])
			}
		}
	}
}

func TestRouteLengthMatchesHops(t *testing.T) {
	topos := []RoutedTopology{Crossbar{}, Mesh2D{W: 4, H: 4}, Hypercube{}, Ring{N: 16}}
	for _, topo := range topos {
		for a := 0; a < 16; a++ {
			for b := 0; b < 16; b++ {
				if got, want := len(topo.Route(a, b)), topo.Hops(a, b); got != want {
					t.Errorf("%s: route length %d != hops %d for (%d,%d)", topo.Name(), got, want, a, b)
				}
			}
		}
	}
}

func TestContentionSerializesSharedLink(t *testing.T) {
	// Ring of 3: both messages 0->1 use link (0,1); with PerHop 10µs
	// the second is delayed by 10µs.
	cfg := Config{
		Procs:      3,
		Latency:    US(1),
		Topology:   Ring{N: 3},
		PerHop:     US(10),
		Contention: true,
	}
	s := closureSim(cfg)
	var arrivals []Time
	recv := closureTask(func(ctx *Ctx) { arrivals = append(arrivals, ctx.Now()) })
	s.Inject(0, closureTask(func(ctx *Ctx) {
		ctx.Send(1, recv)
		ctx.Send(1, recv)
	}), 0)
	s.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	// First: dep 0, link busy 0-10, +1 latency = 11.
	// Second: dep 0, waits for link until 10, 10-20, +1 = 21.
	if arrivals[0] != US(11) || arrivals[1] != US(21) {
		t.Errorf("arrivals = %v µs, want [11 21]", []float64{arrivals[0].Microseconds(), arrivals[1].Microseconds()})
	}
	st := s.Stats()
	if st.ContentionDelay != US(10) {
		t.Errorf("contention delay = %vµs, want 10", st.ContentionDelay.Microseconds())
	}
}

func TestContentionDisjointLinksDoNotInterfere(t *testing.T) {
	cfg := Config{
		Procs:      4,
		Latency:    US(1),
		Topology:   Ring{N: 4},
		PerHop:     US(10),
		Contention: true,
	}
	s := closureSim(cfg)
	var a1, a3 Time
	s.Inject(0, closureTask(func(ctx *Ctx) {
		ctx.Send(1, closureTask(func(ctx *Ctx) { a1 = ctx.Now() })) // link (0,1)
		ctx.Send(3, closureTask(func(ctx *Ctx) { a3 = ctx.Now() })) // link (0,3)
	}), 0)
	s.Run()
	if a1 != US(11) || a3 != US(11) {
		t.Errorf("arrivals = %v/%v µs, want 11/11 (disjoint links)", a1.Microseconds(), a3.Microseconds())
	}
	if d := s.Stats().ContentionDelay; d != 0 {
		t.Errorf("contention delay = %v, want 0", d)
	}
}

func TestContentionMultiHopPipeline(t *testing.T) {
	// 1x4 mesh, 0 -> 3 traverses three links back to back.
	cfg := Config{
		Procs:      4,
		Latency:    0,
		Topology:   Mesh2D{W: 4, H: 1},
		PerHop:     US(5),
		Contention: true,
	}
	s := closureSim(cfg)
	var at Time
	s.Inject(0, closureTask(func(ctx *Ctx) {
		ctx.Send(3, closureTask(func(ctx *Ctx) { at = ctx.Now() }))
	}), 0)
	s.Run()
	if at != US(15) {
		t.Errorf("arrival = %vµs, want 15 (3 links x 5µs)", at.Microseconds())
	}
}

func TestContentionRequiresRoutedTopology(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for contention without topology")
		}
	}()
	New(Config{Procs: 2, Contention: true}, func(ctx *Ctx, p Payload) {})
}

func TestContentionDeterministic(t *testing.T) {
	run := func() Time {
		cfg := Config{
			Procs:        8,
			Latency:      US(0.5),
			Topology:     Mesh2D{W: 4, H: 2},
			PerHop:       US(2),
			Contention:   true,
			SendOverhead: US(1),
			RecvOverhead: US(1),
		}
		s := closureSim(cfg)
		var spread closureTask
		n := 0
		spread = func(ctx *Ctx) {
			ctx.Busy(US(3))
			n++
			if n < 40 {
				ctx.Send((ctx.Proc()+3)%8, spread)
				ctx.Send((ctx.Proc()+5)%8, closureTask(func(ctx *Ctx) { ctx.Busy(US(1)) }))
			}
		}
		s.Inject(0, spread, 0)
		return s.Run()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic under contention: %v vs %v", a, b)
	}
}
