package simnet

// heap4 is an index-free 4-ary min-heap over plain values. It replaces
// container/heap on the simulator hot path: container/heap forces one
// boxed interface value per Push and an interface method call per
// comparison, which made the allocator the dominant cost of large
// sweeps. heap4 stores values in a flat slice (no per-push allocation
// once the backing array is warm) and dispatches comparisons
// statically through the type parameter, so sift operations inline.
//
// The arity is 4: a shallower tree than a binary heap (fewer cache
// lines touched per pop on the ~hundreds-of-thousands-event queues the
// Section 5 sweeps produce) at the cost of three extra comparisons per
// level, which the event comparison (two integer fields) makes cheap.

// lesser is the strict-weak-order constraint of heap4. less must be a
// total order for deterministic pop sequences; event breaks ties on
// the monotone sequence number, so its order is total.
type lesser[T any] interface{ less(T) bool }

// heap4 is the min-heap. The zero value is an empty heap ready for
// use; reset empties it while keeping the backing array.
type heap4[T lesser[T]] struct{ s []T }

func (h *heap4[T]) len() int { return len(h.s) }

// grow preallocates capacity for at least n elements.
func (h *heap4[T]) grow(n int) {
	if cap(h.s) < n {
		s := make([]T, len(h.s), n)
		copy(s, h.s)
		h.s = s
	}
}

func (h *heap4[T]) push(v T) {
	h.s = append(h.s, v)
	h.up(len(h.s) - 1)
}

func (h *heap4[T]) pop() T {
	s := h.s
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	var zero T
	s[n] = zero // release references held by the vacated slot
	h.s = s[:n]
	if n > 1 {
		h.down(0)
	}
	return top
}

// up sifts the element at i toward the root, moving the hole rather
// than swapping (one write per level instead of three).
func (h *heap4[T]) up(i int) {
	s := h.s
	v := s[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !v.less(s[parent]) {
			break
		}
		s[i] = s[parent]
		i = parent
	}
	s[i] = v
}

// down sifts the element at i toward the leaves.
func (h *heap4[T]) down(i int) {
	s := h.s
	n := len(s)
	v := s[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if s[j].less(s[m]) {
				m = j
			}
		}
		if !s[m].less(v) {
			break
		}
		s[i] = s[m]
		i = m
	}
	s[i] = v
}
