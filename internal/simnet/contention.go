package simnet

import "fmt"

// Link is one directed channel of the interconnection network.
type Link struct {
	From, To int
}

// RoutedTopology is a Topology that can also enumerate the links a
// message traverses, enabling link-contention modeling. Routing is
// deterministic (dimension-ordered / fixed-direction), as in the
// wormhole routers the paper cites.
type RoutedTopology interface {
	Topology
	// Route returns the directed links from one processor to another,
	// in traversal order; empty for self-sends.
	Route(from, to int) []Link
}

// Route implements RoutedTopology for the crossbar: contention occurs
// only at the destination port.
func (c Crossbar) Route(from, to int) []Link {
	if from == to {
		return nil
	}
	return []Link{{From: -1, To: to}}
}

// Route implements dimension-ordered (X then Y) routing on the mesh.
func (m Mesh2D) Route(from, to int) []Link {
	var links []Link
	cur := from
	step := func(next int) {
		links = append(links, Link{From: cur, To: next})
		cur = next
	}
	fx, fy := from%m.W, from/m.W
	tx, ty := to%m.W, to/m.W
	for x := fx; x != tx; {
		if tx > x {
			x++
		} else {
			x--
		}
		step(fy*m.W + x)
	}
	for y := fy; y != ty; {
		if ty > y {
			y++
		} else {
			y--
		}
		step(y*m.W + tx)
	}
	return links
}

// Route implements e-cube routing on the hypercube: correct the lowest
// differing bit first.
func (h Hypercube) Route(from, to int) []Link {
	var links []Link
	cur := from
	for cur != to {
		diff := cur ^ to
		bit := diff & -diff
		next := cur ^ bit
		links = append(links, Link{From: cur, To: next})
		cur = next
	}
	return links
}

// Route implements shortest-direction routing on the ring.
func (r Ring) Route(from, to int) []Link {
	if from == to {
		return nil
	}
	d := to - from
	if d < 0 {
		d += r.N
	}
	dir := 1 // forward
	if d > r.N-d {
		dir = r.N - 1 // i.e. step -1 mod N
	}
	var links []Link
	cur := from
	for cur != to {
		next := (cur + dir) % r.N
		links = append(links, Link{From: cur, To: next})
		cur = next
	}
	return links
}

// contention tracks per-link availability when Config.Contention is
// set: each link carries one message at a time, for PerHop each
// (virtual cut-through: a message holds successive links back to
// back).
type contention struct {
	free  map[Link]Time
	delay Time // accumulated waiting beyond uncontended transit
}

// traverse computes the arrival time of a message departing at dep and
// updates link reservations.
func (c *contention) traverse(cfg *Config, from, to int, dep Time) Time {
	rt, ok := cfg.Topology.(RoutedTopology)
	if !ok {
		// Contention requested but the topology cannot route; fall
		// back to distance-only transit.
		return dep + cfg.Latency + cfg.PerHop*Time(cfg.Topology.Hops(from, to))
	}
	route := rt.Route(from, to)
	uncontended := dep + cfg.Latency + cfg.PerHop*Time(len(route))
	at := dep
	for _, link := range route {
		start := at
		if f := c.free[link]; f > start {
			start = f
		}
		end := start + cfg.PerHop
		c.free[link] = end
		at = end
	}
	arr := at + cfg.Latency
	if arr > uncontended {
		c.delay += arr - uncontended
	}
	return arr
}

// validateContention checks the configuration at construction.
func validateContention(cfg Config) error {
	if !cfg.Contention {
		return nil
	}
	if cfg.Topology == nil {
		return fmt.Errorf("simnet: Contention requires a Topology")
	}
	if _, ok := cfg.Topology.(RoutedTopology); !ok {
		return fmt.Errorf("simnet: topology %s cannot route; contention unsupported", cfg.Topology.Name())
	}
	return nil
}
