package simnet

import (
	"testing"

	"mpcrete/internal/obs"
)

// TestIdleGapHistogram checks the per-processor idle-gap accounting on
// a hand-built two-processor schedule:
//
//	proc 0: busy [0,10], idle (10,20), busy [20,30], idle (30,35), busy [35,40]
//	proc 1: busy [5,15] only — no gaps
func TestIdleGapHistogram(t *testing.T) {
	s := closureSim(Config{Procs: 2})
	work := func(d Time) closureTask {
		return closureTask(func(ctx *Ctx) { ctx.Busy(d) })
	}
	s.Inject(0, work(US(10)), 0)
	s.Inject(0, work(US(10)), US(20))
	s.Inject(0, work(US(5)), US(35))
	s.Inject(1, work(US(10)), US(5))
	s.Run()
	st := s.Stats()

	p0 := st.Procs[0]
	if p0.IdleGaps != 2 {
		t.Errorf("proc 0 idle gaps = %d, want 2", p0.IdleGaps)
	}
	if p0.IdleGapMax != US(10) {
		t.Errorf("proc 0 max gap = %vµs, want 10", p0.IdleGapMax.Microseconds())
	}
	if p0.IdleGapTotal != US(15) {
		t.Errorf("proc 0 gap total = %vµs, want 15", p0.IdleGapTotal.Microseconds())
	}
	p1 := st.Procs[1]
	if p1.IdleGaps != 0 || p1.IdleGapMax != 0 {
		t.Errorf("proc 1 gaps = %+v, want none (leading/trailing idle is not a gap)", p1)
	}
	if gaps, max := st.IdleGapSummary(); gaps != 2 || max != US(10) {
		t.Errorf("summary = (%d, %vµs), want (2, 10)", gaps, max.Microseconds())
	}
}

// TestIdleGapIgnoresZeroWorkTasks: a zero-busy task in the middle of
// an idle interval must not split the gap in two.
func TestIdleGapIgnoresZeroWorkTasks(t *testing.T) {
	s := closureSim(Config{Procs: 1})
	work := func(d Time) closureTask {
		return closureTask(func(ctx *Ctx) { ctx.Busy(d) })
	}
	s.Inject(0, work(US(10)), 0)
	s.Inject(0, work(0), US(15)) // bookkeeping task, no busy time
	s.Inject(0, work(US(10)), US(30))
	s.Run()
	p := s.Stats().Procs[0]
	if p.IdleGaps != 1 || p.IdleGapMax != US(20) {
		t.Errorf("gaps = %d max = %vµs, want 1 gap of 20µs", p.IdleGaps, p.IdleGapMax.Microseconds())
	}
}

// kindedTask exercises the TraceKinder label on busy spans.
type kindedTask struct {
	kind string
	run  func(ctx *Ctx)
}

func (k kindedTask) TraceKind() string { return k.kind }

// TestRecorderSpans checks that busy spans (tagged with the payload
// kind) sum to the busy total and that message flights land on the
// network track.
func TestRecorderSpans(t *testing.T) {
	cfg := Config{Procs: 2, SendOverhead: US(5), RecvOverhead: US(3), Latency: US(0.5)}
	s := New(cfg, func(ctx *Ctx, p Payload) { p.(kindedTask).run(ctx) })
	rec := obs.NewRecorder()
	s.SetRecorder(rec)

	recv := kindedTask{kind: "sink", run: func(ctx *Ctx) { ctx.Busy(US(2)) }}
	s.Inject(0, kindedTask{kind: "source", run: func(ctx *Ctx) {
		ctx.Busy(US(10))
		ctx.Send(1, recv)
	}}, 0)
	s.Run()
	st := s.Stats()

	if got := rec.SpanTotal(""); got != int64(st.BusyTotal()) {
		t.Errorf("span total = %d, busy total = %d", got, int64(st.BusyTotal()))
	}
	var kinds = map[string]int{}
	var flights int
	for _, sp := range rec.Spans() {
		if sp.Proc == obs.NetworkTrack {
			if sp.Kind != "flight" {
				t.Errorf("network-track span kind %q", sp.Kind)
			}
			if sp.T1-sp.T0 != int64(US(0.5)) {
				t.Errorf("flight duration = %d, want latency", sp.T1-sp.T0)
			}
			flights++
			continue
		}
		kinds[sp.Kind]++
	}
	if kinds["source"] != 1 || kinds["sink"] != 1 || flights != 1 {
		t.Errorf("spans: kinds=%v flights=%d", kinds, flights)
	}
}

// TestMaxQueueDepth: of three simultaneous tasks on one processor the
// first starts immediately, leaving two queued at the high-water mark.
func TestMaxQueueDepth(t *testing.T) {
	s := closureSim(Config{Procs: 1})
	for i := 0; i < 3; i++ {
		s.Inject(0, closureTask(func(ctx *Ctx) { ctx.Busy(US(1)) }), 0)
	}
	s.Run()
	if d := s.Stats().Procs[0].MaxQueueDepth; d != 2 {
		t.Errorf("max queue depth = %d, want 2", d)
	}
}
