package simnet

import "testing"

func TestTopologyHops(t *testing.T) {
	cases := []struct {
		topo     Topology
		from, to int
		want     int
	}{
		{Crossbar{}, 0, 0, 0},
		{Crossbar{}, 3, 9, 1},
		{Mesh2D{W: 4, H: 4}, 0, 15, 6}, // (0,0)->(3,3)
		{Mesh2D{W: 4, H: 4}, 5, 6, 1},  // (1,1)->(2,1)
		{Mesh2D{W: 4, H: 4}, 2, 2, 0},  // self
		{Hypercube{}, 0, 7, 3},         // 000 -> 111
		{Hypercube{}, 5, 6, 2},         // 101 -> 110
		{Hypercube{}, 4, 4, 0},         // self
		{Ring{N: 8}, 0, 3, 3},          // forward
		{Ring{N: 8}, 0, 6, 2},          // backward is shorter
		{Ring{N: 8}, 1, 1, 0},          // self
	}
	for _, c := range cases {
		if got := c.topo.Hops(c.from, c.to); got != c.want {
			t.Errorf("%s.Hops(%d,%d) = %d, want %d", c.topo.Name(), c.from, c.to, got, c.want)
		}
	}
}

func TestTopologySymmetry(t *testing.T) {
	topos := []Topology{Crossbar{}, Mesh2D{W: 5, H: 3}, Hypercube{}, Ring{N: 15}}
	for _, topo := range topos {
		for a := 0; a < 15; a++ {
			for b := 0; b < 15; b++ {
				if topo.Hops(a, b) != topo.Hops(b, a) {
					t.Errorf("%s not symmetric at (%d,%d)", topo.Name(), a, b)
				}
				if a == b && topo.Hops(a, b) != 0 {
					t.Errorf("%s: self distance nonzero at %d", topo.Name(), a)
				}
			}
		}
	}
}

func TestPerHopLatencyAffectsDelivery(t *testing.T) {
	// Two processors 6 hops apart in a 4x4 mesh; per-hop 10µs.
	cfg := Config{
		Procs:    16,
		Latency:  US(1),
		Topology: Mesh2D{W: 4, H: 4},
		PerHop:   US(10),
	}
	s := closureSim(cfg)
	var arrived Time
	s.Inject(0, closureTask(func(ctx *Ctx) {
		ctx.Send(15, closureTask(func(ctx *Ctx) { arrived = ctx.Now() }))
	}), 0)
	s.Run()
	if want := US(61); arrived != want { // 1 + 6*10
		t.Errorf("arrival = %vµs, want 61", arrived.Microseconds())
	}

	// The same send on a crossbar takes base latency + one hop.
	cfg.Topology = Crossbar{}
	s2 := closureSim(cfg)
	var arrived2 Time
	s2.Inject(0, closureTask(func(ctx *Ctx) {
		ctx.Send(15, closureTask(func(ctx *Ctx) { arrived2 = ctx.Now() }))
	}), 0)
	s2.Run()
	if want := US(11); arrived2 != want {
		t.Errorf("crossbar arrival = %vµs, want 11", arrived2.Microseconds())
	}
}

func TestBroadcastPerDestinationDistance(t *testing.T) {
	cfg := Config{
		Procs:    4,
		Latency:  US(1),
		Topology: Ring{N: 4},
		PerHop:   US(5),
	}
	s := closureSim(cfg)
	arrivals := map[int]Time{}
	s.Inject(0, closureTask(func(ctx *Ctx) {
		ctx.Broadcast([]int{1, 2, 3}, closureTask(func(ctx *Ctx) {
			arrivals[ctx.Proc()] = ctx.Now()
		}))
	}), 0)
	s.Run()
	// Distances from 0 on a 4-ring: 1->1 hop, 2->2 hops, 3->1 hop.
	want := map[int]Time{1: US(6), 2: US(11), 3: US(6)}
	for p, at := range want {
		if arrivals[p] != at {
			t.Errorf("proc %d arrival = %vµs, want %vµs", p, arrivals[p].Microseconds(), at.Microseconds())
		}
	}
}
