package simnet

import (
	"testing"
)

// run builds a sim whose payloads are closures and executes it.
type closureTask func(ctx *Ctx)

func closureSim(cfg Config) *Sim {
	return New(cfg, func(ctx *Ctx, p Payload) { p.(closureTask)(ctx) })
}

func TestSingleProcessorSerializes(t *testing.T) {
	s := closureSim(Config{Procs: 1})
	for i := 0; i < 3; i++ {
		s.Inject(0, closureTask(func(ctx *Ctx) { ctx.Busy(US(10)) }), 0)
	}
	end := s.Run()
	if end != US(30) {
		t.Errorf("makespan = %v, want 30µs", end.Microseconds())
	}
	st := s.Stats()
	if st.Procs[0].Busy != US(30) || st.Procs[0].Tasks != 3 {
		t.Errorf("proc stats = %+v", st.Procs[0])
	}
}

func TestTwoProcessorsRunInParallel(t *testing.T) {
	s := closureSim(Config{Procs: 2})
	s.Inject(0, closureTask(func(ctx *Ctx) { ctx.Busy(US(10)) }), 0)
	s.Inject(1, closureTask(func(ctx *Ctx) { ctx.Busy(US(10)) }), 0)
	if end := s.Run(); end != US(10) {
		t.Errorf("makespan = %v, want 10µs", end.Microseconds())
	}
}

func TestMessageTiming(t *testing.T) {
	cfg := Config{Procs: 2, SendOverhead: US(5), RecvOverhead: US(3), Latency: US(0.5), TrackNetwork: true}
	s := closureSim(cfg)
	var receivedAt Time
	recv := closureTask(func(ctx *Ctx) {
		receivedAt = ctx.Now() // after recv overhead
		ctx.Busy(US(2))
	})
	s.Inject(0, closureTask(func(ctx *Ctx) {
		ctx.Busy(US(10)) // compute
		ctx.Send(1, recv)
		ctx.Busy(US(1)) // post-send work
	}), 0)
	end := s.Run()
	// Departure at 10+5=15, arrival 15.5, recv overhead 3 -> task body
	// at 18.5, done 20.5. Sender done at 16.
	if receivedAt != US(18.5) {
		t.Errorf("receive time = %vµs, want 18.5", receivedAt.Microseconds())
	}
	if end != US(20.5) {
		t.Errorf("makespan = %vµs, want 20.5", end.Microseconds())
	}
	st := s.Stats()
	if st.Procs[0].SendOverhead != US(5) || st.Procs[0].MsgsOut != 1 {
		t.Errorf("sender stats = %+v", st.Procs[0])
	}
	if st.Procs[1].RecvOverhead != US(3) || st.Procs[1].MsgsIn != 1 {
		t.Errorf("receiver stats = %+v", st.Procs[1])
	}
	if st.Messages != 1 {
		t.Errorf("messages = %d", st.Messages)
	}
	if st.NetworkBusy != US(0.5) {
		t.Errorf("network busy = %vµs", st.NetworkBusy.Microseconds())
	}
}

func TestZeroOverheadMessaging(t *testing.T) {
	s := closureSim(Config{Procs: 2})
	done := false
	s.Inject(0, closureTask(func(ctx *Ctx) {
		ctx.Send(1, closureTask(func(ctx *Ctx) { done = true }))
	}), 0)
	if end := s.Run(); end != 0 {
		t.Errorf("makespan = %v, want 0 with all-zero costs", end)
	}
	if !done {
		t.Error("message not delivered")
	}
}

func TestBroadcastHardwareVsSoftware(t *testing.T) {
	runBcast := func(software bool) (Time, Time) {
		cfg := Config{Procs: 4, SendOverhead: US(5), RecvOverhead: US(3), Latency: US(0.5), SoftwareBroadcast: software}
		s := closureSim(cfg)
		s.Inject(0, closureTask(func(ctx *Ctx) {
			ctx.Broadcast([]int{1, 2, 3}, closureTask(func(ctx *Ctx) { ctx.Busy(US(1)) }))
		}), 0)
		end := s.Run()
		return end, s.Stats().Procs[0].SendOverhead
	}
	endHW, sendHW := runBcast(false)
	// One overhead: depart 5, arrive 5.5, recv 3, busy 1 -> 9.5.
	if endHW != US(9.5) || sendHW != US(5) {
		t.Errorf("hardware broadcast end=%v send=%v", endHW.Microseconds(), sendHW.Microseconds())
	}
	endSW, sendSW := runBcast(true)
	// Serialized departures at 5,10,15; last arrival 15.5 +3 +1 = 19.5.
	if endSW != US(19.5) || sendSW != US(15) {
		t.Errorf("software broadcast end=%v send=%v", endSW.Microseconds(), sendSW.Microseconds())
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	s := closureSim(Config{Procs: 1})
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Inject(0, closureTask(func(ctx *Ctx) {
			order = append(order, i)
			ctx.Busy(US(1))
		}), 0)
	}
	s.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestLocalFollowOnTask(t *testing.T) {
	s := closureSim(Config{Procs: 1})
	var childStart Time
	s.Inject(0, closureTask(func(ctx *Ctx) {
		ctx.Busy(US(4))
		ctx.Local(closureTask(func(ctx *Ctx) {
			childStart = ctx.Now()
			ctx.Busy(US(1))
		}))
		ctx.Busy(US(6)) // parent continues after emitting
	}), 0)
	end := s.Run()
	if childStart != US(10) {
		t.Errorf("child start = %vµs, want 10 (after parent completes)", childStart.Microseconds())
	}
	if end != US(11) {
		t.Errorf("makespan = %vµs", end.Microseconds())
	}
}

func TestRunResumesAcrossPhases(t *testing.T) {
	s := closureSim(Config{Procs: 2})
	s.Inject(0, closureTask(func(ctx *Ctx) { ctx.Busy(US(7)) }), 0)
	if end := s.Run(); end != US(7) {
		t.Fatalf("phase 1 end = %v", end.Microseconds())
	}
	// Inject the next phase at the current clock.
	s.Inject(1, closureTask(func(ctx *Ctx) { ctx.Busy(US(5)) }), s.Now())
	if end := s.Run(); end != US(12) {
		t.Errorf("phase 2 end = %v, want 12", end.Microseconds())
	}
}

func TestInjectInPastPanics(t *testing.T) {
	s := closureSim(Config{Procs: 1})
	s.Inject(0, closureTask(func(ctx *Ctx) { ctx.Busy(US(5)) }), 0)
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for inject in the past")
		}
	}()
	s.Inject(0, closureTask(func(ctx *Ctx) {}), 0)
}

func TestNetworkBusyMerging(t *testing.T) {
	// Two overlapping flights and one disjoint: [0,4],[2,6],[10,11].
	got := mergeFlights([]flight{{0, 4}, {2, 6}, {10, 11}})
	if got != 7 {
		t.Errorf("merged = %d, want 7", got)
	}
	if mergeFlights(nil) != 0 {
		t.Error("empty merge should be 0")
	}
	// Identical intervals collapse.
	if mergeFlights([]flight{{5, 6}, {5, 6}, {5, 6}}) != 1 {
		t.Error("identical intervals should merge to length 1")
	}
}

// TestNetworkTrackingOptIn pins the gating: without TrackNetwork the
// send path keeps no flight records and Stats reports zero occupancy.
func TestNetworkTrackingOptIn(t *testing.T) {
	s := closureSim(Config{Procs: 2, Latency: US(0.5)})
	s.Inject(0, closureTask(func(ctx *Ctx) {
		ctx.Send(1, closureTask(func(ctx *Ctx) {}))
	}), 0)
	s.Run()
	st := s.Stats()
	if st.NetworkBusy != 0 {
		t.Errorf("untracked NetworkBusy = %v, want 0", st.NetworkBusy)
	}
	if st.Messages != 1 {
		t.Errorf("messages = %d", st.Messages)
	}
	if len(s.net.open) != 0 {
		t.Errorf("untracked run buffered %d flights", len(s.net.open))
	}
}

// TestNetAcctBoundedMatchesReference drives the incremental accountant
// past several compaction thresholds with unsorted, overlapping
// flights and checks it against the one-shot reference while its
// buffer stays bounded.
func TestNetAcctBoundedMatchesReference(t *testing.T) {
	var acct netAcct
	var all []flight
	// A deterministic pseudo-random walk: now advances monotonically,
	// departures land in [now, now+40), lengths in [1, 50).
	rnd := uint64(1)
	next := func(n uint64) Time {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		return Time(rnd % n)
	}
	var now Time
	for i := 0; i < 3*netCompactAt; i++ {
		now += next(3)
		dep := now + next(40)
		f := flight{dep, dep + 1 + next(49)}
		all = append(all, f)
		acct.add(f, now)
		if len(acct.open) > netCompactAt {
			t.Fatalf("open buffer grew to %d (threshold %d)", len(acct.open), netCompactAt)
		}
	}
	if got, want := acct.total(now), mergeFlights(all); got != want {
		t.Errorf("incremental union = %d, reference = %d", got, want)
	}
}

func TestDeterminism(t *testing.T) {
	build := func() Time {
		s := closureSim(Config{Procs: 4, SendOverhead: US(2), RecvOverhead: US(1), Latency: US(0.5)})
		var spawn closureTask
		depth := 0
		spawn = func(ctx *Ctx) {
			ctx.Busy(US(3))
			depth++
			if depth < 20 {
				ctx.Send((ctx.Proc()+1)%4, spawn)
				ctx.Send((ctx.Proc()+2)%4, closureTask(func(ctx *Ctx) { ctx.Busy(US(1)) }))
			}
		}
		s.Inject(0, spawn, 0)
		return s.Run()
	}
	a, b := build(), build()
	if a != b {
		t.Errorf("nondeterministic makespan: %v vs %v", a, b)
	}
}

func TestStatsUtilization(t *testing.T) {
	s := closureSim(Config{Procs: 2})
	s.Inject(0, closureTask(func(ctx *Ctx) { ctx.Busy(US(10)) }), 0)
	s.Inject(1, closureTask(func(ctx *Ctx) { ctx.Busy(US(5)) }), 0)
	s.Run()
	st := s.Stats()
	if got := st.AvgUtilization(); got != 0.75 {
		t.Errorf("utilization = %v, want 0.75", got)
	}
	if got := st.NetworkIdleFraction(); got != 1 {
		t.Errorf("network idle = %v, want 1 (no messages)", got)
	}
	if st.BusyTotal() != US(15) {
		t.Errorf("busy total = %v", st.BusyTotal().Microseconds())
	}
}
