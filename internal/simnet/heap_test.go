package simnet

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refHeap is the container/heap reference the 4-ary heap is checked
// against: same ordering (at, then seq), textbook implementation.
type refHeap []event

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Less(i, j int) bool { return h[i].less(h[j]) }
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TestHeap4MatchesReference drives both heaps through identical
// randomized push/pop interleavings and requires identical pop
// sequences. Sequence numbers are unique, so the order is total and
// any divergence is a heap bug, not a tie-break artifact.
func TestHeap4MatchesReference(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rnd := rand.New(rand.NewSource(int64(trial)))
		var h heap4[event]
		var ref refHeap
		seq := int64(0)
		push := func() {
			e := event{at: Time(rnd.Intn(50)), seq: seq, proc: int32(rnd.Intn(8))}
			seq++
			h.push(e)
			heap.Push(&ref, e)
		}
		for op := 0; op < 2000; op++ {
			if h.len() == 0 || rnd.Intn(3) != 0 {
				push()
				continue
			}
			got := h.pop()
			want := heap.Pop(&ref).(event)
			if got != want {
				t.Fatalf("trial %d op %d: pop = %+v, reference = %+v", trial, op, got, want)
			}
		}
		for h.len() > 0 {
			got, want := h.pop(), heap.Pop(&ref).(event)
			if got != want {
				t.Fatalf("trial %d drain: pop = %+v, reference = %+v", trial, got, want)
			}
		}
		if ref.Len() != 0 {
			t.Fatalf("trial %d: reference has %d leftovers", trial, ref.Len())
		}
	}
}

// TestHeap4PopOrderSorted checks the basic min-heap invariant on a
// pathological input: strictly descending times.
func TestHeap4PopOrderSorted(t *testing.T) {
	var h heap4[event]
	const n = 257 // crosses several 4-ary levels, not a power of 4
	for i := 0; i < n; i++ {
		h.push(event{at: Time(n - i), seq: int64(i)})
	}
	prev := h.pop()
	for h.len() > 0 {
		e := h.pop()
		if e.less(prev) {
			t.Fatalf("out of order: %+v after %+v", e, prev)
		}
		prev = e
	}
}

func TestTaskRingFIFO(t *testing.T) {
	var r taskRing
	payload := func(i int) Payload { return i }
	next := 0
	for i := 0; i < 100; i++ {
		r.push(pendTask{payload: payload(i)})
		// Drain in bursts to force wrap-around at several sizes.
		for r.len() > i%3 {
			got := r.pop()
			if got.payload.(int) != next {
				t.Fatalf("pop = %v, want %d", got.payload, next)
			}
			next++
		}
	}
	for r.len() > 0 {
		got := r.pop()
		if got.payload.(int) != next {
			t.Fatalf("drain pop = %v, want %d", got.payload, next)
		}
		next++
	}
	if next != 100 {
		t.Fatalf("popped %d of 100", next)
	}
}
