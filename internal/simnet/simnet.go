// Package simnet is a deterministic discrete-event simulator of a
// message-passing computer, the substrate under the paper's Nectar
// simulation (Section 4). It models a set of processors with FIFO task
// queues connected by a network with configurable wire latency and
// per-message send/receive processing overheads (Table 5-1), and it
// accounts busy/idle time per processor and occupancy of the network.
//
// The simulator is generic: clients (the mapping in internal/core)
// provide a Handler that is invoked when a task starts on a processor;
// the handler accrues busy time and emits local tasks and messages
// through the Ctx. Time is int64 nanoseconds, so the paper's 0.5 µs
// latency is exactly representable.
package simnet

import (
	"container/heap"
	"fmt"
	"sort"
	"strconv"

	"mpcrete/internal/obs"
)

// Time is simulated time in nanoseconds.
type Time int64

// Microseconds converts a time to float µs (for reporting).
func (t Time) Microseconds() float64 { return float64(t) / 1000 }

// US builds a Time from microseconds.
func US(us float64) Time { return Time(us * 1000) }

// Config describes the machine.
type Config struct {
	// Procs is the number of processors.
	Procs int
	// SendOverhead is the processor time consumed to send one message.
	SendOverhead Time
	// RecvOverhead is the processor time consumed to receive one
	// message, paid before the message's task runs.
	RecvOverhead Time
	// Latency is the base network transit time of a message.
	Latency Time
	// Topology, when non-nil, adds PerHop * Hops(src, dst) to each
	// message's transit time. A nil topology is distance-insensitive
	// (wormhole-style), as the paper assumes for Nectar.
	Topology Topology
	// PerHop is the additional transit time per network hop; only
	// meaningful with a non-nil Topology.
	PerHop Time
	// Contention, when set, models each network link as carrying one
	// message at a time (PerHop per link per message); requires a
	// RoutedTopology. Without it the network has infinite bandwidth,
	// as in the paper's simulator.
	Contention bool
	// SoftwareBroadcast, when set, models Broadcast as one
	// point-to-point send per destination (the sender pays SendOverhead
	// per destination); the default models hardware broadcast (one
	// SendOverhead total), as on Nectar.
	SoftwareBroadcast bool
}

// Payload is an opaque task description interpreted by the Handler.
type Payload any

// Handler runs a task. It must call Ctx methods to accrue busy time
// and to emit follow-on work; a task with zero accrued time is legal.
type Handler func(ctx *Ctx, p Payload)

// TraceKinder lets payloads label their busy spans in a timeline
// recording; payloads without it are recorded as "task".
type TraceKinder interface{ TraceKind() string }

func kindOf(p Payload) string {
	if k, ok := p.(TraceKinder); ok {
		return k.TraceKind()
	}
	return "task"
}

type task struct {
	payload Payload
	ready   Time
	seq     int64
	recv    bool // message delivery: pay RecvOverhead before running
}

type eventKind uint8

const (
	evReady  eventKind = iota // task becomes ready on a processor
	evFree                    // processor finishes its current task
	evDepart                  // message enters the network (contention)
)

type event struct {
	at   Time
	seq  int64
	kind eventKind
	proc int // destination processor
	from int // source processor (evDepart)
	tk   *task
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type proc struct {
	id        int
	pending   []*task // FIFO: ordered by ready-event arrival
	busyUntil Time
	running   bool

	busy     Time // total busy time (work + overheads)
	sendOver Time
	recvOver Time
	tasks    int
	msgsIn   int
	msgsOut  int

	// Idle-gap accounting (the quantitative form of Fig 5-5's busy/idle
	// alternation): a gap is the interval between two non-empty busy
	// spans. Zero-work tasks neither start nor end a gap.
	everBusy bool
	lastEnd  Time
	gaps     int
	gapMax   Time
	gapTotal Time

	maxQueue int // high-water mark of the pending FIFO
}

// ProcStats reports one processor's accounting.
type ProcStats struct {
	Busy         Time
	SendOverhead Time
	RecvOverhead Time
	Tasks        int
	MsgsIn       int
	MsgsOut      int
	// IdleGaps counts the gaps between consecutive busy spans;
	// IdleGapMax and IdleGapTotal are the largest and summed gap
	// lengths. Leading idle (before the first task) and trailing idle
	// (after the last) are not gaps.
	IdleGaps     int
	IdleGapMax   Time
	IdleGapTotal Time
	// MaxQueueDepth is the high-water mark of the task FIFO.
	MaxQueueDepth int
}

// Stats reports a completed simulation interval.
type Stats struct {
	Makespan Time
	Procs    []ProcStats
	Messages int
	// NetworkBusy is the union of message in-flight intervals.
	NetworkBusy Time
	// ContentionDelay is the total time messages spent waiting for
	// links beyond their uncontended transit (zero unless
	// Config.Contention is set).
	ContentionDelay Time
}

// BusyTotal sums processor busy time.
func (s *Stats) BusyTotal() Time {
	var t Time
	for _, p := range s.Procs {
		t += p.Busy
	}
	return t
}

// NetworkIdleFraction is 1 - NetworkBusy/Makespan (the 97-98% figure
// of Section 5.1).
func (s *Stats) NetworkIdleFraction() float64 {
	if s.Makespan == 0 {
		return 1
	}
	return 1 - float64(s.NetworkBusy)/float64(s.Makespan)
}

// IdleGapSummary aggregates idle gaps over processors: total count
// and the largest single gap.
func (s *Stats) IdleGapSummary() (gaps int, max Time) {
	for _, p := range s.Procs {
		gaps += p.IdleGaps
		if p.IdleGapMax > max {
			max = p.IdleGapMax
		}
	}
	return gaps, max
}

// AvgUtilization is mean busy/makespan over processors.
func (s *Stats) AvgUtilization() float64 {
	if s.Makespan == 0 || len(s.Procs) == 0 {
		return 0
	}
	var busy Time
	for _, p := range s.Procs {
		busy += p.Busy
	}
	return float64(busy) / (float64(s.Makespan) * float64(len(s.Procs)))
}

// Sim is a simulator instance. Drive it by injecting initial tasks and
// calling Run; the clock persists across Run calls, so a client can
// alternate injection and draining to model synchronized phases
// (MRA cycles) with oracle termination detection, as the paper's
// simulator does.
type Sim struct {
	cfg     Config
	handler Handler
	events  eventHeap
	procs   []*proc
	clock   Time
	seq     int64
	msgs    int
	flights []flight
	cont    *contention
	rec     *obs.Recorder
}

type flight struct{ dep, arr Time }

// New creates a simulator.
func New(cfg Config, handler Handler) *Sim {
	if cfg.Procs <= 0 {
		panic(fmt.Sprintf("simnet: Procs = %d", cfg.Procs))
	}
	if handler == nil {
		panic("simnet: nil handler")
	}
	if err := validateContention(cfg); err != nil {
		panic(err.Error())
	}
	s := &Sim{cfg: cfg, handler: handler}
	if cfg.Contention {
		s.cont = &contention{free: map[Link]Time{}}
	}
	for i := 0; i < cfg.Procs; i++ {
		s.procs = append(s.procs, &proc{id: i})
	}
	return s
}

// Config returns the machine description.
func (s *Sim) Config() Config { return s.cfg }

// Now returns the simulation clock.
func (s *Sim) Now() Time { return s.clock }

// Messages returns the number of messages sent so far (cheap, unlike
// a full Stats snapshot).
func (s *Sim) Messages() int { return s.msgs }

// SetRecorder attaches a timeline recorder (nil detaches). Busy spans
// are tagged with the payload's TraceKind, message flights appear on
// obs.NetworkTrack, and task-queue depth is sampled per processor.
func (s *Sim) SetRecorder(r *obs.Recorder) { s.rec = r }

// Inject schedules a task on processor p at time at (which must not be
// in the past).
func (s *Sim) Inject(p int, payload Payload, at Time) {
	if at < s.clock {
		panic(fmt.Sprintf("simnet: inject at %d before clock %d", at, s.clock))
	}
	s.post(&event{at: at, kind: evReady, proc: p, tk: &task{payload: payload, ready: at}})
}

func (s *Sim) post(e *event) {
	e.seq = s.seq
	s.seq++
	if e.tk != nil {
		e.tk.seq = e.seq
	}
	heap.Push(&s.events, e)
}

// Run processes events until the machine quiesces, returning the
// clock. Call Stats for accounting.
func (s *Sim) Run() Time {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*event)
		s.clock = e.at
		p := s.procs[e.proc]
		switch e.kind {
		case evDepart:
			arr := s.cont.traverse(&s.cfg, e.from, e.proc, e.at)
			s.flights = append(s.flights, flight{e.at, arr})
			s.recordFlight(e.from, e.proc, e.at, arr)
			e.tk.ready = arr
			s.post(&event{at: arr, kind: evReady, proc: e.proc, tk: e.tk})
			continue
		case evReady:
			p.pending = append(p.pending, e.tk)
			if len(p.pending) > p.maxQueue {
				p.maxQueue = len(p.pending)
			}
			if s.rec != nil {
				s.rec.Sample(p.id, "queue", int64(e.at), float64(len(p.pending)))
			}
		case evFree:
			p.running = false
		}
		s.tryStart(p)
	}
	return s.clock
}

func (s *Sim) tryStart(p *proc) {
	if p.running || len(p.pending) == 0 {
		return
	}
	tk := p.pending[0]
	p.pending = p.pending[1:]
	p.running = true

	start := s.clock
	if p.busyUntil > start {
		// Defensive: cannot happen, the free event releases exactly at
		// busyUntil.
		start = p.busyUntil
	}
	ctx := &Ctx{sim: s, proc: p, start: start}
	if tk.recv {
		ctx.accum += s.cfg.RecvOverhead
		p.recvOver += s.cfg.RecvOverhead
		p.msgsIn++
	}
	s.handler(ctx, tk.payload)

	end := start + ctx.accum
	p.busyUntil = end
	p.busy += ctx.accum
	p.tasks++
	if ctx.accum > 0 {
		if p.everBusy && start > p.lastEnd {
			gap := start - p.lastEnd
			p.gaps++
			p.gapTotal += gap
			if gap > p.gapMax {
				p.gapMax = gap
			}
		}
		p.everBusy = true
		if end > p.lastEnd {
			p.lastEnd = end
		}
		if s.rec != nil {
			s.rec.Span(p.id, kindOf(tk.payload), int64(start), int64(end))
		}
	}
	if s.rec != nil {
		s.rec.Sample(p.id, "queue", int64(s.clock), float64(len(p.pending)))
	}
	s.post(&event{at: end, kind: evFree, proc: p.id})
}

// recordFlight logs a message's network transit on the network track.
func (s *Sim) recordFlight(from, to int, dep, arr Time) {
	if s.rec == nil {
		return
	}
	s.rec.Span(obs.NetworkTrack, "flight", int64(dep), int64(arr),
		obs.Label{Key: "from", Value: strconv.Itoa(from)},
		obs.Label{Key: "to", Value: strconv.Itoa(to)})
}

// Stats snapshots accounting up to the current clock.
func (s *Sim) Stats() Stats {
	st := Stats{Makespan: s.clock, Messages: s.msgs}
	for _, p := range s.procs {
		st.Procs = append(st.Procs, ProcStats{
			Busy:          p.busy,
			SendOverhead:  p.sendOver,
			RecvOverhead:  p.recvOver,
			Tasks:         p.tasks,
			MsgsIn:        p.msgsIn,
			MsgsOut:       p.msgsOut,
			IdleGaps:      p.gaps,
			IdleGapMax:    p.gapMax,
			IdleGapTotal:  p.gapTotal,
			MaxQueueDepth: p.maxQueue,
		})
	}
	st.NetworkBusy = mergeFlights(s.flights)
	if s.cont != nil {
		st.ContentionDelay = s.cont.delay
	}
	return st
}

// mergeFlights computes the union length of in-flight intervals.
func mergeFlights(fs []flight) Time {
	if len(fs) == 0 {
		return 0
	}
	sorted := make([]flight, len(fs))
	copy(sorted, fs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].dep < sorted[j].dep })
	var total Time
	curStart, curEnd := sorted[0].dep, sorted[0].arr
	for _, f := range sorted[1:] {
		if f.dep > curEnd {
			total += curEnd - curStart
			curStart, curEnd = f.dep, f.arr
		} else if f.arr > curEnd {
			curEnd = f.arr
		}
	}
	total += curEnd - curStart
	return total
}

// Ctx is the execution context of a running task.
type Ctx struct {
	sim   *Sim
	proc  *proc
	start Time
	accum Time
}

// Proc returns the processor id the task runs on.
func (c *Ctx) Proc() int { return c.proc.id }

// Now returns the task-local clock: start time plus accrued busy time.
func (c *Ctx) Now() Time { return c.start + c.accum }

// Busy accrues d of processing time.
func (c *Ctx) Busy(d Time) {
	if d < 0 {
		panic("simnet: negative busy time")
	}
	c.accum += d
}

// Local enqueues a follow-on task on this processor, ready at the
// task-local clock, with no communication cost.
func (c *Ctx) Local(payload Payload) {
	c.sim.post(&event{at: c.Now(), kind: evReady, proc: c.proc.id,
		tk: &task{payload: payload, ready: c.Now()}})
}

// Send transmits a message to processor `to`. The sender pays
// SendOverhead (busy time); the message arrives Latency later and its
// receiver pays RecvOverhead before the payload task runs. Sending to
// self is modeled with the same costs.
func (c *Ctx) Send(to int, payload Payload) {
	s := c.sim
	c.accum += s.cfg.SendOverhead
	c.proc.sendOver += s.cfg.SendOverhead
	c.proc.msgsOut++
	dep := c.Now()
	s.msgs++
	tk := &task{payload: payload, recv: true}
	if s.cont != nil {
		s.post(&event{at: dep, kind: evDepart, proc: to, from: c.proc.id, tk: tk})
		return
	}
	arr := dep + s.transit(c.proc.id, to)
	tk.ready = arr
	s.flights = append(s.flights, flight{dep, arr})
	s.recordFlight(c.proc.id, to, dep, arr)
	s.post(&event{at: arr, kind: evReady, proc: to, tk: tk})
}

// Broadcast transmits a message to every processor in dests. With
// hardware broadcast (the default) the sender pays one SendOverhead;
// with Config.SoftwareBroadcast it pays one per destination and the
// departures are serialized.
func (c *Ctx) Broadcast(dests []int, payload Payload) {
	s := c.sim
	if s.cfg.SoftwareBroadcast {
		for _, to := range dests {
			c.Send(to, payload)
		}
		return
	}
	c.accum += s.cfg.SendOverhead
	c.proc.sendOver += s.cfg.SendOverhead
	c.proc.msgsOut += len(dests)
	dep := c.Now()
	if s.rec != nil {
		s.rec.Instant(c.proc.id, "broadcast", int64(dep),
			obs.Label{Key: "dests", Value: strconv.Itoa(len(dests))})
	}
	for _, to := range dests {
		s.msgs++
		tk := &task{payload: payload, recv: true}
		if s.cont != nil {
			s.post(&event{at: dep, kind: evDepart, proc: to, from: c.proc.id, tk: tk})
			continue
		}
		arr := dep + s.transit(c.proc.id, to)
		tk.ready = arr
		s.flights = append(s.flights, flight{dep, arr})
		s.recordFlight(c.proc.id, to, dep, arr)
		s.post(&event{at: arr, kind: evReady, proc: to, tk: tk})
	}
}
