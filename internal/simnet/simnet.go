// Package simnet is a deterministic discrete-event simulator of a
// message-passing computer, the substrate under the paper's Nectar
// simulation (Section 4). It models a set of processors with FIFO task
// queues connected by a network with configurable wire latency and
// per-message send/receive processing overheads (Table 5-1), and it
// accounts busy/idle time per processor and occupancy of the network.
//
// The simulator is generic: clients (the mapping in internal/core)
// provide a Handler that is invoked when a task starts on a processor;
// the handler accrues busy time and emits local tasks and messages
// through the Ctx. Time is int64 nanoseconds, so the paper's 0.5 µs
// latency is exactly representable.
//
// The event loop is built for replaying fine-grained traces (~100
// simulated instructions per task over hundreds of thousands of
// events): events are plain values in a 4-ary min-heap, pending tasks
// live in per-processor ring buffers, and all optional accounting
// (network occupancy, timeline recording) is gated off the hot path,
// so a warmed-up uninstrumented run performs no allocations at all.
package simnet

import (
	"fmt"
	"slices"
	"strconv"

	"mpcrete/internal/obs"
)

// Time is simulated time in nanoseconds.
type Time int64

// Microseconds converts a time to float µs (for reporting).
func (t Time) Microseconds() float64 { return float64(t) / 1000 }

// US builds a Time from microseconds.
func US(us float64) Time { return Time(us * 1000) }

// Config describes the machine.
type Config struct {
	// Procs is the number of processors.
	Procs int
	// SendOverhead is the processor time consumed to send one message.
	SendOverhead Time
	// RecvOverhead is the processor time consumed to receive one
	// message, paid before the message's task runs.
	RecvOverhead Time
	// Latency is the base network transit time of a message.
	Latency Time
	// Topology, when non-nil, adds PerHop * Hops(src, dst) to each
	// message's transit time. A nil topology is distance-insensitive
	// (wormhole-style), as the paper assumes for Nectar.
	Topology Topology
	// PerHop is the additional transit time per network hop; only
	// meaningful with a non-nil Topology.
	PerHop Time
	// Contention, when set, models each network link as carrying one
	// message at a time (PerHop per link per message); requires a
	// RoutedTopology. Without it the network has infinite bandwidth,
	// as in the paper's simulator.
	Contention bool
	// SoftwareBroadcast, when set, models Broadcast as one
	// point-to-point send per destination (the sender pays SendOverhead
	// per destination); the default models hardware broadcast (one
	// SendOverhead total), as on Nectar.
	SoftwareBroadcast bool
	// TrackNetwork enables network-occupancy accounting: with it set,
	// Stats reports NetworkBusy (the union of message in-flight
	// intervals — the §5.1 97-98% idleness figure). It is opt-in
	// because the accounting costs memory and time per message; without
	// it (and without a recorder) the send path does no flight
	// bookkeeping at all and Stats reports NetworkBusy = 0.
	TrackNetwork bool
	// PendingHint preallocates each processor's pending-task ring to
	// hold at least this many tasks, sized from trace statistics by
	// clients that know their workload. Zero means a small default;
	// rings grow on demand either way.
	PendingHint int
}

// Payload is an opaque task description interpreted by the Handler.
type Payload any

// Handler runs a task. It must call Ctx methods to accrue busy time
// and to emit follow-on work; a task with zero accrued time is legal.
type Handler func(ctx *Ctx, p Payload)

// TraceKinder lets payloads label their busy spans in a timeline
// recording; payloads without it are recorded as "task".
type TraceKinder interface{ TraceKind() string }

func kindOf(p Payload) string {
	if k, ok := p.(TraceKinder); ok {
		return k.TraceKind()
	}
	return "task"
}

type eventKind uint8

const (
	evReady  eventKind = iota // task becomes ready on a processor
	evFree                    // processor finishes its current task
	evDepart                  // message enters the network (contention)
)

// event is one schedule entry. Events are stored by value in the
// 4-ary heap — there is no boxed task object; the task is just the
// (payload, recv) pair carried in the event and, once ready, in the
// processor's pending ring.
type event struct {
	at      Time
	seq     int64
	payload Payload
	kind    eventKind
	recv    bool  // message delivery: pay RecvOverhead before running
	proc    int32 // destination processor
	from    int32 // source processor (evDepart)
}

// less orders events by time, then by posting sequence — a total
// order, so the pop sequence is independent of heap internals.
func (e event) less(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// pendTask is one entry of a processor's FIFO.
type pendTask struct {
	payload Payload
	recv    bool
}

// taskRing is a growable power-of-two ring buffer FIFO. The previous
// implementation re-sliced a shared slice (pending = pending[1:]),
// which leaked capacity and re-allocated continuously; the ring
// reaches a steady state after warm-up and never allocates again.
type taskRing struct {
	buf  []pendTask // len(buf) is a power of two (or zero)
	head int
	n    int
}

func (r *taskRing) len() int { return r.n }

func (r *taskRing) push(t pendTask) {
	if r.n == len(r.buf) {
		r.grow(2 * r.n)
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = t
	r.n++
}

func (r *taskRing) pop() pendTask {
	t := r.buf[r.head]
	r.buf[r.head] = pendTask{} // release the payload reference
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return t
}

// grow re-allocates the ring to hold at least want entries (rounded up
// to a power of two), unwrapping the live region.
func (r *taskRing) grow(want int) {
	size := 8
	for size < want {
		size *= 2
	}
	buf := make([]pendTask, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = buf, 0
}

type proc struct {
	id        int
	pending   taskRing // FIFO: ordered by ready-event arrival
	busyUntil Time
	running   bool

	busy     Time // total busy time (work + overheads)
	sendOver Time
	recvOver Time
	tasks    int
	msgsIn   int
	msgsOut  int

	// Idle-gap accounting (the quantitative form of Fig 5-5's busy/idle
	// alternation): a gap is the interval between two non-empty busy
	// spans. Zero-work tasks neither start nor end a gap.
	everBusy bool
	lastEnd  Time
	gaps     int
	gapMax   Time
	gapTotal Time

	maxQueue int // high-water mark of the pending FIFO
}

// ProcStats reports one processor's accounting.
type ProcStats struct {
	Busy         Time
	SendOverhead Time
	RecvOverhead Time
	Tasks        int
	MsgsIn       int
	MsgsOut      int
	// IdleGaps counts the gaps between consecutive busy spans;
	// IdleGapMax and IdleGapTotal are the largest and summed gap
	// lengths. Leading idle (before the first task) and trailing idle
	// (after the last) are not gaps.
	IdleGaps     int
	IdleGapMax   Time
	IdleGapTotal Time
	// MaxQueueDepth is the high-water mark of the task FIFO.
	MaxQueueDepth int
}

// Stats reports a completed simulation interval.
type Stats struct {
	Makespan Time
	Procs    []ProcStats
	Messages int
	// NetworkBusy is the union of message in-flight intervals; it is
	// only accounted (and non-zero) with Config.TrackNetwork set.
	NetworkBusy Time
	// ContentionDelay is the total time messages spent waiting for
	// links beyond their uncontended transit (zero unless
	// Config.Contention is set).
	ContentionDelay Time
}

// BusyTotal sums processor busy time.
func (s *Stats) BusyTotal() Time {
	var t Time
	for _, p := range s.Procs {
		t += p.Busy
	}
	return t
}

// NetworkIdleFraction is 1 - NetworkBusy/Makespan (the 97-98% figure
// of Section 5.1).
func (s *Stats) NetworkIdleFraction() float64 {
	if s.Makespan == 0 {
		return 1
	}
	return 1 - float64(s.NetworkBusy)/float64(s.Makespan)
}

// IdleGapSummary aggregates idle gaps over processors: total count
// and the largest single gap.
func (s *Stats) IdleGapSummary() (gaps int, max Time) {
	for _, p := range s.Procs {
		gaps += p.IdleGaps
		if p.IdleGapMax > max {
			max = p.IdleGapMax
		}
	}
	return gaps, max
}

// AvgUtilization is mean busy/makespan over processors.
func (s *Stats) AvgUtilization() float64 {
	if s.Makespan == 0 || len(s.Procs) == 0 {
		return 0
	}
	var busy Time
	for _, p := range s.Procs {
		busy += p.Busy
	}
	return float64(busy) / (float64(s.Makespan) * float64(len(s.Procs)))
}

// Sim is a simulator instance. Drive it by injecting initial tasks and
// calling Run; the clock persists across Run calls, so a client can
// alternate injection and draining to model synchronized phases
// (MRA cycles) with oracle termination detection, as the paper's
// simulator does.
type Sim struct {
	cfg       Config
	handler   Handler
	events    heap4[event]
	procs     []proc
	clock     Time
	seq       int64
	msgs      int
	processed int64
	net       netAcct
	ctx       Ctx // reused across tasks; valid only during a handler call
	cont      *contention
	rec       *obs.Recorder
}

type flight struct{ dep, arr Time }

// New creates a simulator.
func New(cfg Config, handler Handler) *Sim {
	if cfg.Procs <= 0 {
		panic(fmt.Sprintf("simnet: Procs = %d", cfg.Procs))
	}
	if handler == nil {
		panic("simnet: nil handler")
	}
	if err := validateContention(cfg); err != nil {
		panic(err.Error())
	}
	s := &Sim{cfg: cfg, handler: handler}
	if cfg.Contention {
		s.cont = &contention{free: map[Link]Time{}}
	}
	s.procs = make([]proc, cfg.Procs)
	for i := range s.procs {
		s.procs[i].id = i
		if cfg.PendingHint > 0 {
			s.procs[i].pending.grow(cfg.PendingHint)
		}
	}
	s.events.grow(64)
	return s
}

// Config returns the machine description.
func (s *Sim) Config() Config { return s.cfg }

// Now returns the simulation clock.
func (s *Sim) Now() Time { return s.clock }

// Messages returns the number of messages sent so far (cheap, unlike
// a full Stats snapshot).
func (s *Sim) Messages() int { return s.msgs }

// EventsProcessed returns the number of discrete events the simulator
// has executed — the natural unit of simulation throughput.
func (s *Sim) EventsProcessed() int64 { return s.processed }

// SetRecorder attaches a timeline recorder (nil detaches). Busy spans
// are tagged with the payload's TraceKind, message flights appear on
// obs.NetworkTrack, and task-queue depth is sampled per processor.
func (s *Sim) SetRecorder(r *obs.Recorder) { s.rec = r }

// Inject schedules a task on processor p at time at (which must not be
// in the past).
func (s *Sim) Inject(p int, payload Payload, at Time) {
	if at < s.clock {
		panic(fmt.Sprintf("simnet: inject at %d before clock %d", at, s.clock))
	}
	s.post(event{at: at, kind: evReady, proc: int32(p), payload: payload})
}

func (s *Sim) post(e event) {
	e.seq = s.seq
	s.seq++
	s.events.push(e)
}

// Run processes events until the machine quiesces, returning the
// clock. Call Stats for accounting.
func (s *Sim) Run() Time {
	for s.events.len() > 0 {
		e := s.events.pop()
		s.processed++
		s.clock = e.at
		p := &s.procs[e.proc]
		switch e.kind {
		case evDepart:
			arr := s.cont.traverse(&s.cfg, int(e.from), int(e.proc), e.at)
			s.trackFlight(int(e.from), int(e.proc), e.at, arr)
			s.post(event{at: arr, kind: evReady, proc: e.proc, payload: e.payload, recv: e.recv})
			continue
		case evReady:
			p.pending.push(pendTask{payload: e.payload, recv: e.recv})
			if n := p.pending.len(); n > p.maxQueue {
				p.maxQueue = n
			}
			if s.rec != nil {
				s.rec.Sample(p.id, "queue", int64(e.at), float64(p.pending.len()))
			}
		case evFree:
			p.running = false
		}
		s.tryStart(p)
	}
	return s.clock
}

func (s *Sim) tryStart(p *proc) {
	if p.running || p.pending.len() == 0 {
		return
	}
	tk := p.pending.pop()
	p.running = true

	start := s.clock
	if p.busyUntil > start {
		// Defensive: cannot happen, the free event releases exactly at
		// busyUntil.
		start = p.busyUntil
	}
	s.ctx = Ctx{sim: s, proc: p, start: start}
	ctx := &s.ctx
	if tk.recv {
		ctx.accum += s.cfg.RecvOverhead
		p.recvOver += s.cfg.RecvOverhead
		p.msgsIn++
	}
	s.handler(ctx, tk.payload)

	end := start + ctx.accum
	p.busyUntil = end
	p.busy += ctx.accum
	p.tasks++
	if ctx.accum > 0 {
		if p.everBusy && start > p.lastEnd {
			gap := start - p.lastEnd
			p.gaps++
			p.gapTotal += gap
			if gap > p.gapMax {
				p.gapMax = gap
			}
		}
		p.everBusy = true
		if end > p.lastEnd {
			p.lastEnd = end
		}
		if s.rec != nil {
			s.rec.Span(p.id, kindOf(tk.payload), int64(start), int64(end))
		}
	}
	if s.rec != nil {
		s.rec.Sample(p.id, "queue", int64(s.clock), float64(p.pending.len()))
	}
	s.post(event{at: end, kind: evFree, proc: int32(p.id)})
}

// trackFlight feeds a message transit into the opt-in occupancy
// accounting and the timeline recording, whichever are attached.
func (s *Sim) trackFlight(from, to int, dep, arr Time) {
	if s.cfg.TrackNetwork {
		s.net.add(flight{dep, arr}, s.clock)
	}
	if s.rec != nil {
		s.rec.Span(obs.NetworkTrack, "flight", int64(dep), int64(arr),
			obs.Label{Key: "from", Value: strconv.Itoa(from)},
			obs.Label{Key: "to", Value: strconv.Itoa(to)})
	}
}

// Stats snapshots accounting up to the current clock.
func (s *Sim) Stats() Stats {
	st := Stats{Makespan: s.clock, Messages: s.msgs}
	st.Procs = make([]ProcStats, 0, len(s.procs))
	for i := range s.procs {
		p := &s.procs[i]
		st.Procs = append(st.Procs, ProcStats{
			Busy:          p.busy,
			SendOverhead:  p.sendOver,
			RecvOverhead:  p.recvOver,
			Tasks:         p.tasks,
			MsgsIn:        p.msgsIn,
			MsgsOut:       p.msgsOut,
			IdleGaps:      p.gaps,
			IdleGapMax:    p.gapMax,
			IdleGapTotal:  p.gapTotal,
			MaxQueueDepth: p.maxQueue,
		})
	}
	st.NetworkBusy = s.net.total(s.clock)
	if s.cont != nil {
		st.ContentionDelay = s.cont.delay
	}
	return st
}

// netAcct accumulates the union length of message in-flight intervals
// in bounded memory. Flights arrive unsorted (departure times are
// task-local clocks ahead of the global clock), so they buffer until a
// threshold and are then sorted, merged, and folded: a merged interval
// that ends at or before the current clock can never be extended —
// every future flight departs at or after the clock, and a departure
// exactly at a folded endpoint contributes the same union length as
// its merged continuation would — so its length moves into a running
// total and its slot is reclaimed. The previous implementation kept
// every flight for a terminal sort, which grew without bound on long
// sweeps.
type netAcct struct {
	open   []flight
	closed Time
}

// netCompactAt bounds the open-flight buffer: 4096 entries is 64 KiB
// and amortizes the sort to ~log(4096) comparisons per message.
const netCompactAt = 4096

// flightByDep orders flights by departure; non-capturing, so sorting
// with it does not allocate.
func flightByDep(a, b flight) int {
	switch {
	case a.dep < b.dep:
		return -1
	case a.dep > b.dep:
		return 1
	default:
		return 0
	}
}

func (n *netAcct) add(f flight, now Time) {
	n.open = append(n.open, f)
	if len(n.open) >= netCompactAt {
		n.compact(now)
	}
}

// compact sorts and merges the open buffer in place, folding closed
// intervals into the running total. Afterwards open holds only
// disjoint intervals that extend past now, in sorted order.
func (n *netAcct) compact(now Time) {
	if len(n.open) == 0 {
		return
	}
	slices.SortFunc(n.open, flightByDep)
	out := n.open[:0]
	cur := n.open[0]
	fold := func(f flight) {
		if f.arr <= now {
			n.closed += f.arr - f.dep
		} else {
			out = append(out, f)
		}
	}
	for _, f := range n.open[1:] {
		if f.dep > cur.arr {
			fold(cur)
			cur = f
		} else if f.arr > cur.arr {
			cur.arr = f.arr
		}
	}
	fold(cur)
	n.open = out
}

// total returns the union length of all recorded flights.
func (n *netAcct) total(now Time) Time {
	n.compact(now)
	t := n.closed
	for _, f := range n.open {
		t += f.arr - f.dep
	}
	return t
}

// mergeFlights computes the union length of in-flight intervals in one
// shot — the reference implementation netAcct is property-tested
// against.
func mergeFlights(fs []flight) Time {
	if len(fs) == 0 {
		return 0
	}
	sorted := make([]flight, len(fs))
	copy(sorted, fs)
	slices.SortFunc(sorted, flightByDep)
	var total Time
	curStart, curEnd := sorted[0].dep, sorted[0].arr
	for _, f := range sorted[1:] {
		if f.dep > curEnd {
			total += curEnd - curStart
			curStart, curEnd = f.dep, f.arr
		} else if f.arr > curEnd {
			curEnd = f.arr
		}
	}
	total += curEnd - curStart
	return total
}

// Ctx is the execution context of a running task. It is owned by the
// simulator and valid only for the duration of the handler call; a
// handler must not retain it.
type Ctx struct {
	sim   *Sim
	proc  *proc
	start Time
	accum Time
}

// Proc returns the processor id the task runs on.
func (c *Ctx) Proc() int { return c.proc.id }

// Now returns the task-local clock: start time plus accrued busy time.
func (c *Ctx) Now() Time { return c.start + c.accum }

// Busy accrues d of processing time.
func (c *Ctx) Busy(d Time) {
	if d < 0 {
		panic("simnet: negative busy time")
	}
	c.accum += d
}

// Local enqueues a follow-on task on this processor, ready at the
// task-local clock, with no communication cost.
func (c *Ctx) Local(payload Payload) {
	c.sim.post(event{at: c.Now(), kind: evReady, proc: int32(c.proc.id), payload: payload})
}

// Send transmits a message to processor `to`. The sender pays
// SendOverhead (busy time); the message arrives Latency later and its
// receiver pays RecvOverhead before the payload task runs. Sending to
// self is modeled with the same costs.
func (c *Ctx) Send(to int, payload Payload) {
	s := c.sim
	c.accum += s.cfg.SendOverhead
	c.proc.sendOver += s.cfg.SendOverhead
	c.proc.msgsOut++
	dep := c.Now()
	s.msgs++
	if s.cont != nil {
		s.post(event{at: dep, kind: evDepart, proc: int32(to), from: int32(c.proc.id), payload: payload, recv: true})
		return
	}
	arr := dep + s.transit(c.proc.id, to)
	s.trackFlight(c.proc.id, to, dep, arr)
	s.post(event{at: arr, kind: evReady, proc: int32(to), payload: payload, recv: true})
}

// Broadcast transmits a message to every processor in dests. With
// hardware broadcast (the default) the sender pays one SendOverhead;
// with Config.SoftwareBroadcast it pays one per destination and the
// departures are serialized.
func (c *Ctx) Broadcast(dests []int, payload Payload) {
	s := c.sim
	if s.cfg.SoftwareBroadcast {
		for _, to := range dests {
			c.Send(to, payload)
		}
		return
	}
	c.accum += s.cfg.SendOverhead
	c.proc.sendOver += s.cfg.SendOverhead
	c.proc.msgsOut += len(dests)
	dep := c.Now()
	if s.rec != nil {
		s.rec.Instant(c.proc.id, "broadcast", int64(dep),
			obs.Label{Key: "dests", Value: strconv.Itoa(len(dests))})
	}
	for _, to := range dests {
		s.msgs++
		if s.cont != nil {
			s.post(event{at: dep, kind: evDepart, proc: int32(to), from: int32(c.proc.id), payload: payload, recv: true})
			continue
		}
		arr := dep + s.transit(c.proc.id, to)
		s.trackFlight(c.proc.id, to, dep, arr)
		s.post(event{at: arr, kind: evReady, proc: int32(to), payload: payload, recv: true})
	}
}
