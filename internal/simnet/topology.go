package simnet

import (
	"fmt"
	"math/bits"
)

// Topology models the interconnection network's distance metric. A
// message's transit time is Config.Latency + Config.PerHop * Hops(src,
// dst) — with wormhole routing (the technology the paper credits for
// making MPCs viable for production systems) the per-hop term is small
// and nearly distance-insensitive; with the first generation's
// store-and-forward routing it dominates.
type Topology interface {
	// Hops returns the network distance between two processors.
	Hops(from, to int) int
	// Name labels the topology in reports.
	Name() string
}

// Crossbar is a full crossbar (or an idealized single-hop network such
// as Nectar's HUB): every pair is one hop apart.
type Crossbar struct{}

// Hops returns 1 for distinct processors and 0 for self-sends.
func (Crossbar) Hops(from, to int) int {
	if from == to {
		return 0
	}
	return 1
}

// Name implements Topology.
func (Crossbar) Name() string { return "crossbar" }

// Mesh2D is a W x H grid with dimension-ordered routing; processor i
// sits at (i mod W, i div W).
type Mesh2D struct {
	W, H int
}

// Hops returns the Manhattan distance.
func (m Mesh2D) Hops(from, to int) int {
	fx, fy := from%m.W, from/m.W
	tx, ty := to%m.W, to/m.W
	return abs(fx-tx) + abs(fy-ty)
}

// Name implements Topology.
func (m Mesh2D) Name() string { return fmt.Sprintf("mesh%dx%d", m.W, m.H) }

// Hypercube connects processors whose ids differ in one bit, as on the
// Cosmic Cube; distance is the Hamming distance.
type Hypercube struct{}

// Hops returns the Hamming distance of the ids.
func (Hypercube) Hops(from, to int) int {
	return bits.OnesCount(uint(from ^ to))
}

// Name implements Topology.
func (Hypercube) Name() string { return "hypercube" }

// Ring is a bidirectional ring of N processors.
type Ring struct {
	N int
}

// Hops returns the shorter circular distance.
func (r Ring) Hops(from, to int) int {
	d := abs(from - to)
	if alt := r.N - d; alt < d {
		return alt
	}
	return d
}

// Name implements Topology.
func (r Ring) Name() string { return fmt.Sprintf("ring%d", r.N) }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// transit computes a message's network time under the configuration.
func (s *Sim) transit(from, to int) Time {
	t := s.cfg.Latency
	if s.cfg.Topology != nil {
		t += s.cfg.PerHop * Time(s.cfg.Topology.Hops(from, to))
	}
	return t
}
