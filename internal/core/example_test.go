package core_test

import (
	"fmt"
	"log"

	"mpcrete/internal/core"
	"mpcrete/internal/trace"
)

// Example simulates a tiny hand-built trace on a 4-processor machine
// and reports the speedup over the single-processor base case.
func Example() {
	// One cycle: four independent right activations on four buckets.
	tr := &trace.Trace{
		Name:     "tiny",
		NBuckets: 4,
		Cycles: []*trace.Cycle{{
			Changes: 1,
			Roots: []*trace.Activation{
				{Node: 0, Side: trace.RightSide, Bucket: 0},
				{Node: 1, Side: trace.RightSide, Bucket: 1},
				{Node: 2, Side: trace.RightSide, Bucket: 2},
				{Node: 3, Side: trace.RightSide, Bucket: 3},
			},
		}},
	}
	cfg := core.Config{
		MatchProcs: 4,
		Costs:      core.DefaultCosts(),
		Latency:    core.NectarLatency(),
	}
	sp, res, base, err := core.Speedup(tr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1 proc: %.1fµs, 4 procs: %.1fµs, speedup %.2f\n",
		base.Makespan.Microseconds(), res.Makespan.Microseconds(), sp)
	// Output: 1 proc: 94.5µs, 4 procs: 46.5µs, speedup 2.03
}
