package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"mpcrete/internal/obs"
	"mpcrete/internal/sched"
	"mpcrete/internal/simnet"
	"mpcrete/internal/trace"
)

// Option mutates a Config under construction; see NewConfig.
type Option func(*Config)

// NewConfig builds a Config for the common case: the paper's cost
// model (Section 4) and the Nectar-class network latency, with the
// given number of match processors. Options override the defaults.
func NewConfig(procs int, opts ...Option) Config {
	cfg := Config{
		MatchProcs: procs,
		Costs:      DefaultCosts(),
		Latency:    NectarLatency(),
	}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithCosts overrides the node-activation cost model.
func WithCosts(c CostModel) Option { return func(cfg *Config) { cfg.Costs = c } }

// WithOverhead selects a message-processing overhead setting
// (Table 5-1).
func WithOverhead(o OverheadSetting) Option { return func(cfg *Config) { cfg.Overhead = o } }

// WithLatency overrides the interconnection-network latency.
func WithLatency(l simnet.Time) Option { return func(cfg *Config) { cfg.Latency = l } }

// WithTopology selects a distance-sensitive network model with the
// given added transit time per hop.
func WithTopology(t simnet.Topology, perHop simnet.Time) Option {
	return func(cfg *Config) { cfg.Topology = t; cfg.PerHop = perHop }
}

// WithContention models finite link bandwidth (requires a routed
// topology; see Config.Contention).
func WithContention() Option { return func(cfg *Config) { cfg.Contention = true } }

// WithPartition fixes the bucket-to-processor map.
func WithPartition(p sched.Partition) Option { return func(cfg *Config) { cfg.Partition = p } }

// WithPerCycle overrides the partition cycle by cycle (the off-line
// greedy redistribution experiment).
func WithPerCycle(ps []sched.Partition) Option { return func(cfg *Config) { cfg.PerCycle = ps } }

// WithRebalance turns on the online adaptive repartitioner with the
// given detector knobs.
func WithRebalance(r sched.Rebalance) Option { return func(cfg *Config) { cfg.Rebalance = r } }

// WithSoftwareBroadcast serializes the cycle-start broadcast.
func WithSoftwareBroadcast() Option { return func(cfg *Config) { cfg.SoftwareBroadcast = true } }

// WithCentralRoots selects the centralized-alpha ablation.
func WithCentralRoots() Option { return func(cfg *Config) { cfg.CentralRoots = true } }

// WithPairs selects the Fig 3-2 processor-pair mapping.
func WithPairs() Option { return func(cfg *Config) { cfg.Pairs = true } }

// WithReplicated selects the Section 6 fully-replicated extreme.
func WithReplicated() Option { return func(cfg *Config) { cfg.Replicated = true } }

// WithRecorder attaches a timeline recorder to the run.
func WithRecorder(r *obs.Recorder) Option { return func(cfg *Config) { cfg.Recorder = r } }

// WithMetrics attaches a metrics registry to the run.
func WithMetrics(m *obs.Registry) Option { return func(cfg *Config) { cfg.Metrics = m } }

// Typed validation errors. Validate returns one of these so callers
// (the sweep engine, the CLIs) can distinguish bad-spec classes
// without string matching.

// ProcCountError reports a non-positive MatchProcs.
type ProcCountError struct{ Procs int }

func (e *ProcCountError) Error() string { return fmt.Sprintf("core: MatchProcs = %d", e.Procs) }

// PartitionSizeError reports a partition whose length does not match
// the trace's bucket count. Cycle is -1 for the static partition.
type PartitionSizeError struct {
	Cycle     int
	Got, Want int
}

func (e *PartitionSizeError) Error() string {
	if e.Cycle >= 0 {
		return fmt.Sprintf("core: per-cycle partition %d covers %d buckets, trace has %d", e.Cycle, e.Got, e.Want)
	}
	return fmt.Sprintf("core: partition covers %d buckets, trace has %d", e.Got, e.Want)
}

// PerCycleCountError reports a PerCycle override whose length does not
// match the trace's cycle count.
type PerCycleCountError struct{ Got, Want int }

func (e *PerCycleCountError) Error() string {
	return fmt.Sprintf("core: %d per-cycle partitions for %d cycles", e.Got, e.Want)
}

// TopologyError reports a Contention setting without a routed
// topology to model the contended links on.
type TopologyError struct{ Topology simnet.Topology }

func (e *TopologyError) Error() string {
	return "core: Contention requires a routed topology"
}

// IncompatibleOptionsError reports two configuration switches that
// cannot be combined.
type IncompatibleOptionsError struct{ Reason string }

func (e *IncompatibleOptionsError) Error() string { return "core: " + e.Reason }

// Validate checks the configuration against the trace it is to run
// and returns a typed error describing the first problem found.
// Simulate and Speedup call it before any simulation work starts, so
// a bad point fails fast instead of mid-run.
func (c Config) Validate(tr *trace.Trace) error {
	if c.MatchProcs <= 0 {
		return &ProcCountError{Procs: c.MatchProcs}
	}
	if c.Partition != nil {
		if len(c.Partition) != tr.NBuckets {
			return &PartitionSizeError{Cycle: -1, Got: len(c.Partition), Want: tr.NBuckets}
		}
		if err := c.Partition.Validate(c.MatchProcs); err != nil {
			return err
		}
	}
	if c.PerCycle != nil {
		if len(c.PerCycle) != len(tr.Cycles) {
			return &PerCycleCountError{Got: len(c.PerCycle), Want: len(tr.Cycles)}
		}
		for ci, p := range c.PerCycle {
			if len(p) != tr.NBuckets {
				return &PartitionSizeError{Cycle: ci, Got: len(p), Want: tr.NBuckets}
			}
			if err := p.Validate(c.MatchProcs); err != nil {
				return err
			}
		}
	}
	if c.CentralRoots && c.Pairs {
		return &IncompatibleOptionsError{Reason: "CentralRoots is not defined for the pair mapping"}
	}
	if c.Replicated && (c.Pairs || c.CentralRoots) {
		return &IncompatibleOptionsError{Reason: "Replicated excludes Pairs and CentralRoots"}
	}
	if c.Replicated && c.PerCycle != nil {
		return &IncompatibleOptionsError{Reason: "Replicated tables have no per-cycle distribution"}
	}
	if c.Rebalance.Enabled() {
		if c.PerCycle != nil {
			return &IncompatibleOptionsError{Reason: "Rebalance and PerCycle both control the per-cycle distribution"}
		}
		if c.Pairs {
			return &IncompatibleOptionsError{Reason: "Rebalance is not defined for the pair mapping"}
		}
		if c.Replicated {
			return &IncompatibleOptionsError{Reason: "Replicated tables have no buckets to migrate"}
		}
	}
	if c.Contention {
		if _, ok := c.Topology.(simnet.RoutedTopology); !ok {
			return &TopologyError{Topology: c.Topology}
		}
	}
	return nil
}

// Fingerprint returns a canonical content hash of the configuration's
// semantic fields for the given trace — the memoization key of the
// sweep engine. Two configs that would produce identical simulation
// results hash identically: observability attachments (Recorder,
// Metrics) and display names (Overhead.Name) are excluded, and a nil
// Partition is canonicalized to the round-robin default Simulate
// would substitute.
func (c Config) Fingerprint(tr *trace.Trace) string {
	h := sha256.New()
	part := c.Partition
	if part == nil {
		part = sched.RoundRobin(tr.NBuckets, c.MatchProcs)
	}
	fmt.Fprintf(h, "procs=%d|costs=%d,%d,%d,%d|ov=%d,%d|lat=%d|topo=%T%+v|perhop=%d|cont=%t|swb=%t|central=%t|pairs=%t|repl=%t|",
		c.MatchProcs,
		c.Costs.ConstTests, c.Costs.LeftAddDel, c.Costs.RightAddDel, c.Costs.PerSuccessor,
		c.Overhead.Send, c.Overhead.Recv,
		c.Latency, c.Topology, c.Topology, c.PerHop,
		c.Contention, c.SoftwareBroadcast, c.CentralRoots, c.Pairs, c.Replicated)
	fmt.Fprintf(h, "part=%v|", part)
	if c.PerCycle != nil {
		fmt.Fprintf(h, "percycle=%v|", c.PerCycle)
	}
	// Rebalance knobs change the partition sequence the run evolves
	// through, so adaptive points must not share a cache entry with the
	// static point they start from (or with each other across knob
	// settings). Disabled configs hash as before.
	if c.Rebalance.Enabled() {
		fmt.Fprintf(h, "reb=%g,%g,%d,%d|",
			c.Rebalance.Threshold, c.Rebalance.Hysteresis, c.Rebalance.MinInterval, c.Rebalance.MaxMoves)
	}
	return hex.EncodeToString(h.Sum(nil))
}
