package core

import (
	"bytes"
	"testing"

	"mpcrete/internal/obs"
	"mpcrete/internal/trace"
)

// obsTrace builds a two-cycle trace with inter-processor traffic.
func obsTrace() *trace.Trace {
	cycle := func() *trace.Cycle {
		return &trace.Cycle{Changes: 1, Roots: []*trace.Activation{
			act('L', '+', 0, 0, act('R', '+', 3, 1)),
			act('R', '+', 1, 0),
			act('L', '+', 2, 1, act('L', '+', 5, 0)),
		}}
	}
	return &trace.Trace{Name: "unit", NBuckets: 8,
		Cycles: []*trace.Cycle{cycle(), cycle()}}
}

// TestRecordedSpansMatchBusyTotal is the round-trip guarantee: the
// timeline's busy spans must account for exactly the simulator's
// total busy time.
func TestRecordedSpansMatchBusyTotal(t *testing.T) {
	for _, procs := range []int{1, 2, 4} {
		cfg := baseCfg(procs)
		cfg.Overhead = OverheadRuns()[2] // nonzero send/recv overheads
		cfg.Recorder = obs.NewRecorder()
		res, err := Simulate(obsTrace(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := cfg.Recorder.SpanTotal(""), int64(res.Net.BusyTotal()); got != want {
			t.Errorf("procs=%d: span total %d != busy total %d", procs, got, want)
		}
	}
}

// TestRecorderTimeline checks cycle markers, track names, and that the
// exported trace is non-trivial.
func TestRecorderTimeline(t *testing.T) {
	cfg := baseCfg(2)
	cfg.Recorder = obs.NewRecorder()
	if _, err := Simulate(obsTrace(), cfg); err != nil {
		t.Fatal(err)
	}
	markers := 0
	for _, in := range cfg.Recorder.Instants() {
		if in.Proc == 0 && (in.Name == "cycle 1" || in.Name == "cycle 2") {
			markers++
		}
	}
	if markers != 2 {
		t.Errorf("cycle markers = %d, want 2", markers)
	}
	var buf bytes.Buffer
	if err := cfg.Recorder.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"control"`, `"match 0"`, `"match 1"`, `"cycle-packet"`, `"flight"`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("chrome trace missing %s", want)
		}
	}
}

// TestSimulateMetrics checks the registry a run populates: the
// per-cycle series agrees with the Result, and the headline metrics
// are present.
func TestSimulateMetrics(t *testing.T) {
	cfg := baseCfg(2)
	cfg.Metrics = obs.NewRegistry()
	res, err := Simulate(obsTrace(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := cfg.Metrics.LookupSeries("core/per_cycle")
	if s == nil {
		t.Fatal("core/per_cycle series missing")
	}
	rows := s.Rows()
	if len(rows) != len(res.CycleTimes) {
		t.Fatalf("series rows = %d, want %d", len(rows), len(res.CycleTimes))
	}
	for ci, row := range rows {
		acts := 0
		for _, n := range res.ActsPerSlot[ci] {
			acts += n
		}
		if row[1] != float64(acts) || row[2] != float64(res.MsgsPerCycle[ci]) {
			t.Errorf("cycle %d row = %v, want acts=%d msgs=%d", ci+1, row, acts, res.MsgsPerCycle[ci])
		}
	}
	if got := cfg.Metrics.Counter("sim/messages").Value(); got != int64(res.Net.Messages) {
		t.Errorf("sim/messages = %d, want %d", got, res.Net.Messages)
	}
	if v := cfg.Metrics.Gauge("sim/makespan_us").Value(); v != res.Makespan.Microseconds() {
		t.Errorf("sim/makespan_us = %v, want %v", v, res.Makespan.Microseconds())
	}
	if _, _, count, _, _ := cfg.Metrics.Histogram("trace/tokens_per_bucket").Snapshot(); count == 0 {
		t.Error("tokens_per_bucket histogram empty")
	}
}

// TestMsgsPerCycleSumsToTotal pins the new per-cycle message counts to
// the aggregate the simulator already reported.
func TestMsgsPerCycleSumsToTotal(t *testing.T) {
	res, err := Simulate(obsTrace(), baseCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, n := range res.MsgsPerCycle {
		sum += n
	}
	if sum != res.Net.Messages {
		t.Errorf("per-cycle messages sum %d != total %d", sum, res.Net.Messages)
	}
}

// TestBaselineDropsObservers: the baseline helper run must not write
// into the observed run's recorder or registry.
func TestBaselineDropsObservers(t *testing.T) {
	cfg := baseCfg(2)
	cfg.Recorder = obs.NewRecorder()
	cfg.Metrics = obs.NewRegistry()
	base := Baseline(cfg)
	if base.Recorder != nil || base.Metrics != nil {
		t.Error("Baseline kept the observers")
	}
	if _, _, _, err := Speedup(obsTrace(), cfg); err != nil {
		t.Fatal(err)
	}
	// After Speedup (which also runs the baseline), the recorder holds
	// exactly one run's spans: its span total equals a solo observed
	// run's busy total.
	solo := baseCfg(2)
	solo.Recorder = obs.NewRecorder()
	soloRes, err := Simulate(obsTrace(), solo)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Recorder.SpanTotal("") != int64(soloRes.Net.BusyTotal()) {
		t.Errorf("Speedup polluted the recorder: %d != %d",
			cfg.Recorder.SpanTotal(""), int64(soloRes.Net.BusyTotal()))
	}
}
