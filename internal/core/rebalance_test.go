package core

import (
	"testing"

	"mpcrete/internal/sched"
	"mpcrete/internal/trace"
)

// skewedTrace builds a synthetic trace where two hot buckets carry
// almost all the activation load and — crucially — land on the same
// worker under round-robin for both 4 and 8 processors (buckets 1 and
// 9 of 16). This is the shape the paper's §5.2.2 analysis shows
// defeats every uniform static policy.
func skewedTrace(t testing.TB, cycles int) *trace.Trace {
	t.Helper()
	tr := &trace.Trace{Name: "skewed", NBuckets: 16}
	for c := 0; c < cycles; c++ {
		cy := &trace.Cycle{Changes: 1}
		for _, hot := range []int{1, 9} {
			for i := 0; i < 25; i++ {
				cy.Roots = append(cy.Roots, &trace.Activation{
					Node: 10 + i%7, Side: trace.LeftSide, Tag: trace.AddTag, Bucket: hot,
				})
			}
		}
		for b := 0; b < tr.NBuckets; b++ {
			cy.Roots = append(cy.Roots, &trace.Activation{
				Node: 50 + b, Side: trace.RightSide, Tag: trace.AddTag, Bucket: b,
			})
		}
		tr.Cycles = append(tr.Cycles, cy)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("skewed trace invalid: %v", err)
	}
	return tr
}

func TestSimulateRebalanceMigrates(t *testing.T) {
	tr := skewedTrace(t, 40)
	cfg := NewConfig(4, WithRebalance(sched.Rebalance{Threshold: 1.2, MinInterval: 2}))
	res, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations == 0 || res.BucketsMoved == 0 {
		t.Fatalf("skewed trace produced no migrations: %+v", res)
	}
	static, err := Simulate(tr, NewConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	// Every migrated bucket adds two messages to the run.
	wantMsgs := static.Net.Messages + 2*res.BucketsMoved
	if res.Net.Messages != wantMsgs {
		t.Errorf("messages = %d, want static %d + 2*%d moved = %d",
			res.Net.Messages, static.Net.Messages, res.BucketsMoved, wantMsgs)
	}
}

// TestSimulateRebalanceImprovesSkewedMakespan is the simulator-level
// version of the ablation claim: on a heavily skewed trace the online
// rebalancer beats the static round-robin assignment it starts from.
func TestSimulateRebalanceImprovesSkewedMakespan(t *testing.T) {
	tr := skewedTrace(t, 60)
	static, err := Simulate(tr, NewConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Simulate(tr, NewConfig(8, WithRebalance(sched.DefaultRebalance())))
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Makespan >= static.Makespan {
		t.Errorf("adaptive makespan %d not better than static %d (migrations=%d)",
			adaptive.Makespan, static.Makespan, adaptive.Migrations)
	}
}

func TestSimulateRebalanceDeterministic(t *testing.T) {
	tr := skewedTrace(t, 30)
	cfg := NewConfig(4, WithRebalance(sched.DefaultRebalance()))
	a, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Migrations != b.Migrations || a.BucketsMoved != b.BucketsMoved {
		t.Errorf("nondeterministic rebalance run: %+v vs %+v", a, b)
	}
}

func TestValidateRebalanceIncompatibilities(t *testing.T) {
	tr := skewedTrace(t, 5)
	reb := sched.Rebalance{Threshold: 1.2}
	pc := make([]sched.Partition, 5)
	for i := range pc {
		pc[i] = sched.RoundRobin(16, 2)
	}
	cases := []Config{
		NewConfig(2, WithRebalance(reb), WithPerCycle(pc)),
		NewConfig(2, WithRebalance(reb), WithPairs()),
		NewConfig(2, WithRebalance(reb), WithReplicated()),
	}
	for i, cfg := range cases {
		if _, ok := cfg.Validate(tr).(*IncompatibleOptionsError); !ok {
			t.Errorf("case %d: want IncompatibleOptionsError, got %v", i, cfg.Validate(tr))
		}
	}
	if err := NewConfig(2, WithRebalance(reb)).Validate(tr); err != nil {
		t.Errorf("rebalance alone rejected: %v", err)
	}
}

// TestFingerprintIncludesRebalance is the cache-collision regression:
// before the fix, an adaptive config hashed identically to the static
// config it starts from, so the sweep engine's content-addressed cache
// served the static result for the adaptive point.
func TestFingerprintIncludesRebalance(t *testing.T) {
	tr := skewedTrace(t, 5)
	static := NewConfig(4)
	adaptive := NewConfig(4, WithRebalance(sched.Rebalance{Threshold: 1.3, MinInterval: 2}))
	if static.Fingerprint(tr) == adaptive.Fingerprint(tr) {
		t.Error("adaptive config fingerprint collides with its static starting point")
	}
	other := NewConfig(4, WithRebalance(sched.Rebalance{Threshold: 1.6, MinInterval: 2}))
	if adaptive.Fingerprint(tr) == other.Fingerprint(tr) {
		t.Error("different rebalance thresholds share a fingerprint")
	}
	same := NewConfig(4, WithRebalance(sched.Rebalance{Threshold: 1.3, MinInterval: 2}))
	if adaptive.Fingerprint(tr) != same.Fingerprint(tr) {
		t.Error("identical rebalance configs fingerprint differently")
	}
	// Baseline strips rebalancing, so its fingerprint matches the
	// plain single-processor base case.
	if Baseline(adaptive).Fingerprint(tr) != Baseline(static).Fingerprint(tr) {
		t.Error("Baseline did not strip rebalance knobs")
	}
}
