// Package core implements the paper's primary contribution: the
// mapping of Rete match onto a message-passing computer through a
// concurrent distributed hash table (Section 3), and the trace-driven
// simulation of that mapping (Sections 4-5).
//
// The simulated variation is the Fig 3-3 mapping: one control
// processor plus P match processors. Each MRA cycle the control
// processor broadcasts the cycle's wme changes; every match processor
// evaluates all constant tests (duplicated on purpose — the
// coarse-granularity, zero-communication path) and processes, as one
// grouped unit, the root activations whose hash buckets it owns.
// Successor (left) tokens are fine-grained: each travels to the
// processor owning its bucket, as a message when remote. Production
// instantiations are sent to the control processor. The processor-pair
// mapping of Fig 3-2 is available as a variant.
package core

import (
	"mpcrete/internal/simnet"
)

// CostModel holds the node-activation cost estimates of Section 4,
// profiled from the Encore/PSM-E implementations.
type CostModel struct {
	// ConstTests is the time for one processor to evaluate all the
	// constant test nodes for a cycle's wme changes.
	ConstTests simnet.Time
	// LeftAddDel is the time to add or delete one left token.
	LeftAddDel simnet.Time
	// RightAddDel is the time to add or delete one right token.
	RightAddDel simnet.Time
	// PerSuccessor is the comparison time per successor token
	// generated.
	PerSuccessor simnet.Time
}

// DefaultCosts returns the paper's estimates: 30, 32, 16, 16 µs.
func DefaultCosts() CostModel {
	return CostModel{
		ConstTests:   simnet.US(30),
		LeftAddDel:   simnet.US(32),
		RightAddDel:  simnet.US(16),
		PerSuccessor: simnet.US(16),
	}
}

// AddDel returns the add/delete cost for a token on the given side.
func (c CostModel) AddDel(left bool) simnet.Time {
	if left {
		return c.LeftAddDel
	}
	return c.RightAddDel
}

// OverheadSetting is one row of Table 5-1: a message-processing
// overhead breakdown into send and receive components.
type OverheadSetting struct {
	Name string
	Send simnet.Time
	Recv simnet.Time
}

// Total returns send + receive overhead.
func (o OverheadSetting) Total() simnet.Time { return o.Send + o.Recv }

// OverheadRuns reproduces Table 5-1 exactly.
func OverheadRuns() []OverheadSetting {
	return []OverheadSetting{
		{Name: "run1", Send: 0, Recv: 0},
		{Name: "run2", Send: simnet.US(5), Recv: simnet.US(3)},
		{Name: "run3", Send: simnet.US(10), Recv: simnet.US(6)},
		{Name: "run4", Send: simnet.US(20), Recv: simnet.US(12)},
	}
}

// NectarLatency is the interconnection-network latency the Nectar
// group supplied: 0.5 µs.
func NectarLatency() simnet.Time { return simnet.US(0.5) }
