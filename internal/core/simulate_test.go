package core

import (
	"math/rand"
	"testing"

	"mpcrete/internal/sched"
	"mpcrete/internal/simnet"
	"mpcrete/internal/trace"
)

// act builds a trace activation.
func act(side, tag byte, bucket int, insts int, children ...*trace.Activation) *trace.Activation {
	a := &trace.Activation{Node: bucket, Bucket: bucket, Insts: insts, Children: children}
	if side == 'L' {
		a.Side = trace.LeftSide
	} else {
		a.Side = trace.RightSide
	}
	if tag == '-' {
		a.Tag = trace.DeleteTag
	}
	return a
}

func singleCycle(nbuckets int, roots ...*trace.Activation) *trace.Trace {
	return &trace.Trace{
		Name:     "unit",
		NBuckets: nbuckets,
		Cycles:   []*trace.Cycle{{Changes: 1, Roots: roots}},
	}
}

func baseCfg(procs int) Config {
	return Config{
		MatchProcs: procs,
		Costs:      DefaultCosts(),
		Latency:    NectarLatency(),
	}
}

func TestSimulateSingleRightRoot(t *testing.T) {
	tr := singleCycle(8, act('R', '+', 0, 0))
	res, err := Simulate(tr, baseCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	// Broadcast departs at 0, arrives 0.5µs; constant tests 30µs; one
	// right add 16µs -> 46.5µs.
	if want := simnet.US(46.5); res.Makespan != want {
		t.Errorf("makespan = %vµs, want 46.5", res.Makespan.Microseconds())
	}
	if res.ActsPerSlot[0][0] != 1 || res.LeftActsPerSlot[0][0] != 0 {
		t.Errorf("activation counts = %v / %v", res.ActsPerSlot, res.LeftActsPerSlot)
	}
}

func TestSimulateLeftRootCost(t *testing.T) {
	tr := singleCycle(8, act('L', '+', 0, 0))
	res, err := Simulate(tr, baseCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if want := simnet.US(62.5); res.Makespan != want { // 0.5 + 30 + 32
		t.Errorf("makespan = %vµs, want 62.5", res.Makespan.Microseconds())
	}
}

func TestSimulateParallelRoots(t *testing.T) {
	var roots []*trace.Activation
	for b := 0; b < 8; b++ {
		roots = append(roots, act('R', '+', b, 0))
	}
	tr := singleCycle(8, roots...)
	// One processor: serial adds.
	res1, err := Simulate(tr, baseCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if want := simnet.US(0.5 + 30 + 8*16); res1.Makespan != want {
		t.Fatalf("P=1 makespan = %vµs", res1.Makespan.Microseconds())
	}
	// Eight processors, round-robin: one add each.
	res8, err := Simulate(tr, baseCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	if want := simnet.US(0.5 + 30 + 16); res8.Makespan != want {
		t.Fatalf("P=8 makespan = %vµs", res8.Makespan.Microseconds())
	}
	sp, _, _, err := Speedup(tr, baseCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	want := float64(res1.Makespan) / float64(res8.Makespan)
	if sp != want {
		t.Errorf("speedup = %v, want %v", sp, want)
	}
}

func TestSimulateChildRouting(t *testing.T) {
	// A right root on slot 0 generating two left children owned by
	// slot 1 (bucket 1). With zero overheads the children travel with
	// only latency.
	root := act('R', '+', 0, 0, act('L', '+', 1, 0), act('L', '+', 1, 0))
	tr := singleCycle(2, root)
	res, err := Simulate(tr, baseCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	// Slot 0: 30 + 16 (add) + 2*16 (successors) done at 78.5µs.
	// Child 1 departs at 62.5+0.5=63, child 2 at 79.
	// Slot 1 finished constant tests at 30.5, processes child 1 at 63
	// for 32µs -> 95, child 2 arrives 79, runs 95..127.
	if want := simnet.US(127); res.Makespan != want {
		t.Errorf("makespan = %vµs, want 127", res.Makespan.Microseconds())
	}
	if res.Net.Messages < 2 {
		t.Errorf("messages = %d, want >= 2", res.Net.Messages)
	}
	if res.LeftActsPerSlot[0][1] != 2 {
		t.Errorf("slot 1 left acts = %v", res.LeftActsPerSlot)
	}
}

func TestSimulateInstantiationsReachControl(t *testing.T) {
	root := act('R', '+', 0, 2, act('L', '+', 1, 1))
	tr := singleCycle(2, root)
	tr.Cycles[0].RootInsts = 3
	for _, pairs := range []bool{false, true} {
		cfg := baseCfg(2)
		cfg.Pairs = pairs
		res, err := Simulate(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Insts != 6 { // 2 + 1 + 3 root insts
			t.Errorf("pairs=%v: insts = %d, want 6", pairs, res.Insts)
		}
	}
}

func TestSimulateActivationConservation(t *testing.T) {
	// Total counted activations must equal the trace stats regardless
	// of processor count, mapping, or partition strategy.
	rng := rand.New(rand.NewSource(3))
	var gen func(depth int) *trace.Activation
	nb := 64
	gen = func(depth int) *trace.Activation {
		side := byte('L')
		if rng.Intn(2) == 0 {
			side = 'R'
		}
		a := act(side, '+', rng.Intn(nb), rng.Intn(2))
		if depth < 3 {
			for i := 0; i < rng.Intn(3); i++ {
				a.Children = append(a.Children, gen(depth+1))
			}
		}
		return a
	}
	tr := &trace.Trace{Name: "rand", NBuckets: nb}
	for c := 0; c < 3; c++ {
		cy := &trace.Cycle{Changes: 2}
		for r := 0; r < 5; r++ {
			cy.Roots = append(cy.Roots, gen(0))
		}
		tr.Cycles = append(tr.Cycles, cy)
	}
	want := tr.Stats()

	for _, cfg := range []Config{
		baseCfg(1), baseCfg(4), baseCfg(16),
		func() Config { c := baseCfg(4); c.Pairs = true; return c }(),
		func() Config { c := baseCfg(4); c.CentralRoots = true; return c }(),
		func() Config {
			c := baseCfg(4)
			c.Partition = sched.Random(nb, 4, 5)
			return c
		}(),
		func() Config {
			c := baseCfg(4)
			c.PerCycle = sched.GreedyPerCycle(tr.BucketLoad(false), nb, 4)
			return c
		}(),
	} {
		res, err := Simulate(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		total, left := 0, 0
		for ci := range res.ActsPerSlot {
			for s := range res.ActsPerSlot[ci] {
				total += res.ActsPerSlot[ci][s]
				left += res.LeftActsPerSlot[ci][s]
			}
		}
		if total != want.Total || left != want.LeftActivations {
			t.Errorf("cfg %+v: counted %d/%d acts, want %d/%d", cfg, total, left, want.Total, want.LeftActivations)
		}
		if res.Insts != want.Instantiations {
			t.Errorf("cfg %+v: insts %d, want %d", cfg, res.Insts, want.Instantiations)
		}
	}
}

func TestSimulateOverheadSlowsLeftHeavyTrace(t *testing.T) {
	// Left-heavy fan-out: one right root spawning 12 remote children.
	var children []*trace.Activation
	for i := 0; i < 12; i++ {
		children = append(children, act('L', '+', 1+i%7, 0))
	}
	tr := singleCycle(8, act('R', '+', 0, 0, children...))
	var last simnet.Time
	for i, ov := range OverheadRuns() {
		cfg := baseCfg(8)
		cfg.Overhead = ov
		res, err := Simulate(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.Makespan <= last {
			t.Errorf("%s: makespan %v not larger than previous %v", ov.Name, res.Makespan, last)
		}
		last = res.Makespan
	}
}

func TestSimulateGroupedRootsBeatCentralUnderOverhead(t *testing.T) {
	// Many small roots: shipping each individually from the control
	// processor pays per-message overheads that broadcast avoids.
	var roots []*trace.Activation
	for b := 0; b < 32; b++ {
		roots = append(roots, act('R', '+', b%16, 0))
	}
	tr := singleCycle(16, roots...)
	cfg := baseCfg(4)
	cfg.Overhead = OverheadRuns()[3] // 20/12 µs
	grouped, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CentralRoots = true
	central, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if grouped.Makespan >= central.Makespan {
		t.Errorf("grouped %vµs should beat central %vµs", grouped.Makespan.Microseconds(), central.Makespan.Microseconds())
	}
}

func TestSimulateGreedyBeatsRoundRobinOnSkew(t *testing.T) {
	// All activity on buckets congruent to 0 mod 4 -> round-robin with
	// P=4 puts everything on slot 0; greedy spreads it.
	var roots []*trace.Activation
	for i := 0; i < 16; i++ {
		roots = append(roots, act('L', '+', (i*4)%64, 0))
	}
	tr := singleCycle(64, roots...)
	rr, err := Simulate(tr, baseCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseCfg(4)
	cfg.PerCycle = sched.GreedyPerCycle(tr.BucketLoad(false), 64, 4)
	gr, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gr.Makespan >= rr.Makespan {
		t.Errorf("greedy %vµs should beat round-robin %vµs", gr.Makespan.Microseconds(), rr.Makespan.Microseconds())
	}
}

func TestSimulatePairsRunsAndOverlaps(t *testing.T) {
	// A left root with successors: in the pair mapping the store and
	// the successor generation run on different processors.
	root := act('L', '+', 0, 0, act('L', '+', 1, 0), act('L', '+', 2, 0))
	tr := singleCycle(4, root)
	cfg := baseCfg(4)
	cfg.Pairs = true
	res, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("empty makespan")
	}
	// 1 + 2*4 match procs + control.
	if got := len(res.Net.Procs); got != 9 {
		t.Errorf("procs = %d, want 9", got)
	}
}

func TestSimulateConfigErrors(t *testing.T) {
	tr := singleCycle(8, act('R', '+', 0, 0))
	if _, err := Simulate(tr, Config{MatchProcs: 0, Costs: DefaultCosts()}); err == nil {
		t.Error("MatchProcs=0 accepted")
	}
	cfg := baseCfg(2)
	cfg.Partition = sched.Partition{0, 1} // wrong length
	if _, err := Simulate(tr, cfg); err == nil {
		t.Error("short partition accepted")
	}
	cfg = baseCfg(2)
	cfg.Partition = sched.Partition{0, 1, 2, 0, 1, 0, 1, 0} // proc 2 out of range
	if _, err := Simulate(tr, cfg); err == nil {
		t.Error("out-of-range partition accepted")
	}
	cfg = baseCfg(2)
	cfg.PerCycle = []sched.Partition{}
	if _, err := Simulate(tr, cfg); err == nil {
		t.Error("mismatched per-cycle partitions accepted")
	}
	cfg = baseCfg(2)
	cfg.CentralRoots = true
	cfg.Pairs = true
	if _, err := Simulate(tr, cfg); err == nil {
		t.Error("CentralRoots+Pairs accepted")
	}
}

func TestNetworkMostlyIdle(t *testing.T) {
	// Even with heavy messaging the 0.5µs latency keeps the network
	// idle most of the time (Section 5.1 reports 97-98%).
	var children []*trace.Activation
	for i := 0; i < 64; i++ {
		children = append(children, act('L', '+', i%16, 0))
	}
	tr := singleCycle(16, act('R', '+', 0, 0, children...))
	cfg := baseCfg(8)
	cfg.Overhead = OverheadRuns()[1]
	res, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if idle := res.Net.NetworkIdleFraction(); idle < 0.9 {
		t.Errorf("network idle = %v, want > 0.9", idle)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	var roots []*trace.Activation
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		r := act('R', '+', rng.Intn(32), rng.Intn(2))
		for j := 0; j < rng.Intn(4); j++ {
			r.Children = append(r.Children, act('L', '+', rng.Intn(32), 0))
		}
		roots = append(roots, r)
	}
	tr := singleCycle(32, roots...)
	cfg := baseCfg(8)
	cfg.Overhead = OverheadRuns()[2]
	a, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Net.Messages != b.Net.Messages {
		t.Errorf("nondeterministic simulation: %v/%d vs %v/%d", a.Makespan, a.Net.Messages, b.Makespan, b.Net.Messages)
	}
}

func TestNetworkNotBottleneckUnderContention(t *testing.T) {
	// The paper's simulator assumed infinite network bandwidth and
	// justified it by 97-98% observed idleness. Re-run the left-heavy
	// fan-out workload on a routed mesh with finite link bandwidth:
	// makespan must barely move and the contention delay must be a
	// tiny fraction of it.
	var children []*trace.Activation
	for i := 0; i < 64; i++ {
		children = append(children, act('L', '+', i%16, 0))
	}
	tr := singleCycle(16, act('R', '+', 0, 0, children...))
	base := baseCfg(8)
	base.Overhead = OverheadRuns()[1]
	free, err := Simulate(tr, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Topology = simnet.Mesh2D{W: 3, H: 3}
	cfg.PerHop = simnet.US(0.2)
	cfg.Contention = true
	cont, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	slowdown := float64(cont.Makespan) / float64(free.Makespan)
	if slowdown > 1.05 {
		t.Errorf("contention slows the run %.3fx; the network should not be a bottleneck", slowdown)
	}
	if frac := float64(cont.Net.ContentionDelay) / float64(cont.Makespan); frac > 0.02 {
		t.Errorf("contention delay is %.1f%% of makespan, want < 2%%", 100*frac)
	}
}

func TestContentionConfigValidation(t *testing.T) {
	tr := singleCycle(8, act('R', '+', 0, 0))
	cfg := baseCfg(2)
	cfg.Contention = true // no topology
	if _, err := Simulate(tr, cfg); err == nil {
		t.Error("contention without routed topology accepted")
	}
}

func TestSimulatePairsExactTiming(t *testing.T) {
	// Fig 3-2 protocol, hand-computed. One left root at bucket 0
	// (slot 0) generating one child at bucket 1 (slot 1); two slots,
	// zero overheads, 0.5µs latency.
	//
	//   t=0    control broadcasts; arrives everywhere at 0.5.
	//   30.5   all four match processors finish constant tests.
	//   slot0 left member: stores the left token (32µs) -> 62.5.
	//   slot0 right member: compares + generates the successor
	//          (16µs) -> 46.5, sends it to slot1's LEFT processor;
	//          arrives 47.
	//   slot1 left member: stores the child (32µs): 47 -> 79.
	root := act('L', '+', 0, 0, act('L', '+', 1, 0))
	tr := singleCycle(2, root)
	cfg := baseCfg(2)
	cfg.Pairs = true
	res, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := simnet.US(79); res.Makespan != want {
		t.Errorf("makespan = %vµs, want 79", res.Makespan.Microseconds())
	}
	// The store/generate overlap: in the single mapping the same trace
	// serializes store (32) + generate (16) + child store (32) on a
	// critical path through one processor pair of events:
	// 30.5 + 32 + 16 = 78.5 at slot0, child departs 78.5+0.5=79,
	// slot1 runs 79..111.
	single, err := Simulate(tr, baseCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	if want := simnet.US(111); single.Makespan != want {
		t.Errorf("single-mapping makespan = %vµs, want 111", single.Makespan.Microseconds())
	}
	if res.Makespan >= single.Makespan {
		t.Error("pair mapping should beat the single mapping by overlapping store and compare")
	}
}

func TestSimulateCycleTimesSumToMakespan(t *testing.T) {
	tr := &trace.Trace{
		Name:     "multi",
		NBuckets: 8,
		Cycles: []*trace.Cycle{
			{Changes: 1, Roots: []*trace.Activation{act('R', '+', 0, 0)}},
			{Changes: 2, Roots: []*trace.Activation{act('L', '+', 3, 1)}},
			{Changes: 1},
		},
	}
	res, err := Simulate(tr, baseCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CycleTimes) != 3 {
		t.Fatalf("cycle times = %v", res.CycleTimes)
	}
	var sum simnet.Time
	for _, ct := range res.CycleTimes {
		sum += ct
	}
	if sum != res.Makespan {
		t.Errorf("sum of cycle times %v != makespan %v", sum, res.Makespan)
	}
}
