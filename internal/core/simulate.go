package core

import (
	"fmt"

	"mpcrete/internal/obs"
	"mpcrete/internal/sched"
	"mpcrete/internal/simnet"
	"mpcrete/internal/trace"
)

// Config describes one simulation run.
type Config struct {
	// MatchProcs is the number of hash-table partitions P. In the
	// default (Fig 3-3) mapping each partition is one processor; with
	// Pairs set (Fig 3-2) each partition is a left/right processor
	// pair, so the machine has 2P match processors.
	MatchProcs int
	// Costs is the node-activation cost model (DefaultCosts()).
	Costs CostModel
	// Overhead is the message-processing overhead setting (Table 5-1).
	Overhead OverheadSetting
	// Latency is the interconnection-network latency (NectarLatency()).
	Latency simnet.Time
	// Topology and PerHop model distance-sensitive networks; nil
	// Topology is the wormhole-style distance-insensitive default.
	Topology simnet.Topology
	// PerHop is the added transit time per hop under Topology.
	PerHop simnet.Time
	// Contention models finite link bandwidth (requires a
	// RoutedTopology); the paper's simulator assumed infinite
	// bandwidth, which Section 5.1 justifies by the observed 97-98%
	// network idleness — a claim this switch lets us verify.
	Contention bool
	// Partition maps bucket index -> partition slot; length must equal
	// the trace's NBuckets. Defaults to round-robin when nil.
	Partition sched.Partition
	// PerCycle optionally overrides Partition cycle by cycle (the
	// off-line greedy redistribution experiment).
	PerCycle []sched.Partition
	// Rebalance, when enabled, runs the online adaptive repartitioner:
	// a sched.Balancer observes each cycle's per-bucket load as it
	// completes (no trace foreknowledge — cycle c's partition depends
	// only on cycles < c) and migrates hot buckets at cycle
	// boundaries. Each moved bucket costs two messages (the migrate
	// order to the old owner and the bucket shipment to the new one)
	// plus an extract/inject busy charge on both ends. Incompatible
	// with PerCycle, Pairs, and Replicated.
	Rebalance sched.Rebalance
	// SoftwareBroadcast serializes the cycle-start broadcast into
	// point-to-point sends.
	SoftwareBroadcast bool
	// CentralRoots is an ablation of the multiple-granularity design:
	// instead of every match processor duplicating the constant tests
	// and keeping its own roots, the control processor evaluates the
	// constant tests and ships every root activation as an individual
	// message (the centralized alpha variant of Section 3.2).
	CentralRoots bool
	// Pairs selects the Fig 3-2 processor-pair mapping.
	Pairs bool
	// Recorder, when non-nil, receives the run's timeline: busy spans
	// tagged with the activation kind, message flights, broadcast
	// events, and per-cycle phase markers. Export it with
	// Recorder.WriteChromeTrace to open the run in Perfetto.
	Recorder *obs.Recorder
	// Metrics, when non-nil, receives the run's metrics: per-cycle
	// activation/message/time series, tokens-per-bucket occupancy,
	// idle-gap and queue-depth distributions, and headline gauges.
	Metrics *obs.Registry
	// Replicated selects the Section 6 continuum's first extreme: every
	// match processor holds a full copy of both hash tables. Tokens
	// are generated once (on the bucket's home processor) but every
	// copy must store every token, so each left token is broadcast and
	// every processor pays its add/delete cost — the "continuous
	// updates among the various copies" the paper anticipates. The
	// other extreme (single master copy) needs no switch: pass a
	// Partition assigning every bucket to slot 0.
	Replicated bool
}

// Result reports a simulated run.
type Result struct {
	Makespan   simnet.Time
	CycleTimes []simnet.Time
	Net        simnet.Stats
	// MsgsPerCycle counts messages sent during each cycle.
	MsgsPerCycle []int
	// LeftActsPerSlot[c][s] counts left activations processed by
	// partition slot s during cycle c (the Fig 5-5 distribution).
	LeftActsPerSlot [][]int
	// ActsPerSlot counts all activations per slot per cycle.
	ActsPerSlot [][]int
	// Insts is the total number of instantiation messages delivered to
	// the control processor.
	Insts int
	// Migrations counts rebalance events (cycle boundaries at which at
	// least one bucket moved); BucketsMoved totals the migrated
	// buckets. Zero unless Config.Rebalance is enabled.
	Migrations   int `json:"migrations,omitempty"`
	BucketsMoved int `json:"buckets_moved,omitempty"`
	// Events counts the discrete events the underlying network
	// simulator executed — the natural unit of simulation throughput
	// (cmd/bench reports events/sec from it). It is excluded from JSON
	// so the structured experiment documents stay stable.
	Events int64 `json:"-"`
}

// payloads
//
// The hot payloads (actTask, pairCompare — one per node activation)
// travel as pointers drawn from per-run free lists: passing them by
// value would box one heap object per simnet event, which made the
// allocator the dominant cost of a sweep. A payload is recycled by the
// handler as soon as it has been processed, except when the same
// object was fanned out to several processors (Replicated broadcast),
// which the shared flag marks.

type bcastStart struct{ cycle int } // injected on the control processor
type cyclePacket struct{ cycle int }
type actTask struct {
	cycle  int
	act    *trace.Activation
	shared bool     // delivered to multiple processors; never recycled
	free   *actTask // free-list link
}
type pairCompare struct {
	cycle int
	act   *trace.Activation
	free  *pairCompare // free-list link
}
type instMsg struct{}

// migMove is one bucket migration: control orders the old owner to
// extract (first delivery), the old owner ships the contents to the
// new owner (second delivery of the same payload, marked by shipped).
type migMove struct {
	bucket   int
	from, to int
	shipped  bool
}

// Timeline labels for the busy spans of each payload kind
// (simnet.TraceKinder).
func (*bcastStart) TraceKind() string  { return "cycle-start" }
func (*cyclePacket) TraceKind() string { return "cycle-packet" }
func (*actTask) TraceKind() string     { return "activation" }
func (*pairCompare) TraceKind() string { return "pair-compare" }
func (instMsg) TraceKind() string      { return "inst" }
func (*migMove) TraceKind() string     { return "migrate" }

// simulator carries the run state shared by the handler closures.
type simulator struct {
	tr  *trace.Trace
	cfg Config
	sim *simnet.Sim
	res *Result

	// matchIDs caches the match-processor id list (it is broadcast to
	// every cycle); others caches, per processor, the list of all other
	// match processors (Replicated fan-out).
	matchIDs []int
	others   [][]int

	// bcast and packet are the per-cycle control payloads, reused
	// across cycles: each cycle drains completely before the next is
	// injected, so at most one of each is ever live.
	bcast  bcastStart
	packet cyclePacket

	actFree  *actTask
	pairFree *pairCompare

	// Rebalance precomputation (see planRebalance): the partition in
	// force each cycle and the migrations injected at each cycle start.
	parts []sched.Partition
	migs  [][]migMove
}

// newAct draws an activation payload from the free list.
func (s *simulator) newAct(cycle int, a *trace.Activation) *actTask {
	t := s.actFree
	if t == nil {
		t = &actTask{}
	} else {
		s.actFree = t.free
	}
	t.cycle, t.act, t.shared, t.free = cycle, a, false, nil
	return t
}

// putAct recycles a processed activation payload.
func (s *simulator) putAct(t *actTask) {
	if t.shared {
		return
	}
	t.act = nil
	t.free = s.actFree
	s.actFree = t
}

// newPair / putPair are the pairCompare analogue.
func (s *simulator) newPair(cycle int, a *trace.Activation) *pairCompare {
	t := s.pairFree
	if t == nil {
		t = &pairCompare{}
	} else {
		s.pairFree = t.free
	}
	t.cycle, t.act, t.free = cycle, a, nil
	return t
}

func (s *simulator) putPair(t *pairCompare) {
	t.act = nil
	t.free = s.pairFree
	s.pairFree = t
}

// Simulate replays a hash-table activity trace against the mapping.
func Simulate(tr *trace.Trace, cfg Config) (*Result, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(tr); err != nil {
		return nil, err
	}
	if cfg.Partition == nil {
		cfg.Partition = sched.RoundRobin(tr.NBuckets, cfg.MatchProcs)
	}

	s := &simulator{tr: tr, cfg: cfg, res: &Result{}}
	if cfg.Rebalance.Enabled() {
		s.planRebalance()
	}
	nprocs := 1 + cfg.MatchProcs
	if cfg.Pairs {
		nprocs = 1 + 2*cfg.MatchProcs
	}
	s.sim = simnet.New(simnet.Config{
		Procs:             nprocs,
		SendOverhead:      cfg.Overhead.Send,
		RecvOverhead:      cfg.Overhead.Recv,
		Latency:           cfg.Latency,
		Topology:          cfg.Topology,
		PerHop:            cfg.PerHop,
		Contention:        cfg.Contention,
		SoftwareBroadcast: cfg.SoftwareBroadcast,
		TrackNetwork:      true,
		PendingHint:       pendingHint(tr, nprocs),
	}, s.handle)
	s.matchIDs = s.computeMatchProcIDs()

	// One backing array per distribution matrix instead of one slice
	// per cycle.
	nc := len(tr.Cycles)
	leftBack := make([]int, nc*cfg.MatchProcs)
	actBack := make([]int, nc*cfg.MatchProcs)
	s.res.LeftActsPerSlot = make([][]int, nc)
	s.res.ActsPerSlot = make([][]int, nc)
	for ci := range tr.Cycles {
		s.res.LeftActsPerSlot[ci] = leftBack[ci*cfg.MatchProcs : (ci+1)*cfg.MatchProcs : (ci+1)*cfg.MatchProcs]
		s.res.ActsPerSlot[ci] = actBack[ci*cfg.MatchProcs : (ci+1)*cfg.MatchProcs : (ci+1)*cfg.MatchProcs]
	}
	s.res.CycleTimes = make([]simnet.Time, 0, nc)
	s.res.MsgsPerCycle = make([]int, 0, nc)

	if cfg.Recorder != nil {
		s.sim.SetRecorder(cfg.Recorder)
		s.nameTracks(cfg.Recorder)
	}
	for ci := range tr.Cycles {
		start := s.sim.Now()
		msgsBefore := s.sim.Messages()
		if cfg.Recorder != nil {
			cfg.Recorder.Instant(0, fmt.Sprintf("cycle %d", ci+1), int64(start))
		}
		s.bcast.cycle = ci
		s.sim.Inject(0, &s.bcast, start)
		end := s.sim.Run()
		s.res.CycleTimes = append(s.res.CycleTimes, end-start)
		s.res.MsgsPerCycle = append(s.res.MsgsPerCycle, s.sim.Messages()-msgsBefore)
	}
	s.res.Makespan = s.sim.Now()
	s.res.Net = s.sim.Stats()
	s.res.Events = s.sim.EventsProcessed()
	if cfg.Metrics != nil {
		s.publishMetrics(cfg.Metrics)
	}
	return s.res, nil
}

// nameTracks labels the recorder's tracks after the processor layout.
func (s *simulator) nameTracks(rec *obs.Recorder) {
	rec.SetTrack(0, "control")
	for slot := 0; slot < s.cfg.MatchProcs; slot++ {
		if s.cfg.Pairs {
			rec.SetTrack(s.leftProcOf(slot), fmt.Sprintf("slot %d left", slot))
			rec.SetTrack(s.rightProcOf(slot), fmt.Sprintf("slot %d right", slot))
		} else {
			rec.SetTrack(s.leftProcOf(slot), fmt.Sprintf("match %d", slot))
		}
	}
}

// publishMetrics fills the registry from the completed run: the
// per-cycle series the -v summaries render, the distributions the
// Section 5.2 analysis reads off (tokens per bucket, idle gaps, queue
// depth), and headline gauges.
func (s *simulator) publishMetrics(reg *obs.Registry) {
	res := s.res
	cycles := reg.Series("core/per_cycle", "cycle", "activations", "messages", "time_us")
	for ci, ct := range res.CycleTimes {
		acts := 0
		for _, n := range res.ActsPerSlot[ci] {
			acts += n
		}
		cycles.Append(float64(ci+1), float64(acts), float64(res.MsgsPerCycle[ci]), ct.Microseconds())
	}

	tokens := reg.Histogram("trace/tokens_per_bucket", 1, 2, 4, 8, 16, 32, 64, 128, 256)
	perBucket := make([]int, s.tr.NBuckets)
	for _, load := range s.tr.BucketLoad(false) {
		for b, n := range load {
			perBucket[b] += n
		}
	}
	for _, n := range perBucket {
		if n > 0 {
			tokens.Observe(float64(n))
		}
	}

	gaps := reg.Histogram("sim/idle_gaps_per_proc", 0, 1, 2, 4, 8, 16, 32, 64, 128)
	queue := reg.Histogram("sim/max_queue_depth", 0, 1, 2, 4, 8, 16, 32, 64, 128)
	var gapMax simnet.Time
	for _, p := range res.Net.Procs {
		gaps.Observe(float64(p.IdleGaps))
		queue.Observe(float64(p.MaxQueueDepth))
		if p.IdleGapMax > gapMax {
			gapMax = p.IdleGapMax
		}
	}
	reg.Gauge("sim/idle_gap_max_us").Set(gapMax.Microseconds())

	reg.Counter("sim/messages").Add(int64(res.Net.Messages))
	reg.Counter("sim/insts").Add(int64(res.Insts))
	if s.cfg.Rebalance.Enabled() {
		reg.Counter("sim/migrations").Add(int64(res.Migrations))
		reg.Counter("sim/buckets_migrated").Add(int64(res.BucketsMoved))
	}
	reg.Gauge("sim/makespan_us").Set(res.Makespan.Microseconds())
	reg.Gauge("sim/avg_utilization").Set(res.Net.AvgUtilization())
	reg.Gauge("sim/network_idle_frac").Set(res.Net.NetworkIdleFraction())
}

// partition returns the bucket map in force for a cycle.
func (s *simulator) partition(cycle int) sched.Partition {
	if s.parts != nil {
		return s.parts[cycle]
	}
	if s.cfg.PerCycle != nil {
		return s.cfg.PerCycle[cycle]
	}
	return s.cfg.Partition
}

// planRebalance replays the trace's per-cycle bucket loads through the
// online Balancer, producing the partition in force for each cycle and
// the bucket migrations injected at each cycle start. The balancer
// only ever sees loads from cycles that have already completed — the
// same information the live runtime's activation counters provide — so
// this is an online policy, not an oracle like PerCycle.
func (s *simulator) planRebalance() {
	nc := len(s.tr.Cycles)
	loads := s.tr.BucketLoad(false)
	bl := sched.NewBalancer(s.cfg.Rebalance, s.cfg.Partition, s.cfg.MatchProcs)
	s.parts = make([]sched.Partition, nc)
	s.migs = make([][]migMove, nc)
	for ci := 0; ci < nc; ci++ {
		s.parts[ci] = bl.Partition()
		bl.ObserveCycle(loads[ci])
		if np, ok := bl.EndCycle(); ok && ci+1 < nc {
			old := s.parts[ci]
			for _, b := range sched.PartitionMoves(old, np) {
				s.migs[ci+1] = append(s.migs[ci+1], migMove{bucket: b, from: old[b], to: np[b]})
			}
		}
	}
	for _, moves := range s.migs {
		if len(moves) > 0 {
			s.res.Migrations++
			s.res.BucketsMoved += len(moves)
		}
	}
}

// migCost is the busy charge for extracting or injecting one migrated
// bucket pair.
func (s *simulator) migCost() simnet.Time {
	return s.cfg.Costs.LeftAddDel + s.cfg.Costs.RightAddDel
}

// Processor layout: 0 is control. Single mapping: slot s -> proc 1+s.
// Pair mapping: slot s -> left proc 1+2s, right proc 2+2s.

func (s *simulator) leftProcOf(slot int) int {
	if s.cfg.Pairs {
		return 1 + 2*slot
	}
	return 1 + slot
}

func (s *simulator) rightProcOf(slot int) int {
	if s.cfg.Pairs {
		return 2 + 2*slot
	}
	return 1 + slot
}

// slotOfProc inverts the layout for match processors.
func (s *simulator) slotOfProc(proc int) int {
	if s.cfg.Pairs {
		return (proc - 1) / 2
	}
	return proc - 1
}

// isRightMember reports whether proc is the right member of its pair.
func (s *simulator) isRightMember(proc int) bool {
	return s.cfg.Pairs && (proc-1)%2 == 1
}

// otherMatchProcs lists the match processors other than `self`,
// memoized per processor (the Replicated fan-out asks for the same
// list once per successor).
func (s *simulator) otherMatchProcs(self int) []int {
	if s.others == nil {
		s.others = make([][]int, len(s.matchIDs)+1)
	}
	if out := s.others[self]; out != nil {
		return out
	}
	out := make([]int, 0, len(s.matchIDs)-1)
	for _, id := range s.matchIDs {
		if id != self {
			out = append(out, id)
		}
	}
	s.others[self] = out
	return out
}

// matchProcIDs returns the cached match-processor id list.
func (s *simulator) matchProcIDs() []int { return s.matchIDs }

func (s *simulator) computeMatchProcIDs() []int {
	n := s.cfg.MatchProcs
	if s.cfg.Pairs {
		n *= 2
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = 1 + i
	}
	return ids
}

// pendingHint sizes each processor's pending-task ring from the
// trace's shape: the busiest cycle's root count spread over the
// machine, doubled for the successor waves. A hint is only an initial
// capacity — rings grow on demand.
func pendingHint(tr *trace.Trace, nprocs int) int {
	maxRoots := 0
	for _, cy := range tr.Cycles {
		if len(cy.Roots) > maxRoots {
			maxRoots = len(cy.Roots)
		}
	}
	hint := 2*maxRoots/nprocs + 4
	if hint > 256 {
		hint = 256
	}
	return hint
}

func (s *simulator) handle(ctx *simnet.Ctx, p simnet.Payload) {
	switch v := p.(type) {
	case *bcastStart:
		s.handleCycleStart(ctx, v.cycle)
	case *cyclePacket:
		s.handlePacket(ctx, v.cycle)
	case *actTask:
		s.handleActivation(ctx, v.cycle, v.act, false)
		s.putAct(v)
	case *pairCompare:
		s.compareAndGenerate(ctx, v.cycle, v.act)
		s.putPair(v)
	case instMsg:
		s.res.Insts++ // control bookkeeping; conflict resolution is out of match scope
	case *migMove:
		if !v.shipped {
			// Old owner: extract the bucket pair and ship it.
			v.shipped = true
			ctx.Busy(s.migCost())
			ctx.Send(s.leftProcOf(v.to), v)
		} else {
			// New owner: inject the shipped contents.
			ctx.Busy(s.migCost())
		}
	default:
		panic(fmt.Sprintf("core: unknown payload %T", p))
	}
}

// handleCycleStart runs on the control processor.
func (s *simulator) handleCycleStart(ctx *simnet.Ctx, cycle int) {
	cy := s.tr.Cycles[cycle]
	if s.migs != nil {
		// Migrations planned for this boundary: order each old owner to
		// extract and ship before the cycle's match work lands.
		for i := range s.migs[cycle] {
			mv := &s.migs[cycle][i]
			ctx.Send(s.leftProcOf(mv.from), mv)
		}
	}
	if !s.cfg.CentralRoots {
		s.packet.cycle = cycle
		ctx.Broadcast(s.matchIDs, &s.packet)
		return
	}
	// Centralized-alpha ablation: control evaluates the constant tests
	// itself and ships each root activation to its owner.
	ctx.Busy(s.cfg.Costs.ConstTests)
	part := s.partition(cycle)
	for _, root := range cy.Roots {
		ctx.Send(s.leftProcOf(part[root.Bucket]), s.newAct(cycle, root))
	}
	// Root instantiations (single-CE productions) stay on control.
	ctx.Busy(simnet.Time(cy.RootInsts) * s.cfg.Costs.PerSuccessor)
	s.res.Insts += cy.RootInsts
}

// handlePacket runs on every match processor at cycle start: evaluate
// all constant tests, then process owned roots as one grouped unit.
func (s *simulator) handlePacket(ctx *simnet.Ctx, cycle int) {
	cy := s.tr.Cycles[cycle]
	ctx.Busy(s.cfg.Costs.ConstTests)
	part := s.partition(cycle)
	me := s.slotOfProc(ctx.Proc())
	rightMember := s.isRightMember(ctx.Proc())
	for _, root := range cy.Roots {
		if part[root.Bucket] != me {
			// Replicated tables: every copy stores every token, even
			// those whose home (generating) processor is elsewhere.
			if s.cfg.Replicated {
				ctx.Busy(s.cfg.Costs.AddDel(root.Side == trace.LeftSide))
			}
			continue
		}
		if !s.cfg.Pairs {
			s.handleActivation(ctx, cycle, root, true)
			continue
		}
		// Pair mapping: both members hold the token already (both ran
		// the constant tests), so no intra-pair forward is needed for
		// roots. The member owning the token's own side stores it; the
		// other member compares against the opposite bucket and
		// generates the successors.
		isLeftToken := root.Side == trace.LeftSide
		switch {
		case isLeftToken && !rightMember:
			ctx.Busy(s.cfg.Costs.LeftAddDel)
			s.countAct(cycle, me, root)
		case isLeftToken && rightMember:
			s.compareAndGenerate(ctx, cycle, root)
		case !isLeftToken && rightMember:
			ctx.Busy(s.cfg.Costs.RightAddDel)
			s.countAct(cycle, me, root)
		default: // right token, left member
			s.compareAndGenerate(ctx, cycle, root)
		}
	}
	// Root instantiations are deduplicated onto slot 0 (left member in
	// pair mode), which forwards them to the control processor.
	if me == 0 && !rightMember && cy.RootInsts > 0 {
		for i := 0; i < cy.RootInsts; i++ {
			ctx.Busy(s.cfg.Costs.PerSuccessor)
			ctx.Send(0, instMsg{})
		}
	}
}

// countAct records distribution statistics for an activation.
func (s *simulator) countAct(cycle, slot int, a *trace.Activation) {
	s.res.ActsPerSlot[cycle][slot]++
	if a.Side == trace.LeftSide {
		s.res.LeftActsPerSlot[cycle][slot]++
	}
}

// handleActivation performs a full node activation in the single-
// processor-per-slot mapping: store the token, compare with the
// opposite bucket, and emit the successors (16 µs each), routing each
// to the processor owning its bucket.
func (s *simulator) handleActivation(ctx *simnet.Ctx, cycle int, a *trace.Activation, grouped bool) {
	me := s.slotOfProc(ctx.Proc())
	if s.cfg.Replicated && !grouped && s.partition(cycle)[a.Bucket] != me {
		// A replica update: store the token, generate nothing.
		ctx.Busy(s.cfg.Costs.AddDel(a.Side == trace.LeftSide))
		return
	}
	if s.cfg.Pairs && !grouped {
		// Non-root left token arriving at the pair's left processor:
		// store locally, forward to the right member for comparison.
		s.countAct(cycle, me, a)
		ctx.Busy(s.cfg.Costs.LeftAddDel)
		if a.Successors() > 0 {
			ctx.Send(s.rightProcOf(me), s.newPair(cycle, a))
		}
		return
	}
	s.countAct(cycle, me, a)
	ctx.Busy(s.cfg.Costs.AddDel(a.Side == trace.LeftSide))
	s.emitSuccessors(ctx, cycle, a)
}

// compareAndGenerate is the comparison half of an activation: the
// per-successor work plus routing. In the pair mapping it runs on the
// member opposite the stored side; in the single mapping it is inlined
// by handleActivation.
func (s *simulator) compareAndGenerate(ctx *simnet.Ctx, cycle int, a *trace.Activation) {
	s.emitSuccessors(ctx, cycle, a)
}

func (s *simulator) emitSuccessors(ctx *simnet.Ctx, cycle int, a *trace.Activation) {
	part := s.partition(cycle)
	if s.cfg.Replicated {
		for _, child := range a.Children {
			ctx.Busy(s.cfg.Costs.PerSuccessor)
			// Update every copy: one broadcast to the other match
			// processors plus the local store/processing. The payload
			// object is delivered to every copy, so it is marked shared
			// and never recycled.
			t := s.newAct(cycle, child)
			t.shared = true
			if dests := s.otherMatchProcs(ctx.Proc()); len(dests) > 0 {
				ctx.Broadcast(dests, t)
			}
			ctx.Local(t)
		}
		for i := 0; i < a.Insts; i++ {
			ctx.Busy(s.cfg.Costs.PerSuccessor)
			ctx.Send(0, instMsg{})
		}
		return
	}
	for _, child := range a.Children {
		ctx.Busy(s.cfg.Costs.PerSuccessor)
		dest := s.leftProcOf(part[child.Bucket])
		if dest == ctx.Proc() {
			ctx.Local(s.newAct(cycle, child))
		} else {
			// Left tokens always travel to the owning slot's left
			// processor (communication is restricted to it), even from
			// the right member of the same pair.
			ctx.Send(dest, s.newAct(cycle, child))
		}
	}
	for i := 0; i < a.Insts; i++ {
		ctx.Busy(s.cfg.Costs.PerSuccessor)
		ctx.Send(0, instMsg{})
	}
}

// Baseline returns the configuration of the speedup base case: a
// single match processor with zero message-processing overheads (the
// paper's denominator for every speedup figure).
func Baseline(cfg Config) Config {
	base := cfg
	base.MatchProcs = 1
	base.Overhead = OverheadSetting{Name: "base"}
	base.Partition = nil
	base.PerCycle = nil
	base.Rebalance = sched.Rebalance{}
	base.Pairs = false
	base.CentralRoots = false
	base.Replicated = false
	// The baseline is a helper run: it must not write into the
	// configured run's timeline or metrics.
	base.Recorder = nil
	base.Metrics = nil
	return base
}

// Speedup simulates the trace under cfg and under the baseline and
// returns base-makespan / cfg-makespan along with both results.
func Speedup(tr *trace.Trace, cfg Config) (float64, *Result, *Result, error) {
	res, err := Simulate(tr, cfg)
	if err != nil {
		return 0, nil, nil, err
	}
	base, err := Simulate(tr, Baseline(cfg))
	if err != nil {
		return 0, nil, nil, err
	}
	if res.Makespan == 0 {
		return 1, res, base, nil
	}
	return float64(base.Makespan) / float64(res.Makespan), res, base, nil
}
