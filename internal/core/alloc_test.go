package core

import (
	"testing"

	"mpcrete/internal/trace"
)

// allocTrace builds a synthetic section of identical cycles: every
// cycle fans a handful of roots into successor waves across buckets,
// exercising broadcasts, remote sends, local follow-ons, and
// instantiation messages.
func allocTrace(cycles int) *trace.Trace {
	tr := &trace.Trace{Name: "alloc", NBuckets: 32}
	for c := 0; c < cycles; c++ {
		cy := &trace.Cycle{Changes: 2, RootInsts: 1}
		for r := 0; r < 6; r++ {
			root := act('L', '+', r, 0,
				act('R', '+', (r+7)%32, 1),
				act('L', '+', (r+13)%32, 0,
					act('L', '+', (r+21)%32, 1)))
			cy.Roots = append(cy.Roots, root)
		}
		tr.Cycles = append(tr.Cycles, cy)
	}
	return tr
}

// TestSimulateSteadyStateAllocs pins the scratch-reuse property of
// Simulate: once the first cycles have warmed the event heap, the
// pending rings, and the payload free lists, each additional cycle
// costs O(1) allocations (the per-cycle rows of the result matrices),
// not O(activations). The marginal cost is measured by comparing a
// short and a long run of the same per-cycle workload.
func TestSimulateSteadyStateAllocs(t *testing.T) {
	short, long := allocTrace(8), allocTrace(72)
	cfg := NewConfig(8)
	measure := func(tr *trace.Trace) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := Simulate(tr, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
	a8, a72 := measure(short), measure(long)
	perCycle := (a72 - a8) / 64
	t.Logf("allocs: %d cycles = %.0f, %d cycles = %.0f (%.2f per extra cycle)",
		8, a8, 72, a72, perCycle)
	// Each extra cycle appends two result rows and may box a couple of
	// bookkeeping values; anything beyond a handful means a per-
	// activation allocation crept back into the hot path (each cycle
	// here replays 24 activations and ~20 messages).
	if perCycle > 4 {
		t.Errorf("steady-state allocations = %.2f per cycle, want <= 4", perCycle)
	}
}
