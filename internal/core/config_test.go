package core

import (
	"errors"
	"testing"

	"mpcrete/internal/sched"
	"mpcrete/internal/simnet"
	"mpcrete/internal/trace"
)

func configTestTrace() *trace.Trace {
	return &trace.Trace{
		Name:     "cfg-test",
		NBuckets: 4,
		Cycles: []*trace.Cycle{{
			Changes: 1,
			Roots: []*trace.Activation{
				{Node: 0, Side: trace.RightSide, Bucket: 0},
				{Node: 1, Side: trace.LeftSide, Bucket: 1},
			},
		}},
	}
}

func TestNewConfigDefaults(t *testing.T) {
	cfg := NewConfig(8)
	if cfg.MatchProcs != 8 {
		t.Errorf("MatchProcs = %d, want 8", cfg.MatchProcs)
	}
	if cfg.Costs != DefaultCosts() {
		t.Errorf("Costs = %+v, want DefaultCosts", cfg.Costs)
	}
	if cfg.Latency != NectarLatency() {
		t.Errorf("Latency = %v, want NectarLatency", cfg.Latency)
	}
	ov := OverheadRuns()[2]
	cfg = NewConfig(4,
		WithOverhead(ov),
		WithLatency(simnet.US(2)),
		WithPairs(),
		WithSoftwareBroadcast(),
	)
	if cfg.Overhead != ov || cfg.Latency != simnet.US(2) || !cfg.Pairs || !cfg.SoftwareBroadcast {
		t.Errorf("options not applied: %+v", cfg)
	}
}

func TestValidateTypedErrors(t *testing.T) {
	tr := configTestTrace()

	var pce *ProcCountError
	if err := NewConfig(0).Validate(tr); !errors.As(err, &pce) || pce.Procs != 0 {
		t.Errorf("procs=0: got %v, want ProcCountError", err)
	}
	if err := NewConfig(-3).Validate(tr); !errors.As(err, &pce) || pce.Procs != -3 {
		t.Errorf("procs=-3: got %v, want ProcCountError", err)
	}

	var pse *PartitionSizeError
	err := NewConfig(2, WithPartition(make(sched.Partition, 3))).Validate(tr)
	if !errors.As(err, &pse) || pse.Got != 3 || pse.Want != 4 || pse.Cycle != -1 {
		t.Errorf("short partition: got %v, want PartitionSizeError{-1,3,4}", err)
	}
	err = NewConfig(2, WithPerCycle([]sched.Partition{make(sched.Partition, 2)})).Validate(tr)
	if !errors.As(err, &pse) || pse.Cycle != 0 {
		t.Errorf("short per-cycle partition: got %v, want PartitionSizeError{cycle 0}", err)
	}

	var pcc *PerCycleCountError
	err = NewConfig(2, WithPerCycle(make([]sched.Partition, 3))).Validate(tr)
	if !errors.As(err, &pcc) || pcc.Got != 3 || pcc.Want != 1 {
		t.Errorf("per-cycle count: got %v, want PerCycleCountError{3,1}", err)
	}

	var te *TopologyError
	if err := NewConfig(2, WithContention()).Validate(tr); !errors.As(err, &te) {
		t.Errorf("contention w/o topology: got %v, want TopologyError", err)
	}
	ok := NewConfig(2, WithTopology(simnet.Crossbar{}, 0), WithContention())
	if err := ok.Validate(tr); err != nil {
		t.Errorf("contention with crossbar: %v", err)
	}

	var ioe *IncompatibleOptionsError
	if err := NewConfig(2, WithCentralRoots(), WithPairs()).Validate(tr); !errors.As(err, &ioe) {
		t.Errorf("central+pairs: got %v, want IncompatibleOptionsError", err)
	}
	if err := NewConfig(2, WithReplicated(), WithPairs()).Validate(tr); !errors.As(err, &ioe) {
		t.Errorf("replicated+pairs: got %v, want IncompatibleOptionsError", err)
	}

	if err := NewConfig(2).Validate(tr); err != nil {
		t.Errorf("valid config: %v", err)
	}
}

// TestSimulateValidatesUpFront pins that a bad point fails before any
// simulation work, with the typed error surfaced through Simulate and
// Speedup alike.
func TestSimulateValidatesUpFront(t *testing.T) {
	tr := configTestTrace()
	bad := NewConfig(2, WithPartition(make(sched.Partition, 99)))
	if _, err := Simulate(tr, bad); err == nil {
		t.Fatal("Simulate accepted a mis-sized partition")
	}
	if _, _, _, err := Speedup(tr, bad); err == nil {
		t.Fatal("Speedup accepted a mis-sized partition")
	}
	var pse *PartitionSizeError
	_, err := Simulate(tr, bad)
	if !errors.As(err, &pse) {
		t.Errorf("Simulate error = %v, want PartitionSizeError", err)
	}
}

func TestFingerprint(t *testing.T) {
	tr := configTestTrace()
	a := NewConfig(2)
	b := NewConfig(2)
	if a.Fingerprint(tr) != b.Fingerprint(tr) {
		t.Error("identical configs fingerprint differently")
	}

	// The overhead display name is not semantic: run1 is 0/0 µs, the
	// same machine as the zero value and the baseline's "base" label.
	named := NewConfig(2, WithOverhead(OverheadRuns()[0]))
	if a.Fingerprint(tr) != named.Fingerprint(tr) {
		t.Error("overhead name leaked into the fingerprint")
	}

	// A nil partition is canonicalized to the round-robin default, so
	// the explicit form dedupes with it.
	rr := NewConfig(2, WithPartition(sched.RoundRobin(tr.NBuckets, 2)))
	if a.Fingerprint(tr) != rr.Fingerprint(tr) {
		t.Error("explicit round-robin != nil partition")
	}

	for name, other := range map[string]Config{
		"procs":      NewConfig(4),
		"overhead":   NewConfig(2, WithOverhead(OverheadRuns()[1])),
		"latency":    NewConfig(2, WithLatency(simnet.US(9))),
		"topology":   NewConfig(2, WithTopology(simnet.Mesh2D{W: 2, H: 2}, simnet.US(1))),
		"partition":  NewConfig(2, WithPartition(sched.Partition{1, 0, 1, 0})),
		"pairs":      NewConfig(2, WithPairs()),
		"central":    NewConfig(2, WithCentralRoots()),
		"replicated": NewConfig(2, WithReplicated()),
		"swbcast":    NewConfig(2, WithSoftwareBroadcast()),
	} {
		if a.Fingerprint(tr) == other.Fingerprint(tr) {
			t.Errorf("%s change did not change the fingerprint", name)
		}
	}

	// Observability attachments must not perturb the key.
	withObs := NewConfig(2)
	withObs.Metrics = nil // zero-value registries aside, the fields are excluded by construction
	if a.Fingerprint(tr) != withObs.Fingerprint(tr) {
		t.Error("observability fields leaked into the fingerprint")
	}
}
