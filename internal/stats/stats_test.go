package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanMaxVariance(t *testing.T) {
	xs := []int{2, 4, 6, 8}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v", m)
	}
	if m := Max(xs); m != 8 {
		t.Errorf("max = %v", m)
	}
	if v := Variance(xs); v != 5 {
		t.Errorf("variance = %v", v)
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty inputs should be zero")
	}
}

func TestCV(t *testing.T) {
	if cv := CV([]int{5, 5, 5}); cv != 0 {
		t.Errorf("constant CV = %v", cv)
	}
	if cv := CV([]int{0, 0}); cv != 0 {
		t.Errorf("zero-mean CV = %v", cv)
	}
	// CV of {0, 10} = stddev 5 / mean 5 = 1.
	if cv := CV([]int{0, 10}); math.Abs(cv-1) > 1e-9 {
		t.Errorf("CV = %v, want 1", cv)
	}
}

func TestSqrtAgainstMath(t *testing.T) {
	f := func(x float64) bool {
		v := math.Abs(x)
		if v > 1e100 {
			return true
		}
		got := sqrt(v)
		want := math.Sqrt(v)
		return math.Abs(got-want) <= 1e-9*(1+want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBars(t *testing.T) {
	var buf bytes.Buffer
	Bars(&buf, "load:", []int{0, 5, 10}, 10)
	out := buf.String()
	if !strings.Contains(out, "load:") {
		t.Error("missing label")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[3], strings.Repeat("#", 10)) {
		t.Errorf("max row not full width: %q", lines[3])
	}
	if strings.Contains(lines[1], "#") {
		t.Errorf("zero row has bars: %q", lines[1])
	}
	// All-zero input must not divide by zero.
	Bars(&buf, "empty:", []int{0, 0}, 10)
}

func TestTable(t *testing.T) {
	var buf bytes.Buffer
	Table(&buf, [][]string{
		{"name", "value"},
		{"x", "1"},
		{"longer-name", "22"},
	})
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	// Columns align: "value" starts at the same offset in every row.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[1][idx:], "1") || !strings.HasPrefix(lines[2][idx:], "22") {
		t.Errorf("misaligned table:\n%s", buf.String())
	}
	Table(&buf, nil) // no panic on empty
}
