// Package stats holds the small numeric and text-rendering helpers the
// experiment harness uses: summary statistics, ASCII bar charts for
// distribution figures, and aligned tables.
package stats

import (
	"fmt"
	"io"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// Max returns the maximum (0 for empty input).
func Max(xs []int) int {
	max := 0
	for i, x := range xs {
		if i == 0 || x > max {
			max = x
		}
	}
	return max
}

// Variance returns the population variance.
func Variance(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := float64(x) - m
		s += d * d
	}
	return s / float64(len(xs))
}

// CV returns the coefficient of variation (stddev/mean); 0 when the
// mean is zero.
func CV(xs []int) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	v := Variance(xs)
	return sqrt(v) / m
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	// Newton's method; plenty for reporting.
	x := v
	for i := 0; i < 40; i++ {
		x = 0.5 * (x + v/x)
	}
	return x
}

// Bars renders an ASCII bar chart of per-index values, one row per
// index, scaled to width columns.
func Bars(w io.Writer, label string, values []int, width int) {
	max := Max(values)
	if max == 0 {
		max = 1
	}
	fmt.Fprintf(w, "%s\n", label)
	for i, v := range values {
		n := v * width / max
		fmt.Fprintf(w, "  %3d |%-*s %d\n", i, width, strings.Repeat("#", n), v)
	}
}

// Table renders rows with aligned columns separated by two spaces.
func Table(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}
