package workloads

import (
	"bytes"
	"strings"
	"testing"

	"mpcrete/internal/engine"
	"mpcrete/internal/ops5"
)

// runConfigurator executes the configurator on the given orders and
// returns the engine and its write output.
func runConfigurator(t *testing.T, orders ...ConfiguratorOrder) (*engine.Engine, string) {
	t.Helper()
	prog, err := ops5.ParseProgram(Configurator)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	e, err := engine.New(prog, engine.Options{Output: &out})
	if err != nil {
		t.Fatal(err)
	}
	wmes, err := ops5.ParseWMEs(ConfiguratorWMEs(orders...))
	if err != nil {
		t.Fatal(err)
	}
	e.InsertWMEs(wmes...)
	if _, err := e.Run(2000); err != nil {
		t.Fatal(err)
	}
	return e, out.String()
}

func TestConfiguratorSingleOrderOK(t *testing.T) {
	order := ConfiguratorOrder{ID: "ord-1", CPUs: 1, Disks: 2, PowerMax: 100}
	e, out := runConfigurator(t, order)
	if !e.Halted() {
		t.Fatal("configurator should halt")
	}
	// 1 cpu(25) + 2 disks(20) + 1 controller(5) = 50 <= 100.
	if want := "order ord-1 configured at power 50 of 100"; !strings.Contains(out, want) {
		t.Errorf("output %q missing %q", out, want)
	}
	// Wme inventory: order + phase + budget + next-seq + 4 components +
	// 1 controller + 1 report = 10.
	if e.WMCount() != 10 {
		t.Errorf("wm = %d, want 10", e.WMCount())
	}
}

func TestConfiguratorOverBudget(t *testing.T) {
	order := ConfiguratorOrder{ID: "big", CPUs: 2, Disks: 5, PowerMax: 100}
	e, out := runConfigurator(t, order)
	if !e.Halted() {
		t.Fatal("should halt")
	}
	// 2*25 + 5*10 + 2*5 = 110 > 100.
	if want := "order big power 110 exceeds budget 100"; !strings.Contains(out, want) {
		t.Errorf("output %q missing %q", out, want)
	}
	if got, want := ConfiguratorPower(order), 110; got != want {
		t.Errorf("predicted power = %d, want %d", got, want)
	}
}

func TestConfiguratorMultipleOrders(t *testing.T) {
	orders := []ConfiguratorOrder{
		{ID: "a", CPUs: 1, Disks: 3, PowerMax: 200},
		{ID: "b", CPUs: 3, Disks: 7, PowerMax: 100}, // 75+70+15 = 160 > 100
		{ID: "c", CPUs: 0, Disks: 1, PowerMax: 50},
	}
	e, out := runConfigurator(t, orders...)
	if !e.Halted() {
		t.Fatal("should halt")
	}
	for _, want := range []string{
		"order a configured",
		"order b power 160 exceeds budget 100",
		"order c configured at power 15 of 50",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Inventory per order: 4 bookkeeping + components + controllers + report.
	want := 0
	for _, o := range orders {
		want += 4 + ConfiguratorComponents(o) + (o.Disks+2)/3 + 1
	}
	if e.WMCount() != want {
		t.Errorf("wm = %d, want %d", e.WMCount(), want)
	}
}

func TestConfiguratorControllerChannels(t *testing.T) {
	// 7 disks need ceil(7/3) = 3 controllers; no controller exceeds 3.
	prog, err := ops5.ParseProgram(Configurator)
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(prog, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wmes, err := ops5.ParseWMEs(ConfiguratorWMEs(ConfiguratorOrder{ID: "d", CPUs: 0, Disks: 7, PowerMax: 500}))
	if err != nil {
		t.Fatal(err)
	}
	e.InsertWMEs(wmes...)
	if _, err := e.Run(2000); err != nil {
		t.Fatal(err)
	}
	if !e.Halted() {
		t.Fatal("should halt")
	}
	// 4 bookkeeping + 7 disks + 3 controller components + 3 controller
	// wmes + 1 report = 18.
	if e.WMCount() != 18 {
		t.Errorf("wm = %d, want 18", e.WMCount())
	}
}

func TestConfiguratorTraceFeedsSimulator(t *testing.T) {
	tr, e, err := RecordRun("config", Configurator,
		ConfiguratorWMEs(ConfiguratorOrder{ID: "x", CPUs: 2, Disks: 6, PowerMax: 300}), 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Halted() {
		t.Fatal("should halt")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Cycles < 15 || s.Total == 0 {
		t.Errorf("trace stats = %+v, want a real multi-cycle trace", s)
	}
}
