package workloads

import "fmt"

// Queens is an N-queens solver written as a pure forward-chaining
// production system with chronological backtracking — the classic
// stress test for conflict-resolution-driven control. The board's
// attack relation is materialized as wmes (production-system LHSs
// cannot compute |c1-c2| == |r1-r2|), and the search strategy rides
// entirely on OPS5 LEX semantics:
//
//   - mark-threat instantiations contain the just-placed queen (the
//     newest wme), so all threats are asserted before the next column
//     is attempted;
//   - give-up shares its newest time tags with place but matches
//     fewer wmes, so under LEX's longer-list-wins rule it fires only
//     when no square in the cursor column is placeable;
//   - the backtrack phase unwinds threats and trial marks through
//     negation-gated cleanup rules, then pops the previous queen.
const Queens = `
(literalize board n)
(literalize cursor col)
(literalize phase name target)
(literalize square col row)
(literalize attack c1 r1 c2 r2)
(literalize queen col row)
(literalize tried col row)
(literalize threat by-col col row)

; Place a queen on an unthreatened, untried square of the cursor
; column and advance. The cursor is modified BEFORE the queen is made,
; so the queen carries the newest time tag and mark-threat outranks
; the next place under LEX.
(p place
    (phase ^name search)
    (cursor ^col <c>)
    (board ^n >= <c>)
    (square ^col <c> ^row <r>)
    -(threat ^col <c> ^row <r>)
    -(tried ^col <c> ^row <r>)
    -(queen ^col <c>)
    -->
    (modify 2 ^col (compute <c> + 1))
    (make queen ^col <c> ^row <r>)
    (make tried ^col <c> ^row <r>))

; Materialize the new queen's threats against later columns.
(p mark-threat
    (phase ^name search)
    (queen ^col <c1> ^row <r1>)
    (attack ^c1 <c1> ^r1 <r1> ^c2 <c2> ^r2 <r2>)
    -(threat ^by-col <c1> ^col <c2> ^row <r2>)
    -->
    (make threat ^by-col <c1> ^col <c2> ^row <r2>))

; The cursor moved past the last column: every column holds a queen.
(p solved
    (phase ^name search)
    (board ^n <n>)
    (cursor ^col > <n>)
    -->
    (write solution found)
    (halt))

; No square in the cursor column is placeable (this instantiation is a
; strict LEX-prefix of place's, so it fires only when place cannot):
; back up one column.
(p give-up
    (phase ^name search)
    (cursor ^col { <c> > 1 })
    -->
    (bind <p> (compute <c> - 1))
    (modify 1 ^name backtrack ^target <p>))

; Nowhere to back up to: the instance is unsatisfiable.
(p exhausted
    (phase ^name search)
    (cursor ^col 1)
    -->
    (write no solution)
    (halt))

; Backtrack cleanup: retract the popped column's threats and the
; abandoned column's trial marks, then pop the queen and resume.
(p unthreat
    (phase ^name backtrack ^target <p>)
    (threat ^by-col <p>)
    -->
    (remove 2))

(p untried
    (phase ^name backtrack)
    (cursor ^col <c>)
    (tried ^col <c> ^row <r>)
    -->
    (remove 3))

(p pop
    (phase ^name backtrack ^target <p>)
    (cursor ^col <c>)
    (queen ^col <p> ^row <r>)
    -(threat ^by-col <p>)
    -(tried ^col <c>)
    -->
    (remove 3)
    (modify 2 ^col <p>)
    (modify 1 ^name search ^target 0))
`

// QueensWMEs builds the initial working memory for an n-queens
// instance: the board, the squares, the column-ordered attack table,
// the cursor, and (last, so its time tag is the newest bookkeeping
// tag) the search phase.
func QueensWMEs(n int) string {
	out := fmt.Sprintf("(board ^n %d)\n(cursor ^col 1)\n", n)
	for c := 1; c <= n; c++ {
		for r := 1; r <= n; r++ {
			out += fmt.Sprintf("(square ^col %d ^row %d)\n", c, r)
		}
	}
	for c1 := 1; c1 <= n; c1++ {
		for c2 := c1 + 1; c2 <= n; c2++ {
			d := c2 - c1
			for r1 := 1; r1 <= n; r1++ {
				for _, r2 := range []int{r1, r1 - d, r1 + d} {
					if r2 >= 1 && r2 <= n {
						out += fmt.Sprintf("(attack ^c1 %d ^r1 %d ^c2 %d ^r2 %d)\n", c1, r1, c2, r2)
					}
				}
			}
		}
	}
	out += "(phase ^name search ^target 0)\n"
	return out
}
