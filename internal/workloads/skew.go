package workloads

import (
	"math/rand"

	"mpcrete/internal/trace"
)

// Skewed sections for the adaptive-repartitioning ablation. The three
// calibrated paper sections are nearly stationary — their hot buckets
// sit still, so a load-aware static assignment (greedy over the
// aggregate) already captures most of the achievable balance and the
// paper's Section 5.2.2 verdict ("migration too costly") holds
// trivially. These two generators produce the workload family where
// the question is actually open: per-cycle bucket load that is skewed
// (a few buckets dominate each cycle), with a hot set that either
// stays put (Congest) or drifts between phases (Drift).

// DriftBuckets is the hash-table size of the skewed sections.
const DriftBuckets = SectionBuckets

// Drift generates the non-stationary skewed section: 4 phases of 6
// cycles. Each phase concentrates its left activations on a different
// random cluster of 16 buckets with geometrically decaying weights;
// between phases the hot cluster moves wholesale. Aggregated over the
// run every cluster carries the same total load, so a static
// load-aware assignment balances the aggregate but still collides the
// live hot buckets within individual phases — only an online policy
// that watches per-cycle counters can track the drift.
func Drift() *trace.Trace {
	rng := rand.New(rand.NewSource(404))
	tr := &trace.Trace{Name: "drift", NBuckets: DriftBuckets}
	const (
		phases         = 4
		cyclesPerPhase = 6
		hotBuckets     = 16
		hotLefts       = 420
		bgRights       = 60
	)
	perm := rng.Perm(DriftBuckets)
	for p := 0; p < phases; p++ {
		hot := perm[p*hotBuckets : (p+1)*hotBuckets]
		for c := 0; c < cyclesPerPhase; c++ {
			tr.Cycles = append(tr.Cycles, skewedCycle(rng, hot, hotLefts, bgRights))
		}
	}
	return tr
}

// Congest generates the stationary skewed section: the same per-cycle
// concentration as Drift, but the hot cluster never moves and is
// chosen adversarially for the count-based default — all 16 hot
// buckets share residue 0 mod 16, so a round-robin partition piles
// every one of them onto the same processor. A load-aware static
// assignment fixes this once and for all; the section exists as the
// control showing the adaptive policy matches (rather than beats)
// static balance when the skew does not move.
func Congest() *trace.Trace {
	rng := rand.New(rand.NewSource(505))
	tr := &trace.Trace{Name: "congest", NBuckets: DriftBuckets}
	const (
		cycles   = 24
		hotLefts = 420
		bgRights = 60
	)
	hot := make([]int, 16)
	for i := range hot {
		hot[i] = i * 16 // all ≡ 0 (mod 16)
	}
	for c := 0; c < cycles; c++ {
		tr.Cycles = append(tr.Cycles, skewedCycle(rng, hot, hotLefts, bgRights))
	}
	return tr
}

// skewedCycle builds one cycle: nl left activations geometrically
// concentrated on the hot cluster plus nr evenly hashed rights.
func skewedCycle(rng *rand.Rand, hot []int, nl, nr int) *trace.Cycle {
	cy := &trace.Cycle{Changes: 8}
	for i, b := range geometricFill(hot, nl, 0.9) {
		cy.Roots = append(cy.Roots, &trace.Activation{
			Node:   800 + i%31,
			Side:   trace.LeftSide,
			Tag:    addOrDelete(rng, 0.2),
			Bucket: b,
			Insts:  btoi(rng.Intn(50) == 0),
		})
	}
	for i := 0; i < nr; i++ {
		cy.Roots = append(cy.Roots, &trace.Activation{
			Node:   900 + i%13,
			Side:   trace.RightSide,
			Tag:    trace.AddTag,
			Bucket: rng.Intn(DriftBuckets),
		})
	}
	return cy
}

// SkewedSections returns the two skewed sections used by the
// adaptive-vs-static ablation.
func SkewedSections() []*trace.Trace {
	return []*trace.Trace{Drift(), Congest()}
}
