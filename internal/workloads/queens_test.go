package workloads

import (
	"testing"

	"mpcrete/internal/engine"
	"mpcrete/internal/ops5"
	"mpcrete/internal/rete"
)

// solveQueens runs the solver and returns the engine plus the queen
// positions (col -> row) extracted from working memory.
func solveQueens(t *testing.T, n, maxCycles int) (*engine.Engine, map[int]int) {
	t.Helper()
	prog, err := ops5.ParseProgram(Queens)
	if err != nil {
		t.Fatal(err)
	}
	rec := newQueenInspector()
	e, err := engine.New(prog, engine.Options{Listener: rec})
	if err != nil {
		t.Fatal(err)
	}
	wmes, err := ops5.ParseWMEs(QueensWMEs(n))
	if err != nil {
		t.Fatal(err)
	}
	e.InsertWMEs(wmes...)
	if _, err := e.Run(maxCycles); err != nil {
		t.Fatal(err)
	}
	return e, rec.queens()
}

// queenInspector tracks live queen wmes through the match listener.
type queenInspector struct {
	live map[int]int // wme id -> col*1000+row
}

func newQueenInspector() *queenInspector { return &queenInspector{live: map[int]int{}} }

func (q *queenInspector) BeginCycle(cycle int, changes []rete.Change) {
	for _, ch := range changes {
		if ch.WME.Class != "queen" {
			continue
		}
		if ch.Tag == rete.Add {
			q.live[ch.WME.ID] = int(ch.WME.Get("col").Num)*1000 + int(ch.WME.Get("row").Num)
		} else {
			delete(q.live, ch.WME.ID)
		}
	}
}
func (q *queenInspector) Activation(rete.Event)         {}
func (q *queenInspector) Instantiation(rete.InstChange) {}
func (q *queenInspector) EndCycle(int)                  {}

func (q *queenInspector) queens() map[int]int {
	out := map[int]int{}
	for _, cr := range q.live {
		out[cr/1000] = cr % 1000
	}
	return out
}

// validSolution checks the no-attack invariant.
func validSolution(n int, queens map[int]int) bool {
	if len(queens) != n {
		return false
	}
	for c1 := 1; c1 <= n; c1++ {
		for c2 := c1 + 1; c2 <= n; c2++ {
			r1, r2 := queens[c1], queens[c2]
			if r1 == 0 || r2 == 0 {
				return false
			}
			d := c2 - c1
			if r1 == r2 || r2 == r1+d || r2 == r1-d {
				return false
			}
		}
	}
	return true
}

func TestQueensSolvesWithBacktracking(t *testing.T) {
	for _, n := range []int{1, 4, 5, 6} {
		e, queens := solveQueens(t, n, 20000)
		if !e.Halted() {
			t.Fatalf("n=%d: did not halt", n)
		}
		if !validSolution(n, queens) {
			t.Errorf("n=%d: invalid solution %v", n, queens)
		}
	}
}

func TestQueensBacktracks(t *testing.T) {
	// n=4 has no greedy (first-fit) solution from row 1: the solver
	// must pop at least once. Count pop firings via the fired total:
	// a pure greedy run would fire exactly n place + threats + solved;
	// more firings imply backtracking occurred. Use n=6 for certainty
	// and compare against the theoretical no-backtrack floor.
	e, _ := solveQueens(t, 6, 20000)
	// Greedy floor: 6 places + 1 solved + threat markings (< 200).
	if e.Fired() < 210 {
		t.Errorf("fired = %d: suspiciously few firings; did it backtrack?", e.Fired())
	}
}

func TestQueensUnsolvable(t *testing.T) {
	for _, n := range []int{2, 3} {
		e, queens := solveQueens(t, n, 20000)
		if !e.Halted() {
			t.Fatalf("n=%d: did not halt", n)
		}
		if len(queens) != 0 {
			t.Errorf("n=%d: unsolvable instance left queens %v", n, queens)
		}
	}
}

func TestQueensTraceRecordsSearch(t *testing.T) {
	tr, e, err := RecordRun("queens", Queens, QueensWMEs(5), 20000)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Halted() {
		t.Fatal("did not halt")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Cycles < 20 {
		t.Errorf("cycles = %d; the search should take many MRA cycles", s.Cycles)
	}
}
