// Package workloads provides the three characteristic execution
// sections the paper simulates — Rubik (good speedups), Weaver (small
// cycles), and Tourney (cross-product) — together with genuine OPS5
// programs that exercise the full program -> Rete -> trace pipeline.
//
// The original traces (taken from the Encore / PSM-E implementations)
// were never published, so the section generators here are calibrated
// to every statistic the paper reports: the Table 5-2 activation
// counts and left/right ratios, the four-cycle structure, Weaver's
// three high-fan-out left activations (120 of ~150 tokens in one
// cycle), Tourney's single non-discriminating cross-product bucket,
// and Rubik's per-cycle busy/idle alternation (Fig 5-5). The MPC
// simulator consumes only this shape, so the calibrated sections
// reproduce the paper's experiments faithfully (see DESIGN.md,
// "Substitutions").
package workloads

import (
	"math/rand"

	"mpcrete/internal/trace"
)

// SectionBuckets is the hash-table size used by the generated
// sections.
const SectionBuckets = 1024

// Rubik generates the "good speedups" section: four consecutive
// cycles from a Rubik's-cube solver. Table 5-2: 2388 left / 6114 right
// activations. Rights hash evenly over the table; the left activity
// clusters on a small set of active buckets that alternates between
// even and odd cycles, reproducing the Fig 5-5 pattern in which
// processors busy in one cycle sit idle in the next.
func Rubik() *trace.Trace {
	rng := rand.New(rand.NewSource(101))
	tr := &trace.Trace{Name: "rubik", NBuckets: SectionBuckets}

	// Two disjoint clusters of left-active buckets.
	clusterA, clusterB := pickClusters(rng, SectionBuckets, 24)

	rights := []int{1529, 1528, 1529, 1528} // 6114
	lefts := []int{597, 597, 597, 597}      // 2388

	for c := 0; c < 4; c++ {
		cluster := clusterA
		if c%2 == 1 {
			cluster = clusterB
		}
		cy := &trace.Cycle{Changes: 24}
		nr, nl := rights[c], lefts[c]

		// Left activations ride as children of the first nl rights,
		// one each; their buckets are drawn from the active cluster
		// with geometrically decaying weights so a few buckets
		// dominate each cycle, as the paper observed (Fig 5-5 shows
		// ~20 tokens on the busiest processors and idle ones beside
		// them).
		leftBuckets := geometricFill(cluster, nl, 0.88)
		for i := 0; i < nr; i++ {
			root := &trace.Activation{
				Node:   i % 97,
				Side:   trace.RightSide,
				Tag:    addOrDelete(rng, 0.15),
				Bucket: rng.Intn(SectionBuckets),
			}
			if i < nl {
				child := &trace.Activation{
					Node:   100 + i%61,
					Side:   trace.LeftSide,
					Tag:    root.Tag,
					Bucket: leftBuckets[i],
				}
				if rng.Intn(20) == 0 {
					child.Insts = 1
				}
				root.Children = append(root.Children, child)
			}
			cy.Roots = append(cy.Roots, root)
		}
		tr.Cycles = append(tr.Cycles, cy)
	}
	return tr
}

// geometricFill distributes n draws over the cluster's buckets with
// weight ratio r between successive buckets, deterministically.
func geometricFill(cluster []int, n int, r float64) []int {
	weights := make([]float64, len(cluster))
	total := 0.0
	w := 1.0
	for i := range weights {
		weights[i] = w
		total += w
		w *= r
	}
	var out []int
	for i := range cluster {
		k := int(float64(n) * weights[i] / total)
		for j := 0; j < k && len(out) < n; j++ {
			out = append(out, cluster[i])
		}
	}
	for len(out) < n { // rounding remainder onto the tail buckets
		out = append(out, cluster[len(out)%len(cluster)])
	}
	return out
}

// Weaver generates the "small cycles" section: four consecutive small
// cycles from the VLSI-routing expert. Table 5-2: 338 left / 78 right
// activations. Cycle 1 contains the multiple-successor bottleneck the
// paper analyzes: three left activations generate 120 of its ~150
// tokens (fan-out 40 each).
func Weaver() *trace.Trace {
	rng := rand.New(rand.NewSource(202))
	tr := &trace.Trace{Name: "weaver", NBuckets: SectionBuckets}

	rights := []int{19, 20, 19, 20} // 78
	// Cycle 1 is the hot one: 3 fan-out-40 roots + 8 stragglers = 131.
	lefts := []int{69, 131, 69, 69} // 338

	for c := 0; c < 4; c++ {
		cy := &trace.Cycle{Changes: 3}
		nr, nl := rights[c], lefts[c]

		if c == 1 {
			// Three hot left roots, each generating 40 left children
			// from a single hash-bucket site.
			for h := 0; h < 3; h++ {
				hot := &trace.Activation{
					Node:   200 + h,
					Side:   trace.LeftSide,
					Tag:    trace.AddTag,
					Bucket: rng.Intn(SectionBuckets),
				}
				for j := 0; j < 40; j++ {
					hot.Children = append(hot.Children, &trace.Activation{
						Node:   300 + h*40 + j,
						Side:   trace.LeftSide,
						Tag:    trace.AddTag,
						Bucket: rng.Intn(SectionBuckets),
						Insts:  btoi(rng.Intn(25) == 0),
					})
				}
				cy.Roots = append(cy.Roots, hot)
			}
			nl -= 3 + 120
		}

		// Remaining lefts arrive as roots with even bucket spread
		// (the paper: "the distribution in Weaver is much more even").
		for i := 0; i < nl; i++ {
			cy.Roots = append(cy.Roots, &trace.Activation{
				Node:   400 + i%37,
				Side:   trace.LeftSide,
				Tag:    addOrDelete(rng, 0.2),
				Bucket: rng.Intn(SectionBuckets),
				Insts:  btoi(rng.Intn(30) == 0),
			})
		}
		for i := 0; i < nr; i++ {
			cy.Roots = append(cy.Roots, &trace.Activation{
				Node:   500 + i%11,
				Side:   trace.RightSide,
				Tag:    trace.AddTag,
				Bucket: rng.Intn(SectionBuckets),
			})
		}
		tr.Cycles = append(tr.Cycles, cy)
	}
	return tr
}

// Tourney generates the "cross-product" section: one heavy
// cross-product cycle surrounded by four small cycles, from the
// tournament scheduler. Table 5-2: 10667 left / 83 right activations.
// The cross-product join tests no variable, so the hash cannot
// discriminate: every token of the hot node lands in one bucket, and
// its activations serialize on whichever processor owns that bucket.
func Tourney() *trace.Trace {
	rng := rand.New(rand.NewSource(303))
	tr := &trace.Trace{Name: "tourney", NBuckets: SectionBuckets}

	smallLefts := 140 // per surrounding cycle
	smallRights := 11 // per surrounding cycle
	crossRights := 39 // rights building the hot node's right memory
	crossLefts := 10107

	for c := 0; c < 5; c++ {
		cy := &trace.Cycle{Changes: 5}
		if c != 2 {
			for i := 0; i < smallLefts; i++ {
				cy.Roots = append(cy.Roots, &trace.Activation{
					Node:   600 + i%23,
					Side:   trace.LeftSide,
					Tag:    addOrDelete(rng, 0.3),
					Bucket: rng.Intn(SectionBuckets),
					Insts:  btoi(rng.Intn(40) == 0),
				})
			}
			for i := 0; i < smallRights; i++ {
				cy.Roots = append(cy.Roots, &trace.Activation{
					Node:   650 + i%5,
					Side:   trace.RightSide,
					Tag:    trace.AddTag,
					Bucket: rng.Intn(SectionBuckets),
				})
			}
			tr.Cycles = append(tr.Cycles, cy)
			continue
		}

		// The cross-product cycle. The hot two-input node tests no
		// variable, so every token arriving at it hashes to the one
		// bucket its node id selects — their processing serializes on
		// the bucket's owner. The arrivals come as cross-product
		// slices generated by ordinary (well-hashed) left activations
		// elsewhere in the network, in alternating add/delete waves
		// (the multiple-modify effect).
		cy.Changes = 40
		for i := 0; i < crossRights; i++ {
			cy.Roots = append(cy.Roots, &trace.Activation{
				Node:   TourneyHotNode,
				Side:   trace.RightSide,
				Tag:    trace.AddTag,
				Bucket: TourneyHotBucket,
			})
		}
		const feeders = 100   // spread left roots feeding the hot node
		const hotPerFeed = 20 // hot-node arrivals generated by each
		// Each hot-node arrival finds matches in the hot right memory
		// and generates one successor further down the network (at a
		// well-hashed bucket), so the hot site pays send overheads as
		// well as token-add time — the reason Tourney loses ~45% of
		// its speedup to message overheads in the paper.
		spreadRoots := crossLefts - feeders - 2*feeders*hotPerFeed
		for i := 0; i < feeders; i++ {
			tag := trace.AddTag
			if i%2 == 1 {
				tag = trace.DeleteTag // multiple-modify-effect pairs
			}
			feeder := &trace.Activation{
				Node:   660 + i%7,
				Side:   trace.LeftSide,
				Tag:    tag,
				Bucket: rng.Intn(SectionBuckets),
			}
			for j := 0; j < hotPerFeed; j++ {
				feeder.Children = append(feeder.Children, &trace.Activation{
					Node:   TourneyHotNode,
					Side:   trace.LeftSide,
					Tag:    tag,
					Bucket: TourneyHotBucket,
					Insts:  btoi(j%10 == 0),
					Children: []*trace.Activation{{
						Node:   710 + j%5,
						Side:   trace.LeftSide,
						Tag:    tag,
						Bucket: rng.Intn(SectionBuckets),
					}},
				})
			}
			cy.Roots = append(cy.Roots, feeder)
		}
		for i := 0; i < spreadRoots; i++ {
			cy.Roots = append(cy.Roots, &trace.Activation{
				Node:   670 + i%29,
				Side:   trace.LeftSide,
				Tag:    addOrDelete(rng, 0.4),
				Bucket: rng.Intn(SectionBuckets),
			})
		}
		tr.Cycles = append(tr.Cycles, cy)
	}
	return tr
}

// TourneyHotNode is the node id of the cross-product join in the
// Tourney section; copy-and-constraint targets it.
const TourneyHotNode = 700

// TourneyHotBucket is the single bucket all TourneyHotNode tokens
// hash to (the join tests no variable).
const TourneyHotBucket = 413

// Sections returns the three calibrated sections in paper order.
func Sections() []*trace.Trace {
	return []*trace.Trace{Rubik(), Tourney(), Weaver()}
}

// helpers

// pickClusters selects two disjoint bucket clusters of size n.
func pickClusters(rng *rand.Rand, nbuckets, n int) (a, b []int) {
	perm := rng.Perm(nbuckets)
	return perm[:n], perm[n : 2*n]
}

func addOrDelete(rng *rand.Rand, pDelete float64) trace.Tag {
	if rng.Float64() < pDelete {
		return trace.DeleteTag
	}
	return trace.AddTag
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}
