package workloads

import (
	"fmt"
	"strings"
)

// CrossChain returns the adversarial k-pattern cross-product program:
// one production whose LHS joins k classes link0..link(k-1) into a
// value chain — linki's ^b must equal link(i+1)'s ^a — but lists the
// condition elements in the worst textual order for a left-to-right
// compiler: all even-indexed classes first, then the odd ones. The
// first k/2 textual joins then share no variables at all, so classic
// Rete builds pure cross-product beta memories of N, N², … N^(k/2)
// tokens before the first chain test prunes anything, even though the
// final match count is linear in N. The bounded variant's greedy join
// ordering recovers the chain order and never materializes those
// memories; candc merely spreads them. k must be at least 2.
func CrossChain(k int) string {
	var b strings.Builder
	for i := 0; i < k; i++ {
		fmt.Fprintf(&b, "(literalize link%d a b)\n", i)
	}
	b.WriteString("(literalize hit lo)\n\n(p chain\n")
	var order []int
	for i := 0; i < k; i += 2 {
		order = append(order, i)
	}
	for i := 1; i < k; i += 2 {
		order = append(order, i)
	}
	for _, i := range order {
		fmt.Fprintf(&b, "    (link%d ^a <x%d> ^b <x%d>)\n", i, i, i+1)
	}
	b.WriteString("    -->\n    (make hit ^lo <x0>))\n")
	return b.String()
}

// CrossChainWMEs generates n wmes per CrossChain class: linki holds
// (^a j ^b j+1) for j = 1..n, so exactly n-k+1 complete chains exist.
func CrossChainWMEs(k, n int) string {
	var b strings.Builder
	for i := 0; i < k; i++ {
		for j := 1; j <= n; j++ {
			fmt.Fprintf(&b, "(link%d ^a %d ^b %d)\n", i, j, j+1)
		}
	}
	return b.String()
}
