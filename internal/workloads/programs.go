package workloads

// Genuine OPS5 programs used by the examples and the end-to-end
// pipeline tests (program -> engine -> Rete -> recorded trace ->
// simulator). They demonstrate that the trace format is derived from
// real production-system runs, not only from the calibrated section
// generators.

// BlocksWorld is the classic blocks-world domain: a robot hand
// unstacks a tower onto the table, guided by goal wmes. It exercises
// multi-CE joins, negation, modify, and remove.
const BlocksWorld = `
(literalize block name on clear)
(literalize hand holding from)
(literalize goal task object done)

; Pick up a clear block that a goal wants moved, if the hand is free;
; remember which block it came off.
(p pick-up
    (goal ^task unstack ^object <b> ^done no)
    (block ^name <b> ^clear yes ^on <under>)
    (hand ^holding nothing)
    -->
    (modify 3 ^holding <b> ^from <under>)
    (modify 2 ^on hand ^clear no))

; Put the held block on the table; the block it came off becomes clear.
(p put-down
    (goal ^task unstack ^object <b> ^done no)
    (block ^name <b> ^on hand)
    (hand ^holding <b> ^from <under>)
    (block ^name <under>)
    -->
    (modify 3 ^holding nothing ^from nowhere)
    (modify 2 ^on table ^clear yes)
    (modify 4 ^clear yes)
    (modify 1 ^done yes))

; When a goal completes, promote a pending goal whose block is clear.
(p next-goal
    (goal ^task unstack ^done yes)
    (goal ^task pending ^object <c>)
    (block ^name <c> ^clear yes)
    -->
    (remove 1)
    (modify 2 ^task unstack ^done no))

; Stop when no goal remains undone or pending and the hand is empty.
(p all-done
    (hand ^holding nothing)
    -(goal ^task unstack ^done no)
    -(goal ^task pending)
    -->
    (halt))
`

// TourneyLike is a miniature tournament scheduler whose central join
// tests no variable between teams and slots: a pure cross product, the
// real-program analogue of the Tourney section's pathology. Every
// (team, slot) pair reaches the conflict set.
const TourneyLike = `
(literalize team name)
(literalize slot round field)
(literalize pairing team round field)
(literalize phase name)

(p propose-pairing
    (phase ^name propose)
    (team ^name <t>)
    (slot ^round <r> ^field <f>)
    -(pairing ^team <t> ^round <r>)
    -->
    (make pairing ^team <t> ^round <r> ^field <f>))

(p done-proposing
    (phase ^name propose)
    -(team)
    -->
    (halt))
`

// MonkeyBananas is the classic OPS5 planning demo: a monkey walks to a
// ladder, pushes it under the bananas, climbs, and grabs. It exercises
// four-CE joins, inequality predicates inside conjunctive tests, and
// goal-driven control.
const MonkeyBananas = `
(literalize monkey at on holds)
(literalize object name at)
(literalize goal status type object)

(p mb-walk-to-ladder
    (goal ^status active ^type holds ^object bananas)
    (object ^name ladder ^at <lloc>)
    (monkey ^at { <mloc> <> <lloc> } ^on floor)
    -->
    (write monkey walks to <lloc>)
    (modify 3 ^at <lloc>))

(p mb-push-ladder
    (goal ^status active ^type holds ^object bananas)
    (object ^name bananas ^at <bloc>)
    (object ^name ladder ^at { <lloc> <> <bloc> })
    (monkey ^at <lloc> ^on floor ^holds nothing)
    -->
    (write monkey pushes ladder to <bloc>)
    (modify 3 ^at <bloc>)
    (modify 4 ^at <bloc>))

(p mb-climb
    (goal ^status active ^type holds ^object bananas)
    (object ^name bananas ^at <bloc>)
    (object ^name ladder ^at <bloc>)
    (monkey ^at <bloc> ^on floor)
    -->
    (write monkey climbs ladder)
    (modify 4 ^on ladder))

(p mb-grab
    (goal ^status active ^type holds ^object bananas)
    (object ^name bananas ^at <bloc>)
    (monkey ^at <bloc> ^on ladder ^holds nothing)
    -->
    (write monkey grabs bananas)
    (modify 3 ^holds bananas)
    (modify 1 ^status satisfied))

(p mb-done
    (goal ^status satisfied)
    -->
    (write goal satisfied)
    (halt))
`

// MonkeyBananasWMEs is the standard initial state: monkey at loc-a,
// ladder at loc-b, bananas at loc-c.
const MonkeyBananasWMEs = `
(monkey ^at loc-a ^on floor ^holds nothing)
(object ^name ladder ^at loc-b)
(object ^name bananas ^at loc-c)
(goal ^status active ^type holds ^object bananas)
`

// RubikLike is a miniature analogue of the paper's Rubik section: a
// queue of twist moves, each of which rewrites every unmoved cubie on
// its face before the next twist becomes eligible. The per-face
// modify storm gives wide cycles (many independent activations) while
// the twist queue serialises the phases — the mix that made Rubik a
// well-behaved parallel workload in the paper's measurements.
const RubikLike = `
(literalize cubie face pos moved)
(literalize twist face seq)
(literalize phase name next)

; Apply the current twist to one unmoved cubie on its face.
(p rub-move
    (phase ^name solve ^next <s>)
    (twist ^face <f> ^seq <s>)
    (cubie ^face <f> ^moved no ^pos <p>)
    -->
    (modify 3 ^pos (compute <p> + 1) ^moved yes))

; All cubies on the twisted face have moved: retire the twist, reset
; the face, and advance to the next move in the queue.
(p rub-advance
    (phase ^name solve ^next <s>)
    (twist ^face <f> ^seq <s>)
    -(cubie ^face <f> ^moved no)
    -->
    (remove 2)
    (modify 1 ^next (compute <s> + 1)))

; Un-move cubies of retired faces so a later twist can rewrite them.
(p rub-reset
    (phase ^name solve ^next <s>)
    (cubie ^face <f> ^moved yes)
    -(twist ^face <f>)
    -->
    (modify 2 ^moved no))

; No twists left: solved.
(p rub-done
    (phase ^name solve)
    -(twist)
    -->
    (halt))
`

// CounterChain is a tiny arithmetic workload with a long dependency
// chain of modifies; useful for timing the sequential engine.
const CounterChain = `
(literalize counter value limit)

(p count-up
    (counter ^value <v> ^limit <l>)
    (counter ^value < <l>)
    -->
    (modify 1 ^value (compute <v> + 1)))

(p count-done
    (counter ^value <v> ^limit <v>)
    -->
    (halt))
`
