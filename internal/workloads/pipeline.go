package workloads

import (
	"fmt"

	"mpcrete/internal/engine"
	"mpcrete/internal/ops5"
	"mpcrete/internal/trace"
)

// RecordRun executes an OPS5 program under the sequential engine with
// a trace recorder attached and returns the recorded hash-table
// activity trace — the full pipeline the paper used: a real
// uniprocessor run instrumented to drive the MPC simulator.
//
// maxCycles bounds the number of MRA cycles fired.
func RecordRun(name, programSrc, wmeSrc string, maxCycles int) (*trace.Trace, *engine.Engine, error) {
	prog, err := ops5.ParseProgram(programSrc)
	if err != nil {
		return nil, nil, fmt.Errorf("workloads: parse %s: %w", name, err)
	}
	rec := trace.NewRecorder(name, 0)
	e, err := engine.New(prog, engine.Options{Listener: rec})
	if err != nil {
		return nil, nil, fmt.Errorf("workloads: compile %s: %w", name, err)
	}
	wmes, err := ops5.ParseWMEs(wmeSrc)
	if err != nil {
		return nil, nil, fmt.Errorf("workloads: wmes for %s: %w", name, err)
	}
	e.InsertWMEs(wmes...)
	if _, err := e.Run(maxCycles); err != nil && err != engine.ErrCycleLimit {
		return nil, nil, fmt.Errorf("workloads: run %s: %w", name, err)
	}
	return rec.Trace(), e, nil
}

// BlocksWorldWMEs builds an initial tower of n blocks (b1 on b2 on ...
// on table) with unstack goals for the top n-1 blocks.
func BlocksWorldWMEs(n int) string {
	out := "(hand ^holding nothing ^from nowhere)\n"
	for i := 1; i <= n; i++ {
		on := "table"
		if i < n {
			on = fmt.Sprintf("b%d", i+1)
		}
		clear := "no"
		if i == 1 {
			clear = "yes"
		}
		out += fmt.Sprintf("(block ^name b%d ^on %s ^clear %s)\n", i, on, clear)
	}
	for i := 1; i < n; i++ {
		task := "pending"
		done := "no"
		if i == 1 {
			task = "unstack"
		}
		out += fmt.Sprintf("(goal ^task %s ^object b%d ^done %s)\n", task, i, done)
	}
	return out
}

// RubikLikeWMEs builds f faces of c cubies each plus one queued twist
// per face and the solve phase marker. Each twist rewrites its face's
// c cubies (one rub-move firing per cubie) before rub-advance unlocks
// the next twist.
func RubikLikeWMEs(f, c int) string {
	out := "(phase ^name solve ^next 1)\n"
	for i := 1; i <= f; i++ {
		out += fmt.Sprintf("(twist ^face f%d ^seq %d)\n", i, i)
		for j := 1; j <= c; j++ {
			out += fmt.Sprintf("(cubie ^face f%d ^pos %d ^moved no)\n", i, j)
		}
	}
	return out
}

// TourneyLikeWMEs builds t teams and s round/field slots plus the
// propose phase marker; the cross-product pairing production generates
// t*s pairings.
func TourneyLikeWMEs(t, s int) string {
	out := "(phase ^name propose)\n"
	for i := 1; i <= t; i++ {
		out += fmt.Sprintf("(team ^name t%d)\n", i)
	}
	for i := 1; i <= s; i++ {
		out += fmt.Sprintf("(slot ^round %d ^field f%d)\n", i, i%2+1)
	}
	return out
}
