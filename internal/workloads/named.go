package workloads

import (
	"fmt"
	"sort"
)

// NamedProgram is one servable workload: an OPS5 program plus a default
// initial working-memory set and a cycle budget, addressable by name.
// cmd/ops5d's -workload flag, cmd/ops5load, and the server benchmarks
// all resolve programs through this registry so they agree on what
// "blocks" means.
type NamedProgram struct {
	Name      string
	Program   string // OPS5 source
	WMEs      string // default initial working-memory source
	MaxCycles int    // cycle budget for a default run
}

// named is the registry of servable workloads. WME sizes are chosen so
// a default run finishes in well under a second on the sequential
// engine — these parameterize load tests, not capacity tests.
var named = map[string]NamedProgram{
	"blocks": {
		Name:      "blocks",
		Program:   BlocksWorld,
		WMEs:      "", // filled in init: generated
		MaxCycles: 200,
	},
	"monkey": {
		Name:      "monkey",
		Program:   MonkeyBananas,
		WMEs:      MonkeyBananasWMEs,
		MaxCycles: 100,
	},
	"rubik-like": {
		Name:      "rubik-like",
		Program:   RubikLike,
		WMEs:      "",
		MaxCycles: 300,
	},
	"tourney-like": {
		Name:      "tourney-like",
		Program:   TourneyLike,
		WMEs:      "",
		MaxCycles: 300,
	},
	"queens": {
		Name:      "queens",
		Program:   Queens,
		WMEs:      "",
		MaxCycles: 2000,
	},
	"counter": {
		Name:      "counter",
		Program:   CounterChain,
		WMEs:      "(counter ^value 0 ^limit 50)",
		MaxCycles: 100,
	},
	"chain": {
		Name:      "chain",
		Program:   "", // filled in init: generated (CrossChain)
		WMEs:      "",
		MaxCycles: 100,
	},
}

func init() {
	for name, gen := range map[string]func() string{
		"blocks":       func() string { return BlocksWorldWMEs(8) },
		"rubik-like":   func() string { return RubikLikeWMEs(6, 8) },
		"tourney-like": func() string { return TourneyLikeWMEs(8, 6) },
		"queens":       func() string { return QueensWMEs(6) },
		"chain":        func() string { return CrossChainWMEs(4, 12) },
	} {
		p := named[name]
		p.WMEs = gen()
		named[name] = p
	}
	p := named["chain"]
	p.Program = CrossChain(4)
	named["chain"] = p
}

// Named resolves a servable workload by name.
func Named(name string) (NamedProgram, error) {
	p, ok := named[name]
	if !ok {
		return NamedProgram{}, fmt.Errorf("workloads: unknown workload %q (have %v)", name, NamedNames())
	}
	return p, nil
}

// NamedNames lists the registry's workload names, sorted.
func NamedNames() []string {
	names := make([]string, 0, len(named))
	for n := range named {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
