package workloads

import (
	"testing"

	"mpcrete/internal/ops5"
	"mpcrete/internal/rete"
)

// allPrograms enumerates every OPS5 program source the package ships,
// paired with a representative initial working memory.
func allPrograms() []struct{ name, prog, wmes string } {
	return []struct{ name, prog, wmes string }{
		{"blocks-world", BlocksWorld, BlocksWorldWMEs(4)},
		{"tourney-like", TourneyLike, TourneyLikeWMEs(4, 4)},
		{"monkey-bananas", MonkeyBananas, MonkeyBananasWMEs},
		{"counter-chain", CounterChain, "(counter ^name a ^value 0)"},
		{"queens", Queens, QueensWMEs(4)},
		{"configurator", Configurator, ConfiguratorWMEs(ConfiguratorOrder{ID: "o1", CPUs: 1, Disks: 2, PowerMax: 400})},
	}
}

// TestProgramsParseValidateCompile is the blanket property over every
// shipped program: it parses, every production validates, the Rete
// network compiles, and the workload's wme builder emits parseable
// working memory.
func TestProgramsParseValidateCompile(t *testing.T) {
	for _, w := range allPrograms() {
		t.Run(w.name, func(t *testing.T) {
			prog, err := ops5.ParseProgram(w.prog)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if len(prog.Productions) == 0 {
				t.Fatal("no productions")
			}
			for _, p := range prog.Productions {
				if err := p.Validate(); err != nil {
					t.Fatalf("validate %s: %v", p.Name, err)
				}
			}
			if _, err := rete.Compile(prog.Productions); err != nil {
				t.Fatalf("compile: %v", err)
			}
			if _, err := ops5.ParseWMEs(w.wmes); err != nil {
				t.Fatalf("wmes: %v", err)
			}
		})
	}
}

// TestProgramPrinterRoundTrip pins the printer/parser inverse property
// difftest's shrinker depends on: rendering a parsed program with
// Program.String and re-parsing it must reach a printer fixpoint — the
// second render is byte-identical to the first — and preserve the
// production list.
func TestProgramPrinterRoundTrip(t *testing.T) {
	for _, w := range allPrograms() {
		t.Run(w.name, func(t *testing.T) {
			prog, err := ops5.ParseProgram(w.prog)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			printed := prog.String()
			reparsed, err := ops5.ParseProgram(printed)
			if err != nil {
				t.Fatalf("printed program does not re-parse: %v\n%s", err, printed)
			}
			if got, want := len(reparsed.Productions), len(prog.Productions); got != want {
				t.Fatalf("round trip lost productions: %d, want %d", got, want)
			}
			for i := range prog.Productions {
				if reparsed.Productions[i].Name != prog.Productions[i].Name {
					t.Fatalf("production %d renamed: %s -> %s",
						i, prog.Productions[i].Name, reparsed.Productions[i].Name)
				}
			}
			if again := reparsed.String(); again != printed {
				t.Fatalf("printer not a fixpoint:\n--- first\n%s\n--- second\n%s", printed, again)
			}
		})
	}
}

// TestProgramRoundTripPreservesBehavior runs each workload through a
// bounded engine run twice — once from the original source, once from
// the printed round trip — and asserts identical recorded traces, the
// strongest printer-correctness property available without comparing
// ASTs field by field.
func TestProgramRoundTripPreservesBehavior(t *testing.T) {
	for _, w := range allPrograms() {
		t.Run(w.name, func(t *testing.T) {
			prog, err := ops5.ParseProgram(w.prog)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			tr1, _, err := RecordRun(w.name, w.prog, w.wmes, 25)
			if err != nil {
				t.Fatalf("original run: %v", err)
			}
			tr2, _, err := RecordRun(w.name, prog.String(), w.wmes, 25)
			if err != nil {
				t.Fatalf("round-trip run: %v", err)
			}
			s1, s2 := tr1.Stats(), tr2.Stats()
			if s1 != s2 {
				t.Fatalf("round trip changed behavior:\noriginal:   %+v\nround trip: %+v", s1, s2)
			}
		})
	}
}
