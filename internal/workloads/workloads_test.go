package workloads

import (
	"testing"

	"mpcrete/internal/trace"
)

func TestTable52Calibration(t *testing.T) {
	cases := []struct {
		tr          *trace.Trace
		left, right int
		cycles      int
	}{
		{Rubik(), 2388, 6114, 4},
		{Tourney(), 10667, 83, 5},
		{Weaver(), 338, 78, 4},
	}
	for _, c := range cases {
		if err := c.tr.Validate(); err != nil {
			t.Fatalf("%s: %v", c.tr.Name, err)
		}
		s := c.tr.Stats()
		if s.LeftActivations != c.left || s.RightActivations != c.right {
			t.Errorf("%s: %d L / %d R, want %d / %d (Table 5-2)",
				c.tr.Name, s.LeftActivations, s.RightActivations, c.left, c.right)
		}
		if s.Cycles != c.cycles {
			t.Errorf("%s: %d cycles, want %d", c.tr.Name, s.Cycles, c.cycles)
		}
	}
}

func TestSectionsDeterministic(t *testing.T) {
	a, b := Rubik(), Rubik()
	la, lb := a.BucketLoad(true), b.BucketLoad(true)
	for c := range la {
		if len(la[c]) != len(lb[c]) {
			t.Fatalf("cycle %d: nondeterministic generator", c)
		}
		for k, v := range la[c] {
			if lb[c][k] != v {
				t.Fatalf("cycle %d bucket %d: %d vs %d", c, k, v, lb[c][k])
			}
		}
	}
}

func TestTourneyCrossProductConcentration(t *testing.T) {
	tr := Tourney()
	loads := tr.BucketLoad(true)
	cross := loads[2]
	// The hot bucket dominates every other bucket by far.
	hotLoad := cross[TourneyHotBucket]
	if hotLoad < 1500 {
		t.Errorf("hot bucket load = %d, want >= 1500", hotLoad)
	}
	second := 0
	for b, l := range cross {
		if b != TourneyHotBucket && l > second {
			second = l
		}
	}
	if second*20 > hotLoad {
		t.Errorf("second-busiest bucket %d too close to hot %d", second, hotLoad)
	}
	// Surrounding cycles must be small.
	for _, c := range []int{0, 1, 3, 4} {
		if n := tr.Cycles[c].Activations(); n > 200 {
			t.Errorf("cycle %d has %d activations, want small", c, n)
		}
	}
}

func TestTourneyMultipleModifyPairs(t *testing.T) {
	// The hot node receives alternating add/delete waves (the
	// multiple-modify effect).
	cy := Tourney().Cycles[2]
	adds, dels := 0, 0
	cy.Walk(func(a *trace.Activation) {
		if a.Node != TourneyHotNode || a.Side != trace.LeftSide {
			return
		}
		if a.Tag == trace.AddTag {
			adds++
		} else {
			dels++
		}
	})
	if adds == 0 || dels == 0 || adds != dels {
		t.Errorf("hot add/delete = %d/%d, want equal halves", adds, dels)
	}
}

func TestScatterNodeSpreadsHotBucket(t *testing.T) {
	tr := Tourney()
	cc := trace.ScatterNode(tr, TourneyHotNode, 8)
	if err := cc.Validate(); err != nil {
		t.Fatal(err)
	}
	// Same activation totals (copy-and-constraint only re-buckets).
	if a, b := tr.Stats(), cc.Stats(); a.Total != b.Total || a.Instantiations != b.Instantiations {
		t.Errorf("stats changed: %+v vs %+v", a, b)
	}
	load := cc.BucketLoad(true)[2]
	hot := load[TourneyHotBucket]
	orig := tr.BucketLoad(true)[2][TourneyHotBucket]
	if hot*4 > orig {
		t.Errorf("hot bucket still holds %d of original %d", hot, orig)
	}
	// The spread covers ~8 buckets with similar loads.
	big := 0
	for _, l := range load {
		if l >= orig/16 {
			big++
		}
	}
	if big < 8 {
		t.Errorf("only %d buckets carry the scattered load", big)
	}
}

func TestRubikBusyIdleAlternation(t *testing.T) {
	tr := Rubik()
	loads := tr.BucketLoad(true)
	// Active left buckets in consecutive cycles are disjoint clusters;
	// in the same-parity cycles they coincide.
	overlap := func(a, b map[int]int) int {
		n := 0
		for k := range a {
			if b[k] > 0 {
				n++
			}
		}
		return n
	}
	if o := overlap(loads[0], loads[1]); o != 0 {
		t.Errorf("cycles 0/1 share %d active left buckets, want 0 (alternation)", o)
	}
	if o := overlap(loads[0], loads[2]); o == 0 {
		t.Error("cycles 0/2 should share their active cluster")
	}
	// Within a cycle the distribution is skewed: the busiest bucket
	// far exceeds the mean.
	max, sum := 0, 0
	for _, l := range loads[0] {
		if l > max {
			max = l
		}
		sum += l
	}
	mean := float64(sum) / float64(len(loads[0]))
	if float64(max) < 2*mean {
		t.Errorf("cycle 0 max load %d vs mean %.1f: want skew", max, mean)
	}
}

func TestWeaverHotCycle(t *testing.T) {
	tr := Weaver()
	hot := tr.Cycles[1]
	bigFanouts := 0
	generated := 0
	hot.Walk(func(a *trace.Activation) {
		if len(a.Children) >= 40 {
			bigFanouts++
			generated += len(a.Children)
		}
	})
	if bigFanouts != 3 || generated != 120 {
		t.Errorf("hot cycle: %d big-fanout activations generating %d, want 3/120", bigFanouts, generated)
	}
	total := hot.Activations()
	if total < 140 || total > 160 {
		t.Errorf("hot cycle total = %d, want ~150", total)
	}
	for _, c := range tr.Cycles {
		if n := c.Activations(); n > 160 {
			t.Errorf("weaver cycle has %d activations; all cycles must be small", n)
		}
	}
}

func TestSplitFanoutReducesBottleneck(t *testing.T) {
	tr := Weaver()
	split := trace.SplitFanout(tr, 10, 4)
	if err := split.Validate(); err != nil {
		t.Fatal(err)
	}
	// Max fan-out shrinks to ~40/4.
	maxBefore, maxAfter := tr.Stats().MaxSuccessors, split.Stats().MaxSuccessors
	if maxAfter >= maxBefore {
		t.Errorf("split did not reduce max fan-out: %d -> %d", maxBefore, maxAfter)
	}
	// Leaf work is preserved; only the split activations duplicate.
	sb, sa := tr.Stats(), split.Stats()
	if sa.Instantiations != sb.Instantiations {
		t.Errorf("instantiations changed: %d -> %d", sb.Instantiations, sa.Instantiations)
	}
	if sa.Total <= sb.Total || sa.Total > sb.Total+30 {
		t.Errorf("activations %d -> %d: want a few duplicated copies only", sb.Total, sa.Total)
	}
}

func TestSplitFanoutNoopBelowThreshold(t *testing.T) {
	tr := Rubik() // max fan-out is 1
	split := trace.SplitFanout(tr, 10, 4)
	if a, b := tr.Stats(), split.Stats(); a != b {
		t.Errorf("stats changed on no-op split: %+v vs %+v", a, b)
	}
}

func TestBlocksWorldPipeline(t *testing.T) {
	tr, e, err := RecordRun("blocks", BlocksWorld, BlocksWorldWMEs(4), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Halted() {
		t.Error("blocks world should halt")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Cycles < 5 || s.Total == 0 {
		t.Errorf("trace too small: %+v", s)
	}
	if s.Instantiations == 0 {
		t.Error("no instantiations recorded")
	}
}

func TestTourneyLikePipelineIsCrossProduct(t *testing.T) {
	const teams, slots = 6, 5
	tr, e, err := RecordRun("tourney-like", TourneyLike, TourneyLikeWMEs(teams, slots), 100)
	if err != nil {
		t.Fatal(err)
	}
	// Every (team, slot) pairing is proposed once.
	pairings := 0
	// Count pairings via fired count: propose fired teams*slots times,
	// plus nothing else fires (done-proposing never matches while
	// teams exist).
	if e.Fired() != teams*slots {
		t.Errorf("fired = %d, want %d pairings", e.Fired(), teams*slots)
	}
	_ = pairings
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCounterChainPipeline(t *testing.T) {
	tr, e, err := RecordRun("counter", CounterChain, "(counter ^value 0 ^limit 8)", 50)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Halted() {
		t.Error("counter should halt at limit")
	}
	if got := len(tr.Cycles); got < 8 {
		t.Errorf("cycles = %d, want >= 8", got)
	}
}

func TestMonkeyBananasPlan(t *testing.T) {
	tr, e, err := RecordRun("mab", MonkeyBananas, MonkeyBananasWMEs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Halted() {
		t.Fatal("monkey should reach the bananas and halt")
	}
	if e.Fired() != 5 {
		t.Errorf("fired = %d, want 5 (walk, push, climb, grab, done)", e.Fired())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if s := tr.Stats(); s.Instantiations == 0 || s.Total == 0 {
		t.Errorf("trace stats = %+v", s)
	}
}
