package workloads

import "fmt"

// Configurator is an R1/XCON-flavored configuration system — the kind
// of expert system the paper's introduction motivates. It expands
// customer orders into components, attaches disks to controllers
// (creating controllers on demand, three channels each), assigns
// slots, accumulates the power budget, and verifies it, phase by
// phase. It exercises long modify chains, negation-driven phase
// transitions, on-demand object creation, intra-CE variable
// predicates, and arithmetic.
const Configurator = `
(literalize order id cpus disks)
(literalize phase of name)
(literalize component of type seq slot power ctrl)
(literalize controller of seq used)
(literalize budget of used max)
(literalize next-seq of n)
(literalize report of kind text)

; --- expand: unroll the order into component wmes ---

(p expand-cpu
    (phase ^of <o> ^name expand)
    (order ^id <o> ^cpus { <n> > 0 })
    (next-seq ^of <o> ^n <s>)
    -->
    (make component ^of <o> ^type cpu ^seq <s> ^slot none ^power 25)
    (modify 2 ^cpus (compute <n> - 1))
    (modify 3 ^n (compute <s> + 1)))

(p expand-disk
    (phase ^of <o> ^name expand)
    (order ^id <o> ^disks { <n> > 0 })
    (next-seq ^of <o> ^n <s>)
    -->
    (make component ^of <o> ^type disk ^seq <s> ^slot none ^power 10 ^ctrl none)
    (modify 2 ^disks (compute <n> - 1))
    (modify 3 ^n (compute <s> + 1)))

(p expand-done
    (phase ^of <o> ^name expand)
    (order ^id <o> ^cpus 0 ^disks 0)
    -->
    (modify 1 ^name controllers))

; --- controllers: every disk needs a controller channel (3 per
; controller); controllers are created on demand and are themselves
; components that occupy a slot and draw power ---

(p attach-disk
    (phase ^of <o> ^name controllers)
    (component ^of <o> ^type disk ^ctrl none)
    (controller ^of <o> ^seq <c> ^used { <u> < 3 })
    -->
    (modify 2 ^ctrl <c>)
    (modify 3 ^used (compute <u> + 1)))

(p need-controller
    (phase ^of <o> ^name controllers)
    (component ^of <o> ^type disk ^ctrl none)
    -(controller ^of <o> ^used < 3)
    (next-seq ^of <o> ^n <s>)
    -->
    (make controller ^of <o> ^seq <s> ^used 0)
    (make component ^of <o> ^type controller ^seq <s> ^slot none ^power 5 ^ctrl self)
    (modify 4 ^n (compute <s> + 1)))

(p controllers-done
    (phase ^of <o> ^name controllers)
    -(component ^of <o> ^type disk ^ctrl none)
    -->
    (modify 1 ^name place))

; --- place: every component takes the slot numbered by its sequence
; and adds its draw to the power budget ---

(p place-component
    (phase ^of <o> ^name place)
    (component ^of <o> ^slot none ^power <p> ^seq <s>)
    (budget ^of <o> ^used <u>)
    -->
    (modify 2 ^slot <s>)
    (modify 3 ^used (compute <u> + <p>)))

(p place-done
    (phase ^of <o> ^name place)
    -(component ^of <o> ^slot none)
    -->
    (modify 1 ^name verify))

; --- verify the power budget ---

(p power-exceeded
    (phase ^of <o> ^name verify)
    (budget ^of <o> ^max <m> ^used { <u> > <m> })
    -->
    (make report ^of <o> ^kind error ^text power-exceeded)
    (write order <o> power <u> exceeds budget <m>)
    (modify 1 ^name done))

(p power-ok
    (phase ^of <o> ^name verify)
    (budget ^of <o> ^max <m> ^used { <u> <= <m> })
    -->
    (make report ^of <o> ^kind ok ^text configured)
    (write order <o> configured at power <u> of <m>)
    (modify 1 ^name done))

; --- halt when every order's phase has reached done ---

(p all-done
    (phase ^of <x> ^name done)
    -(phase ^name << expand controllers place verify >>)
    -->
    (halt))
`

// ConfiguratorOrder describes one order for ConfiguratorWMEs.
type ConfiguratorOrder struct {
	ID       string
	CPUs     int
	Disks    int
	PowerMax int
}

// ConfiguratorWMEs builds the initial working memory for a set of
// orders.
func ConfiguratorWMEs(orders ...ConfiguratorOrder) string {
	out := ""
	for _, o := range orders {
		out += fmt.Sprintf("(order ^id %s ^cpus %d ^disks %d)\n", o.ID, o.CPUs, o.Disks)
		out += fmt.Sprintf("(phase ^of %s ^name expand)\n", o.ID)
		out += fmt.Sprintf("(budget ^of %s ^used 0 ^max %d)\n", o.ID, o.PowerMax)
		out += fmt.Sprintf("(next-seq ^of %s ^n 1)\n", o.ID)
	}
	return out
}

// ConfiguratorComponents predicts the component count for an order:
// CPUs + disks + ceil(disks/3) controllers.
func ConfiguratorComponents(o ConfiguratorOrder) int {
	return o.CPUs + o.Disks + (o.Disks+2)/3
}

// ConfiguratorPower predicts the total power draw for an order.
func ConfiguratorPower(o ConfiguratorOrder) int {
	return 25*o.CPUs + 10*o.Disks + 5*((o.Disks+2)/3)
}
