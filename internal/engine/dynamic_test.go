package engine

import (
	"bytes"
	"strings"
	"testing"

	"mpcrete/internal/ops5"
)

func TestExciseStopsFiring(t *testing.T) {
	prog := mustProgram(t, `
(p chatty (item ^v <x>) --> (write saw <x>))
`)
	var out bytes.Buffer
	e, err := New(prog, Options{Output: &out})
	if err != nil {
		t.Fatal(err)
	}
	e.MakeWME("item", "v", 1)
	if _, err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "saw"); got != 1 {
		t.Fatalf("fired %d times", got)
	}
	if err := e.ExciseProduction("chatty"); err != nil {
		t.Fatal(err)
	}
	// New matching wmes no longer fire anything.
	e.MakeWME("item", "v", 2)
	fired, err := e.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Errorf("excised production fired %d times", fired)
	}
	if err := e.ExciseProduction("chatty"); err == nil {
		t.Error("double excise should fail")
	}
}

func TestExciseRemovesConflictSetEntries(t *testing.T) {
	prog := mustProgram(t, `
(p a1 (sig ^v <x>) --> (write a1))
(p a2 (sig ^v <x>) --> (write a2))
`)
	e, err := New(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.MakeWME("sig", "v", 1)
	e.match()
	if len(e.ConflictSet()) != 2 {
		t.Fatalf("cs = %d", len(e.ConflictSet()))
	}
	if err := e.ExciseProduction("a1"); err != nil {
		t.Fatal(err)
	}
	cs := e.ConflictSet()
	if len(cs) != 1 || cs[0].Prod.Name != "a2" {
		t.Errorf("cs after excise = %v", cs)
	}
}

func TestExciseRHSAction(t *testing.T) {
	// A production that excises its sibling; the sibling would
	// otherwise also fire on the same wme.
	prog := mustProgram(t, `
(p a-killer (sig) --> (excise z-victim) (make done))
(p z-victim (sig) --> (make never))
`)
	e, err := New(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.MakeWME("sig")
	fired, err := e.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (victim excised before it fires)", fired)
	}
	if e.WMCount() != 2 {
		t.Errorf("wm = %d, want sig + done", e.WMCount())
	}
}

func TestAddProductionLiveMatchesExistingWM(t *testing.T) {
	prog := mustProgram(t, `
(p seed (never) --> (halt))
`)
	var out bytes.Buffer
	e, err := New(prog, Options{Output: &out})
	if err != nil {
		t.Fatal(err)
	}
	// Build up working memory first.
	e.MakeWME("pair", "a", 1)
	e.MakeWME("pair", "a", 2)
	if _, err := e.Run(5); err != nil {
		t.Fatal(err)
	}

	p, err := ops5.ParseProduction(`(p report (pair ^a <x>) --> (write got <x>))`)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddProductionLive(p); err != nil {
		t.Fatal(err)
	}
	// The new production must see the pre-existing wmes immediately.
	fired, err := e.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Errorf("fired = %d, want 2 instantiations over existing wmes", fired)
	}
	if !strings.Contains(out.String(), "got 1") || !strings.Contains(out.String(), "got 2") {
		t.Errorf("output = %q", out.String())
	}
}

func TestAddProductionLiveSharedPrefixUnaffected(t *testing.T) {
	// An existing production shares the (a,b) join shape; live
	// addition must not double-populate the shared memories.
	prog := mustProgram(t, `
(p orig (a ^x <v>) (b ^x <v>) --> (write orig <v>) (remove 1))
`)
	var out bytes.Buffer
	e, err := New(prog, Options{Output: &out})
	if err != nil {
		t.Fatal(err)
	}
	e.MakeWME("a", "x", 1)
	e.MakeWME("b", "x", 1)
	e.match()
	if len(e.ConflictSet()) != 1 {
		t.Fatalf("cs = %d", len(e.ConflictSet()))
	}

	p, err := ops5.ParseProduction(`(p twin (a ^x <v>) (b ^x <v>) --> (write twin <v>))`)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddProductionLive(p); err != nil {
		t.Fatal(err)
	}
	// Both productions have exactly one instantiation.
	cs := e.ConflictSet()
	if len(cs) != 2 {
		t.Fatalf("cs after live add = %d, want 2", len(cs))
	}
	// And future matching still works exactly once per production.
	e.MakeWME("a", "x", 2)
	e.MakeWME("b", "x", 2)
	e.match()
	if got := len(e.ConflictSet()); got != 4 {
		t.Errorf("cs = %d, want 4", got)
	}
}

func TestAddProductionLiveDuplicateName(t *testing.T) {
	prog := mustProgram(t, `(p one (a) --> (halt))`)
	e, err := New(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ops5.ParseProduction(`(p one (b) --> (halt))`)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddProductionLive(p); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestAddThenExciseRoundTrip(t *testing.T) {
	prog := mustProgram(t, `(p keeper (k) --> (write keeper) (remove 1))`)
	var out bytes.Buffer
	e, err := New(prog, Options{Output: &out})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		p, err := ops5.ParseProduction(`(p temp (t ^v <x>) --> (write temp <x>) (remove 1))`)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.AddProductionLive(p); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		e.MakeWME("t", "v", round)
		if _, err := e.Run(5); err != nil {
			t.Fatal(err)
		}
		if err := e.ExciseProduction("temp"); err != nil {
			t.Fatal(err)
		}
	}
	if got := strings.Count(out.String(), "temp"); got != 3 {
		t.Errorf("temp fired %d times, want 3\n%s", got, out.String())
	}
}
