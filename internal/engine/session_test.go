package engine

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"mpcrete/internal/ops5"
)

// sessionTestProg is a small self-contained program exercising joins,
// negation, modify, and halt, used by the Compiled/Session tests.
const sessionTestProg = `
(literalize item name state)
(literalize log entry)
(literalize phase name)

(p promote
    (phase ^name run)
    (item ^name <n> ^state raw)
    -->
    (modify 2 ^state cooked)
    (make log ^entry <n>))

(p finish
    (phase ^name run)
    -(item ^state raw)
    -->
    (halt))
`

func sessionTestWMEs(n int) string {
	var b strings.Builder
	b.WriteString("(phase ^name run)\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "(item ^name i%d ^state raw)\n", i)
	}
	return b.String()
}

// fingerprint renders everything observable about a finished run.
func fingerprint(t *testing.T, s API, output *bytes.Buffer) string {
	t.Helper()
	snap := s.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "fired=%d halted=%v next=%d\n", snap.Fired, snap.Halted, snap.NextTimeTag)
	for _, w := range snap.WMEs {
		fmt.Fprintf(&b, "wm %d:%d %s\n", w.ID, w.TimeTag, w)
	}
	for _, in := range snap.ConflictSet {
		fmt.Fprintf(&b, "cs %s\n", in.Key)
	}
	if output != nil {
		fmt.Fprintf(&b, "out %q\n", output.String())
	}
	return b.String()
}

// runSession asserts the wme source into s and runs it to quiescence.
func runSession(t *testing.T, s API, wmeSrc string, maxCycles int) {
	t.Helper()
	wmes, err := ops5.ParseWMEs(wmeSrc)
	if err != nil {
		t.Fatalf("parse wmes: %v", err)
	}
	s.Assert(wmes...)
	if _, err := s.RunCycles(maxCycles); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// referenceRun runs the program on an independently-compiled
// single-tenant engine — the oracle the shared-Compiled sessions must
// match byte for byte.
func referenceRun(t *testing.T, progSrc, wmeSrc string, maxCycles int) string {
	t.Helper()
	prog, err := ops5.ParseProgram(progSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var out bytes.Buffer
	e, err := New(prog, Options{Output: &out})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	runSession(t, e, wmeSrc, maxCycles)
	return fingerprint(t, e, &out)
}

func TestSharedCompiledSessionParity(t *testing.T) {
	want := referenceRun(t, sessionTestProg, sessionTestWMEs(5), 100)

	prog, err := ops5.ParseProgram(sessionTestProg)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := Compile(prog, CompileOptions{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var out bytes.Buffer
	s := c.NewSession(SessionOptions{Output: &out})
	defer s.Close()
	runSession(t, s, sessionTestWMEs(5), 100)
	if got := fingerprint(t, s, &out); got != want {
		t.Errorf("shared-Compiled session diverges from private engine:\nref:\n%s\ngot:\n%s", want, got)
	}
}

// TestConcurrentSessionsSharedCompiled runs many sessions concurrently
// over ONE compiled network and requires every one of them to produce
// exactly the state an independently-compiled engine produces — the
// multi-tenant server's core correctness claim, checked under -race.
func TestConcurrentSessionsSharedCompiled(t *testing.T) {
	const maxCycles = 200
	sessions := 64
	if testing.Short() {
		sessions = 16
	}
	// Vary the workload size per session so sessions are not in
	// lockstep: session i runs with 1 + i%7 items.
	refs := make([]string, 8)
	for n := 1; n <= 7; n++ {
		refs[n] = referenceRun(t, sessionTestProg, sessionTestWMEs(n), maxCycles)
	}

	prog, err := ops5.ParseProgram(sessionTestProg)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := Compile(prog, CompileOptions{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 1 + i%7
			var out bytes.Buffer
			s := c.NewSession(SessionOptions{Output: &out})
			defer s.Close()
			wmes, err := ops5.ParseWMEs(sessionTestWMEs(n))
			if err != nil {
				errs <- err
				return
			}
			s.Assert(wmes...)
			if _, err := s.RunCycles(maxCycles); err != nil {
				errs <- err
				return
			}
			if got := fingerprint(t, s, &out); got != refs[n] {
				errs <- fmt.Errorf("session %d (n=%d) diverged:\nref:\n%s\ngot:\n%s", i, n, refs[n], got)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSessionPoolReuse proves Close -> Open through the pool yields a
// clean working memory: a recycled session reruns the workload with
// byte-identical results, including ID and time-tag assignment.
func TestSessionPoolReuse(t *testing.T) {
	prog, err := ops5.ParseProgram(sessionTestProg)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := Compile(prog, CompileOptions{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	pool := NewSessionPool(c, SessionOptions{})

	s1 := pool.Get()
	runSession(t, s1, sessionTestWMEs(4), 100)
	first := fingerprint(t, s1, nil)
	if s1.Fired() == 0 {
		t.Fatalf("workload fired nothing; test is vacuous")
	}
	pool.Put(s1)
	if pool.Len() != 1 {
		t.Fatalf("pool len = %d after Put, want 1", pool.Len())
	}

	s2 := pool.Get()
	if s2 != s1 {
		t.Fatalf("pool did not reuse the session")
	}
	if pool.Len() != 0 {
		t.Fatalf("pool len = %d after Get, want 0", pool.Len())
	}
	// Clean slate: nothing left over from the first run.
	if s2.WMCount() != 0 || s2.Fired() != 0 || s2.Halted() || len(s2.ConflictSet()) != 0 {
		t.Fatalf("recycled session is dirty: wm=%d fired=%d halted=%v cs=%d",
			s2.WMCount(), s2.Fired(), s2.Halted(), len(s2.ConflictSet()))
	}
	if snap := s2.Snapshot(); snap.NextTimeTag != 1 {
		t.Fatalf("recycled session next time tag = %d, want 1", snap.NextTimeTag)
	}
	// Rerun: byte-identical to the first run.
	runSession(t, s2, sessionTestWMEs(4), 100)
	if got := fingerprint(t, s2, nil); got != first {
		t.Errorf("recycled session run diverges:\nfirst:\n%s\nsecond:\n%s", first, got)
	}
}

// TestSnapshotDefensiveCopies verifies a snapshot shares nothing
// mutable with the session: later session activity does not change an
// earlier snapshot, and mutating snapshot wmes does not corrupt the
// session.
func TestSnapshotDefensiveCopies(t *testing.T) {
	prog, err := ops5.ParseProgram(sessionTestProg)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := Compile(prog, CompileOptions{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s := c.NewSession(SessionOptions{})
	defer s.Close()
	wmes, _ := ops5.ParseWMEs(sessionTestWMEs(3))
	s.Assert(wmes...)
	if _, err := s.Step(); err != nil {
		t.Fatalf("step: %v", err)
	}

	snap := s.Snapshot()
	before := fmt.Sprint(snap.WMEs)

	// Mutate the snapshot's copies: the session must not notice.
	for _, w := range snap.WMEs {
		w.Attrs["state"] = ops5.S("vandalized")
	}
	for _, w := range s.WMEs() {
		if w.Get("state").Equal(ops5.S("vandalized")) {
			t.Fatalf("mutating snapshot wmes reached the session working memory")
		}
	}

	// Drive the session on: the earlier snapshot must not change.
	if _, err := s.RunCycles(100); err != nil {
		t.Fatalf("run: %v", err)
	}
	snap2 := s.Snapshot()
	if snap2.Fired == snap.Fired {
		t.Fatalf("session did not advance; test is vacuous")
	}
	// Un-vandalize for the comparison.
	for _, w := range snap.WMEs {
		w.Attrs["state"] = ops5.S("raw")
	}
	_ = before // the snapshot's identity check is structural, above
}

func TestRetract(t *testing.T) {
	prog, err := ops5.ParseProgram(sessionTestProg)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := Compile(prog, CompileOptions{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s := c.NewSession(SessionOptions{})
	defer s.Close()

	wmes, _ := ops5.ParseWMEs("(phase ^name run)\n(item ^name a ^state raw)")
	ids := s.Assert(wmes...)
	if len(ids) != 2 || ids[0].ID == 0 || ids[1].ID == 0 {
		t.Fatalf("Assert returned %v, want 2 wmes with assigned IDs", ids)
	}
	// Retract the item while still pending: legal.
	if !s.Retract(ids[1].ID) {
		t.Fatalf("Retract of pending wme returned false")
	}
	if s.Retract(999) {
		t.Fatalf("Retract of unknown id returned true")
	}
	if _, err := s.RunCycles(10); err != nil {
		t.Fatalf("run: %v", err)
	}
	// With the item retracted before matching, finish fires
	// immediately and the item never cooks.
	if !s.Halted() {
		t.Errorf("expected halt after retracting the only raw item")
	}
	for _, w := range s.WMEs() {
		if w.Class == "item" {
			t.Errorf("retracted item still in working memory: %s", w)
		}
	}
}

func TestSharedSessionRefusesDynamicManagement(t *testing.T) {
	prog, err := ops5.ParseProgram(sessionTestProg)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := Compile(prog, CompileOptions{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s := c.NewSession(SessionOptions{})
	defer s.Close()
	if err := s.ExciseProduction("promote"); err == nil {
		t.Errorf("shared session allowed excise")
	}
	add, err := ops5.ParseProgram("(literalize thing x)\n(p extra (thing ^x 1) --> (halt))")
	if err != nil {
		t.Fatalf("parse extra: %v", err)
	}
	if err := s.AddProductionLive(add.Productions[0]); err == nil {
		t.Errorf("shared session allowed live production addition")
	}

	// The private single-tenant engine still allows both.
	e, err := New(prog, Options{})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := e.ExciseProduction("promote"); err != nil {
		t.Errorf("private engine excise: %v", err)
	}
	if err := e.AddProductionLive(add.Productions[0]); err != nil {
		t.Errorf("private engine live addition: %v", err)
	}
}

func TestSessionCloseIdempotent(t *testing.T) {
	prog, err := ops5.ParseProgram(sessionTestProg)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := Compile(prog, CompileOptions{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s := c.NewSession(SessionOptions{})
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if s.Reset() {
		t.Errorf("Reset on a closed session reported success")
	}
}
