package engine

import (
	"fmt"
	"sort"

	"mpcrete/internal/ops5"
	"mpcrete/internal/rete"
)

// This file implements dynamic production management: the OPS5 excise
// action and live production addition. Both operate on a running
// engine with populated token memories, which is why addition compiles
// the new production with private two-input nodes and primes them by
// replaying working memory through them alone (shared nodes' memories
// must not be touched — they are already correct).

// ExciseProduction removes a production from the running system: its
// network nodes are detached (shared prefixes survive) and its
// instantiations leave the conflict set.
func (e *Engine) ExciseProduction(name string) error {
	if err := e.net.Excise(name); err != nil {
		return err
	}
	delete(e.spec, name)
	for key, in := range e.conflict {
		if in.Prod.Name == name {
			delete(e.conflict, key)
		}
	}
	for i, p := range e.prog.Productions {
		if p.Name == name {
			e.prog.Productions = append(e.prog.Productions[:i], e.prog.Productions[i+1:]...)
			break
		}
	}
	return nil
}

// AddProductionLive adds a production to the running system. Existing
// working memory is matched immediately: instantiations over current
// wmes enter the conflict set before the next cycle. Requires the
// sequential matcher (the distributed runtime does not support live
// network changes).
func (e *Engine) AddProductionLive(p *ops5.Production) error {
	m, ok := e.matcher.(*rete.Matcher)
	if !ok {
		return fmt.Errorf("engine: live production addition requires the sequential matcher, have %T", e.matcher)
	}
	nodes, err := e.net.AddProductionPrivate(p)
	if err != nil {
		return err
	}
	e.spec[p.Name] = specificity(p)
	e.prog.Productions = append(e.prog.Productions, p)

	allowed := make(map[*rete.Node]bool, len(nodes))
	for _, n := range nodes {
		allowed[n] = true
	}
	// Replay live working memory, deterministically ordered, through
	// the new nodes only.
	ids := make([]int, 0, len(e.wm))
	for id := range e.wm {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	changes := make([]rete.Change, 0, len(ids))
	for _, id := range ids {
		changes = append(changes, rete.Change{Tag: rete.Add, WME: e.wm[id]})
	}
	for _, ic := range m.ApplyFiltered(changes, func(n *rete.Node) bool { return allowed[n] }) {
		key := ic.Key()
		if ic.Tag == rete.Add {
			e.conflict[key] = &Instantiation{
				Prod:     ic.Prod,
				WMEs:     ic.WMEs,
				TimeTags: ic.TimeTags,
				key:      key,
				spec:     e.spec[ic.Prod.Name],
			}
		} else {
			delete(e.conflict, key)
		}
	}
	return nil
}
