package engine

import (
	"fmt"
	"sort"

	"mpcrete/internal/ops5"
	"mpcrete/internal/rete"
)

// This file implements dynamic production management: the OPS5 excise
// action and live production addition. Both operate on a running
// engine with populated token memories, which is why addition compiles
// the new production with private two-input nodes and primes them by
// replaying working memory through them alone (shared nodes' memories
// must not be touched — they are already correct).
//
// Both rewrite the compiled network, so they are only legal on the
// private single-session engines made by New/NewWithNetwork. Sessions
// opened with Compiled.NewSession share their network (and specificity
// table) with sibling sessions and refuse with errSharedNetwork.

// errSharedNetwork explains why a multi-tenant session cannot rewrite
// its network.
func errSharedNetwork(op string) error {
	return fmt.Errorf("engine: %s requires a private network (engine.New); this session shares its Compiled network with other sessions", op)
}

// ExciseProduction removes a production from the running system: its
// network nodes are detached (shared prefixes survive) and its
// instantiations leave the conflict set.
func (e *Session) ExciseProduction(name string) error {
	if e.shared {
		return errSharedNetwork("excise")
	}
	if err := e.c.net.Excise(name); err != nil {
		return err
	}
	delete(e.c.spec, name)
	for key, in := range e.conflict {
		if in.Prod.Name == name {
			delete(e.conflict, key)
		}
	}
	prog := e.c.prog
	for i, p := range prog.Productions {
		if p.Name == name {
			prog.Productions = append(prog.Productions[:i], prog.Productions[i+1:]...)
			break
		}
	}
	return nil
}

// AddProductionLive adds a production to the running system. Existing
// working memory is matched immediately: instantiations over current
// wmes enter the conflict set before the next cycle. Requires the
// sequential matcher (the distributed runtime does not support live
// network changes) and a private network.
func (e *Session) AddProductionLive(p *ops5.Production) error {
	if e.shared {
		return errSharedNetwork("live production addition")
	}
	m, ok := e.matcher.(*rete.Matcher)
	if !ok {
		return fmt.Errorf("engine: live production addition requires the sequential matcher, have %T", e.matcher)
	}
	nodes, err := e.c.net.AddProductionPrivate(p)
	if err != nil {
		return err
	}
	e.c.spec[p.Name] = specificity(p)
	e.c.prog.Productions = append(e.c.prog.Productions, p)

	allowed := make(map[*rete.Node]bool, len(nodes))
	for _, n := range nodes {
		allowed[n] = true
	}
	// Replay live working memory, deterministically ordered, through
	// the new nodes only.
	ids := make([]int, 0, len(e.wm))
	for id := range e.wm {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	changes := make([]rete.Change, 0, len(ids))
	for _, id := range ids {
		changes = append(changes, rete.Change{Tag: rete.Add, WME: e.wm[id]})
	}
	for _, ic := range m.ApplyFiltered(changes, func(n *rete.Node) bool { return allowed[n] }) {
		key := ic.Key()
		if ic.Tag == rete.Add {
			e.conflict[key] = &Instantiation{
				Prod:     ic.Prod,
				WMEs:     ic.WMEs,
				TimeTags: ic.TimeTags,
				key:      key,
				spec:     e.c.spec[ic.Prod.Name],
			}
		} else {
			delete(e.conflict, key)
		}
	}
	return nil
}
