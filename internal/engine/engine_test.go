package engine

import (
	"bytes"
	"strings"
	"testing"

	"mpcrete/internal/ops5"
	"mpcrete/internal/rete"
)

func mustProgram(t *testing.T, src string) *ops5.Program {
	t.Helper()
	prog, err := ops5.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestEngineCountUp(t *testing.T) {
	prog := mustProgram(t, `
(p count-up
    (counter ^value <v> ^limit <l>)
    (counter ^value < <l>)
    -->
    (modify 1 ^value (compute <v> + 1)))
`)
	var out bytes.Buffer
	e, err := New(prog, Options{Output: &out})
	if err != nil {
		t.Fatal(err)
	}
	e.MakeWME("counter", "value", 0, "limit", 5)
	fired, err := e.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 5 {
		t.Errorf("fired = %d, want 5", fired)
	}
	if e.WMCount() != 1 {
		t.Errorf("wm count = %d, want 1", e.WMCount())
	}
}

func TestEngineHalt(t *testing.T) {
	prog := mustProgram(t, `
(p a-once (go) --> (write done) (halt))
(p z-never (go) --> (make extra))
`)
	var out bytes.Buffer
	e, err := New(prog, Options{Output: &out})
	if err != nil {
		t.Fatal(err)
	}
	e.MakeWME("go")
	fired, err := e.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (halt stops)", fired)
	}
	if !e.Halted() {
		t.Error("engine should be halted")
	}
	if got := strings.TrimSpace(out.String()); got != "done" {
		t.Errorf("output = %q", got)
	}
	// Further steps are no-ops.
	in, err := e.Step()
	if err != nil || in != nil {
		t.Errorf("Step after halt = %v, %v", in, err)
	}
}

func TestEngineRefraction(t *testing.T) {
	// Without refraction this production would fire forever: its RHS
	// does not change working memory.
	prog := mustProgram(t, `
(p noop (thing ^v <x>) --> (write saw <x>))
`)
	var out bytes.Buffer
	e, err := New(prog, Options{Output: &out})
	if err != nil {
		t.Fatal(err)
	}
	e.MakeWME("thing", "v", 1)
	e.MakeWME("thing", "v", 2)
	fired, err := e.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Errorf("fired = %d, want 2 (one per instantiation)", fired)
	}
}

func TestEngineLEXRecency(t *testing.T) {
	prog := mustProgram(t, `
(p pick (item ^name <n>) --> (write <n>) (remove 1))
`)
	var out bytes.Buffer
	e, err := New(prog, Options{Output: &out, Strategy: LEX})
	if err != nil {
		t.Fatal(err)
	}
	e.MakeWME("item", "name", "first")
	e.MakeWME("item", "name", "second")
	e.MakeWME("item", "name", "third")
	if _, err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	// LEX fires most recent first.
	want := "third\nsecond\nfirst\n"
	if out.String() != want {
		t.Errorf("order = %q, want %q", out.String(), want)
	}
}

func TestEngineMEAOrdersByFirstCE(t *testing.T) {
	prog := mustProgram(t, `
(p act (goal ^name <g>) (support ^for <g>) --> (write <g>) (remove 1))
`)
	run := func(strategy Strategy) string {
		var out bytes.Buffer
		e, err := New(prog, Options{Output: &out, Strategy: strategy})
		if err != nil {
			t.Fatal(err)
		}
		// goal g1 is older than g2, but g1's SUPPORT is the most
		// recent wme of all.
		e.MakeWME("goal", "name", "g1")
		e.MakeWME("goal", "name", "g2")
		e.MakeWME("support", "for", "g2")
		e.MakeWME("support", "for", "g1")
		if _, err := e.Run(10); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	// LEX looks at the overall most recent tag: support-for-g1 wins.
	if got := run(LEX); got != "g1\ng2\n" {
		t.Errorf("LEX order = %q, want g1 first", got)
	}
	// MEA keys on the first CE (the goal): g2 is the more recent goal.
	if got := run(MEA); got != "g2\ng1\n" {
		t.Errorf("MEA order = %q, want g2 first", got)
	}
}

func TestEngineSpecificityTieBreak(t *testing.T) {
	prog := mustProgram(t, `
(p loose (sig ^v <x>) --> (write loose) (remove 1))
(p tight (sig ^v <x> ^v > 0) --> (write tight) (remove 1))
`)
	var out bytes.Buffer
	e, err := New(prog, Options{Output: &out})
	if err != nil {
		t.Fatal(err)
	}
	e.MakeWME("sig", "v", 3)
	if _, err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	// Both match the same single wme (equal recency); the more
	// specific production fires first, removes the wme, and the other
	// instantiation retracts.
	if got := strings.TrimSpace(out.String()); got != "tight" {
		t.Errorf("output = %q, want tight", got)
	}
}

func TestEngineNegationLoop(t *testing.T) {
	// Generates items until the blocker appears.
	prog := mustProgram(t, `
(p spawn
    (gen ^next <n> ^max <m>)
    -(stop)
    -->
    (make item ^n <n>)
    (modify 1 ^next (compute <n> + 1)))
(p stopper
    (gen ^next <n> ^max <m>)
    (item ^n <m>)
    -->
    (make stop))
`)
	e, err := New(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.MakeWME("gen", "next", 1, "max", 4)
	if _, err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	// items 1..4 plus gen plus stop = 6 wmes.
	if e.WMCount() != 6 {
		t.Errorf("wm = %d, want 6", e.WMCount())
	}
}

func TestEngineModifyAssignsNewTimeTag(t *testing.T) {
	prog := mustProgram(t, `
(p bump (c ^v 0) --> (modify 1 ^v 1))
`)
	e, err := New(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := e.MakeWME("c", "v", 0)
	oldTag := w.TimeTag
	if _, err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if e.WMCount() != 1 {
		t.Fatalf("wm = %d", e.WMCount())
	}
	cs := e.ConflictSet()
	if len(cs) != 0 {
		t.Errorf("conflict set should be empty, got %d", len(cs))
	}
	// The surviving wme must be the modified one with a fresh tag.
	for _, in := range cs {
		_ = in
	}
	if e.Fired() != 1 {
		t.Errorf("fired = %d", e.Fired())
	}
	_ = oldTag
}

func TestEngineCycleLimit(t *testing.T) {
	prog := mustProgram(t, `
(p forever (tick ^n <n>) --> (modify 1 ^n (compute <n> + 1)))
`)
	e, err := New(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.MakeWME("tick", "n", 0)
	fired, err := e.Run(20)
	if err != ErrCycleLimit {
		t.Errorf("err = %v, want ErrCycleLimit", err)
	}
	if fired != 20 {
		t.Errorf("fired = %d, want 20", fired)
	}
}

func TestEngineRemoveTwiceIsNoop(t *testing.T) {
	prog := mustProgram(t, `
(p dup (a ^v <x>) (b) --> (remove 1 1))
`)
	e, err := New(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.MakeWME("a", "v", 1)
	e.MakeWME("b")
	if _, err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if e.WMCount() != 1 {
		t.Errorf("wm = %d, want 1 (only b left)", e.WMCount())
	}
}

func TestEngineWriteCrlfAndCompute(t *testing.T) {
	prog := mustProgram(t, `
(p report
    (pair ^a <x> ^b <y>)
    -->
    (bind <s> (compute <x> + <y>))
    (bind <d> (compute <x> * <y> - 1))
    (write sum <s> (crlf) prod-1 <d>)
    (remove 1))
`)
	var out bytes.Buffer
	e, err := New(prog, Options{Output: &out})
	if err != nil {
		t.Fatal(err)
	}
	e.MakeWME("pair", "a", 3, "b", 4)
	if _, err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != "sum 7 \n prod-1 11\n" {
		t.Errorf("output = %q", got)
	}
}

func TestEngineComputeErrors(t *testing.T) {
	cases := []struct {
		name, src string
		wantSub   string
	}{
		{"non-numeric", `(p x (a ^v <s>) --> (make b ^v (compute <s> + 1)))`, "non-numeric"},
		{"div zero", `(p x (a ^v <s>) --> (make b ^v (compute 1 // 0)))`, "division by zero"},
		{"mod zero", `(p x (a ^v <s>) --> (make b ^v (compute 1 mod 0)))`, "mod by zero"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog := mustProgram(t, c.src)
			e, err := New(prog, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if c.name == "non-numeric" {
				e.MakeWME("a", "v", "sym")
			} else {
				e.MakeWME("a", "v", 1)
			}
			_, err = e.Run(5)
			if err == nil || !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("err = %v, want substring %q", err, c.wantSub)
			}
		})
	}
}

func TestEngineLinearAndUnsharedAgree(t *testing.T) {
	src := `
(p fib-step
    (fib ^i <i> ^a <a> ^b <b> ^n <n>)
    (fib ^i < <n>)
    -->
    (modify 1 ^i (compute <i> + 1) ^a <b> ^b (compute <a> + <b>)))
`
	run := func(opts Options) int {
		prog := mustProgram(t, src)
		e, err := New(prog, opts)
		if err != nil {
			t.Fatal(err)
		}
		e.MakeWME("fib", "i", 0, "a", 0, "b", 1, "n", 10)
		fired, err := e.Run(100)
		if err != nil {
			t.Fatal(err)
		}
		return fired
	}
	base := run(Options{})
	if linear := run(Options{NBuckets: 1}); linear != base {
		t.Errorf("linear memories fired %d, hashed %d", linear, base)
	}
	if unshared := run(Options{DisableSharing: true}); unshared != base {
		t.Errorf("unshared fired %d, shared %d", unshared, base)
	}
}

func TestConflictSetSorted(t *testing.T) {
	prog := mustProgram(t, `
(p p1 (x ^v <a>) --> (halt))
`)
	e, err := New(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.MakeWME("x", "v", 1)
	e.MakeWME("x", "v", 2)
	e.MakeWME("x", "v", 3)
	// Match without firing.
	e.match()
	cs := e.ConflictSet()
	if len(cs) != 3 {
		t.Fatalf("cs = %d", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if !e.better(cs[i-1], cs[i]) {
			t.Errorf("conflict set not sorted best-first at %d", i)
		}
	}
	if cs[0].TimeTags[0] != 3 {
		t.Errorf("best instantiation tag = %d, want most recent", cs[0].TimeTags[0])
	}
}

func TestEngineWithTransformedNetwork(t *testing.T) {
	src := `
(p o1 (a ^x <v>) (b ^x <v>) --> (make got ^k 1))
(p o2 (a ^x <v>) (b ^x <v>) --> (make got ^k 2))
`
	prog := mustProgram(t, src)
	net, err := rete.Compile(prog.Productions)
	if err != nil {
		t.Fatal(err)
	}
	var shared *rete.Node
	for _, n := range net.Nodes {
		if n.IsTwoInput() && len(n.Succs) > 1 {
			shared = n
		}
	}
	if shared == nil {
		t.Fatal("expected shared join")
	}
	if _, err := net.Unshare(shared); err != nil {
		t.Fatal(err)
	}
	e, err := NewWithNetwork(prog, net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.MakeWME("a", "x", 1)
	e.MakeWME("b", "x", 1)
	fired, err := e.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Errorf("fired = %d, want both productions", fired)
	}
	if e.WMCount() != 4 {
		t.Errorf("wm = %d, want 4", e.WMCount())
	}
}

func TestEngineWatchLevels(t *testing.T) {
	src := `(p fire (sig ^v <x>) --> (make echo ^v <x>) (remove 1))`
	run := func(watch int) string {
		prog := mustProgram(t, src)
		var out bytes.Buffer
		e, err := New(prog, Options{Output: &out, Watch: watch})
		if err != nil {
			t.Fatal(err)
		}
		e.MakeWME("sig", "v", 7)
		if _, err := e.Run(10); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if out := run(0); out != "" {
		t.Errorf("watch 0 output = %q", out)
	}
	out1 := run(1)
	if !strings.Contains(out1, "1. fire 1") {
		t.Errorf("watch 1 missing firing line: %q", out1)
	}
	if strings.Contains(out1, "=>wm") {
		t.Errorf("watch 1 shows wme changes: %q", out1)
	}
	out2 := run(2)
	for _, want := range []string{"=>wm: 1: (sig ^v 7)", "1. fire 1", "<=wm: 1: (sig ^v 7)", "=>wm: 2: (echo ^v 7)"} {
		if !strings.Contains(out2, want) {
			t.Errorf("watch 2 missing %q in:\n%s", want, out2)
		}
	}
}

func TestEngineAccessorsAndInsertWMEs(t *testing.T) {
	prog := mustProgram(t, `(p p1 (a ^x <v>) --> (remove 1))`)
	e, err := New(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Network() == nil || e.Matcher() == nil {
		t.Fatal("nil accessors")
	}
	wmes, err := ops5.ParseWMEs("(a ^x 1)\n(a ^x 2)")
	if err != nil {
		t.Fatal(err)
	}
	e.InsertWMEs(wmes...)
	fired, err := e.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 2 || e.WMCount() != 0 {
		t.Errorf("fired = %d, wm = %d", fired, e.WMCount())
	}
	// The caller's wmes are cloned: their IDs are untouched.
	if wmes[0].ID != 0 {
		t.Error("InsertWMEs mutated caller's wme")
	}
}

func TestEngineModifyThenRemoveSameCE(t *testing.T) {
	// modify 1 deletes the matched wme and creates a successor; the
	// following remove 1 targets the ORIGINAL (already deleted) wme
	// and must be a harmless no-op. A guard bounds the rematch chain.
	prog := mustProgram(t, `
(p double-touch
    (c ^v { <x> < 3 })
    -->
    (modify 1 ^v (compute <x> + 1))
    (remove 1))
`)
	e, err := New(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.MakeWME("c", "v", 0)
	fired, err := e.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 3 {
		t.Errorf("fired = %d, want 3 (v: 0->1->2->3)", fired)
	}
	if e.WMCount() != 1 {
		t.Errorf("wm = %d, want the surviving modified wme", e.WMCount())
	}
}

func TestStrategyAndKeyStrings(t *testing.T) {
	if LEX.String() != "LEX" || MEA.String() != "MEA" {
		t.Error("strategy strings")
	}
	prog := mustProgram(t, `(p p1 (a ^x 1) --> (halt))`)
	e, err := New(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.MakeWME("a", "x", 1)
	e.match()
	cs := e.ConflictSet()
	if len(cs) != 1 || !strings.Contains(cs[0].Key(), "p1") {
		t.Errorf("cs = %v", cs)
	}
}
