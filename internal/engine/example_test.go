package engine_test

import (
	"fmt"
	"log"
	"os"

	"mpcrete/internal/engine"
	"mpcrete/internal/ops5"
)

// Example runs a two-rule production system through the MRA cycle.
func Example() {
	prog, err := ops5.ParseProgram(`
(p greet
    (person ^name <n>)
    -(greeted ^who <n>)
    -->
    (write hello <n>)
    (make greeted ^who <n>))
`)
	if err != nil {
		log.Fatal(err)
	}
	e, err := engine.New(prog, engine.Options{Output: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	e.MakeWME("person", "name", "ada")
	fired, err := e.Run(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fired:", fired)
	// Output:
	// hello ada
	// fired: 1
}

// ExampleEngine_Step shows single-cycle stepping with conflict-set
// inspection.
func ExampleEngine_Step() {
	prog, err := ops5.ParseProgram(`(p note (item ^v <x>) --> (remove 1))`)
	if err != nil {
		log.Fatal(err)
	}
	e, err := engine.New(prog, engine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	e.MakeWME("item", "v", 1)
	e.MakeWME("item", "v", 2)

	in, err := e.Step()
	if err != nil {
		log.Fatal(err)
	}
	// LEX picks the most recent wme first.
	fmt.Println(in.Prod.Name, in.TimeTags)
	// Output: note [2]
}
