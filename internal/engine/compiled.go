package engine

import (
	"fmt"
	"io"
	"sync"

	"mpcrete/internal/ops5"
	"mpcrete/internal/rete"
)

// This file implements the compiled / per-session state split that the
// multi-tenant server (internal/server, cmd/ops5d) is built on: one
// Compiled holds everything that is immutable once a program is
// compiled — the Rete network, production metadata, and the
// specificity table — and any number of Sessions share it read-only,
// each owning only its mutable half (working memory, token memories,
// conflict set, counters). engine.New remains a thin wrapper that
// compiles a private Compiled and opens its single session, so
// existing callers are unaffected.

// CompileOptions control program compilation into a Compiled.
type CompileOptions struct {
	// Variant names the network variant to compile — one of
	// rete.Variants(): "shared" (or empty, the default), "unshared",
	// "candc", or "bounded". The single spelling shared with the
	// ops5run/ops5d -variant flag and the difftest oracle.
	Variant string
	// DisableSharing compiles the network without node sharing.
	//
	// Deprecated: the old spelling of Variant: "unshared"; ignored when
	// Variant is set.
	DisableSharing bool
}

// variant resolves the CompileOptions to a rete variant name.
func (o CompileOptions) variant() string {
	if o.Variant != "" {
		return o.Variant
	}
	if o.DisableSharing {
		return "unshared"
	}
	return "shared"
}

// Compiled is the immutable, shareable half of an OPS5 interpreter: a
// compiled Rete network plus per-production metadata. It is safe for
// any number of concurrent Sessions to match over one Compiled, because
// matching only reads the network; all mutable match state (token
// memories, working memory, conflict set) lives in each Session.
//
// The one exception is dynamic production management (excise and live
// production addition), which rewrites the shared network: sessions
// opened with NewSession refuse it (see Session.ExciseProduction), and
// only the private single-session engines made by New/NewWithNetwork
// allow it.
type Compiled struct {
	prog *ops5.Program
	net  *rete.Network
	spec map[string]int // production name -> specificity (read-only)
}

// Compile compiles a program into a shareable Compiled.
func Compile(prog *ops5.Program, opts CompileOptions) (*Compiled, error) {
	net, err := rete.CompileVariant(prog.Productions, opts.variant())
	if err != nil {
		return nil, err
	}
	return NewCompiled(prog, net)
}

// NewCompiled wraps a pre-compiled (possibly transformed) network for
// the same program as a shareable Compiled.
func NewCompiled(prog *ops5.Program, net *rete.Network) (*Compiled, error) {
	c := &Compiled{prog: prog, net: net, spec: make(map[string]int, len(prog.Productions))}
	for _, p := range prog.Productions {
		if net.Prods[p.Name] == nil {
			return nil, fmt.Errorf("engine: network lacks production %q", p.Name)
		}
		c.spec[p.Name] = specificity(p)
	}
	return c, nil
}

// Program returns the compiled program.
func (c *Compiled) Program() *ops5.Program { return c.prog }

// Network returns the compiled Rete network (shared, read-only during
// matching).
func (c *Compiled) Network() *rete.Network { return c.net }

// Specificity returns the LHS test count of the named production.
func (c *Compiled) Specificity(name string) int { return c.spec[name] }

// SessionOptions configure one Session over a Compiled. The zero value
// is a ready default: LEX strategy, default bucket count, discarded
// output.
type SessionOptions struct {
	// Strategy is the conflict-resolution strategy (default LEX).
	Strategy Strategy
	// NBuckets sizes the session's hash-table memories (default
	// rete.DefaultNBuckets; 1 gives linear memories).
	NBuckets int
	// Listener observes match activity (e.g. a trace recorder).
	Listener rete.Listener
	// Output receives the text of write actions (default: discarded).
	Output io.Writer
	// Matcher, when non-nil, supplies the match implementation (e.g. a
	// parallel.Runtime compiled over the same shared network); NBuckets
	// and Listener are then ignored — configure them on the supplied
	// matcher. A supplied matcher cannot be pooled (Session.Reset
	// reports false unless it implements Reset()).
	Matcher MatchApplier
	// NewMatcher, when non-nil (and Matcher nil), constructs a fresh
	// match implementation per session — the pooling-compatible form of
	// Matcher, e.g. a parallel.Runtime with the online rebalancer armed
	// over the shared network (ops5d -parallel). Sessions whose matcher
	// does not implement Reset() are closed on SessionPool.Put rather
	// than shelved, so per-session worker goroutines never leak.
	NewMatcher func() MatchApplier
	// Watch sets the OPS5 watch level written to Output (as in
	// Options.Watch).
	Watch int
}

// NewSession opens a fresh session over the shared compiled network:
// its own sequential matcher (own token memories) unless opts.Matcher
// supplies a different match implementation, empty working memory, and
// an empty conflict set. Sessions are independent; each one is
// single-threaded (callers serialize access per session, as
// internal/server does with a per-session mutex), but any number of
// sessions may run concurrently over one Compiled.
func (c *Compiled) NewSession(opts SessionOptions) *Session {
	if opts.Output == nil {
		opts.Output = io.Discard
	}
	matcher := opts.Matcher
	if matcher == nil && opts.NewMatcher != nil {
		matcher = opts.NewMatcher()
	}
	if matcher == nil {
		matcher = rete.NewMatcher(c.net, rete.MatcherOptions{NBuckets: opts.NBuckets, Listener: opts.Listener})
	}
	return &Session{
		c:        c,
		matcher:  matcher,
		opts:     opts,
		shared:   true,
		wm:       map[int]*ops5.WME{},
		conflict: map[string]*Instantiation{},
		nextID:   1,
		timetag:  1,
	}
}

// SessionPool recycles Sessions over one Compiled: Put resets a
// session's mutable state (working memory, token memories, conflict
// set, counters) and shelves it; Get reuses a shelved session or opens
// a fresh one. The multi-tenant server uses it so steady-state
// open/close churn does not recompile or reallocate hash tables.
//
// Pooled sessions must not share one matcher instance: NewSessionPool
// panics when opts.Matcher is set. A per-session factory
// (opts.NewMatcher) is fine — each Get that misses the shelf builds a
// fresh matcher, and Put closes sessions whose matcher cannot Reset.
type SessionPool struct {
	c    *Compiled
	opts SessionOptions

	mu   sync.Mutex
	free []*Session
}

// NewSessionPool creates a pool of sessions over c with the given
// per-session options.
func NewSessionPool(c *Compiled, opts SessionOptions) *SessionPool {
	if opts.Matcher != nil {
		panic("engine: SessionPool cannot share a caller-supplied Matcher across sessions")
	}
	return &SessionPool{c: c, opts: opts}
}

// Get returns a clean session: a reset pooled one if available,
// otherwise a fresh one.
func (p *SessionPool) Get() *Session {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return s
	}
	p.mu.Unlock()
	return p.c.NewSession(p.opts)
}

// Put resets s and shelves it for reuse. Sessions whose matcher cannot
// be reset are dropped (never shelved dirty).
func (p *SessionPool) Put(s *Session) {
	if s == nil {
		return
	}
	if !s.Reset() {
		// Not reusable (matcher without Reset): release its resources —
		// a per-session parallel runtime's workers must not leak.
		s.Close()
		return
	}
	p.mu.Lock()
	p.free = append(p.free, s)
	p.mu.Unlock()
}

// Len returns the number of shelved sessions.
func (p *SessionPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
