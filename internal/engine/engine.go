// Package engine implements the OPS5 interpreter: the match-resolve-act
// (MRA) cycle of Section 2.1 of the paper, on top of the hashed-memory
// Rete matcher. It supports the LEX and MEA conflict-resolution
// strategies, executes right-hand-side actions, and exposes hooks for
// the hash-table activity trace recorder.
//
// The interpreter state is split in two (compiled.go): Compiled is the
// immutable half — the Rete network and production metadata, shared
// read-only by any number of sessions — and Session is the mutable half
// — working memory, token memories, conflict set, and counters. Engine
// is an alias for Session kept for the original single-tenant API:
// engine.New compiles a private Compiled and opens its one session.
package engine

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"mpcrete/internal/ops5"
	"mpcrete/internal/rete"
)

// Strategy selects the conflict-resolution strategy.
type Strategy uint8

const (
	// LEX orders instantiations by recency of their time tags
	// (compared as sorted descending sequences), then by specificity.
	LEX Strategy = iota
	// MEA first compares the recency of the wme matching the first
	// condition element, then falls back to LEX ordering.
	MEA
)

// String names the strategy.
func (s Strategy) String() string {
	if s == MEA {
		return "MEA"
	}
	return "LEX"
}

// MatchApplier is the match-phase implementation the engine drives
// once per MRA cycle. The sequential rete.Matcher and the distributed
// parallel.Runtime both satisfy it, so an engine can run its match
// phase on the goroutine machine unchanged.
type MatchApplier interface {
	Apply(changes []rete.Change) []rete.InstChange
}

// Options configure a single-tenant Engine made by New/NewWithNetwork.
// Multi-session callers use CompileOptions + SessionOptions instead;
// Options is the union of the two, kept for compatibility.
type Options struct {
	// Strategy is the conflict-resolution strategy (default LEX).
	Strategy Strategy
	// NBuckets sizes the matcher's global hash tables (default
	// rete.DefaultNBuckets; 1 gives linear memories).
	NBuckets int
	// Listener observes match activity (e.g. a trace recorder).
	Listener rete.Listener
	// Output receives the text of write actions (default: discarded).
	Output io.Writer
	// Variant names the network variant to compile (see
	// rete.Variants(); empty means "shared").
	Variant string
	// DisableSharing compiles the network without node sharing.
	//
	// Deprecated: the old spelling of Variant: "unshared"; ignored when
	// Variant is set.
	DisableSharing bool
	// Matcher, when non-nil, supplies the match implementation (e.g. a
	// parallel.Runtime over the same network); NBuckets and Listener
	// are then ignored — configure them on the supplied matcher.
	Matcher MatchApplier
	// Watch sets the OPS5 watch level written to Output: 1 prints
	// production firings with their time tags; 2 also prints every
	// working-memory change.
	Watch int
}

// sessionOptions extracts the per-session half of Options.
func (o Options) sessionOptions() SessionOptions {
	return SessionOptions{
		Strategy: o.Strategy,
		NBuckets: o.NBuckets,
		Listener: o.Listener,
		Output:   o.Output,
		Matcher:  o.Matcher,
		Watch:    o.Watch,
	}
}

// Instantiation is a conflict-set member.
type Instantiation struct {
	Prod *ops5.Production
	// WMEs are the matched wmes by original CE index (nil for negated
	// CEs).
	WMEs []*ops5.WME
	// TimeTags are sorted ascending.
	TimeTags []int
	key      string
	spec     int // specificity: number of LHS tests
}

// Key identifies the instantiation (production name + wme IDs).
func (in *Instantiation) Key() string { return in.key }

// Session is one OPS5 interpreter instance: the mutable half of the
// Compiled/Session split. It owns the working memory, the matcher (and
// through it the token memories), the conflict set, and the firing
// counters; the network it matches over lives in the shared Compiled.
// A session is single-threaded — callers running sessions concurrently
// serialize access to each one — but independent sessions over one
// Compiled may run concurrently.
type Session struct {
	c       *Compiled
	matcher MatchApplier
	opts    SessionOptions
	// shared marks sessions opened with Compiled.NewSession, whose
	// network may be shared with other sessions and therefore must not
	// be rewritten (see dynamic.go).
	shared   bool
	wm       map[int]*ops5.WME
	conflict map[string]*Instantiation
	pending  []rete.Change
	nextID   int
	timetag  int
	fired    int
	halted   bool
	closed   bool
}

// Engine is the original name of Session, kept as an alias for the
// single-tenant API.
type Engine = Session

// New compiles a program and returns a ready single-tenant engine. The
// compiled network is private to this engine, so dynamic production
// management (excise, live addition) is permitted.
func New(prog *ops5.Program, opts Options) (*Engine, error) {
	c, err := Compile(prog, CompileOptions{Variant: opts.Variant, DisableSharing: opts.DisableSharing})
	if err != nil {
		return nil, err
	}
	e := c.NewSession(opts.sessionOptions())
	e.shared = false
	return e, nil
}

// NewWithNetwork builds a single-tenant engine over a pre-compiled
// (possibly transformed) network for the same program.
func NewWithNetwork(prog *ops5.Program, net *rete.Network, opts Options) (*Engine, error) {
	c, err := NewCompiled(prog, net)
	if err != nil {
		return nil, err
	}
	e := c.NewSession(opts.sessionOptions())
	e.shared = false
	return e, nil
}

// specificity counts the LHS tests of a production: one for each class
// filter plus one per term.
func specificity(p *ops5.Production) int {
	n := 0
	for _, ce := range p.LHS {
		n++ // class test
		for _, at := range ce.Tests {
			n += len(at.Terms)
		}
	}
	return n
}

// Compiled returns the shared immutable half of this session.
func (e *Session) Compiled() *Compiled { return e.c }

// Network returns the compiled Rete network.
func (e *Session) Network() *rete.Network { return e.c.net }

// Matcher returns the underlying match implementation.
func (e *Session) Matcher() MatchApplier { return e.matcher }

// WMCount returns the current working-memory size.
func (e *Session) WMCount() int { return len(e.wm) }

// WMEs returns defensive copies of the live working-memory elements
// sorted by ID (IDs and time tags preserved) — the final-state artifact
// the differential test harness compares across match implementations.
// Because the copies share nothing with the session, a caller may hand
// them out (e.g. serialize a snapshot response) after releasing its
// session lock without racing later mutations.
func (e *Session) WMEs() []*ops5.WME {
	out := make([]*ops5.WME, 0, len(e.wm))
	for _, w := range e.wm {
		out = append(out, w.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Fired returns the number of instantiations fired so far.
func (e *Session) Fired() int { return e.fired }

// Halted reports whether a halt action has executed.
func (e *Session) Halted() bool { return e.halted }

// MakeWME schedules a wme addition (an OPS5 top-level make); it takes
// effect at the next match phase. The returned wme carries its
// assigned ID and time tag.
func (e *Session) MakeWME(class string, pairs ...any) *ops5.WME {
	w := ops5.NewWME(class, pairs...)
	return e.addWME(w)
}

// InsertWMEs schedules pre-built wmes (e.g. parsed by ops5.ParseWMEs).
func (e *Session) InsertWMEs(wmes ...*ops5.WME) {
	for _, w := range wmes {
		e.addWME(w.Clone())
	}
}

// Assert schedules pre-built wmes and returns the session-owned copies
// carrying their assigned IDs and time tags (the handle a Retract call
// names). It is InsertWMEs with the assignment made visible — the
// session-level API the multi-tenant server exposes.
func (e *Session) Assert(wmes ...*ops5.WME) []*ops5.WME {
	out := make([]*ops5.WME, len(wmes))
	for i, w := range wmes {
		out[i] = e.addWME(w.Clone())
	}
	return out
}

// Retract schedules deletion of the live wme with the given ID,
// reporting whether such a wme existed (live, or still pending from an
// earlier assert this cycle).
func (e *Session) Retract(id int) bool {
	if w, ok := e.wm[id]; ok {
		e.removeWME(w)
		return true
	}
	for _, ch := range e.pending {
		if ch.Tag == rete.Add && ch.WME.ID == id {
			e.removeWME(ch.WME)
			return true
		}
	}
	return false
}

func (e *Session) addWME(w *ops5.WME) *ops5.WME {
	w.ID = e.nextID
	e.nextID++
	w.TimeTag = e.timetag
	e.timetag++
	e.pending = append(e.pending, rete.Change{Tag: rete.Add, WME: w})
	if e.opts.Watch >= 2 {
		fmt.Fprintf(e.opts.Output, "=>wm: %d: %s\n", w.TimeTag, w)
	}
	return w
}

// removeWME schedules a deletion if the wme is still live.
func (e *Session) removeWME(w *ops5.WME) {
	if w == nil {
		return
	}
	if _, live := e.wm[w.ID]; !live {
		// Also tolerate deletion of a wme added earlier in this same
		// act phase (still pending).
		found := false
		for _, ch := range e.pending {
			if ch.Tag == rete.Add && ch.WME.ID == w.ID {
				found = true
				break
			}
		}
		if !found {
			return
		}
	}
	// A wme can be targeted twice in one act phase — e.g. a remove and a
	// modify of the same CE, or two modifies whose CEs matched the same
	// wme. Only the first deletion is real; a duplicate delete reaching
	// the matcher would unwind join and negative-node effects twice
	// (driving negative counts below zero and leaking stale
	// instantiations).
	for _, ch := range e.pending {
		if ch.Tag == rete.Delete && ch.WME.ID == w.ID {
			return
		}
	}
	e.pending = append(e.pending, rete.Change{Tag: rete.Delete, WME: w})
	if e.opts.Watch >= 2 {
		fmt.Fprintf(e.opts.Output, "<=wm: %d: %s\n", w.TimeTag, w)
	}
}

// match runs one match phase over the pending changes, updating
// working memory and the conflict set.
func (e *Session) match() {
	changes := e.pending
	e.pending = nil
	for _, ch := range changes {
		if ch.Tag == rete.Add {
			e.wm[ch.WME.ID] = ch.WME
		} else {
			delete(e.wm, ch.WME.ID)
		}
	}
	for _, ic := range e.matcher.Apply(changes) {
		key := ic.Key()
		if ic.Tag == rete.Add {
			e.conflict[key] = &Instantiation{
				Prod:     ic.Prod,
				WMEs:     ic.WMEs,
				TimeTags: ic.TimeTags,
				key:      key,
				spec:     e.c.spec[ic.Prod.Name],
			}
		} else {
			delete(e.conflict, key)
		}
	}
}

// ConflictSet returns the current instantiations sorted best-first
// under the configured strategy.
func (e *Session) ConflictSet() []*Instantiation {
	out := make([]*Instantiation, 0, len(e.conflict))
	for _, in := range e.conflict {
		out = append(out, in)
	}
	sort.Slice(out, func(i, j int) bool { return e.better(out[i], out[j]) })
	return out
}

// Step runs one MRA cycle: match pending changes, resolve, fire.
// It returns the fired instantiation, or nil when the conflict set is
// empty or the engine has halted.
func (e *Session) Step() (*Instantiation, error) {
	if e.halted {
		return nil, nil
	}
	e.match()
	best := e.resolve()
	if best == nil {
		return nil, nil
	}
	delete(e.conflict, best.key) // refraction
	if e.opts.Watch >= 1 {
		fmt.Fprintf(e.opts.Output, "%d. %s %s\n", e.fired+1, best.Prod.Name, tagList(best.TimeTags))
	}
	if err := e.act(best); err != nil {
		return nil, err
	}
	e.fired++
	return best, nil
}

// ErrCycleLimit is returned by Run when maxCycles fires without the
// program halting or the conflict set draining.
var ErrCycleLimit = errors.New("engine: cycle limit reached")

// Run executes MRA cycles until the conflict set is empty, a halt
// action executes, or maxCycles cycles have fired.
func (e *Session) Run(maxCycles int) (fired int, err error) {
	for i := 0; i < maxCycles; i++ {
		in, err := e.Step()
		if err != nil {
			return fired, err
		}
		if in == nil {
			return fired, nil
		}
		fired++
	}
	// Distinguish quiescence from hitting the limit: one more match.
	if e.halted {
		return fired, nil
	}
	e.match()
	if len(e.conflict) == 0 {
		return fired, nil
	}
	return fired, ErrCycleLimit
}

// RunCycles is Run under its session-level API name.
func (e *Session) RunCycles(maxCycles int) (int, error) { return e.Run(maxCycles) }

// resolve picks the best instantiation under the strategy.
func (e *Session) resolve() *Instantiation {
	var best *Instantiation
	for _, in := range e.conflict {
		if best == nil || e.better(in, best) {
			best = in
		}
	}
	return best
}

// better reports whether a should fire in preference to b.
func (e *Session) better(a, b *Instantiation) bool {
	if e.opts.Strategy == MEA {
		at, bt := firstCETag(a), firstCETag(b)
		if at != bt {
			return at > bt
		}
	}
	// LEX recency: compare time tags sorted descending.
	if c := compareRecency(a.TimeTags, b.TimeTags); c != 0 {
		return c > 0
	}
	if a.spec != b.spec {
		return a.spec > b.spec
	}
	// Deterministic final tie-break.
	if a.Prod.Name != b.Prod.Name {
		return a.Prod.Name < b.Prod.Name
	}
	return a.key < b.key
}

// tagList renders time tags in the OPS5 watch format ("3 5 7").
func tagList(tags []int) string {
	var b strings.Builder
	for i, tg := range tags {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", tg)
	}
	return b.String()
}

// firstCETag returns the time tag of the wme matching the first
// condition element (0 when the first CE is negated).
func firstCETag(in *Instantiation) int {
	if len(in.WMEs) > 0 && in.WMEs[0] != nil {
		return in.WMEs[0].TimeTag
	}
	return 0
}

// compareRecency compares two ascending time-tag lists by the OPS5 LEX
// rule: largest tags first; a longer list wins a tie on the shared
// prefix... more precisely, compare descending order elementwise; if
// one list is exhausted, the longer list is MORE recent.
func compareRecency(a, b []int) int {
	i, j := len(a)-1, len(b)-1
	for i >= 0 && j >= 0 {
		if a[i] != b[j] {
			if a[i] > b[j] {
				return 1
			}
			return -1
		}
		i--
		j--
	}
	switch {
	case i >= 0:
		return 1
	case j >= 0:
		return -1
	}
	return 0
}

// act executes the RHS of the fired instantiation.
func (e *Session) act(in *Instantiation) error {
	info := e.c.net.Prods[in.Prod.Name]
	local := map[string]ops5.Value{}

	lookup := func(v string) (ops5.Value, error) {
		if val, ok := local[v]; ok {
			return val, nil
		}
		if def, ok := info.VarDefs[v]; ok {
			w := in.WMEs[def.OrigCE]
			if w == nil {
				return ops5.Value{}, fmt.Errorf("engine: %s: variable <%s> bound in negated CE", in.Prod.Name, v)
			}
			return w.Get(def.Attr), nil
		}
		return ops5.Value{}, fmt.Errorf("engine: %s: unbound variable <%s>", in.Prod.Name, v)
	}

	var eval func(ex ops5.Expr) (ops5.Value, error)
	eval = func(ex ops5.Expr) (ops5.Value, error) {
		switch {
		case ex.Const != nil:
			return *ex.Const, nil
		case ex.Var != "":
			return lookup(ex.Var)
		default:
			acc, err := eval(ex.Operands[0])
			if err != nil {
				return ops5.Value{}, err
			}
			for i, op := range ex.Ops {
				rhs, err := eval(ex.Operands[i+1])
				if err != nil {
					return ops5.Value{}, err
				}
				if acc.Kind != ops5.KindNum || rhs.Kind != ops5.KindNum {
					return ops5.Value{}, fmt.Errorf("engine: %s: compute on non-numeric values %v, %v", in.Prod.Name, acc, rhs)
				}
				switch op {
				case ops5.ExprAdd:
					acc = ops5.N(acc.Num + rhs.Num)
				case ops5.ExprSub:
					acc = ops5.N(acc.Num - rhs.Num)
				case ops5.ExprMul:
					acc = ops5.N(acc.Num * rhs.Num)
				case ops5.ExprDiv:
					if rhs.Num == 0 {
						return ops5.Value{}, fmt.Errorf("engine: %s: division by zero", in.Prod.Name)
					}
					acc = ops5.N(acc.Num / rhs.Num)
				case ops5.ExprMod:
					if rhs.Num == 0 {
						return ops5.Value{}, fmt.Errorf("engine: %s: mod by zero", in.Prod.Name)
					}
					acc = ops5.N(math.Mod(acc.Num, rhs.Num))
				}
			}
			return acc, nil
		}
	}

	for _, a := range in.Prod.RHS {
		switch a.Kind {
		case ops5.ActMake:
			w := &ops5.WME{Class: a.Class, Attrs: make(map[string]ops5.Value, len(a.Assigns))}
			for _, as := range a.Assigns {
				v, err := eval(as.Expr)
				if err != nil {
					return err
				}
				w.Attrs[as.Attr] = v
			}
			e.addWME(w)
		case ops5.ActRemove:
			for _, idx := range a.CEIndexes {
				e.removeWME(in.WMEs[idx-1])
			}
		case ops5.ActModify:
			old := in.WMEs[a.CEIndexes[0]-1]
			if old == nil {
				return fmt.Errorf("engine: %s: modify of negated CE", in.Prod.Name)
			}
			e.removeWME(old)
			w := old.Clone()
			w.ID = 0
			for _, as := range a.Assigns {
				v, err := eval(as.Expr)
				if err != nil {
					return err
				}
				w.Attrs[as.Attr] = v
			}
			e.addWME(w)
		case ops5.ActWrite:
			var parts []string
			for _, ex := range a.Args {
				v, err := eval(ex)
				if err != nil {
					return err
				}
				if v.Equal(ops5.Crlf) {
					parts = append(parts, "\n")
				} else {
					parts = append(parts, v.String())
				}
			}
			if _, err := io.WriteString(e.opts.Output, strings.Join(parts, " ")+"\n"); err != nil {
				return err
			}
		case ops5.ActBind:
			v, err := eval(a.BindExpr)
			if err != nil {
				return err
			}
			local[a.Var] = v
		case ops5.ActExcise:
			if err := e.ExciseProduction(a.Class); err != nil {
				return fmt.Errorf("engine: %s: %w", in.Prod.Name, err)
			}
		case ops5.ActHalt:
			e.halted = true
		}
	}
	return nil
}
