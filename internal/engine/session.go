package engine

import (
	"mpcrete/internal/ops5"
)

// API is the session-level interface both engine variants satisfy: a
// Session matching on its own sequential rete.Matcher and a Session
// whose match phase runs on a parallel.Runtime (SessionOptions.Matcher)
// expose exactly this surface. The multi-tenant server drives tenants
// through it, and the differential harness fuzzes session-level parity
// across both implementations with it (difftest.CheckSessions).
type API interface {
	// Assert schedules wme additions; the returned copies carry their
	// assigned IDs and time tags.
	Assert(wmes ...*ops5.WME) []*ops5.WME
	// Retract schedules deletion of the live wme with the given ID.
	Retract(id int) bool
	// Step runs one MRA cycle; nil when quiescent or halted.
	Step() (*Instantiation, error)
	// RunCycles runs MRA cycles up to the limit.
	RunCycles(maxCycles int) (int, error)
	// ConflictSet returns the current instantiations, best-first.
	ConflictSet() []*Instantiation
	// Snapshot returns a self-contained copy of the observable state.
	Snapshot() *Snapshot
	// Fired returns the number of instantiations fired so far.
	Fired() int
	// Halted reports whether a halt action has executed.
	Halted() bool
	// Close releases the session's match resources.
	Close() error
}

// compile-time check: *Session implements API.
var _ API = (*Session)(nil)

// SnapshotInst is one conflict-set member in a Snapshot.
type SnapshotInst struct {
	// Key identifies the instantiation (production name + wme IDs).
	Key string `json:"key"`
	// Production is the production's name.
	Production string `json:"production"`
	// TimeTags are the matched wmes' time tags, ascending.
	TimeTags []int `json:"time_tags"`
}

// Snapshot is a self-contained copy of a session's observable state:
// nothing in it aliases session-mutable data, so a caller (e.g. a
// snapshot endpoint) may serialize it after releasing its session lock
// while other requests keep mutating the session.
type Snapshot struct {
	// WMEs are deep copies of the live working memory, sorted by ID.
	WMEs []*ops5.WME
	// ConflictSet lists the current instantiations best-first under the
	// session's strategy.
	ConflictSet []SnapshotInst
	// Fired is the number of instantiations fired so far.
	Fired int
	// Halted reports whether a halt action has executed.
	Halted bool
	// NextTimeTag is the time tag the next asserted wme will receive.
	NextTimeTag int
}

// Snapshot captures the session's observable state as defensive
// copies.
func (e *Session) Snapshot() *Snapshot {
	s := &Snapshot{
		WMEs:        e.WMEs(), // already defensive copies
		Fired:       e.fired,
		Halted:      e.halted,
		NextTimeTag: e.timetag,
	}
	for _, in := range e.ConflictSet() {
		tags := make([]int, len(in.TimeTags))
		copy(tags, in.TimeTags)
		s.ConflictSet = append(s.ConflictSet, SnapshotInst{
			Key:        in.Key(),
			Production: in.Prod.Name,
			TimeTags:   tags,
		})
	}
	return s
}

// matcherCloser is the optional shutdown hook of a match
// implementation (parallel.Runtime implements it; rete.Matcher needs
// none).
type matcherCloser interface{ Close() }

// matcherResetter is the optional reuse hook of a match
// implementation: Reset must return the matcher to its
// freshly-constructed state (empty memories, cycle zero).
type matcherResetter interface{ Reset() }

// Close releases the session's match resources (for a parallel
// matcher, its worker goroutines). Closing twice is a no-op. The
// session must not be used after Close.
func (e *Session) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	if c, ok := e.matcher.(matcherCloser); ok {
		c.Close()
	}
	return nil
}

// Reset returns the session to its freshly-opened state — empty
// working memory, empty conflict set, counters and ID/time-tag
// assignment rewound — reusing the matcher's hash-table and arena
// storage. It reports false (and resets nothing) when the matcher does
// not support reuse; the SessionPool then drops the session instead of
// shelving it dirty.
func (e *Session) Reset() bool {
	if e.closed {
		return false
	}
	r, ok := e.matcher.(matcherResetter)
	if !ok {
		return false
	}
	r.Reset()
	clear(e.wm)
	clear(e.conflict)
	e.pending = nil
	e.nextID = 1
	e.timetag = 1
	e.fired = 0
	e.halted = false
	return true
}
