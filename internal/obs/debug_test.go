package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestServeDebugEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_messages").Add(7)
	addr, stop, err := ServeDebug("127.0.0.1:0", map[string]func() any{
		"mpcrete_debug_test": reg.SnapshotVar(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	code, ctype, body := get(t, "http://"+addr+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", code)
	}
	if !strings.Contains(ctype, "application/json") {
		t.Fatalf("/debug/vars content type = %q", ctype)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	raw, ok := vars["mpcrete_debug_test"]
	if !ok {
		t.Fatalf("published var missing from /debug/vars: %s", body)
	}
	if !strings.Contains(string(raw), "test_messages") {
		t.Fatalf("registry snapshot missing counter: %s", raw)
	}

	code, ctype, _ = get(t, "http://"+addr+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", code)
	}
	if !strings.Contains(ctype, "text/html") {
		t.Fatalf("/debug/pprof/ content type = %q", ctype)
	}

	code, _, _ = get(t, "http://"+addr+"/debug/pprof/goroutine?debug=1")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/goroutine status = %d", code)
	}
}

// TestServeDebugRepublish verifies that publishing the same name twice
// replaces the snapshot instead of panicking (expvar.Publish panics on
// duplicates).
func TestServeDebugRepublish(t *testing.T) {
	addr1, stop1, err := ServeDebug("127.0.0.1:0", map[string]func() any{
		"mpcrete_republish": func() any { return map[string]int{"gen": 1} },
	})
	if err != nil {
		t.Fatal(err)
	}
	stop1()
	_ = addr1

	addr2, stop2, err := ServeDebug("127.0.0.1:0", map[string]func() any{
		"mpcrete_republish": func() any { return map[string]int{"gen": 2} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stop2()

	_, _, body := get(t, "http://"+addr2+"/debug/vars")
	if !strings.Contains(body, `"gen":2`) && !strings.Contains(body, `"gen": 2`) {
		t.Fatalf("republished var not replaced: %s", body)
	}
}

// TestServeDebugConcurrentScrape hammers /debug/vars from several
// goroutines while counters mutate, exercising snapshot locking under
// the race detector.
func TestServeDebugConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	addr, stop, err := ServeDebug("127.0.0.1:0", map[string]func() any{
		"mpcrete_scrape_test": reg.SnapshotVar(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				reg.Counter("scrape_hits_" + fmt.Sprint(g)).Add(1)
				reg.Gauge("scrape_depth").Set(float64(i))
			}
		}(g)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				code, _, _ := get(t, "http://"+addr+"/debug/vars")
				if code != http.StatusOK {
					t.Errorf("scrape status = %d", code)
					return
				}
			}
		}()
	}
	wg.Wait()
}
