package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the default mux
	"sync"
)

var publishMu sync.Mutex

// ServeDebug starts an HTTP server on addr exposing the Go runtime
// profiler (/debug/pprof/) and expvar (/debug/vars). Each snapshot
// function is published as an expvar under its name, so live metrics
// for a long parallel run are one `curl /debug/vars` away. A Registry
// plugs in via SnapshotVar.
//
// It returns the bound address (useful with addr ":0") and a stop
// function. Republishing an already-published name replaces the
// previous snapshot function instead of panicking.
func ServeDebug(addr string, snapshots map[string]func() any) (string, func() error, error) {
	publishMu.Lock()
	for name, fn := range snapshots {
		fn := fn
		v := expvar.Func(func() any { return fn() })
		if prev := expvar.Get(name); prev != nil {
			if slot, ok := prev.(*debugVar); ok {
				slot.set(v)
			}
			// A non-slot collision (e.g. the stock cmdline/memstats
			// vars) is left alone.
		} else {
			slot := &debugVar{}
			slot.set(v)
			expvar.Publish(name, slot)
		}
	}
	publishMu.Unlock()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: http.DefaultServeMux}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}

// debugVar is a replaceable expvar slot (expvar.Publish panics on
// duplicates, which breaks repeated ServeDebug calls in one process).
type debugVar struct {
	mu sync.Mutex
	v  expvar.Var
}

func (d *debugVar) set(v expvar.Var) {
	d.mu.Lock()
	d.v = v
	d.mu.Unlock()
}

func (d *debugVar) String() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.v == nil {
		return "null"
	}
	return d.v.String()
}

// SnapshotVar returns a snapshot function for ServeDebug that renders
// the registry's current contents.
func (g *Registry) SnapshotVar() func() any {
	return func() any { return g.snapshot() }
}

// writeJSON marshals v with a trailing newline.
func writeJSON(w io.Writer, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
