package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCausalRecorderNilSafe(t *testing.T) {
	var c *CausalRecorder
	if c.Tracks() != 0 {
		t.Fatalf("nil Tracks = %d", c.Tracks())
	}
	if tr := c.Track(3); tr != nil {
		t.Fatalf("nil Track = %v", tr)
	}
	if b := c.NextBatch(); b != 0 {
		t.Fatalf("nil NextBatch = %d", b)
	}
	c.BeginCycle(1, 0)
	c.EndCycle(1, 10)
	c.SetTrackName(0, "x")
	if d := c.Dump(); d != nil {
		t.Fatalf("nil Dump = %v", d)
	}
	if recs := c.CycleRecords(); recs != nil {
		t.Fatalf("nil CycleRecords = %v", recs)
	}
	var tr *TrackRecorder
	tr.Send(0, 1, 1, 0, 5)
	tr.Recv(0, 1, 1, 0, 5)
	tr.Handle(0, 1, 7, 2, 3)
	tr.Flush(0, 1, 4)
}

// TestDisabledPathZeroAlloc pins the acceptance criterion: the
// disabled (nil-recorder) hot path is 0 allocs/event.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var c *CausalRecorder
	tr := c.Track(0)
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Send(1, 1, 1, 2, 3)
		tr.Recv(2, 1, 1, 0, 3)
		tr.Handle(3, 1, 17, 2, 1)
		tr.Flush(4, 1, 2)
		_ = c.NextBatch()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates: %v allocs/run", allocs)
	}
}

// TestEnabledPathZeroAlloc proves the enabled steady state is also
// allocation-free: rings are pre-allocated and events are value
// stores.
func TestEnabledPathZeroAlloc(t *testing.T) {
	c := NewCausalRecorder(2, 64, 8, 32)
	tr := c.Track(0)
	allocs := testing.AllocsPerRun(1000, func() {
		b := c.NextBatch()
		tr.Send(1, 1, b, 1, 3)
		tr.Recv(2, 1, b, 1, 3)
		tr.Handle(3, 1, 17, 2, 1)
		tr.Flush(4, 1, 2)
	})
	if allocs != 0 {
		t.Fatalf("enabled path allocates: %v allocs/run", allocs)
	}
}

func TestRingWrapAndDroppedAccounting(t *testing.T) {
	c := NewCausalRecorder(1, 8, 4, 0)
	tr := c.Track(0)
	for i := 0; i < 20; i++ {
		tr.Handle(int64(i), 1, int32(i), 1, 0)
	}
	d := c.Dump()
	td := d.Tracks[0]
	if td.Total != 20 {
		t.Fatalf("Total = %d, want 20", td.Total)
	}
	if len(td.Events) != 8 {
		t.Fatalf("retained %d events, want 8", len(td.Events))
	}
	if td.Dropped != 12 {
		t.Fatalf("Dropped = %d, want 12", td.Dropped)
	}
	// Oldest-first, sequence-contiguous, and the retained window is
	// the most recent events.
	for i, ev := range td.Events {
		wantSeq := uint64(12 + i)
		if ev.Seq != wantSeq {
			t.Fatalf("event %d Seq = %d, want %d", i, ev.Seq, wantSeq)
		}
		if ev.Bucket != int32(wantSeq) {
			t.Fatalf("event %d Bucket = %d, want %d", i, ev.Bucket, wantSeq)
		}
	}
}

func TestRingCapRoundsToPowerOfTwo(t *testing.T) {
	c := NewCausalRecorder(1, 100, 4, 0)
	tr := c.Track(0)
	for i := 0; i < 200; i++ {
		tr.Flush(int64(i), 1, 1)
	}
	if got := len(c.Dump().Tracks[0].Events); got != 128 {
		t.Fatalf("retained %d events, want 128 (rounded-up cap)", got)
	}
}

func TestCycleAggregatesAndRetention(t *testing.T) {
	c := NewCausalRecorder(2, 16, 3, 0)
	w, ctl := c.Track(0), c.Track(1)
	_ = ctl
	for cyc := int32(1); cyc <= 5; cyc++ {
		c.BeginCycle(cyc, int64(cyc)*100)
		b := c.NextBatch()
		w.Recv(int64(cyc)*100+1, cyc, b, 1, 2)
		w.Handle(int64(cyc)*100+2, cyc, 5, 1, 1)
		w.Handle(int64(cyc)*100+3, cyc, 6, 2, 0)
		w.Send(int64(cyc)*100+4, cyc, c.NextBatch(), 1, 3)
		w.Flush(int64(cyc)*100+5, cyc, 3)
		c.EndCycle(cyc, int64(cyc)*100+50)
	}
	recs := c.CycleRecords()
	if len(recs) != 3 {
		t.Fatalf("retained %d cycle records, want 3", len(recs))
	}
	// Oldest-first: cycles 3, 4, 5 survive.
	for i, r := range recs {
		if want := int32(3 + i); r.Cycle != want {
			t.Fatalf("record %d cycle = %d, want %d", i, r.Cycle, want)
		}
		if r.WallNS != 50 {
			t.Fatalf("record %d WallNS = %d, want 50", i, r.WallNS)
		}
		agg := r.Total()
		if agg.Handles != 2 || agg.Recvs != 2 || agg.Sends != 3 || agg.Flushes != 1 {
			t.Fatalf("record %d agg = %+v", i, agg)
		}
		if agg.MaxDepth != 2 {
			t.Fatalf("record %d MaxDepth = %d, want 2", i, agg.MaxDepth)
		}
	}
}

func TestBucketLoads(t *testing.T) {
	c := NewCausalRecorder(1, 16, 4, 8)
	tr := c.Track(0)
	tr.Handle(1, 1, 3, 1, 0)
	tr.Handle(2, 1, 3, 1, 0)
	tr.Handle(3, 1, 5, 1, 0)
	tr.Handle(4, 1, 99, 1, 0) // out of range: counted as event, not load
	d := c.Dump()
	want := []BucketLoad{{Bucket: 3, Count: 2}, {Bucket: 5, Count: 1}}
	got := d.Tracks[0].BucketLoads
	if len(got) != len(want) {
		t.Fatalf("BucketLoads = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BucketLoads[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestNextBatchMonotonic(t *testing.T) {
	c := NewCausalRecorder(1, 16, 4, 0)
	prev := int32(0)
	for i := 0; i < 10; i++ {
		b := c.NextBatch()
		if b <= prev {
			t.Fatalf("NextBatch not increasing: %d after %d", b, prev)
		}
		prev = b
	}
}

func TestFlightDumpJSONDeterministic(t *testing.T) {
	build := func() *FlightDump {
		c := NewCausalRecorder(2, 16, 4, 16)
		c.SetTrackName(0, "worker 0")
		c.SetTrackName(1, "control")
		c.BeginCycle(1, 0)
		b := c.NextBatch()
		c.Track(1).Send(1, 1, b, BroadcastDst, 4)
		c.Track(0).Recv(2, 1, b, 1, 4)
		c.Track(0).Handle(3, 1, 7, 1, 0)
		c.EndCycle(1, 10)
		return c.Dump()
	}
	var buf1, buf2 bytes.Buffer
	if err := build().WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Fatal("dump JSON not deterministic")
	}
	var parsed FlightDump
	if err := json.Unmarshal(buf1.Bytes(), &parsed); err != nil {
		t.Fatalf("dump JSON not parseable: %v", err)
	}
	if parsed.NBuckets != 16 || len(parsed.Tracks) != 2 || len(parsed.Cycles) != 1 {
		t.Fatalf("round-tripped dump = %+v", parsed)
	}
	if parsed.Tracks[1].Name != "control" {
		t.Fatalf("track name = %q", parsed.Tracks[1].Name)
	}
}

func TestChromeTraceFlowArrows(t *testing.T) {
	c := NewCausalRecorder(2, 16, 4, 0)
	c.SetTrackName(0, "worker 0")
	c.SetTrackName(1, "control")
	c.BeginCycle(1, 0)
	b := c.NextBatch()
	c.Track(1).Send(1000, 1, b, 0, 2)
	c.Track(0).Recv(2000, 1, b, 1, 2)
	c.Track(0).Handle(3000, 1, 9, 1, 1)
	// A send whose recv fell off the ring must NOT draw an arrow.
	c.Track(1).Send(4000, 1, c.NextBatch(), 0, 1)
	c.EndCycle(1, 5000)

	var buf bytes.Buffer
	if err := c.Dump().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v\n%s", err, out)
	}
	if !strings.Contains(out, `"ph":"s"`) || !strings.Contains(out, `"ph":"f"`) {
		t.Fatalf("no flow arrow events in trace:\n%s", out)
	}
	if got := strings.Count(out, `"cat":"flow"`); got != 2 {
		t.Fatalf("flow event count = %d, want 2 (dangling batch must not draw)", got)
	}
	if !strings.Contains(out, `"name":"worker 0"`) || !strings.Contains(out, `"name":"control"`) {
		t.Fatalf("missing thread names:\n%s", out)
	}
	for _, kind := range []string{"send", "recv", "handle", "cycle-begin", "cycle-end"} {
		if !strings.Contains(out, `"name":"`+kind+`"`) {
			t.Fatalf("missing %s event:\n%s", kind, out)
		}
	}
}

func TestEventKindString(t *testing.T) {
	kinds := []EventKind{EvSend, EvRecv, EvHandle, EvFlush, EvCycleBegin, EvCycleEnd}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if got := EventKind(200).String(); got != "kind(200)" {
		t.Fatalf("unknown kind = %q", got)
	}
}
