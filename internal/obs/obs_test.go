package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// buildRecorder assembles the fixture timeline used by the golden and
// validity tests.
func buildRecorder() *Recorder {
	r := NewRecorder()
	r.SetTrack(0, "control")
	r.SetTrack(1, "match 0")
	r.Span(0, "cycle-start", 0, 1500, Label{"cycle", "0"})
	r.Span(1, "activation", 2000, 34000)
	r.Span(NetworkTrack, "flight", 1500, 2000, Label{"to", "1"}, Label{"from", "0"})
	r.Instant(0, "broadcast", 1500)
	r.Sample(1, "queue", 2000, 1)
	return r
}

const goldenTrace = `{"traceEvents":[
{"name":"process_name","ph":"M","pid":0,"args":{"name":"mpcrete"}},
{"name":"thread_name","ph":"M","pid":0,"tid":2,"args":{"name":"network"}},
{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"control"}},
{"name":"thread_name","ph":"M","pid":0,"tid":1,"args":{"name":"match 0"}},
{"name":"cycle-start","cat":"span","ph":"X","ts":0.000,"dur":1.500,"pid":0,"tid":0,"args":{"cycle":"0"}},
{"name":"flight","cat":"span","ph":"X","ts":1.500,"dur":0.500,"pid":0,"tid":2,"args":{"from":"0","to":"1"}},
{"name":"broadcast","cat":"instant","ph":"i","ts":1.500,"pid":0,"tid":0,"s":"t"},
{"name":"activation","cat":"span","ph":"X","ts":2.000,"dur":32.000,"pid":0,"tid":1},
{"name":"queue/p1","cat":"counter","ph":"C","ts":2.000,"pid":0,"tid":1,"args":{"value":1}}
],"displayTimeUnit":"ms"}
`

// TestChromeTraceGolden pins the exporter's exact bytes: field order,
// timestamp formatting, event ordering, and track naming are all part
// of the contract (the metrics/timeline files must be reproducible).
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildRecorder().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenTrace {
		t.Errorf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, goldenTrace)
	}
}

// TestChromeTraceValid parses the export as JSON and checks the
// trace-event schema: known phases, pid/tid present where required,
// and monotonically non-decreasing timestamps.
func TestChromeTraceValid(t *testing.T) {
	var buf bytes.Buffer
	if err := buildRecorder().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no events")
	}
	lastTS := -1.0
	for i, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		switch ph {
		case "M":
			continue
		case "X", "i", "C":
		default:
			t.Fatalf("event %d: unknown phase %q", i, ph)
		}
		if _, ok := e["pid"].(float64); !ok {
			t.Errorf("event %d: missing pid", i)
		}
		if _, ok := e["tid"].(float64); !ok {
			t.Errorf("event %d: missing tid", i)
		}
		ts, ok := e["ts"].(float64)
		if !ok {
			t.Fatalf("event %d: missing ts", i)
		}
		if ts < lastTS {
			t.Errorf("event %d: ts %v < previous %v (not monotonic)", i, ts, lastTS)
		}
		lastTS = ts
		if ph == "X" {
			if d, ok := e["dur"].(float64); !ok || d < 0 {
				t.Errorf("event %d: bad dur %v", i, e["dur"])
			}
		}
	}
}

// TestNilRecorder exercises the nil fast path: every method must be a
// safe no-op, and the export must still be valid JSON.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.SetTrack(0, "x")
	r.Span(0, "busy", 0, 1)
	r.Instant(0, "e", 0)
	r.Sample(0, "q", 0, 1)
	if r.Spans() != nil || r.Instants() != nil || r.SpanTotal("") != 0 {
		t.Error("nil recorder returned data")
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil export invalid: %v", err)
	}
}

func TestSpanTotal(t *testing.T) {
	r := NewRecorder()
	r.Span(0, "activation", 0, 10)
	r.Span(1, "activation", 5, 25)
	r.Span(2, "other", 0, 7)
	r.Span(NetworkTrack, "flight", 0, 1000) // network tracks excluded
	if got := r.SpanTotal(""); got != 37 {
		t.Errorf("SpanTotal() = %d, want 37", got)
	}
	if got := r.SpanTotal("activation"); got != 30 {
		t.Errorf(`SpanTotal("activation") = %d, want 30`, got)
	}
}

// TestServeDebug starts the debug server and checks that pprof and the
// expvar metrics snapshot are served.
func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits").Add(3)
	addr, stop, err := ServeDebug("127.0.0.1:0", map[string]func() any{
		"metrics": reg.SnapshotVar(),
	})
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	defer stop()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(b)
	}
	vars := get("/debug/vars")
	if !strings.Contains(vars, `"hits"`) || !strings.Contains(vars, `"metrics"`) {
		t.Errorf("/debug/vars missing metrics snapshot:\n%s", vars)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Error("/debug/pprof/ index missing profiles")
	}

	// A second ServeDebug with the same name must not panic and must
	// replace the snapshot.
	reg2 := NewRegistry()
	reg2.Counter("fresh").Inc()
	addr2, stop2, err := ServeDebug("127.0.0.1:0", map[string]func() any{
		"metrics": reg2.SnapshotVar(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stop2()
	_ = addr2
	if vars := get("/debug/vars"); !strings.Contains(vars, `"fresh"`) {
		t.Error("republished metrics var not replaced")
	}
}
