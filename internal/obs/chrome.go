package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteChromeTrace exports the recorded timeline as Chrome trace-event
// JSON (the "JSON Array Format" wrapped in a traceEvents object), the
// format Perfetto and chrome://tracing open directly.
//
// The output is deterministic for a given set of recorded events:
// events are fully ordered by (timestamp, track, kind, name), fields
// are emitted in a fixed order, and timestamps are nanoseconds
// rendered as microseconds with exactly three decimals. Spans become
// complete events (ph "X"), instants become thread-scoped instant
// events (ph "i"), and samples become counter events (ph "C").
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`+"\n")
		return err
	}
	r.mu.Lock()
	spans := make([]Span, len(r.spans))
	copy(spans, r.spans)
	instants := make([]Instant, len(r.instants))
	copy(instants, r.instants)
	samples := make([]Sample, len(r.samples))
	copy(samples, r.samples)
	tracks := make(map[int]string, len(r.tracks))
	for k, v := range r.tracks {
		tracks[k] = v
	}
	r.mu.Unlock()

	// Map tracks to Chrome thread ids: processors keep their id, the
	// network pseudo-track goes after the highest processor.
	maxProc := 0
	seen := map[int]bool{}
	note := func(proc int) {
		seen[proc] = true
		if proc > maxProc {
			maxProc = proc
		}
	}
	for _, s := range spans {
		note(s.Proc)
	}
	for _, i := range instants {
		note(i.Proc)
	}
	for _, s := range samples {
		note(s.Proc)
	}
	for p := range tracks {
		note(p)
	}
	netTid := maxProc + 1
	tid := func(proc int) int {
		if proc == NetworkTrack {
			return netTid
		}
		return proc
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[` + "\n"); err != nil {
		return err
	}

	var lines []string
	// Metadata: process name, then one thread_name per known track.
	lines = append(lines, `{"name":"process_name","ph":"M","pid":0,"args":{"name":"mpcrete"}}`)
	var trackIDs []int
	for p := range seen {
		trackIDs = append(trackIDs, p)
	}
	sort.Ints(trackIDs)
	for _, p := range trackIDs {
		name, ok := tracks[p]
		if !ok {
			if p == NetworkTrack {
				name = "network"
			} else {
				name = fmt.Sprintf("proc %d", p)
			}
		}
		lines = append(lines, fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":%s}}`,
			tid(p), strconv.Quote(name)))
	}

	// Timeline events, fully ordered for monotonic, reproducible output.
	type ev struct {
		ts    int64
		order int // 0 span, 1 instant, 2 sample — ties at equal ts
		tid   int
		name  string
		line  string
	}
	var evs []ev
	for _, s := range spans {
		evs = append(evs, ev{ts: s.T0, order: 0, tid: tid(s.Proc), name: s.Kind,
			line: fmt.Sprintf(`{"name":%s,"cat":"span","ph":"X","ts":%s,"dur":%s,"pid":0,"tid":%d%s}`,
				strconv.Quote(s.Kind), usec(s.T0), usec(s.T1-s.T0), tid(s.Proc), argsJSON(s.Labels))})
	}
	for _, i := range instants {
		evs = append(evs, ev{ts: i.T, order: 1, tid: tid(i.Proc), name: i.Name,
			line: fmt.Sprintf(`{"name":%s,"cat":"instant","ph":"i","ts":%s,"pid":0,"tid":%d,"s":"t"%s}`,
				strconv.Quote(i.Name), usec(i.T), tid(i.Proc), argsJSON(i.Labels))})
	}
	for _, s := range samples {
		// Counter tracks are keyed by (pid, name) in the viewer, so the
		// track id is folded into the counter name.
		name := fmt.Sprintf("%s/p%d", s.Name, s.Proc)
		evs = append(evs, ev{ts: s.T, order: 2, tid: tid(s.Proc), name: name,
			line: fmt.Sprintf(`{"name":%s,"cat":"counter","ph":"C","ts":%s,"pid":0,"tid":%d,"args":{"value":%s}}`,
				strconv.Quote(name), usec(s.T), tid(s.Proc), formatFloat(s.Value))})
	}
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		if a.order != b.order {
			return a.order < b.order
		}
		if a.tid != b.tid {
			return a.tid < b.tid
		}
		if a.name != b.name {
			return a.name < b.name
		}
		return a.line < b.line
	})
	for _, e := range evs {
		lines = append(lines, e.line)
	}

	for i, l := range lines {
		sep := ","
		if i == len(lines)-1 {
			sep = ""
		}
		if _, err := bw.WriteString(l + sep + "\n"); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString(`],"displayTimeUnit":"ms"}` + "\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// usec renders nanoseconds as microseconds with exactly three
// decimals (Chrome trace timestamps are microseconds).
func usec(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

// argsJSON renders labels as a trailing `,"args":{...}` fragment, or
// nothing when there are no labels.
func argsJSON(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	out := `,"args":{`
	for i, l := range sortLabels(labels) {
		if i > 0 {
			out += ","
		}
		out += strconv.Quote(l.Key) + ":" + strconv.Quote(l.Value)
	}
	return out + "}"
}
