// Package obs is the observability layer shared by the discrete-event
// simulator (internal/simnet, simulated nanoseconds) and the real
// goroutine runtime (internal/parallel, wall-clock nanoseconds). It
// has two halves:
//
//   - Recorder: a low-overhead timeline of spans (busy intervals,
//     message flights), instant events (broadcasts, cycle markers),
//     and counter samples (task-queue depth), exportable to Chrome
//     trace-event JSON so any run opens directly in Perfetto or
//     chrome://tracing — the visual form of the paper's Fig 5-5
//     busy/idle alternation analysis.
//   - Registry: a metrics registry of counters, gauges, fixed-bucket
//     histograms, and per-cycle series, with deterministic CSV and
//     JSON export (internal/experiments and the cmd/ tools consume
//     these).
//
// Every Recorder and Registry method is safe on a nil receiver and
// does nothing, so instrumented code paths need no conditionals and
// the default (un-observed) configuration pays only a nil check.
package obs

import (
	"sort"
	"sync"
)

// NetworkTrack is the pseudo-processor id used for message-flight
// spans; the exporter renders it as its own named track.
const NetworkTrack = -1

// Label is one key/value annotation on a span or instant event.
type Label struct {
	Key, Value string
}

// Span is a closed interval of activity on one track. Times are
// nanoseconds (simulated or wall-clock; a Recorder holds one kind).
type Span struct {
	Proc   int
	Kind   string
	T0, T1 int64
	Labels []Label
}

// Instant is a point event on a track.
type Instant struct {
	Proc   int
	Name   string
	T      int64
	Labels []Label
}

// Sample is one observation of a named per-track counter (rendered as
// a counter track in Perfetto).
type Sample struct {
	Proc  int
	Name  string
	T     int64
	Value float64
}

// Recorder accumulates a run's timeline. All methods are safe for
// concurrent use and on a nil receiver (no-ops), which is the
// zero-overhead fast path for un-observed runs.
type Recorder struct {
	mu       sync.Mutex
	spans    []Span
	instants []Instant
	samples  []Sample
	tracks   map[int]string
}

// NewRecorder returns an empty timeline recorder.
func NewRecorder() *Recorder {
	return &Recorder{tracks: map[int]string{}}
}

// SetTrack names a track (processor id, or NetworkTrack).
func (r *Recorder) SetTrack(proc int, name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.tracks[proc] = name
	r.mu.Unlock()
}

// Span records a closed activity interval [t0, t1] on a track.
// Zero-length spans are kept (they still mark an occurrence), but
// callers on hot paths typically skip them.
func (r *Recorder) Span(proc int, kind string, t0, t1 int64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = append(r.spans, Span{Proc: proc, Kind: kind, T0: t0, T1: t1, Labels: labels})
	r.mu.Unlock()
}

// Instant records a point event on a track.
func (r *Recorder) Instant(proc int, name string, t int64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.instants = append(r.instants, Instant{Proc: proc, Name: name, T: t, Labels: labels})
	r.mu.Unlock()
}

// Sample records one value of a per-track counter (e.g. queue depth).
func (r *Recorder) Sample(proc int, name string, t int64, value float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.samples = append(r.samples, Sample{Proc: proc, Name: name, T: t, Value: value})
	r.mu.Unlock()
}

// Spans returns a copy of the recorded spans.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Instants returns a copy of the recorded instant events.
func (r *Recorder) Instants() []Instant {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Instant, len(r.instants))
	copy(out, r.instants)
	return out
}

// SpanTotal sums the duration of spans on processor tracks (proc >= 0),
// optionally restricted to one kind (empty kind means all). For a
// simulated run this equals the simulator's total busy time.
func (r *Recorder) SpanTotal(kind string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, s := range r.spans {
		if s.Proc < 0 {
			continue
		}
		if kind != "" && s.Kind != kind {
			continue
		}
		total += s.T1 - s.T0
	}
	return total
}

// sortLabels orders labels by key for deterministic export.
func sortLabels(ls []Label) []Label {
	if len(ls) < 2 {
		return ls
	}
	out := make([]Label, len(ls))
	copy(out, ls)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
