package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry is a metrics registry: named counters, gauges, fixed-bucket
// histograms, and row-oriented series (per-cycle tables). Lookups
// create on first use. All methods — including those of the returned
// instruments — are safe for concurrent use and on nil receivers
// (no-ops / zero values), so instrumented code needs no conditionals.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	series   map[string]*Series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		series:   map[string]*Series{},
	}
}

// Counter returns the named counter, creating it if needed.
func (g *Registry) Counter(name string) *Counter {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.counters[name]
	if !ok {
		c = &Counter{}
		g.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (g *Registry) Gauge(name string) *Gauge {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	v, ok := g.gauges[name]
	if !ok {
		v = &Gauge{}
		g.gauges[name] = v
	}
	return v
}

// Histogram returns the named histogram, creating it with the given
// upper bucket bounds (ascending) if needed; bounds passed on later
// lookups of an existing histogram are ignored.
func (g *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.hists[name]
	if !ok {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		g.hists[name] = h
	}
	return h
}

// Series returns the named series, creating it with the given column
// names if needed.
func (g *Registry) Series(name string, cols ...string) *Series {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	s, ok := g.series[name]
	if !ok {
		c := make([]string, len(cols))
		copy(c, cols)
		s = &Series{cols: c}
		g.series[name] = s
	}
	return s
}

// LookupSeries returns the named series, or nil if it was never
// created.
func (g *Registry) LookupSeries(name string) *Series {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.series[name]
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets: counts[i] is the
// number of observations <= bounds[i], with one overflow bucket.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64
	count  int64
	sum    float64
	max    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.count++
	h.sum += v
	if h.count == 1 || v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Snapshot returns the bucket bounds, per-bucket counts (with the
// trailing overflow bucket), total count, sum, and maximum.
func (h *Histogram) Snapshot() (bounds []float64, counts []int64, count int64, sum, max float64) {
	if h == nil {
		return nil, nil, 0, 0, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds = append([]float64(nil), h.bounds...)
	counts = append([]int64(nil), h.counts...)
	return bounds, counts, h.count, h.sum, h.max
}

// Series is a named table of float rows (e.g. one row per MRA cycle).
type Series struct {
	mu   sync.Mutex
	cols []string
	rows [][]float64
}

// Append adds one row; short rows are zero-padded to the column count.
func (s *Series) Append(row ...float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	r := make([]float64, len(s.cols))
	copy(r, row)
	s.rows = append(s.rows, r)
	s.mu.Unlock()
}

// Cols returns the column names.
func (s *Series) Cols() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.cols...)
}

// Rows returns a copy of the rows.
func (s *Series) Rows() [][]float64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]float64, len(s.rows))
	for i, r := range s.rows {
		out[i] = append([]float64(nil), r...)
	}
	return out
}

// formatFloat renders a float deterministically (shortest round-trip
// form, 'g' style — the same bytes on every run and platform).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteCSV exports the registry deterministically: a fixed header,
// sections in fixed kind order (counter, gauge, histogram, series),
// names sorted within each kind, and histogram/series keys in their
// natural order. Two exports of identically-populated registries are
// byte-for-byte equal.
//
// Schema: `kind,name,key,value` where key is empty for counters and
// gauges, `le=<bound>`/`le=+Inf`/`count`/`sum`/`max` for histograms,
// and `<row>/<column>` for series.
func (g *Registry) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("kind,name,key,value\n"); err != nil {
		return err
	}
	if g != nil {
		g.mu.Lock()
		defer g.mu.Unlock()
		for _, name := range sortedKeys(g.counters) {
			fmt.Fprintf(bw, "counter,%s,,%d\n", name, g.counters[name].Value())
		}
		for _, name := range sortedKeys(g.gauges) {
			fmt.Fprintf(bw, "gauge,%s,,%s\n", name, formatFloat(g.gauges[name].Value()))
		}
		for _, name := range sortedKeys(g.hists) {
			bounds, counts, count, sum, max := g.hists[name].Snapshot()
			for i, b := range bounds {
				fmt.Fprintf(bw, "histogram,%s,le=%s,%d\n", name, formatFloat(b), counts[i])
			}
			fmt.Fprintf(bw, "histogram,%s,le=+Inf,%d\n", name, counts[len(bounds)])
			fmt.Fprintf(bw, "histogram,%s,count,%d\n", name, count)
			fmt.Fprintf(bw, "histogram,%s,sum,%s\n", name, formatFloat(sum))
			fmt.Fprintf(bw, "histogram,%s,max,%s\n", name, formatFloat(max))
		}
		for _, name := range sortedKeys(g.series) {
			s := g.series[name]
			cols := s.Cols()
			for ri, row := range s.Rows() {
				for ci, col := range cols {
					fmt.Fprintf(bw, "series,%s,%d/%s,%s\n", name, ri, col, formatFloat(row[ci]))
				}
			}
		}
	}
	return bw.Flush()
}

// snapshotJSON is the JSON export shape (field order fixed by the
// struct definitions, so output is deterministic).
type snapshotJSON struct {
	Counters []counterJSON `json:"counters"`
	Gauges   []gaugeJSON   `json:"gauges"`
	Hists    []histJSON    `json:"histograms"`
	Series   []seriesJSON  `json:"series"`
}

type counterJSON struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

type gaugeJSON struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

type histJSON struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Max    float64   `json:"max"`
}

type seriesJSON struct {
	Name string      `json:"name"`
	Cols []string    `json:"cols"`
	Rows [][]float64 `json:"rows"`
}

// snapshot builds the export shape under the registry lock.
func (g *Registry) snapshot() snapshotJSON {
	out := snapshotJSON{
		Counters: []counterJSON{},
		Gauges:   []gaugeJSON{},
		Hists:    []histJSON{},
		Series:   []seriesJSON{},
	}
	if g == nil {
		return out
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, name := range sortedKeys(g.counters) {
		out.Counters = append(out.Counters, counterJSON{name, g.counters[name].Value()})
	}
	for _, name := range sortedKeys(g.gauges) {
		out.Gauges = append(out.Gauges, gaugeJSON{name, g.gauges[name].Value()})
	}
	for _, name := range sortedKeys(g.hists) {
		bounds, counts, count, sum, max := g.hists[name].Snapshot()
		out.Hists = append(out.Hists, histJSON{name, bounds, counts, count, sum, max})
	}
	for _, name := range sortedKeys(g.series) {
		s := g.series[name]
		out.Series = append(out.Series, seriesJSON{name, s.Cols(), s.Rows()})
	}
	return out
}

// WriteJSON exports the registry as JSON with the same determinism
// guarantees as WriteCSV.
func (g *Registry) WriteJSON(w io.Writer) error {
	return writeJSON(w, g.snapshot())
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
