package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// populate fills a registry; insertion order differs by variant to
// prove exports do not depend on it.
func populate(g *Registry, reversed bool) {
	values := map[string]int64{"a/count": 11, "z/count": 2, "m/count": 3}
	names := []string{"a/count", "z/count", "m/count"}
	if reversed {
		names = []string{"m/count", "z/count", "a/count"}
	}
	for _, n := range names {
		g.Counter(n).Add(values[n])
	}
	g.Gauge("util").Set(0.53125)
	g.Gauge("makespan_us").Set(1234.5)
	h := g.Histogram("gaps", 10, 100, 1000)
	for _, v := range []float64{1, 15, 15, 99, 5000} {
		h.Observe(v)
	}
	s := g.Series("cycles", "activations", "messages")
	s.Append(10, 4)
	s.Append(7, 2)
}

// TestCSVDeterministic checks byte-for-byte equality of two exports of
// identically-populated registries built in different orders.
func TestCSVDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	ga, gb := NewRegistry(), NewRegistry()
	populate(ga, false)
	populate(gb, true)
	if err := ga.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := gb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("CSV export depends on population order:\n--- a ---\n%s--- b ---\n%s", a.String(), b.String())
	}
	for _, want := range []string{
		"kind,name,key,value\n",
		"counter,a/count,,11\n",
		"histogram,gaps,le=10,1\n",
		"histogram,gaps,le=100,3\n",
		"histogram,gaps,le=+Inf,1\n",
		"histogram,gaps,count,5\n",
		"histogram,gaps,max,5000\n",
		"series,cycles,0/activations,10\n",
		"series,cycles,1/messages,2\n",
	} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("CSV missing %q:\n%s", want, a.String())
		}
	}

	var ja, jb bytes.Buffer
	if err := ga.WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := gb.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if ja.String() != jb.String() {
		t.Error("JSON export depends on population order")
	}
	var doc snapshotJSON
	if err := json.Unmarshal(ja.Bytes(), &doc); err != nil {
		t.Fatalf("JSON export invalid: %v", err)
	}
	if len(doc.Counters) != 3 || len(doc.Hists) != 1 || len(doc.Series) != 1 {
		t.Errorf("JSON export shape: %+v", doc)
	}
}

// TestNilRegistry exercises the nil fast path on the registry and on
// every instrument it hands out.
func TestNilRegistry(t *testing.T) {
	var g *Registry
	g.Counter("c").Inc()
	g.Gauge("g").Set(1)
	g.Histogram("h", 1, 2).Observe(1)
	g.Series("s", "x").Append(1)
	if g.Counter("c").Value() != 0 || g.Gauge("g").Value() != 0 {
		t.Error("nil instruments returned values")
	}
	if g.LookupSeries("s") != nil {
		t.Error("nil registry returned a series")
	}
	var buf bytes.Buffer
	if err := g.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "kind,name,key,value\n" {
		t.Errorf("nil CSV = %q", buf.String())
	}
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	g := NewRegistry()
	h := g.Histogram("h", 100, 10, 1) // unsorted bounds are sorted
	for _, v := range []float64{0, 1, 2, 10, 11, 1000} {
		h.Observe(v)
	}
	bounds, counts, count, sum, max := h.Snapshot()
	if len(bounds) != 3 || bounds[0] != 1 || bounds[2] != 100 {
		t.Fatalf("bounds = %v", bounds)
	}
	// <=1: {0,1}; <=10: {2,10}; <=100: {11}; overflow: {1000}
	want := []int64{2, 2, 1, 1}
	for i, c := range counts {
		if c != want[i] {
			t.Errorf("counts[%d] = %d, want %d (all: %v)", i, c, want[i], counts)
		}
	}
	if count != 6 || sum != 1024 || max != 1000 {
		t.Errorf("count=%d sum=%v max=%v", count, sum, max)
	}
}

func TestSeriesPadding(t *testing.T) {
	g := NewRegistry()
	s := g.Series("s", "a", "b", "c")
	s.Append(1)
	rows := s.Rows()
	if len(rows) != 1 || len(rows[0]) != 3 || rows[0][0] != 1 || rows[0][2] != 0 {
		t.Errorf("rows = %v", rows)
	}
}
