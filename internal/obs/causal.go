package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync/atomic"
)

// Causal observability: per-worker lock-free bounded event rings, the
// substrate for reconstructing per-message causality from a real
// parallel run. Where the Recorder above captures a wall-clock
// *timeline* (spans on tracks), the CausalRecorder captures the
// *dependency structure*: sequence-stamped send/recv/handle/flush
// events carrying bucket, cycle, and batch ids, from which
// internal/analysis stitches a happens-before DAG and extracts the
// measured critical path — the measured counterpart of the simulated
// cost model in internal/simnet.
//
// Design constraints, in order:
//
//   - The disabled path (nil *CausalRecorder / nil *TrackRecorder) is
//     zero allocations and a single pointer comparison per event —
//     pinned by a testing.AllocsPerRun regression test.
//   - The enabled path is allocation-free too: each track's ring is a
//     pre-allocated power-of-two buffer of fixed-size value events;
//     recording is one index mask, one struct store, one increment.
//   - Rings are single-producer: each runtime goroutine writes only
//     its own track, so no atomics or locks appear on the hot path.
//     Snapshot/Dump are only legal at quiescence (between match
//     phases, or after Close) — exactly when post-mortem dumps and
//     model-vs-measured reports run.
//   - Retention is bounded (flight-recorder semantics): rings keep the
//     last ringCap events per track and the recorder keeps the last
//     retainCycles per-cycle aggregate records; a dump after a failure
//     contains the recent past, not the whole run.

// EventKind enumerates causal event kinds.
type EventKind uint8

const (
	// EvSend marks a coalesced message batch leaving a track. Dst is
	// the destination track (BroadcastDst for a cycle broadcast),
	// Batch the stamp the receiver's EvRecv will carry, Count the
	// number of messages in the batch.
	EvSend EventKind = iota
	// EvRecv marks a drained batch contribution: one event per
	// contributing send stamp, carrying the sender's Batch id — the
	// cross-track happens-before edge.
	EvRecv
	// EvHandle marks one node activation performed on the track.
	// Bucket is its hash bucket, Depth its position in the cycle's
	// dependency chain (roots are 1), Count the number of successor
	// activations it generated (its fan-out).
	EvHandle
	// EvFlush marks an end-of-handling coalesced flush; Count is the
	// number of messages shipped across all destinations.
	EvFlush
	// EvCycleBegin / EvCycleEnd bracket one match phase on the control
	// track.
	EvCycleBegin
	EvCycleEnd
)

var eventKindNames = [...]string{"send", "recv", "handle", "flush", "cycle-begin", "cycle-end"}

// String names the kind.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// BroadcastDst is the EvSend Dst value of a cycle broadcast (one send
// stamped into every worker's mailbox).
const BroadcastDst int32 = -1

// NoValue marks an unused int32 event field (Src, Dst, Bucket).
const NoValue int32 = -3

// CausalEvent is one fixed-size, pointer-free ring entry.
type CausalEvent struct {
	// Seq is the per-track sequence number (0-based, monotonically
	// increasing over the track's whole history, including events the
	// bounded ring has since evicted).
	Seq uint64
	// TS is nanoseconds since the owning runtime's epoch. Handle
	// events reuse their turn's drain timestamp (per-activation clock
	// reads would dominate the cost of small activations).
	TS int64
	// Cycle is the 1-based match-phase number.
	Cycle int32
	// Batch is the send/recv stamp joining the two ends of a message
	// batch (0 = unstamped).
	Batch int32
	// Src / Dst are track ids (NoValue when not applicable;
	// BroadcastDst for broadcast sends).
	Src, Dst int32
	// Bucket is the activation's hash bucket (EvHandle; NoValue
	// otherwise).
	Bucket int32
	// Depth is the activation's dependency depth within its cycle
	// (EvHandle; roots are 1).
	Depth int32
	// Count is the batch size (send/recv/flush) or fan-out (handle).
	Count int32
	Kind  EventKind
}

// CycleAgg aggregates one track's activity during one cycle. Unlike
// ring events, aggregates are complete: they survive ring eviction, so
// per-cycle totals stay exact on cross-product cycles that overflow
// the bounded rings.
type CycleAgg struct {
	// Handles counts node activations performed.
	Handles int64 `json:"handles"`
	// Sends / Recvs count messages (not batches) sent and received.
	Sends int64 `json:"sends"`
	Recvs int64 `json:"recvs"`
	// Flushes counts coalesced flushes that shipped at least one
	// message.
	Flushes int64 `json:"flushes"`
	// MaxDepth is the deepest dependency chain observed: the track's
	// contribution to the cycle's measured critical path.
	MaxDepth int32 `json:"max_depth"`
}

// add folds o into a.
func (a *CycleAgg) add(o CycleAgg) {
	a.Handles += o.Handles
	a.Sends += o.Sends
	a.Recvs += o.Recvs
	a.Flushes += o.Flushes
	if o.MaxDepth > a.MaxDepth {
		a.MaxDepth = o.MaxDepth
	}
}

// CycleRecord is the committed aggregate of one cycle across tracks.
type CycleRecord struct {
	// Cycle is the 1-based match-phase number.
	Cycle int32 `json:"cycle"`
	// WallNS is the cycle's wall-clock duration on the control track.
	WallNS int64 `json:"wall_ns"`
	// PerTrack holds one aggregate per track (workers first, control
	// last).
	PerTrack []CycleAgg `json:"per_track"`
}

// Total folds the per-track aggregates.
func (c *CycleRecord) Total() CycleAgg {
	var t CycleAgg
	for _, a := range c.PerTrack {
		t.add(a)
	}
	return t
}

// TrackRecorder is one track's event ring plus its current-cycle
// aggregate and cumulative per-bucket activation counters. Exactly one
// goroutine may record into a TrackRecorder; all methods are safe on a
// nil receiver (the zero-overhead disabled path).
type TrackRecorder struct {
	buf  []CausalEvent // power-of-two ring
	mask uint64
	seq  uint64 // events ever recorded; next event's Seq

	agg     CycleAgg
	buckets []int64 // cumulative handles per bucket

	name string
}

// record appends one event, evicting the oldest when full.
func (t *TrackRecorder) record(ev CausalEvent) {
	ev.Seq = t.seq
	t.buf[t.seq&t.mask] = ev
	t.seq++
}

// Send records a coalesced batch departure.
func (t *TrackRecorder) Send(ts int64, cycle, batch, dst, count int32) {
	if t == nil {
		return
	}
	t.agg.Sends += int64(count)
	t.record(CausalEvent{Kind: EvSend, TS: ts, Cycle: cycle, Batch: batch, Src: NoValue, Dst: dst, Bucket: NoValue, Count: count})
}

// Recv records one contributing send stamp of a drained batch.
func (t *TrackRecorder) Recv(ts int64, cycle, batch, src, count int32) {
	if t == nil {
		return
	}
	t.agg.Recvs += int64(count)
	t.record(CausalEvent{Kind: EvRecv, TS: ts, Cycle: cycle, Batch: batch, Src: src, Dst: NoValue, Bucket: NoValue, Count: count})
}

// Handle records one node activation with its bucket, dependency
// depth, and fan-out.
func (t *TrackRecorder) Handle(ts int64, cycle, bucket, depth, fanout int32) {
	if t == nil {
		return
	}
	t.agg.Handles++
	if depth > t.agg.MaxDepth {
		t.agg.MaxDepth = depth
	}
	if int(bucket) < len(t.buckets) && bucket >= 0 {
		t.buckets[bucket]++
	}
	t.record(CausalEvent{Kind: EvHandle, TS: ts, Cycle: cycle, Batch: 0, Src: NoValue, Dst: NoValue, Bucket: bucket, Depth: depth, Count: fanout})
}

// MergeRemote folds a remotely-measured per-turn aggregate into the
// track's current cycle. A multi-process runtime measures handles,
// flushes, and dependency depth on the worker process's side of the
// wire and ships only the totals home — no ring events survive the
// transport — so the control-side conn reader (the track's single
// producer) merges them here and per-cycle aggregates stay exact.
func (t *TrackRecorder) MergeRemote(handles, flushes int64, maxDepth int32) {
	if t == nil {
		return
	}
	t.agg.Handles += handles
	t.agg.Flushes += flushes
	if maxDepth > t.agg.MaxDepth {
		t.agg.MaxDepth = maxDepth
	}
}

// Flush records a non-empty coalesced flush of count messages.
func (t *TrackRecorder) Flush(ts int64, cycle, count int32) {
	if t == nil {
		return
	}
	t.agg.Flushes++
	t.record(CausalEvent{Kind: EvFlush, TS: ts, Cycle: cycle, Src: NoValue, Dst: NoValue, Bucket: NoValue, Count: count})
}

// events returns the retained events, oldest first. Caller must hold
// quiescence.
func (t *TrackRecorder) events() []CausalEvent {
	n := t.seq
	if n > uint64(len(t.buf)) {
		n = uint64(len(t.buf))
	}
	out := make([]CausalEvent, 0, n)
	for s := t.seq - n; s < t.seq; s++ {
		out = append(out, t.buf[s&t.mask])
	}
	return out
}

// CausalRecorder owns one TrackRecorder per runtime goroutine (workers
// first, control last) plus the bounded per-cycle aggregate history.
// Nil-receiver methods no-op, so an un-observed runtime pays only nil
// checks.
type CausalRecorder struct {
	tracks   []TrackRecorder
	nbuckets int

	// cycles is a bounded ring of committed CycleRecords (the last
	// retainCycles cycles).
	cycles    []CycleRecord
	cycleSeq  int // records ever committed
	openCycle int32
	openTS    int64

	batchSeq atomic.Int32
}

// Default sizing: rings hold the last 8Ki events per track (~400 KiB),
// aggregates the last 1024 cycles.
const (
	DefaultRingCap      = 8192
	DefaultRetainCycles = 1024
)

// NewCausalRecorder creates a recorder with `tracks` event rings of
// ringCap entries each (rounded up to a power of two; 0 means
// DefaultRingCap), retaining aggregates for the last retainCycles
// cycles (0 means DefaultRetainCycles). nbuckets sizes the cumulative
// per-bucket activation counters (0 disables them).
func NewCausalRecorder(tracks, ringCap, retainCycles, nbuckets int) *CausalRecorder {
	if tracks <= 0 {
		panic(fmt.Sprintf("obs: NewCausalRecorder tracks = %d", tracks))
	}
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	size := 1
	for size < ringCap {
		size *= 2
	}
	if retainCycles <= 0 {
		retainCycles = DefaultRetainCycles
	}
	c := &CausalRecorder{
		tracks:   make([]TrackRecorder, tracks),
		nbuckets: nbuckets,
		cycles:   make([]CycleRecord, 0, retainCycles),
	}
	for i := range c.tracks {
		t := &c.tracks[i]
		t.buf = make([]CausalEvent, size)
		t.mask = uint64(size - 1)
		t.name = fmt.Sprintf("track %d", i)
		if nbuckets > 0 {
			t.buckets = make([]int64, nbuckets)
		}
	}
	return c
}

// Tracks returns the number of tracks (0 on nil).
func (c *CausalRecorder) Tracks() int {
	if c == nil {
		return 0
	}
	return len(c.tracks)
}

// SetTrackName names a track for dumps.
func (c *CausalRecorder) SetTrackName(i int, name string) {
	if c == nil {
		return
	}
	c.tracks[i].name = name
}

// Track returns track i's recorder, or nil on a nil receiver — so a
// worker caches the result once and every event costs one nil check.
func (c *CausalRecorder) Track(i int) *TrackRecorder {
	if c == nil {
		return nil
	}
	return &c.tracks[i]
}

// NextBatch allocates a fresh batch stamp (stamps start at 1; 0 means
// unstamped). Safe for concurrent use — senders on different tracks
// allocate stamps independently.
func (c *CausalRecorder) NextBatch() int32 {
	if c == nil {
		return 0
	}
	return c.batchSeq.Add(1)
}

// BeginCycle opens a cycle on the control (last) track. Only legal at
// quiescence.
func (c *CausalRecorder) BeginCycle(cycle int32, ts int64) {
	if c == nil {
		return
	}
	c.openCycle, c.openTS = cycle, ts
	ctl := &c.tracks[len(c.tracks)-1]
	ctl.record(CausalEvent{Kind: EvCycleBegin, TS: ts, Cycle: cycle, Src: NoValue, Dst: NoValue, Bucket: NoValue})
}

// EndCycle closes the open cycle: it records EvCycleEnd, collects every
// track's current-cycle aggregate into a committed CycleRecord, and
// resets the aggregates for the next cycle. Only legal at quiescence
// (all tracks' writers parked), which the runtime guarantees by calling
// it after termination detection.
func (c *CausalRecorder) EndCycle(cycle int32, ts int64) {
	if c == nil {
		return
	}
	ctl := &c.tracks[len(c.tracks)-1]
	ctl.record(CausalEvent{Kind: EvCycleEnd, TS: ts, Cycle: cycle, Src: NoValue, Dst: NoValue, Bucket: NoValue})
	rec := CycleRecord{Cycle: cycle, WallNS: ts - c.openTS, PerTrack: make([]CycleAgg, len(c.tracks))}
	for i := range c.tracks {
		rec.PerTrack[i] = c.tracks[i].agg
		c.tracks[i].agg = CycleAgg{}
	}
	if len(c.cycles) < cap(c.cycles) {
		c.cycles = append(c.cycles, rec)
	} else {
		c.cycles[c.cycleSeq%cap(c.cycles)] = rec
	}
	c.cycleSeq++
}

// CycleRecords returns the retained per-cycle aggregates, oldest
// first. Only legal at quiescence.
func (c *CausalRecorder) CycleRecords() []CycleRecord {
	if c == nil {
		return nil
	}
	n := len(c.cycles)
	out := make([]CycleRecord, 0, n)
	if c.cycleSeq <= cap(c.cycles) {
		return append(out, c.cycles...)
	}
	head := c.cycleSeq % cap(c.cycles)
	out = append(out, c.cycles[head:]...)
	out = append(out, c.cycles[:head]...)
	return out
}

// BucketLoad is one cumulative per-bucket activation count.
type BucketLoad struct {
	Bucket int   `json:"bucket"`
	Count  int64 `json:"count"`
}

// TrackDump is one track's retained state.
type TrackDump struct {
	Name string `json:"name"`
	// Total counts events ever recorded; Dropped is how many the
	// bounded ring has evicted (Total - len(Events)).
	Total   uint64        `json:"total"`
	Dropped uint64        `json:"dropped"`
	Events  []CausalEvent `json:"events"`
	// BucketLoads are the cumulative non-zero per-bucket activation
	// counts, ascending by bucket — the hot-bucket series the adaptive
	// repartitioner consumes.
	BucketLoads []BucketLoad `json:"bucket_loads,omitempty"`
}

// FlightDump is a post-mortem snapshot of the recorder: the last-N
// events per track plus the retained per-cycle aggregates.
type FlightDump struct {
	NBuckets int           `json:"nbuckets"`
	Tracks   []TrackDump   `json:"tracks"`
	Cycles   []CycleRecord `json:"cycles"`
}

// Dump snapshots the recorder. Only legal at quiescence: between match
// phases, or after the owning runtime closed — which is exactly when
// post-mortem analysis runs. Nil receivers return nil.
func (c *CausalRecorder) Dump() *FlightDump {
	if c == nil {
		return nil
	}
	d := &FlightDump{NBuckets: c.nbuckets, Cycles: c.CycleRecords()}
	for i := range c.tracks {
		t := &c.tracks[i]
		events := t.events()
		td := TrackDump{
			Name:    t.name,
			Total:   t.seq,
			Dropped: t.seq - uint64(len(events)),
			Events:  events,
		}
		for b, n := range t.buckets {
			if n > 0 {
				td.BucketLoads = append(td.BucketLoads, BucketLoad{Bucket: b, Count: n})
			}
		}
		d.Tracks = append(d.Tracks, td)
	}
	return d
}

// WriteJSON exports the dump (deterministic field order; events are in
// ring order, tracks in track order).
func (d *FlightDump) WriteJSON(w io.Writer) error {
	return writeJSON(w, d)
}

// WriteChromeTrace exports the dump as Chrome trace-event JSON with
// flow arrows: every retained event becomes a slice on its track, and
// each send/recv pair sharing a batch stamp is connected by a flow
// ("s"/"f" events keyed by the stamp), so Perfetto renders the causal
// DAG's cross-worker edges as arrows. Deterministic for a given dump.
func (d *FlightDump) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[` + "\n"); err != nil {
		return err
	}
	var lines []string
	lines = append(lines, `{"name":"process_name","ph":"M","pid":0,"args":{"name":"mpcrete-causal"}}`)
	for tid, t := range d.Tracks {
		lines = append(lines, fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":%s}}`,
			tid, strconv.Quote(t.Name)))
	}

	type ev struct {
		ts   int64
		tid  int
		seq  uint64
		line string
	}
	var evs []ev
	// Only draw a flow when both ends of the stamp survive in the
	// retained windows; a dangling arrow renders as clutter.
	sendRetained := map[int32]bool{}
	recvRetained := map[int32]bool{}
	for _, t := range d.Tracks {
		for _, e := range t.Events {
			switch e.Kind {
			case EvSend:
				if e.Batch != 0 {
					sendRetained[e.Batch] = true
				}
			case EvRecv:
				if e.Batch != 0 {
					recvRetained[e.Batch] = true
				}
			}
		}
	}
	for tid, t := range d.Tracks {
		for _, e := range t.Events {
			args := fmt.Sprintf(`,"args":{"seq":%d,"cycle":%d,"batch":%d,"bucket":%d,"depth":%d,"count":%d}`,
				e.Seq, e.Cycle, e.Batch, e.Bucket, e.Depth, e.Count)
			line := fmt.Sprintf(`{"name":%s,"cat":"causal","ph":"X","ts":%s,"dur":0,"pid":0,"tid":%d%s}`,
				strconv.Quote(e.Kind.String()), usec(e.TS), tid, args)
			evs = append(evs, ev{ts: e.TS, tid: tid, seq: e.Seq, line: line})
			if e.Batch != 0 && sendRetained[e.Batch] && recvRetained[e.Batch] {
				switch e.Kind {
				case EvSend:
					evs = append(evs, ev{ts: e.TS, tid: tid, seq: e.Seq, line: fmt.Sprintf(
						`{"name":"batch","cat":"flow","ph":"s","id":%d,"ts":%s,"pid":0,"tid":%d}`, e.Batch, usec(e.TS), tid)})
				case EvRecv:
					evs = append(evs, ev{ts: e.TS, tid: tid, seq: e.Seq, line: fmt.Sprintf(
						`{"name":"batch","cat":"flow","ph":"f","bp":"e","id":%d,"ts":%s,"pid":0,"tid":%d}`, e.Batch, usec(e.TS), tid)})
				}
			}
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		if a.tid != b.tid {
			return a.tid < b.tid
		}
		return a.seq < b.seq
	})
	for _, e := range evs {
		lines = append(lines, e.line)
	}
	for i, l := range lines {
		sep := ","
		if i == len(lines)-1 {
			sep = ""
		}
		if _, err := bw.WriteString(l + sep + "\n"); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString(`],"displayTimeUnit":"ms"}` + "\n"); err != nil {
		return err
	}
	return bw.Flush()
}
