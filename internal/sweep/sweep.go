// Package sweep is the concurrent engine behind the paper's
// evaluation grids. The experiments of Section 5 are cross-products —
// sections × processor counts × overhead settings × partition
// strategies × design variants — and every figure used to replay its
// grid strictly sequentially. A sweep takes a declarative Spec,
// expands it to the cross-product of core.Config runs, executes the
// points on a GOMAXPROCS-bounded worker pool, and aggregates the
// results deterministically: cells come back in expansion order, no
// matter which worker finished first.
//
// Repeated points — the shared one-processor baselines behind every
// speedup figure, and proc-count points reused across figures — are
// memoized in a content-addressed cache keyed by (trace name,
// core.Config.Fingerprint), so each distinct simulation runs once per
// process. A panicking point reports an error in its own cell instead
// of killing the sweep.
package sweep

import (
	"fmt"

	"mpcrete/internal/core"
	"mpcrete/internal/sched"
	"mpcrete/internal/trace"
)

// Variant is one ablation toggle of a sweep: a display name plus a
// config mutation (nil Mutate is the unmodified mapping).
type Variant struct {
	Name   string
	Mutate func(*core.Config)
}

// Spec declares an experiment grid. Every listed axis multiplies the
// run count; a nil axis contributes a single default element. The
// expansion order is fixed: traces (outermost), then variants, then
// overheads, then strategies, then processor counts (innermost) — the
// order the paper's tables group their rows in.
type Spec struct {
	// Name labels the sweep in progress metrics.
	Name string
	// Traces are the workload sections to replay.
	Traces []*trace.Trace
	// Procs are the match-processor counts (partition slots).
	Procs []int
	// Overheads are the Table 5-1 message-processing settings; nil
	// means the zero-overhead machine.
	Overheads []core.OverheadSetting
	// Strategies are the bucket-distribution policies; nil means the
	// simulator's round-robin default. A sched.PerCycleStrategy is
	// applied through Config.PerCycle (the off-line oracle), a
	// sched.RebalanceStrategy through Config.Partition plus
	// Config.Rebalance (the online adaptive policy), any other
	// strategy through Config.Partition.
	Strategies []sched.Strategy
	// Variants are ablation toggles applied after Configure.
	Variants []Variant
	// Configure, when non-nil, mutates every point's base config
	// before the variant's mutation.
	Configure func(*core.Config)
	// Baseline also runs each point's one-processor zero-overhead
	// baseline (core.Baseline) and reports the speedup ratio; the
	// baseline runs are memoized like any other point, so the shared
	// denominator of a whole figure simulates once.
	Baseline bool
}

// Key identifies one cell of a sweep.
type Key struct {
	Trace    string `json:"trace"`
	Procs    int    `json:"procs"`
	Overhead string `json:"overhead,omitempty"`
	Strategy string `json:"strategy,omitempty"`
	Variant  string `json:"variant,omitempty"`
}

func (k Key) String() string {
	s := fmt.Sprintf("%s/p%d", k.Trace, k.Procs)
	for _, part := range []string{k.Overhead, k.Strategy, k.Variant} {
		if part != "" {
			s += "/" + part
		}
	}
	return s
}

// group is the cell's series identity: the key minus the innermost
// (processor-count) axis.
func (k Key) group() Key { k.Procs = 0; return k }

// Point is one expanded run of a sweep.
type Point struct {
	Key    Key
	Trace  *trace.Trace
	Config core.Config
}

// Cell is one aggregated result. Err carries the point's failure
// (validation error or recovered panic) without aborting its
// siblings.
type Cell struct {
	Key     Key          `json:"key"`
	Speedup float64      `json:"speedup,omitempty"`
	Result  *core.Result `json:"result,omitempty"`
	Base    *core.Result `json:"base,omitempty"`
	Err     string       `json:"err,omitempty"`
}

// Results holds a sweep's cells in expansion order.
type Results struct {
	Spec  string `json:"spec,omitempty"`
	Cells []Cell `json:"cells"`
}

// Err returns the first cell error, if any.
func (r *Results) Err() error {
	for _, c := range r.Cells {
		if c.Err != "" {
			return fmt.Errorf("sweep: %s: %s", c.Key, c.Err)
		}
	}
	return nil
}

// Select returns the cells whose key satisfies pred, in order.
func (r *Results) Select(pred func(Key) bool) []Cell {
	var out []Cell
	for _, c := range r.Cells {
		if pred(c.Key) {
			out = append(out, c)
		}
	}
	return out
}

// Groups splits the ordered cells into runs sharing everything but
// the processor count — one slice per speedup curve.
func (r *Results) Groups() [][]Cell {
	var out [][]Cell
	for _, c := range r.Cells {
		if n := len(out); n > 0 && out[n-1][0].Key.group() == c.Key.group() {
			out[n-1] = append(out[n-1], c)
			continue
		}
		out = append(out, []Cell{c})
	}
	return out
}

// Expand materializes the spec's cross-product in its deterministic
// order. Strategies are applied here (once per trace/proc pair), so
// the engine's workers receive fully-formed configs.
func (s Spec) Expand() ([]Point, error) {
	if len(s.Traces) == 0 {
		return nil, fmt.Errorf("sweep: spec %q has no traces", s.Name)
	}
	if len(s.Procs) == 0 {
		return nil, fmt.Errorf("sweep: spec %q has no processor counts", s.Name)
	}
	overheads := s.Overheads
	if len(overheads) == 0 {
		overheads = []core.OverheadSetting{{}}
	}
	strategies := s.Strategies
	if len(strategies) == 0 {
		strategies = []sched.Strategy{nil}
	}
	variants := s.Variants
	if len(variants) == 0 {
		variants = []Variant{{}}
	}
	pts := make([]Point, 0, len(s.Traces)*len(variants)*len(overheads)*len(strategies)*len(s.Procs))
	for _, tr := range s.Traces {
		var load []map[int]int // computed lazily, once per trace
		for _, v := range variants {
			for _, ov := range overheads {
				for _, st := range strategies {
					for _, p := range s.Procs {
						cfg := core.NewConfig(p, core.WithOverhead(ov))
						if s.Configure != nil {
							s.Configure(&cfg)
						}
						if v.Mutate != nil {
							v.Mutate(&cfg)
						}
						key := Key{Trace: tr.Name, Procs: p, Overhead: cfg.Overhead.Name, Variant: v.Name}
						if st != nil {
							if load == nil {
								load = tr.BucketLoad(false)
							}
							switch v := st.(type) {
							case sched.PerCycleStrategy:
								cfg.PerCycle = v.AssignPerCycle(load, tr.NBuckets, p)
							case sched.RebalanceStrategy:
								// Online policy: static starting assignment
								// plus live rebalance knobs. The knobs enter
								// Config.Fingerprint, so adaptive points
								// never collide with the static point they
								// start from in the memoization cache.
								cfg.Partition = st.Assign(load, tr.NBuckets, p)
								cfg.Rebalance = v.RebalanceConfig()
							default:
								cfg.Partition = st.Assign(load, tr.NBuckets, p)
							}
							key.Strategy = st.Name()
						}
						pts = append(pts, Point{Key: key, Trace: tr, Config: cfg})
					}
				}
			}
		}
	}
	return pts, nil
}
