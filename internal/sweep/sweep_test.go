package sweep

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"

	"mpcrete/internal/core"
	"mpcrete/internal/obs"
	"mpcrete/internal/sched"
	"mpcrete/internal/trace"
)

// synthTrace builds a small deterministic trace: `cycles` cycles of
// `roots` root activations each, every third root fanning out two
// successors, spread over nbuckets buckets.
func synthTrace(name string, nbuckets, cycles, roots int) *trace.Trace {
	tr := &trace.Trace{Name: name, NBuckets: nbuckets}
	for c := 0; c < cycles; c++ {
		cy := &trace.Cycle{Changes: 1}
		for r := 0; r < roots; r++ {
			side := trace.RightSide
			if (c+r)%2 == 0 {
				side = trace.LeftSide
			}
			a := &trace.Activation{Node: r, Side: side, Bucket: (c*roots + r) % nbuckets}
			if r%3 == 0 {
				a.Children = []*trace.Activation{
					{Node: 100 + r, Side: trace.LeftSide, Bucket: (r * 5) % nbuckets, Insts: 1},
					{Node: 200 + r, Side: trace.RightSide, Bucket: (r*7 + c) % nbuckets},
				}
			}
			cy.Roots = append(cy.Roots, a)
		}
		tr.Cycles = append(tr.Cycles, cy)
	}
	if err := tr.Validate(); err != nil {
		panic(err)
	}
	return tr
}

// fullSpec exercises every axis: two traces, four proc counts, two
// overheads, two strategies (one per-cycle), two variants, baselines.
func fullSpec() Spec {
	return Spec{
		Name:      "test-grid",
		Traces:    []*trace.Trace{synthTrace("alpha", 16, 3, 9), synthTrace("beta", 8, 2, 5)},
		Procs:     []int{1, 2, 4, 8},
		Overheads: core.OverheadRuns()[:2],
		Strategies: []sched.Strategy{
			sched.RoundRobinStrategy{},
			sched.GreedyPerCycleStrategy{},
		},
		Variants: []Variant{
			{Name: "plain"},
			{Name: "sw-bcast", Mutate: func(c *core.Config) { c.SoftwareBroadcast = true }},
		},
		Baseline: true,
	}
}

// TestParallelMatchesSequential is the parity guarantee: the
// concurrent engine's aggregated results are byte-identical to the
// sequential reference run of the same spec. Run under -race in CI.
func TestParallelMatchesSequential(t *testing.T) {
	spec := fullSpec()
	par, err := New(Workers(8)).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := New().RunSequential(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := par.Err(); err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.MarshalIndent(par, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.MarshalIndent(seq, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		gl := strings.Split(string(gotJSON), "\n")
		wl := strings.Split(string(wantJSON), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("parallel and sequential results diverge at line %d:\n par: %s\n seq: %s", i+1, gl[i], wl[i])
			}
		}
		t.Fatal("parallel and sequential results differ in length")
	}
	wantCells := 2 * 4 * 2 * 2 * 2
	if len(par.Cells) != wantCells {
		t.Errorf("cells = %d, want %d", len(par.Cells), wantCells)
	}
}

// TestExpansionOrderDeterministic pins the axis nesting: traces,
// variants, overheads, strategies, procs (innermost).
func TestExpansionOrderDeterministic(t *testing.T) {
	spec := fullSpec()
	pts, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := Key{Trace: "alpha", Procs: 1, Overhead: "run1", Strategy: "round-robin", Variant: "plain"}
	if pts[0].Key != want {
		t.Errorf("first point = %+v, want %+v", pts[0].Key, want)
	}
	last := Key{Trace: "beta", Procs: 8, Overhead: "run2", Strategy: "greedy-per-cycle", Variant: "sw-bcast"}
	if pts[len(pts)-1].Key != last {
		t.Errorf("last point = %+v, want %+v", pts[len(pts)-1].Key, last)
	}
	// Procs vary fastest.
	if pts[1].Key.Procs != 2 || pts[1].Key.Trace != "alpha" {
		t.Errorf("second point = %+v, want alpha/p2", pts[1].Key)
	}
}

// TestMemoizedPointSimulatesOnce proves the cache contract: a point
// requested many times — concurrently, across duplicate axes, and
// across separate Run calls on one engine — is simulated exactly once,
// and the shared baseline behind a speedup sweep runs once in total.
func TestMemoizedPointSimulatesOnce(t *testing.T) {
	var calls atomic.Int64
	eng := New(Workers(8), WithSimulate(func(tr *trace.Trace, cfg core.Config) (*core.Result, error) {
		calls.Add(1)
		return core.Simulate(tr, cfg)
	}))
	tr := synthTrace("gamma", 16, 3, 9)
	spec := Spec{
		Name:   "memo",
		Traces: []*trace.Trace{tr},
		Procs:  []int{2, 4, 8},
		// run1 and the zero-value overhead are the same machine
		// (0/0 µs); the fingerprint must dedupe them.
		Overheads: []core.OverheadSetting{{}, core.OverheadRuns()[0]},
		Baseline:  true,
	}
	res, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	// 3 distinct proc counts + 1 shared baseline. The six requested
	// cells (3 procs × 2 equivalent overheads) collapse to three
	// simulations; every cell's baseline is the same run.
	if got := calls.Load(); got != 4 {
		t.Errorf("simulations = %d, want 4 (3 unique points + 1 shared baseline)", got)
	}
	if got := eng.Simulations(); got != 4 {
		t.Errorf("Simulations() = %d, want 4", got)
	}

	// A second run of the same spec is served entirely from cache.
	if _, err := eng.Run(spec); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("simulations after re-run = %d, want 4 (all cached)", got)
	}

	// The duplicated overhead rows report identical result pointers.
	if res.Cells[0].Result != res.Cells[3].Result {
		t.Error("equivalent overhead cells did not share the memoized result")
	}
}

// TestPanicIsolation pins per-run panic containment: a crashing point
// fails its own cell, sibling points complete.
func TestPanicIsolation(t *testing.T) {
	eng := New(Workers(4), WithSimulate(func(tr *trace.Trace, cfg core.Config) (*core.Result, error) {
		if cfg.MatchProcs == 4 {
			panic("injected failure")
		}
		return core.Simulate(tr, cfg)
	}))
	spec := Spec{
		Name:   "panic",
		Traces: []*trace.Trace{synthTrace("delta", 8, 2, 5)},
		Procs:  []int{2, 4, 8},
	}
	res, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells[1].Err == "" || !strings.Contains(res.Cells[1].Err, "injected failure") {
		t.Errorf("panicking cell error = %q, want injected failure", res.Cells[1].Err)
	}
	if res.Cells[0].Err != "" || res.Cells[2].Err != "" {
		t.Errorf("sibling cells failed: %q / %q", res.Cells[0].Err, res.Cells[2].Err)
	}
	if res.Cells[0].Result == nil || res.Cells[2].Result == nil {
		t.Error("sibling cells missing results")
	}
	if res.Err() == nil {
		t.Error("Results.Err() did not surface the failed cell")
	}
}

// TestValidationErrorLandsInCell pins that a bad point (caught by
// core's up-front Validate) reports in its own cell too.
func TestValidationErrorLandsInCell(t *testing.T) {
	tr := synthTrace("epsilon", 8, 2, 5)
	res, err := New().Run(Spec{
		Name:   "invalid",
		Traces: []*trace.Trace{tr},
		Procs:  []int{2},
		Variants: []Variant{{
			Name:   "bad-partition",
			Mutate: func(c *core.Config) { c.Partition = make(sched.Partition, 3) },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells[0].Err == "" {
		t.Error("invalid config did not error its cell")
	}
}

// TestProgressMetrics checks the obs-registry reporting contract.
func TestProgressMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	eng := New(Workers(4), Metrics(reg))
	spec := Spec{
		Name:     "progress",
		Traces:   []*trace.Trace{synthTrace("zeta", 8, 2, 5)},
		Procs:    []int{1, 2, 4},
		Baseline: true,
	}
	if _, err := eng.Run(spec); err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("sweep/points_total").Value(); got != 3 {
		t.Errorf("points_total = %v, want 3", got)
	}
	if got := reg.Gauge("sweep/points_done").Value(); got != 3 {
		t.Errorf("points_done = %v, want 3", got)
	}
	if got := reg.Gauge("sweep/eta_ms").Value(); got != 0 {
		t.Errorf("eta_ms at completion = %v, want 0", got)
	}
	// p=1 with zero overhead IS the baseline: its fingerprint matches,
	// so at least one of the three baseline requests hits the cache.
	if got := reg.Counter("sweep/cache_hits").Value(); got < 2 {
		t.Errorf("cache_hits = %v, want >= 2", got)
	}
	if got := reg.Counter("sweep/simulations").Value(); got != int64(eng.Simulations()) {
		t.Errorf("simulations counter %v != engine count %d", got, eng.Simulations())
	}
}

// TestGroups checks the series-grouping helper experiments build
// their curves with.
func TestGroups(t *testing.T) {
	res, err := New(Workers(4)).Run(Spec{
		Name:      "groups",
		Traces:    []*trace.Trace{synthTrace("eta", 8, 2, 5)},
		Procs:     []int{1, 2},
		Overheads: core.OverheadRuns()[:3],
		Baseline:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	groups := res.Groups()
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3 (one per overhead)", len(groups))
	}
	for _, g := range groups {
		if len(g) != 2 {
			t.Errorf("group %s has %d cells, want 2", g[0].Key, len(g))
		}
	}
	if groups[1][0].Key.Overhead != "run2" {
		t.Errorf("second group overhead = %q, want run2", groups[1][0].Key.Overhead)
	}
}
