package sweep

import (
	"testing"

	"mpcrete/internal/sched"
	"mpcrete/internal/trace"
)

// rebalanceTrace is a persistently skewed trace: two hot buckets that
// round-robin co-locates on one worker, so the adaptive policy has
// something real to fix.
func rebalanceTrace(cycles int) *trace.Trace {
	tr := &trace.Trace{Name: "sweep-skewed", NBuckets: 16}
	for c := 0; c < cycles; c++ {
		cy := &trace.Cycle{Changes: 1}
		for _, hot := range []int{1, 9} {
			for i := 0; i < 25; i++ {
				cy.Roots = append(cy.Roots, &trace.Activation{
					Node: 10 + i%7, Side: trace.LeftSide, Tag: trace.AddTag, Bucket: hot,
				})
			}
		}
		for b := 0; b < tr.NBuckets; b++ {
			cy.Roots = append(cy.Roots, &trace.Activation{
				Node: 50 + b, Side: trace.RightSide, Tag: trace.AddTag, Bucket: b,
			})
		}
		tr.Cycles = append(tr.Cycles, cy)
	}
	return tr
}

// TestAdaptivePointDoesNotCollideInCache is the memoization-collision
// regression for the rebalance knobs. The adaptive strategy's static
// assignment is exactly round-robin, so before Config.Fingerprint
// included Config.Rebalance the two points shared a cache key and the
// engine served the static result for the adaptive cell.
func TestAdaptivePointDoesNotCollideInCache(t *testing.T) {
	e := New(Workers(2))
	res, err := e.Run(Spec{
		Name:       "adaptive-collision",
		Traces:     []*trace.Trace{rebalanceTrace(40)},
		Procs:      []int{4},
		Strategies: []sched.Strategy{sched.RoundRobinStrategy{}, sched.AdaptiveStrategy{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if got := e.Simulations(); got != 2 {
		t.Errorf("engine ran %d simulations for 2 distinct points (cache collision?)", got)
	}
	static, adaptive := res.Cells[0], res.Cells[1]
	if static.Key.Strategy != "round-robin" || adaptive.Key.Strategy != "adaptive" {
		t.Fatalf("unexpected cell order: %v, %v", static.Key, adaptive.Key)
	}
	if adaptive.Result.Migrations == 0 {
		t.Error("adaptive cell recorded no migrations — served the static result?")
	}
	if static.Result.Migrations != 0 {
		t.Error("static cell recorded migrations — served the adaptive result?")
	}
	if adaptive.Result.Makespan == static.Result.Makespan {
		t.Error("adaptive and static cells have identical makespans on a skewed trace")
	}
}

// TestAdaptiveKnobsDistinctInCache pins that two adaptive points with
// different knob settings simulate separately too.
func TestAdaptiveKnobsDistinctInCache(t *testing.T) {
	e := New(Workers(1))
	res, err := e.Run(Spec{
		Name:   "adaptive-knobs",
		Traces: []*trace.Trace{rebalanceTrace(20)},
		Procs:  []int{4},
		Strategies: []sched.Strategy{
			sched.AdaptiveStrategy{},
			sched.AdaptiveStrategy{Rebalance: sched.Rebalance{Threshold: 100, MinInterval: 1}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if got := e.Simulations(); got != 2 {
		t.Errorf("engine ran %d simulations for 2 distinct knob settings", got)
	}
	// Threshold 100 never triggers; the default knobs do.
	if res.Cells[1].Result.Migrations != 0 {
		t.Errorf("threshold-100 point migrated %d times", res.Cells[1].Result.Migrations)
	}
	if res.Cells[0].Result.Migrations == 0 {
		t.Error("default-knob point never migrated on a skewed trace")
	}
}
