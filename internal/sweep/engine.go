package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mpcrete/internal/core"
	"mpcrete/internal/obs"
	"mpcrete/internal/trace"
)

// SimulateFunc is the engine's pluggable simulation entry point
// (core.Simulate by default; tests substitute counting shims).
type SimulateFunc func(*trace.Trace, core.Config) (*core.Result, error)

// Engine executes sweeps on a bounded worker pool with a process-wide
// content-addressed result cache.
type Engine struct {
	workers  int
	metrics  *obs.Registry
	simulate SimulateFunc
	sims     atomic.Int64

	mu    sync.Mutex
	cache map[cacheKey]*cacheEntry
}

type cacheKey struct {
	trace  string
	config string
}

// cacheEntry is a singleflight slot: the first goroutine to claim the
// key runs the simulation inside once; latecomers block on it and
// share the result.
type cacheEntry struct {
	once sync.Once
	res  *core.Result
	err  error
}

// Option configures an Engine (New).
type Option func(*Engine)

// Workers bounds the pool; the default is runtime.GOMAXPROCS(0).
func Workers(n int) Option { return func(e *Engine) { e.workers = n } }

// Metrics attaches a registry for progress/ETA reporting: the engine
// publishes sweep/points_total, sweep/points_done, sweep/cache_hits,
// sweep/simulations, sweep/errors, sweep/elapsed_ms and sweep/eta_ms
// as the sweep advances.
func Metrics(reg *obs.Registry) Option { return func(e *Engine) { e.metrics = reg } }

// WithSimulate overrides the simulation function (tests).
func WithSimulate(fn SimulateFunc) Option { return func(e *Engine) { e.simulate = fn } }

// New returns an engine with an empty cache.
func New(opts ...Option) *Engine {
	e := &Engine{
		workers:  runtime.GOMAXPROCS(0),
		simulate: core.Simulate,
		cache:    map[cacheKey]*cacheEntry{},
	}
	for _, o := range opts {
		o(e)
	}
	if e.workers < 1 {
		e.workers = 1
	}
	return e
}

// Simulations reports how many simulations the engine has actually
// executed (cache misses); the gap to the number of requested points
// is the memoization saving.
func (e *Engine) Simulations() int64 { return e.sims.Load() }

// Reset drops the memoized results (keeping the simulation counter),
// so the next Run is a cold sweep. Benchmarks use it to measure the
// full simulate-everything cost on a long-lived engine; long-running
// hosts can use it to release result memory between unrelated sweeps.
// It must not be called concurrently with Run.
func (e *Engine) Reset() {
	e.mu.Lock()
	e.cache = map[cacheKey]*cacheEntry{}
	e.mu.Unlock()
}

// Run expands the spec and executes it on the worker pool. The
// returned cells are in expansion order regardless of completion
// order. Individual point failures (including panics inside the
// simulator) land in their cell's Err; Run itself errors only on an
// empty spec.
func (e *Engine) Run(spec Spec) (*Results, error) {
	pts, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	cells := make([]Cell, len(pts))
	prog := e.startProgress(len(pts))
	workers := e.workers
	if workers > len(pts) {
		workers = len(pts)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				cells[i] = e.runPoint(spec, pts[i], e.cached)
				prog.step(cells[i].Err != "")
			}
		}()
	}
	for i := range pts {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return &Results{Spec: spec.Name, Cells: cells}, nil
}

// RunSequential executes the expansion in order on the calling
// goroutine, bypassing the cache entirely — the reference
// implementation the concurrent path is tested (and benchmarked)
// against.
func (e *Engine) RunSequential(spec Spec) (*Results, error) {
	pts, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	cells := make([]Cell, len(pts))
	prog := e.startProgress(len(pts))
	uncached := func(tr *trace.Trace, cfg core.Config) (*core.Result, error) {
		e.sims.Add(1)
		return e.simulateSafe(tr, cfg)
	}
	for i, pt := range pts {
		cells[i] = e.runPoint(spec, pt, uncached)
		prog.step(cells[i].Err != "")
	}
	return &Results{Spec: spec.Name, Cells: cells}, nil
}

// runPoint executes one point through the given run function,
// computing the speedup against the memoized baseline when asked.
func (e *Engine) runPoint(spec Spec, pt Point, run SimulateFunc) Cell {
	cell := Cell{Key: pt.Key}
	res, err := run(pt.Trace, pt.Config)
	if err != nil {
		cell.Err = err.Error()
		return cell
	}
	cell.Result = res
	if spec.Baseline {
		base, err := run(pt.Trace, core.Baseline(pt.Config))
		if err != nil {
			cell.Err = err.Error()
			return cell
		}
		cell.Base = base
		cell.Speedup = 1
		if res.Makespan != 0 {
			cell.Speedup = float64(base.Makespan) / float64(res.Makespan)
		}
	}
	return cell
}

// cached runs one simulation through the content-addressed cache:
// the first request for a (trace, config-fingerprint) pair simulates,
// every later one — concurrent or not — shares the stored result.
func (e *Engine) cached(tr *trace.Trace, cfg core.Config) (*core.Result, error) {
	key := cacheKey{trace: tr.Name, config: cfg.Fingerprint(tr)}
	e.mu.Lock()
	ent, hit := e.cache[key]
	if !hit {
		ent = &cacheEntry{}
		e.cache[key] = ent
	}
	e.mu.Unlock()
	if hit {
		e.metrics.Counter("sweep/cache_hits").Inc()
	}
	ent.once.Do(func() {
		e.sims.Add(1)
		e.metrics.Counter("sweep/simulations").Inc()
		ent.res, ent.err = e.simulateSafe(tr, cfg)
	})
	return ent.res, ent.err
}

// simulateSafe isolates panics: a crashing point becomes that cell's
// error instead of taking down the whole sweep.
func (e *Engine) simulateSafe(tr *trace.Trace, cfg core.Config) (res *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("sweep: panic in %s: %v", tr.Name, r)
		}
	}()
	return e.simulate(tr, cfg)
}

// progress publishes completion and ETA through the obs registry.
type progress struct {
	reg   *obs.Registry
	total int
	done  atomic.Int64
	start time.Time
}

func (e *Engine) startProgress(total int) *progress {
	p := &progress{reg: e.metrics, total: total, start: time.Now()}
	p.reg.Gauge("sweep/points_total").Set(float64(total))
	p.reg.Gauge("sweep/points_done").Set(0)
	return p
}

func (p *progress) step(failed bool) {
	if failed {
		p.reg.Counter("sweep/errors").Inc()
	}
	done := p.done.Add(1)
	if p.reg == nil {
		return
	}
	elapsed := time.Since(p.start)
	p.reg.Gauge("sweep/points_done").Set(float64(done))
	p.reg.Gauge("sweep/elapsed_ms").Set(float64(elapsed.Milliseconds()))
	if remaining := int64(p.total) - done; remaining > 0 && done > 0 {
		eta := time.Duration(int64(elapsed) / done * remaining)
		p.reg.Gauge("sweep/eta_ms").Set(float64(eta.Milliseconds()))
	} else {
		p.reg.Gauge("sweep/eta_ms").Set(0)
	}
}

// std is the shared process-wide engine: experiments run through it
// so points reused across figures (shared baselines, repeated
// proc-count columns) simulate exactly once per process.
var std = New()

// Run executes the spec on the shared process-wide engine.
func Run(spec Spec) (*Results, error) { return std.Run(spec) }

// Std returns the shared engine (for attaching progress metrics or
// inspecting its simulation count).
func Std() *Engine { return std }
