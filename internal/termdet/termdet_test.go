package termdet

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestCounterBasic(t *testing.T) {
	c := NewCounter()
	c.Add(2)
	done := make(chan struct{})
	go func() {
		c.Wait()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Wait returned with pending work")
	case <-time.After(10 * time.Millisecond):
	}
	c.Done()
	c.Done()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Wait did not return at zero")
	}
	if c.Pending() != 0 {
		t.Errorf("pending = %d", c.Pending())
	}
}

func TestCounterReusableAcrossPhases(t *testing.T) {
	c := NewCounter()
	for phase := 0; phase < 3; phase++ {
		c.Add(5)
		var wg sync.WaitGroup
		for i := 0; i < 5; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c.Done()
			}()
		}
		c.Wait()
		wg.Wait()
	}
}

func TestCounterNegativePanics(t *testing.T) {
	c := NewCounter()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative count")
		}
	}()
	c.Done()
}

func TestCounterConcurrentWorkExpansion(t *testing.T) {
	// Work that spawns more work: the counter must not hit zero early.
	c := NewCounter()
	var processed int64
	var mu sync.Mutex
	var spawn func(depth int)
	spawn = func(depth int) {
		defer c.Done()
		mu.Lock()
		processed++
		mu.Unlock()
		if depth < 4 {
			for i := 0; i < 3; i++ {
				c.Add(1) // register BEFORE making visible
				go spawn(depth + 1)
			}
		}
	}
	c.Add(1)
	go spawn(0)
	c.Wait()
	want := int64(1 + 3 + 9 + 27 + 81)
	mu.Lock()
	got := processed
	mu.Unlock()
	if got != want {
		t.Errorf("processed = %d, want %d", got, want)
	}
}

func TestFourCounterDetectsTermination(t *testing.T) {
	// Two workers exchanging a fixed number of messages.
	counts := []*ChannelCounts{{}, {}}
	det := NewFourCounter(counts)

	chA, chB := make(chan int, 100), make(chan int, 100)
	var wg sync.WaitGroup
	worker := func(me *ChannelCounts, in <-chan int, out chan<- int) {
		defer wg.Done()
		for v := range in {
			if v > 0 {
				me.IncSent()
				out <- v - 1
			}
			me.IncRecv()
		}
	}
	wg.Add(2)
	go worker(counts[0], chA, chB)
	go worker(counts[1], chB, chA)

	counts[0].IncSent() // initial injection counts as a send
	chB <- 50

	det.WaitTerminated(func() { runtime.Gosched() })
	s, r := det.Poll()
	if s != r {
		t.Errorf("after termination sent=%d recv=%d", s, r)
	}
	if s != 51 { // initial + 50 forwards
		t.Errorf("sent = %d, want 51", s)
	}
	close(chA)
	close(chB)
	wg.Wait()
}

func TestFourCounterCheckRequiresStability(t *testing.T) {
	counts := []*ChannelCounts{{}}
	det := NewFourCounter(counts)
	counts[0].IncSent()
	counts[0].IncRecv()
	// First check: totals 1,1 but previous round was (-1,-1): not done.
	s, r, done := det.Check(-1, -1)
	if done {
		t.Error("single round must not prove termination")
	}
	// Second identical round: done.
	if _, _, done = det.Check(s, r); !done {
		t.Error("two stable rounds with S==R should prove termination")
	}
	// Activity between rounds resets the proof.
	counts[0].IncSent()
	if _, _, done = det.Check(s, r); done {
		t.Error("in-flight message must block termination")
	}
}
