// Package termdet implements distributed termination detection for
// the parallel match runtime. The paper explicitly did not simulate
// termination detection and deferred scheme selection to future work
// (Section 4, citing Mattern 1987); this package supplies two schemes
// for the real goroutine implementation:
//
//   - Counter: an atomic outstanding-work counter (credit counting):
//     every unit of work is registered before it is made visible and
//     deregistered when fully processed, so reaching zero proves
//     global quiescence. Cheap and exact, at the cost of a shared
//     atomic.
//   - FourCounter: Mattern's four-counter method: a detector polls
//     per-worker (sent, received) counters; two consecutive stable
//     rounds with equal totals prove termination with no shared
//     state on the work path.
package termdet

import (
	"sync"
	"sync/atomic"
)

// Counter tracks outstanding units of work. Add must be called before
// the work becomes visible to another goroutine (before the send), and
// Done after it has been fully processed (after any work it spawned
// has itself been Added). Wait blocks until the count reaches zero.
//
// Unlike sync.WaitGroup, Counter is reusable across phases and allows
// Add after the count has transiently reached zero only between
// Wait-delimited phases (enforced by the caller's protocol).
type Counter struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int64
	err  error
}

// NewCounter returns a zero counter.
func NewCounter() *Counter {
	c := &Counter{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Add registers delta units of outstanding work.
func (c *Counter) Add(delta int) {
	c.mu.Lock()
	c.n += int64(delta)
	if c.n < 0 {
		c.mu.Unlock()
		panic("termdet: negative outstanding-work count")
	}
	if c.n == 0 {
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// Done deregisters one unit.
func (c *Counter) Done() { c.Add(-1) }

// Wait blocks until the outstanding count is zero or Fail has been
// called (quiescence can never be reached once work is lost; check Err
// after Wait when failure is possible).
func (c *Counter) Wait() {
	c.mu.Lock()
	for c.n != 0 && c.err == nil {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// Fail records a fatal error — work has been lost and quiescence is
// unreachable — and wakes every waiter. The first error wins.
func (c *Counter) Fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Err reports the error recorded by Fail, if any.
func (c *Counter) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Pending returns the current outstanding count (racy; diagnostics
// only).
func (c *Counter) Pending() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// ChannelCounts holds one worker's message counters for the
// four-counter method. Workers increment Sent before each send and
// Recv after fully processing each received message (including any
// sends the processing performed).
type ChannelCounts struct {
	sent atomic.Int64
	recv atomic.Int64
}

// IncSent records one message sent. Call BEFORE the send.
func (c *ChannelCounts) IncSent() { c.sent.Add(1) }

// IncRecv records one message fully processed. Call AFTER processing.
func (c *ChannelCounts) IncRecv() { c.recv.Add(1) }

// AddSent records n messages sent. Call BEFORE the sends become
// visible — a batching sender accounts a whole coalesced flush with one
// atomic instead of one per message.
func (c *ChannelCounts) AddSent(n int) { c.sent.Add(int64(n)) }

// AddRecv records n messages fully processed. Call AFTER the whole
// batch has been processed (including any sends the processing
// performed).
func (c *ChannelCounts) AddRecv(n int) { c.recv.Add(int64(n)) }

// Snapshot reads the counters.
func (c *ChannelCounts) Snapshot() (sent, recv int64) {
	// Read recv before sent: overcounting sent relative to recv is the
	// conservative direction for the detector.
	r := c.recv.Load()
	s := c.sent.Load()
	return s, r
}

// FourCounter is Mattern's four-counter termination detector over a
// set of workers exposing ChannelCounts. Poll gathers one global
// snapshot; Terminated runs poll rounds until two consecutive rounds
// are identical with sent == recv, which proves that no message was in
// flight between the rounds and no worker was active.
type FourCounter struct {
	workers []*ChannelCounts
}

// NewFourCounter builds a detector over the given workers' counters.
func NewFourCounter(workers []*ChannelCounts) *FourCounter {
	return &FourCounter{workers: workers}
}

// Poll sums one snapshot round across workers.
func (f *FourCounter) Poll() (sent, recv int64) {
	for _, w := range f.workers {
		s, r := w.Snapshot()
		sent += s
		recv += r
	}
	return sent, recv
}

// Check performs the two-round comparison given the previous round's
// totals: it returns the new round plus whether termination is proven:
// both rounds identical and sent == recv.
func (f *FourCounter) Check(prevSent, prevRecv int64) (sent, recv int64, done bool) {
	sent, recv = f.Poll()
	done = sent == recv && sent == prevSent && recv == prevRecv
	return sent, recv, done
}

// WaitTerminated polls until termination is proven, yielding between
// rounds via the provided function (e.g. runtime.Gosched or a sleep).
// Intended for workloads that are already draining; it spins
// otherwise.
func (f *FourCounter) WaitTerminated(yield func()) {
	prevS, prevR := int64(-1), int64(-1)
	for {
		s, r, done := f.Check(prevS, prevR)
		if done {
			return
		}
		prevS, prevR = s, r
		if yield != nil {
			yield()
		}
	}
}
