package parallel

import (
	"sync"
	"testing"

	"mpcrete/internal/obs"
)

// seqMsg encodes a sequence number in a message's Depth field.
func seqMsg(seq int) Message {
	return Message{Kind: MsgAct, Depth: int32(seq)}
}

func TestMailboxDrainFIFO(t *testing.T) {
	m := newMailbox(nil, false)
	sent, next := 0, 0
	var batch []Message
	// Interleave single pushes, batched pushes, and drains so both the
	// swap path and buffer reuse are exercised with messages pending.
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			m.Push(seqMsg(sent), 0, 0)
			sent++
		}
		var b []Message
		for i := 0; i < 17; i++ {
			b = append(b, seqMsg(sent))
			sent++
		}
		m.PushBatch(b, 0, 0)
		if round%3 != 0 {
			continue // let the queue accumulate across rounds
		}
		var ok bool
		batch, _, ok = m.Drain(batch, nil)
		if !ok {
			t.Fatal("unexpected close")
		}
		for _, msg := range batch {
			if got := int(msg.Depth); got != next {
				t.Fatalf("out of order: got %d want %d", got, next)
			}
			next++
		}
	}
	// Drain the remainder, then observe closure.
	m.Close()
	for next < sent {
		var ok bool
		batch, _, ok = m.Drain(batch, nil)
		if !ok {
			t.Fatalf("closed with %d of %d undelivered", sent-next, sent)
		}
		for _, msg := range batch {
			if got := int(msg.Depth); got != next {
				t.Fatalf("drain out of order: got %d want %d", got, next)
			}
			next++
		}
	}
	if _, _, ok := m.Drain(batch, nil); ok {
		t.Fatal("drain after close and empty should report closed")
	}
}

func TestMailboxPushBatchCopies(t *testing.T) {
	m := newMailbox(nil, false)
	buf := []Message{seqMsg(0), seqMsg(1)}
	m.PushBatch(buf, 0, 0)
	// The sender reuses its buffer immediately, as workers do.
	buf[0] = seqMsg(99)
	buf[1] = seqMsg(99)
	batch, _, ok := m.Drain(nil, nil)
	if !ok || len(batch) != 2 {
		t.Fatalf("drain = %d messages, ok=%v; want 2", len(batch), ok)
	}
	for i, msg := range batch {
		if got := int(msg.Depth); got != i {
			t.Fatalf("message %d overwritten by buffer reuse: seq %d", i, got)
		}
	}
}

// TestMailboxSendAfterCloseDropped is the shutdown-race regression
// test: during Close a straggler worker flushing its coalescing buffer
// can race the mailbox close; such sends must be dropped — not panic —
// and each drop must be visible on the parallel.dropped_post_close
// counter so soak runs can assert it stays zero in normal operation.
func TestMailboxSendAfterCloseDropped(t *testing.T) {
	reg := obs.NewRegistry()
	dropped := reg.Counter("parallel.dropped_post_close")
	m := newMailbox(dropped, false)
	m.Push(Message{Kind: MsgAct}, 0, 0)
	m.Close()
	m.Push(Message{Kind: MsgAct}, 0, 0)  // dropped, no panic
	m.PushBatch([]Message{{}, {}}, 0, 0) // dropped, no panic
	m.PushBatch(nil, 0, 0)               // no-op
	if batch, _, ok := m.Drain(nil, nil); !ok || len(batch) != 1 {
		t.Fatalf("drain = %d messages, ok=%v; want the 1 pre-close message", len(batch), ok)
	}
	if _, _, ok := m.Drain(nil, nil); ok {
		t.Fatal("post-close pushes must not be delivered")
	}
	if got := dropped.Value(); got != 3 {
		t.Fatalf("dropped_post_close = %d, want 3 (one push + two batched)", got)
	}
}

func TestMailboxTryDrain(t *testing.T) {
	m := newMailbox(nil, false)
	if batch, _, ok := m.TryDrain(nil, nil); !ok || len(batch) != 0 {
		t.Fatalf("tryDrain on empty open mailbox = (%d, %v), want (0, true)", len(batch), ok)
	}
	m.Push(Message{Kind: MsgAct}, 0, 0)
	batch, _, ok := m.TryDrain(nil, nil)
	if !ok || len(batch) != 1 {
		t.Fatalf("tryDrain = (%d, %v), want (1, true)", len(batch), ok)
	}
	m.Close()
	if _, _, ok := m.TryDrain(batch, nil); ok {
		t.Fatal("tryDrain on closed empty mailbox must report closure")
	}
}

func TestMailboxConcurrentProducers(t *testing.T) {
	m := newMailbox(nil, false)
	const producers, per, batchLen = 8, 200, 5
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []Message
			for i := 0; i < per; i++ {
				buf = append(buf, Message{Kind: MsgAct})
				if len(buf) == batchLen {
					m.PushBatch(buf, 0, 0)
					buf = buf[:0]
				}
			}
			m.PushBatch(buf, 0, 0)
		}()
	}
	received := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		var batch []Message
		var ok bool
		for received < producers*per {
			if batch, _, ok = m.Drain(batch, nil); !ok {
				return
			}
			received += len(batch)
		}
	}()
	wg.Wait()
	<-done
	if received != producers*per {
		t.Fatalf("received %d of %d", received, producers*per)
	}
}
