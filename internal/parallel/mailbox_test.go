package parallel

import (
	"sync"
	"testing"
)

func TestMailboxFIFO(t *testing.T) {
	m := newMailbox()
	for i := 0; i < 500; i++ {
		m.push(message{kind: msgAct, changes: nil})
	}
	for i := 0; i < 500; i++ {
		if _, ok := m.pop(); !ok {
			t.Fatalf("pop %d failed", i)
		}
	}
	m.close()
	if _, ok := m.pop(); ok {
		t.Fatal("pop after close and drain should report closed")
	}
}

func TestMailboxOrderAcrossCompaction(t *testing.T) {
	m := newMailbox()
	next := 0
	sent := 0
	// Interleave pushes and pops so the compaction path triggers while
	// messages remain queued.
	for round := 0; round < 50; round++ {
		for i := 0; i < 37; i++ {
			msg := message{kind: msgCycle}
			msg.act.Tag = 0
			msg.changes = nil
			msg.migrate = nil
			// Encode a sequence number in an unused field via a
			// one-element slice length trick is ugly; use inject ptr
			// identity instead.
			mi := &migrateIn{}
			msg.inject = mi
			seqOf[mi] = sent
			sent++
			m.push(msg)
		}
		for i := 0; i < 29; i++ {
			msg, ok := m.pop()
			if !ok {
				t.Fatal("unexpected close")
			}
			if got := seqOf[msg.inject]; got != next {
				t.Fatalf("out of order: got %d want %d", got, next)
			}
			next++
		}
	}
	// Drain the remainder.
	for next < sent {
		msg, ok := m.pop()
		if !ok {
			t.Fatal("unexpected close")
		}
		if got := seqOf[msg.inject]; got != next {
			t.Fatalf("drain out of order: got %d want %d", got, next)
		}
		next++
	}
}

var seqOf = map[*migrateIn]int{}

func TestMailboxConcurrentProducers(t *testing.T) {
	m := newMailbox()
	const producers, per = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.push(message{kind: msgAct})
			}
		}()
	}
	received := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for received < producers*per {
			if _, ok := m.pop(); !ok {
				return
			}
			received++
		}
	}()
	wg.Wait()
	<-done
	if received != producers*per {
		t.Fatalf("received %d of %d", received, producers*per)
	}
}
