package parallel

import "mpcrete/internal/obs"

// Transport abstracts the runtime's message plane: who carries a
// Message from a sender to the worker that owns its bucket. The
// in-process double-buffer mailboxes (mailbox.go) are the reference
// implementation; internal/transport adds a TCP length-prefixed-frame
// implementation that ships the same protocol between OS processes.
//
// The contract a Transport must honor, because the runtime's
// correctness arguments are built on it:
//
//   - Per-sender FIFO: messages from one sender to one destination are
//     delivered in send order (add-before-delete ordering of same-token
//     activations relies on this).
//   - Synchronous capture: Push/PushBatch must capture the message and
//     everything it references before returning — after Apply returns,
//     the runtime reuses the cycle packet and the caller may reuse the
//     changes slice, so a transport that defers serialization must copy
//     first.
//   - Termination accounting: the runtime registers work with the
//     termination detector before Push and deregisters it after the
//     batch is processed (Drain + handle). A transport must deliver
//     every accepted message exactly once, or report failure via
//     EndpointOptions.OnError — silently dropping an accepted message
//     leaves the credit counter permanently nonzero and Apply would
//     hang (see Runtime failure handling).
//   - Stamp fidelity: on stamped endpoints the (batch, src) pair given
//     to Push/PushBatch must come back from Drain attached to the same
//     contiguous run of messages, so causal flight records join
//     send->recv edges across the wire.
type Transport interface {
	// Open creates the per-worker endpoints. Endpoint i is worker i's
	// inbox: anyone may push to it; only worker i drains it.
	Open(workers int, opts EndpointOptions) ([]Endpoint, error)
	// Close releases transport-wide resources (listeners, connections).
	// Endpoints are closed individually by the runtime before this.
	Close() error
}

// EndpointOptions configure the endpoints a Transport opens.
type EndpointOptions struct {
	// Dropped counts post-close sends (the parallel.dropped_post_close
	// counter; nil is a no-op). Every implementation must drop-and-count
	// rather than block or panic when pushed after Close.
	Dropped *obs.Counter
	// Stamped enables recv-stamp recording (a causal recorder is
	// attached): Drain must return the (batch, src, count) provenance of
	// each contiguous delivered run.
	Stamped bool
	// OnError, when non-nil, is called (possibly concurrently, possibly
	// more than once) when the transport loses messages it accepted —
	// e.g. a connection broke after Push returned. The runtime uses it
	// to fail the termination detector so Apply surfaces an error
	// instead of hanging.
	OnError func(error)
}

// Endpoint is one worker's inbox. Push/PushBatch never block
// indefinitely on the consumer (the reference implementation is
// unbounded; a wire implementation must buffer on the receive side so
// two workers exchanging cross-product bursts cannot deadlock).
// Drain/TryDrain/Close follow the mailbox semantics documented in
// mailbox.go: drained buffers are donated back, pending messages are
// still delivered after Close, and ok == false means closed and empty.
type Endpoint interface {
	Push(m Message, batch, src int32)
	PushBatch(ms []Message, batch, src int32)
	Drain(buf []Message, sbuf []RecvStamp) (batch []Message, stamps []RecvStamp, ok bool)
	TryDrain(buf []Message, sbuf []RecvStamp) (batch []Message, stamps []RecvStamp, ok bool)
	Close()
}

// RefTransport marks transports that deliver messages by reference
// within one address space. Such transports carry the migration
// protocol (MsgMigrateOut/MsgMigrateIn) for free: the live bucket
// contents travel by pointer.
type RefTransport interface {
	DeliversByReference()
}

// MigrationTransport marks wire transports that can carry the
// migration protocol by value: their codec serializes Message.Moves
// and Message.Inject (bucket contents) across the wire. Every
// RefTransport implicitly carries migration; a transport implementing
// neither interface makes Runtime.Repartition (and therefore
// Options.Rebalance / Options.ForceMigrate) fail.
type MigrationTransport interface {
	CarriesMigration()
}

// NewEndpoint returns one in-process double-buffer mailbox endpoint —
// the unit the reference transport is built from. Wire transports use
// it as their receive-side buffer: an unbounded local queue between
// the connection reader and the draining worker keeps socket
// backpressure from ever deadlocking two workers exchanging
// cross-product bursts.
func NewEndpoint(opts EndpointOptions) Endpoint {
	return newMailbox(opts.Dropped, opts.Stamped)
}

// inProcTransport is the reference Transport: each endpoint is an
// in-process double-buffer mailbox.
type inProcTransport struct{}

// InProc returns the in-process reference transport (the default when
// Options.Transport is nil).
func InProc() Transport { return inProcTransport{} }

func (inProcTransport) Open(workers int, opts EndpointOptions) ([]Endpoint, error) {
	eps := make([]Endpoint, workers)
	for i := range eps {
		eps[i] = newMailbox(opts.Dropped, opts.Stamped)
	}
	return eps, nil
}

func (inProcTransport) Close() error { return nil }

func (inProcTransport) DeliversByReference() {}
