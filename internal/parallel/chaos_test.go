package parallel

import (
	"fmt"
	"math/rand"
	"testing"

	"mpcrete/internal/ops5"
	"mpcrete/internal/rete"
)

// TestChaosParity runs the random add/delete parity check with the
// chaos layer enabled: reordered drains, split turns, deferred
// flushes, and jittered termination detection must leave the netted
// conflict-set trajectory identical to the sequential matcher's. The
// heavyweight many-seed sweep lives in internal/difftest; this is the
// in-package smoke that chaos itself upholds the invariant.
func TestChaosParity(t *testing.T) {
	srcs := []string{
		`(p join (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (halt))`,
		`(p neg (a ^x <v>) -(d ^x <v>) --> (halt))`,
		`(p solo (e ^k 1) --> (halt))`,
	}
	for _, routed := range []bool{false, true} {
		for _, det := range []Detector{CountingDetector, FourCounterDetector} {
			for _, chaosSeed := range []int64{1, 99} {
				t.Run(fmt.Sprintf("routed=%v-det%d-seed%d", routed, det, chaosSeed), func(t *testing.T) {
					net, _ := compileProds(t, srcs...)
					seqNet, _ := compileProds(t, srcs...)
					seq := rete.NewMatcher(seqNet, rete.MatcherOptions{NBuckets: 64})
					rt, err := New(net, Options{
						Workers: 4, NBuckets: 64, Detector: det,
						RouteRoots: routed, ChaosSeed: chaosSeed,
					})
					if err != nil {
						t.Fatal(err)
					}
					defer rt.Close()

					seqCS, parCS := map[string]bool{}, map[string]bool{}
					id := 1
					var live []*ops5.WME
					rng := rand.New(rand.NewSource(chaosSeed * 31))
					for i := 0; i < 50; i++ {
						// Batch a few changes per cycle so same-cycle
						// add+delete transients occur.
						var ch []rete.Change
						for len(ch) < 1+rng.Intn(4) {
							if len(live) > 0 && rng.Intn(3) == 0 {
								j := rng.Intn(len(live))
								ch = append(ch, rete.Change{Tag: rete.Delete, WME: live[j]})
								live = append(live[:j], live[j+1:]...)
							} else {
								class := []string{"a", "b", "c", "d", "e"}[rng.Intn(5)]
								w := ops5.NewWME(class, "x", rng.Intn(3))
								if class == "e" {
									w = ops5.NewWME(class, "k", rng.Intn(3))
								}
								w.ID, w.TimeTag = id, id
								id++
								ch = append(ch, rete.Change{Tag: rete.Add, WME: w})
								live = append(live, w)
							}
						}
						applyDeltas(seqCS, seq.Apply(ch))
						applyDeltas(parCS, rt.Apply(ch))
						if !setsEqual(seqCS, parCS) {
							t.Fatalf("divergence at cycle %d:\nseq: %v\npar: %v", i, seqCS, parCS)
						}
					}
				})
			}
		}
	}
}

// TestChaosCrossProductBurst aims the Tourney pathology at the chaos
// layer: thousands of same-destination activations across split turns
// and deferred flushes must still converge to the exact cross product.
func TestChaosCrossProductBurst(t *testing.T) {
	net, _ := compileProds(t, `(p cross (a ^x <u>) (b ^y <w>) --> (halt))`)
	rt, err := New(net, Options{Workers: 4, NBuckets: 64, ChaosSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	cs := map[string]bool{}
	id := 1
	var changes []rete.Change
	for i := 0; i < 40; i++ {
		w := ops5.NewWME("a", "x", i)
		w.ID, w.TimeTag = id, id
		id++
		changes = append(changes, rete.Change{Tag: rete.Add, WME: w})
		w2 := ops5.NewWME("b", "y", i)
		w2.ID, w2.TimeTag = id, id
		id++
		changes = append(changes, rete.Change{Tag: rete.Add, WME: w2})
	}
	applyDeltas(cs, rt.Apply(changes))
	if len(cs) != 1600 {
		t.Fatalf("cross product = %d, want 1600", len(cs))
	}
}

// TestChaosRepartition exercises the migration barrier under chaotic
// scheduling: carried-over messages stay registered with the work
// counter, so Repartition's quiescence wait must still be a barrier.
func TestChaosRepartition(t *testing.T) {
	net, _ := compileProds(t, `(p j (a ^x <v>) (b ^x <v>) --> (halt))`)
	rt, err := New(net, Options{Workers: 4, NBuckets: 16, ChaosSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	cs := map[string]bool{}
	id := 1
	for round := 0; round < 4; round++ {
		var ch []rete.Change
		for i := 0; i < 10; i++ {
			class := "a"
			if i%2 == 0 {
				class = "b"
			}
			w := ops5.NewWME(class, "x", i/2)
			w.ID, w.TimeTag = id, id
			id++
			ch = append(ch, rete.Change{Tag: rete.Add, WME: w})
		}
		applyDeltas(cs, rt.Apply(ch))
		newPart := make([]int, 16)
		for b := range newPart {
			newPart[b] = (b + round) % 4
		}
		if _, err := rt.Repartition(newPart); err != nil {
			t.Fatal(err)
		}
	}
	// Each round adds 5 a's and 5 b's over x ∈ {0..4}; after r rounds
	// each x value pairs r a's with r b's: 5·r² instantiations.
	if want := 5 * 4 * 4; len(cs) != want {
		t.Fatalf("conflict set = %d, want %d", len(cs), want)
	}
}
