package parallel

import (
	"fmt"
	"math/rand"
	"testing"

	"mpcrete/internal/obs"
	"mpcrete/internal/ops5"
	"mpcrete/internal/rete"
	"mpcrete/internal/sched"
)

// rotatedPartition maps bucket b to worker (b + shift) % workers — the
// deterministic forced-migration schedule: every boundary with a new
// shift moves every bucket to a new owner.
func rotatedPartition(nbuckets, workers, shift int) sched.Partition {
	p := make(sched.Partition, nbuckets)
	for b := range p {
		p[b] = (b + shift) % workers
	}
	return p
}

// TestForcedMigrationParity is the migration metamorphic property: for
// any trajectory of wme changes and any migration schedule, the netted
// conflict-set output must be byte-identical to the static run —
// migration moves state, never match semantics. The schedule here is
// the worst case the hook can express: every bucket changes owner at
// every cycle boundary, so every stored token is extracted, shipped,
// and re-injected between every pair of cycles. Runs under -race in CI.
func TestForcedMigrationParity(t *testing.T) {
	srcs := []string{
		`(p join (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (halt))`,
		`(p neg (a ^x <v>) -(d ^x <v>) --> (halt))`,
		`(p solo (e ^k 1) --> (halt))`,
	}
	for _, workers := range []int{2, 4} {
		for _, routed := range []bool{false, true} {
			t.Run(fmt.Sprintf("w%d-routed=%v", workers, routed), func(t *testing.T) {
				net, _ := compileProds(t, srcs...)
				seqNet, _ := compileProds(t, srcs...)
				seq := rete.NewMatcher(seqNet, rete.MatcherOptions{NBuckets: 64})
				rt, err := New(net, Options{
					Workers: workers, NBuckets: 64, RouteRoots: routed,
					ForceMigrate: func(cycle int) sched.Partition {
						return rotatedPartition(64, workers, cycle)
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				defer rt.Close()

				seqCS, parCS := map[string]bool{}, map[string]bool{}
				id := 1
				cycles := 0
				step := func(tag rete.Tag, w *ops5.WME) {
					ch := []rete.Change{{Tag: tag, WME: w}}
					applyDeltas(seqCS, seq.Apply(ch))
					applyDeltas(parCS, rt.Apply(ch))
					cycles++
					if !setsEqual(seqCS, parCS) {
						t.Fatalf("divergence after %v %v:\nseq: %v\npar: %v", tag, w, seqCS, parCS)
					}
				}
				mk := func(class string, x int) *ops5.WME {
					w := ops5.NewWME(class, "x", x)
					if class == "e" {
						w = ops5.NewWME(class, "k", x)
					}
					w.ID, w.TimeTag = id, id
					id++
					return w
				}
				var live []*ops5.WME
				rng := rand.New(rand.NewSource(23))
				for i := 0; i < 60; i++ {
					if len(live) > 0 && rng.Intn(3) == 0 {
						j := rng.Intn(len(live))
						step(rete.Delete, live[j])
						live = append(live[:j], live[j+1:]...)
					} else {
						w := mk([]string{"a", "b", "c", "d", "e"}[rng.Intn(5)], rng.Intn(3))
						step(rete.Add, w)
						live = append(live, w)
					}
				}
				migs, moved, _ := rt.RebalanceStats()
				if int(migs) != cycles {
					t.Errorf("forced schedule migrated %d times over %d cycles", migs, cycles)
				}
				if moved == 0 {
					t.Error("forced full rotations moved no buckets")
				}
			})
		}
	}
}

// TestAdaptiveRebalanceParity runs the online detector end to end on a
// pathologically bad initial assignment (every bucket on worker 0):
// the balancer must migrate load off the hot worker while the netted
// conflict-set trajectory stays identical to the sequential matcher's.
func TestAdaptiveRebalanceParity(t *testing.T) {
	srcs := []string{`(p j (a ^x <v>) (b ^x <v>) --> (halt))`}
	net, _ := compileProds(t, srcs...)
	seqNet, _ := compileProds(t, srcs...)
	seq := rete.NewMatcher(seqNet, rete.MatcherOptions{NBuckets: 64})
	reg := obs.NewRegistry()
	rt, err := New(net, Options{
		Workers: 4, NBuckets: 64,
		Partition: make(sched.Partition, 64), // everything on worker 0
		Rebalance: sched.Rebalance{Threshold: 1.01, MinInterval: 1},
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Each cycle adds join pairs across eight distinct keys, so eight-
	// plus buckets carry load every cycle — enough structure for an LPT
	// replan to spread them off worker 0.
	seqCS, parCS := map[string]bool{}, map[string]bool{}
	id := 1
	for cycle := 0; cycle < 10; cycle++ {
		var ch []rete.Change
		for x := 0; x < 8; x++ {
			for _, class := range []string{"a", "b"} {
				w := ops5.NewWME(class, "x", x)
				w.ID, w.TimeTag = id, id
				id++
				ch = append(ch, rete.Change{Tag: rete.Add, WME: w})
			}
		}
		applyDeltas(seqCS, seq.Apply(ch))
		applyDeltas(parCS, rt.Apply(ch))
		if !setsEqual(seqCS, parCS) {
			t.Fatalf("divergence at cycle %d:\nseq: %d insts\npar: %d insts", cycle, len(seqCS), len(parCS))
		}
	}
	migs, moved, _ := rt.RebalanceStats()
	if migs == 0 || moved == 0 {
		t.Fatalf("detector never migrated off the hot worker (migrations=%d moved=%d)", migs, moved)
	}
	// The committed partition must actually spread the buckets.
	owners := map[int]bool{}
	for _, o := range rt.opts.Partition {
		owners[o] = true
	}
	if len(owners) < 2 {
		t.Errorf("after rebalancing all buckets still on %d worker(s)", len(owners))
	}
	// And the migrations were published to the obs series.
	s := reg.Series("parallel/rebalance", "cycle", "imbalance", "buckets_moved", "entries_moved", "messages")
	if rows := s.Rows(); len(rows) != int(migs) {
		t.Errorf("rebalance series has %d rows, want %d", len(rows), migs)
	}
}

// TestRebalanceIdleAllocs extends the steady-state O(1)-allocations
// pin to rebalancing enabled-but-idle: the per-bucket load counters,
// the quiescent fold into the balancer, and the unarmed detector run
// every cycle and must add zero allocations to the match path.
func TestRebalanceIdleAllocs(t *testing.T) {
	net, _ := compileProds(t, `(p j (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (halt))`)
	rt, err := New(net, Options{
		Workers: 4, NBuckets: 64,
		// Enabled (counters run, detector evaluated each boundary) but
		// a threshold this workload never reaches, so no plan is built.
		Rebalance: sched.Rebalance{Threshold: 1e6, MinInterval: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	id := 1
	var warm []rete.Change
	for i := 0; i < 8; i++ {
		w := ops5.NewWME("a", "x", i)
		w.ID, w.TimeTag = id, id
		id++
		warm = append(warm, rete.Change{Tag: rete.Add, WME: w})
	}
	rt.Apply(warm)

	bs := make([]*ops5.WME, 8)
	for i := range bs {
		bs[i] = ops5.NewWME("b", "x", i)
		bs[i].ID, bs[i].TimeTag = id, id
		id++
	}
	adds := make([]rete.Change, len(bs))
	dels := make([]rete.Change, len(bs))
	for i, w := range bs {
		adds[i] = rete.Change{Tag: rete.Add, WME: w}
		dels[i] = rete.Change{Tag: rete.Delete, WME: w}
	}
	rt.Apply(adds)
	rt.Apply(dels) // warm the buffers once

	avg := testing.AllocsPerRun(100, func() {
		rt.Apply(adds)
		rt.Apply(dels)
	})
	if avg > 8 {
		t.Errorf("idle-rebalance cycle pair allocates %.1f times, want <= 8 (same pin as TestSteadyStateAllocs)", avg)
	}
	if migs, _, _ := rt.RebalanceStats(); migs != 0 {
		t.Fatalf("idle detector migrated %d times", migs)
	}
}

// opaqueTransport wraps the in-process endpoints but implements
// neither RefTransport nor MigrationTransport — a stand-in for a wire
// transport whose codec cannot carry bucket contents.
type opaqueTransport struct{ inner Transport }

func (o opaqueTransport) Open(workers int, opts EndpointOptions) ([]Endpoint, error) {
	return o.inner.Open(workers, opts)
}
func (o opaqueTransport) Close() error { return o.inner.Close() }

// TestRebalanceRequiresMigratableTransport pins the constructor-time
// refusal: rebalancing (and the forced-migration hook) demand a
// transport that can carry the migration protocol.
func TestRebalanceRequiresMigratableTransport(t *testing.T) {
	net, _ := compileProds(t, `(p j (a ^x 1) --> (halt))`)
	if _, err := New(net, Options{
		Workers:   2,
		Transport: opaqueTransport{InProc()},
		Rebalance: sched.DefaultRebalance(),
	}); err == nil {
		t.Error("Rebalance accepted on a transport that cannot migrate")
	}
	if _, err := New(net, Options{
		Workers:      2,
		Transport:    opaqueTransport{InProc()},
		ForceMigrate: func(int) sched.Partition { return nil },
	}); err == nil {
		t.Error("ForceMigrate accepted on a transport that cannot migrate")
	}
	// Repartition on such a runtime must refuse too.
	rt, err := New(net, Options{Workers: 2, NBuckets: 16, Transport: opaqueTransport{InProc()}})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if _, err := rt.Repartition(rotatedPartition(16, 2, 1)); err == nil {
		t.Error("Repartition accepted on a transport that cannot migrate")
	}
}

// BenchmarkMigration measures the cost of one full-rotation migration
// on a runtime holding resident join state — the per-boundary price
// the adaptive policy pays, isolated from match work.
func BenchmarkMigration(b *testing.B) {
	srcs := `(p j (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (halt))`
	p, err := ops5.ParseProduction(srcs)
	if err != nil {
		b.Fatal(err)
	}
	net, err := rete.Compile([]*ops5.Production{p})
	if err != nil {
		b.Fatal(err)
	}
	rt, err := New(net, Options{Workers: 4, NBuckets: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	var changes []rete.Change
	for i := 1; i <= 200; i++ {
		class := []string{"a", "b"}[i%2]
		w := ops5.NewWME(class, "x", i/2)
		w.ID, w.TimeTag = i, i
		changes = append(changes, rete.Change{Tag: rete.Add, WME: w})
	}
	rt.Apply(changes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Repartition(rotatedPartition(64, 4, i%4+1)); err != nil {
			b.Fatal(err)
		}
	}
}
