package parallel

import (
	"fmt"
	"math/rand"
	"testing"

	"mpcrete/internal/ops5"
	"mpcrete/internal/rete"
)

func compileProds(t *testing.T, srcs ...string) (*rete.Network, []*ops5.Production) {
	t.Helper()
	var prods []*ops5.Production
	for _, src := range srcs {
		p, err := ops5.ParseProduction(src)
		if err != nil {
			t.Fatal(err)
		}
		prods = append(prods, p)
	}
	net, err := rete.Compile(prods)
	if err != nil {
		t.Fatal(err)
	}
	return net, prods
}

// applyDeltas folds conflict-set deltas into a set.
func applyDeltas(cs map[string]bool, deltas []rete.InstChange) {
	for _, ic := range deltas {
		if ic.Tag == rete.Add {
			cs[ic.Key()] = true
		} else {
			delete(cs, ic.Key())
		}
	}
}

func setsEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestParallelMatchesSequentialBlocksLike(t *testing.T) {
	srcs := []string{
		`(p join (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (halt))`,
		`(p neg (a ^x <v>) -(d ^x <v>) --> (halt))`,
		`(p solo (e ^k 1) --> (halt))`,
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, det := range []Detector{CountingDetector, FourCounterDetector} {
			t.Run(fmt.Sprintf("w%d-det%d", workers, det), func(t *testing.T) {
				net, _ := compileProds(t, srcs...)
				seqNet, _ := compileProds(t, srcs...)
				seq := rete.NewMatcher(seqNet, rete.MatcherOptions{NBuckets: 64})
				rt, err := New(net, Options{Workers: workers, NBuckets: 64, Detector: det})
				if err != nil {
					t.Fatal(err)
				}
				defer rt.Close()

				seqCS, parCS := map[string]bool{}, map[string]bool{}
				id := 1
				step := func(tag rete.Tag, w *ops5.WME) {
					ch := []rete.Change{{Tag: tag, WME: w}}
					applyDeltas(seqCS, seq.Apply(ch))
					applyDeltas(parCS, rt.Apply(ch))
					if !setsEqual(seqCS, parCS) {
						t.Fatalf("divergence after %v %v:\nseq: %v\npar: %v", tag, w, seqCS, parCS)
					}
				}
				mk := func(class string, x int) *ops5.WME {
					w := ops5.NewWME(class, "x", x)
					if class == "e" {
						w = ops5.NewWME(class, "k", x)
					}
					w.ID, w.TimeTag = id, id
					id++
					return w
				}
				var live []*ops5.WME
				rng := rand.New(rand.NewSource(17))
				for i := 0; i < 60; i++ {
					if len(live) > 0 && rng.Intn(3) == 0 {
						j := rng.Intn(len(live))
						step(rete.Delete, live[j])
						live = append(live[:j], live[j+1:]...)
					} else {
						w := mk([]string{"a", "b", "c", "d", "e"}[rng.Intn(5)], rng.Intn(3))
						step(rete.Add, w)
						live = append(live, w)
					}
				}
			})
		}
	}
}

// TestRoutedMatchesSequential is the random add/delete parity check of
// TestParallelMatchesSequentialBlocksLike with RouteRoots (Fig 3-2):
// constant tests run once on the control goroutine and root
// activations are hash-routed to their owners. The netted conflict-set
// trajectory must be identical to the sequential matcher's.
func TestRoutedMatchesSequential(t *testing.T) {
	srcs := []string{
		`(p join (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (halt))`,
		`(p neg (a ^x <v>) -(d ^x <v>) --> (halt))`,
		`(p solo (e ^k 1) --> (halt))`,
	}
	for _, workers := range []int{1, 2, 4} {
		for _, det := range []Detector{CountingDetector, FourCounterDetector} {
			t.Run(fmt.Sprintf("w%d-det%d", workers, det), func(t *testing.T) {
				net, _ := compileProds(t, srcs...)
				seqNet, _ := compileProds(t, srcs...)
				seq := rete.NewMatcher(seqNet, rete.MatcherOptions{NBuckets: 64})
				rt, err := New(net, Options{Workers: workers, NBuckets: 64, Detector: det, RouteRoots: true})
				if err != nil {
					t.Fatal(err)
				}
				defer rt.Close()

				seqCS, parCS := map[string]bool{}, map[string]bool{}
				id := 1
				step := func(tag rete.Tag, w *ops5.WME) {
					ch := []rete.Change{{Tag: tag, WME: w}}
					applyDeltas(seqCS, seq.Apply(ch))
					applyDeltas(parCS, rt.Apply(ch))
					if !setsEqual(seqCS, parCS) {
						t.Fatalf("divergence after %v %v:\nseq: %v\npar: %v", tag, w, seqCS, parCS)
					}
				}
				mk := func(class string, x int) *ops5.WME {
					w := ops5.NewWME(class, "x", x)
					if class == "e" {
						w = ops5.NewWME(class, "k", x)
					}
					w.ID, w.TimeTag = id, id
					id++
					return w
				}
				var live []*ops5.WME
				rng := rand.New(rand.NewSource(41))
				for i := 0; i < 60; i++ {
					if len(live) > 0 && rng.Intn(3) == 0 {
						j := rng.Intn(len(live))
						step(rete.Delete, live[j])
						live = append(live[:j], live[j+1:]...)
					} else {
						w := mk([]string{"a", "b", "c", "d", "e"}[rng.Intn(5)], rng.Intn(3))
						step(rete.Add, w)
						live = append(live, w)
					}
				}
			})
		}
	}
}

// TestRoutedCrossProductBurst runs the Tourney pathology in routed
// mode: every root activation funnels through the control goroutine's
// constant tests and the cross-product tokens still converge.
func TestRoutedCrossProductBurst(t *testing.T) {
	net, _ := compileProds(t, `(p cross (a ^x <u>) (b ^y <w>) --> (halt))`)
	rt, err := New(net, Options{Workers: 4, NBuckets: 64, RouteRoots: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	cs := map[string]bool{}
	id := 1
	var changes []rete.Change
	for i := 0; i < 40; i++ {
		w := ops5.NewWME("a", "x", i)
		w.ID, w.TimeTag = id, id
		id++
		changes = append(changes, rete.Change{Tag: rete.Add, WME: w})
		w2 := ops5.NewWME("b", "y", i)
		w2.ID, w2.TimeTag = id, id
		id++
		changes = append(changes, rete.Change{Tag: rete.Add, WME: w2})
	}
	applyDeltas(cs, rt.Apply(changes))
	if len(cs) != 1600 {
		t.Fatalf("cross product = %d, want 1600", len(cs))
	}
}

func TestParallelCrossProductBurst(t *testing.T) {
	// The Tourney pathology: a join with no equality tests sends every
	// token to one bucket owner. Exercises the unbounded mailbox.
	net, _ := compileProds(t, `(p cross (a ^x <u>) (b ^y <w>) --> (halt))`)
	rt, err := New(net, Options{Workers: 4, NBuckets: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	cs := map[string]bool{}
	id := 1
	var changes []rete.Change
	for i := 0; i < 40; i++ {
		w := ops5.NewWME("a", "x", i)
		w.ID, w.TimeTag = id, id
		id++
		changes = append(changes, rete.Change{Tag: rete.Add, WME: w})
		w2 := ops5.NewWME("b", "y", i)
		w2.ID, w2.TimeTag = id, id
		id++
		changes = append(changes, rete.Change{Tag: rete.Add, WME: w2})
	}
	applyDeltas(cs, rt.Apply(changes))
	if len(cs) != 1600 {
		t.Fatalf("cross product = %d, want 1600", len(cs))
	}
	st := rt.Stats()
	var processed int64
	for _, p := range st.Processed {
		processed += p
	}
	if processed == 0 {
		t.Error("no activations recorded")
	}
}

func TestParallelDeterministicResults(t *testing.T) {
	// The netted, sorted delta list must be identical across runs even
	// though scheduling differs.
	srcs := []string{`(p j (a ^x <v>) (b ^x <v>) --> (halt))`}
	run := func() []string {
		net, _ := compileProds(t, srcs...)
		rt, err := New(net, Options{Workers: 4, NBuckets: 32})
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		var changes []rete.Change
		for i := 1; i <= 30; i++ {
			w := ops5.NewWME("a", "x", i%5)
			if i%2 == 0 {
				w = ops5.NewWME("b", "x", i%5)
			}
			w.ID, w.TimeTag = i, i
			changes = append(changes, rete.Change{Tag: rete.Add, WME: w})
		}
		var keys []string
		for _, ic := range rt.Apply(changes) {
			keys = append(keys, fmt.Sprintf("%s/%s", ic.Key(), ic.Tag))
		}
		return keys
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("results differ at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestParallelWorkDistribution(t *testing.T) {
	// With well-hashed tokens, several workers should see work.
	net, _ := compileProds(t, `(p j (a ^x <v>) (b ^x <v>) --> (halt))`)
	rt, err := New(net, Options{Workers: 4, NBuckets: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	var changes []rete.Change
	for i := 1; i <= 200; i++ {
		class := "a"
		if i%2 == 0 {
			class = "b"
		}
		w := ops5.NewWME(class, "x", i/2)
		w.ID, w.TimeTag = i, i
		changes = append(changes, rete.Change{Tag: rete.Add, WME: w})
	}
	rt.Apply(changes)
	busy := 0
	for _, p := range rt.Stats().Processed {
		if p > 0 {
			busy++
		}
	}
	if busy < 3 {
		t.Errorf("only %d of 4 workers processed activations", busy)
	}
}

func TestParallelOptionsValidation(t *testing.T) {
	net, _ := compileProds(t, `(p j (a ^x 1) --> (halt))`)
	if _, err := New(net, Options{Workers: -1}); err == nil {
		t.Error("negative workers accepted")
	}
	if _, err := New(net, Options{Workers: 2, NBuckets: 16, Partition: make([]int, 4)}); err == nil {
		t.Error("short partition accepted")
	}
}

func TestParallelCloseIdempotent(t *testing.T) {
	net, _ := compileProds(t, `(p j (a ^x 1) --> (halt))`)
	rt, err := New(net, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rt.Close()
	rt.Close()
}

// TestAddBeforeDeleteSameCycle pins the per-sender FIFO guarantee at
// the runtime level: a modify-style transient — the same wme added and
// deleted within one cycle — must leave no residue in the token
// memories. If a worker reordered the two same-bucket activations
// (processing the delete before the add), a stale token would survive
// and produce a spurious match in a later cycle.
func TestAddBeforeDeleteSameCycle(t *testing.T) {
	for _, routed := range []bool{false, true} {
		t.Run(fmt.Sprintf("routed=%v", routed), func(t *testing.T) {
			net, _ := compileProds(t, `(p j (a ^x <v>) (b ^x <v>) --> (halt))`)
			rt, err := New(net, Options{Workers: 4, NBuckets: 64, RouteRoots: routed})
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()

			transient := ops5.NewWME("a", "x", 1)
			transient.ID, transient.TimeTag = 1, 1
			if out := rt.Apply([]rete.Change{
				{Tag: rete.Add, WME: transient},
				{Tag: rete.Delete, WME: transient},
			}); len(out) != 0 {
				t.Fatalf("transient add+delete netted to %v", out)
			}

			// A partner in a later cycle must not match the dead token.
			b := ops5.NewWME("b", "x", 1)
			b.ID, b.TimeTag = 2, 2
			if out := rt.Apply([]rete.Change{{Tag: rete.Add, WME: b}}); len(out) != 0 {
				t.Fatalf("stale token matched: %v", out)
			}

			// And a live wme must still match, proving the path works.
			a := ops5.NewWME("a", "x", 1)
			a.ID, a.TimeTag = 3, 3
			out := rt.Apply([]rete.Change{{Tag: rete.Add, WME: a}})
			if len(out) != 1 || out[0].Tag != rete.Add {
				t.Fatalf("live add netted to %v, want one add", out)
			}
		})
	}
}

// TestSteadyStateAllocs pins the tentpole's O(1)-allocations claim: a
// steady-state cycle whose activations flow through the batched
// message plane (join work, cross-worker token sends, no conflict-set
// deltas) must not allocate per message or per token. The arena carves
// tokens in chunks and the mailbox/coalescing buffers are reused, so
// the amortized allocation count per cycle stays a small constant.
func TestSteadyStateAllocs(t *testing.T) {
	net, _ := compileProds(t, `(p j (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (halt))`)
	rt, err := New(net, Options{Workers: 4, NBuckets: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Resident 'a' wmes; the measured cycles add and delete matching
	// 'b' wmes, which join against them but never complete (no 'c'), so
	// tokens and messages flow every cycle with zero instantiations.
	id := 1
	var warm []rete.Change
	for i := 0; i < 8; i++ {
		w := ops5.NewWME("a", "x", i)
		w.ID, w.TimeTag = id, id
		id++
		warm = append(warm, rete.Change{Tag: rete.Add, WME: w})
	}
	rt.Apply(warm)

	bs := make([]*ops5.WME, 8)
	for i := range bs {
		bs[i] = ops5.NewWME("b", "x", i)
		bs[i].ID, bs[i].TimeTag = id, id
		id++
	}
	adds := make([]rete.Change, len(bs))
	dels := make([]rete.Change, len(bs))
	for i, w := range bs {
		adds[i] = rete.Change{Tag: rete.Add, WME: w}
		dels[i] = rete.Change{Tag: rete.Delete, WME: w}
	}
	rt.Apply(adds)
	rt.Apply(dels) // warm the buffers once

	avg := testing.AllocsPerRun(100, func() {
		rt.Apply(adds)
		rt.Apply(dels)
	})
	// 16 token-bearing activations cross the message plane per
	// iteration; per-message or per-token allocation would show up as
	// avg >= 16. The arena amortizes token chunks to fractions.
	if avg > 8 {
		t.Errorf("steady-state cycle pair allocates %.1f times, want <= 8", avg)
	}
}

// TestCrossProductBurstStress hammers the Tourney-shaped pathology —
// repeated cross-product bursts with interleaved deletions across both
// modes — to shake out deadlocks and races in the batched flush /
// drain protocol (run under -race in CI).
func TestCrossProductBurstStress(t *testing.T) {
	rounds, n := 6, 20
	if testing.Short() {
		rounds, n = 2, 8
	}
	for _, routed := range []bool{false, true} {
		t.Run(fmt.Sprintf("routed=%v", routed), func(t *testing.T) {
			net, _ := compileProds(t, `(p cross (a ^x <u>) (b ^y <w>) --> (halt))`)
			rt, err := New(net, Options{Workers: 8, NBuckets: 64, RouteRoots: routed})
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()

			cs := map[string]bool{}
			id := 1
			for round := 0; round < rounds; round++ {
				var adds []rete.Change
				var wmes []*ops5.WME
				for i := 0; i < n; i++ {
					w := ops5.NewWME("a", "x", i)
					w.ID, w.TimeTag = id, id
					id++
					adds = append(adds, rete.Change{Tag: rete.Add, WME: w})
					wmes = append(wmes, w)
					w2 := ops5.NewWME("b", "y", i)
					w2.ID, w2.TimeTag = id, id
					id++
					adds = append(adds, rete.Change{Tag: rete.Add, WME: w2})
					wmes = append(wmes, w2)
				}
				applyDeltas(cs, rt.Apply(adds))
				if len(cs) != n*n {
					t.Fatalf("round %d: cross product = %d, want %d", round, len(cs), n*n)
				}
				var dels []rete.Change
				for _, w := range wmes {
					dels = append(dels, rete.Change{Tag: rete.Delete, WME: w})
				}
				applyDeltas(cs, rt.Apply(dels))
				if len(cs) != 0 {
					t.Fatalf("round %d: %d instantiations survive deletion", round, len(cs))
				}
			}
		})
	}
}

func TestNetInsts(t *testing.T) {
	p, err := ops5.ParseProduction(`(p x (a ^v 1) --> (halt))`)
	if err != nil {
		t.Fatal(err)
	}
	w := ops5.NewWME("a", "v", 1)
	w.ID = 7
	mk := func(tag rete.Tag) rete.InstChange {
		return rete.InstChange{Tag: tag, Prod: p, WMEs: []*ops5.WME{w}}
	}
	// +, -, + nets to a single add.
	out := NetInsts([]rete.InstChange{mk(rete.Add), mk(rete.Delete), mk(rete.Add)})
	if len(out) != 1 || out[0].Tag != rete.Add {
		t.Errorf("net of +-+ = %v", out)
	}
	// +, - cancels.
	if out := NetInsts([]rete.InstChange{mk(rete.Add), mk(rete.Delete)}); len(out) != 0 {
		t.Errorf("net of +- = %v", out)
	}
	if out := NetInsts(nil); len(out) != 0 {
		t.Errorf("net of empty = %v", out)
	}
}
