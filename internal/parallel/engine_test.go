package parallel

import (
	"bytes"
	"testing"

	"mpcrete/internal/engine"
	"mpcrete/internal/ops5"
	"mpcrete/internal/rete"
	"mpcrete/internal/workloads"
)

// TestEngineOnParallelRuntime runs complete OPS5 programs with the
// match phase on the goroutine runtime and checks that the firing
// sequence is identical to the sequential engine's: conflict sets are
// equal after every match phase, and conflict resolution is a pure
// function of the set.
func TestEngineOnParallelRuntime(t *testing.T) {
	cases := []struct {
		name, program, wmes string
		cycles              int
	}{
		{"blocks", workloads.BlocksWorld, workloads.BlocksWorldWMEs(6), 300},
		{"tourney-like", workloads.TourneyLike, workloads.TourneyLikeWMEs(7, 5), 300},
		{"counter", workloads.CounterChain, "(counter ^value 0 ^limit 15)", 100},
		{"monkey", workloads.MonkeyBananas, workloads.MonkeyBananasWMEs, 50},
		{"queens", workloads.Queens, workloads.QueensWMEs(5), 20000},
		{"configurator", workloads.Configurator,
			workloads.ConfiguratorWMEs(
				workloads.ConfiguratorOrder{ID: "a", CPUs: 2, Disks: 5, PowerMax: 100},
				workloads.ConfiguratorOrder{ID: "b", CPUs: 1, Disks: 2, PowerMax: 80},
			), 2000},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			run := func(par bool, workers int, routed bool) (string, int, bool) {
				prog, err := ops5.ParseProgram(c.program)
				if err != nil {
					t.Fatal(err)
				}
				net, err := rete.Compile(prog.Productions)
				if err != nil {
					t.Fatal(err)
				}
				var out bytes.Buffer
				opts := engine.Options{Output: &out}
				if par {
					rt, err := New(net, Options{Workers: workers, RouteRoots: routed})
					if err != nil {
						t.Fatal(err)
					}
					defer rt.Close()
					opts.Matcher = rt
				}
				e, err := engine.NewWithNetwork(prog, net, opts)
				if err != nil {
					t.Fatal(err)
				}
				wmes, err := ops5.ParseWMEs(c.wmes)
				if err != nil {
					t.Fatal(err)
				}
				e.InsertWMEs(wmes...)
				fired, err := e.Run(c.cycles)
				if err != nil {
					t.Fatal(err)
				}
				return out.String(), fired, e.Halted()
			}

			seqOut, seqFired, seqHalted := run(false, 0, false)
			for _, routed := range []bool{false, true} {
				for _, workers := range []int{1, 3, 6} {
					parOut, parFired, parHalted := run(true, workers, routed)
					if parFired != seqFired || parHalted != seqHalted {
						t.Fatalf("workers=%d routed=%v: fired/halted %d/%v, sequential %d/%v",
							workers, routed, parFired, parHalted, seqFired, seqHalted)
					}
					if parOut != seqOut {
						t.Fatalf("workers=%d routed=%v: output diverged:\n--- sequential ---\n%s--- parallel ---\n%s",
							workers, routed, seqOut, parOut)
					}
				}
			}
		})
	}
}
