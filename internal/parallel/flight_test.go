package parallel

import (
	"testing"

	"mpcrete/internal/obs"
	"mpcrete/internal/ops5"
	"mpcrete/internal/rete"
)

// flightRun drives a small join workload through an instrumented
// runtime and returns the dump plus the number of Apply calls.
func flightRun(t *testing.T, workers int, routed bool, chaosSeed int64) (*obs.FlightDump, Stats, int) {
	t.Helper()
	srcs := []string{
		`(p join (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (halt))`,
		`(p pair (a ^x <v>) (b ^x <v>) --> (halt))`,
	}
	net, _ := compileProds(t, srcs...)
	cr := NewFlightRecorder(workers, 4096, 64, 64)
	rt, err := New(net, Options{
		Workers: workers, NBuckets: 64, RouteRoots: routed,
		ChaosSeed: chaosSeed, Causal: cr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	cycles := 0
	id := 1
	for i := 0; i < 12; i++ {
		for _, class := range []string{"a", "b", "c"} {
			w := ops5.NewWME(class, "x", i%4)
			w.ID, w.TimeTag = id, id
			id++
			rt.Apply([]rete.Change{{Tag: rete.Add, WME: w}})
			cycles++
		}
	}
	stats := rt.Stats()
	return rt.FlightDump(), stats, cycles
}

func TestFlightRecorderEndToEnd(t *testing.T) {
	for _, tc := range []struct {
		name   string
		routed bool
		chaos  int64
	}{
		{"broadcast", false, 0},
		{"routed", true, 0},
		{"chaos", false, 7},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dump, stats, cycles := flightRun(t, 4, tc.routed, tc.chaos)
			if dump == nil {
				t.Fatal("nil dump from instrumented runtime")
			}
			if len(dump.Tracks) != 5 {
				t.Fatalf("tracks = %d, want 5 (4 workers + control)", len(dump.Tracks))
			}
			if dump.Tracks[4].Name != "control" {
				t.Fatalf("last track = %q, want control", dump.Tracks[4].Name)
			}
			if len(dump.Cycles) != cycles {
				t.Fatalf("cycle records = %d, want %d", len(dump.Cycles), cycles)
			}

			// Per-cycle handle totals must reconcile exactly with the
			// runtime's own processed counters: the aggregates survive
			// ring eviction by design.
			var handles, processed int64
			for _, c := range dump.Cycles {
				handles += c.Total().Handles
			}
			for _, p := range stats.Processed {
				processed += p
			}
			if handles != processed {
				t.Fatalf("aggregate handles = %d, Stats processed = %d", handles, processed)
			}

			// Every retained recv joins back to a retained send with the
			// same batch stamp, and message counts agree per stamp.
			sendCount := map[int32]int32{}
			for _, tr := range dump.Tracks {
				for _, ev := range tr.Events {
					if ev.Kind == obs.EvSend && ev.Batch != 0 {
						sendCount[ev.Batch] += ev.Count
					}
				}
			}
			for ti, tr := range dump.Tracks {
				if tr.Dropped > 0 {
					t.Fatalf("track %d dropped %d events with a 4096 ring", ti, tr.Dropped)
				}
				for _, ev := range tr.Events {
					if ev.Kind != obs.EvRecv {
						continue
					}
					if _, ok := sendCount[ev.Batch]; !ok {
						t.Fatalf("track %d recv batch %d has no matching send", ti, ev.Batch)
					}
					sendCount[ev.Batch] -= ev.Count
				}
			}
			// Broadcast sends count one message per worker and each
			// worker recvs one, so every stamp must net to zero.
			for b, n := range sendCount {
				if n != 0 {
					t.Fatalf("batch %d: sends and recvs differ by %d messages", b, n)
				}
			}

			// Depth sanity: handle depths start at 1 and the per-cycle
			// aggregate MaxDepth matches the deepest retained handle.
			maxByCycle := map[int32]int32{}
			for _, tr := range dump.Tracks {
				for _, ev := range tr.Events {
					if ev.Kind != obs.EvHandle {
						continue
					}
					if ev.Depth < 1 {
						t.Fatalf("handle depth %d < 1", ev.Depth)
					}
					if ev.Depth > maxByCycle[ev.Cycle] {
						maxByCycle[ev.Cycle] = ev.Depth
					}
				}
			}
			for _, c := range dump.Cycles {
				if got := c.Total().MaxDepth; got != maxByCycle[c.Cycle] {
					t.Fatalf("cycle %d aggregate MaxDepth = %d, events say %d", c.Cycle, got, maxByCycle[c.Cycle])
				}
			}

			// The cumulative bucket loads must also reconcile with the
			// processed totals (every handle increments one bucket).
			var loads int64
			for _, tr := range dump.Tracks {
				for _, bl := range tr.BucketLoads {
					loads += bl.Count
				}
			}
			if loads != processed {
				t.Fatalf("bucket loads total = %d, processed = %d", loads, processed)
			}
		})
	}
}

// TestFlightRecorderDisabled pins the disabled path: no recorder, nil
// dump, and Apply stays on the uninstrumented fast path.
func TestFlightRecorderDisabled(t *testing.T) {
	net, _ := compileProds(t, `(p join (a ^x <v>) (b ^x <v>) --> (halt))`)
	rt, err := New(net, Options{Workers: 2, NBuckets: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	w := ops5.NewWME("a", "x", 1)
	w.ID, w.TimeTag = 1, 1
	rt.Apply([]rete.Change{{Tag: rete.Add, WME: w}})
	if d := rt.FlightDump(); d != nil {
		t.Fatalf("FlightDump without recorder = %+v, want nil", d)
	}
}

func TestFlightRecorderTrackMismatch(t *testing.T) {
	net, _ := compileProds(t, `(p join (a ^x <v>) (b ^x <v>) --> (halt))`)
	cr := obs.NewCausalRecorder(2, 64, 8, 0) // wrong: 2 tracks for 2 workers
	if _, err := New(net, Options{Workers: 2, NBuckets: 64, Causal: cr}); err == nil {
		t.Fatal("New accepted a causal recorder with the wrong track count")
	}
}

// TestFlightRecorderRetention forces ring eviction with a tiny ring
// and checks the dump stays bounded while aggregates stay exact.
func TestFlightRecorderRetention(t *testing.T) {
	srcs := []string{`(p pair (a ^x <v>) (b ^x <v>) --> (halt))`}
	net, _ := compileProds(t, srcs...)
	cr := NewFlightRecorder(2, 16, 4, 0)
	rt, err := New(net, Options{Workers: 2, NBuckets: 64, Causal: cr})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	id := 1
	for i := 0; i < 30; i++ {
		w := ops5.NewWME([]string{"a", "b"}[i%2], "x", i%3)
		w.ID, w.TimeTag = id, id
		id++
		rt.Apply([]rete.Change{{Tag: rete.Add, WME: w}})
	}
	dump := rt.FlightDump()
	if len(dump.Cycles) != 4 {
		t.Fatalf("retained %d cycle records, want 4", len(dump.Cycles))
	}
	if got := dump.Cycles[len(dump.Cycles)-1].Cycle; got != 30 {
		t.Fatalf("newest retained cycle = %d, want 30", got)
	}
	for ti, tr := range dump.Tracks {
		if len(tr.Events) > 16 {
			t.Fatalf("track %d retained %d events with a 16 ring", ti, len(tr.Events))
		}
		if tr.Total != tr.Dropped+uint64(len(tr.Events)) {
			t.Fatalf("track %d accounting: total %d != dropped %d + retained %d",
				ti, tr.Total, tr.Dropped, len(tr.Events))
		}
	}
}

func TestFlightRecorderChromeExport(t *testing.T) {
	dump, _, _ := flightRun(t, 2, false, 0)
	var n int
	for _, tr := range dump.Tracks {
		n += len(tr.Events)
	}
	if n == 0 {
		t.Fatal("no events to export")
	}
	if err := dump.WriteJSON(discard{}); err != nil {
		t.Fatal(err)
	}
	if err := dump.WriteChromeTrace(discard{}); err != nil {
		t.Fatal(err)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
