// Package parallel is a real (not simulated) implementation of the
// paper's distributed hash-table mapping: match processors are
// goroutines, messages are mailbox sends, and each worker owns a
// partition of the global left/right hash-bucket space. It realizes
// the Fig 3-3 variation — the control goroutine broadcasts each
// cycle's wme changes, every worker runs all constant tests and keeps
// the root activations whose buckets it owns, and successor (left)
// tokens travel to the worker owning their bucket.
//
// This is the "real implementation" the paper planned as future work
// (on Nectar), transplanted to a shared-nothing goroutine machine. It
// includes the distributed termination detection the paper's simulator
// replaced with oracle knowledge: a counting detector by default, or
// Mattern's four-counter method (package termdet).
package parallel

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mpcrete/internal/obs"
	"mpcrete/internal/rete"
	"mpcrete/internal/sched"
	"mpcrete/internal/termdet"
)

// Detector selects the termination-detection scheme.
type Detector uint8

const (
	// CountingDetector uses an outstanding-work counter.
	CountingDetector Detector = iota
	// FourCounterDetector uses Mattern's four-counter polling method.
	FourCounterDetector
)

// Options configure a Runtime.
type Options struct {
	// Workers is the number of match goroutines (default
	// runtime.GOMAXPROCS(0)).
	Workers int
	// NBuckets sizes the hash-bucket space (default
	// rete.DefaultNBuckets).
	NBuckets int
	// Partition maps bucket -> worker (default round-robin).
	Partition sched.Partition
	// Detector selects the termination-detection scheme.
	Detector Detector
	// Recorder, when non-nil, receives a wall-clock timeline of the
	// run: one span per mailbox message processed on each worker and a
	// quiescence-wait span (with the termination-detection wave count)
	// on the control track. Timestamps are nanoseconds since New.
	Recorder *obs.Recorder
}

// message is the worker-mailbox protocol.
type message struct {
	kind    msgKind
	changes []rete.Change   // msgCycle
	act     rete.Activation // msgAct
	migrate *migrateOut     // msgMigrateOut
	inject  *migrateIn      // msgMigrateIn
}

type msgKind uint8

const (
	msgCycle msgKind = iota
	msgAct
	msgMigrateOut
	msgMigrateIn
	msgStop
)

// Stats reports per-worker work counts (snapshot).
type Stats struct {
	// Processed[w] counts activations performed by worker w.
	Processed []int64
	// MsgsSent[w] counts activation messages worker w sent to other
	// workers.
	MsgsSent []int64
	// Insts counts instantiation deltas delivered to the control
	// goroutine over all cycles (before netting).
	Insts int64
}

// Runtime is a parallel match engine over one compiled network. Apply
// is the match phase of the MRA cycle; resolve and act remain the
// caller's job, as on the control processor of the paper's mapping.
type Runtime struct {
	net  *rete.Network
	opts Options

	workers []*worker
	instCh  chan rete.InstChange

	counter *termdet.Counter
	counts  []*termdet.ChannelCounts // one per worker + control last
	four    *termdet.FourCounter

	instWG sync.WaitGroup
	instMu sync.Mutex
	insts  []rete.InstChange

	processed []atomic.Int64
	msgsSent  []atomic.Int64
	instCount atomic.Int64

	rec   *obs.Recorder
	epoch time.Time

	closed bool
}

// nowNS is the recorder clock: wall-clock nanoseconds since New.
func (rt *Runtime) nowNS() int64 { return time.Since(rt.epoch).Nanoseconds() }

// controlTrack is the recorder track for the control goroutine (the
// workers occupy tracks 0..Workers-1).
func (rt *Runtime) controlTrack() int { return rt.opts.Workers }

type worker struct {
	id    int
	rt    *Runtime
	proc  *rete.Processor
	inbox *mailbox
	done  sync.WaitGroup

	// migration accounting, read by Repartition after its barrier.
	migratedEntries int
	migrationMsgs   int
}

// New creates and starts a runtime. Close must be called to stop the
// worker goroutines.
func New(net *rete.Network, opts Options) (*Runtime, error) {
	if opts.Workers == 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Workers < 1 {
		return nil, fmt.Errorf("parallel: Workers = %d", opts.Workers)
	}
	if opts.NBuckets == 0 {
		opts.NBuckets = rete.DefaultNBuckets
	}
	if opts.Partition == nil {
		opts.Partition = sched.RoundRobin(opts.NBuckets, opts.Workers)
	}
	if len(opts.Partition) != opts.NBuckets {
		return nil, fmt.Errorf("parallel: partition covers %d buckets, want %d", len(opts.Partition), opts.NBuckets)
	}
	if err := opts.Partition.Validate(opts.Workers); err != nil {
		return nil, err
	}

	rt := &Runtime{
		net:       net,
		opts:      opts,
		instCh:    make(chan rete.InstChange, 4096),
		counter:   termdet.NewCounter(),
		processed: make([]atomic.Int64, opts.Workers),
		msgsSent:  make([]atomic.Int64, opts.Workers),
		rec:       opts.Recorder,
		epoch:     time.Now(),
	}
	if rt.rec != nil {
		for i := 0; i < opts.Workers; i++ {
			rt.rec.SetTrack(i, fmt.Sprintf("worker %d", i))
		}
		rt.rec.SetTrack(rt.controlTrack(), "control")
	}
	for i := 0; i <= opts.Workers; i++ {
		rt.counts = append(rt.counts, &termdet.ChannelCounts{})
	}
	rt.four = termdet.NewFourCounter(rt.counts)

	for i := 0; i < opts.Workers; i++ {
		w := &worker{
			id:    i,
			rt:    rt,
			proc:  rete.NewProcessor(net, opts.NBuckets),
			inbox: newMailbox(),
		}
		rt.workers = append(rt.workers, w)
		w.done.Add(1)
		go w.loop()
	}

	rt.instWG.Add(1)
	go rt.collectInsts()
	return rt, nil
}

// controlCounts returns the control goroutine's message counters.
func (rt *Runtime) controlCounts() *termdet.ChannelCounts {
	return rt.counts[len(rt.counts)-1]
}

// collectInsts is the control processor's conflict-set intake.
func (rt *Runtime) collectInsts() {
	defer rt.instWG.Done()
	for ic := range rt.instCh {
		rt.instMu.Lock()
		rt.insts = append(rt.insts, ic)
		rt.instMu.Unlock()
		rt.controlCounts().IncRecv()
		rt.counter.Done()
	}
}

// Apply runs one parallel match phase and returns the conflict-set
// deltas, netted per instantiation and deterministically ordered
// (delivery order across workers is not deterministic; the netted set
// is).
func (rt *Runtime) Apply(changes []rete.Change) []rete.InstChange {
	if rt.closed {
		panic("parallel: Apply after Close")
	}
	rt.instMu.Lock()
	rt.insts = nil
	rt.instMu.Unlock()

	// Broadcast the cycle packet.
	if rt.rec != nil {
		rt.rec.Instant(rt.controlTrack(), "cycle-broadcast", rt.nowNS(),
			obs.Label{Key: "changes", Value: strconv.Itoa(len(changes))})
	}
	for _, w := range rt.workers {
		rt.counter.Add(1)
		rt.controlCounts().IncSent()
		w.inbox.push(message{kind: msgCycle, changes: changes})
	}

	// Wait for global quiescence.
	var waitStart int64
	if rt.rec != nil {
		waitStart = rt.nowNS()
	}
	waves := 0
	if rt.opts.Detector == FourCounterDetector {
		yield := runtime.Gosched
		if rt.rec != nil {
			yield = func() {
				waves++
				runtime.Gosched()
			}
		}
		rt.four.WaitTerminated(yield)
	}
	rt.counter.Wait()
	if rt.rec != nil {
		rt.rec.Span(rt.controlTrack(), "quiesce", waitStart, rt.nowNS(),
			obs.Label{Key: "waves", Value: strconv.Itoa(waves)})
	}

	rt.instMu.Lock()
	raw := rt.insts
	rt.insts = nil
	rt.instMu.Unlock()
	return netInsts(raw)
}

// Stats snapshots per-worker counters.
func (rt *Runtime) Stats() Stats {
	s := Stats{
		Processed: make([]int64, len(rt.processed)),
		MsgsSent:  make([]int64, len(rt.msgsSent)),
		Insts:     rt.instCount.Load(),
	}
	for i := range rt.processed {
		s.Processed[i] = rt.processed[i].Load()
		s.MsgsSent[i] = rt.msgsSent[i].Load()
	}
	return s
}

// Close stops the workers and the collector. The runtime cannot be
// reused.
func (rt *Runtime) Close() {
	if rt.closed {
		return
	}
	rt.closed = true
	for _, w := range rt.workers {
		w.inbox.push(message{kind: msgStop})
	}
	for _, w := range rt.workers {
		w.done.Wait()
	}
	close(rt.instCh)
	rt.instWG.Wait()
}

// loop is the worker goroutine: one match processor of the mapping.
func (w *worker) loop() {
	defer w.done.Done()
	rt := w.rt
	for {
		msg, ok := w.inbox.pop()
		if !ok || msg.kind == msgStop {
			return
		}
		var t0 int64
		if rt.rec != nil {
			t0 = rt.nowNS()
		}
		switch msg.kind {
		case msgCycle:
			// Constant tests run on every worker (duplicated work, the
			// coarse granularity of Section 3.2); only locally-owned
			// roots are processed.
			for _, ch := range msg.changes {
				for _, act := range w.proc.RootActivations(ch) {
					if rt.opts.Partition[w.proc.Bucket(act)] == w.id {
						w.process(act)
					}
				}
			}
		case msgAct:
			w.process(msg.act)
		case msgMigrateOut:
			w.handleMigrateOut(msg.migrate)
		case msgMigrateIn:
			w.proc.InjectBucket(msg.inject.contents)
		}
		if rt.rec != nil {
			rt.rec.Span(w.id, msgKindName(msg.kind), t0, rt.nowNS())
		}
		rt.counts[w.id].IncRecv()
		rt.counter.Done()
	}
}

// msgKindName labels worker timeline spans by mailbox message kind.
func msgKindName(k msgKind) string {
	switch k {
	case msgCycle:
		return "cycle"
	case msgAct:
		return "activation"
	case msgMigrateOut:
		return "migrate-out"
	case msgMigrateIn:
		return "migrate-in"
	default:
		return "msg"
	}
}

// sendInst forwards an instantiation delta to the control goroutine.
func (w *worker) sendInst(ic rete.InstChange) {
	rt := w.rt
	rt.counter.Add(1)
	rt.counts[w.id].IncSent()
	rt.instCount.Add(1)
	rt.instCh <- ic
}

// process performs one activation, routing successors to the workers
// owning their buckets. Locally-owned successors are processed
// recursively — the zero-message fast path of the fine granularity.
func (w *worker) process(act rete.Activation) {
	rt := w.rt
	if act.Node.Kind == rete.KindProduction {
		// A root activation of a single-CE production.
		w.sendInst(w.proc.BuildInst(act))
		return
	}
	rt.processed[w.id].Add(1)

	w.proc.Process(act,
		func(child rete.Activation) {
			if child.Node.Kind == rete.KindProduction {
				w.sendInst(w.proc.BuildInst(child))
				return
			}
			owner := rt.opts.Partition[w.proc.Bucket(child)]
			if owner == w.id {
				w.process(child)
				return
			}
			rt.counter.Add(1)
			rt.counts[w.id].IncSent()
			rt.msgsSent[w.id].Add(1)
			rt.workers[owner].inbox.push(message{kind: msgAct, act: child})
		},
		func(rete.InstChange) {
			panic("parallel: unexpected instantiation emission")
		})
}

// netInsts nets raw deltas per instantiation key: within one match
// phase an instantiation may be added and deleted several times (e.g.
// through negative-node transients whose interleaving is
// order-dependent); only the net effect is meaningful, and netting
// makes the result independent of worker scheduling.
func netInsts(raw []rete.InstChange) []rete.InstChange {
	type acc struct {
		net  int
		last rete.InstChange
	}
	byKey := map[string]*acc{}
	var keys []string
	for _, ic := range raw {
		k := ic.Key()
		a, ok := byKey[k]
		if !ok {
			a = &acc{}
			byKey[k] = a
			keys = append(keys, k)
		}
		if ic.Tag == rete.Add {
			a.net++
		} else {
			a.net--
		}
		a.last = ic
	}
	sort.Strings(keys)
	var out []rete.InstChange
	for _, k := range keys {
		a := byKey[k]
		switch {
		case a.net > 0:
			ic := a.last
			ic.Tag = rete.Add
			out = append(out, ic)
		case a.net < 0:
			ic := a.last
			ic.Tag = rete.Delete
			out = append(out, ic)
		}
	}
	return out
}
