// Package parallel is a real (not simulated) implementation of the
// paper's distributed hash-table mapping: match processors are
// goroutines, messages are mailbox sends, and each worker owns a
// partition of the global left/right hash-bucket space. It realizes
// the Fig 3-3 variation — the control goroutine broadcasts each
// cycle's wme changes, every worker runs all constant tests and keeps
// the root activations whose buckets it owns, and successor (left)
// tokens travel to the worker owning their bucket. Options.RouteRoots
// selects the Fig 3-2 scheme instead: the control goroutine runs the
// constant tests once and hash-routes each root activation to its
// owner.
//
// The message plane is batched, because the paper's central finding is
// that per-message overhead is what makes or breaks MPC speedups:
// workers drain their whole mailbox under one lock per turn, coalesce
// outgoing activations into per-destination buffers flushed once per
// handled message, deliver conflict-set deltas in bulk, and account
// termination-detection counters per batch. Steady-state cycles reuse
// the same buffers, the shared cycle packet, and arena-carved tokens,
// so the per-message cost the paper prices at 0–32 µs stays far below
// a node activation's work here.
//
// This is the "real implementation" the paper planned as future work
// (on Nectar), transplanted to a shared-nothing goroutine machine. It
// includes the distributed termination detection the paper's simulator
// replaced with oracle knowledge: a counting detector by default, or
// Mattern's four-counter method (package termdet).
package parallel

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mpcrete/internal/obs"
	"mpcrete/internal/rete"
	"mpcrete/internal/sched"
	"mpcrete/internal/termdet"
)

// Detector selects the termination-detection scheme.
type Detector uint8

const (
	// CountingDetector uses an outstanding-work counter.
	CountingDetector Detector = iota
	// FourCounterDetector uses Mattern's four-counter polling method.
	FourCounterDetector
)

// Options configure a Runtime.
type Options struct {
	// Workers is the number of match goroutines (default
	// runtime.GOMAXPROCS(0)).
	Workers int
	// NBuckets sizes the hash-bucket space (default
	// rete.DefaultNBuckets).
	NBuckets int
	// Partition maps bucket -> worker (default round-robin).
	Partition sched.Partition
	// Rebalance, when enabled, turns on the online adaptive
	// repartitioner: workers count activations per bucket, the control
	// goroutine folds the counters into a sched.Balancer at every
	// quiescence, and when the detector arms (threshold, hysteresis,
	// min-interval knobs — see sched.Rebalance) hot buckets migrate to
	// new owners at the cycle boundary through the Repartition
	// machinery. The netted conflict-set output is byte-identical to
	// the static run — migration moves state, never match semantics.
	// Requires a transport that can carry the migration protocol
	// (RefTransport or MigrationTransport).
	Rebalance sched.Rebalance
	// ForceMigrate, when non-nil, is consulted at every cycle boundary
	// (after the cycle's quiescence) with the 1-based number of the
	// cycle just completed; a non-nil returned partition is migrated to
	// before the next cycle. It is the migration-parity test hook: a
	// schedule can force migrations the detector would never choose.
	// When both ForceMigrate and Rebalance are set, a non-nil forced
	// partition wins that boundary and resets the detector.
	ForceMigrate func(cycle int) sched.Partition
	// Detector selects the termination-detection scheme.
	Detector Detector
	// RouteRoots selects the paper's Fig 3-2 scheme: the control
	// goroutine runs the constant tests once per cycle and hash-routes
	// each root activation to the worker owning its bucket, instead of
	// broadcasting the cycle's changes for every worker to filter (the
	// Fig 3-3 default). Routing eliminates the redundant all-workers
	// constant-test pass at the cost of serializing constant tests on
	// the control goroutine; the netted instantiation output is
	// identical either way.
	RouteRoots bool
	// Recorder, when non-nil, receives a wall-clock timeline of the
	// run: one span per drained mailbox batch on each worker (labelled
	// with per-kind message counts, so -timeline no longer pays one
	// span per message) and a quiescence-wait span (with the
	// termination-detection wave count) on the control track.
	// Timestamps are nanoseconds since New.
	Recorder *obs.Recorder
	// ChaosSeed, when non-zero, enables the chaos scheduling layer
	// (see chaos.go): workers randomly reorder drained activation runs
	// (preserving per-bucket FIFO order, the only ordering the match
	// relies on), defer coalesced flushes, split turns, and jitter
	// timing so -race stress explores interleavings a quiet machine
	// never produces. The netted conflict-set output must be unchanged
	// — the differential harness asserts exactly that. Zero (the
	// default) compiles to the unperturbed fast path.
	ChaosSeed int64
	// Metrics, when non-nil, receives runtime counters; currently
	// parallel.dropped_post_close, the number of messages dropped by
	// post-close mailbox sends (normal operation keeps it zero; soak
	// runs assert that).
	Metrics *obs.Registry
	// Transport supplies the message plane (nil: the in-process
	// double-buffer mailboxes, InProc). See the Transport contract in
	// transport.go; internal/transport provides a TCP loopback
	// implementation used to validate wire framing against this
	// reference in-process.
	Transport Transport
	// Causal, when non-nil, attaches the flight recorder: every worker
	// records sequence-stamped send/recv/handle/flush events (with
	// bucket, cycle, batch id, and dependency depth) into its own
	// lock-free bounded ring, and the control track brackets cycles and
	// commits per-cycle aggregates. The recorder must have exactly
	// Workers+1 tracks (workers first, control last) — build it with
	// NewFlightRecorder. Nil (the default) keeps the hot path at one
	// nil check per event and zero allocations.
	Causal *obs.CausalRecorder
}

// NewFlightRecorder builds a causal recorder sized for a runtime with
// the given worker count: Workers+1 tracks (control last). ringCap,
// retainCycles, and nbuckets follow obs.NewCausalRecorder (0 means the
// obs defaults; nbuckets should match Options.NBuckets to enable the
// per-bucket activation-load series).
func NewFlightRecorder(workers, ringCap, retainCycles, nbuckets int) *obs.CausalRecorder {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return obs.NewCausalRecorder(workers+1, ringCap, retainCycles, nbuckets)
}

// CyclePacket is the broadcast payload of one match phase. A single
// packet, owned by the Runtime and reused across cycles, is shared
// read-only by every worker — the control goroutine ships one pooled
// changes slice per cycle rather than per-worker copies.
type CyclePacket struct {
	Changes []rete.Change
}

// Message is the worker-mailbox protocol. All fields are the
// wire-visible protocol a Transport must carry; the migration fields
// (Moves, Inject) reference live Rete state in-process, so a wire
// transport must serialize them at Push time (see MigrationTransport)
// — the synchronous-capture rule already requires that.
type Message struct {
	Kind   MsgKind
	Bucket int32           // MsgAct: the activation's hash bucket, computed by the sender for routing
	Depth  int32           // MsgAct: dependency depth within the cycle (roots are 1)
	Cycle  *CyclePacket    // MsgCycle: shared, read-only
	Act    rete.Activation // MsgAct
	// Moves lists the buckets the receiving worker loses, with their
	// new owners, sorted by bucket (MsgMigrateOut).
	Moves []BucketMove
	// Inject carries one extracted bucket pair to its new owner
	// (MsgMigrateIn). In-process the pointer is the live contents; a
	// wire transport decodes a fresh copy, which is safe because memory
	// removal matches by value (wme ID / Token.Same), not identity.
	Inject *rete.BucketContents
}

// BucketMove is one entry of a MsgMigrateOut: the receiving worker
// must extract Bucket and ship its contents to NewOwner.
type BucketMove struct {
	Bucket   int32
	NewOwner int32
}

type MsgKind uint8

const (
	MsgCycle MsgKind = iota
	MsgAct
	MsgMigrateOut
	MsgMigrateIn
	numMsgKinds
)

// Stats reports per-worker work counts (snapshot).
type Stats struct {
	// Processed[w] counts activations performed by worker w.
	Processed []int64
	// MsgsSent[w] counts activation messages worker w sent to other
	// workers.
	MsgsSent []int64
	// Insts counts instantiation deltas delivered to the control
	// goroutine over all cycles (before netting).
	Insts int64
}

// Runtime is a parallel match engine over one compiled network. Apply
// is the match phase of the MRA cycle; resolve and act remain the
// caller's job, as on the control processor of the paper's mapping.
type Runtime struct {
	net  *rete.Network
	opts Options

	workers  []*worker
	cyclePkt *CyclePacket

	// transport owns the message plane; refDelivery records whether it
	// delivers by reference, canMigrate whether it can carry the
	// migration protocol at all (by reference or serialized — see
	// MigrationTransport).
	transport   Transport
	refDelivery bool
	canMigrate  bool

	// balancer is the online rebalance detector/planner (nil unless
	// Options.Rebalance is enabled); rebSeries is the obs series
	// migrations publish into, and the counters below aggregate
	// migration costs across the run (also surfaced via
	// RebalanceStats).
	balancer     *sched.Balancer
	rebSeries    *obs.Series
	migrations   atomic.Int64
	bucketsMoved atomic.Int64
	entriesMoved atomic.Int64

	// root-routing state (RouteRoots mode): the control goroutine's
	// constant-test processor plus reusable per-destination buffers.
	rootProc    *rete.Processor
	rootBufs    [][]Message
	rootScratch []rete.Activation

	counter *termdet.Counter
	counts  []*termdet.ChannelCounts // one per worker + control last
	four    *termdet.FourCounter

	// insts is the control goroutine's conflict-set intake; workers
	// append their buffered deltas in bulk at end of turn. netter holds
	// the netting scratch reused across cycles.
	instMu  sync.Mutex
	insts   []rete.InstChange
	netting netter

	processed []atomic.Int64
	msgsSent  []atomic.Int64
	instCount atomic.Int64

	rec   *obs.Recorder
	epoch time.Time

	// causal is the flight recorder (nil unless Options.Causal);
	// ctlTrack caches its control track, and curCycle publishes the
	// 1-based cycle number workers stamp on their events (workers are
	// quiescent between Applies, so a relaxed load per turn suffices).
	causal   *obs.CausalRecorder
	ctlTrack *obs.TrackRecorder
	curCycle atomic.Int32

	// ctlChaos perturbs the control goroutine's quiescence wait when
	// chaos is enabled (nil otherwise).
	ctlChaos *chaos

	closed bool
}

// nowNS is the recorder clock: wall-clock nanoseconds since New.
func (rt *Runtime) nowNS() int64 { return time.Since(rt.epoch).Nanoseconds() }

// controlTrack is the recorder track for the control goroutine (the
// workers occupy tracks 0..Workers-1).
func (rt *Runtime) controlTrack() int { return rt.opts.Workers }

// localAct is one queued unit of locally-owned match work: an
// activation, its hash bucket, and its dependency depth within the
// current cycle.
type localAct struct {
	act    rete.Activation
	bucket int32
	depth  int32
}

type worker struct {
	id    int
	rt    *Runtime
	proc  *rete.Processor
	inbox Endpoint
	done  sync.WaitGroup

	// localQ is the worker's FIFO of locally-owned activations,
	// drained breadth-first (see drainLocal).
	localQ []localAct

	// turn-local state, reused across turns: the drained batch, the
	// constant-test scratch, the per-destination coalescing buffers,
	// and the conflict-set delta buffer. pendingSends counts messages
	// buffered in outBufs since the last flush; turnProcessed/turnSent
	// accumulate the per-activation counters published once per turn.
	batch         []Message
	stampBuf      []RecvStamp
	rootScratch   []rete.Activation
	outBufs       [][]Message
	instBuf       []rete.InstChange
	pendingSends  int
	turnProcessed int64
	turnSent      int64

	// ctrack is the worker's causal event ring (nil when the flight
	// recorder is off — every recording call is then one nil check).
	// turnTS and turnCycle are the timestamp and cycle number stamped
	// on the turn's handle events, cached at drain time so the hot loop
	// never reads the clock per activation.
	ctrack    *obs.TrackRecorder
	turnTS    int64
	turnCycle int32

	// migration accounting, read by Repartition after its barrier.
	migratedEntries int
	migrationMsgs   int

	// bucketLoad counts activations per bucket for the rebalance
	// detector (nil unless Options.Rebalance is enabled — the hot path
	// then pays one nil check). The control goroutine drains it at
	// quiescence (foldBucketLoads); the termination-detector barrier
	// orders the worker's writes before the control read.
	bucketLoad []int64

	// chaos is the worker's scheduling perturbator (nil unless
	// Options.ChaosSeed is set).
	chaos *chaos
}

// New creates and starts a runtime. Close must be called to stop the
// worker goroutines.
func New(net *rete.Network, opts Options) (*Runtime, error) {
	if opts.Workers == 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Workers < 1 {
		return nil, fmt.Errorf("parallel: Workers = %d", opts.Workers)
	}
	if opts.NBuckets == 0 {
		opts.NBuckets = rete.DefaultNBuckets
	}
	if opts.Partition == nil {
		opts.Partition = sched.RoundRobin(opts.NBuckets, opts.Workers)
	}
	if len(opts.Partition) != opts.NBuckets {
		return nil, fmt.Errorf("parallel: partition covers %d buckets, want %d", len(opts.Partition), opts.NBuckets)
	}
	if err := opts.Partition.Validate(opts.Workers); err != nil {
		return nil, err
	}

	rt := &Runtime{
		net:       net,
		opts:      opts,
		cyclePkt:  &CyclePacket{},
		counter:   termdet.NewCounter(),
		processed: make([]atomic.Int64, opts.Workers),
		msgsSent:  make([]atomic.Int64, opts.Workers),
		rec:       opts.Recorder,
		epoch:     time.Now(),
	}
	if opts.Causal != nil {
		if got := opts.Causal.Tracks(); got != opts.Workers+1 {
			return nil, fmt.Errorf("parallel: causal recorder has %d tracks, want Workers+1 = %d (use NewFlightRecorder)", got, opts.Workers+1)
		}
		rt.causal = opts.Causal
		rt.ctlTrack = opts.Causal.Track(opts.Workers)
		for i := 0; i < opts.Workers; i++ {
			opts.Causal.SetTrackName(i, fmt.Sprintf("worker %d", i))
		}
		opts.Causal.SetTrackName(opts.Workers, "control")
	}
	if opts.RouteRoots {
		rt.rootProc = rete.NewProcessor(net, opts.NBuckets)
		rt.rootBufs = make([][]Message, opts.Workers)
	}
	dropped := opts.Metrics.Counter("parallel.dropped_post_close")
	if opts.ChaosSeed != 0 {
		rt.ctlChaos = newChaos(opts.ChaosSeed, opts.Workers)
	}
	rt.transport = opts.Transport
	if rt.transport == nil {
		rt.transport = InProc()
	}
	_, rt.refDelivery = rt.transport.(RefTransport)
	_, wireMigration := rt.transport.(MigrationTransport)
	rt.canMigrate = rt.refDelivery || wireMigration
	if opts.Rebalance.Enabled() || opts.ForceMigrate != nil {
		if !rt.canMigrate {
			return nil, fmt.Errorf("parallel: Rebalance/ForceMigrate require a transport that carries the migration protocol (RefTransport or MigrationTransport)")
		}
		if opts.Rebalance.Enabled() {
			rt.balancer = sched.NewBalancer(opts.Rebalance, opts.Partition, opts.Workers)
			rt.rebSeries = opts.Metrics.Series("parallel/rebalance",
				"cycle", "imbalance", "buckets_moved", "entries_moved", "messages")
		}
	}
	if rt.rec != nil {
		for i := 0; i < opts.Workers; i++ {
			rt.rec.SetTrack(i, fmt.Sprintf("worker %d", i))
		}
		rt.rec.SetTrack(rt.controlTrack(), "control")
	}
	for i := 0; i <= opts.Workers; i++ {
		rt.counts = append(rt.counts, &termdet.ChannelCounts{})
	}
	rt.four = termdet.NewFourCounter(rt.counts)

	eps, err := rt.transport.Open(opts.Workers, EndpointOptions{
		Dropped: dropped,
		Stamped: rt.causal != nil,
		OnError: func(err error) {
			rt.counter.Fail(fmt.Errorf("parallel: transport failed: %w", err))
		},
	})
	if err != nil {
		return nil, err
	}
	if len(eps) != opts.Workers {
		return nil, fmt.Errorf("parallel: transport opened %d endpoints, want %d", len(eps), opts.Workers)
	}
	for i := 0; i < opts.Workers; i++ {
		w := &worker{
			id:      i,
			rt:      rt,
			proc:    rete.NewProcessor(net, opts.NBuckets),
			inbox:   eps[i],
			outBufs: make([][]Message, opts.Workers),
			ctrack:  rt.causal.Track(i),
		}
		if rt.balancer != nil {
			w.bucketLoad = make([]int64, opts.NBuckets)
		}
		if opts.ChaosSeed != 0 {
			w.chaos = newChaos(opts.ChaosSeed, i)
		}
		rt.workers = append(rt.workers, w)
		w.done.Add(1)
		go w.loop()
	}
	return rt, nil
}

// controlCounts returns the control goroutine's message counters.
func (rt *Runtime) controlCounts() *termdet.ChannelCounts {
	return rt.counts[len(rt.counts)-1]
}

// Apply runs one parallel match phase and returns the conflict-set
// deltas, netted per instantiation and deterministically ordered
// (delivery order across workers is not deterministic; the netted set
// is).
func (rt *Runtime) Apply(changes []rete.Change) []rete.InstChange {
	if rt.closed {
		panic("parallel: Apply after Close")
	}
	rt.insts = rt.insts[:0] // quiescent: no worker holds instMu

	cycle := rt.curCycle.Add(1)
	if rt.causal != nil {
		rt.causal.BeginCycle(cycle, rt.nowNS())
	}

	if rt.opts.RouteRoots {
		rt.routeRoots(changes)
	} else {
		rt.broadcast(changes)
	}

	// Wait for global quiescence.
	var waitStart int64
	if rt.rec != nil {
		waitStart = rt.nowNS()
	}
	waves := 0
	if rt.opts.Detector == FourCounterDetector {
		yield := runtime.Gosched
		if rt.ctlChaos != nil {
			// Jittered polling stretches the window between the two
			// four-counter passes, the interval the protocol must
			// tolerate in-flight messages across.
			yield = rt.ctlChaos.yield
		}
		if rt.rec != nil {
			inner := yield
			yield = func() {
				waves++
				inner()
			}
		}
		// A failed transport means quiescence is unreachable: the
		// four-counter totals can never balance once messages are lost.
		// Bail out of the polling loop through the same panic surface as
		// the counter check below.
		inner := yield
		yield = func() {
			if err := rt.counter.Err(); err != nil {
				panic(err)
			}
			inner()
		}
		rt.four.WaitTerminated(yield)
	}
	rt.counter.Wait()
	if err := rt.counter.Err(); err != nil {
		// The transport lost accepted messages (see
		// EndpointOptions.OnError). Apply cannot return an error — it is
		// engine.MatchApplier — so the failure surfaces as a panic
		// rather than a hang.
		panic(err)
	}
	if rt.rec != nil {
		rt.rec.Span(rt.controlTrack(), "quiesce", waitStart, rt.nowNS(),
			obs.Label{Key: "waves", Value: strconv.Itoa(waves)})
	}

	if rt.causal != nil {
		// Quiescent again: every worker's events for this cycle are
		// recorded, so the aggregate commit observes them all.
		rt.causal.EndCycle(cycle, rt.nowNS())
	}

	if rt.balancer != nil || rt.opts.ForceMigrate != nil {
		rt.maybeRebalance(cycle)
	}

	rt.cyclePkt.Changes = nil // release the caller's slice
	return rt.netting.net(rt.insts)
}

// maybeRebalance runs at the cycle boundary, on the quiescent runtime:
// fold the workers' per-bucket activation counters into the balancer,
// ask it (or the ForceMigrate test hook) for a new assignment, and
// migrate. Migration happens strictly between cycles, so the match
// semantics of neighbouring cycles are untouched — only where state
// lives changes.
func (rt *Runtime) maybeRebalance(cycle int32) {
	var newPart sched.Partition
	forced := false
	if rt.opts.ForceMigrate != nil {
		newPart = rt.opts.ForceMigrate(int(cycle))
		forced = newPart != nil
	}
	var imbalance float64
	if rt.balancer != nil && !forced {
		rt.foldBucketLoads()
		imbalance = rt.balancer.Imbalance()
		if np, ok := rt.balancer.EndCycle(); ok {
			newPart = np
		}
	}
	if newPart == nil {
		return
	}
	var t0 int64
	if rt.rec != nil {
		t0 = rt.nowNS()
	}
	stats, err := rt.migrate(newPart)
	if err != nil {
		// The transport was vetted in New and the partition shape in
		// migrate; an error here means a ForceMigrate hook returned a
		// bad partition — surface it like any other fatal Apply error.
		panic(err)
	}
	if forced && rt.balancer != nil {
		// A forced move invalidates the balancer's notion of the
		// current assignment; restart it from the imposed partition.
		rt.balancer = sched.NewBalancer(rt.opts.Rebalance, newPart, rt.opts.Workers)
	}
	rt.migrations.Add(1)
	rt.bucketsMoved.Add(int64(stats.BucketsMoved))
	rt.entriesMoved.Add(int64(stats.EntriesMoved))
	rt.rebSeries.Append(float64(cycle), imbalance,
		float64(stats.BucketsMoved), float64(stats.EntriesMoved), float64(stats.Messages))
	if rt.rec != nil {
		rt.rec.Span(rt.controlTrack(), "migrate", t0, rt.nowNS(),
			obs.Label{Key: "buckets", Value: strconv.Itoa(stats.BucketsMoved)},
			obs.Label{Key: "entries", Value: strconv.Itoa(stats.EntriesMoved)})
	}
}

// foldBucketLoads drains every worker's per-bucket activation counter
// into the balancer. Runs at quiescence: the workers' last counter
// writes happened before their termination-detector decrements, which
// the control goroutine's Wait observed.
func (rt *Runtime) foldBucketLoads() {
	for _, w := range rt.workers {
		for b, n := range w.bucketLoad {
			if n > 0 {
				rt.balancer.Observe(b, n)
				w.bucketLoad[b] = 0
			}
		}
	}
}

// RebalanceStats reports the adaptive repartitioner's cumulative cost:
// migration events, bucket pairs moved, and entries shipped.
func (rt *Runtime) RebalanceStats() (migrations, bucketsMoved, entriesMoved int64) {
	return rt.migrations.Load(), rt.bucketsMoved.Load(), rt.entriesMoved.Load()
}

// broadcast ships the cycle packet to every worker (Fig 3-3): one
// pooled packet shared read-only, one outstanding-work registration
// and one sent-counter update for the whole wave.
func (rt *Runtime) broadcast(changes []rete.Change) {
	if rt.rec != nil {
		rt.rec.Instant(rt.controlTrack(), "cycle-broadcast", rt.nowNS(),
			obs.Label{Key: "changes", Value: strconv.Itoa(len(changes))})
	}
	rt.cyclePkt.Changes = changes
	rt.counter.Add(len(rt.workers))
	rt.controlCounts().AddSent(len(rt.workers))
	// One broadcast send event covers the whole wave; every worker's
	// mailbox carries the same batch stamp, so each recv joins back to
	// this send.
	batch := rt.causal.NextBatch()
	if rt.ctlTrack != nil {
		rt.ctlTrack.Send(rt.nowNS(), rt.curCycle.Load(), batch, obs.BroadcastDst, int32(len(rt.workers)))
	}
	msg := Message{Kind: MsgCycle, Cycle: rt.cyclePkt}
	for _, w := range rt.workers {
		w.inbox.Push(msg, batch, int32(rt.opts.Workers))
	}
}

// routeRoots runs the constant tests once on the control goroutine and
// hash-routes each root activation to its owner (Fig 3-2), coalescing
// per destination so each worker's mailbox is locked at most once.
func (rt *Runtime) routeRoots(changes []rete.Change) {
	sent := 0
	for _, ch := range changes {
		rt.rootScratch = rt.rootProc.RootActivationsInto(ch, rt.rootScratch[:0])
		for _, act := range rt.rootScratch {
			b := rt.rootProc.Bucket(act)
			owner := rt.opts.Partition[b]
			rt.rootBufs[owner] = append(rt.rootBufs[owner], Message{Kind: MsgAct, Bucket: int32(b), Depth: 1, Act: act})
			sent++
		}
	}
	if rt.rec != nil {
		rt.rec.Instant(rt.controlTrack(), "cycle-route", rt.nowNS(),
			obs.Label{Key: "changes", Value: strconv.Itoa(len(changes))},
			obs.Label{Key: "roots", Value: strconv.Itoa(sent)})
	}
	if sent == 0 {
		return
	}
	rt.counter.Add(sent)
	rt.controlCounts().AddSent(sent)
	var ts int64
	if rt.ctlTrack != nil {
		ts = rt.nowNS()
	}
	for dst, buf := range rt.rootBufs {
		if len(buf) == 0 {
			continue
		}
		batch := rt.causal.NextBatch()
		rt.ctlTrack.Send(ts, rt.curCycle.Load(), batch, int32(dst), int32(len(buf)))
		rt.workers[dst].inbox.PushBatch(buf, batch, int32(rt.opts.Workers))
		rt.rootBufs[dst] = buf[:0]
	}
}

// Stats snapshots per-worker counters.
func (rt *Runtime) Stats() Stats {
	s := Stats{
		Processed: make([]int64, len(rt.processed)),
		MsgsSent:  make([]int64, len(rt.msgsSent)),
		Insts:     rt.instCount.Load(),
	}
	for i := range rt.processed {
		s.Processed[i] = rt.processed[i].Load()
		s.MsgsSent[i] = rt.msgsSent[i].Load()
	}
	return s
}

// FlightDump snapshots the attached flight recorder: the last-N causal
// events per track plus the retained per-cycle aggregates. Nil when no
// recorder is attached. Only legal at quiescence — between Apply calls
// or after Close — which is when post-mortem analysis runs.
func (rt *Runtime) FlightDump() *obs.FlightDump {
	return rt.causal.Dump()
}

// Close stops the workers. The runtime cannot be reused. Any message a
// straggler flushes at a closed mailbox is dropped silently (Close is
// only legal on a quiescent runtime, so no dropped message carries
// live work).
func (rt *Runtime) Close() {
	if rt.closed {
		return
	}
	rt.closed = true
	for _, w := range rt.workers {
		w.inbox.Close()
	}
	for _, w := range rt.workers {
		w.done.Wait()
	}
	rt.transport.Close()
}

// loop is the worker goroutine: one match processor of the mapping. It
// consumes its mailbox one drained batch at a time — one lock
// acquisition per turn, however many messages arrived — and flushes
// coalesced outgoing activations at the end of each handled message.
func (w *worker) loop() {
	defer w.done.Done()
	rt := w.rt
	for {
		var ok bool
		var stamps []RecvStamp
		if w.chaos == nil {
			w.batch, stamps, ok = w.inbox.Drain(w.batch, w.stampBuf)
		} else {
			w.batch, stamps, ok = w.chaos.nextBatch(w)
		}
		if !ok {
			return
		}
		var t0 int64
		if rt.rec != nil || w.ctrack != nil {
			t0 = rt.nowNS()
		}
		if w.ctrack != nil {
			// Cache the turn's timestamp and cycle once: handle events
			// reuse them instead of reading the clock per activation.
			w.turnTS = t0
			w.turnCycle = rt.curCycle.Load()
			for _, s := range stamps {
				w.ctrack.Recv(t0, w.turnCycle, s.Batch, s.Src, s.Count)
			}
		}
		w.stampBuf = stamps // donate the stamp buffer back next drain
		var kinds [numMsgKinds]int
		for i := range w.batch {
			msg := &w.batch[i]
			kinds[msg.Kind]++
			switch msg.Kind {
			case MsgCycle:
				// Constant tests run on every worker (duplicated work,
				// the coarse granularity of Section 3.2); only
				// locally-owned roots are processed. Every root of the
				// turn is enqueued before any is expanded so storage
				// precedes discovery (see drainLocal).
				for _, ch := range msg.Cycle.Changes {
					w.rootScratch = w.proc.RootActivationsInto(ch, w.rootScratch[:0])
					for _, act := range w.rootScratch {
						b := w.proc.Bucket(act)
						if rt.opts.Partition[b] == w.id {
							w.localQ = append(w.localQ, localAct{act: act, bucket: int32(b), depth: 1})
						}
					}
				}
				w.drainLocal()
			case MsgAct:
				w.localQ = append(w.localQ, localAct{act: msg.Act, bucket: msg.Bucket, depth: msg.Depth})
				w.drainLocal()
			case MsgMigrateOut:
				w.handleMigrateOut(msg.Moves)
			case MsgMigrateIn:
				w.proc.InjectBucket(msg.Inject)
			}
			w.flushActs(false)
		}
		// Force out anything a chaotic flush deferral held back; a
		// no-op on the plain path (per-message flushes left nothing).
		w.flushActs(true)
		n := len(w.batch)
		if rt.rec != nil {
			rt.rec.Span(w.id, "batch", t0, rt.nowNS(), batchLabels(n, &kinds)...)
		}
		// Deliver buffered conflict-set deltas and publish counters
		// before deregistering the batch, so quiescence implies the
		// control goroutine sees every delta.
		w.flushInsts()
		w.publishCounters()
		rt.counts[w.id].AddRecv(n)
		rt.counter.Add(-n)
	}
}

// batchLabels annotates a drained-batch span with its total and
// per-kind message counts.
func batchLabels(n int, kinds *[numMsgKinds]int) []obs.Label {
	labels := make([]obs.Label, 0, 1+int(numMsgKinds))
	labels = append(labels, obs.Label{Key: "msgs", Value: strconv.Itoa(n)})
	names := [numMsgKinds]string{"cycles", "acts", "migrates-out", "migrates-in"}
	for k, c := range kinds {
		if c > 0 {
			labels = append(labels, obs.Label{Key: names[k], Value: strconv.Itoa(c)})
		}
	}
	return labels
}

// flushActs ships the coalescing buffers: outstanding work and sent
// counters are accounted for the whole flush before any message
// becomes visible, then each destination mailbox is locked once.
// Under chaos a non-forced flush may be randomly deferred — the
// pending messages simply coalesce into a later flush of the same
// turn, which the end-of-turn forced call guarantees. Deferral is safe
// because the turn's batch stays registered with the termination
// detector until after the forced flush.
func (w *worker) flushActs(force bool) {
	if w.pendingSends == 0 {
		return
	}
	if !force && w.chaos != nil && w.chaos.deferFlush() {
		return
	}
	rt := w.rt
	rt.counter.Add(w.pendingSends)
	rt.counts[w.id].AddSent(w.pendingSends)
	w.turnSent += int64(w.pendingSends)
	total := w.pendingSends
	w.pendingSends = 0
	var ts int64
	if w.ctrack != nil {
		ts = rt.nowNS()
	}
	for dst, buf := range w.outBufs {
		if len(buf) == 0 {
			continue
		}
		batch := rt.causal.NextBatch()
		w.ctrack.Send(ts, w.turnCycle, batch, int32(dst), int32(len(buf)))
		rt.workers[dst].inbox.PushBatch(buf, batch, int32(w.id))
		w.outBufs[dst] = buf[:0]
	}
	w.ctrack.Flush(ts, w.turnCycle, int32(total))
}

// flushInsts delivers the turn's conflict-set deltas to the control
// goroutine in one append.
func (w *worker) flushInsts() {
	if len(w.instBuf) == 0 {
		return
	}
	rt := w.rt
	rt.instMu.Lock()
	rt.insts = append(rt.insts, w.instBuf...)
	rt.instMu.Unlock()
	rt.instCount.Add(int64(len(w.instBuf)))
	w.instBuf = w.instBuf[:0]
}

// publishCounters folds the turn-local activation counters into the
// shared snapshot atomics (once per turn, not once per activation).
func (w *worker) publishCounters() {
	if w.turnProcessed > 0 {
		w.rt.processed[w.id].Add(w.turnProcessed)
		w.turnProcessed = 0
	}
	if w.turnSent > 0 {
		w.rt.msgsSent[w.id].Add(w.turnSent)
		w.turnSent = 0
	}
}

// sendInst buffers an instantiation delta for bulk delivery to the
// control goroutine at end of turn.
func (w *worker) sendInst(ic rete.InstChange) {
	w.instBuf = append(w.instBuf, ic)
}

// process performs one activation, routing successors to the workers
// owning their buckets. Locally-owned successors are processed
// recursively — the zero-message fast path of the fine granularity;
// remote successors are coalesced per destination and flushed at end
// of turn. bucket is the activation's hash bucket, already computed by
// whoever routed the activation here; depth is the activation's
// position in the cycle's dependency chain (roots are 1), carried so
// the flight recorder can measure the cycle's critical path.
//
// Production-node activations become instantiation deltas, not handle
// events, and contribute neither depth nor fan-out — mirroring the
// sequential matcher, whose trace listener records Instantiation, not
// Activation, for them. The measured per-cycle MaxDepth therefore
// walks the same activation forest as analysis.CriticalPath.
// drainLocal performs queued activations in FIFO order, appending
// locally-owned successors to the same queue. Breadth-first order
// matches the sequential matcher's queue discipline, which keeps the
// measured depth attribution of join discovery comparable to the
// recorded trace: a depth-first expansion could walk a chain into a
// join node before the sibling roots feeding the join's other side
// have been stored, so the join would later fire from the shallow
// side and the measured activation forest would flatten.
func (w *worker) drainLocal() {
	for qi := 0; qi < len(w.localQ); qi++ {
		la := w.localQ[qi]
		w.processOne(la.act, int(la.bucket), la.depth)
	}
	w.localQ = w.localQ[:0]
}

// processOne performs a single activation, queueing locally-owned
// successors on localQ and buffering remote ones for the turn's flush.
func (w *worker) processOne(act rete.Activation, bucket int, depth int32) {
	rt := w.rt
	if act.Node.Kind == rete.KindProduction {
		// A root activation of a single-CE production.
		w.sendInst(w.proc.BuildInst(act))
		return
	}
	w.turnProcessed++
	if w.bucketLoad != nil {
		w.bucketLoad[bucket]++
	}

	fanout := int32(0)
	w.proc.ProcessAt(act, bucket,
		func(child rete.Activation) {
			if child.Node.Kind == rete.KindProduction {
				w.sendInst(w.proc.BuildInst(child))
				return
			}
			fanout++
			b := w.proc.Bucket(child)
			owner := rt.opts.Partition[b]
			if owner == w.id {
				w.localQ = append(w.localQ, localAct{act: child, bucket: int32(b), depth: depth + 1})
				return
			}
			w.outBufs[owner] = append(w.outBufs[owner], Message{Kind: MsgAct, Bucket: int32(b), Depth: depth + 1, Act: child})
			w.pendingSends++
		},
		func(rete.InstChange) {
			panic("parallel: unexpected instantiation emission")
		})
	w.ctrack.Handle(w.turnTS, w.turnCycle, int32(bucket), depth, fanout)
}

// netter nets raw deltas per instantiation key: within one match
// phase an instantiation may be added and deleted several times (e.g.
// through negative-node transients whose interleaving is
// order-dependent); only the net effect is meaningful, and netting
// makes the result independent of worker scheduling. The index map and
// accumulator slices are scratch reused across cycles; the returned
// slice is freshly allocated (callers may retain it).
type netter struct {
	idx  map[string]int
	accs []netAcc
	keys []string
}

type netAcc struct {
	net  int
	last rete.InstChange
}

func (n *netter) net(raw []rete.InstChange) []rete.InstChange {
	if len(raw) == 0 {
		return nil
	}
	if n.idx == nil {
		n.idx = make(map[string]int)
	} else {
		clear(n.idx)
	}
	n.accs = n.accs[:0]
	n.keys = n.keys[:0]
	for _, ic := range raw {
		k := ic.Key()
		i, ok := n.idx[k]
		if !ok {
			i = len(n.accs)
			n.idx[k] = i
			n.accs = append(n.accs, netAcc{})
			n.keys = append(n.keys, k)
		}
		a := &n.accs[i]
		if ic.Tag == rete.Add {
			a.net++
		} else {
			a.net--
		}
		a.last = ic
	}
	sort.Strings(n.keys)
	var out []rete.InstChange
	for _, k := range n.keys {
		a := &n.accs[n.idx[k]]
		switch {
		case a.net > 0:
			ic := a.last
			ic.Tag = rete.Add
			out = append(out, ic)
		case a.net < 0:
			ic := a.last
			ic.Tag = rete.Delete
			out = append(out, ic)
		}
	}
	return out
}

// NetInsts nets raw conflict-set deltas per instantiation key exactly
// as Apply does before returning — exported so out-of-process control
// planes (internal/transport) produce the same deterministic netted
// output as the in-process runtime.
func NetInsts(raw []rete.InstChange) []rete.InstChange {
	var n netter
	return n.net(raw)
}
