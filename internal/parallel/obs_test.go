package parallel

import (
	"bytes"
	"testing"

	"mpcrete/internal/obs"
	"mpcrete/internal/ops5"
	"mpcrete/internal/rete"
)

// TestRuntimeTimeline runs a match phase under a recorder and checks
// the wall-clock timeline: per-worker cycle spans, a quiescence span
// on the control track, and a valid Chrome export.
func TestRuntimeTimeline(t *testing.T) {
	net, _ := compileProds(t,
		`(p pair (team ^name <t>) (slot ^id <s>) --> (make pairing ^team <t> ^slot <s>))`)
	rec := obs.NewRecorder()
	rt, err := New(net, Options{
		Workers:  2,
		Detector: FourCounterDetector,
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	var changes []rete.Change
	id := 1
	add := func(w *ops5.WME) {
		w.ID, w.TimeTag = id, id
		id++
		changes = append(changes, rete.Change{Tag: rete.Add, WME: w})
	}
	for i := 0; i < 4; i++ {
		add(ops5.NewWME("team", "name", i))
		add(ops5.NewWME("slot", "id", i))
	}
	if got := rt.Apply(changes); len(got) != 16 {
		t.Fatalf("conflict set = %d, want 16", len(got))
	}

	cycleSpans := map[int]int{}
	quiesce := 0
	for _, sp := range rec.Spans() {
		if sp.T1 < sp.T0 {
			t.Errorf("span %v ends before it starts", sp)
		}
		switch {
		case sp.Kind == "cycle":
			cycleSpans[sp.Proc]++
		case sp.Kind == "quiesce" && sp.Proc == rt.controlTrack():
			quiesce++
			if len(sp.Labels) != 1 || sp.Labels[0].Key != "waves" {
				t.Errorf("quiesce span labels = %v", sp.Labels)
			}
		}
	}
	if cycleSpans[0] != 1 || cycleSpans[1] != 1 {
		t.Errorf("cycle spans per worker = %v, want one each", cycleSpans)
	}
	if quiesce != 1 {
		t.Errorf("quiesce spans = %d, want 1", quiesce)
	}

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"worker 0"`, `"worker 1"`, `"control"`, `"cycle-broadcast"`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("chrome trace missing %s", want)
		}
	}
}
