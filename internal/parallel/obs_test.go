package parallel

import (
	"bytes"
	"strconv"
	"testing"

	"mpcrete/internal/obs"
	"mpcrete/internal/ops5"
	"mpcrete/internal/rete"
)

// TestRuntimeTimeline runs a match phase under a recorder and checks
// the wall-clock timeline: one span per drained mailbox batch on each
// worker (with per-kind message counts, so observability costs one
// span per turn rather than one per message), a quiescence span on the
// control track, and a valid Chrome export.
func TestRuntimeTimeline(t *testing.T) {
	net, _ := compileProds(t,
		`(p pair (team ^name <t>) (slot ^id <s>) --> (make pairing ^team <t> ^slot <s>))`)
	rec := obs.NewRecorder()
	rt, err := New(net, Options{
		Workers:  2,
		Detector: FourCounterDetector,
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	var changes []rete.Change
	id := 1
	add := func(w *ops5.WME) {
		w.ID, w.TimeTag = id, id
		id++
		changes = append(changes, rete.Change{Tag: rete.Add, WME: w})
	}
	for i := 0; i < 4; i++ {
		add(ops5.NewWME("team", "name", i))
		add(ops5.NewWME("slot", "id", i))
	}
	if got := rt.Apply(changes); len(got) != 16 {
		t.Fatalf("conflict set = %d, want 16", len(got))
	}

	// Each worker reports batched spans: the sum of per-worker "msgs"
	// counts must cover one cycle message per worker plus every
	// routed activation, with one span per drained batch.
	batchSpans := map[int]int{}
	batchMsgs := map[int]int{}
	cycleMsgs := 0
	quiesce := 0
	for _, sp := range rec.Spans() {
		if sp.T1 < sp.T0 {
			t.Errorf("span %v ends before it starts", sp)
		}
		switch {
		case sp.Kind == "batch":
			batchSpans[sp.Proc]++
			for _, l := range sp.Labels {
				n, err := strconv.Atoi(l.Value)
				if err != nil {
					t.Errorf("batch label %s=%q is not a count", l.Key, l.Value)
				}
				switch l.Key {
				case "msgs":
					batchMsgs[sp.Proc] += n
				case "cycles":
					cycleMsgs += n
				}
			}
		case sp.Kind == "quiesce" && sp.Proc == rt.controlTrack():
			quiesce++
			if len(sp.Labels) != 1 || sp.Labels[0].Key != "waves" {
				t.Errorf("quiesce span labels = %v", sp.Labels)
			}
		}
	}
	for w := 0; w < 2; w++ {
		if batchSpans[w] < 1 {
			t.Errorf("worker %d: no batch spans", w)
		}
		if batchMsgs[w] < 1 {
			t.Errorf("worker %d: batch spans cover %d messages", w, batchMsgs[w])
		}
	}
	if cycleMsgs != 2 {
		t.Errorf("cycle messages across batch spans = %d, want one per worker", cycleMsgs)
	}
	if quiesce != 1 {
		t.Errorf("quiesce spans = %d, want 1", quiesce)
	}

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"worker 0"`, `"worker 1"`, `"control"`, `"cycle-broadcast"`, `"batch"`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("chrome trace missing %s", want)
		}
	}
}

// TestRuntimeTimelineRouted checks the routed-mode control-track
// instant: one "cycle-route" event carrying the change and root
// counts.
func TestRuntimeTimelineRouted(t *testing.T) {
	net, _ := compileProds(t,
		`(p pair (team ^name <t>) (slot ^id <s>) --> (make pairing ^team <t> ^slot <s>))`)
	rec := obs.NewRecorder()
	rt, err := New(net, Options{Workers: 2, RouteRoots: true, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	var changes []rete.Change
	for i := 0; i < 4; i++ {
		w := ops5.NewWME("team", "name", i)
		w.ID, w.TimeTag = i+1, i+1
		changes = append(changes, rete.Change{Tag: rete.Add, WME: w})
	}
	rt.Apply(changes)

	routed := 0
	for _, in := range rec.Instants() {
		if in.Name != "cycle-route" {
			continue
		}
		routed++
		got := map[string]string{}
		for _, l := range in.Labels {
			got[l.Key] = l.Value
		}
		if got["changes"] != "4" {
			t.Errorf("cycle-route changes label = %q, want 4", got["changes"])
		}
		if got["roots"] == "" || got["roots"] == "0" {
			t.Errorf("cycle-route roots label = %q, want > 0", got["roots"])
		}
	}
	if routed != 1 {
		t.Errorf("cycle-route instants = %d, want 1", routed)
	}
}
