package parallel

import (
	"math/rand"
	"testing"

	"mpcrete/internal/ops5"
	"mpcrete/internal/rete"
	"mpcrete/internal/sched"
)

func TestRepartitionPreservesMatchState(t *testing.T) {
	// Build up token memories, migrate every bucket to new owners,
	// then continue matching: results must stay identical to the
	// sequential matcher.
	srcs := []string{
		`(p j3 (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (halt))`,
		`(p neg (a ^x <v>) -(d ^x <v>) --> (halt))`,
	}
	net, _ := compileProds(t, srcs...)
	seqNet, _ := compileProds(t, srcs...)
	seq := rete.NewMatcher(seqNet, rete.MatcherOptions{NBuckets: 64})
	rt, err := New(net, Options{Workers: 4, NBuckets: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	seqCS, parCS := map[string]bool{}, map[string]bool{}
	rng := rand.New(rand.NewSource(5))
	id := 1
	var live []*ops5.WME

	step := func(tag rete.Tag, w *ops5.WME) {
		ch := []rete.Change{{Tag: tag, WME: w}}
		applyDeltas(seqCS, seq.Apply(ch))
		applyDeltas(parCS, rt.Apply(ch))
		if !setsEqual(seqCS, parCS) {
			t.Fatalf("divergence after %v %v", tag, w)
		}
	}

	for round := 0; round < 6; round++ {
		for i := 0; i < 10; i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				j := rng.Intn(len(live))
				step(rete.Delete, live[j])
				live = append(live[:j], live[j+1:]...)
				continue
			}
			w := ops5.NewWME([]string{"a", "b", "c", "d"}[rng.Intn(4)], "x", rng.Intn(3))
			w.ID, w.TimeTag = id, id
			id++
			step(rete.Add, w)
			live = append(live, w)
		}
		// Migrate to a fresh random partition between rounds.
		newPart := sched.Random(64, 4, int64(round+100))
		stats, err := rt.Repartition(newPart)
		if err != nil {
			t.Fatal(err)
		}
		if round > 0 && stats.BucketsMoved == 0 {
			t.Error("expected some buckets to move")
		}
	}
}

func TestRepartitionCostIsProportionalToState(t *testing.T) {
	// The paper's "too costly" claim, measured: after a cross-product
	// populates the memories, a full repartition ships every stored
	// token.
	net, _ := compileProds(t, `(p cross (a ^x <u>) (b ^y <w>) --> (halt))`)
	rt, err := New(net, Options{Workers: 4, NBuckets: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	var changes []rete.Change
	for i := 1; i <= 40; i++ {
		class := "a"
		if i%2 == 0 {
			class = "b"
		}
		w := ops5.NewWME(class, "x", i)
		if class == "b" {
			w = ops5.NewWME(class, "y", i)
		}
		w.ID, w.TimeTag = i, i
		changes = append(changes, rete.Change{Tag: rete.Add, WME: w})
	}
	rt.Apply(changes)

	// Rotate every bucket to the next worker: all stored state moves.
	newPart := make(sched.Partition, 32)
	for b := range newPart {
		newPart[b] = (rt.opts.Partition[b] + 1) % 4
	}
	stats, err := rt.Repartition(newPart)
	if err != nil {
		t.Fatal(err)
	}
	// 40 wmes stored once each (cross product join: 20 left tokens +
	// 20 right wmes) — every one must travel.
	if stats.EntriesMoved != 40 {
		t.Errorf("entries moved = %d, want 40", stats.EntriesMoved)
	}
	if stats.BucketsMoved != 32 {
		t.Errorf("buckets moved = %d, want 32", stats.BucketsMoved)
	}
	if stats.Messages == 0 || stats.Messages > 32 {
		t.Errorf("messages = %d", stats.Messages)
	}

	// Matching still works after the rotation.
	w := ops5.NewWME("a", "x", 999)
	w.ID, w.TimeTag = 999, 999
	out := rt.Apply([]rete.Change{{Tag: rete.Add, WME: w}})
	adds := 0
	for _, ic := range out {
		if ic.Tag == rete.Add {
			adds++
		}
	}
	if adds != 20 { // pairs with the 20 b-wmes
		t.Errorf("new cross-product rows = %d, want 20", adds)
	}
}

func TestRepartitionValidation(t *testing.T) {
	net, _ := compileProds(t, `(p j (a ^x 1) --> (halt))`)
	rt, err := New(net, Options{Workers: 2, NBuckets: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if _, err := rt.Repartition(make(sched.Partition, 4)); err == nil {
		t.Error("short partition accepted")
	}
	bad := sched.RoundRobin(16, 5) // worker indices out of range
	if _, err := rt.Repartition(bad); err == nil {
		t.Error("out-of-range partition accepted")
	}
	// No-op repartition is free.
	stats, err := rt.Repartition(sched.RoundRobin(16, 2))
	if err != nil {
		t.Fatal(err)
	}
	if stats.BucketsMoved != 0 || stats.EntriesMoved != 0 {
		t.Errorf("no-op repartition moved %+v", stats)
	}
}
