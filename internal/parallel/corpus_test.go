package parallel_test

import (
	"testing"

	"mpcrete/internal/difftest"
)

// TestSharedCorpusUnderChaos replays the shared difftest corpus —
// same-cycle add-before-delete transients, cross-product bursts,
// negation feedback — through the parallel runtime's differential
// matrix with the chaos scheduling layer enabled across several seeds.
// The corpus files double as fuzz seeds (internal/difftest) and as the
// regression suite here: any interleaving sensitivity in batching,
// flush coalescing, or termination detection shows up as a conflict-set
// divergence against the sequential reference.
func TestSharedCorpusUnderChaos(t *testing.T) {
	cases, err := difftest.LoadCorpus("../difftest/testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("shared corpus is empty")
	}
	chaosSeeds := []int64{1, 7, 42}
	if testing.Short() {
		chaosSeeds = chaosSeeds[:1]
	}
	for _, c := range cases {
		t.Run(c.Name, func(t *testing.T) {
			for _, seed := range chaosSeeds {
				opts := difftest.CheckOptions{
					MaxCycles: 30,
					Workers:   []int{2, 4, 8},
					ChaosSeed: seed,
				}
				if mis := difftest.Check(c, opts); mis != nil {
					t.Fatalf("chaos seed %d: %v", seed, mis)
				}
			}
		})
	}
}
