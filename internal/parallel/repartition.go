package parallel

import (
	"fmt"

	"mpcrete/internal/rete"
	"mpcrete/internal/sched"
)

// MigrationStats reports the cost of one Repartition call — the
// quantity the paper declined to pay ("moving hash-buckets around to
// change the token distribution is too costly", Section 5.2.2). The
// runtime implements migration so the cost can be measured instead of
// assumed.
type MigrationStats struct {
	// BucketsMoved is the number of bucket pairs that changed owner.
	BucketsMoved int
	// EntriesMoved is the number of stored tokens (left + right)
	// shipped between workers.
	EntriesMoved int
	// Messages is the number of migration messages exchanged.
	Messages int
}

// migration protocol messages (handled in worker.loop).
type migrateOut struct {
	// moves maps bucket -> new owner for buckets this worker loses.
	moves map[int]int
}

type migrateIn struct {
	contents *rete.BucketContents
}

// Repartition changes the bucket-to-worker assignment of a quiescent
// runtime, migrating stored tokens to their new owners, and returns
// the measured cost. It must be called between Apply calls.
func (rt *Runtime) Repartition(newPart sched.Partition) (MigrationStats, error) {
	if rt.closed {
		return MigrationStats{}, fmt.Errorf("parallel: Repartition after Close")
	}
	if !rt.refDelivery {
		// Migration messages carry live *rete.BucketContents pointers;
		// only a by-reference transport (see RefTransport) can deliver
		// them.
		return MigrationStats{}, fmt.Errorf("parallel: Repartition requires an in-process (by-reference) transport")
	}
	if len(newPart) != rt.opts.NBuckets {
		return MigrationStats{}, fmt.Errorf("parallel: partition covers %d buckets, want %d", len(newPart), rt.opts.NBuckets)
	}
	if err := newPart.Validate(rt.opts.Workers); err != nil {
		return MigrationStats{}, err
	}

	// Plan the moves per losing worker.
	perWorker := make([]map[int]int, rt.opts.Workers)
	var stats MigrationStats
	for b := range newPart {
		oldOwner, newOwner := rt.opts.Partition[b], newPart[b]
		if oldOwner == newOwner {
			continue
		}
		if perWorker[oldOwner] == nil {
			perWorker[oldOwner] = map[int]int{}
		}
		perWorker[oldOwner][b] = newOwner
		stats.BucketsMoved++
	}

	// Execute: each losing worker extracts and ships; receivers inject.
	// The work counter provides the barrier.
	for w, moves := range perWorker {
		if moves == nil {
			continue
		}
		rt.counter.Add(1)
		rt.controlCounts().IncSent()
		rt.workers[w].inbox.Push(Message{Kind: MsgMigrateOut, migrate: &migrateOut{moves: moves}}, rt.causal.NextBatch(), int32(rt.opts.Workers))
	}
	rt.counter.Wait()

	// Collect measured costs from the workers.
	for _, w := range rt.workers {
		stats.EntriesMoved += w.migratedEntries
		stats.Messages += w.migrationMsgs
		w.migratedEntries, w.migrationMsgs = 0, 0
	}
	rt.opts.Partition = newPart
	return stats, nil
}

// handleMigrateOut runs on the losing worker: extract each bucket and
// ship its contents to the new owner.
func (w *worker) handleMigrateOut(m *migrateOut) {
	rt := w.rt
	// Deterministic order for reproducible message counts.
	buckets := make([]int, 0, len(m.moves))
	for b := range m.moves {
		buckets = append(buckets, b)
	}
	for i := 1; i < len(buckets); i++ {
		for j := i; j > 0 && buckets[j] < buckets[j-1]; j-- {
			buckets[j], buckets[j-1] = buckets[j-1], buckets[j]
		}
	}
	for _, b := range buckets {
		bc := w.proc.ExtractBucket(b)
		if bc.Entries() == 0 {
			continue // nothing stored; ownership transfer is free
		}
		w.migratedEntries += bc.Entries()
		w.migrationMsgs++
		rt.counter.Add(1)
		rt.counts[w.id].IncSent()
		rt.workers[m.moves[b]].inbox.Push(Message{Kind: MsgMigrateIn, inject: &migrateIn{contents: bc}}, rt.causal.NextBatch(), int32(w.id))
	}
}
