package parallel

import (
	"fmt"

	"mpcrete/internal/sched"
)

// MigrationStats reports the cost of one migration — the quantity the
// paper declined to pay ("moving hash-buckets around to change the
// token distribution is too costly", Section 5.2.2). The runtime
// implements migration so the cost can be measured instead of assumed.
type MigrationStats struct {
	// BucketsMoved is the number of bucket pairs that changed owner.
	BucketsMoved int
	// EntriesMoved is the number of stored tokens (left + right)
	// shipped between workers.
	EntriesMoved int
	// Messages is the number of migration messages exchanged.
	Messages int
}

// Repartition changes the bucket-to-worker assignment of a quiescent
// runtime, migrating stored tokens to their new owners, and returns
// the measured cost. It must be called between Apply calls. The same
// machinery runs automatically at cycle boundaries when
// Options.Rebalance or Options.ForceMigrate is set.
func (rt *Runtime) Repartition(newPart sched.Partition) (MigrationStats, error) {
	if rt.closed {
		return MigrationStats{}, fmt.Errorf("parallel: Repartition after Close")
	}
	return rt.migrate(newPart)
}

// migrate executes a bucket migration on the quiescent runtime: each
// losing worker extracts the moved buckets and ships their contents to
// the new owners; the work counter provides the barrier; routing
// switches atomically (from the workers' point of view, between
// cycles) when rt.opts.Partition is replaced at the end.
func (rt *Runtime) migrate(newPart sched.Partition) (MigrationStats, error) {
	if !rt.canMigrate {
		// Migration messages carry *rete.BucketContents; they travel by
		// pointer on a RefTransport and serialized on a
		// MigrationTransport. Anything else cannot deliver them.
		return MigrationStats{}, fmt.Errorf("parallel: migration requires a transport that carries the migration protocol (RefTransport or MigrationTransport)")
	}
	if len(newPart) != rt.opts.NBuckets {
		return MigrationStats{}, fmt.Errorf("parallel: partition covers %d buckets, want %d", len(newPart), rt.opts.NBuckets)
	}
	if err := newPart.Validate(rt.opts.Workers); err != nil {
		return MigrationStats{}, err
	}

	// Plan the moves per losing worker, sorted by bucket (the loop
	// ascends buckets) for reproducible message counts.
	perWorker := make([][]BucketMove, rt.opts.Workers)
	var stats MigrationStats
	for b := range newPart {
		oldOwner, newOwner := rt.opts.Partition[b], newPart[b]
		if oldOwner == newOwner {
			continue
		}
		perWorker[oldOwner] = append(perWorker[oldOwner], BucketMove{Bucket: int32(b), NewOwner: int32(newOwner)})
		stats.BucketsMoved++
	}

	for w, moves := range perWorker {
		if moves == nil {
			continue
		}
		rt.counter.Add(1)
		rt.controlCounts().IncSent()
		rt.workers[w].inbox.Push(Message{Kind: MsgMigrateOut, Moves: moves}, rt.causal.NextBatch(), int32(rt.opts.Workers))
	}
	rt.counter.Wait()
	if err := rt.counter.Err(); err != nil {
		return MigrationStats{}, err
	}

	// Collect measured costs from the workers (quiescent again).
	for _, w := range rt.workers {
		stats.EntriesMoved += w.migratedEntries
		stats.Messages += w.migrationMsgs
		w.migratedEntries, w.migrationMsgs = 0, 0
	}
	rt.opts.Partition = newPart
	return stats, nil
}

// handleMigrateOut runs on the losing worker: extract each listed
// bucket and ship its contents to the new owner.
func (w *worker) handleMigrateOut(moves []BucketMove) {
	rt := w.rt
	for _, mv := range moves {
		bc := w.proc.ExtractBucket(int(mv.Bucket))
		if bc.Entries() == 0 {
			continue // nothing stored; ownership transfer is free
		}
		w.migratedEntries += bc.Entries()
		w.migrationMsgs++
		rt.counter.Add(1)
		rt.counts[w.id].IncSent()
		rt.workers[mv.NewOwner].inbox.Push(Message{Kind: MsgMigrateIn, Inject: bc}, rt.causal.NextBatch(), int32(w.id))
	}
}
