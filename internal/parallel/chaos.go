package parallel

// The chaos layer (Options.ChaosSeed != 0) deliberately perturbs the
// runtime's scheduling so that -race stress and the differential
// harness (internal/difftest) explore message interleavings a quiet
// machine never produces:
//
//   - drained activation runs are randomly re-interleaved, preserving
//     only per-bucket FIFO order — the one ordering the hashed
//     memories rely on (a token's add and delete hash to the same
//     bucket, and the netted conflict set is order-independent beyond
//     that);
//   - turns are randomly split, with the tail of a batch carried into
//     a later turn, so end-of-turn bookkeeping (conflict-set delivery,
//     counter publication, termination-detection deregistration) fires
//     at adversarial points;
//   - coalesced flushes are randomly deferred within a turn, delaying
//     when outgoing activations become visible to their owners;
//   - workers and the control goroutine's four-counter poll inject
//     yields and microsecond sleeps to stretch race windows.
//
// Everything here is driven by a per-goroutine rand.Rand seeded from
// ChaosSeed and the worker id, so a given (seed, workers) pair replays
// the same perturbation schedule. The invariant the whole layer must
// uphold — and the differential harness asserts — is that the netted
// per-cycle conflict sets and final working memory are identical to an
// unperturbed run.

import (
	"math/rand"
	"runtime"
	"time"
)

type chaos struct {
	rng *rand.Rand

	// carry holds the deferred tail of a split batch; it is processed
	// ahead of newly arrived messages on a later turn (chaos-owned
	// backing array — batch slices are donated back to the mailbox and
	// must not be aliased).
	carry []Message

	// shuffleRun scratch.
	buckets map[int32][]Message
	order   []int32
}

func newChaos(seed int64, id int) *chaos {
	// Mix the id multiplicatively so seed/seed+1 don't collide with
	// worker 1/worker 0 of adjacent seeds.
	return &chaos{
		rng:     rand.New(rand.NewSource(seed + int64(id+1)*0x9e3779b97f4a7c)),
		buckets: map[int32][]Message{},
	}
}

// nextBatch is the chaotic replacement for a plain mailbox drain: it
// assembles the turn's messages from any carried-over tail plus the
// mailbox, perturbs the activation order, and possibly holds back a
// suffix for a later turn. ok == false reports mailbox closure once
// the carry has drained too. Progress is guaranteed: every returned
// batch is non-empty, and a split leaves strictly fewer messages in
// the carry than it took in.
//
// Recv stamps are passed through from the drain that produced them:
// the flight recorder marks arrival (drain time), so a carried message
// is recv'd on its drain turn even if handled on a later one — the
// only causal imprecision the chaos layer introduces.
func (c *chaos) nextBatch(w *worker) ([]Message, []RecvStamp, bool) {
	var batch []Message
	var stamps []RecvStamp
	if len(c.carry) == 0 {
		b, s, ok := w.inbox.Drain(w.batch, w.stampBuf)
		if !ok {
			return b, s, false
		}
		batch, stamps = b, s
	} else {
		// Deferred messages pending: don't block on the mailbox (no one
		// may ever send again), just take whatever else arrived and
		// process the carry first to preserve arrival order.
		drained, s, _ := w.inbox.TryDrain(w.batch, w.stampBuf)
		combined := make([]Message, 0, len(c.carry)+len(drained))
		combined = append(combined, c.carry...)
		combined = append(combined, drained...)
		c.carry = c.carry[:0]
		batch, stamps = combined, s
	}

	c.perturb(batch)

	// Randomly split the turn, carrying a strict suffix into a later
	// turn. The suffix must be copied: the batch's backing array is
	// donated back to the mailbox on the next drain.
	if len(batch) > 1 && c.rng.Intn(3) == 0 {
		cut := 1 + c.rng.Intn(len(batch)-1)
		c.carry = append(c.carry[:0], batch[cut:]...)
		batch = batch[:cut]
	}

	c.jitter()
	return batch, stamps, true
}

// perturb re-interleaves each maximal run of MsgAct messages in place.
// Non-act messages (cycle packets, migrations) act as barriers: they
// carry phase semantics and keep their positions.
func (c *chaos) perturb(batch []Message) {
	i := 0
	for i < len(batch) {
		if batch[i].Kind != MsgAct {
			i++
			continue
		}
		j := i
		for j < len(batch) && batch[j].Kind == MsgAct {
			j++
		}
		if j-i > 1 {
			c.shuffleRun(batch[i:j])
		}
		i = j
	}
}

// shuffleRun writes a random interleaving of the run's messages that
// preserves the relative order of messages sharing a hash bucket. This
// is exactly the reordering freedom real message-passing hardware has:
// different buckets live in different memories with no ordering
// relation, while same-bucket traffic (in particular a token's add
// followed by its delete) is serialized by its owner.
func (c *chaos) shuffleRun(run []Message) {
	clear(c.buckets)
	c.order = c.order[:0]
	for _, m := range run {
		if _, seen := c.buckets[m.Bucket]; !seen {
			c.order = append(c.order, m.Bucket)
		}
		c.buckets[m.Bucket] = append(c.buckets[m.Bucket], m)
	}
	if len(c.order) < 2 {
		return
	}
	for i := range run {
		k := c.rng.Intn(len(c.order))
		b := c.order[k]
		q := c.buckets[b]
		run[i] = q[0]
		if len(q) == 1 {
			c.order[k] = c.order[len(c.order)-1]
			c.order = c.order[:len(c.order)-1]
			delete(c.buckets, b)
		} else {
			c.buckets[b] = q[1:]
		}
	}
}

// deferFlush decides whether a non-forced coalescing flush is held
// back to coalesce into a later flush of the same turn.
func (c *chaos) deferFlush() bool {
	return c.rng.Intn(2) == 0
}

// jitter stretches race windows between turns.
func (c *chaos) jitter() {
	switch c.rng.Intn(8) {
	case 0:
		time.Sleep(time.Duration(1+c.rng.Intn(20)) * time.Microsecond)
	case 1, 2:
		runtime.Gosched()
	}
}

// yield is the control goroutine's chaotic four-counter poll: mostly
// plain yields, occasionally a sleep long enough for workers to make
// real progress between the detector's two passes.
func (c *chaos) yield() {
	if c.rng.Intn(4) == 0 {
		time.Sleep(time.Duration(1+c.rng.Intn(5)) * time.Microsecond)
	} else {
		runtime.Gosched()
	}
}
