package parallel

import "sync"

// mailbox is an unbounded FIFO message queue. Unbounded matters: with
// bounded channels, two workers exchanging cross-product bursts can
// fill each other's inboxes and deadlock; the paper's cross-product
// section routinely aims thousands of tokens at one bucket owner.
// Per-sender FIFO order is preserved, which the runtime relies on for
// add-before-delete ordering of same-token activations.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []message
	head   int // consumed prefix length
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// push enqueues a message; it never blocks.
func (m *mailbox) push(msg message) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		panic("parallel: send on closed mailbox")
	}
	m.queue = append(m.queue, msg)
	m.cond.Signal()
	m.mu.Unlock()
}

// pop dequeues the next message, blocking until one is available or
// the mailbox closes (ok == false).
func (m *mailbox) pop() (message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.head == len(m.queue) && !m.closed {
		m.cond.Wait()
	}
	if m.head == len(m.queue) {
		return message{}, false
	}
	msg := m.queue[m.head]
	m.queue[m.head] = message{} // release payload references promptly
	m.head++
	// Compact once the consumed prefix dominates, so a long-lived
	// mailbox's backing array stays proportional to its live contents.
	if m.head > 64 && m.head*2 >= len(m.queue) {
		n := copy(m.queue, m.queue[m.head:])
		for i := n; i < len(m.queue); i++ {
			m.queue[i] = message{}
		}
		m.queue = m.queue[:n]
		m.head = 0
	}
	return msg, true
}

// close wakes all blocked readers; pending messages are still
// delivered before pop reports closure.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}
