package parallel

import (
	"sync"

	"mpcrete/internal/obs"
)

// recvStamp records the provenance of a contiguous run of enqueued
// messages: the sender's causal batch id, the sending track, and how
// many messages the run contained. Stamps exist only when the mailbox
// was created stamped (a causal recorder is attached); they are the
// receive half of the send->recv happens-before edge.
type RecvStamp struct {
	Batch int32
	Src   int32
	Count int32
}

// mailbox is an unbounded FIFO message queue consumed in batches.
// Unbounded matters: with bounded channels, two workers exchanging
// cross-product bursts can fill each other's inboxes and deadlock; the
// paper's cross-product section routinely aims thousands of tokens at
// one bucket owner. Per-sender FIFO order is preserved — pushBatch
// appends a sender's coalesced messages in order, and drain hands the
// queue back in arrival order — which the runtime relies on for
// add-before-delete ordering of same-token activations.
//
// The consumer side is batched: drain swaps the whole pending queue
// for an empty buffer donated by the caller, so the owning worker
// takes the lock once per turn no matter how many messages arrived,
// and the two buffers ping-pong between worker and mailbox with no
// per-message allocation in steady state. Stamp buffers ping-pong the
// same way, so causal recording stays allocation-free too.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	stamps []RecvStamp
	closed bool
	// stamped enables recvStamp recording (set when the runtime has a
	// causal recorder attached).
	stamped bool
	// dropped counts post-close sends (the parallel.dropped_post_close
	// obs counter; nil is a no-op). Close is only legal on a quiescent
	// runtime, so during normal operation the count stays zero — soak
	// runs assert exactly that.
	dropped *obs.Counter
}

func newMailbox(dropped *obs.Counter, stamped bool) *mailbox {
	m := &mailbox{dropped: dropped, stamped: stamped}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// push enqueues one message; it never blocks. batch and src stamp the
// message's causal provenance (ignored on unstamped mailboxes). Sends
// on a closed mailbox are dropped (and counted): during shutdown a
// straggler worker flushing its coalescing buffer can race close, and
// by the time Close is legal (the runtime is quiescent) no droppable
// message can carry live work.
func (m *mailbox) Push(msg Message, batch, src int32) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.dropped.Inc()
		return
	}
	m.queue = append(m.queue, msg)
	if m.stamped {
		m.stamps = append(m.stamps, RecvStamp{Batch: batch, Src: src, Count: 1})
	}
	m.cond.Signal()
	m.mu.Unlock()
}

// pushBatch enqueues a sender's coalesced messages in order under one
// lock acquisition, recording a single stamp for the whole run on
// stamped mailboxes. The batch is copied, so the caller may reuse its
// buffer immediately. Like push, it drops (and counts) after close.
func (m *mailbox) PushBatch(msgs []Message, batch, src int32) {
	if len(msgs) == 0 {
		return
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.dropped.Add(int64(len(msgs)))
		return
	}
	m.queue = append(m.queue, msgs...)
	if m.stamped {
		m.stamps = append(m.stamps, RecvStamp{Batch: batch, Src: src, Count: int32(len(msgs))})
	}
	m.cond.Signal()
	m.mu.Unlock()
}

// drain blocks until at least one message is pending (or the mailbox
// closes, reported as ok == false), then takes the entire pending
// queue in one swap: the caller receives every queued message (and, on
// stamped mailboxes, the matching stamps) and donates buf/sbuf
// (truncated, capacity kept) as the mailbox's next backing arrays.
// Pending messages are still delivered after close; ok == false means
// closed *and* empty.
func (m *mailbox) Drain(buf []Message, sbuf []RecvStamp) (batch []Message, stamps []RecvStamp, ok bool) {
	buf = buf[:0]
	if sbuf != nil {
		sbuf = sbuf[:0]
	}
	m.mu.Lock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		m.mu.Unlock()
		return buf, sbuf, false
	}
	batch = m.queue
	m.queue = buf
	stamps = m.stamps
	m.stamps = sbuf
	m.mu.Unlock()
	return batch, stamps, true
}

// tryDrain is the non-blocking drain the chaos layer uses while it
// holds deferred messages: it takes whatever is pending (possibly
// nothing) without waiting. ok == false means closed and empty, as for
// drain.
func (m *mailbox) TryDrain(buf []Message, sbuf []RecvStamp) (batch []Message, stamps []RecvStamp, ok bool) {
	buf = buf[:0]
	if sbuf != nil {
		sbuf = sbuf[:0]
	}
	m.mu.Lock()
	if len(m.queue) == 0 {
		closed := m.closed
		m.mu.Unlock()
		return buf, sbuf, !closed
	}
	batch = m.queue
	m.queue = buf
	stamps = m.stamps
	m.stamps = sbuf
	m.mu.Unlock()
	return batch, stamps, true
}

// close wakes all blocked readers; pending messages are still
// delivered before drain reports closure, and later sends are dropped.
func (m *mailbox) Close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}
