package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mpcrete/internal/engine"
	"mpcrete/internal/obs"
	"mpcrete/internal/ops5"
	"mpcrete/internal/workloads"
)

// testProg mirrors the engine package's session test program: joins,
// negation, modify, halt. The run budget below stops short of
// quiescence so snapshots expose a non-empty conflict set.
const testProg = `
(literalize item name state)
(literalize log entry)
(literalize phase name)

(p promote
    (phase ^name run)
    (item ^name <n> ^state raw)
    -->
    (modify 2 ^state cooked)
    (make log ^entry <n>))

(p finish
    (phase ^name run)
    -(item ^state raw)
    -->
    (halt))
`

func testWMEs(n int) string {
	var b strings.Builder
	b.WriteString("(phase ^name run)\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "(item ^name i%d ^state raw)\n", i)
	}
	return b.String()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *Client) {
	t.Helper()
	if cfg.Compiled == nil {
		prog, err := ops5.ParseProgram(testProg)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		cfg.Compiled, err = engine.Compile(prog, engine.CompileOptions{})
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, NewClient(ts.URL, ts.Client())
}

// referenceState runs the same partial workload on an independently
// compiled private engine and renders conflict-set keys plus working
// memory — the oracle every server session must match byte for byte.
func referenceState(t *testing.T, n, runCycles int) string {
	t.Helper()
	prog, err := ops5.ParseProgram(testProg)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	e, err := engine.New(prog, engine.Options{})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	wmes, err := ops5.ParseWMEs(testWMEs(n))
	if err != nil {
		t.Fatalf("parse wmes: %v", err)
	}
	e.Assert(wmes...)
	if _, err := e.RunCycles(runCycles); err != nil && err != engine.ErrCycleLimit {
		t.Fatalf("run: %v", err)
	}
	return renderSnapshot(e.Snapshot())
}

func renderSnapshot(snap *engine.Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fired=%d halted=%v next=%d\n", snap.Fired, snap.Halted, snap.NextTimeTag)
	for _, w := range snap.WMEs {
		fmt.Fprintf(&b, "wm %d:%d %s\n", w.ID, w.TimeTag, w)
	}
	for _, in := range snap.ConflictSet {
		fmt.Fprintf(&b, "cs %s\n", in.Key)
	}
	return b.String()
}

func renderWire(snap *SnapshotResponse) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fired=%d halted=%v next=%d\n", snap.Fired, snap.Halted, snap.NextTimeTag)
	for _, w := range snap.WMEs {
		fmt.Fprintf(&b, "wm %d:%d %s\n", w.ID, w.TimeTag, w.Text)
	}
	for _, in := range snap.ConflictSet {
		fmt.Fprintf(&b, "cs %s\n", in.Key)
	}
	return b.String()
}

// TestManyConcurrentSessionsParity is the tentpole's acceptance test:
// at least 1000 sessions live at once in one server process (128 in
// -short mode), each driven through the HTTP API with a partial run so
// the conflict set is non-empty, and each session's conflict set and
// working memory byte-identical to an independently-compiled engine
// given the same inputs.
func TestManyConcurrentSessionsParity(t *testing.T) {
	sessions := 1000
	if testing.Short() {
		sessions = 128
	}
	// HTTP fan-out is throttled to keep fd counts sane; the sessions
	// themselves all stay open between waves, so the server genuinely
	// holds `sessions` live tenants at once.
	const httpConcurrency = 32
	const runCycles = 2

	// Per-session workload size: 1 + i%5 items. Partial run: 2 cycles.
	refs := make([]string, 6)
	for n := 1; n <= 5; n++ {
		refs[n] = referenceState(t, n, runCycles)
	}

	srv, _, client := newTestServer(t, Config{
		MaxSessions: sessions + 8,
		MaxInflight: httpConcurrency,
		QueueDepth:  httpConcurrency * 4,
	})

	sem := make(chan struct{}, httpConcurrency)
	throttled := func(fn func()) {
		sem <- struct{}{}
		defer func() { <-sem }()
		fn()
	}

	ids := make([]string, sessions)
	errs := make(chan error, sessions)
	var wg sync.WaitGroup

	// Wave 1: open every session (with its wmes) and run it partially.
	for i := 0; i < sessions; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			throttled(func() {
				n := 1 + i%5
				id, err := client.Open(false, testWMEs(n))
				if err != nil {
					errs <- fmt.Errorf("open %d: %w", i, err)
					return
				}
				ids[i] = id
				if _, err := client.Run(id, runCycles); err != nil {
					errs <- fmt.Errorf("run %d: %w", i, err)
				}
			})
		}()
	}
	wg.Wait()
	if live := srv.sessions.live(); live != sessions {
		t.Fatalf("live sessions = %d, want %d", live, sessions)
	}

	// Wave 2: snapshot every live session and compare to the oracle.
	for i := 0; i < sessions; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			throttled(func() {
				if ids[i] == "" {
					return
				}
				snap, err := client.Snapshot(ids[i])
				if err != nil {
					errs <- fmt.Errorf("snapshot %d: %w", i, err)
					return
				}
				n := 1 + i%5
				if got := renderWire(snap); got != refs[n] {
					errs <- fmt.Errorf("session %d (n=%d) diverged:\nref:\n%s\ngot:\n%s", i, n, refs[n], got)
				}
			})
		}()
	}
	wg.Wait()

	// Wave 3: close everything.
	for i := 0; i < sessions; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			throttled(func() {
				if ids[i] != "" {
					if err := client.Close(ids[i]); err != nil {
						errs <- fmt.Errorf("close %d: %w", i, err)
					}
				}
			})
		}()
	}
	wg.Wait()
	close(errs)
	failures := 0
	for err := range errs {
		failures++
		if failures <= 5 {
			t.Error(err)
		}
	}
	if failures > 5 {
		t.Errorf("... and %d more failures", failures-5)
	}
	if live := srv.sessions.live(); live != 0 {
		t.Errorf("live sessions = %d after close wave, want 0", live)
	}
}

func TestSessionLifecycleAndBatch(t *testing.T) {
	_, _, client := newTestServer(t, Config{
		Workload: workloads.NamedProgram{Name: "test", WMEs: testWMEs(3)},
	})

	// Seeded open + batch(run) + snapshot matches the plain path.
	id, err := client.Open(true, "")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	results, err := client.Batch(id, []BatchOp{
		{Op: "assert", WMEs: "(item ^name extra ^state raw)"},
		{Op: "run", MaxCycles: 100},
		{Op: "bogus"},
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("batch results = %d, want 3", len(results))
	}
	if len(results[0].IDs) != 1 {
		t.Errorf("batch assert ids = %v, want one", results[0].IDs)
	}
	if results[1].Run == nil || !results[1].Run.Halted {
		t.Errorf("batch run result = %+v, want halted", results[1].Run)
	}
	if results[2].Err == "" {
		t.Errorf("bogus op did not report an error")
	}

	snap, err := client.Snapshot(id)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if !snap.Halted || snap.Fired == 0 {
		t.Errorf("snapshot = fired %d halted %v, want a finished run", snap.Fired, snap.Halted)
	}

	// Retract round trip on a fresh session.
	id2, err := client.Open(false, "")
	if err != nil {
		t.Fatalf("open 2: %v", err)
	}
	ids, err := client.Assert(id2, "(item ^name x ^state raw)")
	if err != nil || len(ids) != 1 {
		t.Fatalf("assert: ids=%v err=%v", ids, err)
	}
	if removed, err := client.Retract(id2, ids[0]); err != nil || !removed {
		t.Fatalf("retract: removed=%v err=%v", removed, err)
	}
	if removed, _ := client.Retract(id2, 9999); removed {
		t.Errorf("retract of unknown id reported removed")
	}

	stats, err := client.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.SessionsLive != 2 || stats.SessionsOpened != 2 {
		t.Errorf("stats = live %d opened %d, want 2/2", stats.SessionsLive, stats.SessionsOpened)
	}

	if err := client.Close(id); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := client.Close(id); err == nil {
		t.Errorf("double close did not error")
	} else if se := err.(*StatusError); se.Code != http.StatusNotFound {
		t.Errorf("double close status = %d, want 404", se.Code)
	}
}

func TestSessionLimit(t *testing.T) {
	_, _, client := newTestServer(t, Config{MaxSessions: 2})
	for i := 0; i < 2; i++ {
		if _, err := client.Open(false, ""); err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
	}
	_, err := client.Open(false, "")
	se, ok := err.(*StatusError)
	if !ok || se.Code != http.StatusTooManyRequests {
		t.Fatalf("open beyond limit: err=%v, want 429", err)
	}
}

func TestAdmissionOverflow(t *testing.T) {
	// One execution slot, zero queue tolerance beyond it: a second
	// request while the first is parked must bounce with 429.
	srv, _, client := newTestServer(t, Config{MaxInflight: 1, QueueDepth: 1})

	release := make(chan struct{})
	blocked := make(chan struct{})
	srv.mux.HandleFunc("GET /test/block", srv.admitted(func(w http.ResponseWriter, r *http.Request) {
		close(blocked)
		<-release
	}))

	go client.do("GET", "/test/block", nil, nil)
	<-blocked

	// Slot busy: this waiter fills the queue...
	errCh := make(chan error, 1)
	go func() { errCh <- client.do("GET", "/v1/sessions/none/snapshot", nil, nil) }()
	for srv.adm.waitingNow() == 0 {
		time.Sleep(time.Millisecond)
	}

	// ...so with the queue occupied, one more must get 429.
	overflowErr := client.do("POST", "/v1/sessions", nil, nil)
	close(release)
	if se, ok := overflowErr.(*StatusError); !ok || se.Code != http.StatusTooManyRequests {
		t.Errorf("overflow request err = %v, want 429", overflowErr)
	}
	// The queued request is eventually admitted and then 404s (no such
	// session) — admission let it through once the slot freed.
	if err := <-errCh; err == nil {
		t.Errorf("queued snapshot of unknown session returned nil error, want 404")
	} else if se, ok := err.(*StatusError); !ok || se.Code != http.StatusNotFound {
		t.Errorf("queued request err = %v, want 404 after admission", err)
	}
}

func TestDrain(t *testing.T) {
	srv, _, client := newTestServer(t, Config{})
	id, err := client.Open(false, "")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if !client.Healthy() {
		t.Fatalf("healthz failed before drain")
	}

	srv.Drain()

	if client.Healthy() {
		t.Errorf("healthz ok during drain, want 503")
	}
	_, err = client.Open(false, "")
	if se, ok := err.(*StatusError); !ok || se.Code != http.StatusServiceUnavailable {
		t.Errorf("open after drain err = %v, want 503", err)
	}
	if _, err := client.Snapshot(id); err == nil {
		t.Errorf("snapshot after drain succeeded, want rejection")
	}
	if live := srv.sessions.live(); live != 0 {
		t.Errorf("live sessions after drain = %d, want 0", live)
	}
	// Stats stays readable (unadmitted route) and reports draining.
	stats, err := client.Stats()
	if err != nil {
		t.Fatalf("stats during drain: %v", err)
	}
	if !stats.Draining {
		t.Errorf("stats.Draining = false during drain")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts, client := newTestServer(t, Config{Metrics: reg})
	id, err := client.Open(false, "")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	_ = id
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("metrics content type = %q", ct)
	}
	if reg.Counter("server.sessions_opened").Value() != 1 {
		t.Errorf("sessions_opened counter = %d, want 1",
			reg.Counter("server.sessions_opened").Value())
	}
}

func TestBadRequests(t *testing.T) {
	_, _, client := newTestServer(t, Config{})
	if _, err := client.Open(false, "(not valid"); err == nil {
		t.Errorf("open with bad wme source succeeded")
	}
	if _, err := client.Snapshot("nope"); err == nil {
		t.Errorf("snapshot of unknown session succeeded")
	}
	if _, err := client.Assert("nope", "(item ^name x)"); err == nil {
		t.Errorf("assert to unknown session succeeded")
	}
}

func TestLoadGenerator(t *testing.T) {
	_, _, client := newTestServer(t, Config{
		Workload: workloads.NamedProgram{Name: "test", WMEs: testWMEs(2)},
	})
	report, err := RunLoad(client, LoadSpec{Clients: 4, Sessions: 3})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	byName := map[string]bool{}
	var sessionsSec float64
	for _, b := range report.Benchmarks {
		byName[b.Name] = true
		if b.Meta["p99_ns"] == "" || b.Meta["p50_ns"] == "" {
			t.Errorf("%s: missing percentile meta: %v", b.Name, b.Meta)
		}
		if b.Name == "load/session" {
			sessionsSec = b.EventsPerSec
			if b.Iters != 12 {
				t.Errorf("load/session iters = %d, want 12", b.Iters)
			}
		}
	}
	for _, want := range []string{"load/open", "load/run", "load/snapshot", "load/close", "load/session"} {
		if !byName[want] {
			t.Errorf("report missing benchmark %s (have %v)", want, byName)
		}
	}
	if sessionsSec <= 0 {
		t.Errorf("load/session events/sec = %v, want > 0", sessionsSec)
	}

	// Batch mode exercises the batch endpoint instead of run.
	report, err = RunLoad(client, LoadSpec{Clients: 2, Sessions: 2, Batch: true})
	if err != nil {
		t.Fatalf("RunLoad batch: %v", err)
	}
	found := false
	for _, b := range report.Benchmarks {
		if b.Name == "load/batch" {
			found = true
		}
	}
	if !found {
		t.Errorf("batch report missing load/batch benchmark")
	}
}

func TestPercentile(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(samples, 0.5); p != 5 {
		t.Errorf("p50 = %v, want 5", p)
	}
	if p := percentile(samples, 0.99); p != 10 {
		t.Errorf("p99 = %v, want 10", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Errorf("empty percentile = %v, want 0", p)
	}
}
