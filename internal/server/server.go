// Package server is the multi-tenant OPS5 rule-engine service behind
// cmd/ops5d. One engine.Compiled — the immutable Rete network plus
// production metadata — is compiled at startup and shared read-only by
// every session; each tenant gets its own engine.Session (working
// memory, conflict set, counters) recycled through an
// engine.SessionPool.
//
// The HTTP surface is JSON over these routes:
//
//	POST   /v1/sessions                open a session ({"seed":true} loads
//	                                   the workload's default wmes; "wmes"
//	                                   loads explicit OPS5 wme source)
//	DELETE /v1/sessions/{id}           close a session (recycled to pool)
//	POST   /v1/sessions/{id}/assert    {"wmes": "(...)"} -> {"ids": [...]}
//	POST   /v1/sessions/{id}/retract   {"id": N} -> {"removed": bool}
//	POST   /v1/sessions/{id}/run       {"max_cycles": N} -> fired/halted
//	POST   /v1/sessions/{id}/batch     [{op...}] -> per-op results
//	GET    /v1/sessions/{id}/snapshot  full working memory + conflict set
//	GET    /v1/stats                   server-level counters
//	GET    /metrics                    obs.Registry JSON snapshot
//	GET    /healthz                    200 ok / 503 draining
//
// Admission control: request execution is bounded by MaxInflight slots;
// arrivals beyond that wait in a queue bounded by QueueDepth, and
// overflow is rejected with 429 so a burst degrades crisply instead of
// stacking goroutines. Drain() (SIGTERM in ops5d) stops admission with
// 503 and waits for in-flight requests to finish.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"

	"mpcrete/internal/engine"
	"mpcrete/internal/obs"
	"mpcrete/internal/ops5"
	"mpcrete/internal/workloads"
)

// Config parameterizes a Server.
type Config struct {
	// Compiled is the shared immutable program; required.
	Compiled *engine.Compiled
	// Workload optionally names the served program and provides the
	// default wme source for {"seed": true} session opens.
	Workload workloads.NamedProgram
	// MaxSessions bounds live sessions (default 4096). Opens beyond it
	// are rejected with 429.
	MaxSessions int
	// MaxInflight bounds concurrently executing requests (default
	// 2*GOMAXPROCS).
	MaxInflight int
	// QueueDepth bounds requests waiting for an inflight slot (default
	// 256); overflow is rejected with 429.
	QueueDepth int
	// DefaultMaxCycles is the run budget when a run request does not
	// set max_cycles (default 1000).
	DefaultMaxCycles int
	// Metrics receives server counters and backs /metrics; a private
	// registry is created when nil.
	Metrics *obs.Registry
	// NewMatcher, when non-nil, constructs each session's match
	// implementation (e.g. a parallel runtime with the adaptive
	// rebalancer armed — ops5d -parallel/-rebalance). Sessions whose
	// matcher cannot reset are closed on release instead of pooled.
	NewMatcher func() engine.MatchApplier
}

// Server is the multi-tenant session service. Create with New, mount
// via Handler.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	sessions *sessionTable
	adm      *admission

	reqs      *obs.Counter
	rejected  *obs.Counter
	opened    *obs.Counter
	closed    *obs.Counter
	asserts   *obs.Counter
	fired     *obs.Counter
	liveGauge *obs.Gauge
}

// New builds a server over a compiled program.
func New(cfg Config) (*Server, error) {
	if cfg.Compiled == nil {
		return nil, errors.New("server: Config.Compiled is required")
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 4096
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.DefaultMaxCycles <= 0 {
		cfg.DefaultMaxCycles = 1000
	}
	if cfg.Metrics == nil {
		// The server's stats endpoint reads these counters, so a
		// registry always exists even when the caller wants none.
		cfg.Metrics = obs.NewRegistry()
	}
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		sessions: newSessionTable(cfg.Compiled, cfg.MaxSessions, cfg.NewMatcher),
		adm:      newAdmission(cfg.MaxInflight, cfg.QueueDepth),

		reqs:      cfg.Metrics.Counter("server.requests"),
		rejected:  cfg.Metrics.Counter("server.rejected"),
		opened:    cfg.Metrics.Counter("server.sessions_opened"),
		closed:    cfg.Metrics.Counter("server.sessions_closed"),
		asserts:   cfg.Metrics.Counter("server.wmes_asserted"),
		fired:     cfg.Metrics.Counter("server.instantiations_fired"),
		liveGauge: cfg.Metrics.Gauge("server.sessions_live"),
	}
	s.routes()
	return s, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/sessions", s.admitted(s.handleOpen))
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.admitted(s.handleClose))
	s.mux.HandleFunc("POST /v1/sessions/{id}/assert", s.admitted(s.handleAssert))
	s.mux.HandleFunc("POST /v1/sessions/{id}/retract", s.admitted(s.handleRetract))
	s.mux.HandleFunc("POST /v1/sessions/{id}/run", s.admitted(s.handleRun))
	s.mux.HandleFunc("POST /v1/sessions/{id}/batch", s.admitted(s.handleBatch))
	s.mux.HandleFunc("GET /v1/sessions/{id}/snapshot", s.admitted(s.handleSnapshot))
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops admitting requests (503) and blocks until every in-flight
// request has finished. Open sessions are then closed.
func (s *Server) Drain() {
	s.adm.drain()
	s.sessions.closeAll()
	s.liveGauge.Set(0)
}

// admitted wraps a handler in admission control: draining -> 503, queue
// overflow -> 429, otherwise the handler runs holding an inflight slot.
func (s *Server) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.reqs.Inc()
		switch s.adm.acquire(r.Context()) {
		case admitOK:
			defer s.adm.release()
			h(w, r)
		case admitDraining:
			s.rejected.Inc()
			httpError(w, http.StatusServiceUnavailable, "draining")
		case admitOverflow:
			s.rejected.Inc()
			httpError(w, http.StatusTooManyRequests, "request queue full")
		case admitCanceled:
			httpError(w, 499, "client canceled") // nginx's non-standard code
		}
	}
}

type openRequest struct {
	// Seed loads the configured workload's default initial wmes.
	Seed bool `json:"seed,omitempty"`
	// WMEs is OPS5 wme source to load instead of (or after) the seed.
	WMEs string `json:"wmes,omitempty"`
}

type openResponse struct {
	SessionID string `json:"session_id"`
	Asserted  []int  `json:"asserted,omitempty"`
}

func (s *Server) handleOpen(w http.ResponseWriter, r *http.Request) {
	var req openRequest
	if !decodeBody(w, r, &req) {
		return
	}
	src := ""
	if req.Seed {
		src = s.cfg.Workload.WMEs
	}
	if req.WMEs != "" {
		src += "\n" + req.WMEs
	}
	var wmes []*ops5.WME
	if strings.TrimSpace(src) != "" {
		var err error
		wmes, err = ops5.ParseWMEs(src)
		if err != nil {
			httpError(w, http.StatusBadRequest, "parse wmes: %v", err)
			return
		}
	}
	sess, err := s.sessions.open()
	if err != nil {
		s.rejected.Inc()
		httpError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	s.opened.Inc()
	s.liveGauge.Set(float64(s.sessions.live()))
	resp := openResponse{SessionID: sess.id}
	if len(wmes) > 0 {
		sess.do(func(eng *engine.Session) {
			for _, a := range eng.Assert(wmes...) {
				resp.Asserted = append(resp.Asserted, a.ID)
			}
		})
		s.asserts.Add(int64(len(resp.Asserted)))
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.close(r.PathValue("id")) {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	s.closed.Inc()
	s.liveGauge.Set(float64(s.sessions.live()))
	writeJSON(w, http.StatusOK, map[string]bool{"closed": true})
}

type assertRequest struct {
	WMEs string `json:"wmes"`
}

type assertResponse struct {
	IDs []int `json:"ids"`
}

func (s *Server) handleAssert(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req assertRequest
	if !decodeBody(w, r, &req) {
		return
	}
	wmes, err := ops5.ParseWMEs(req.WMEs)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parse wmes: %v", err)
		return
	}
	var resp assertResponse
	if !sess.do(func(eng *engine.Session) {
		for _, a := range eng.Assert(wmes...) {
			resp.IDs = append(resp.IDs, a.ID)
		}
	}) {
		httpError(w, http.StatusNotFound, "session closed")
		return
	}
	s.asserts.Add(int64(len(resp.IDs)))
	writeJSON(w, http.StatusOK, resp)
}

type retractRequest struct {
	ID int `json:"id"`
}

func (s *Server) handleRetract(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req retractRequest
	if !decodeBody(w, r, &req) {
		return
	}
	var removed bool
	if !sess.do(func(eng *engine.Session) { removed = eng.Retract(req.ID) }) {
		httpError(w, http.StatusNotFound, "session closed")
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"removed": removed})
}

type runRequest struct {
	MaxCycles int `json:"max_cycles,omitempty"`
}

// RunResult is the outcome of a run (or batch run) operation.
type RunResult struct {
	Fired      int  `json:"fired"`
	TotalFired int  `json:"total_fired"`
	Halted     bool `json:"halted"`
	// CycleLimit reports that the run stopped at the cycle budget with
	// the conflict set still non-empty.
	CycleLimit bool `json:"cycle_limit,omitempty"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req runRequest
	if !decodeBody(w, r, &req) {
		return
	}
	var (
		res RunResult
		err error
	)
	if !sess.do(func(eng *engine.Session) { res, err = s.run(eng, req.MaxCycles) }) {
		httpError(w, http.StatusNotFound, "session closed")
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "run: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// run runs MRA cycles on an engine the caller has locked via sess.do.
func (s *Server) run(eng *engine.Session, maxCycles int) (RunResult, error) {
	if maxCycles <= 0 {
		maxCycles = s.cfg.DefaultMaxCycles
	}
	fired, err := eng.RunCycles(maxCycles)
	res := RunResult{Fired: fired, TotalFired: eng.Fired(), Halted: eng.Halted()}
	s.fired.Add(int64(fired))
	if err == engine.ErrCycleLimit {
		res.CycleLimit = true
		err = nil
	}
	return res, err
}

// BatchOp is one operation in a batch request. Op is "assert",
// "retract", or "run"; the other fields parameterize it as in the
// single-op endpoints.
type BatchOp struct {
	Op        string `json:"op"`
	WMEs      string `json:"wmes,omitempty"`
	ID        int    `json:"id,omitempty"`
	MaxCycles int    `json:"max_cycles,omitempty"`
}

// BatchOpResult is the outcome of one BatchOp. Exactly the fields of
// the corresponding single-op response are set; Err reports a per-op
// failure (later ops still run).
type BatchOpResult struct {
	IDs     []int      `json:"ids,omitempty"`
	Removed *bool      `json:"removed,omitempty"`
	Run     *RunResult `json:"run,omitempty"`
	Err     string     `json:"err,omitempty"`
}

// handleBatch executes a sequence of ops under ONE session lock
// acquisition and one HTTP round trip — the request-batching path for
// chatty clients.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var ops []BatchOp
	if !decodeBody(w, r, &ops) {
		return
	}
	results := make([]BatchOpResult, len(ops))
	if !sess.do(func(eng *engine.Session) {
		for i, op := range ops {
			switch op.Op {
			case "assert":
				wmes, err := ops5.ParseWMEs(op.WMEs)
				if err != nil {
					results[i].Err = fmt.Sprintf("parse wmes: %v", err)
					continue
				}
				for _, a := range eng.Assert(wmes...) {
					results[i].IDs = append(results[i].IDs, a.ID)
				}
				s.asserts.Add(int64(len(results[i].IDs)))
			case "retract":
				removed := eng.Retract(op.ID)
				results[i].Removed = &removed
			case "run":
				res, err := s.run(eng, op.MaxCycles)
				if err != nil {
					results[i].Err = err.Error()
					continue
				}
				results[i].Run = &res
			default:
				results[i].Err = fmt.Sprintf("unknown op %q", op.Op)
			}
		}
	}) {
		httpError(w, http.StatusNotFound, "session closed")
		return
	}
	writeJSON(w, http.StatusOK, results)
}

// SnapshotWME is the wire form of one working-memory element.
type SnapshotWME struct {
	ID      int    `json:"id"`
	TimeTag int    `json:"time_tag"`
	Text    string `json:"text"` // OPS5 source syntax
}

// SnapshotResponse is the wire form of an engine.Snapshot.
type SnapshotResponse struct {
	WMEs        []SnapshotWME         `json:"wmes"`
	ConflictSet []engine.SnapshotInst `json:"conflict_set"`
	Fired       int                   `json:"fired"`
	Halted      bool                  `json:"halted"`
	NextTimeTag int                   `json:"next_time_tag"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	// Snapshot aliases nothing mutable, so the lock is released before
	// serialization.
	var snap *engine.Snapshot
	if !sess.do(func(eng *engine.Session) { snap = eng.Snapshot() }) {
		httpError(w, http.StatusNotFound, "session closed")
		return
	}
	resp := SnapshotResponse{
		WMEs:        make([]SnapshotWME, 0, len(snap.WMEs)),
		ConflictSet: snap.ConflictSet,
		Fired:       snap.Fired,
		Halted:      snap.Halted,
		NextTimeTag: snap.NextTimeTag,
	}
	if resp.ConflictSet == nil {
		resp.ConflictSet = []engine.SnapshotInst{}
	}
	for _, wme := range snap.WMEs {
		resp.WMEs = append(resp.WMEs, SnapshotWME{ID: wme.ID, TimeTag: wme.TimeTag, Text: wme.String()})
	}
	writeJSON(w, http.StatusOK, resp)
}

// Stats is the /v1/stats document.
type Stats struct {
	Workload        string `json:"workload,omitempty"`
	Productions     int    `json:"productions"`
	SessionsLive    int    `json:"sessions_live"`
	SessionsOpened  int64  `json:"sessions_opened"`
	SessionsClosed  int64  `json:"sessions_closed"`
	PooledSessions  int    `json:"pooled_sessions"`
	Requests        int64  `json:"requests"`
	Rejected        int64  `json:"rejected"`
	WMEsAsserted    int64  `json:"wmes_asserted"`
	InstsFired      int64  `json:"instantiations_fired"`
	InflightWaiting int64  `json:"inflight_waiting"`
	Draining        bool   `json:"draining"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Stats{
		Workload:        s.cfg.Workload.Name,
		Productions:     len(s.cfg.Compiled.Program().Productions),
		SessionsLive:    s.sessions.live(),
		SessionsOpened:  s.opened.Value(),
		SessionsClosed:  s.closed.Value(),
		PooledSessions:  s.sessions.pooled(),
		Requests:        s.reqs.Value(),
		Rejected:        s.rejected.Value(),
		WMEsAsserted:    s.asserts.Value(),
		InstsFired:      s.fired.Value(),
		InflightWaiting: s.adm.waitingNow(),
		Draining:        s.adm.draining(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.cfg.Metrics.WriteJSON(w); err != nil {
		httpError(w, http.StatusInternalServerError, "metrics: %v", err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.adm.draining() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*session, bool) {
	sess := s.sessions.get(r.PathValue("id"))
	if sess == nil {
		httpError(w, http.StatusNotFound, "no such session")
		return nil, false
	}
	return sess, true
}

// decodeBody parses a JSON request body into v; an empty body leaves v
// zero. It writes a 400 and returns false on malformed JSON.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil && err.Error() != "EOF" {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}
