package server

import (
	"runtime"
	"testing"
	"time"

	"mpcrete/internal/engine"
	"mpcrete/internal/ops5"
	"mpcrete/internal/parallel"
	"mpcrete/internal/sched"
)

// TestParallelRebalanceSessions serves sessions whose match phase runs
// on per-session parallel runtimes with the online adaptive
// rebalancer armed hair-trigger from an all-on-worker-0 assignment
// (Config.NewMatcher, the ops5d -parallel/-rebalance path). Every
// session's snapshot must stay byte-identical to the sequential
// oracle, and closed sessions must release their worker goroutines
// rather than being shelved dirty.
func TestParallelRebalanceSessions(t *testing.T) {
	prog, err := ops5.ParseProgram(testProg)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	compiled, err := engine.Compile(prog, engine.CompileOptions{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	const runCycles = 2
	srv, _, client := newTestServer(t, Config{
		Compiled: compiled,
		NewMatcher: func() engine.MatchApplier {
			rt, err := parallel.New(compiled.Network(), parallel.Options{
				Workers:   2,
				NBuckets:  64,
				Partition: make(sched.Partition, 64),
				Rebalance: sched.Rebalance{Threshold: 1.01, MinInterval: 1},
			})
			if err != nil {
				panic(err)
			}
			return rt
		},
	})

	before := runtime.NumGoroutine()
	const sessions = 8
	ids := make([]string, sessions)
	for i := range ids {
		n := 1 + i%5
		id, err := client.Open(false, testWMEs(n))
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		ids[i] = id
		if _, err := client.Run(id, runCycles); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	for i, id := range ids {
		n := 1 + i%5
		snap, err := client.Snapshot(id)
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		if got, want := renderWire(snap), referenceState(t, n, runCycles); got != want {
			t.Fatalf("session %d (n=%d) diverged:\nref:\n%s\ngot:\n%s", i, n, want, got)
		}
	}
	for _, id := range ids {
		if err := client.Close(id); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
	if live := srv.sessions.live(); live != 0 {
		t.Fatalf("live sessions = %d after close, want 0", live)
	}
	// Parallel matchers cannot Reset, so nothing may sit in the pool
	// holding worker goroutines.
	if n := srv.sessions.pooled(); n != 0 {
		t.Fatalf("pool shelved %d parallel sessions; they must be closed instead", n)
	}
	// The per-session runtimes' workers must wind down after close.
	waitGoroutinesBelow(t, before+4)
}

func waitGoroutinesBelow(t *testing.T, max int) {
	t.Helper()
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= max {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines did not wind down: %d live, want <= %d", runtime.NumGoroutine(), max)
}
