package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"mpcrete/internal/engine"
)

// Client is a typed HTTP client for the ops5d wire protocol, used by
// cmd/ops5load, the server benchmarks, and the smoke tests.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient targets a server at base (e.g. "http://127.0.0.1:8080").
// hc may be nil for http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, hc: hc}
}

// do issues one JSON request; out may be nil to discard the body.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e errorResponse
		msg := ""
		if json.NewDecoder(resp.Body).Decode(&e) == nil {
			msg = ": " + e.Error
		}
		return &StatusError{Code: resp.StatusCode, Msg: fmt.Sprintf("%s %s: %s%s", method, path, resp.Status, msg)}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// StatusError is a non-2xx server response.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string { return e.Msg }

// Open creates a session. seed loads the server workload's default
// wmes; wmes is additional OPS5 wme source (may be empty).
func (c *Client) Open(seed bool, wmes string) (string, error) {
	var resp openResponse
	err := c.do("POST", "/v1/sessions", openRequest{Seed: seed, WMEs: wmes}, &resp)
	return resp.SessionID, err
}

// Close deletes a session.
func (c *Client) Close(id string) error {
	return c.do("DELETE", "/v1/sessions/"+id, nil, nil)
}

// Assert adds wmes (OPS5 source) and returns their assigned IDs.
func (c *Client) Assert(id, wmes string) ([]int, error) {
	var resp assertResponse
	err := c.do("POST", "/v1/sessions/"+id+"/assert", assertRequest{WMEs: wmes}, &resp)
	return resp.IDs, err
}

// Retract removes the wme with the given working-memory ID.
func (c *Client) Retract(id string, wmeID int) (bool, error) {
	var resp struct {
		Removed bool `json:"removed"`
	}
	err := c.do("POST", "/v1/sessions/"+id+"/retract", retractRequest{ID: wmeID}, &resp)
	return resp.Removed, err
}

// Run fires MRA cycles (maxCycles <= 0 uses the server default).
func (c *Client) Run(id string, maxCycles int) (RunResult, error) {
	var resp RunResult
	err := c.do("POST", "/v1/sessions/"+id+"/run", runRequest{MaxCycles: maxCycles}, &resp)
	return resp, err
}

// Batch executes a sequence of ops in one round trip.
func (c *Client) Batch(id string, ops []BatchOp) ([]BatchOpResult, error) {
	var resp []BatchOpResult
	err := c.do("POST", "/v1/sessions/"+id+"/batch", ops, &resp)
	return resp, err
}

// Snapshot fetches the session's full observable state.
func (c *Client) Snapshot(id string) (*SnapshotResponse, error) {
	resp := &SnapshotResponse{}
	err := c.do("GET", "/v1/sessions/"+id+"/snapshot", nil, resp)
	return resp, err
}

// ConflictSet fetches just the session's conflict set, best-first.
func (c *Client) ConflictSet(id string) ([]engine.SnapshotInst, error) {
	snap, err := c.Snapshot(id)
	if err != nil {
		return nil, err
	}
	return snap.ConflictSet, nil
}

// Stats fetches the server-level counters.
func (c *Client) Stats() (Stats, error) {
	var resp Stats
	err := c.do("GET", "/v1/stats", nil, &resp)
	return resp, err
}

// Healthy reports whether /healthz returns 200.
func (c *Client) Healthy() bool {
	return c.do("GET", "/healthz", nil, nil) == nil
}
