package server

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"mpcrete/internal/benchfmt"
)

// LoadSpec parameterizes a load run: Clients concurrent simulated
// clients each drive Sessions full session lifecycles (open with the
// server workload's seed wmes, run to quiescence, snapshot, close)
// against the target server.
type LoadSpec struct {
	Clients  int
	Sessions int
	// MaxCycles caps each run request (0 uses the server default).
	MaxCycles int
	// Batch folds assert-free run+snapshot into one batch round trip
	// followed by a snapshot, exercising the batching path.
	Batch bool
	// Label prefixes the emitted benchmark names (default "load").
	Label string
}

// latencies accumulates per-operation latency samples from all
// clients.
type latencies struct {
	mu      sync.Mutex
	byOp    map[string][]float64 // op -> ns samples
	errs    int
	lastErr error
}

func (l *latencies) record(op string, d time.Duration) {
	l.mu.Lock()
	l.byOp[op] = append(l.byOp[op], float64(d.Nanoseconds()))
	l.mu.Unlock()
}

func (l *latencies) fail(err error) {
	l.mu.Lock()
	l.errs++
	l.lastErr = err
	l.mu.Unlock()
}

// percentile returns the q-quantile (0 < q <= 1) of sorted samples.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// RunLoad drives the load spec against the server behind c and returns
// the latency/throughput report in the cmd/bench results schema: one
// benchmark per operation (NsPerOp = mean latency; p50_ns/p99_ns in
// Meta) plus a whole-lifecycle benchmark whose EventsPerSec is the
// sustained sessions/sec across all clients.
func RunLoad(c *Client, spec LoadSpec) (*benchfmt.File, error) {
	if spec.Clients <= 0 {
		spec.Clients = 1
	}
	if spec.Sessions <= 0 {
		spec.Sessions = 1
	}
	if spec.Label == "" {
		spec.Label = "load"
	}
	lat := &latencies{byOp: make(map[string][]float64)}

	timed := func(op string, fn func() error) error {
		start := time.Now()
		err := fn()
		if err != nil {
			lat.fail(err)
			return err
		}
		lat.record(op, time.Since(start))
		return nil
	}

	start := time.Now()
	var wg sync.WaitGroup
	for cl := 0; cl < spec.Clients; cl++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < spec.Sessions; i++ {
				sessStart := time.Now()
				var id string
				if err := timed("open", func() (err error) {
					id, err = c.Open(true, "")
					return err
				}); err != nil {
					continue
				}
				if spec.Batch {
					if timed("batch", func() error {
						_, err := c.Batch(id, []BatchOp{{Op: "run", MaxCycles: spec.MaxCycles}})
						return err
					}) != nil {
						c.Close(id)
						continue
					}
				} else if timed("run", func() error {
					_, err := c.Run(id, spec.MaxCycles)
					return err
				}) != nil {
					c.Close(id)
					continue
				}
				if timed("snapshot", func() error {
					_, err := c.Snapshot(id)
					return err
				}) != nil {
					c.Close(id)
					continue
				}
				if timed("close", func() error { return c.Close(id) }) != nil {
					continue
				}
				lat.record("session", time.Since(sessStart))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	completed := len(lat.byOp["session"])
	if completed == 0 {
		return nil, fmt.Errorf("server: load run completed no sessions (%d errors, last: %v)", lat.errs, lat.lastErr)
	}

	f := benchfmt.NewFile(false)
	ops := make([]string, 0, len(lat.byOp))
	for op := range lat.byOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		samples := lat.byOp[op]
		sort.Float64s(samples)
		var sum float64
		for _, v := range samples {
			sum += v
		}
		b := benchfmt.Benchmark{
			Name:        spec.Label + "/" + op,
			Iters:       len(samples),
			NsPerOp:     sum / float64(len(samples)),
			NsTolerance: 1.0, // wall-clock over HTTP: very noisy
			Meta: map[string]string{
				"clients": strconv.Itoa(spec.Clients),
				"p50_ns":  strconv.FormatFloat(percentile(samples, 0.50), 'f', 0, 64),
				"p99_ns":  strconv.FormatFloat(percentile(samples, 0.99), 'f', 0, 64),
				"errors":  strconv.Itoa(lat.errs),
			},
		}
		if op == "session" {
			b.EventsPerSec = float64(completed) / elapsed.Seconds()
		}
		f.Add(b)
	}
	return f, nil
}
