package server

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"mpcrete/internal/engine"
)

// session is one tenant: an engine.Session guarded by its own mutex.
// Requests for different sessions run concurrently; requests for the
// same session serialize on mu. The engine itself is single-threaded
// per session by design — only the compiled network is shared.
type session struct {
	id  string
	mu  sync.Mutex
	eng *engine.Session
}

// do runs fn with the session locked. It reports false — and does not
// call fn — when the session was concurrently closed (a DELETE racing
// another request on the same id).
func (sess *session) do(fn func(eng *engine.Session)) bool {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.eng == nil {
		return false
	}
	fn(sess.eng)
	return true
}

// sessionTable owns the id -> session map and the recycle pool.
type sessionTable struct {
	compiled *engine.Compiled
	max      int

	mu     sync.Mutex
	byID   map[string]*session
	nextID int64
	pool   *engine.SessionPool
}

func newSessionTable(c *engine.Compiled, max int, newMatcher func() engine.MatchApplier) *sessionTable {
	return &sessionTable{
		compiled: c,
		max:      max,
		byID:     make(map[string]*session),
		pool:     engine.NewSessionPool(c, engine.SessionOptions{NewMatcher: newMatcher}),
	}
}

// open creates (or recycles) a session and registers it.
func (t *sessionTable) open() (*session, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.byID) >= t.max {
		return nil, fmt.Errorf("session limit reached (%d live)", t.max)
	}
	t.nextID++
	sess := &session{
		id:  "s" + strconv.FormatInt(t.nextID, 10),
		eng: t.pool.Get(),
	}
	t.byID[sess.id] = sess
	return sess, nil
}

// get returns the live session with the given id, or nil.
func (t *sessionTable) get(id string) *session {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byID[id]
}

// close unregisters a session and recycles its engine through the
// pool. It reports false for an unknown id.
func (t *sessionTable) close(id string) bool {
	t.mu.Lock()
	sess := t.byID[id]
	delete(t.byID, id)
	t.mu.Unlock()
	if sess == nil {
		return false
	}
	// Serialize with any in-flight request on this session before the
	// engine is reset for reuse.
	sess.mu.Lock()
	eng := sess.eng
	sess.eng = nil
	sess.mu.Unlock()
	t.pool.Put(eng)
	return true
}

// closeAll tears down every live session (drain path).
func (t *sessionTable) closeAll() {
	t.mu.Lock()
	all := make([]*session, 0, len(t.byID))
	for _, sess := range t.byID {
		all = append(all, sess)
	}
	t.byID = make(map[string]*session)
	t.mu.Unlock()
	for _, sess := range all {
		sess.mu.Lock()
		if sess.eng != nil {
			sess.eng.Close()
			sess.eng = nil
		}
		sess.mu.Unlock()
	}
}

func (t *sessionTable) live() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byID)
}

func (t *sessionTable) pooled() int { return t.pool.Len() }

// admission is the bounded-queue backpressure gate: at most inflight
// requests execute, at most queueDepth wait, the rest bounce with 429.
type admission struct {
	inflight chan struct{}
	depth    int64
	waiting  atomic.Int64
	drained  atomic.Bool
	wg       sync.WaitGroup
}

type admitResult int

const (
	admitOK admitResult = iota
	admitDraining
	admitOverflow
	admitCanceled
)

func newAdmission(maxInflight, queueDepth int) *admission {
	return &admission{
		inflight: make(chan struct{}, maxInflight),
		depth:    int64(queueDepth),
	}
}

// acquire claims an execution slot, waiting in the bounded queue if
// all slots are busy. The caller must release() after admitOK.
func (a *admission) acquire(ctx context.Context) admitResult {
	if a.drained.Load() {
		return admitDraining
	}
	select {
	case a.inflight <- struct{}{}:
	default:
		// All slots busy: join the bounded wait queue.
		if a.waiting.Add(1) > a.depth {
			a.waiting.Add(-1)
			return admitOverflow
		}
		defer a.waiting.Add(-1)
		select {
		case a.inflight <- struct{}{}:
		case <-ctx.Done():
			return admitCanceled
		}
	}
	if a.drained.Load() {
		// Lost the race with drain: back out so drain's slot sweep
		// keeps its accounting.
		<-a.inflight
		return admitDraining
	}
	a.wg.Add(1)
	return admitOK
}

func (a *admission) release() {
	<-a.inflight
	a.wg.Done()
}

// drain stops admission and blocks until all admitted requests have
// released.
func (a *admission) drain() {
	a.drained.Store(true)
	a.wg.Wait()
}

func (a *admission) draining() bool    { return a.drained.Load() }
func (a *admission) waitingNow() int64 { return a.waiting.Load() }
