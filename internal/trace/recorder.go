package trace

import (
	"mpcrete/internal/rete"
)

// Recorder implements rete.Listener and accumulates a Trace from a
// live sequential match run — the role the instrumented uniprocessor
// OPS5 implementation played for the paper's simulator.
type Recorder struct {
	trace   *Trace
	current *Cycle
	bySeq   map[int]*Activation
}

var _ rete.Listener = (*Recorder)(nil)

// NewRecorder creates a recorder; nbuckets must match the matcher's
// MatcherOptions.NBuckets so recorded bucket indices are meaningful.
func NewRecorder(name string, nbuckets int) *Recorder {
	if nbuckets == 0 {
		nbuckets = rete.DefaultNBuckets
	}
	return &Recorder{trace: &Trace{Name: name, NBuckets: nbuckets}}
}

// Trace returns the accumulated trace. It remains owned by the
// recorder until the run completes.
func (r *Recorder) Trace() *Trace { return r.trace }

// BeginCycle starts a new cycle record.
func (r *Recorder) BeginCycle(cycle int, changes []rete.Change) {
	r.current = &Cycle{Changes: len(changes)}
	r.bySeq = make(map[int]*Activation)
}

// Activation records one node activation, linking it under its parent.
func (r *Recorder) Activation(ev rete.Event) {
	a := &Activation{
		Node:   ev.Node.ID,
		Side:   ev.Side,
		Tag:    ev.Tag,
		Bucket: ev.Bucket,
	}
	r.bySeq[ev.Seq] = a
	if ev.ParentSeq < 0 {
		r.current.Roots = append(r.current.Roots, a)
		return
	}
	parent := r.bySeq[ev.ParentSeq]
	parent.Children = append(parent.Children, a)
}

// Instantiation records a conflict-set delta against its generating
// activation.
func (r *Recorder) Instantiation(ch rete.InstChange) {
	if ch.ParentSeq < 0 {
		r.current.RootInsts++
		return
	}
	r.bySeq[ch.ParentSeq].Insts++
}

// EndCycle commits the cycle. Cycles with no activity are still
// recorded (they carry broadcast cost in the simulator).
func (r *Recorder) EndCycle(cycle int) {
	r.trace.Cycles = append(r.trace.Cycles, r.current)
	r.current = nil
	r.bySeq = nil
}
