package trace

import (
	"bufio"
	"fmt"
	"io"

	"mpcrete/internal/rete"
)

// The text format mirrors the paper's Fig 4-1 trace: a header, then
// per cycle the activation forest in preorder, each activation carrying
// its node id, side, tag, hash-bucket index, direct instantiation
// count, and child count:
//
//	trace "rubik" 1024 4
//	cycle 3 0 2
//	a 5 R + 17 0 2
//	a 9 L + 4 1 0
//	a 9 L + 4 0 0
//	a 6 R - 17 0 0
//	...
//
// The format is line-oriented and self-delimiting (counts, no
// indentation), so encoding and decoding round-trip exactly.

// Encode writes the trace in the text format.
func Encode(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "trace %q %d %d\n", t.Name, t.NBuckets, len(t.Cycles)); err != nil {
		return err
	}
	var encAct func(a *Activation) error
	encAct = func(a *Activation) error {
		if _, err := fmt.Fprintf(bw, "a %d %s %s %d %d %d\n",
			a.Node, a.Side, a.Tag, a.Bucket, a.Insts, len(a.Children)); err != nil {
			return err
		}
		for _, c := range a.Children {
			if err := encAct(c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, c := range t.Cycles {
		if _, err := fmt.Fprintf(bw, "cycle %d %d %d\n", c.Changes, c.RootInsts, len(c.Roots)); err != nil {
			return err
		}
		for _, r := range c.Roots {
			if err := encAct(r); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// decoder wraps a scanner with line tracking.
type decoder struct {
	sc   *bufio.Scanner
	line int
}

func (d *decoder) next() (string, error) {
	for d.sc.Scan() {
		d.line++
		text := d.sc.Text()
		if len(text) == 0 {
			continue
		}
		return text, nil
	}
	if err := d.sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}

func (d *decoder) errf(format string, args ...any) error {
	return fmt.Errorf("trace: line %d: %s", d.line, fmt.Sprintf(format, args...))
}

// Decode reads a trace in the text format.
func Decode(r io.Reader) (*Trace, error) {
	d := &decoder{sc: bufio.NewScanner(r)}
	d.sc.Buffer(make([]byte, 1<<16), 1<<24)

	header, err := d.next()
	if err != nil {
		return nil, fmt.Errorf("trace: missing header: %w", err)
	}
	var name string
	var nbuckets, ncycles int
	if _, err := fmt.Sscanf(header, "trace %q %d %d", &name, &nbuckets, &ncycles); err != nil {
		return nil, d.errf("bad header %q: %v", header, err)
	}
	t := &Trace{Name: name, NBuckets: nbuckets}

	var decAct func() (*Activation, error)
	decAct = func() (*Activation, error) {
		line, err := d.next()
		if err != nil {
			return nil, d.errf("truncated activation: %v", err)
		}
		var node, bucket, insts, nchildren int
		var side, tag string
		if _, err := fmt.Sscanf(line, "a %d %s %s %d %d %d", &node, &side, &tag, &bucket, &insts, &nchildren); err != nil {
			return nil, d.errf("bad activation %q: %v", line, err)
		}
		a := &Activation{Node: node, Bucket: bucket, Insts: insts}
		switch side {
		case "L":
			a.Side = rete.Left
		case "R":
			a.Side = rete.Right
		default:
			return nil, d.errf("bad side %q", side)
		}
		switch tag {
		case "+":
			a.Tag = rete.Add
		case "-":
			a.Tag = rete.Delete
		default:
			return nil, d.errf("bad tag %q", tag)
		}
		for i := 0; i < nchildren; i++ {
			c, err := decAct()
			if err != nil {
				return nil, err
			}
			a.Children = append(a.Children, c)
		}
		return a, nil
	}

	for ci := 0; ci < ncycles; ci++ {
		line, err := d.next()
		if err != nil {
			return nil, d.errf("truncated at cycle %d: %v", ci, err)
		}
		var changes, rootInsts, nroots int
		if _, err := fmt.Sscanf(line, "cycle %d %d %d", &changes, &rootInsts, &nroots); err != nil {
			return nil, d.errf("bad cycle header %q: %v", line, err)
		}
		c := &Cycle{Changes: changes, RootInsts: rootInsts}
		for i := 0; i < nroots; i++ {
			a, err := decAct()
			if err != nil {
				return nil, err
			}
			c.Roots = append(c.Roots, a)
		}
		t.Cycles = append(t.Cycles, c)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// String renders a one-line summary.
func (t *Trace) String() string {
	s := t.Stats()
	return fmt.Sprintf("trace %s: %d cycles, %d activations (%dL/%dR), %d instantiations",
		t.Name, s.Cycles, s.Total, s.LeftActivations, s.RightActivations, s.Instantiations)
}
