// Package trace defines the hash-table activity trace that drives the
// MPC simulator — the Fig 4-1 artifact of the paper. A trace records,
// per MRA cycle, the forest of two-input node activations: the roots
// are the activations generated directly from the cycle's wme changes
// by the constant tests, and each activation lists the successor
// activations its token comparisons generated.
//
// Traces are produced by the Recorder (hooked into the sequential Rete
// matcher as a rete.Listener), by the calibrated generators in the
// workloads package, or by decoding the text format.
package trace

import (
	"fmt"

	"mpcrete/internal/rete"
)

// Side and tag aliases, so trace consumers (the simulator and the
// workload generators) need not depend on the rete package directly.
type (
	// Side aliases rete.Side.
	Side = rete.Side
	// Tag aliases rete.Tag.
	Tag = rete.Tag
)

const (
	LeftSide  = rete.Left
	RightSide = rete.Right
	AddTag    = rete.Add
	DeleteTag = rete.Delete
)

// Activation is one two-input (or dummy) node activation.
type Activation struct {
	// Node is the Rete node id; together with the equality-test values
	// it determines the hash bucket.
	Node int
	// Side says whether the token entered the node's left or right
	// memory. Right activations are generated locally on every
	// processor (from the broadcast wmes); left activations travel as
	// messages.
	Side rete.Side
	// Tag is + (add) or - (delete).
	Tag rete.Tag
	// Bucket is the hash-table index of the left/right bucket pair the
	// activation touches.
	Bucket int
	// Children are the successor activations generated when the token
	// was compared against the opposite memory.
	Children []*Activation
	// Insts is the number of production instantiations this activation
	// generated directly (successor tokens that reached production
	// nodes).
	Insts int
}

// Successors returns the total number of tokens this activation
// generated: child activations plus instantiations.
func (a *Activation) Successors() int { return len(a.Children) + a.Insts }

// Cycle is the activity of one MRA cycle.
type Cycle struct {
	// Changes is the number of wme changes broadcast at cycle start.
	Changes int
	// Roots are the activations generated directly by the constant
	// tests from those changes.
	Roots []*Activation
	// RootInsts counts instantiations produced directly by constant
	// tests (single-CE productions).
	RootInsts int
}

// Walk visits every activation in the cycle in depth-first preorder.
func (c *Cycle) Walk(visit func(*Activation)) {
	var rec func(a *Activation)
	rec = func(a *Activation) {
		visit(a)
		for _, ch := range a.Children {
			rec(ch)
		}
	}
	for _, r := range c.Roots {
		rec(r)
	}
}

// Activations counts all activations in the cycle.
func (c *Cycle) Activations() int {
	n := 0
	c.Walk(func(*Activation) { n++ })
	return n
}

// Trace is a recorded section of production-system execution.
type Trace struct {
	// Name labels the section (e.g. "rubik").
	Name string
	// NBuckets is the hash-table size the bucket indices refer to.
	NBuckets int
	Cycles   []*Cycle
}

// Validate checks structural invariants: bucket indices within range
// and non-negative counts.
func (t *Trace) Validate() error {
	if t.NBuckets <= 0 {
		return fmt.Errorf("trace %s: NBuckets = %d", t.Name, t.NBuckets)
	}
	for ci, c := range t.Cycles {
		if c.Changes < 0 || c.RootInsts < 0 {
			return fmt.Errorf("trace %s: cycle %d has negative counts", t.Name, ci)
		}
		var err error
		c.Walk(func(a *Activation) {
			if err != nil {
				return
			}
			if a.Bucket < 0 || a.Bucket >= t.NBuckets {
				err = fmt.Errorf("trace %s: cycle %d: bucket %d out of range [0,%d)", t.Name, ci, a.Bucket, t.NBuckets)
			}
			if a.Insts < 0 || a.Node < 0 {
				err = fmt.Errorf("trace %s: cycle %d: negative node id or inst count", t.Name, ci)
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats summarizes a trace in the terms of Table 5-2.
type Stats struct {
	Cycles           int
	LeftActivations  int
	RightActivations int
	Total            int
	Instantiations   int
	MaxSuccessors    int // largest fan-out of any single activation
}

// Stats computes activation counts. Dummy-node activations travel like
// left tokens and are counted as left activations.
func (t *Trace) Stats() Stats {
	var s Stats
	s.Cycles = len(t.Cycles)
	for _, c := range t.Cycles {
		s.Instantiations += c.RootInsts
		c.Walk(func(a *Activation) {
			if a.Side == rete.Left {
				s.LeftActivations++
			} else {
				s.RightActivations++
			}
			s.Instantiations += a.Insts
			if n := a.Successors(); n > s.MaxSuccessors {
				s.MaxSuccessors = n
			}
		})
	}
	s.Total = s.LeftActivations + s.RightActivations
	return s
}

// BucketLoad returns, per cycle, the number of activations per bucket
// index — the raw data behind the Fig 5-5 distribution analysis and
// the greedy scheduler. If leftOnly is set, only left activations are
// counted (as in Fig 5-5).
func (t *Trace) BucketLoad(leftOnly bool) []map[int]int {
	out := make([]map[int]int, len(t.Cycles))
	for i, c := range t.Cycles {
		load := map[int]int{}
		c.Walk(func(a *Activation) {
			if leftOnly && a.Side != rete.Left {
				return
			}
			load[a.Bucket]++
		})
		out[i] = load
	}
	return out
}
