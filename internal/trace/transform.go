package trace

// SplitFanout is the trace-level form of the paper's Section 5.2
// bottleneck transformations. Any activation generating more than
// `threshold` successor activations is replaced by k copies, each
// carrying ~1/k of the children and a distinct hash bucket (a node
// copy has its own node id, so its tokens hash elsewhere).
//
// This single rewrite models both network-level cures at the trace
// granularity the simulator consumes:
//
//   - Unsharing (Fig 5-3) and dummy nodes split a node whose output
//     feeds many successors.
//   - Copy-and-constraint (Fig 5-6) splits a node whose single
//     activation generates a large cross-product slice.
//
// The cost accounting matches the paper: each copy pays its own
// add/delete at its own bucket site (the duplicated work the paper
// accepts), the parent pays one 16 µs successor-generation charge per
// copy instead of per original child, and successor generation then
// proceeds in parallel across the copies' buckets.
//
// The input trace is not modified.
func SplitFanout(t *Trace, threshold, k int) *Trace {
	if threshold < 1 || k < 2 {
		return clone(t)
	}
	out := &Trace{Name: t.Name + "+split", NBuckets: t.NBuckets}
	salt := 0
	for _, cy := range t.Cycles {
		nc := &Cycle{Changes: cy.Changes, RootInsts: cy.RootInsts}
		for _, r := range cy.Roots {
			nc.Roots = append(nc.Roots, splitAct(r, threshold, k, t.NBuckets, &salt)...)
		}
		out.Cycles = append(out.Cycles, nc)
	}
	return out
}

// splitAct rewrites one activation, returning its replacement(s).
func splitAct(a *Activation, threshold, k, nbuckets int, salt *int) []*Activation {
	var children []*Activation
	for _, c := range a.Children {
		children = append(children, splitAct(c, threshold, k, nbuckets, salt)...)
	}
	if len(children) <= threshold {
		cp := *a
		cp.Children = children
		return []*Activation{&cp}
	}
	copies := make([]*Activation, k)
	for i := range copies {
		bucket := a.Bucket
		if i > 0 {
			// A fresh node id hashes to a fresh bucket; derive one
			// deterministically.
			*salt++
			bucket = (a.Bucket + 0x9e37*(*salt) + i*131) % nbuckets
			if bucket < 0 {
				bucket += nbuckets
			}
		}
		copies[i] = &Activation{
			Node:   a.Node,
			Side:   a.Side,
			Tag:    a.Tag,
			Bucket: bucket,
		}
	}
	for i, c := range children {
		dst := copies[i%k]
		dst.Children = append(dst.Children, c)
	}
	// Instantiations stay with the first copy.
	copies[0].Insts = a.Insts
	return copies
}

// ScatterNode is the trace-level form of copy-and-constraint applied
// to a non-discriminating (cross-product) node: the production owning
// node `node` is split into k copies, each matching a disjoint part of
// the data, so the tokens that all hashed to one bucket now belong to
// k distinct node ids and hash to k distinct buckets. Activations of
// `node` are reassigned round-robin to k derived buckets; everything
// else is untouched. Tag pairs stay together (consecutive activations
// of the node alternate copies in arrival order, and an add and its
// deletion originate from the same source in order, landing on the
// same copy by construction of the rewrite being deterministic).
//
// The input trace is not modified.
func ScatterNode(t *Trace, node, k int) *Trace {
	if k < 2 {
		return clone(t)
	}
	out := clone(t)
	out.Name = t.Name + "+c&c"
	idx := 0
	for _, cy := range out.Cycles {
		cy.Walk(func(a *Activation) {
			if a.Node != node {
				return
			}
			copyIdx := idx % k
			idx++
			if copyIdx > 0 {
				a.Bucket = (a.Bucket + copyIdx*257) % out.NBuckets
			}
		})
	}
	return out
}

// clone deep-copies a trace.
func clone(t *Trace) *Trace {
	out := &Trace{Name: t.Name, NBuckets: t.NBuckets}
	var cp func(a *Activation) *Activation
	cp = func(a *Activation) *Activation {
		n := *a
		n.Children = nil
		for _, c := range a.Children {
			n.Children = append(n.Children, cp(c))
		}
		return &n
	}
	for _, cy := range t.Cycles {
		nc := &Cycle{Changes: cy.Changes, RootInsts: cy.RootInsts}
		for _, r := range cy.Roots {
			nc.Roots = append(nc.Roots, cp(r))
		}
		out.Cycles = append(out.Cycles, nc)
	}
	return out
}
