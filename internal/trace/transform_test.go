package trace

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpcrete/internal/rete"
)

// genTrace builds a random trace from a seed (deterministic).
func genTrace(seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	nb := 64
	tr := &Trace{Name: "gen", NBuckets: nb}
	var gen func(depth int) *Activation
	gen = func(depth int) *Activation {
		a := &Activation{
			Node:   rng.Intn(20),
			Side:   rete.Side(rng.Intn(2)),
			Tag:    rete.Tag(rng.Intn(2)),
			Bucket: rng.Intn(nb),
			Insts:  rng.Intn(2),
		}
		if depth < 2 {
			n := rng.Intn(8)
			if rng.Intn(5) == 0 {
				n = 10 + rng.Intn(30) // occasional big fan-out
			}
			for i := 0; i < n; i++ {
				a.Children = append(a.Children, gen(depth+1))
			}
		}
		return a
	}
	for c := 0; c < 1+rng.Intn(3); c++ {
		cy := &Cycle{Changes: 1 + rng.Intn(5), RootInsts: rng.Intn(2)}
		for r := 0; r < 1+rng.Intn(6); r++ {
			cy.Roots = append(cy.Roots, gen(0))
		}
		tr.Cycles = append(tr.Cycles, cy)
	}
	return tr
}

// leaves counts activations with no children (the irreducible work a
// split transformation must preserve).
func leaves(tr *Trace) int {
	n := 0
	for _, cy := range tr.Cycles {
		cy.Walk(func(a *Activation) {
			if len(a.Children) == 0 {
				n++
			}
		})
	}
	return n
}

// TestSplitFanoutInvariants: for random traces, SplitFanout preserves
// leaf activations and instantiations, never increases the maximum
// fan-out beyond the pre-split value, keeps buckets in range, and is
// a no-op when no activation exceeds the threshold.
func TestSplitFanoutInvariants(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		tr := genTrace(seed % 1000)
		k := 2 + int(kRaw%4)
		threshold := 8
		out := SplitFanout(tr, threshold, k)
		if out.Validate() != nil {
			return false
		}
		s0, s1 := tr.Stats(), out.Stats()
		if s1.Instantiations != s0.Instantiations {
			return false
		}
		if leaves(out) < leaves(tr) {
			return false
		}
		if s1.MaxSuccessors > s0.MaxSuccessors {
			return false
		}
		// Activation count can only grow (copies added).
		return s1.Total >= s0.Total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestScatterNodeInvariants: ScatterNode preserves every count and
// only moves buckets of the targeted node.
func TestScatterNodeInvariants(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		tr := genTrace(seed % 1000)
		k := 2 + int(kRaw%6)
		const node = 7
		out := ScatterNode(tr, node, k)
		if out.Validate() != nil {
			return false
		}
		if tr.Stats() != out.Stats() {
			return false
		}
		// Non-target activations keep their buckets (compare walks).
		same := true
		var flatten func(t *Trace) []*Activation
		flatten = func(t *Trace) []*Activation {
			var all []*Activation
			for _, cy := range t.Cycles {
				cy.Walk(func(a *Activation) { all = append(all, a) })
			}
			return all
		}
		fa, fb := flatten(tr), flatten(out)
		if len(fa) != len(fb) {
			return false
		}
		for i := range fa {
			if fa[i].Node != fb[i].Node || fa[i].Side != fb[i].Side || fa[i].Tag != fb[i].Tag {
				return false
			}
			if fa[i].Node != node && fa[i].Bucket != fb[i].Bucket {
				same = false
			}
		}
		return same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSplitFanoutConverges: repeated application reaches a fixpoint
// where no activation generates more than `threshold` child
// activations (one pass may leave copies above the threshold when the
// original fan-out exceeds threshold*k).
func TestSplitFanoutConverges(t *testing.T) {
	tr := genTrace(42)
	const threshold, k = 8, 4
	cur := tr
	for i := 0; i < 10; i++ {
		next := SplitFanout(cur, threshold, k)
		if next.Stats() == cur.Stats() {
			break
		}
		cur = next
	}
	maxChildren := 0
	for _, cy := range cur.Cycles {
		cy.Walk(func(a *Activation) {
			if len(a.Children) > maxChildren {
				maxChildren = len(a.Children)
			}
		})
	}
	if maxChildren > threshold {
		t.Errorf("fixpoint still has fan-out %d > %d", maxChildren, threshold)
	}
	// Fixpoint: one more application changes nothing.
	if again := SplitFanout(cur, threshold, k); again.Stats() != cur.Stats() {
		t.Errorf("not a fixpoint: %+v vs %+v", cur.Stats(), again.Stats())
	}
	// Leaves and instantiations survive the whole sequence.
	if leaves(cur) < leaves(tr) || cur.Stats().Instantiations != tr.Stats().Instantiations {
		t.Error("converged trace lost work")
	}
}
