package trace_test

// Metamorphic properties of the Section 5.2 trace transformations:
// SplitFanout and ScatterNode redistribute work across hash buckets
// but must not invent or lose it. The properties are checked against
// the real calibrated sections (Rubik, Tourney, Weaver), whose heavy
// cross products and fan-outs actually trigger both rewrites.

import (
	"testing"

	"mpcrete/internal/analysis"
	"mpcrete/internal/trace"
	"mpcrete/internal/workloads"
)

func sections() []*trace.Trace { return workloads.Sections() }

// tripleCounts tallies activations by (node, side, tag) — the identity
// of the work, independent of which bucket or copy performs it.
func tripleCounts(t *trace.Trace) map[[3]int]int {
	m := map[[3]int]int{}
	for _, c := range t.Cycles {
		c.Walk(func(a *trace.Activation) {
			m[[3]int{a.Node, int(a.Side), int(a.Tag)}]++
		})
	}
	return m
}

func totalInsts(t *trace.Trace) int { return t.Stats().Instantiations }

// TestSplitFanoutConservation: splitting a hot activation into k
// copies must (1) keep the trace valid, (2) preserve instantiation
// counts exactly, (3) preserve per-cycle critical-path lower bounds
// exactly — copies sit at the depth of the original, so the dependency
// chain neither stretches nor contracts, which is precisely why the
// rewrite is a pure win in the simulator — and (4) only ever add
// work in groups of k-1 copies of an existing (node, side, tag)
// triple, never invent new work identities or drop existing ones.
func TestSplitFanoutConservation(t *testing.T) {
	const k = 4
	for _, tr := range sections() {
		t.Run(tr.Name, func(t *testing.T) {
			// Pick a threshold below the section's own max fan-out so the
			// transform is guaranteed to fire regardless of calibration.
			threshold := maxChildFanout(tr) / 2
			if threshold < 1 {
				t.Skipf("%s has no multi-child activations", tr.Name)
			}
			split := trace.SplitFanout(tr, threshold, k)
			if err := split.Validate(); err != nil {
				t.Fatal(err)
			}
			if got, want := totalInsts(split), totalInsts(tr); got != want {
				t.Fatalf("instantiations changed: %d, want %d", got, want)
			}
			before, after := analysis.CriticalPaths(tr), analysis.CriticalPaths(split)
			for ci := range before {
				if after[ci] != before[ci] {
					t.Fatalf("cycle %d: critical path changed %d -> %d", ci, before[ci], after[ci])
				}
			}
			orig, now := tripleCounts(tr), tripleCounts(split)
			grew := 0
			for tri, n := range now {
				o, ok := orig[tri]
				if !ok {
					t.Fatalf("split invented work identity %v", tri)
				}
				if n < o {
					t.Fatalf("split lost work: %v %d -> %d", tri, o, n)
				}
				if (n-o)%(k-1) != 0 {
					t.Fatalf("%v grew by %d, not a multiple of k-1=%d", tri, n-o, k-1)
				}
				grew += n - o
			}
			if len(now) != len(orig) {
				t.Fatalf("split dropped a work identity: %d triples -> %d", len(orig), len(now))
			}
			if grew == 0 {
				t.Fatalf("threshold %d split nothing in %s; section no longer exercises the transform", threshold, tr.Name)
			}
		})
	}
}

// TestScatterNodeConservation: copy-and-constraint at the trace level
// reassigns a node's activations across derived buckets and must
// change NOTHING else — same forest shape, same (node, side, tag,
// insts) per activation, same critical paths, and only activations of
// the scattered node may move buckets.
func TestScatterNodeConservation(t *testing.T) {
	const k = 4
	for _, tr := range sections() {
		t.Run(tr.Name, func(t *testing.T) {
			node := hottestNode(tr)
			sc := trace.ScatterNode(tr, node, k)
			if err := sc.Validate(); err != nil {
				t.Fatal(err)
			}
			moved := 0
			for ci := range tr.Cycles {
				var a, b []*trace.Activation
				tr.Cycles[ci].Walk(func(x *trace.Activation) { a = append(a, x) })
				sc.Cycles[ci].Walk(func(x *trace.Activation) { b = append(b, x) })
				if len(a) != len(b) {
					t.Fatalf("cycle %d: activation count changed %d -> %d", ci, len(a), len(b))
				}
				for i := range a {
					x, y := a[i], b[i]
					if x.Node != y.Node || x.Side != y.Side || x.Tag != y.Tag ||
						x.Insts != y.Insts || len(x.Children) != len(y.Children) {
						t.Fatalf("cycle %d activation %d: identity changed: %+v -> %+v", ci, i, x, y)
					}
					if x.Bucket != y.Bucket {
						if x.Node != node {
							t.Fatalf("cycle %d: node %d moved buckets but only node %d was scattered", ci, x.Node, node)
						}
						moved++
					}
				}
			}
			if moved == 0 {
				t.Fatalf("scatter of node %d moved no activation in %s", node, tr.Name)
			}
			before, after := analysis.CriticalPaths(tr), analysis.CriticalPaths(sc)
			for ci := range before {
				if after[ci] != before[ci] {
					t.Fatalf("cycle %d: critical path changed %d -> %d", ci, before[ci], after[ci])
				}
			}
		})
	}
}

// TestCriticalPathIsLowerBound pins the meaning of the helper against
// the structural facts every trace satisfies: the critical path is at
// least 1 when a cycle has roots, never exceeds the cycle's activation
// count, and a single-chain synthetic cycle has critical path equal to
// its length.
func TestCriticalPathIsLowerBound(t *testing.T) {
	for _, tr := range sections() {
		for ci, c := range tr.Cycles {
			cp := analysis.CriticalPath(c)
			n := c.Activations()
			if n > 0 && (cp < 1 || cp > n) {
				t.Fatalf("%s cycle %d: critical path %d outside [1,%d]", tr.Name, ci, cp, n)
			}
		}
	}
	chain := &trace.Activation{Node: 1, Bucket: 0}
	tip := chain
	for i := 0; i < 9; i++ {
		next := &trace.Activation{Node: 1, Bucket: 0}
		tip.Children = []*trace.Activation{next}
		tip = next
	}
	c := &trace.Cycle{Roots: []*trace.Activation{chain}}
	if got := analysis.CriticalPath(c); got != 10 {
		t.Fatalf("chain of 10: critical path = %d", got)
	}
}

// maxChildFanout is the largest number of child activations any single
// activation generates (instantiations excluded — SplitFanout splits
// on child count).
func maxChildFanout(tr *trace.Trace) int {
	max := 0
	for _, c := range tr.Cycles {
		c.Walk(func(a *trace.Activation) {
			if len(a.Children) > max {
				max = len(a.Children)
			}
		})
	}
	return max
}

// hottestNode picks the node with the most activations — the natural
// copy-and-constraint target, and guaranteed to exist in a section.
func hottestNode(tr *trace.Trace) int {
	counts := map[int]int{}
	for _, c := range tr.Cycles {
		c.Walk(func(a *trace.Activation) { counts[a.Node]++ })
	}
	best, bestN := 0, -1
	for n, ct := range counts {
		if ct > bestN {
			best, bestN = n, ct
		}
	}
	return best
}
