package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"mpcrete/internal/ops5"
	"mpcrete/internal/rete"
)

// buildSample constructs a small hand-made trace.
func buildSample() *Trace {
	leaf := func(side rete.Side, tag rete.Tag, bucket, insts int) *Activation {
		return &Activation{Node: 7, Side: side, Tag: tag, Bucket: bucket, Insts: insts}
	}
	root := &Activation{Node: 3, Side: rete.Right, Tag: rete.Add, Bucket: 5,
		Children: []*Activation{
			leaf(rete.Left, rete.Add, 9, 1),
			leaf(rete.Left, rete.Delete, 9, 0),
		}}
	return &Trace{
		Name:     "sample",
		NBuckets: 16,
		Cycles: []*Cycle{
			{Changes: 2, Roots: []*Activation{root}, RootInsts: 1},
			{Changes: 1}, // an empty cycle
		},
	}
}

func TestTraceStats(t *testing.T) {
	tr := buildSample()
	s := tr.Stats()
	if s.Cycles != 2 || s.Total != 3 || s.LeftActivations != 2 || s.RightActivations != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Instantiations != 2 {
		t.Errorf("instantiations = %d, want 2 (1 root + 1 nested)", s.Instantiations)
	}
	if s.MaxSuccessors != 2 {
		t.Errorf("max successors = %d, want 2", s.MaxSuccessors)
	}
}

func TestTraceValidate(t *testing.T) {
	tr := buildSample()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	tr.Cycles[0].Roots[0].Bucket = 99
	if err := tr.Validate(); err == nil {
		t.Error("out-of-range bucket not caught")
	}
	tr2 := buildSample()
	tr2.NBuckets = 0
	if err := tr2.Validate(); err == nil {
		t.Error("zero buckets not caught")
	}
}

func TestCodecRoundTripSample(t *testing.T) {
	tr := buildSample()
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, tr, got)
}

func assertTracesEqual(t *testing.T, a, b *Trace) {
	t.Helper()
	if a.Name != b.Name || a.NBuckets != b.NBuckets || len(a.Cycles) != len(b.Cycles) {
		t.Fatalf("header mismatch: %v vs %v", a, b)
	}
	type flat struct {
		node, bucket, insts, nchildren int
		side                           rete.Side
		tag                            rete.Tag
	}
	flatten := func(tr *Trace) []flat {
		var out []flat
		for _, c := range tr.Cycles {
			out = append(out, flat{node: -1, bucket: c.Changes, insts: c.RootInsts, nchildren: len(c.Roots)})
			c.Walk(func(x *Activation) {
				out = append(out, flat{x.Node, x.Bucket, x.Insts, len(x.Children), x.Side, x.Tag})
			})
		}
		return out
	}
	fa, fb := flatten(a), flatten(b)
	if len(fa) != len(fb) {
		t.Fatalf("flatten length %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("mismatch at %d: %+v vs %+v", i, fa[i], fb[i])
		}
	}
}

// randomTrace generates a random activation forest.
func randomTrace(rng *rand.Rand) *Trace {
	nb := 1 << (2 + rng.Intn(5))
	tr := &Trace{Name: "rnd", NBuckets: nb}
	var gen func(depth int) *Activation
	gen = func(depth int) *Activation {
		a := &Activation{
			Node:   rng.Intn(50),
			Side:   rete.Side(rng.Intn(2)),
			Tag:    rete.Tag(rng.Intn(2)),
			Bucket: rng.Intn(nb),
			Insts:  rng.Intn(3),
		}
		if depth < 3 {
			for i := 0; i < rng.Intn(4); i++ {
				a.Children = append(a.Children, gen(depth+1))
			}
		}
		return a
	}
	for c := 0; c < 1+rng.Intn(5); c++ {
		cy := &Cycle{Changes: rng.Intn(10), RootInsts: rng.Intn(2)}
		for r := 0; r < rng.Intn(6); r++ {
			cy.Roots = append(cy.Roots, gen(0))
		}
		tr.Cycles = append(tr.Cycles, cy)
	}
	return tr
}

func TestCodecRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		tr := randomTrace(rng)
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", i, err, buf.String())
		}
		assertTracesEqual(t, tr, got)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ""},
		{"bad header", "nonsense\n"},
		{"truncated cycle", "trace \"x\" 16 2\ncycle 1 0 0\n"},
		{"truncated children", "trace \"x\" 16 1\ncycle 1 0 1\na 3 R + 5 0 2\na 4 L + 5 0 0\n"},
		{"bad side", "trace \"x\" 16 1\ncycle 1 0 1\na 3 X + 5 0 0\n"},
		{"bad tag", "trace \"x\" 16 1\ncycle 1 0 1\na 3 L ? 5 0 0\n"},
		{"bucket range", "trace \"x\" 16 1\ncycle 1 0 1\na 3 L + 99 0 0\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Decode(strings.NewReader(c.src)); err == nil {
				t.Errorf("Decode(%q) succeeded, want error", c.src)
			}
		})
	}
}

// TestRecorderAgainstEngineRun records a trace from a real match run
// and checks its shape against the matcher's known behaviour.
func TestRecorderAgainstEngineRun(t *testing.T) {
	prods := []string{
		`(p join2 (a ^x <v>) (b ^x <v>) --> (halt))`,
		`(p join3 (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (halt))`,
	}
	var parsed []*ops5.Production
	for _, src := range prods {
		p, err := ops5.ParseProduction(src)
		if err != nil {
			t.Fatal(err)
		}
		parsed = append(parsed, p)
	}
	net, err := rete.Compile(parsed)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder("unit", 64)
	m := rete.NewMatcher(net, rete.MatcherOptions{NBuckets: 64, Listener: rec})

	mkw := func(id int, class string, x int) *ops5.WME {
		w := ops5.NewWME(class, "x", x)
		w.ID, w.TimeTag = id, id
		return w
	}
	// Cycle 1: a(x=1) -> one root L activation at join(a,b), no matches.
	m.Apply([]rete.Change{{Tag: rete.Add, WME: mkw(1, "a", 1)}})
	// Cycle 2: b(x=1) -> root R activation generating one child
	// (a,b) token, which is a left activation of join(.,c) and an
	// instantiation of join2.
	m.Apply([]rete.Change{{Tag: rete.Add, WME: mkw(2, "b", 1)}})
	// Cycle 3: c(x=1) -> root R activation -> instantiation of join3.
	m.Apply([]rete.Change{{Tag: rete.Add, WME: mkw(3, "c", 1)}})
	// Cycle 4: delete a -> deletion tree mirrors the additions.
	m.Apply([]rete.Change{{Tag: rete.Delete, WME: mkw(1, "a", 1)}})

	tr := rec.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Cycles) != 4 {
		t.Fatalf("cycles = %d", len(tr.Cycles))
	}

	c1 := tr.Cycles[0]
	if len(c1.Roots) != 1 || c1.Roots[0].Side != rete.Left || c1.Roots[0].Successors() != 0 {
		t.Errorf("cycle 1 roots = %+v", c1.Roots)
	}
	c2 := tr.Cycles[1]
	if len(c2.Roots) != 1 || c2.Roots[0].Side != rete.Right {
		t.Fatalf("cycle 2 roots = %+v", c2.Roots)
	}
	if c2.Roots[0].Insts != 1 || len(c2.Roots[0].Children) != 1 {
		t.Errorf("cycle 2 root should generate 1 inst + 1 child, got %d/%d",
			c2.Roots[0].Insts, len(c2.Roots[0].Children))
	}
	if c2.Roots[0].Children[0].Side != rete.Left {
		t.Error("child of a two-input node must be a left activation")
	}
	c3 := tr.Cycles[2]
	if len(c3.Roots) != 1 || c3.Roots[0].Insts != 1 {
		t.Errorf("cycle 3 = %+v", c3.Roots)
	}
	c4 := tr.Cycles[3]
	if got := c4.Roots[0].Tag; got != rete.Delete {
		t.Errorf("cycle 4 root tag = %v", got)
	}

	s := tr.Stats()
	if s.Instantiations != 4 { // +join2, +join3, then both deleted
		t.Errorf("instantiations = %d, want 4", s.Instantiations)
	}

	// Round-trip the recorded trace.
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, tr, got)
}

func TestBucketLoad(t *testing.T) {
	tr := buildSample()
	loads := tr.BucketLoad(false)
	if len(loads) != 2 {
		t.Fatalf("loads = %d cycles", len(loads))
	}
	if loads[0][5] != 1 || loads[0][9] != 2 {
		t.Errorf("cycle 0 load = %v", loads[0])
	}
	leftLoads := tr.BucketLoad(true)
	if leftLoads[0][5] != 0 || leftLoads[0][9] != 2 {
		t.Errorf("left-only load = %v", leftLoads[0])
	}
}
