package difftest

import (
	"bytes"
	"strings"
	"testing"
)

// TestForcedDivergenceCarriesFlightDump drills the divergence-reporting
// path end to end: a forced mismatch on an instrumented parallel
// configuration must surface that run's causal flight dump, and the
// dump must render to readable JSON and Chrome-trace output.
func TestForcedDivergenceCarriesFlightDump(t *testing.T) {
	c := Gen(3, GenConfig{})
	opts := CheckOptions{
		MaxCycles:       10,
		Workers:         []int{2},
		FlightCycles:    8,
		ForceDivergence: "par-w2-bcast",
	}
	mis := Check(c, opts)
	if mis == nil {
		t.Fatal("forced divergence not reported")
	}
	if !strings.Contains(mis.Config, "par-w2-bcast") {
		t.Fatalf("divergence attributed to %q, want par-w2-bcast", mis.Config)
	}
	if mis.Detail == "" {
		t.Fatal("divergence carries no detail")
	}
	if mis.Dump == nil {
		t.Fatal("instrumented divergence carries no flight dump")
	}
	if len(mis.Dump.Tracks) != 3 {
		t.Fatalf("dump has %d tracks, want 3 (2 workers + control)", len(mis.Dump.Tracks))
	}

	var js bytes.Buffer
	if err := mis.Dump.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"tracks"`, `"cycles"`, `"control"`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("flight JSON missing %s", want)
		}
	}
	var ct bytes.Buffer
	if err := mis.Dump.WriteChromeTrace(&ct); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ct.String(), `"traceEvents"`) {
		t.Error("Chrome trace missing traceEvents envelope")
	}
}

// TestForcedDivergenceOnSequentialHasNoDump pins the nil case: a
// divergence attributed to an uninstrumented configuration carries no
// dump, and nothing downstream should assume one.
func TestForcedDivergenceOnSequentialHasNoDump(t *testing.T) {
	c := Gen(3, GenConfig{})
	mis := Check(c, CheckOptions{
		MaxCycles:       10,
		Workers:         []int{1},
		FlightCycles:    8,
		ForceDivergence: "seq-unshared",
	})
	if mis == nil {
		t.Fatal("forced divergence not reported")
	}
	if mis.Dump != nil {
		t.Fatalf("sequential divergence carries a dump from %q", mis.Config)
	}
}

// TestFlightCyclesOffByDefault pins that uninstrumented checks stay
// uninstrumented: no FlightCycles, no dump anywhere.
func TestFlightCyclesOffByDefault(t *testing.T) {
	c := Gen(5, GenConfig{})
	mis := Check(c, CheckOptions{
		MaxCycles:       10,
		Workers:         []int{2},
		ForceDivergence: "par-w2-routed",
	})
	if mis == nil {
		t.Fatal("forced divergence not reported")
	}
	if mis.Dump != nil {
		t.Fatal("dump attached without FlightCycles")
	}
}
