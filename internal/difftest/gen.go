package difftest

import (
	"fmt"
	"math/rand"
	"strings"

	"mpcrete/internal/ops5"
)

// GenConfig tunes the shape of generated programs. The zero value is
// usable: every field defaults to the value documented on it.
type GenConfig struct {
	// Productions is the number of productions (default 4).
	Productions int
	// MaxCEs bounds condition elements per production (default 3).
	MaxCEs int
	// Classes is the class alphabet size (default 3).
	Classes int
	// Attrs is the number of attributes per class (default 3). Even
	// attribute indexes hold numbers, odd ones symbols, so generated
	// tests and assignments stay type-consistent.
	Attrs int
	// Values is the per-type constant pool size (default 3). Small
	// pools make independently generated wmes collide on join tests,
	// which is what drives tokens through the two-input nodes.
	Values int
	// EqDensity is the probability that a condition-element attribute
	// test reuses an already-bound variable — an inter-CE equality
	// join test (default 0.6). High density produces discriminating
	// hashes (tokens spread by value); zero density produces the
	// Tourney pathology where every token hashes to one bucket.
	EqDensity float64
	// NegationProb is the probability a non-first CE is negated
	// (default 0.2).
	NegationProb float64
	// PredProb is the probability a constant test uses a relational
	// predicate instead of equality (default 0.15).
	PredProb float64
	// MakeWeight, RemoveWeight, ModifyWeight set the RHS action mix
	// (defaults 3, 2, 2).
	MakeWeight, RemoveWeight, ModifyWeight int
	// MaxActions bounds RHS actions per production (default 2).
	MaxActions int
	// HaltProb is the probability a production ends with halt
	// (default 0.05).
	HaltProb float64
	// InitialWMEs is the size of the random initial store (default 10).
	InitialWMEs int
}

func (cfg GenConfig) withDefaults() GenConfig {
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&cfg.Productions, 4)
	def(&cfg.MaxCEs, 3)
	def(&cfg.Classes, 3)
	def(&cfg.Attrs, 3)
	def(&cfg.Values, 3)
	def(&cfg.MakeWeight, 3)
	def(&cfg.RemoveWeight, 2)
	def(&cfg.ModifyWeight, 2)
	def(&cfg.MaxActions, 2)
	def(&cfg.InitialWMEs, 10)
	if cfg.EqDensity == 0 {
		cfg.EqDensity = 0.6
	}
	if cfg.NegationProb == 0 {
		cfg.NegationProb = 0.2
	}
	if cfg.PredProb == 0 {
		cfg.PredProb = 0.15
	}
	if cfg.HaltProb == 0 {
		cfg.HaltProb = 0.05
	}
	return cfg
}

// ConfigFromBytes derives a GenConfig from fuzzer-controlled knob
// bytes, so native fuzzing can mutate the program shape as well as the
// seed. Every byte string maps to a valid configuration.
func ConfigFromBytes(knobs []byte) GenConfig {
	at := func(i int, lo, span int) int {
		if i >= len(knobs) {
			return 0
		}
		return lo + int(knobs[i])%span
	}
	frac := func(i int) float64 {
		if i >= len(knobs) {
			return 0
		}
		return float64(knobs[i]%100) / 100
	}
	return GenConfig{
		Productions:  at(0, 1, 6),
		MaxCEs:       at(1, 1, 4),
		Classes:      at(2, 1, 4),
		Attrs:        at(3, 1, 4),
		Values:       at(4, 1, 4),
		EqDensity:    frac(5),
		NegationProb: frac(6) / 2,
		PredProb:     frac(7) / 2,
		MakeWeight:   at(8, 1, 5),
		RemoveWeight: at(9, 1, 5),
		ModifyWeight: at(10, 1, 5),
		MaxActions:   at(11, 1, 3),
		InitialWMEs:  at(12, 1, 16),
	}
}

// generator carries the per-Gen state: the rng and the class/attribute
// alphabet. Attribute f<i> holds numbers for even i, symbols for odd
// i, across every class, so any test or assignment the generator emits
// is type-consistent by construction.
type generator struct {
	rng *rand.Rand
	cfg GenConfig
}

func (g *generator) class(i int) string { return fmt.Sprintf("c%d", i) }
func (g *generator) attr(i int) string  { return fmt.Sprintf("f%d", i) }
func (g *generator) attrNumeric(i int) bool {
	return i%2 == 0
}

// constant draws from the small typed pool.
func (g *generator) constant(numeric bool) ops5.Value {
	v := g.rng.Intn(g.cfg.Values)
	if numeric {
		return ops5.N(float64(v))
	}
	return ops5.S(fmt.Sprintf("s%d", v))
}

// boundVar holds a variable bound by a defining occurrence in a
// positive CE, with its type.
type boundVar struct {
	name    string
	numeric bool
}

// Gen produces a random, well-typed, compilable engine-level case:
// every production validates, the program compiles, and the initial
// store assigns every attribute of every wme. The same (seed, cfg)
// pair always yields the same case.
func Gen(seed int64, cfg GenConfig) Case {
	cfg = cfg.withDefaults()
	g := &generator{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
	prog := g.program()
	var wmes []string
	for i := 0; i < cfg.InitialWMEs; i++ {
		wmes = append(wmes, g.wme().String())
	}
	return Case{
		Name:    fmt.Sprintf("gen-%d", seed),
		ProgSrc: prog.String(),
		WMESrc:  strings.Join(wmes, "\n"),
	}
}

// GenScript produces a matcher-level case: the same program shapes,
// driven by a script of per-cycle change lists that includes
// same-cycle add-then-delete transients — the modify-shaped pattern
// the engine act phase only produces implicitly.
func GenScript(seed int64, cfg GenConfig) Case {
	cfg = cfg.withDefaults()
	g := &generator{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
	prog := g.program()

	cycles := 3 + g.rng.Intn(6)
	var script [][]ScriptOp
	adds := 0
	live := []int{} // add indexes (1-based) still in wm
	for c := 0; c < cycles; c++ {
		var cyc []ScriptOp
		n := 1 + g.rng.Intn(5)
		for i := 0; i < n; i++ {
			switch {
			case len(live) > 0 && g.rng.Float64() < 0.3:
				j := g.rng.Intn(len(live))
				cyc = append(cyc, ScriptOp{Remove: live[j]})
				live = append(live[:j], live[j+1:]...)
			case g.rng.Float64() < 0.25:
				// Same-cycle transient: add immediately followed by its
				// own delete.
				adds++
				cyc = append(cyc, ScriptOp{WME: g.wme()}, ScriptOp{Remove: adds})
			default:
				adds++
				cyc = append(cyc, ScriptOp{WME: g.wme()})
				live = append(live, adds)
			}
		}
		script = append(script, cyc)
	}
	return Case{
		Name:    fmt.Sprintf("genscript-%d", seed),
		ProgSrc: prog.String(),
		Script:  script,
	}
}

// program builds a full random program; it retries any production that
// fails validation (rare — the construction is valid by design) and is
// guaranteed to return a compilable program because every emitted form
// is within the compiler's supported subset.
func (g *generator) program() *ops5.Program {
	prog := &ops5.Program{Literalizes: map[string][]string{}}
	for c := 0; c < g.cfg.Classes; c++ {
		var attrs []string
		for a := 0; a < g.cfg.Attrs; a++ {
			attrs = append(attrs, g.attr(a))
		}
		prog.Literalizes[g.class(c)] = attrs
	}
	for i := 0; i < g.cfg.Productions; i++ {
		for {
			p := g.production(i)
			if p.Validate() == nil {
				prog.Productions = append(prog.Productions, p)
				break
			}
		}
	}
	return prog
}

func (g *generator) production(idx int) *ops5.Production {
	p := &ops5.Production{Name: fmt.Sprintf("p%d", idx)}
	nCE := 1 + g.rng.Intn(g.cfg.MaxCEs)
	var bound []boundVar
	nextVar := 0
	for i := 0; i < nCE; i++ {
		negated := i > 0 && g.rng.Float64() < g.cfg.NegationProb
		ce := ops5.CE{Class: g.class(g.rng.Intn(g.cfg.Classes)), Negated: negated}
		nTests := 1 + g.rng.Intn(g.cfg.Attrs)
		seen := map[int]bool{}
		for t := 0; t < nTests; t++ {
			a := g.rng.Intn(g.cfg.Attrs)
			if seen[a] {
				continue
			}
			seen[a] = true
			numeric := g.attrNumeric(a)
			term := g.term(numeric, negated, &bound, &nextVar)
			ce.Tests = append(ce.Tests, ops5.AttrTest{Attr: g.attr(a), Terms: []ops5.Term{term}})
		}
		p.LHS = append(p.LHS, ce)
	}
	g.rhs(p, bound)
	return p
}

// term picks one attribute test. Negated CEs never define variables
// (so every RHS-visible variable has a positive defining occurrence,
// per Production.Validate); positive CEs mix defining occurrences,
// equality tests against prior bindings, and constant tests.
func (g *generator) term(numeric, negated bool, bound *[]boundVar, nextVar *int) ops5.Term {
	if v, ok := g.pickBound(*bound, numeric); ok && g.rng.Float64() < g.cfg.EqDensity {
		return ops5.Term{Op: ops5.OpEq, Var: v}
	}
	if !negated && g.rng.Float64() < 0.4 {
		name := fmt.Sprintf("v%d", *nextVar)
		*nextVar++
		*bound = append(*bound, boundVar{name: name, numeric: numeric})
		return ops5.Term{Op: ops5.OpEq, Var: name}
	}
	c := g.constant(numeric)
	op := ops5.OpEq
	if g.rng.Float64() < g.cfg.PredProb {
		if numeric {
			op = []ops5.PredOp{ops5.OpNe, ops5.OpLt, ops5.OpLe, ops5.OpGt, ops5.OpGe}[g.rng.Intn(5)]
		} else {
			op = ops5.OpNe
		}
	}
	return ops5.Term{Op: op, Const: &c}
}

// pickBound selects a random bound variable of the wanted type.
func (g *generator) pickBound(bound []boundVar, numeric bool) (string, bool) {
	var cands []string
	for _, v := range bound {
		if v.numeric == numeric {
			cands = append(cands, v.name)
		}
	}
	if len(cands) == 0 {
		return "", false
	}
	return cands[g.rng.Intn(len(cands))], true
}

// rhs emits 1..MaxActions weighted make/remove/modify actions plus an
// occasional trailing halt. remove and modify target positive CEs
// only, as Validate requires.
func (g *generator) rhs(p *ops5.Production, bound []boundVar) {
	var positives []int // 1-based CE indexes
	for i, ce := range p.LHS {
		if !ce.Negated {
			positives = append(positives, i+1)
		}
	}
	total := g.cfg.MakeWeight + g.cfg.RemoveWeight + g.cfg.ModifyWeight
	n := 1 + g.rng.Intn(g.cfg.MaxActions)
	for i := 0; i < n; i++ {
		w := g.rng.Intn(total)
		switch {
		case w < g.cfg.MakeWeight:
			p.RHS = append(p.RHS, g.makeAction(bound))
		case w < g.cfg.MakeWeight+g.cfg.RemoveWeight:
			p.RHS = append(p.RHS, ops5.Action{
				Kind:      ops5.ActRemove,
				CEIndexes: []int{positives[g.rng.Intn(len(positives))]},
			})
		default:
			a := g.makeAction(bound)
			a.Kind = ops5.ActModify
			a.Class = ""
			a.CEIndexes = []int{positives[g.rng.Intn(len(positives))]}
			p.RHS = append(p.RHS, a)
		}
	}
	if g.rng.Float64() < g.cfg.HaltProb {
		p.RHS = append(p.RHS, ops5.Action{Kind: ops5.ActHalt})
	}
}

// makeAction builds a make with 1..Attrs type-consistent assignments:
// constants, bound variables, or (numeric) small compute chains. All
// arithmetic is + - * or division by a constant drawn from 1.., so no
// generated program can hit the interpreter's division-by-zero error
// path nondeterministically.
func (g *generator) makeAction(bound []boundVar) ops5.Action {
	a := ops5.Action{Kind: ops5.ActMake, Class: g.class(g.rng.Intn(g.cfg.Classes))}
	nAssign := 1 + g.rng.Intn(g.cfg.Attrs)
	seen := map[int]bool{}
	for i := 0; i < nAssign; i++ {
		at := g.rng.Intn(g.cfg.Attrs)
		if seen[at] {
			continue
		}
		seen[at] = true
		a.Assigns = append(a.Assigns, ops5.AttrAssign{
			Attr: g.attr(at),
			Expr: g.expr(g.attrNumeric(at), bound),
		})
	}
	return a
}

func (g *generator) expr(numeric bool, bound []boundVar) ops5.Expr {
	if v, ok := g.pickBound(bound, numeric); ok && g.rng.Float64() < 0.5 {
		if numeric && g.rng.Float64() < 0.3 {
			// (compute <v> op const): keeps derived values drifting so
			// modify loops change state instead of idling at a fixpoint.
			c := g.constant(true)
			op := []ops5.ExprOp{ops5.ExprAdd, ops5.ExprSub, ops5.ExprMul}[g.rng.Intn(3)]
			return ops5.Expr{
				Operands: []ops5.Expr{{Var: v}, {Const: &c}},
				Ops:      []ops5.ExprOp{op},
			}
		}
		return ops5.Expr{Var: v}
	}
	c := g.constant(numeric)
	return ops5.Expr{Const: &c}
}

// wme builds a random store element with every attribute assigned.
func (g *generator) wme() *ops5.WME {
	w := ops5.NewWME(g.class(g.rng.Intn(g.cfg.Classes)))
	for a := 0; a < g.cfg.Attrs; a++ {
		w.Attrs[g.attr(a)] = g.constant(g.attrNumeric(a))
	}
	return w
}
