// Package difftest is the differential correctness harness: it
// generates random but well-typed OPS5 programs and workloads
// (gen.go), runs each through every match implementation the repo has
// — the sequential Rete matcher, the parallel runtime across worker
// counts and both message-plane modes, and the shared / unshared /
// copy-and-constraint network variants — and asserts they agree on
// every observable: per-cycle netted conflict sets, firing sequence,
// final working memory, and write output (check.go). Failures shrink
// to a minimal reproduction (shrink.go) persisted as a .ops5 corpus
// file.
//
// This mirrors the differential-simulation methodology of Marzolla &
// D'Angelo (parallel engine validated against a sequential oracle over
// randomized workloads) applied to the paper's central claim: the
// distributed hash-table match computes the same conflict set as
// uniprocessor Rete regardless of processor count, interleaving, or
// network variant.
package difftest

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mpcrete/internal/ops5"
)

// ScriptOp is one working-memory change in a scripted cycle: an add of
// a literal wme, or a removal of the n'th previously-added wme
// (1-based, in script order). Scripts replay at the matcher level, so
// they can express match-phase shapes the engine's act phase never
// produces directly — most importantly the same-cycle add-then-delete
// transient of a modify.
type ScriptOp struct {
	Remove int       // when > 0: delete the Remove'th prior add
	WME    *ops5.WME // when Remove == 0: the wme to add
}

// Case is one differential test input: an OPS5 program plus either an
// initial working-memory store to run through full match-resolve-act
// cycles (WMESrc), or a scripted sequence of per-cycle change lists to
// replay through the matchers alone (Script). Exactly one of the two
// is set.
type Case struct {
	Name    string
	ProgSrc string
	WMESrc  string
	Script  [][]ScriptOp
}

// IsScript reports whether the case replays at the matcher level.
func (c *Case) IsScript() bool { return len(c.Script) > 0 }

// sectionMark introduces a section in the .ops5 case encoding; the
// OPS5 lexer treats these lines as comments, so a case file's program
// section is also a valid plain OPS5 source file.
const sectionMark = ";;; "

// Encode renders the case in the .ops5 corpus file format: the program
// source, then either one ";;; wmes" section of wme literals or a
// ";;; cycle" section per scripted cycle, where each line is a wme
// literal (an add) or a "(remove N)" directive.
func (c *Case) Encode() []byte {
	var b strings.Builder
	b.WriteString(strings.TrimRight(c.ProgSrc, "\n"))
	b.WriteByte('\n')
	if c.IsScript() {
		for _, cyc := range c.Script {
			b.WriteString(sectionMark + "cycle\n")
			for _, op := range cyc {
				if op.Remove > 0 {
					fmt.Fprintf(&b, "(remove %d)\n", op.Remove)
				} else {
					b.WriteString(op.WME.String())
					b.WriteByte('\n')
				}
			}
		}
	} else if strings.TrimSpace(c.WMESrc) != "" {
		b.WriteString(sectionMark + "wmes\n")
		b.WriteString(strings.TrimRight(c.WMESrc, "\n"))
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// Decode parses the .ops5 corpus file format produced by Encode. The
// program section must parse; wme and script sections must parse line
// by line; remove directives must reference a prior add.
func Decode(name string, data []byte) (Case, error) {
	c := Case{Name: name}
	lines := strings.Split(string(data), "\n")
	section := "prog"
	var prog, wmes []string
	adds := 0
	for _, line := range lines {
		if strings.HasPrefix(line, sectionMark) {
			section = strings.TrimSpace(strings.TrimPrefix(line, sectionMark))
			switch section {
			case "wmes":
				if c.IsScript() {
					return c, fmt.Errorf("difftest: case %s mixes wmes and cycle sections", name)
				}
			case "cycle":
				c.Script = append(c.Script, nil)
			default:
				return c, fmt.Errorf("difftest: case %s: unknown section %q", name, section)
			}
			continue
		}
		switch section {
		case "prog":
			prog = append(prog, line)
		case "wmes":
			wmes = append(wmes, line)
		case "cycle":
			trimmed := strings.TrimSpace(line)
			if trimmed == "" || strings.HasPrefix(trimmed, ";") {
				continue
			}
			cyc := len(c.Script) - 1
			if n, ok := parseRemove(trimmed); ok {
				if n < 1 || n > adds {
					return c, fmt.Errorf("difftest: case %s: (remove %d) with %d prior adds", name, n, adds)
				}
				c.Script[cyc] = append(c.Script[cyc], ScriptOp{Remove: n})
				continue
			}
			ws, err := ops5.ParseWMEs(trimmed)
			if err != nil || len(ws) != 1 {
				return c, fmt.Errorf("difftest: case %s: bad script line %q: %v", name, trimmed, err)
			}
			adds++
			c.Script[cyc] = append(c.Script[cyc], ScriptOp{WME: ws[0]})
		}
	}
	c.ProgSrc = strings.TrimRight(strings.Join(prog, "\n"), "\n") + "\n"
	c.WMESrc = strings.Join(wmes, "\n")
	if _, err := ops5.ParseProgram(c.ProgSrc); err != nil {
		return c, fmt.Errorf("difftest: case %s: program: %w", name, err)
	}
	if !c.IsScript() && strings.TrimSpace(c.WMESrc) != "" {
		if _, err := ops5.ParseWMEs(c.WMESrc); err != nil {
			return c, fmt.Errorf("difftest: case %s: wmes: %w", name, err)
		}
	}
	return c, nil
}

// parseRemove recognizes a "(remove N)" script directive.
func parseRemove(line string) (n int, ok bool) {
	inner, found := strings.CutPrefix(line, "(remove ")
	if !found {
		return 0, false
	}
	inner, found = strings.CutSuffix(inner, ")")
	if !found {
		return 0, false
	}
	if _, err := fmt.Sscanf(inner, "%d", &n); err != nil {
		return 0, false
	}
	return n, true
}

// LoadCorpus decodes every .ops5 case under dir, sorted by filename
// for deterministic test order.
func LoadCorpus(dir string) ([]Case, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".ops5") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var cases []Case
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		c, err := Decode(strings.TrimSuffix(name, ".ops5"), data)
		if err != nil {
			return nil, err
		}
		cases = append(cases, c)
	}
	return cases, nil
}
