package difftest

import (
	"strings"

	"mpcrete/internal/ops5"
	"mpcrete/internal/rete"
)

// Shrink reduces a failing case to a (locally) minimal one: the
// returned case still satisfies fails, and no single reduction the
// shrinker knows — dropping a production, a wme or script op, a
// condition element, an attribute test, or an RHS action — produces a
// smaller case that does. fails must be deterministic (Check with
// fixed options is; so is any predicate built on runConfig outcomes).
// If fails(c) is false, c is returned unchanged.
func Shrink(c Case, fails func(Case) bool) Case {
	if !fails(c) {
		return c
	}
	// Iterate to a fixpoint: dropping a production can unlock dropping
	// the wmes only it matched, and vice versa.
	for {
		before := size(c)
		c = shrinkProductions(c, fails)
		if c.IsScript() {
			c = shrinkScript(c, fails)
		} else {
			c = shrinkWMEs(c, fails)
		}
		c = shrinkWithin(c, fails)
		if size(c) >= before {
			return c
		}
	}
}

// size is the shrink-progress measure: source bytes plus script ops.
func size(c Case) int {
	n := len(c.ProgSrc) + len(c.WMESrc)
	for _, cyc := range c.Script {
		n += len(cyc)
	}
	return n
}

// minimize ddmin-reduces an index set: it tries removing progressively
// smaller chunks (halves first, then singles) and keeps any removal
// that still fails. test receives the kept-index mask and must rebuild
// and check the candidate. The returned mask marks survivors.
func minimize(n int, test func(keep []bool) bool) []bool {
	keep := make([]bool, n)
	for i := range keep {
		keep[i] = true
	}
	kept := n
	for chunk := n; chunk >= 1; chunk /= 2 {
		for lo := 0; lo < n; {
			// Select the next `chunk` kept indexes starting at lo.
			cand := make([]bool, n)
			copy(cand, keep)
			removed := 0
			hi := lo
			for ; hi < n && removed < chunk; hi++ {
				if cand[hi] {
					cand[hi] = false
					removed++
				}
			}
			if removed == 0 {
				break
			}
			if kept-removed >= 0 && test(cand) {
				copy(keep, cand)
				kept -= removed
				// Retry the same window: more may go.
				continue
			}
			lo = hi
		}
	}
	return keep
}

// parseOrNil parses the case's program, returning nil on error (a
// shrink candidate that fails to parse is simply rejected).
func parseOrNil(src string) *ops5.Program {
	p, err := ops5.ParseProgram(src)
	if err != nil {
		return nil
	}
	return p
}

// viable reports whether a candidate program is well-formed enough to
// hand to the harness: every production validates and the network
// compiles. Candidates that are not viable are skipped, so the
// shrinker never trades a real divergence for a build error.
func viable(prog *ops5.Program) bool {
	if prog == nil || len(prog.Productions) == 0 {
		return false
	}
	for _, p := range prog.Productions {
		if p.Validate() != nil {
			return false
		}
	}
	_, err := rete.Compile(prog.Productions)
	return err == nil
}

// rebuildProg renders a program keeping only the masked productions.
func rebuildProg(prog *ops5.Program, keep []bool) *ops5.Program {
	out := &ops5.Program{Literalizes: prog.Literalizes}
	for i, p := range prog.Productions {
		if keep[i] {
			out.Productions = append(out.Productions, p)
		}
	}
	return out
}

func shrinkProductions(c Case, fails func(Case) bool) Case {
	prog := parseOrNil(c.ProgSrc)
	if prog == nil {
		return c
	}
	best := c
	minimize(len(prog.Productions), func(keep []bool) bool {
		cand := rebuildProg(prog, keep)
		if !viable(cand) {
			return false
		}
		cc := best
		cc.ProgSrc = cand.String()
		if fails(cc) {
			best = cc
			return true
		}
		return false
	})
	return best
}

func shrinkWMEs(c Case, fails func(Case) bool) Case {
	lines := nonEmptyLines(c.WMESrc)
	if len(lines) == 0 {
		return c
	}
	best := c
	minimize(len(lines), func(keep []bool) bool {
		var kept []string
		for i, l := range lines {
			if keep[i] {
				kept = append(kept, l)
			}
		}
		cc := best
		cc.WMESrc = strings.Join(kept, "\n")
		if fails(cc) {
			best = cc
			return true
		}
		return false
	})
	return best
}

// shrinkScript reduces scripted cases op by op. Dropping an add
// invalidates later (remove N) references, so the rebuild renumbers:
// every surviving remove is rewritten against the surviving adds, and
// a remove whose target add was dropped makes the candidate
// non-viable.
func shrinkScript(c Case, fails func(Case) bool) Case {
	flat, bounds := flattenScript(c.Script)
	best := c
	minimize(len(flat), func(keep []bool) bool {
		script, ok := rebuildScript(flat, bounds, keep)
		if !ok {
			return false
		}
		cc := best
		cc.Script = script
		if fails(cc) {
			best = cc
			return true
		}
		return false
	})
	return best
}

// flattenScript lists every op with its cycle's end offsets.
func flattenScript(script [][]ScriptOp) (flat []ScriptOp, bounds []int) {
	for _, cyc := range script {
		flat = append(flat, cyc...)
		bounds = append(bounds, len(flat))
	}
	return flat, bounds
}

// rebuildScript reassembles a script from surviving ops, renumbering
// remove references to the surviving adds. ok is false when a kept
// remove targets a dropped add. Empty cycles are elided.
func rebuildScript(flat []ScriptOp, bounds []int, keep []bool) ([][]ScriptOp, bool) {
	// newIndex[old add ordinal] = new add ordinal (1-based), 0 if dropped.
	var newIndex []int
	adds := 0
	for i, op := range flat {
		if op.Remove > 0 {
			continue
		}
		if keep[i] {
			adds++
			newIndex = append(newIndex, adds)
		} else {
			newIndex = append(newIndex, 0)
		}
	}
	var script [][]ScriptOp
	i, addOrdinal := 0, 0
	for _, end := range bounds {
		var cyc []ScriptOp
		for ; i < end; i++ {
			op := flat[i]
			if op.Remove == 0 {
				addOrdinal++
			}
			if !keep[i] {
				continue
			}
			if op.Remove > 0 {
				renum := newIndex[op.Remove-1]
				if renum == 0 {
					return nil, false
				}
				cyc = append(cyc, ScriptOp{Remove: renum})
			} else {
				cyc = append(cyc, ScriptOp{WME: op.WME})
			}
		}
		if len(cyc) > 0 {
			script = append(script, cyc)
		}
	}
	if len(script) == 0 {
		return nil, false
	}
	return script, true
}

// shrinkWithin reduces inside each production: RHS actions, condition
// elements (renumbering remove/modify CE targets), and attribute
// tests. Each reduction re-validates and re-checks.
func shrinkWithin(c Case, fails func(Case) bool) Case {
	best := c
	for {
		improved := false
		prog := parseOrNil(best.ProgSrc)
		if prog == nil {
			return best
		}
		for pi := range prog.Productions {
			for _, cand := range reduceProduction(prog.Productions[pi]) {
				mut := &ops5.Program{Literalizes: prog.Literalizes}
				mut.Productions = append(mut.Productions, prog.Productions...)
				mut.Productions[pi] = cand
				if !viable(mut) {
					continue
				}
				cc := best
				cc.ProgSrc = mut.String()
				if fails(cc) {
					best = cc
					improved = true
					break
				}
			}
			if improved {
				break // re-parse and restart from the smaller program
			}
		}
		if !improved {
			return best
		}
	}
}

// reduceProduction enumerates one-step reductions of a production:
// drop an RHS action, drop an attribute test, or drop a CE (fixing up
// RHS CE indexes; reductions that orphan a remove/modify target are
// not emitted — Validate would reject them anyway).
func reduceProduction(p *ops5.Production) []*ops5.Production {
	var out []*ops5.Production
	for ai := range p.RHS {
		q := cloneProduction(p)
		q.RHS = append(q.RHS[:ai], q.RHS[ai+1:]...)
		out = append(out, q)
	}
	for ci := range p.LHS {
		if q, ok := dropCE(p, ci); ok {
			out = append(out, q)
		}
	}
	for ci, ce := range p.LHS {
		if len(ce.Tests) < 2 {
			continue
		}
		for ti := range ce.Tests {
			q := cloneProduction(p)
			q.LHS[ci].Tests = append(append([]ops5.AttrTest{}, ce.Tests[:ti]...), ce.Tests[ti+1:]...)
			out = append(out, q)
		}
	}
	return out
}

// dropCE removes condition element ci (0-based), decrementing RHS CE
// indexes above it. ok is false when an action targets the dropped CE.
func dropCE(p *ops5.Production, ci int) (*ops5.Production, bool) {
	q := cloneProduction(p)
	q.LHS = append(q.LHS[:ci], q.LHS[ci+1:]...)
	for ai := range q.RHS {
		a := &q.RHS[ai]
		for ii, idx := range a.CEIndexes {
			switch {
			case idx == ci+1:
				return nil, false
			case idx > ci+1:
				a.CEIndexes[ii] = idx - 1
			}
		}
	}
	return q, true
}

// cloneProduction deep-copies the slices the reducers mutate.
func cloneProduction(p *ops5.Production) *ops5.Production {
	q := &ops5.Production{Name: p.Name}
	for _, ce := range p.LHS {
		nce := ce
		nce.Tests = append([]ops5.AttrTest{}, ce.Tests...)
		q.LHS = append(q.LHS, nce)
	}
	for _, a := range p.RHS {
		na := a
		na.CEIndexes = append([]int{}, a.CEIndexes...)
		na.Assigns = append([]ops5.AttrAssign{}, a.Assigns...)
		na.Args = append([]ops5.Expr{}, a.Args...)
		q.RHS = append(q.RHS, na)
	}
	return q
}

// nonEmptyLines splits src into trimmed non-empty, non-comment lines.
func nonEmptyLines(src string) []string {
	var out []string
	for _, l := range strings.Split(src, "\n") {
		t := strings.TrimSpace(l)
		if t != "" && !strings.HasPrefix(t, ";") {
			out = append(out, t)
		}
	}
	return out
}
