package difftest

import (
	"io"
	"os"
	"path/filepath"
)

// SaveArtifacts persists a divergence's post-mortem bundle into dir:
// the case as <name>.ops5 (corpus format), and — when a causal dump is
// available — <name>.flight.json (raw rings) plus <name>.trace.json
// (Chrome trace-event format). If the mismatch carries no dump, the
// case is re-checked once with an instrumented matrix (FlightCycles
// 64) to capture one; divergence is deterministic per configuration,
// so the re-run reproduces it. Returns the paths written.
//
// CI sets DIFFTEST_ARTIFACTS and the fuzz targets call this on
// failure, so a red fuzz job uploads the causal trace of the
// diverging run alongside the repro.
func SaveArtifacts(dir string, mis *Mismatch, opts CheckOptions) ([]string, error) {
	if mis.Dump == nil {
		opts.FlightCycles = 64
		if m2 := Check(mis.Case, opts); m2 != nil && m2.Dump != nil {
			mis = m2
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	name := mis.Case.Name
	if name == "" {
		name = "divergence"
	}
	paths := []string{filepath.Join(dir, name+".ops5")}
	if err := os.WriteFile(paths[0], mis.Case.Encode(), 0o644); err != nil {
		return nil, err
	}
	if mis.Dump != nil {
		for _, exp := range []struct {
			suffix string
			render func(io.Writer) error
		}{
			{".flight.json", mis.Dump.WriteJSON},
			{".trace.json", mis.Dump.WriteChromeTrace},
		} {
			p := filepath.Join(dir, name+exp.suffix)
			f, err := os.Create(p)
			if err != nil {
				return paths, err
			}
			if err := exp.render(f); err != nil {
				f.Close()
				return paths, err
			}
			if err := f.Close(); err != nil {
				return paths, err
			}
			paths = append(paths, p)
		}
	}
	return paths, nil
}

// saveFuzzArtifacts is the fuzz-target hook: a no-op unless the
// DIFFTEST_ARTIFACTS environment variable names a directory.
func saveFuzzArtifacts(mis *Mismatch, opts CheckOptions) []string {
	dir := os.Getenv("DIFFTEST_ARTIFACTS")
	if dir == "" {
		return nil
	}
	paths, err := SaveArtifacts(dir, mis, opts)
	if err != nil {
		return nil // best-effort: the t.Fatal repro dump still has the case
	}
	return paths
}
