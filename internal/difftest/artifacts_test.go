package difftest

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestSaveArtifactsRecapturesDump forces a divergence WITHOUT flight
// recording enabled, so the mismatch carries no dump, and checks that
// SaveArtifacts re-runs the case instrumented and still writes the
// flight and trace exports alongside the repro.
func TestSaveArtifactsRecapturesDump(t *testing.T) {
	opts := CheckOptions{
		MaxCycles:       20,
		Workers:         []int{2},
		ForceDivergence: "par-w2-bcast",
	}
	c := Gen(3, ConfigFromBytes(nil))
	mis := Check(c, opts)
	if mis == nil {
		t.Fatal("forced divergence did not produce a mismatch")
	}
	if mis.Dump != nil {
		t.Fatal("expected no dump when FlightCycles is off")
	}
	dir := t.TempDir()
	paths, err := SaveArtifacts(dir, mis, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("expected repro + flight + trace, got %v", paths)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Fatalf("%s is empty", p)
		}
		if filepath.Ext(p) == ".json" && !json.Valid(data) {
			t.Fatalf("%s is not valid JSON", p)
		}
	}
	if _, err := Decode("roundtrip", mustRead(t, paths[0])); err != nil {
		t.Fatalf("saved repro does not decode: %v", err)
	}
}

// TestSaveFuzzArtifactsEnvGate pins that the fuzz hook is inert
// without DIFFTEST_ARTIFACTS and active with it.
func TestSaveFuzzArtifactsEnvGate(t *testing.T) {
	opts := CheckOptions{
		MaxCycles:       20,
		Workers:         []int{2},
		FlightCycles:    8,
		ForceDivergence: "par-w2-bcast",
	}
	mis := Check(Gen(3, ConfigFromBytes(nil)), opts)
	if mis == nil || mis.Dump == nil {
		t.Fatal("forced divergence with FlightCycles should carry a dump")
	}
	t.Setenv("DIFFTEST_ARTIFACTS", "")
	if paths := saveFuzzArtifacts(mis, opts); paths != nil {
		t.Fatalf("hook wrote %v without env set", paths)
	}
	dir := t.TempDir()
	t.Setenv("DIFFTEST_ARTIFACTS", dir)
	paths := saveFuzzArtifacts(mis, opts)
	if len(paths) != 3 {
		t.Fatalf("expected 3 artifacts under %s, got %v", dir, paths)
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
