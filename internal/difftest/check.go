package difftest

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"time"

	"mpcrete/internal/engine"
	"mpcrete/internal/obs"
	"mpcrete/internal/ops5"
	"mpcrete/internal/parallel"
	"mpcrete/internal/rete"
	"mpcrete/internal/sched"
	"mpcrete/internal/transport"
)

// checkNBuckets is the hash-space size every configuration runs with.
// Small enough that a handful of wmes spreads across several workers,
// large enough to exercise the partition map.
const checkNBuckets = 64

// CheckOptions tune the differential run matrix.
type CheckOptions struct {
	// MaxCycles caps engine-level runs (default 50); hitting the cap is
	// itself a compared outcome, so non-terminating generated programs
	// still check cleanly.
	MaxCycles int
	// Workers lists the parallel worker counts to test (default
	// {1, 2, 4, 8}); each runs in both broadcast and routed-roots mode.
	Workers []int
	// ChaosSeed, when non-zero, enables the parallel runtime's chaos
	// scheduling layer for every parallel configuration.
	ChaosSeed int64
	// Budget caps the total conflict-set size summed over cycles
	// (default 50000). The cap cuts off cross-product explosions
	// deterministically: every configuration truncates at the same
	// cycle, so truncated runs still compare exactly.
	Budget int
	// Metrics, when non-nil, is handed to every parallel runtime (soak
	// runs aggregate parallel.dropped_post_close across the whole run).
	Metrics *obs.Registry
	// FlightCycles, when > 0, attaches a flight recorder retaining that
	// many cycles of causal trace to every parallel configuration; a
	// divergence then carries the diverging run's dump (Mismatch.Dump)
	// for post-mortem analysis next to the shrunk repro.
	FlightCycles int
	// ForceDivergence, when non-empty, artificially perturbs the
	// outcome of every configuration whose name contains the substring.
	// It exists to drill the divergence-reporting path end to end
	// (shrink, repro file, flight dump) without needing a real bug.
	ForceDivergence string
	// TCP, when true, adds the wire-transport configurations to the
	// matrix: the in-process runtime over the loopback TCP transport
	// (tcp-*, every message through the full frame codec and a real
	// socket) and the multi-process control plane with worker protocol
	// loops on local connections (tcpproc-*). Off by default — each
	// configuration opens real sockets per case, which is too slow for
	// the fuzzing inner loop.
	TCP bool
	// Variant, when non-empty, focuses the matrix on one network
	// variant: the sequential shared reference, the variant
	// sequentially, and the variant on the parallel runtime in both
	// message-plane modes across every worker count — the cmd/difftest
	// -variant knob. Empty runs the full default matrix.
	Variant string
	// Rebalance, when true, adds the migration configurations to the
	// matrix: every multi-worker count in both message-plane modes with
	// the online adaptive rebalancer armed hair-trigger from a
	// pathological all-on-worker-0 assignment (adapt-*), and with a
	// forced full-rotation schedule that moves every bucket at every
	// cycle boundary (migrate-*). With TCP also set, the same two
	// schedules run over the loopback wire codec (tcpadapt-*,
	// tcpmigrate-*) and the multi-process control plane
	// (tcpprocadapt-*, tcpprocmigrate-*). ChaosSeed composes: chaos
	// scheduling applies to the in-process migration configurations
	// like any other parallel run.
	Rebalance bool
}

func (o CheckOptions) withDefaults() CheckOptions {
	if o.MaxCycles <= 0 {
		o.MaxCycles = 50
	}
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 2, 4, 8}
	}
	if o.Budget <= 0 {
		o.Budget = 50000
	}
	return o
}

// Outcome is everything observable about one configuration's run,
// normalized for comparison.
type Outcome struct {
	// Cycles holds one fingerprint line per cycle. Engine-level: the
	// fired instantiation key plus the sorted post-refraction conflict
	// set. Script-level: the sorted netted deltas plus the resulting
	// conflict set.
	Cycles []string
	// FinalWM is the final working memory, one sorted line per wme
	// (engine-level only).
	FinalWM []string
	// Output is the accumulated write-action text (engine-level only).
	Output string
	Fired  int
	Halted bool
	// Err records a deterministic interpreter error (e.g. cycle limit);
	// errors must reproduce identically across configurations.
	Err string
	// Truncated is set when the Budget cut the run short.
	Truncated bool
	// Dump is the run's causal flight dump (parallel configurations
	// with CheckOptions.FlightCycles set; nil otherwise). It is
	// post-mortem context, not compared state.
	Dump *obs.FlightDump
}

// diff returns a description of the first difference from o to other,
// or "" when equal.
func (o *Outcome) diff(other *Outcome) string {
	for i := 0; i < len(o.Cycles) && i < len(other.Cycles); i++ {
		if o.Cycles[i] != other.Cycles[i] {
			return fmt.Sprintf("cycle %d:\n  ref: %s\n  got: %s", i, o.Cycles[i], other.Cycles[i])
		}
	}
	if len(o.Cycles) != len(other.Cycles) {
		return fmt.Sprintf("cycle count: ref %d, got %d", len(o.Cycles), len(other.Cycles))
	}
	for i := 0; i < len(o.FinalWM) && i < len(other.FinalWM); i++ {
		if o.FinalWM[i] != other.FinalWM[i] {
			return fmt.Sprintf("final wm[%d]: ref %s, got %s", i, o.FinalWM[i], other.FinalWM[i])
		}
	}
	if len(o.FinalWM) != len(other.FinalWM) {
		return fmt.Sprintf("final wm size: ref %d, got %d", len(o.FinalWM), len(other.FinalWM))
	}
	switch {
	case o.Output != other.Output:
		return fmt.Sprintf("write output: ref %q, got %q", o.Output, other.Output)
	case o.Fired != other.Fired:
		return fmt.Sprintf("fired: ref %d, got %d", o.Fired, other.Fired)
	case o.Halted != other.Halted:
		return fmt.Sprintf("halted: ref %v, got %v", o.Halted, other.Halted)
	case o.Err != other.Err:
		return fmt.Sprintf("err: ref %q, got %q", o.Err, other.Err)
	case o.Truncated != other.Truncated:
		return fmt.Sprintf("truncated: ref %v, got %v", o.Truncated, other.Truncated)
	}
	return ""
}

// Mismatch reports a divergence between the sequential reference and
// one configuration.
type Mismatch struct {
	Case   Case
	Config string
	Detail string
	// Dump is the diverging run's flight-recorder dump when the
	// configuration was instrumented (CheckOptions.FlightCycles > 0 and
	// a parallel configuration diverged); nil otherwise.
	Dump *obs.FlightDump
}

func (m *Mismatch) Error() string {
	return fmt.Sprintf("difftest: case %s: %s diverges from sequential reference: %s", m.Case.Name, m.Config, m.Detail)
}

// built is one configuration's instantiated match machinery. close is
// non-nil for parallel configurations; dump is non-nil when a flight
// recorder is attached and snapshots it (legal once the run is
// quiescent).
type built struct {
	net     *rete.Network
	matcher engine.MatchApplier
	close   func()
	dump    func() *obs.FlightDump
}

// config builds the match implementation for one configuration over a
// freshly compiled network.
type config struct {
	name  string
	build func(prods []*ops5.Production, opts CheckOptions) (built, error)
}

// compileVariant compiles prods with the named network variant:
// "shared" (default compilation), "unshared" (no node sharing), "candc"
// (copy-and-constrain k=2 applied to every eligible join of a shared
// network), or "bounded" (worst-case-bounded collector groups). The
// spelling — and the compilation — is rete.CompileVariant's, shared
// with the ops5run/ops5d -variant flag.
func compileVariant(prods []*ops5.Production, variant string) (*rete.Network, error) {
	return rete.CompileVariant(prods, variant)
}

// seqConfig is a sequential-matcher configuration over a network
// variant.
func seqConfig(variant string) config {
	name := "seq"
	if variant != "shared" {
		name = "seq-" + variant
	}
	return config{name: name, build: func(prods []*ops5.Production, _ CheckOptions) (built, error) {
		net, err := compileVariant(prods, variant)
		if err != nil {
			return built{}, err
		}
		return built{net: net, matcher: rete.NewMatcher(net, rete.MatcherOptions{NBuckets: checkNBuckets})}, nil
	}}
}

// parConfig is a parallel-runtime configuration: worker count, message
// plane mode, and network variant.
func parConfig(workers int, routed bool, variant string) config {
	mode := "bcast"
	if routed {
		mode = "routed"
	}
	name := fmt.Sprintf("par-w%d-%s", workers, mode)
	if variant != "shared" {
		name += "-" + variant
	}
	return config{name: name, build: func(prods []*ops5.Production, opts CheckOptions) (built, error) {
		net, err := compileVariant(prods, variant)
		if err != nil {
			return built{}, err
		}
		popts := parallel.Options{
			Workers:    workers,
			NBuckets:   checkNBuckets,
			RouteRoots: routed,
			ChaosSeed:  opts.ChaosSeed,
			Metrics:    opts.Metrics,
		}
		if opts.FlightCycles > 0 {
			// A small ring suffices: generated cases are tiny and the
			// recorder exists to explain the last few cycles before a
			// divergence.
			popts.Causal = parallel.NewFlightRecorder(workers, 2048, opts.FlightCycles, checkNBuckets)
		}
		rt, err := parallel.New(net, popts)
		if err != nil {
			return built{}, err
		}
		b := built{net: net, matcher: rt, close: rt.Close}
		if opts.FlightCycles > 0 {
			b.dump = rt.FlightDump
		}
		return b, nil
	}}
}

// hairTrigger is the adaptive-rebalance tuning the migration
// configurations arm: any imbalance above 1% replans immediately, so
// the skewed starting assignment guarantees mid-run migrations on any
// case with a few activations.
func hairTrigger() sched.Rebalance {
	return sched.Rebalance{Threshold: 1.01, MinInterval: 1}
}

// skewedPartition assigns every bucket to worker 0 — the pathological
// start the adaptive configurations recover from.
func skewedPartition() sched.Partition {
	return make(sched.Partition, checkNBuckets)
}

// rotateEvery is the forced-migration schedule: every cycle boundary
// rotates the whole partition by one worker, so every bucket (and
// every resident token) changes owner between every pair of cycles.
func rotateEvery(workers int) func(cycle int) sched.Partition {
	return func(cycle int) sched.Partition {
		p := make(sched.Partition, checkNBuckets)
		for b := range p {
			p[b] = (b + cycle) % workers
		}
		return p
	}
}

// adaptConfig is the parallel runtime with the online adaptive
// rebalancer armed hair-trigger from an all-on-worker-0 assignment;
// migrateConfig is the runtime under the forced full-rotation
// schedule. Both must produce conflict sets identical to the static
// sequential reference — migration moves state, never match semantics.
func adaptConfig(workers int, routed bool) config {
	return migrationConfig("adapt", workers, routed, true, false)
}

func migrateConfig(workers int, routed bool) config {
	return migrationConfig("migrate", workers, routed, false, true)
}

func migrationConfig(kind string, workers int, routed, adaptive, forced bool) config {
	mode := "bcast"
	if routed {
		mode = "routed"
	}
	name := fmt.Sprintf("%s-w%d-%s", kind, workers, mode)
	return config{name: name, build: func(prods []*ops5.Production, opts CheckOptions) (built, error) {
		net, err := compileVariant(prods, "shared")
		if err != nil {
			return built{}, err
		}
		popts := parallel.Options{
			Workers:    workers,
			NBuckets:   checkNBuckets,
			RouteRoots: routed,
			ChaosSeed:  opts.ChaosSeed,
			Metrics:    opts.Metrics,
		}
		if adaptive {
			popts.Partition = skewedPartition()
			popts.Rebalance = hairTrigger()
		}
		if forced {
			popts.ForceMigrate = rotateEvery(workers)
		}
		rt, err := parallel.New(net, popts)
		if err != nil {
			return built{}, err
		}
		return built{net: net, matcher: rt, close: rt.Close}, nil
	}}
}

// tcpMigrationConfig is the same two schedules over the loopback wire
// codec: every migrated bucket's tokens serialize through the frame
// codec and a real localhost socket.
func tcpMigrationConfig(kind string, workers int, routed, adaptive, forced bool) config {
	mode := "bcast"
	if routed {
		mode = "routed"
	}
	name := fmt.Sprintf("tcp%s-w%d-%s", kind, workers, mode)
	return config{name: name, build: func(prods []*ops5.Production, opts CheckOptions) (built, error) {
		net, err := compileVariant(prods, "shared")
		if err != nil {
			return built{}, err
		}
		popts := parallel.Options{
			Workers:    workers,
			NBuckets:   checkNBuckets,
			RouteRoots: routed,
			Metrics:    opts.Metrics,
			Transport:  transport.NewLoopback(net),
		}
		if adaptive {
			popts.Partition = skewedPartition()
			popts.Rebalance = hairTrigger()
		}
		if forced {
			popts.ForceMigrate = rotateEvery(workers)
		}
		rt, err := parallel.New(net, popts)
		if err != nil {
			return built{}, err
		}
		return built{net: net, matcher: rt, close: rt.Close}, nil
	}}
}

// tcpProcMigrationConfig runs the schedules on the multi-process
// control plane: buckets migrate between worker protocol loops across
// real TCP connections mid-run.
func tcpProcMigrationConfig(kind string, workers int, routed, adaptive, forced bool) config {
	mode := "bcast"
	if routed {
		mode = "routed"
	}
	name := fmt.Sprintf("tcpproc%s-w%d-%s", kind, workers, mode)
	return config{name: name, build: func(prods []*ops5.Production, opts CheckOptions) (built, error) {
		net, err := compileVariant(prods, "shared")
		if err != nil {
			return built{}, err
		}
		copts := transport.ControlOptions{
			Workers:    workers,
			NBuckets:   checkNBuckets,
			RouteRoots: routed,
		}
		if adaptive {
			copts.Partition = skewedPartition()
			copts.Rebalance = hairTrigger()
		}
		if forced {
			copts.ForceMigrate = rotateEvery(workers)
		}
		ctl, err := transport.Listen(net, "127.0.0.1:0", copts)
		if err != nil {
			return built{}, err
		}
		for i := 0; i < workers; i++ {
			go transport.Serve(ctl.Addr(), 10*time.Second)
		}
		if err := ctl.WaitWorkers(); err != nil {
			ctl.Close()
			return built{}, err
		}
		return built{net: net, matcher: ctl, close: func() { ctl.Close() }}, nil
	}}
}

// tcpConfig is the in-process runtime with its mailboxes replaced by
// the loopback TCP transport: identical scheduling, but every message
// crosses the full wire codec and a real localhost socket.
func tcpConfig(workers int, routed bool) config {
	mode := "bcast"
	if routed {
		mode = "routed"
	}
	name := fmt.Sprintf("tcp-w%d-%s", workers, mode)
	return config{name: name, build: func(prods []*ops5.Production, opts CheckOptions) (built, error) {
		net, err := compileVariant(prods, "shared")
		if err != nil {
			return built{}, err
		}
		rt, err := parallel.New(net, parallel.Options{
			Workers:    workers,
			NBuckets:   checkNBuckets,
			RouteRoots: routed,
			Metrics:    opts.Metrics,
			Transport:  transport.NewLoopback(net),
		})
		if err != nil {
			return built{}, err
		}
		return built{net: net, matcher: rt, close: rt.Close}, nil
	}}
}

// tcpProcConfig is the multi-process control plane: a transport.Control
// hub with worker protocol loops served over local TCP connections —
// the same code path ops5run -transport tcp and ops5worker run as
// separate OS processes.
func tcpProcConfig(workers int, routed bool) config {
	mode := "bcast"
	if routed {
		mode = "routed"
	}
	name := fmt.Sprintf("tcpproc-w%d-%s", workers, mode)
	return config{name: name, build: func(prods []*ops5.Production, opts CheckOptions) (built, error) {
		net, err := compileVariant(prods, "shared")
		if err != nil {
			return built{}, err
		}
		ctl, err := transport.Listen(net, "127.0.0.1:0", transport.ControlOptions{
			Workers:    workers,
			NBuckets:   checkNBuckets,
			RouteRoots: routed,
		})
		if err != nil {
			return built{}, err
		}
		for i := 0; i < workers; i++ {
			go transport.Serve(ctl.Addr(), 10*time.Second)
		}
		if err := ctl.WaitWorkers(); err != nil {
			ctl.Close()
			return built{}, err
		}
		return built{net: net, matcher: ctl, close: func() { ctl.Close() }}, nil
	}}
}

// configMatrix is the full run matrix: the sequential reference comes
// first, then the sequential network variants, the parallel sweep over
// worker counts and both message-plane modes, and cross-variant
// parallel runs (a routed copy-and-constraint runtime is the paper's
// Fig 3-2 machine executing a Section 5.2.2 network). With opts.TCP
// the wire-transport configurations join the matrix in both modes.
func configMatrix(opts CheckOptions) []config {
	if opts.Variant != "" {
		configs := []config{seqConfig("shared")}
		if opts.Variant != "shared" {
			configs = append(configs, seqConfig(opts.Variant))
		}
		for _, w := range opts.Workers {
			configs = append(configs, parConfig(w, false, opts.Variant), parConfig(w, true, opts.Variant))
		}
		return configs
	}
	configs := []config{
		seqConfig("shared"),
		seqConfig("unshared"),
		seqConfig("candc"),
		seqConfig("bounded"),
	}
	for _, w := range opts.Workers {
		configs = append(configs, parConfig(w, false, "shared"), parConfig(w, true, "shared"))
	}
	cross := 4
	if len(opts.Workers) > 0 {
		cross = opts.Workers[len(opts.Workers)-1]
	}
	first := 1
	if len(opts.Workers) > 0 {
		first = opts.Workers[0]
	}
	configs = append(configs,
		parConfig(cross, false, "unshared"),
		parConfig(cross, true, "candc"),
		parConfig(first, false, "bounded"),
		parConfig(cross, true, "bounded"),
	)
	if opts.TCP {
		configs = append(configs,
			tcpConfig(2, false), tcpConfig(2, true),
			tcpProcConfig(2, false), tcpProcConfig(2, true),
		)
	}
	if opts.Rebalance {
		for _, w := range opts.Workers {
			if w < 2 {
				continue // migration between one worker is vacuous
			}
			configs = append(configs,
				adaptConfig(w, false), adaptConfig(w, true),
				migrateConfig(w, false), migrateConfig(w, true),
			)
		}
		if opts.TCP {
			configs = append(configs,
				tcpMigrationConfig("adapt", 2, true, true, false),
				tcpMigrationConfig("migrate", 2, false, false, true),
				tcpProcMigrationConfig("adapt", 2, false, true, false),
				tcpProcMigrationConfig("migrate", 2, true, false, true),
			)
		}
	}
	return configs
}

// Check runs the case through every configuration and returns the
// first divergence from the sequential shared reference, or nil when
// all agree. Each configuration re-parses the case from source, so the
// printer→parser round trip is itself under test on every call.
func Check(c Case, opts CheckOptions) *Mismatch {
	opts = opts.withDefaults()
	configs := configMatrix(opts)
	var ref *Outcome
	for _, cfg := range configs {
		out := runConfig(c, cfg, opts)
		if opts.ForceDivergence != "" && strings.Contains(cfg.name, opts.ForceDivergence) {
			out.Cycles = append(out.Cycles, "forced divergence ("+cfg.name+")")
		}
		if ref == nil {
			ref = out
			continue
		}
		if d := ref.diff(out); d != "" {
			return &Mismatch{Case: c, Config: cfg.name, Detail: d, Dump: out.Dump}
		}
	}
	return nil
}

// runConfig executes the case under one configuration. Build or parse
// errors become outcome errors, so a variant that rejects a program
// every other variant accepts shows up as a divergence.
func runConfig(c Case, cfg config, opts CheckOptions) *Outcome {
	prog, err := ops5.ParseProgram(c.ProgSrc)
	if err != nil {
		return &Outcome{Err: "parse: " + err.Error()}
	}
	b, err := cfg.build(prog.Productions, opts)
	if err != nil {
		return &Outcome{Err: "build: " + err.Error()}
	}
	if b.close != nil {
		defer b.close()
	}
	var out *Outcome
	if c.IsScript() {
		out = runScript(c, b.matcher, opts)
	} else {
		out = runEngine(c, prog, b.net, b.matcher, opts)
	}
	if b.dump != nil {
		// The run is quiescent here (between Apply calls), so the
		// snapshot is race-free; taken before the deferred close so a
		// closed runtime never surprises the recorder.
		out.Dump = b.dump()
	}
	return out
}

// runEngine drives the full match-resolve-act loop, fingerprinting
// each cycle's fired instantiation and post-refraction conflict set,
// and capturing the final working memory and write output.
func runEngine(c Case, prog *ops5.Program, net *rete.Network, matcher engine.MatchApplier, opts CheckOptions) *Outcome {
	o := &Outcome{}
	var buf bytes.Buffer
	e, err := engine.NewWithNetwork(prog, net, engine.Options{Matcher: matcher, Output: &buf})
	if err != nil {
		o.Err = "engine: " + err.Error()
		return o
	}
	if strings.TrimSpace(c.WMESrc) != "" {
		wmes, err := ops5.ParseWMEs(c.WMESrc)
		if err != nil {
			o.Err = "wmes: " + err.Error()
			return o
		}
		e.InsertWMEs(wmes...)
	}
	budget := opts.Budget
	for cycle := 0; cycle < opts.MaxCycles; cycle++ {
		fired, err := e.Step()
		if err != nil {
			o.Err = err.Error()
			break
		}
		cs := e.ConflictSet()
		keys := make([]string, len(cs))
		for i, in := range cs {
			keys[i] = in.Key()
		}
		sort.Strings(keys)
		line := "-"
		if fired != nil {
			line = fired.Key()
		}
		o.Cycles = append(o.Cycles, line+" | "+strings.Join(keys, " "))
		if fired == nil {
			break
		}
		budget -= len(cs)
		if budget < 0 {
			o.Truncated = true
			break
		}
	}
	o.Fired = e.Fired()
	o.Halted = e.Halted()
	o.Output = buf.String()
	for _, w := range e.WMEs() {
		o.FinalWM = append(o.FinalWM, fmt.Sprintf("%d:%d:%s", w.ID, w.TimeTag, w))
	}
	return o
}

// runScript replays the scripted change lists straight through the
// matcher, fingerprinting each cycle's netted deltas and the running
// conflict set. IDs and time tags are assigned in script order, so
// every configuration sees byte-identical changes.
func runScript(c Case, matcher engine.MatchApplier, opts CheckOptions) *Outcome {
	o := &Outcome{}
	var added []*ops5.WME
	conflict := map[string]bool{}
	budget := opts.Budget
	for _, cyc := range c.Script {
		var changes []rete.Change
		for _, op := range cyc {
			if op.Remove > 0 {
				changes = append(changes, rete.Change{Tag: rete.Delete, WME: added[op.Remove-1]})
				continue
			}
			w := op.WME.Clone()
			w.ID = len(added) + 1
			w.TimeTag = w.ID
			added = append(added, w)
			changes = append(changes, rete.Change{Tag: rete.Add, WME: w})
		}
		// Net the raw deltas per key before fingerprinting: the
		// sequential matcher reports transients (an instantiation added
		// and deleted within one phase) that the parallel runtime nets
		// away, and only the net effect is meaningful.
		deltas := matcher.Apply(changes)
		counts := map[string]int{}
		for _, ic := range deltas {
			if ic.Tag == rete.Add {
				counts[ic.Key()]++
			} else {
				counts[ic.Key()]--
			}
		}
		var parts []string
		for k, n := range counts {
			switch {
			case n > 0:
				parts = append(parts, "+"+k)
				conflict[k] = true
			case n < 0:
				parts = append(parts, "-"+k)
				delete(conflict, k)
			}
		}
		sort.Strings(parts)
		cs := make([]string, 0, len(conflict))
		for k := range conflict {
			cs = append(cs, k)
		}
		sort.Strings(cs)
		o.Cycles = append(o.Cycles, strings.Join(parts, " ")+" | "+strings.Join(cs, " "))
		// Budget counts netted deltas so every configuration truncates
		// at the same cycle (raw counts differ between matchers).
		budget -= len(parts)
		if budget < 0 {
			o.Truncated = true
			break
		}
	}
	return o
}
