package difftest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fuzzOpts keeps per-input cost low so 30s smoke runs cover many
// inputs; the differential matrix is still the full variant set with a
// reduced worker sweep.
var fuzzOpts = CheckOptions{MaxCycles: 20, Workers: []int{1, 2, 4}, Budget: 10000}

// fatalDivergence reports a mismatch with its encoded repro and, when
// DIFFTEST_ARTIFACTS is set (as in CI), saves the repro plus the
// causal flight dump of the diverging run for artifact upload.
func fatalDivergence(t *testing.T, mis *Mismatch, opts CheckOptions) {
	t.Helper()
	if paths := saveFuzzArtifacts(mis, opts); len(paths) > 0 {
		t.Logf("divergence artifacts: %s", strings.Join(paths, ", "))
	}
	t.Fatalf("%v\nrepro (save under testdata/corpus/):\n%s", mis, mis.Case.Encode())
}

// FuzzDifferential is the generative fuzz target: the fuzzer mutates a
// seed and the generator knob bytes; every input maps to a valid
// program, so all fuzzing effort lands on the differential oracle
// rather than the parser.
func FuzzDifferential(f *testing.F) {
	f.Add(int64(1), []byte{})
	f.Add(int64(2), []byte{5, 3, 3, 3, 3, 90, 40, 20})
	f.Add(int64(3), []byte{1, 1, 1, 1, 1, 0, 0, 0})   // Tourney-shaped: no discriminating tests
	f.Add(int64(4), []byte{4, 3, 2, 2, 2, 99, 49, 0}) // negation-heavy
	f.Add(int64(5), []byte{2, 3, 0, 1, 1, 0, 0, 0})   // bounded stress: wide same-class cross products (one wme, many collectors)
	f.Add(int64(6), []byte{2, 3, 2, 2, 1, 99, 30, 0}) // bounded stress: eq chains + negation drive the join-ordering pass
	f.Fuzz(func(t *testing.T, seed int64, knobs []byte) {
		c := Gen(seed, ConfigFromBytes(knobs))
		if mis := Check(c, fuzzOpts); mis != nil {
			fatalDivergence(t, mis, fuzzOpts)
		}
	})
}

// FuzzMatcherDifferential drives scripted matcher-level replay —
// same-cycle add/delete transients and mass deletions the engine act
// phase cannot express directly — with chaos enabled on the parallel
// configurations.
func FuzzMatcherDifferential(f *testing.F) {
	for seed := int64(1); seed <= 4; seed++ {
		f.Add(seed, seed*7)
	}
	f.Fuzz(func(t *testing.T, seed, chaosSeed int64) {
		opts := fuzzOpts
		opts.ChaosSeed = chaosSeed
		c := GenScript(seed, ConfigFromBytes(nil))
		if mis := Check(c, opts); mis != nil {
			fatalDivergence(t, mis, opts)
		}
	})
}

// FuzzMigrationDifferential fuzzes the migration oracle: generated
// cases (engine-level and scripted) through the adapt-*/migrate-*
// configurations with chaos composed on top — the rebalancer's plans,
// the forced rotations, and randomized mailbox interleavings must
// never perturb the netted conflict-set trajectory.
func FuzzMigrationDifferential(f *testing.F) {
	f.Add(int64(1), int64(0))
	f.Add(int64(2), int64(14)) // chaos + migration composed
	f.Add(int64(3), int64(0))
	f.Add(int64(5), int64(35))
	f.Fuzz(func(t *testing.T, seed, chaosSeed int64) {
		opts := CheckOptions{MaxCycles: 15, Workers: []int{2, 4}, Budget: 8000, Rebalance: true, ChaosSeed: chaosSeed}
		var c Case
		if seed%2 == 0 {
			c = GenScript(seed, ConfigFromBytes(nil))
		} else {
			c = Gen(seed, ConfigFromBytes(nil))
		}
		if mis := Check(c, opts); mis != nil {
			fatalDivergence(t, mis, opts)
		}
	})
}

// FuzzCase fuzzes the corpus file format itself: the committed .ops5
// cases seed the corpus, and any mutation that still decodes runs
// through the differential oracle. Undecodable mutations only assert
// that Decode fails cleanly.
func FuzzCase(f *testing.F) {
	entries, err := os.ReadDir(filepath.Join("testdata", "corpus"))
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".ops5") {
			continue
		}
		data, err := os.ReadFile(filepath.Join("testdata", "corpus", e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 8<<10 {
			t.Skip("oversized")
		}
		c, err := Decode("fuzz", data)
		if err != nil {
			t.Skip() // malformed input rejected cleanly
		}
		if mis := Check(c, fuzzOpts); mis != nil {
			fatalDivergence(t, mis, fuzzOpts)
		}
	})
}
