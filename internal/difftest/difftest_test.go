package difftest

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"mpcrete/internal/engine"
	"mpcrete/internal/ops5"
	"mpcrete/internal/rete"
)

// quickOpts keeps unit-test matrices small; the full default matrix
// runs in the fuzz targets and the stress test.
var quickOpts = CheckOptions{MaxCycles: 30, Workers: []int{1, 4}, Budget: 20000}

func TestGenProducesValidPrograms(t *testing.T) {
	cfgs := []GenConfig{
		{},
		{Productions: 6, MaxCEs: 4, EqDensity: 0.9, NegationProb: 0.4},
		{Productions: 2, Classes: 1, Attrs: 1, Values: 1, EqDensity: 0.01}, // Tourney-shaped: non-discriminating
	}
	for seed := int64(0); seed < 25; seed++ {
		for ci, cfg := range cfgs {
			c := Gen(seed, cfg)
			prog, err := ops5.ParseProgram(c.ProgSrc)
			if err != nil {
				t.Fatalf("seed %d cfg %d: generated program does not parse: %v\n%s", seed, ci, err, c.ProgSrc)
			}
			for _, p := range prog.Productions {
				if err := p.Validate(); err != nil {
					t.Fatalf("seed %d cfg %d: %v", seed, ci, err)
				}
			}
			if _, err := rete.Compile(prog.Productions); err != nil {
				t.Fatalf("seed %d cfg %d: generated program does not compile: %v", seed, ci, err)
			}
			if _, err := ops5.ParseWMEs(c.WMESrc); err != nil {
				t.Fatalf("seed %d cfg %d: generated wmes do not parse: %v", seed, ci, err)
			}
		}
	}
}

func TestGenDeterministic(t *testing.T) {
	a, b := Gen(42, GenConfig{}), Gen(42, GenConfig{})
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("Gen is not deterministic for equal (seed, cfg)")
	}
	s1, s2 := GenScript(42, GenConfig{}), GenScript(42, GenConfig{})
	if !bytes.Equal(s1.Encode(), s2.Encode()) {
		t.Fatal("GenScript is not deterministic for equal (seed, cfg)")
	}
}

// TestEncodeDecodeRoundTrip pins the corpus file format: decoding an
// encoded case and re-encoding it must be byte-identical, for both
// engine-level and script cases.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		for _, c := range []Case{Gen(seed, GenConfig{}), GenScript(seed, GenConfig{})} {
			enc := c.Encode()
			dec, err := Decode(c.Name, enc)
			if err != nil {
				t.Fatalf("case %s does not decode: %v\n%s", c.Name, err, enc)
			}
			re := dec.Encode()
			if !bytes.Equal(enc, re) {
				t.Fatalf("case %s: encode/decode/encode differs:\n--- first\n%s\n--- second\n%s", c.Name, enc, re)
			}
		}
	}
}

// TestCorpus replays every committed corpus case through the full
// configuration matrix, and the engine-level ones through the
// trace-level simulator differential too.
func TestCorpus(t *testing.T) {
	cases, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("empty corpus")
	}
	for _, c := range cases {
		t.Run(c.Name, func(t *testing.T) {
			if mis := Check(c, CheckOptions{}); mis != nil {
				t.Fatal(mis)
			}
			if !c.IsScript() {
				if err := CheckTrace(c, 50, []int{1, 4}); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestTCPTransportParity replays the committed corpus and a slice of
// generated cases through the wire-transport configurations — the
// loopback TCP endpoints under the in-process runtime (tcp-*) and the
// multi-process control plane with worker protocol loops on local
// connections (tcpproc-*) — proving conflict-set parity across the
// frame codec and real sockets.
func TestTCPTransportParity(t *testing.T) {
	opts := CheckOptions{MaxCycles: 20, Workers: []int{2}, Budget: 10000, TCP: true}
	cases, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if testing.Short() && len(cases) > 4 {
		cases = cases[:4]
	}
	for _, c := range cases {
		t.Run(c.Name, func(t *testing.T) {
			if mis := Check(c, opts); mis != nil {
				t.Fatal(mis)
			}
		})
	}
	seeds := int64(6)
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(0); seed < seeds; seed++ {
		if mis := Check(Gen(seed, GenConfig{}), opts); mis != nil {
			t.Fatalf("%v\nrepro:\n%s", mis, mis.Case.Encode())
		}
		if mis := Check(GenScript(seed, GenConfig{}), opts); mis != nil {
			t.Fatalf("%v\nrepro:\n%s", mis, mis.Case.Encode())
		}
	}
}

// TestGeneratedCasesCheckClean is the deterministic slice of the fuzz
// target: a spread of seeds and configs through the quick matrix.
func TestGeneratedCasesCheckClean(t *testing.T) {
	n := int64(12)
	if testing.Short() {
		n = 4
	}
	for seed := int64(0); seed < n; seed++ {
		cfg := GenConfig{EqDensity: float64(seed%5) / 4}
		if mis := Check(Gen(seed, cfg), quickOpts); mis != nil {
			t.Fatalf("%v\nrepro:\n%s", mis, mis.Case.Encode())
		}
		if mis := Check(GenScript(seed, cfg), quickOpts); mis != nil {
			t.Fatalf("%v\nrepro:\n%s", mis, mis.Case.Encode())
		}
	}
}

// TestGeneratedTraceDifferential runs the trace-level differential
// over generated programs.
func TestGeneratedTraceDifferential(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		c := Gen(seed, GenConfig{})
		if err := CheckTrace(c, 30, []int{1, 2, 4}); err != nil {
			t.Fatalf("%v\nrepro:\n%s", err, c.Encode())
		}
	}
}

// TestChaosStressNoDivergence is the acceptance-criteria stress run:
// hundreds of randomized generated programs through w ∈ {2,4,8} in
// broadcast and routed modes with the chaos scheduling layer enabled,
// asserting zero conflict-set divergence. Run under -race in CI.
func TestChaosStressNoDivergence(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 24
	}
	opts := CheckOptions{MaxCycles: 15, Workers: []int{2, 4, 8}, Budget: 8000}
	for seed := 0; seed < seeds; seed++ {
		opts.ChaosSeed = int64(seed) + 1
		cfg := GenConfig{
			Productions: 2 + seed%3,
			EqDensity:   float64(seed%4) / 3,
		}
		var c Case
		if seed%3 == 2 {
			c = GenScript(int64(seed), cfg)
		} else {
			c = Gen(int64(seed), cfg)
		}
		if mis := Check(c, opts); mis != nil {
			t.Fatalf("seed %d: %v\nrepro:\n%s", seed, mis, mis.Case.Encode())
		}
	}
}

// filterMatcher suppresses every conflict-set delta of one production
// — the artificial divergence injected to prove the shrinker works.
type filterMatcher struct {
	inner engine.MatchApplier
	drop  string
}

func (f filterMatcher) Apply(changes []rete.Change) []rete.InstChange {
	out := f.inner.Apply(changes)
	kept := out[:0]
	for _, ic := range out {
		if ic.Prod.Name != f.drop {
			kept = append(kept, ic)
		}
	}
	return kept
}

// brokenDiverges runs the case through the sequential reference and a
// variant whose matcher drops production `drop`'s instantiations,
// reporting whether they diverge — true exactly when the case actually
// exercises that production.
func brokenDiverges(c Case, drop string, opts CheckOptions) bool {
	opts = opts.withDefaults()
	ref := runConfig(c, seqConfig("shared"), opts)
	broken := config{name: "broken", build: func(prods []*ops5.Production, _ CheckOptions) (built, error) {
		net, err := rete.Compile(prods)
		if err != nil {
			return built{}, err
		}
		m := rete.NewMatcher(net, rete.MatcherOptions{NBuckets: checkNBuckets})
		return built{net: net, matcher: filterMatcher{inner: m, drop: drop}}, nil
	}}
	got := runConfig(c, broken, opts)
	return ref.diff(got) != ""
}

// TestShrinkReducesInjectedDivergence is the shrinker acceptance test:
// a 10-production generated case with an artificially injected
// divergence (one production's deltas suppressed) must shrink to at
// most 3 productions while still reproducing the divergence.
func TestShrinkReducesInjectedDivergence(t *testing.T) {
	opts := CheckOptions{MaxCycles: 30, Budget: 20000}
	// Find a seed whose case exercises a production we can break.
	var c Case
	var drop string
	for seed := int64(0); seed < 50 && drop == ""; seed++ {
		cand := Gen(seed, GenConfig{Productions: 10, InitialWMEs: 12})
		for p := 0; p < 10; p++ {
			name := fmt.Sprintf("p%d", p)
			if brokenDiverges(cand, name, opts) {
				c, drop = cand, name
				break
			}
		}
	}
	if drop == "" {
		t.Fatal("no generated case exercised any production; generator is broken")
	}
	fails := func(cc Case) bool { return brokenDiverges(cc, drop, opts) }
	shrunk := Shrink(c, fails)
	if !fails(shrunk) {
		t.Fatal("shrunk case no longer reproduces the divergence")
	}
	prog, err := ops5.ParseProgram(shrunk.ProgSrc)
	if err != nil {
		t.Fatalf("shrunk case does not parse: %v", err)
	}
	if len(prog.Productions) > 3 {
		t.Fatalf("shrunk to %d productions, want <= 3:\n%s", len(prog.Productions), shrunk.Encode())
	}
	// The repro must round-trip through the corpus format.
	if _, err := Decode(shrunk.Name, shrunk.Encode()); err != nil {
		t.Fatalf("shrunk repro does not round-trip: %v", err)
	}
	t.Logf("shrunk %d -> %d productions, %d -> %d bytes",
		10, len(prog.Productions), len(c.Encode()), len(shrunk.Encode()))
}

// TestShrinkScript pins script shrinking with remove-renumbering: the
// predicate needs one specific add+remove pair plus a later partner,
// and shrinking must preserve validity (every remove references a
// surviving add) while discarding the noise cycles.
func TestShrinkScript(t *testing.T) {
	base, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	var c Case
	for _, cc := range base {
		if cc.Name == "cross-product-burst" {
			c = cc
		}
	}
	if c.Name == "" {
		t.Fatal("cross-product-burst corpus case missing")
	}
	// Predicate: the sequential run reports at least 40 netted adds.
	fails := func(cc Case) bool {
		out := runConfig(cc, seqConfig("shared"), quickOpts.withDefaults())
		adds := 0
		for _, line := range out.Cycles {
			adds += strings.Count(line[:strings.Index(line, "|")], "+")
		}
		return adds >= 40
	}
	if !fails(c) {
		t.Fatal("predicate does not hold on the original case")
	}
	shrunk := Shrink(c, fails)
	if !fails(shrunk) {
		t.Fatal("shrunk case no longer satisfies the predicate")
	}
	if _, err := Decode(shrunk.Name, shrunk.Encode()); err != nil {
		t.Fatalf("shrunk script case invalid after renumbering: %v\n%s", err, shrunk.Encode())
	}
	if n, m := countOps(shrunk.Script), countOps(c.Script); n >= m {
		t.Fatalf("shrinker made no progress: %d -> %d ops", m, n)
	}
}

func countOps(script [][]ScriptOp) int {
	n := 0
	for _, cyc := range script {
		n += len(cyc)
	}
	return n
}

// TestMismatchError pins the Mismatch error rendering the CLI and
// fuzz crashes rely on.
func TestMismatchError(t *testing.T) {
	m := &Mismatch{Case: Case{Name: "x"}, Config: "par-w4-routed", Detail: "cycle 2: ..."}
	msg := m.Error()
	for _, want := range []string{"x", "par-w4-routed", "cycle 2"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}
