package difftest

import (
	"strings"
	"testing"
)

// sessionOpts mirrors fuzzOpts: cheap per-case cost, shallow parallel
// sweep.
var sessionOpts = CheckOptions{MaxCycles: 20, Workers: []int{1, 2}, Budget: 10000}

func TestCheckSessionsGeneratedCases(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		c := Gen(seed, ConfigFromBytes(nil))
		if mis := CheckSessions(c, sessionOpts); mis != nil {
			t.Fatalf("%v\nrepro:\n%s", mis, c.Encode())
		}
	}
}

func TestCheckSessionsCorpus(t *testing.T) {
	cases, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, c := range cases {
		if c.IsScript() {
			continue
		}
		if mis := CheckSessions(c, sessionOpts); mis != nil {
			t.Errorf("%v", mis)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("corpus has no engine-level cases")
	}
}

func TestCheckSessionsSkipsScripts(t *testing.T) {
	c := GenScript(1, ConfigFromBytes(nil))
	if mis := CheckSessions(c, sessionOpts); mis != nil {
		t.Fatalf("script case not skipped: %v", mis)
	}
}

// TestCheckSessionsForcedDivergence drills the divergence-reporting
// path: a synthetic perturbation of one configuration must surface as
// a mismatch naming that configuration.
func TestCheckSessionsForcedDivergence(t *testing.T) {
	c := Gen(1, ConfigFromBytes(nil))
	opts := sessionOpts
	opts.ForceDivergence = "pooled"
	mis := CheckSessions(c, opts)
	if mis == nil {
		t.Fatal("forced divergence not detected")
	}
	if !strings.Contains(mis.Config, "pooled") {
		t.Errorf("divergence blamed %q, want the pooled configuration", mis.Config)
	}
}

// FuzzSessionDifferential is the session-level generative fuzz target:
// every generated engine-level case must behave identically through
// the private engine, shared sessions, pool-recycled sessions,
// parallel-matcher sessions, and concurrent sessions.
func FuzzSessionDifferential(f *testing.F) {
	f.Add(int64(1), []byte{})
	f.Add(int64(2), []byte{5, 3, 3, 3, 3, 90, 40, 20})
	f.Add(int64(3), []byte{1, 1, 1, 1, 1, 0, 0, 0})
	f.Add(int64(4), []byte{4, 3, 2, 2, 2, 99, 49, 0})
	f.Fuzz(func(t *testing.T, seed int64, knobs []byte) {
		c := Gen(seed, ConfigFromBytes(knobs))
		if mis := CheckSessions(c, sessionOpts); mis != nil {
			t.Fatalf("%v\nrepro (save under testdata/corpus/):\n%s", mis, c.Encode())
		}
	})
}
