package difftest

import (
	"testing"
)

// TestRebalanceMatrixParity replays the committed corpus and a slice
// of generated cases through the migration configurations: the online
// adaptive rebalancer recovering from an all-on-worker-0 assignment
// (adapt-*) and the forced full-rotation schedule moving every bucket
// at every cycle boundary (migrate-*), across worker counts and both
// message-plane modes. Conflict-set trajectories must be identical to
// the static sequential reference — migration moves state, never
// match semantics.
func TestRebalanceMatrixParity(t *testing.T) {
	opts := CheckOptions{MaxCycles: 25, Workers: []int{2, 4, 8}, Budget: 15000, Rebalance: true}
	cases, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		t.Run(c.Name, func(t *testing.T) {
			if mis := Check(c, opts); mis != nil {
				t.Fatal(mis)
			}
		})
	}
	seeds := int64(8)
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(0); seed < seeds; seed++ {
		cfg := GenConfig{EqDensity: float64(seed%4) / 3}
		if mis := Check(Gen(seed, cfg), opts); mis != nil {
			t.Fatalf("%v\nrepro:\n%s", mis, mis.Case.Encode())
		}
		if mis := Check(GenScript(seed, cfg), opts); mis != nil {
			t.Fatalf("%v\nrepro:\n%s", mis, mis.Case.Encode())
		}
	}
}

// TestRebalanceTCPParity adds the wire layers to the migration matrix:
// the loopback codec (tcpadapt-*, tcpmigrate-*) and the multi-process
// control plane (tcpprocadapt-*, tcpprocmigrate-*), where every
// migrated bucket's tokens serialize across real TCP connections
// mid-run. The two promoted corpus cases are the focus — both force
// retractions against state that has physically changed owners.
func TestRebalanceTCPParity(t *testing.T) {
	opts := CheckOptions{MaxCycles: 20, Workers: []int{2}, Budget: 10000, Rebalance: true, TCP: true}
	cases, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, c := range cases {
		if c.Name != "adaptive-hot-bucket" && c.Name != "migrate-neg-state" && testing.Short() {
			continue
		}
		ran++
		t.Run(c.Name, func(t *testing.T) {
			if mis := Check(c, opts); mis != nil {
				t.Fatal(mis)
			}
		})
	}
	if ran < 2 {
		t.Fatal("promoted migration corpus cases missing")
	}
}

// TestRebalanceChaosStress composes the chaos scheduling layer with
// the migration configurations: randomized generated programs, random
// mailbox interleavings, and hair-trigger adaptive plus forced
// full-rotation migration — asserting zero conflict-set divergence.
// Runs under -race in CI.
func TestRebalanceChaosStress(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	opts := CheckOptions{MaxCycles: 12, Workers: []int{2, 4}, Budget: 6000, Rebalance: true}
	for seed := 0; seed < seeds; seed++ {
		opts.ChaosSeed = int64(seed) + 1
		cfg := GenConfig{
			Productions: 2 + seed%3,
			EqDensity:   float64(seed%4) / 3,
		}
		var c Case
		if seed%3 == 2 {
			c = GenScript(int64(seed), cfg)
		} else {
			c = Gen(int64(seed), cfg)
		}
		if mis := Check(c, opts); mis != nil {
			t.Fatalf("seed %d: %v\nrepro:\n%s", seed, mis, mis.Case.Encode())
		}
	}
}
