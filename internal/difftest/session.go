package difftest

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"

	"mpcrete/internal/engine"
	"mpcrete/internal/ops5"
	"mpcrete/internal/parallel"
)

// CheckSessions is the session-level differential oracle: it runs an
// engine-level case through the Compiled/Session API in every serving
// shape — private engine (the reference), a session over a shared
// Compiled, a pool-recycled session, sessions whose match phase runs on
// the parallel runtime, and K sessions executing concurrently over one
// Compiled — and returns the first divergence, or nil when all agree.
//
// Script-level cases replay raw matcher change lists below the session
// API and are out of scope here (Check covers them); CheckSessions
// returns nil for them.
func CheckSessions(c Case, opts CheckOptions) *Mismatch {
	if c.IsScript() {
		return nil
	}
	opts = opts.withDefaults()
	configs := sessionMatrix(opts)
	var ref *Outcome
	for _, cfg := range configs {
		out := cfg.run(c, opts)
		if opts.ForceDivergence != "" && strings.Contains(cfg.name, opts.ForceDivergence) {
			out.Cycles = append(out.Cycles, "forced divergence ("+cfg.name+")")
		}
		if ref == nil {
			ref = out
			continue
		}
		if d := ref.diff(out); d != "" {
			return &Mismatch{Case: c, Config: cfg.name, Detail: d}
		}
	}
	return nil
}

// sessionConfig is one serving shape under test.
type sessionConfig struct {
	name string
	run  func(c Case, opts CheckOptions) *Outcome
}

// sessionMatrix builds the session-level run matrix. The private
// engine.New path comes first as the reference.
func sessionMatrix(opts CheckOptions) []sessionConfig {
	configs := []sessionConfig{
		{"engine-ref", runPrivateEngine},
		{"shared-session", runSharedSession},
		{"pooled-session", runPooledSession},
		{"concurrent-sessions", runConcurrentSessions},
	}
	workers := opts.Workers
	if len(workers) > 2 {
		workers = workers[:2] // session runs repeat per config; keep the sweep shallow
	}
	for _, w := range workers {
		w := w
		configs = append(configs, sessionConfig{
			name: fmt.Sprintf("parallel-session-w%d", w),
			run: func(c Case, opts CheckOptions) *Outcome {
				return runParallelSession(c, opts, w)
			},
		})
	}
	return configs
}

// compileCase parses and compiles the case's program into a shared
// Compiled.
func compileCase(c Case) (*engine.Compiled, *ops5.Program, string) {
	prog, err := ops5.ParseProgram(c.ProgSrc)
	if err != nil {
		return nil, nil, "parse: " + err.Error()
	}
	compiled, err := engine.Compile(prog, engine.CompileOptions{})
	if err != nil {
		return nil, nil, "compile: " + err.Error()
	}
	return compiled, prog, ""
}

// driveSession runs the case's wmes through a session via the public
// API and fingerprints each cycle exactly like runEngine: the fired
// instantiation key plus the sorted post-refraction conflict set.
func driveSession(s engine.API, buf *bytes.Buffer, c Case, opts CheckOptions) *Outcome {
	o := &Outcome{}
	if strings.TrimSpace(c.WMESrc) != "" {
		wmes, err := ops5.ParseWMEs(c.WMESrc)
		if err != nil {
			o.Err = "wmes: " + err.Error()
			return o
		}
		s.Assert(wmes...)
	}
	budget := opts.Budget
	for cycle := 0; cycle < opts.MaxCycles; cycle++ {
		fired, err := s.Step()
		if err != nil {
			o.Err = err.Error()
			break
		}
		cs := s.ConflictSet()
		keys := make([]string, len(cs))
		for i, in := range cs {
			keys[i] = in.Key()
		}
		sort.Strings(keys)
		line := "-"
		if fired != nil {
			line = fired.Key()
		}
		o.Cycles = append(o.Cycles, line+" | "+strings.Join(keys, " "))
		if fired == nil {
			break
		}
		budget -= len(cs)
		if budget < 0 {
			o.Truncated = true
			break
		}
	}
	o.Fired = s.Fired()
	o.Halted = s.Halted()
	if buf != nil {
		o.Output = buf.String()
	}
	for _, w := range s.Snapshot().WMEs {
		o.FinalWM = append(o.FinalWM, fmt.Sprintf("%d:%d:%s", w.ID, w.TimeTag, w))
	}
	return o
}

// runPrivateEngine is the reference: the classic single-tenant
// engine.New path, driven through the same session API.
func runPrivateEngine(c Case, opts CheckOptions) *Outcome {
	prog, err := ops5.ParseProgram(c.ProgSrc)
	if err != nil {
		return &Outcome{Err: "parse: " + err.Error()}
	}
	var buf bytes.Buffer
	e, err := engine.New(prog, engine.Options{Output: &buf, NBuckets: checkNBuckets})
	if err != nil {
		return &Outcome{Err: "engine: " + err.Error()}
	}
	defer e.Close()
	return driveSession(e, &buf, c, opts)
}

func runSharedSession(c Case, opts CheckOptions) *Outcome {
	compiled, _, errs := compileCase(c)
	if errs != "" {
		return &Outcome{Err: errs}
	}
	var buf bytes.Buffer
	s := compiled.NewSession(engine.SessionOptions{Output: &buf, NBuckets: checkNBuckets})
	defer s.Close()
	return driveSession(s, &buf, c, opts)
}

// runPooledSession proves recycled sessions behave like fresh ones:
// the compared run happens on a session that already executed the full
// case once and went through Put/Get (Reset).
func runPooledSession(c Case, opts CheckOptions) *Outcome {
	compiled, _, errs := compileCase(c)
	if errs != "" {
		return &Outcome{Err: errs}
	}
	var buf bytes.Buffer
	pool := engine.NewSessionPool(compiled, engine.SessionOptions{Output: &buf, NBuckets: checkNBuckets})
	warm := pool.Get()
	driveSession(warm, nil, c, opts) // dirty the session
	pool.Put(warm)
	buf.Reset()
	s := pool.Get() // same session, recycled
	defer s.Close()
	return driveSession(s, &buf, c, opts)
}

// runParallelSession runs the session's match phase on the goroutine
// runtime over the shared compiled network.
func runParallelSession(c Case, opts CheckOptions, workers int) *Outcome {
	compiled, _, errs := compileCase(c)
	if errs != "" {
		return &Outcome{Err: errs}
	}
	rt, err := parallel.New(compiled.Network(), parallel.Options{
		Workers:   workers,
		NBuckets:  checkNBuckets,
		ChaosSeed: opts.ChaosSeed,
		Metrics:   opts.Metrics,
	})
	if err != nil {
		return &Outcome{Err: "parallel: " + err.Error()}
	}
	var buf bytes.Buffer
	s := compiled.NewSession(engine.SessionOptions{Output: &buf, Matcher: rt})
	defer s.Close() // closes rt via the matcherCloser hook
	return driveSession(s, &buf, c, opts)
}

// runConcurrentSessions runs the case on several sessions over ONE
// Compiled at the same time. All runs must agree with each other (an
// internal divergence is reported through Err) and, via the caller's
// diff against the reference, with the private engine.
func runConcurrentSessions(c Case, opts CheckOptions) *Outcome {
	compiled, _, errs := compileCase(c)
	if errs != "" {
		return &Outcome{Err: errs}
	}
	const k = 4
	outs := make([]*Outcome, k)
	bufs := make([]bytes.Buffer, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := compiled.NewSession(engine.SessionOptions{Output: &bufs[i], NBuckets: checkNBuckets})
			defer s.Close()
			outs[i] = driveSession(s, &bufs[i], c, opts)
		}()
	}
	wg.Wait()
	for i := 1; i < k; i++ {
		if d := outs[0].diff(outs[i]); d != "" {
			return &Outcome{Err: fmt.Sprintf("concurrent session %d diverged from session 0: %s", i, d)}
		}
	}
	return outs[0]
}
