package difftest

import (
	"fmt"

	"mpcrete/internal/core"
	"mpcrete/internal/engine"
	"mpcrete/internal/ops5"
	"mpcrete/internal/trace"
)

// CheckTrace is the trace-level differential: it records the
// sequential engine's match activity for a case as a trace, replays
// that trace through the discrete-event MPC simulator at several
// processor counts, and asserts the conservation invariants that tie
// the two execution models together — every recorded activation is
// simulated exactly once per cycle regardless of partitioning, and the
// simulator delivers exactly the recorded number of instantiations.
// A violation means the simulator is dropping or duplicating work for
// this workload shape, which would silently corrupt every Fig 5-x
// result built on it.
func CheckTrace(c Case, maxCycles int, procs []int) error {
	if c.IsScript() {
		return fmt.Errorf("difftest: CheckTrace needs an engine-level case, got script case %s", c.Name)
	}
	if maxCycles <= 0 {
		maxCycles = 50
	}
	if len(procs) == 0 {
		procs = []int{1, 4}
	}
	prog, err := ops5.ParseProgram(c.ProgSrc)
	if err != nil {
		return fmt.Errorf("difftest: case %s: %w", c.Name, err)
	}
	rec := trace.NewRecorder(c.Name, checkNBuckets)
	e, err := engine.New(prog, engine.Options{NBuckets: checkNBuckets, Listener: rec})
	if err != nil {
		return fmt.Errorf("difftest: case %s: %w", c.Name, err)
	}
	if wmes, err := ops5.ParseWMEs(c.WMESrc); err == nil {
		e.InsertWMEs(wmes...)
	}
	if _, err := e.Run(maxCycles); err != nil && err != engine.ErrCycleLimit {
		return fmt.Errorf("difftest: case %s: run: %w", c.Name, err)
	}
	tr := rec.Trace()
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("difftest: case %s: recorded trace invalid: %w", c.Name, err)
	}
	wantInsts := tr.Stats().Instantiations

	for _, p := range procs {
		res, err := core.Simulate(tr, core.NewConfig(p))
		if err != nil {
			return fmt.Errorf("difftest: case %s: simulate p=%d: %w", c.Name, p, err)
		}
		if res.Insts != wantInsts {
			return fmt.Errorf("difftest: case %s: p=%d delivered %d instantiations, trace has %d",
				c.Name, p, res.Insts, wantInsts)
		}
		for ci, cyc := range tr.Cycles {
			want := cyc.Activations()
			got := 0
			for _, n := range res.ActsPerSlot[ci] {
				got += n
			}
			if got != want {
				return fmt.Errorf("difftest: case %s: p=%d cycle %d simulated %d activations, trace has %d",
					c.Name, p, ci, got, want)
			}
		}
	}
	return nil
}
