package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mpcrete/internal/obs"
	"mpcrete/internal/parallel"
	"mpcrete/internal/rete"
	"mpcrete/internal/sched"
	"mpcrete/internal/termdet"
)

// ControlOptions configure a multi-process control plane.
type ControlOptions struct {
	// Workers is the number of worker processes the topology expects.
	Workers int
	// NBuckets sizes the hash-bucket space (default
	// rete.DefaultNBuckets).
	NBuckets int
	// Partition maps bucket -> worker (default round-robin).
	Partition sched.Partition
	// RouteRoots selects Fig 3-2 root routing: the control process runs
	// the constant tests once per cycle and routes each root to its
	// owner, instead of broadcasting the changes (Fig 3-3).
	RouteRoots bool
	// Rebalance, when enabled, turns on the online adaptive
	// repartitioner across OS processes: workers report per-bucket
	// activation counts in their turn frames, the control process folds
	// them into a sched.Balancer at every quiescence, and armed replans
	// migrate buckets over the wire (ftRepart/ftBucketRelay/ftBucket)
	// at cycle boundaries. The netted conflict-set output is identical
	// to the static run.
	Rebalance sched.Rebalance
	// ForceMigrate mirrors parallel.Options.ForceMigrate: consulted at
	// every quiescent cycle boundary with the 1-based completed cycle
	// number; a non-nil partition is migrated to before the next cycle
	// (and wins over the detector, resetting it).
	ForceMigrate func(cycle int) sched.Partition
	// Causal, when non-nil, attaches a flight recorder with Workers+1
	// tracks (workers first, control last; build it with
	// parallel.NewFlightRecorder). Worker-process handle aggregates are
	// merged into their tracks per turn; send/recv events are recorded
	// control-side from the relay traffic and echoed stamps.
	Causal *obs.CausalRecorder
	// HandshakeTimeout bounds WaitWorkers (default 30s).
	HandshakeTimeout time.Duration
}

// Control is the control process of the multi-process runtime: the
// paper's control processor realized as the hub of a star topology.
// It owns the MRA cycle — broadcast or routed root delivery, relay
// forwarding of worker-to-worker activations, exact credit-counting
// termination detection over the wire, and conflict-set netting —
// while N worker processes own the match state.
//
// Control implements engine.MatchApplier via Apply; Cycle is the
// error-returning form (a worker disconnect mid-cycle surfaces as an
// error from Cycle, not a hang: the conn reader fails the termination
// counter, which wakes the cycle's wait).
type Control struct {
	network *rete.Network
	opts    ControlOptions
	ln      net.Listener
	conns   []*ctlConn

	counter *termdet.Counter
	counts  []*termdet.ChannelCounts // workers first, control last
	four    *termdet.FourCounter

	rootProc    *rete.Processor
	rootBufs    [][]wireAct
	rootScratch []rete.Activation

	instMu sync.Mutex
	insts  []rete.InstChange

	processed []atomic.Int64
	msgsSent  []atomic.Int64
	instCount atomic.Int64

	// balancer is the online rebalance detector (nil unless
	// ControlOptions.Rebalance); loadMu guards bucketLoad, the
	// per-bucket activation counts accumulated from turn frames by the
	// conn readers and folded into the balancer at quiescence. The
	// migration counters mirror parallel.Runtime's RebalanceStats.
	balancer     *sched.Balancer
	loadMu       sync.Mutex
	bucketLoad   []int64
	migrations   atomic.Int64
	bucketsMoved atomic.Int64
	entriesMoved atomic.Int64
	migMsgs      atomic.Int64

	causal   *obs.CausalRecorder
	ctlTrack *obs.TrackRecorder
	curCycle atomic.Int32
	epoch    time.Time

	closed  atomic.Bool
	readers sync.WaitGroup
}

// ctlConn is one worker's connection: the conn reader goroutine is the
// single consumer of its frames and the single producer of its causal
// track; writers (the cycle's delivery and other readers' relay
// forwarding) serialize on mu.
type ctlConn struct {
	id int
	c  net.Conn
	br *bufio.Reader

	mu   sync.Mutex
	bw   *bufio.Writer
	ebuf []byte
}

// writeLocked frames and flushes one payload under the conn's write
// mutex.
func (cc *ctlConn) write(ft frameType, payload []byte) error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if err := writeFrame(cc.bw, ft, payload); err != nil {
		return err
	}
	return cc.bw.Flush()
}

// Listen starts a control plane for the given compiled network on
// addr ("127.0.0.1:0" for an ephemeral port). Call WaitWorkers next;
// the returned Control is not usable for cycles until it completes.
func Listen(network *rete.Network, addr string, opts ControlOptions) (*Control, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("transport: Workers = %d", opts.Workers)
	}
	if opts.NBuckets == 0 {
		opts.NBuckets = rete.DefaultNBuckets
	}
	if opts.Partition == nil {
		opts.Partition = sched.RoundRobin(opts.NBuckets, opts.Workers)
	}
	if len(opts.Partition) != opts.NBuckets {
		return nil, fmt.Errorf("transport: partition covers %d buckets, want %d", len(opts.Partition), opts.NBuckets)
	}
	if err := opts.Partition.Validate(opts.Workers); err != nil {
		return nil, err
	}
	if opts.HandshakeTimeout == 0 {
		opts.HandshakeTimeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: control listen: %w", err)
	}
	c := &Control{
		network:   network,
		opts:      opts,
		ln:        ln,
		counter:   termdet.NewCounter(),
		processed: make([]atomic.Int64, opts.Workers),
		msgsSent:  make([]atomic.Int64, opts.Workers),
		epoch:     time.Now(),
	}
	if opts.Causal != nil {
		if got := opts.Causal.Tracks(); got != opts.Workers+1 {
			ln.Close()
			return nil, fmt.Errorf("transport: causal recorder has %d tracks, want Workers+1 = %d", got, opts.Workers+1)
		}
		c.causal = opts.Causal
		c.ctlTrack = opts.Causal.Track(opts.Workers)
		for i := 0; i < opts.Workers; i++ {
			opts.Causal.SetTrackName(i, fmt.Sprintf("worker %d", i))
		}
		opts.Causal.SetTrackName(opts.Workers, "control")
	}
	if opts.RouteRoots {
		c.rootProc = rete.NewProcessor(network, opts.NBuckets)
		c.rootBufs = make([][]wireAct, opts.Workers)
	}
	if opts.Rebalance.Enabled() {
		c.balancer = sched.NewBalancer(opts.Rebalance, opts.Partition, opts.Workers)
		c.bucketLoad = make([]int64, opts.NBuckets)
	}
	for i := 0; i <= opts.Workers; i++ {
		c.counts = append(c.counts, &termdet.ChannelCounts{})
	}
	c.four = termdet.NewFourCounter(c.counts)
	return c, nil
}

// Addr returns the listener's address for worker processes to dial.
func (c *Control) Addr() string { return c.ln.Addr().String() }

func (c *Control) nowNS() int64 { return time.Since(c.epoch).Nanoseconds() }

// WaitWorkers accepts and handshakes all worker connections (worker
// ids are assigned in accept order) and starts the conn readers. It
// must complete before the first Cycle.
func (c *Control) WaitWorkers() error {
	deadline := time.Now().Add(c.opts.HandshakeTimeout)
	if tl, ok := c.ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	for id := 0; id < c.opts.Workers; id++ {
		conn, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("transport: accepting worker %d/%d: %w", id, c.opts.Workers, err)
		}
		cc := &ctlConn{
			id: id,
			c:  conn,
			br: bufio.NewReaderSize(conn, 1<<16),
			bw: bufio.NewWriterSize(conn, 1<<16),
		}
		payload, err := encodeHello(nil, hello{
			id:         id,
			workers:    c.opts.Workers,
			nbuckets:   c.opts.NBuckets,
			routeRoots: c.opts.RouteRoots,
			trackLoads: c.balancer != nil,
			partition:  c.opts.Partition,
		}, c.network)
		if err != nil {
			conn.Close()
			return err
		}
		if err := cc.write(ftHello, payload); err != nil {
			conn.Close()
			return fmt.Errorf("transport: hello to worker %d: %w", id, err)
		}
		conn.SetReadDeadline(deadline)
		ft, rp, err := readFrame(cc.br, nil)
		if err != nil {
			conn.Close()
			return fmt.Errorf("transport: ready from worker %d: %w", id, err)
		}
		if ft != ftReady {
			conn.Close()
			return fmt.Errorf("%w: expected ready from worker %d, got %s", ErrBadPayload, id, ft)
		}
		d := dec{b: rp}
		gotID, err := d.int()
		if err != nil || gotID != id {
			conn.Close()
			return fmt.Errorf("%w: worker %d echoed id %d", ErrBadPayload, id, gotID)
		}
		conn.SetReadDeadline(time.Time{})
		c.conns = append(c.conns, cc)
	}
	for _, cc := range c.conns {
		c.readers.Add(1)
		go c.readLoop(cc)
	}
	return nil
}

// fail records a fatal runtime error and wakes any cycle wait.
func (c *Control) fail(err error) { c.counter.Fail(err) }

// readLoop consumes one worker's frames: relays are forwarded to their
// destination conn, turns deregister processed work and deliver
// measurements and conflict-set deltas. It is the single producer of
// the worker's causal track.
func (c *Control) readLoop(cc *ctlConn) {
	defer c.readers.Done()
	track := c.causal.Track(cc.id)
	var fbuf []byte
	var acts []wireAct
	for {
		ft, payload, err := readFrame(cc.br, fbuf)
		if err != nil {
			if !c.closed.Load() {
				c.fail(fmt.Errorf("transport: worker %d connection: %w", cc.id, err))
			}
			return
		}
		fbuf = payload[:0]
		switch ft {
		case ftRelay:
			d := dec{b: payload}
			dst32, err := d.i32()
			if err != nil {
				c.fail(err)
				return
			}
			dst := int(dst32)
			if dst < 0 || dst >= len(c.conns) || dst == cc.id {
				c.fail(fmt.Errorf("%w: worker %d relayed to %d", ErrBadPayload, cc.id, dst))
				return
			}
			if acts, err = d.actList(c.network, acts); err != nil {
				c.fail(err)
				return
			}
			if err := d.done(); err != nil {
				c.fail(err)
				return
			}
			k := len(acts)
			if k == 0 {
				continue
			}
			// Register the forwarded work BEFORE it becomes visible to
			// the destination — the wire form of Add-before-send.
			c.counter.Add(k)
			c.counts[cc.id].AddSent(k)
			c.msgsSent[cc.id].Add(int64(k))
			batch := c.causal.NextBatch()
			track.Send(c.nowNS(), c.curCycle.Load(), batch, dst32, int32(k))
			e := enc{buf: cc.ebuf[:0]}
			e.i32(batch)
			e.i32(int32(cc.id))
			e.actList(acts)
			cc.ebuf = e.buf[:0]
			if err := c.conns[dst].write(ftActs, e.buf); err != nil {
				c.fail(fmt.Errorf("transport: forwarding to worker %d: %w", dst, err))
				return
			}
		case ftTurn:
			d := dec{b: payload}
			n, err := d.int()
			if err != nil {
				c.fail(err)
				return
			}
			nstamps, err := d.count(1 << 16)
			if err != nil {
				c.fail(err)
				return
			}
			ts := c.nowNS()
			cycle := c.curCycle.Load()
			for i := 0; i < nstamps; i++ {
				batch, err1 := d.i32()
				src, err2 := d.i32()
				cnt, err3 := d.i32()
				if err1 != nil || err2 != nil || err3 != nil {
					c.fail(fmt.Errorf("%w: turn stamp", ErrBadPayload))
					return
				}
				track.Recv(ts, cycle, batch, src, cnt)
			}
			handles, err1 := d.i64()
			flushes, err2 := d.i64()
			maxDepth, err3 := d.i32()
			if err1 != nil || err2 != nil || err3 != nil {
				c.fail(fmt.Errorf("%w: turn aggregate", ErrBadPayload))
				return
			}
			track.MergeRemote(handles, flushes, maxDepth)
			c.processed[cc.id].Add(handles)
			ninsts, err := d.count(1 << 24)
			if err != nil {
				c.fail(err)
				return
			}
			if ninsts > 0 {
				c.instMu.Lock()
				for i := 0; i < ninsts; i++ {
					ic, err := d.instChange(c.network)
					if err != nil {
						c.instMu.Unlock()
						c.fail(err)
						return
					}
					c.insts = append(c.insts, ic)
				}
				c.instMu.Unlock()
				c.instCount.Add(int64(ninsts))
			}
			nloads, err := d.count(1 << 24)
			if err != nil {
				c.fail(err)
				return
			}
			if nloads > 0 {
				c.loadMu.Lock()
				for i := 0; i < nloads; i++ {
					b, err1 := d.i32()
					l, err2 := d.i64()
					if err1 != nil || err2 != nil || int(b) < 0 || int(b) >= len(c.bucketLoad) {
						c.loadMu.Unlock()
						c.fail(fmt.Errorf("%w: turn load pair", ErrBadPayload))
						return
					}
					c.bucketLoad[b] += l
				}
				c.loadMu.Unlock()
			}
			if err := d.done(); err != nil {
				c.fail(err)
				return
			}
			// Deregister AFTER everything the turn produced (relays on
			// this stream arrived first; deltas and counters are
			// published above).
			c.counts[cc.id].AddRecv(n)
			c.counter.Add(-n)
		case ftBucketRelay:
			// A migrated bucket in flight: register the forwarded
			// delivery before the sender's closing turn frame can
			// deregister its work, then forward the contents verbatim —
			// the control process never decodes them.
			d := dec{b: payload}
			dst32, err := d.i32()
			if err != nil {
				c.fail(err)
				return
			}
			dst := int(dst32)
			if dst < 0 || dst >= len(c.conns) || dst == cc.id {
				c.fail(fmt.Errorf("%w: worker %d shipped a bucket to %d", ErrBadPayload, cc.id, dst))
				return
			}
			entries, err := d.int()
			if err != nil {
				c.fail(err)
				return
			}
			c.counter.Add(1)
			c.counts[cc.id].IncSent()
			c.entriesMoved.Add(int64(entries))
			c.migMsgs.Add(1)
			if err := c.conns[dst].write(ftBucket, d.b); err != nil {
				c.fail(fmt.Errorf("transport: forwarding bucket to worker %d: %w", dst, err))
				return
			}
		default:
			c.fail(fmt.Errorf("%w: control got unexpected %s frame from worker %d", ErrBadPayload, ft, cc.id))
			return
		}
	}
}

// Cycle runs one match phase across the worker processes and returns
// the netted conflict-set deltas. A worker failure (disconnect,
// malformed frame) surfaces as an error — the cycle does not hang.
func (c *Control) Cycle(changes []rete.Change) ([]rete.InstChange, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("transport: Cycle after Close")
	}
	if err := c.counter.Err(); err != nil {
		return nil, err
	}
	c.insts = c.insts[:0] // quiescent: no reader holds instMu
	cycle := c.curCycle.Add(1)
	c.causal.BeginCycle(cycle, c.nowNS())

	if c.opts.RouteRoots {
		if err := c.routeRoots(changes); err != nil {
			return nil, err
		}
	} else if err := c.broadcast(changes); err != nil {
		return nil, err
	}

	c.counter.Wait()
	if err := c.counter.Err(); err != nil {
		return nil, err
	}
	// Four-counter mirror: at quiescence every message registered as
	// sent must have been registered received, or the wire accounting
	// has diverged from the credit counter.
	if sent, recv := c.four.Poll(); sent != recv {
		return nil, fmt.Errorf("transport: channel counts diverged at quiescence: sent=%d recv=%d", sent, recv)
	}
	c.causal.EndCycle(cycle, c.nowNS())
	if c.balancer != nil || c.opts.ForceMigrate != nil {
		if err := c.maybeRebalance(int(cycle)); err != nil {
			return nil, err
		}
	}
	return parallel.NetInsts(c.insts), nil
}

// maybeRebalance runs at the quiescent cycle boundary: fold the
// accumulated per-bucket loads into the balancer, ask it (or the
// ForceMigrate hook) for a new assignment, and migrate over the wire.
// Mirrors parallel.Runtime.maybeRebalance.
func (c *Control) maybeRebalance(cycle int) error {
	var newPart sched.Partition
	forced := false
	if c.opts.ForceMigrate != nil {
		newPart = c.opts.ForceMigrate(cycle)
		forced = newPart != nil
	}
	if c.balancer != nil && !forced {
		c.loadMu.Lock()
		for b, l := range c.bucketLoad {
			if l > 0 {
				c.balancer.Observe(b, l)
				c.bucketLoad[b] = 0
			}
		}
		c.loadMu.Unlock()
		if np, ok := c.balancer.EndCycle(); ok {
			newPart = np
		}
	}
	if newPart == nil {
		return nil
	}
	if err := c.migrate(newPart); err != nil {
		return err
	}
	if forced && c.balancer != nil {
		// A forced move invalidates the detector's notion of the
		// current assignment; restart it from the imposed partition.
		c.balancer = sched.NewBalancer(c.opts.Rebalance, newPart, c.opts.Workers)
	}
	return nil
}

// migrate executes one wire migration: an ftRepart order to every
// worker (all must switch routing; losers additionally extract and
// ship), then the credit-counter barrier until every shipped bucket
// has been injected at its new owner.
func (c *Control) migrate(newPart sched.Partition) error {
	if len(newPart) != c.opts.NBuckets {
		return fmt.Errorf("transport: partition covers %d buckets, want %d", len(newPart), c.opts.NBuckets)
	}
	if err := newPart.Validate(c.opts.Workers); err != nil {
		return err
	}
	perWorker := make([][]parallel.BucketMove, c.opts.Workers)
	moved := 0
	for b := range newPart {
		oldOwner, newOwner := c.opts.Partition[b], newPart[b]
		if oldOwner == newOwner {
			continue
		}
		perWorker[oldOwner] = append(perWorker[oldOwner], parallel.BucketMove{Bucket: int32(b), NewOwner: int32(newOwner)})
		moved++
	}
	c.counter.Add(len(c.conns))
	c.controlCounts().AddSent(len(c.conns))
	var ebuf []byte
	for _, cc := range c.conns {
		e := enc{buf: ebuf[:0]}
		e.count(len(newPart))
		for _, owner := range newPart {
			e.int(owner)
		}
		e.count(len(perWorker[cc.id]))
		for _, mv := range perWorker[cc.id] {
			e.i32(mv.Bucket)
			e.i32(mv.NewOwner)
		}
		ebuf = e.buf[:0]
		if err := cc.write(ftRepart, e.buf); err != nil {
			err = fmt.Errorf("transport: repartition order to worker %d: %w", cc.id, err)
			c.fail(err)
			return err
		}
	}
	c.counter.Wait()
	if err := c.counter.Err(); err != nil {
		return err
	}
	c.opts.Partition = newPart
	c.migrations.Add(1)
	c.bucketsMoved.Add(int64(moved))
	return nil
}

// RebalanceStats reports the adaptive repartitioner's cumulative cost
// across the run, in the parallel.Runtime.RebalanceStats shape.
func (c *Control) RebalanceStats() (migrations, bucketsMoved, entriesMoved int64) {
	return c.migrations.Load(), c.bucketsMoved.Load(), c.entriesMoved.Load()
}

// Apply implements engine.MatchApplier. Transport failures panic (the
// interface has no error path); engines needing errors call Cycle.
func (c *Control) Apply(changes []rete.Change) []rete.InstChange {
	insts, err := c.Cycle(changes)
	if err != nil {
		panic(err)
	}
	return insts
}

// broadcast ships the cycle's changes to every worker (Fig 3-3).
func (c *Control) broadcast(changes []rete.Change) error {
	c.counter.Add(len(c.conns))
	c.controlCounts().AddSent(len(c.conns))
	batch := c.causal.NextBatch()
	c.ctlTrack.Send(c.nowNS(), c.curCycle.Load(), batch, obs.BroadcastDst, int32(len(c.conns)))
	e := enc{}
	e.i32(batch)
	e.i32(int32(c.opts.Workers)) // src: the control track
	e.count(len(changes))
	for _, ch := range changes {
		e.change(ch)
	}
	for _, cc := range c.conns {
		if err := cc.write(ftCycle, e.buf); err != nil {
			err = fmt.Errorf("transport: broadcast to worker %d: %w", cc.id, err)
			c.fail(err)
			return err
		}
	}
	return nil
}

// routeRoots runs the constant tests once and routes each root to its
// owner (Fig 3-2), one coalesced ftActs frame per destination.
func (c *Control) routeRoots(changes []rete.Change) error {
	sent := 0
	for _, ch := range changes {
		c.rootScratch = c.rootProc.RootActivationsInto(ch, c.rootScratch[:0])
		for _, act := range c.rootScratch {
			b := c.rootProc.Bucket(act)
			owner := c.opts.Partition[b]
			c.rootBufs[owner] = append(c.rootBufs[owner], wireAct{bucket: int32(b), depth: 1, act: act})
			sent++
		}
	}
	if sent == 0 {
		return nil
	}
	c.counter.Add(sent)
	c.controlCounts().AddSent(sent)
	ts := c.nowNS()
	var ebuf []byte
	for dst, buf := range c.rootBufs {
		if len(buf) == 0 {
			continue
		}
		batch := c.causal.NextBatch()
		c.ctlTrack.Send(ts, c.curCycle.Load(), batch, int32(dst), int32(len(buf)))
		e := enc{buf: ebuf[:0]}
		e.i32(batch)
		e.i32(int32(c.opts.Workers))
		e.actList(buf)
		ebuf = e.buf[:0]
		if err := c.conns[dst].write(ftActs, e.buf); err != nil {
			err = fmt.Errorf("transport: routing to worker %d: %w", dst, err)
			c.fail(err)
			return err
		}
		c.rootBufs[dst] = buf[:0]
	}
	return nil
}

func (c *Control) controlCounts() *termdet.ChannelCounts {
	return c.counts[len(c.counts)-1]
}

// Stats snapshots per-worker counters in the parallel.Stats shape:
// Processed counts worker-side node activations (from turn
// aggregates), MsgsSent counts relayed worker-to-worker activations.
func (c *Control) Stats() parallel.Stats {
	s := parallel.Stats{
		Processed: make([]int64, len(c.processed)),
		MsgsSent:  make([]int64, len(c.msgsSent)),
		Insts:     c.instCount.Load(),
	}
	for i := range c.processed {
		s.Processed[i] = c.processed[i].Load()
		s.MsgsSent[i] = c.msgsSent[i].Load()
	}
	return s
}

// FlightDump snapshots the attached flight recorder (nil without one).
// Only legal at quiescence, as for parallel.Runtime.
func (c *Control) FlightDump() *obs.FlightDump {
	return c.causal.Dump()
}

// Err reports a recorded fatal transport error, if any.
func (c *Control) Err() error { return c.counter.Err() }

// Close shuts the topology down: a shutdown frame to every worker,
// then the connections and listener. Safe to call more than once.
func (c *Control) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	for _, cc := range c.conns {
		cc.write(ftShutdown, nil)
	}
	// Give readers their EOF: workers close their end on shutdown; the
	// conn close below unblocks any reader whose worker won't.
	for _, cc := range c.conns {
		cc.c.SetReadDeadline(time.Now().Add(2 * time.Second))
	}
	c.readers.Wait()
	for _, cc := range c.conns {
		cc.c.Close()
	}
	c.ln.Close()
	return nil
}
