package transport

import (
	"bufio"
	"fmt"
	"net"
	"testing"
	"time"

	"mpcrete/internal/parallel"
	"mpcrete/internal/rete"
)

// startWorkers launches n worker protocol loops (each on its own real
// TCP connection, as separate processes would) against the control's
// listener.
func startWorkers(t *testing.T, addr string, n int) chan error {
	t.Helper()
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			errs <- Serve(addr, 5*time.Second)
		}()
	}
	return errs
}

// TestControlParity holds the multi-process star topology against the
// in-process runtime: same network, same changes, identical netted
// conflict sets across add and delete cycles, in both broadcast and
// routed-roots modes, with stamp accounting verified at quiescence.
func TestControlParity(t *testing.T) {
	for _, wl := range []string{"blocks", "rubik-like"} {
		for _, routed := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/routed=%v", wl, routed), func(t *testing.T) {
				const workers = 4
				net, changes := compileWorkload(t, wl)
				ref, err := parallel.New(net, parallel.Options{Workers: workers, RouteRoots: routed})
				if err != nil {
					t.Fatal(err)
				}
				defer ref.Close()

				causal := parallel.NewFlightRecorder(workers, 0, 0, rete.DefaultNBuckets)
				ctl, err := Listen(net, "127.0.0.1:0", ControlOptions{
					Workers:    workers,
					RouteRoots: routed,
					Causal:     causal,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer ctl.Close()
				werrs := startWorkers(t, ctl.Addr(), workers)
				if err := ctl.WaitWorkers(); err != nil {
					t.Fatal(err)
				}

				want := instKeys(ref.Apply(changes))
				got, err := ctl.Cycle(changes)
				if err != nil {
					t.Fatal(err)
				}
				if len(want) == 0 {
					t.Fatalf("workload %s produced no instantiations; vacuous test", wl)
				}
				if fmt.Sprint(instKeys(got)) != fmt.Sprint(want) {
					t.Fatalf("conflict sets diverge\n ctl: %v\n ref: %v", instKeys(got), want)
				}

				del := []rete.Change{{Tag: rete.Delete, WME: changes[0].WME}}
				want = instKeys(ref.Apply(del))
				got, err = ctl.Cycle(del)
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(instKeys(got)) != fmt.Sprint(want) {
					t.Fatalf("deletion cycle diverges\n ctl: %v\n ref: %v", instKeys(got), want)
				}

				// Flight accounting: every message sent across the wire
				// was received, per the cycle aggregates.
				dump := ctl.FlightDump()
				if len(dump.Cycles) != 2 {
					t.Fatalf("got %d cycle records, want 2", len(dump.Cycles))
				}
				for i, cy := range dump.Cycles {
					tot := cy.Total()
					if tot.Sends != tot.Recvs {
						t.Fatalf("cycle %d: sends=%d recvs=%d; want equal", i, tot.Sends, tot.Recvs)
					}
					if i == 0 && tot.Sends == 0 {
						t.Fatal("first cycle recorded no sends")
					}
				}

				stats := ctl.Stats()
				var processed int64
				for _, p := range stats.Processed {
					processed += p
				}
				if processed == 0 {
					t.Fatal("no worker-side activations reported through turn aggregates")
				}

				if err := ctl.Close(); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < workers; i++ {
					if err := <-werrs; err != nil {
						t.Fatalf("worker exit: %v", err)
					}
				}
			})
		}
	}
}

// TestControlWorkerDisconnect kills one worker between cycles and
// checks the next Cycle surfaces a runtime error instead of hanging on
// the termination counter.
func TestControlWorkerDisconnect(t *testing.T) {
	const workers = 2
	netw, changes := compileWorkload(t, "blocks")
	ctl, err := Listen(netw, "127.0.0.1:0", ControlOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	// One real worker, one that handshakes and then drops the link.
	go Serve(ctl.Addr(), 5*time.Second)
	droppedConn := make(chan net.Conn, 1)
	go func() {
		conn, err := net.Dial("tcp", ctl.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		br := bufio.NewReader(conn)
		ft, payload, err := readFrame(br, nil)
		if err != nil || ft != ftHello {
			t.Errorf("fake worker handshake: ft=%v err=%v", ft, err)
			conn.Close()
			return
		}
		h, err := decodeHello(payload)
		if err != nil {
			t.Error(err)
			conn.Close()
			return
		}
		var ready enc
		ready.int(h.id)
		if err := writeFrame(conn, ftReady, ready.buf); err != nil {
			t.Error(err)
			conn.Close()
			return
		}
		droppedConn <- conn
	}()
	if err := ctl.WaitWorkers(); err != nil {
		t.Fatal(err)
	}
	// Drop the fake worker's link mid-topology, then drive a cycle.
	(<-droppedConn).Close()

	done := make(chan error, 1)
	go func() {
		_, err := ctl.Cycle(changes)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Cycle succeeded with a dead worker; want a transport error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Cycle hung on a dead worker")
	}

	// The failure is sticky: later cycles fail fast too.
	if _, err := ctl.Cycle(changes); err == nil {
		t.Fatal("Cycle after failure succeeded; want sticky error")
	}
}
