package transport

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mpcrete/internal/ops5"
	"mpcrete/internal/rete"
	"mpcrete/internal/sched"
)

// compileProdsT compiles production sources into a network for the
// migration tests (the named workloads don't exercise enough distinct
// buckets per cycle to arm the detector deterministically).
func compileProdsT(t *testing.T, srcs ...string) *rete.Network {
	t.Helper()
	var prods []*ops5.Production
	for _, src := range srcs {
		p, err := ops5.ParseProduction(src)
		if err != nil {
			t.Fatal(err)
		}
		prods = append(prods, p)
	}
	net, err := rete.Compile(prods)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// foldInsts folds conflict-set deltas into a set.
func foldInsts(cs map[string]bool, deltas []rete.InstChange) {
	for _, ic := range deltas {
		if ic.Tag == rete.Add {
			cs[ic.Key()] = true
		} else {
			delete(cs, ic.Key())
		}
	}
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestControlForcedMigrationParity is the cross-process form of the
// migration metamorphic property: buckets migrate between worker
// processes over real TCP connections mid-run — extraction, wire
// serialization, relay through the control process, and injection at
// the new owner — and the netted conflict-set trajectory must stay
// identical to the sequential matcher's. The forced schedule rotates
// the whole partition at every cycle boundary, so every resident token
// crosses the wire between every pair of cycles.
func TestControlForcedMigrationParity(t *testing.T) {
	srcs := []string{
		`(p join (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (halt))`,
		`(p neg (a ^x <v>) -(d ^x <v>) --> (halt))`,
	}
	const nbuckets = 64
	for _, routed := range []bool{false, true} {
		t.Run(fmt.Sprintf("routed=%v", routed), func(t *testing.T) {
			const workers = 3
			net := compileProdsT(t, srcs...)
			seq := rete.NewMatcher(compileProdsT(t, srcs...), rete.MatcherOptions{NBuckets: nbuckets})
			ctl, err := Listen(net, "127.0.0.1:0", ControlOptions{
				Workers:    workers,
				NBuckets:   nbuckets,
				RouteRoots: routed,
				ForceMigrate: func(cycle int) sched.Partition {
					p := make(sched.Partition, nbuckets)
					for b := range p {
						p[b] = (b + cycle) % workers
					}
					return p
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer ctl.Close()
			werrs := startWorkers(t, ctl.Addr(), workers)
			if err := ctl.WaitWorkers(); err != nil {
				t.Fatal(err)
			}

			seqCS, wireCS := map[string]bool{}, map[string]bool{}
			cycles := 0
			id := 1
			var live []*ops5.WME
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 30; i++ {
				var ch []rete.Change
				if len(live) > 0 && rng.Intn(3) == 0 {
					j := rng.Intn(len(live))
					ch = []rete.Change{{Tag: rete.Delete, WME: live[j]}}
					live = append(live[:j], live[j+1:]...)
				} else {
					class := []string{"a", "b", "c", "d"}[rng.Intn(4)]
					w := ops5.NewWME(class, "x", rng.Intn(3))
					w.ID, w.TimeTag = id, id
					id++
					ch = []rete.Change{{Tag: rete.Add, WME: w}}
					live = append(live, w)
				}
				foldInsts(seqCS, seq.Apply(ch))
				got, err := ctl.Cycle(ch)
				if err != nil {
					t.Fatal(err)
				}
				foldInsts(wireCS, got)
				cycles++
				if !sameSet(seqCS, wireCS) {
					t.Fatalf("divergence at step %d:\nseq:  %v\nwire: %v", i, seqCS, wireCS)
				}
			}
			migs, moved, entries := ctl.RebalanceStats()
			if int(migs) != cycles {
				t.Errorf("forced schedule migrated %d times over %d cycles", migs, cycles)
			}
			if moved == 0 {
				t.Error("forced full rotations moved no buckets")
			}
			if entries == 0 {
				t.Error("no entries crossed the wire despite resident state")
			}

			if err := ctl.Close(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < workers; i++ {
				select {
				case err := <-werrs:
					if err != nil {
						t.Fatalf("worker exit: %v", err)
					}
				case <-time.After(10 * time.Second):
					t.Fatal("worker did not exit")
				}
			}
		})
	}
}

// TestControlAdaptiveParity runs the online detector across worker
// processes: a pathologically bad initial assignment (every bucket on
// worker 0), per-bucket loads reported in turn frames, and the control
// plane's balancer migrating buckets over the wire — with the netted
// conflict sets identical to the sequential matcher throughout.
func TestControlAdaptiveParity(t *testing.T) {
	const (
		workers  = 3
		nbuckets = 64
	)
	src := `(p j (a ^x <v>) (b ^x <v>) --> (halt))`
	net := compileProdsT(t, src)
	seq := rete.NewMatcher(compileProdsT(t, src), rete.MatcherOptions{NBuckets: nbuckets})
	ctl, err := Listen(net, "127.0.0.1:0", ControlOptions{
		Workers:   workers,
		NBuckets:  nbuckets,
		Partition: make(sched.Partition, nbuckets), // everything on worker 0
		Rebalance: sched.Rebalance{Threshold: 1.01, MinInterval: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	werrs := startWorkers(t, ctl.Addr(), workers)
	if err := ctl.WaitWorkers(); err != nil {
		t.Fatal(err)
	}

	seqCS, wireCS := map[string]bool{}, map[string]bool{}
	id := 1
	for cycle := 0; cycle < 8; cycle++ {
		var ch []rete.Change
		for x := 0; x < 8; x++ {
			for _, class := range []string{"a", "b"} {
				w := ops5.NewWME(class, "x", cycle*8+x)
				w.ID, w.TimeTag = id, id
				id++
				ch = append(ch, rete.Change{Tag: rete.Add, WME: w})
			}
		}
		foldInsts(seqCS, seq.Apply(ch))
		got, err := ctl.Cycle(ch)
		if err != nil {
			t.Fatal(err)
		}
		foldInsts(wireCS, got)
		if !sameSet(seqCS, wireCS) {
			t.Fatalf("divergence at cycle %d:\nseq:  %v\nwire: %v", cycle, seqCS, wireCS)
		}
	}
	migs, moved, _ := ctl.RebalanceStats()
	if migs == 0 {
		t.Fatal("detector never armed on an all-on-one-worker assignment")
	}
	if moved == 0 {
		t.Fatal("migration moved no buckets")
	}
	owners := map[int]bool{}
	for _, o := range ctl.opts.Partition {
		owners[o] = true
	}
	if len(owners) < 2 {
		t.Fatalf("partition still on a single owner after %d migrations", migs)
	}

	if err := ctl.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < workers; i++ {
		select {
		case err := <-werrs:
			if err != nil {
				t.Fatalf("worker exit: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("worker did not exit")
		}
	}
}
