// Package transport carries the parallel runtime's message plane over
// TCP: length-prefixed frames with coalesced per-batch payloads, the
// wire realization of the paper's message-passing machine. It provides
// two layers:
//
//   - Loopback: a parallel.Transport that ships every mailbox message
//     through a real localhost TCP connection pair per worker, used to
//     validate the wire codec and framing against the in-process
//     reference (difftest plugs it into the differential oracle).
//   - Control / ServeWorker: a star-topology multi-process runtime —
//     one control process, N worker processes — with a compiled-network
//     handshake, per-batch framing, relay routing of worker-to-worker
//     activations, and exact termination-detection accounting across
//     the wire (see control.go).
//
// The frame format is the QCDSP-style minimum: a 4-byte big-endian
// length, a 1-byte frame type, and a varint-encoded payload. The
// length covers the type byte, so a frame occupies 4+length bytes on
// the wire and a reader can skip unknown payloads without decoding
// them.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxFrame bounds a frame's length field (type byte + payload). A
// cycle's coalesced changes and a worker's relayed activation batches
// stay far below this; anything larger is a corrupt or hostile stream.
const MaxFrame = 16 << 20

// frameType tags a frame's payload.
type frameType uint8

const (
	// ftHello is the control→worker handshake: protocol version,
	// topology (worker id, worker count, nbuckets, partition, flags),
	// and the compiled network (rete.EncodeNetwork bytes).
	ftHello frameType = iota + 1
	// ftReady is the worker→control handshake reply.
	ftReady
	// ftBatch is the Loopback transport's unit: one pushed message
	// batch with its causal stamp (batch, src).
	ftBatch
	// ftCycle is the control→worker broadcast of one match phase's wme
	// changes (Fig 3-3).
	ftCycle
	// ftActs is a control→worker batch of routed activations: Fig 3-2
	// roots, or worker-to-worker sends relayed through the control
	// process.
	ftActs
	// ftRelay is a worker→control batch of activations destined for
	// another worker; the control process forwards it as ftActs.
	ftRelay
	// ftTurn ends a worker's turn: how many messages it fully
	// processed, the recv stamps it drained, its per-turn measurement
	// aggregate, the conflict-set deltas it produced, and (when load
	// tracking is on) its per-bucket activation counts.
	ftTurn
	// ftShutdown asks a worker to exit cleanly.
	ftShutdown
	// ftRepart is the control→worker migration order: the new
	// partition plus the buckets this worker must extract and ship.
	// Sent to every worker at a quiescent cycle boundary — routing
	// switches everywhere before the next cycle's delivery.
	ftRepart
	// ftBucketRelay is a worker→control shipment of one extracted
	// bucket pair: destination worker, entry count, then the encoded
	// contents, which the control process forwards verbatim (without
	// decoding) as ftBucket.
	ftBucketRelay
	// ftBucket is the control→worker delivery of one migrated bucket
	// pair; the receiver injects it and closes the turn.
	ftBucket

	maxFrameType = ftBucket
)

var frameTypeNames = [...]string{
	ftHello: "hello", ftReady: "ready", ftBatch: "batch", ftCycle: "cycle",
	ftActs: "acts", ftRelay: "relay", ftTurn: "turn", ftShutdown: "shutdown",
	ftRepart: "repart", ftBucketRelay: "bucket-relay", ftBucket: "bucket",
}

func (t frameType) String() string {
	if int(t) < len(frameTypeNames) && frameTypeNames[t] != "" {
		return frameTypeNames[t]
	}
	return fmt.Sprintf("frame(%d)", uint8(t))
}

// Typed frame errors. Fault tests assert on these with errors.Is; the
// runtime surfaces them through EndpointOptions.OnError or
// Control.Cycle rather than hanging.
var (
	// ErrFrameTooLarge reports a length field exceeding MaxFrame (or a
	// payload too large to encode).
	ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")
	// ErrTruncated reports a stream that ended mid-frame.
	ErrTruncated = errors.New("transport: truncated frame")
	// ErrUnknownFrameType reports an unrecognized frame type byte.
	ErrUnknownFrameType = errors.New("transport: unknown frame type")
	// ErrBadPayload reports a payload that fails to decode.
	ErrBadPayload = errors.New("transport: malformed payload")
)

// writeFrame writes one frame. The caller serializes concurrent writers
// (per-connection write mutexes in loopback.go / control.go).
func writeFrame(w io.Writer, ft frameType, payload []byte) error {
	n := 1 + len(payload)
	if n > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(n))
	hdr[4] = byte(ft)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, reusing buf for the payload when it fits.
// A clean EOF before any header byte returns io.EOF; an EOF anywhere
// inside a frame returns ErrTruncated. An oversized length field or an
// unknown type byte returns the matching typed error without consuming
// the payload.
func readFrame(r io.Reader, buf []byte) (frameType, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: reading length: %v", ErrTruncated, err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 {
		return 0, nil, fmt.Errorf("%w: zero-length frame", ErrBadPayload)
	}
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("%w: length field %d", ErrFrameTooLarge, n)
	}
	var tb [1]byte
	if _, err := io.ReadFull(r, tb[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: reading type: %v", ErrTruncated, err)
	}
	ft := frameType(tb[0])
	if ft < ftHello || ft > maxFrameType {
		return 0, nil, fmt.Errorf("%w: %d", ErrUnknownFrameType, tb[0])
	}
	plen := int(n) - 1
	if cap(buf) < plen {
		buf = make([]byte, plen)
	}
	buf = buf[:plen]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("%w: reading %s payload (%d bytes): %v", ErrTruncated, ft, plen, err)
	}
	return ft, buf, nil
}
