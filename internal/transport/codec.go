package transport

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"mpcrete/internal/ops5"
	"mpcrete/internal/parallel"
	"mpcrete/internal/rete"
)

// Payload codec: varint-encoded values over the frame payloads, in the
// style of rete's compiled-network codec. Unlike the in-process
// transport, which moves pointers, the wire codec ships full content —
// decoded wmes are fresh copies with the same ID/TimeTag/Class/Attrs,
// which is safe because tokens compare by wme ID and joins read
// values, never pointer identity. Attributes are encoded in sorted
// order so the encoding of a message is canonical (byte-identical for
// equal messages), which the fuzz round-trip target relies on.
//
// Decoding resolves graph references against the receiver's compiled
// network: node ids are bounds-checked into net.Nodes and production
// names looked up in net.Prods, so a frame cross-wired from a
// different program fails with ErrBadPayload instead of corrupting the
// match state.

// enc is an append-only payload encoder.
type enc struct {
	buf []byte
}

func (e *enc) u64(v uint64)  { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) i64(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *enc) byte(b byte)   { e.buf = append(e.buf, b) }
func (e *enc) str(s string)  { e.u64(uint64(len(s))); e.buf = append(e.buf, s...) }
func (e *enc) i32(v int32)   { e.i64(int64(v)) }
func (e *enc) bool(b bool)   { e.byte(boolByte(b)) }
func (e *enc) int(v int)     { e.i64(int64(v)) }
func (e *enc) count(n int)   { e.u64(uint64(n)) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// dec is a bounds-checked payload decoder; every failure wraps
// ErrBadPayload.
type dec struct {
	b   []byte
	off int // consumed bytes, for error context
}

func (d *dec) fail(what string) error {
	return fmt.Errorf("%w: %s at offset %d", ErrBadPayload, what, d.off)
}

func (d *dec) u64() (uint64, error) {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return 0, d.fail("uvarint")
	}
	d.b = d.b[n:]
	d.off += n
	return v, nil
}

func (d *dec) i64() (int64, error) {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		return 0, d.fail("varint")
	}
	d.b = d.b[n:]
	d.off += n
	return v, nil
}

func (d *dec) byte() (byte, error) {
	if len(d.b) == 0 {
		return 0, d.fail("byte")
	}
	b := d.b[0]
	d.b = d.b[1:]
	d.off++
	return b, nil
}

func (d *dec) bool() (bool, error) {
	b, err := d.byte()
	if err != nil {
		return false, err
	}
	if b > 1 {
		return false, d.fail("bool")
	}
	return b == 1, nil
}

func (d *dec) i32() (int32, error) {
	v, err := d.i64()
	if err != nil {
		return 0, err
	}
	if v < math.MinInt32 || v > math.MaxInt32 {
		return 0, d.fail("int32 range")
	}
	return int32(v), nil
}

func (d *dec) int() (int, error) {
	v, err := d.i64()
	if err != nil {
		return 0, err
	}
	return int(v), nil
}

// count decodes a collection length, bounded both by an explicit limit
// and by the bytes remaining (each element costs at least one byte), so
// a hostile length cannot trigger a huge allocation.
func (d *dec) count(limit int) (int, error) {
	v, err := d.u64()
	if err != nil {
		return 0, err
	}
	if v > uint64(limit) || v > uint64(len(d.b)) {
		return 0, d.fail(fmt.Sprintf("count %d exceeds limit", v))
	}
	return int(v), nil
}

func (d *dec) str() (string, error) {
	n, err := d.count(1 << 20)
	if err != nil {
		return "", err
	}
	if len(d.b) < n {
		return "", d.fail("string bytes")
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	d.off += n
	return s, nil
}

func (d *dec) f64() (float64, error) {
	v, err := d.u64()
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(v), nil
}

func (d *dec) done() error {
	if len(d.b) != 0 {
		return d.fail(fmt.Sprintf("%d trailing bytes", len(d.b)))
	}
	return nil
}

// --- values and wmes ---

func (e *enc) value(v ops5.Value) {
	e.byte(byte(v.Kind))
	switch v.Kind {
	case ops5.KindSym:
		e.str(v.Sym)
	case ops5.KindNum:
		e.f64(v.Num)
	}
}

func (d *dec) value() (ops5.Value, error) {
	kind, err := d.byte()
	if err != nil {
		return ops5.Value{}, err
	}
	switch ops5.Kind(kind) {
	case ops5.KindNil:
		return ops5.Value{}, nil
	case ops5.KindSym:
		s, err := d.str()
		return ops5.S(s), err
	case ops5.KindNum:
		f, err := d.f64()
		return ops5.N(f), err
	}
	return ops5.Value{}, d.fail(fmt.Sprintf("value kind %d", kind))
}

func (e *enc) wme(w *ops5.WME) {
	e.int(w.ID)
	e.int(w.TimeTag)
	e.str(w.Class)
	attrs := make([]string, 0, len(w.Attrs))
	for a := range w.Attrs {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	e.count(len(attrs))
	for _, a := range attrs {
		e.str(a)
		e.value(w.Attrs[a])
	}
}

func (d *dec) wme() (*ops5.WME, error) {
	w := &ops5.WME{}
	var err error
	if w.ID, err = d.int(); err != nil {
		return nil, err
	}
	if w.TimeTag, err = d.int(); err != nil {
		return nil, err
	}
	if w.Class, err = d.str(); err != nil {
		return nil, err
	}
	n, err := d.count(1 << 16)
	if err != nil {
		return nil, err
	}
	w.Attrs = make(map[string]ops5.Value, n)
	for i := 0; i < n; i++ {
		a, err := d.str()
		if err != nil {
			return nil, err
		}
		v, err := d.value()
		if err != nil {
			return nil, err
		}
		w.Attrs[a] = v
	}
	return w, nil
}

// optWME encodes a possibly-nil wme (InstChange entries for negated
// CEs are nil).
func (e *enc) optWME(w *ops5.WME) {
	if w == nil {
		e.byte(0)
		return
	}
	e.byte(1)
	e.wme(w)
}

func (d *dec) optWME() (*ops5.WME, error) {
	present, err := d.bool()
	if err != nil || !present {
		return nil, err
	}
	return d.wme()
}

// --- changes, activations, instantiations ---

func (e *enc) change(ch rete.Change) {
	e.byte(byte(ch.Tag))
	e.wme(ch.WME)
}

func (d *dec) change() (rete.Change, error) {
	tag, err := d.tag()
	if err != nil {
		return rete.Change{}, err
	}
	w, err := d.wme()
	if err != nil {
		return rete.Change{}, err
	}
	return rete.Change{Tag: tag, WME: w}, nil
}

func (d *dec) tag() (rete.Tag, error) {
	b, err := d.byte()
	if err != nil {
		return 0, err
	}
	if t := rete.Tag(b); t == rete.Add || t == rete.Delete {
		return t, nil
	}
	return 0, d.fail(fmt.Sprintf("tag %d", b))
}

func (e *enc) activation(a rete.Activation) {
	e.int(a.Node.ID)
	e.byte(byte(a.Side))
	e.byte(byte(a.Tag))
	if a.Token != nil {
		e.byte(1)
		e.count(len(a.Token.WMEs))
		for _, w := range a.Token.WMEs {
			e.wme(w)
		}
	} else {
		e.byte(0)
	}
	e.optWME(a.WME)
}

func (d *dec) activation(net *rete.Network) (rete.Activation, error) {
	var a rete.Activation
	id, err := d.int()
	if err != nil {
		return a, err
	}
	if id < 0 || id >= len(net.Nodes) {
		return a, d.fail(fmt.Sprintf("node id %d out of range [0,%d)", id, len(net.Nodes)))
	}
	a.Node = net.Nodes[id]
	side, err := d.byte()
	if err != nil {
		return a, err
	}
	if side != byte(rete.Left) && side != byte(rete.Right) {
		return a, d.fail(fmt.Sprintf("side %d", side))
	}
	a.Side = rete.Side(side)
	if a.Tag, err = d.tag(); err != nil {
		return a, err
	}
	hasToken, err := d.bool()
	if err != nil {
		return a, err
	}
	if hasToken {
		n, err := d.count(1 << 16)
		if err != nil {
			return a, err
		}
		tok := &rete.Token{WMEs: make([]*ops5.WME, n)}
		for i := range tok.WMEs {
			if tok.WMEs[i], err = d.wme(); err != nil {
				return a, err
			}
		}
		a.Token = tok
	}
	if a.WME, err = d.optWME(); err != nil {
		return a, err
	}
	return a, nil
}

func (e *enc) instChange(ic rete.InstChange) {
	e.byte(byte(ic.Tag))
	e.str(ic.Prod.Name)
	e.count(len(ic.WMEs))
	for _, w := range ic.WMEs {
		e.optWME(w)
	}
	e.count(len(ic.TimeTags))
	for _, t := range ic.TimeTags {
		e.int(t)
	}
}

func (d *dec) instChange(net *rete.Network) (rete.InstChange, error) {
	var ic rete.InstChange
	var err error
	if ic.Tag, err = d.tag(); err != nil {
		return ic, err
	}
	name, err := d.str()
	if err != nil {
		return ic, err
	}
	info, ok := net.Prods[name]
	if !ok {
		return ic, d.fail(fmt.Sprintf("unknown production %q", name))
	}
	ic.Prod = info.Prod
	n, err := d.count(1 << 16)
	if err != nil {
		return ic, err
	}
	ic.WMEs = make([]*ops5.WME, n)
	for i := range ic.WMEs {
		if ic.WMEs[i], err = d.optWME(); err != nil {
			return ic, err
		}
	}
	if n, err = d.count(1 << 16); err != nil {
		return ic, err
	}
	if n > 0 {
		ic.TimeTags = make([]int, n)
		for i := range ic.TimeTags {
			if ic.TimeTags[i], err = d.int(); err != nil {
				return ic, err
			}
		}
	}
	return ic, nil
}

// --- bucket contents (the migration protocol's payload) ---

// bucketContents encodes one extracted hash-bucket pair. Node
// references travel as compiled-network ids; tokens and wmes travel by
// value. The decoded copy is safe to inject on the receiver because
// memory removal matches by value (wme ID / Token.Same), never by
// pointer identity.
func (e *enc) bucketContents(bc *rete.BucketContents) {
	e.int(bc.Bucket)
	e.count(len(bc.LeftTokens))
	for i, tok := range bc.LeftTokens {
		e.int(bc.LeftNodes[i].ID)
		e.int(bc.LeftCounts[i])
		e.count(len(tok.WMEs))
		for _, w := range tok.WMEs {
			e.wme(w)
		}
	}
	e.count(len(bc.RightWMEs))
	for i, w := range bc.RightWMEs {
		e.int(bc.RightNodes[i].ID)
		e.wme(w)
	}
}

func (d *dec) node(net *rete.Network) (*rete.Node, error) {
	id, err := d.int()
	if err != nil {
		return nil, err
	}
	if id < 0 || id >= len(net.Nodes) {
		return nil, d.fail(fmt.Sprintf("node id %d out of range [0,%d)", id, len(net.Nodes)))
	}
	return net.Nodes[id], nil
}

func (d *dec) bucketContents(net *rete.Network) (*rete.BucketContents, error) {
	bc := &rete.BucketContents{}
	var err error
	if bc.Bucket, err = d.int(); err != nil {
		return nil, err
	}
	nl, err := d.count(1 << 24)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nl; i++ {
		n, err := d.node(net)
		if err != nil {
			return nil, err
		}
		cnt, err := d.int()
		if err != nil {
			return nil, err
		}
		nw, err := d.count(1 << 16)
		if err != nil {
			return nil, err
		}
		tok := &rete.Token{WMEs: make([]*ops5.WME, nw)}
		for j := range tok.WMEs {
			if tok.WMEs[j], err = d.wme(); err != nil {
				return nil, err
			}
		}
		bc.LeftNodes = append(bc.LeftNodes, n)
		bc.LeftTokens = append(bc.LeftTokens, tok)
		bc.LeftCounts = append(bc.LeftCounts, cnt)
	}
	nr, err := d.count(1 << 24)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nr; i++ {
		n, err := d.node(net)
		if err != nil {
			return nil, err
		}
		w, err := d.wme()
		if err != nil {
			return nil, err
		}
		bc.RightNodes = append(bc.RightNodes, n)
		bc.RightWMEs = append(bc.RightWMEs, w)
	}
	return bc, nil
}

// --- message batches (the Loopback transport's ftBatch payload) ---

// appendBatch encodes a pushed message batch with its causal stamp.
// Migration messages ship by value: moves as (bucket, owner) pairs,
// injected contents through the bucketContents codec.
func appendBatch(buf []byte, ms []parallel.Message, batch, src int32) ([]byte, error) {
	e := enc{buf: buf}
	e.i32(batch)
	e.i32(src)
	e.count(len(ms))
	for i := range ms {
		m := &ms[i]
		switch m.Kind {
		case parallel.MsgCycle:
			e.byte(byte(parallel.MsgCycle))
			e.count(len(m.Cycle.Changes))
			for _, ch := range m.Cycle.Changes {
				e.change(ch)
			}
		case parallel.MsgAct:
			e.byte(byte(parallel.MsgAct))
			e.i32(m.Bucket)
			e.i32(m.Depth)
			e.activation(m.Act)
		case parallel.MsgMigrateOut:
			e.byte(byte(parallel.MsgMigrateOut))
			e.count(len(m.Moves))
			for _, mv := range m.Moves {
				e.i32(mv.Bucket)
				e.i32(mv.NewOwner)
			}
		case parallel.MsgMigrateIn:
			e.byte(byte(parallel.MsgMigrateIn))
			e.bucketContents(m.Inject)
		default:
			return nil, fmt.Errorf("transport: message kind %d cannot cross the wire", m.Kind)
		}
	}
	return e.buf, nil
}

// decodeBatch decodes an ftBatch payload into messages backed by fresh
// wme copies.
func decodeBatch(net *rete.Network, payload []byte, ms []parallel.Message) ([]parallel.Message, int32, int32, error) {
	d := dec{b: payload}
	batch, err := d.i32()
	if err != nil {
		return nil, 0, 0, err
	}
	src, err := d.i32()
	if err != nil {
		return nil, 0, 0, err
	}
	n, err := d.count(1 << 24)
	if err != nil {
		return nil, 0, 0, err
	}
	ms = ms[:0]
	for i := 0; i < n; i++ {
		kind, err := d.byte()
		if err != nil {
			return nil, 0, 0, err
		}
		switch parallel.MsgKind(kind) {
		case parallel.MsgCycle:
			nch, err := d.count(1 << 24)
			if err != nil {
				return nil, 0, 0, err
			}
			pkt := &parallel.CyclePacket{Changes: make([]rete.Change, nch)}
			for j := range pkt.Changes {
				if pkt.Changes[j], err = d.change(); err != nil {
					return nil, 0, 0, err
				}
			}
			ms = append(ms, parallel.Message{Kind: parallel.MsgCycle, Cycle: pkt})
		case parallel.MsgAct:
			var m parallel.Message
			m.Kind = parallel.MsgAct
			if m.Bucket, err = d.i32(); err != nil {
				return nil, 0, 0, err
			}
			if m.Depth, err = d.i32(); err != nil {
				return nil, 0, 0, err
			}
			if m.Act, err = d.activation(net); err != nil {
				return nil, 0, 0, err
			}
			ms = append(ms, m)
		case parallel.MsgMigrateOut:
			nm, err := d.count(1 << 24)
			if err != nil {
				return nil, 0, 0, err
			}
			moves := make([]parallel.BucketMove, nm)
			for j := range moves {
				if moves[j].Bucket, err = d.i32(); err != nil {
					return nil, 0, 0, err
				}
				if moves[j].NewOwner, err = d.i32(); err != nil {
					return nil, 0, 0, err
				}
			}
			ms = append(ms, parallel.Message{Kind: parallel.MsgMigrateOut, Moves: moves})
		case parallel.MsgMigrateIn:
			bc, err := d.bucketContents(net)
			if err != nil {
				return nil, 0, 0, err
			}
			ms = append(ms, parallel.Message{Kind: parallel.MsgMigrateIn, Inject: bc})
		default:
			return nil, 0, 0, d.fail(fmt.Sprintf("message kind %d", kind))
		}
	}
	if err := d.done(); err != nil {
		return nil, 0, 0, err
	}
	return ms, batch, src, nil
}
