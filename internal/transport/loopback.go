package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"mpcrete/internal/parallel"
	"mpcrete/internal/rete"
)

// Loopback is a parallel.Transport that carries every mailbox message
// over a real localhost TCP connection: each endpoint owns a
// writer/reader connection pair through one 127.0.0.1 listener, with
// every Push serialized into an ftBatch frame and a per-endpoint
// reader goroutine decoding frames into an in-process receive buffer
// (parallel.NewEndpoint) the worker drains as usual.
//
// Sends are encoded synchronously under the endpoint's write mutex, so
// the transport honors the capture contract (the runtime may reuse the
// cycle packet the moment Push returns) and preserves per-sender FIFO
// order (TCP keeps frame order; the mutex keeps frames whole). The
// receive buffer is unbounded, so socket backpressure can never
// deadlock two workers exchanging cross-product bursts: the reader
// goroutine always drains the socket.
//
// Loopback implements parallel.MigrationTransport: the batch codec
// serializes migration messages (bucket moves and extracted bucket
// contents) like any other kind, so Repartition and the online
// rebalancer work over it — the receiver injects fresh value copies,
// which is safe because memory removal matches by value.
//
// The point of Loopback is validation, not deployment: it runs the
// exact wire codec and framing of the multi-process runtime inside one
// process, where the difftest oracle can hold it against the
// sequential engine and the in-process transport, cycle by cycle.
type Loopback struct {
	net *rete.Network

	mu  sync.Mutex
	lns []net.Listener
	eps []*loopEndpoint
}

// NewLoopback creates a loopback TCP transport decoding against the
// given compiled network (the decoder resolves node ids and production
// names into it).
func NewLoopback(network *rete.Network) *Loopback {
	return &Loopback{net: network}
}

// CarriesMigration implements parallel.MigrationTransport: the wire
// codec serializes the migration protocol by value.
func (*Loopback) CarriesMigration() {}

// Open implements parallel.Transport.
func (l *Loopback) Open(workers int, opts parallel.EndpointOptions) ([]parallel.Endpoint, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: loopback listen: %w", err)
	}
	l.mu.Lock()
	l.lns = append(l.lns, ln)
	l.mu.Unlock()

	eps := make([]parallel.Endpoint, workers)
	for i := 0; i < workers; i++ {
		// Sequential dial-then-accept pairs the connections
		// deterministically.
		wc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("transport: loopback dial: %w", err)
		}
		rc, err := ln.Accept()
		if err != nil {
			wc.Close()
			l.Close()
			return nil, fmt.Errorf("transport: loopback accept: %w", err)
		}
		ep := &loopEndpoint{
			net:   l.net,
			wconn: wc,
			rconn: rc,
			inner: parallel.NewEndpoint(opts),
			opts:  opts,
		}
		go ep.readLoop()
		l.mu.Lock()
		l.eps = append(l.eps, ep)
		l.mu.Unlock()
		eps[i] = ep
	}
	return eps, nil
}

// Close implements parallel.Transport: it tears down the listener and
// any connections still open.
func (l *Loopback) Close() error {
	l.mu.Lock()
	lns, eps := l.lns, l.eps
	l.lns, l.eps = nil, nil
	l.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, ep := range eps {
		ep.Close()
	}
	return nil
}

// loopEndpoint is one worker's inbox: writers frame messages onto
// wconn; the reader goroutine decodes rconn into inner.
type loopEndpoint struct {
	net   *rete.Network
	inner parallel.Endpoint
	opts  parallel.EndpointOptions
	rconn net.Conn

	mu     sync.Mutex // serializes writers; guards wbuf, closed
	wconn  net.Conn
	wbuf   []byte
	closed bool
}

func (ep *loopEndpoint) Push(m parallel.Message, batch, src int32) {
	one := [1]parallel.Message{m}
	ep.push(one[:], batch, src, 1)
}

func (ep *loopEndpoint) PushBatch(ms []parallel.Message, batch, src int32) {
	if len(ms) == 0 {
		return
	}
	ep.push(ms, batch, src, int64(len(ms)))
}

func (ep *loopEndpoint) push(ms []parallel.Message, batch, src int32, n int64) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		ep.opts.Dropped.Add(n)
		return
	}
	buf, err := appendBatch(ep.wbuf[:0], ms, batch, src)
	if err != nil {
		ep.fail(err)
		return
	}
	ep.wbuf = buf[:0] // keep the grown capacity
	if err := writeFrame(ep.wconn, ftBatch, buf); err != nil {
		ep.fail(fmt.Errorf("transport: loopback send: %w", err))
	}
}

// fail reports a lost accepted message. Callers hold ep.mu or run on
// the reader goroutine; OnError must tolerate concurrent calls.
func (ep *loopEndpoint) fail(err error) {
	if ep.opts.OnError != nil {
		ep.opts.OnError(err)
	}
}

func (ep *loopEndpoint) readLoop() {
	// Deliver everything the socket holds into the unbounded inner
	// buffer; on clean EOF (writer side closed) close the inner
	// endpoint so the draining worker sees closed-and-empty.
	var fbuf []byte
	var ms []parallel.Message
	for {
		ft, payload, err := readFrame(ep.rconn, fbuf)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) && !ep.isClosed() {
				ep.fail(fmt.Errorf("transport: loopback recv: %w", err))
			}
			ep.inner.Close()
			ep.rconn.Close()
			return
		}
		fbuf = payload[:0]
		if ft != ftBatch {
			ep.fail(fmt.Errorf("%w: unexpected %s frame on loopback", ErrBadPayload, ft))
			ep.inner.Close()
			ep.rconn.Close()
			return
		}
		var batch, src int32
		ms, batch, src, err = decodeBatch(ep.net, payload, ms)
		if err != nil {
			ep.fail(fmt.Errorf("transport: loopback decode: %w", err))
			ep.inner.Close()
			ep.rconn.Close()
			return
		}
		ep.inner.PushBatch(ms, batch, src)
	}
}

func (ep *loopEndpoint) isClosed() bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.closed
}

func (ep *loopEndpoint) Drain(buf []parallel.Message, sbuf []parallel.RecvStamp) ([]parallel.Message, []parallel.RecvStamp, bool) {
	return ep.inner.Drain(buf, sbuf)
}

func (ep *loopEndpoint) TryDrain(buf []parallel.Message, sbuf []parallel.RecvStamp) ([]parallel.Message, []parallel.RecvStamp, bool) {
	return ep.inner.TryDrain(buf, sbuf)
}

// Close stops accepting sends and closes the write side; frames
// already on the wire are still decoded and delivered before the
// reader closes the inner endpoint (TCP delivers buffered data ahead
// of the FIN), matching the mailbox's pending-after-close semantics.
func (ep *loopEndpoint) Close() {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return
	}
	ep.closed = true
	ep.mu.Unlock()
	ep.wconn.Close()
}
