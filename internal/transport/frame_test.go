package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"mpcrete/internal/ops5"
	"mpcrete/internal/parallel"
	"mpcrete/internal/rete"
	"mpcrete/internal/workloads"
)

// mustCompile compiles a named workload outside a *testing.T (shared
// with the fuzz target's setup).
func mustCompile(name string) (*rete.Network, []rete.Change) {
	wl, err := workloads.Named(name)
	if err != nil {
		panic(err)
	}
	prog, err := ops5.ParseProgram(wl.Program)
	if err != nil {
		panic(err)
	}
	wmes, err := ops5.ParseWMEs(wl.WMEs)
	if err != nil {
		panic(err)
	}
	net, err := rete.Compile(prog.Productions)
	if err != nil {
		panic(err)
	}
	changes := make([]rete.Change, len(wmes))
	for i, w := range wmes {
		w.ID, w.TimeTag = i+1, i+1
		changes[i] = rete.Change{Tag: rete.Add, WME: w}
	}
	return net, changes
}

func frameBytes(t *testing.T, ft frameType, payload []byte) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := writeFrame(&b, ft, payload); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestFrameFaults drives the reader with damaged streams and checks
// each failure maps to its typed error, so the runtime can distinguish
// a clean shutdown from wire corruption.
func TestFrameFaults(t *testing.T) {
	payload := []byte{1, 2, 3, 4}
	good := frameBytes(t, ftBatch, payload)

	t.Run("roundtrip", func(t *testing.T) {
		ft, got, err := readFrame(bytes.NewReader(good), nil)
		if err != nil || ft != ftBatch || !bytes.Equal(got, payload) {
			t.Fatalf("round trip: ft=%v payload=%v err=%v", ft, got, err)
		}
	})
	t.Run("truncated-header", func(t *testing.T) {
		_, _, err := readFrame(bytes.NewReader(good[:3]), nil)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("truncated-payload", func(t *testing.T) {
		_, _, err := readFrame(bytes.NewReader(good[:len(good)-2]), nil)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("oversized", func(t *testing.T) {
		hdr := make([]byte, 5)
		binary.BigEndian.PutUint32(hdr, MaxFrame+1)
		hdr[4] = byte(ftBatch)
		_, _, err := readFrame(bytes.NewReader(hdr), nil)
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("got %v, want ErrFrameTooLarge", err)
		}
	})
	t.Run("zero-length", func(t *testing.T) {
		hdr := make([]byte, 4)
		_, _, err := readFrame(bytes.NewReader(hdr), nil)
		if !errors.Is(err, ErrBadPayload) {
			t.Fatalf("got %v, want ErrBadPayload", err)
		}
	})
	t.Run("unknown-type", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[4] = 0x7f
		_, _, err := readFrame(bytes.NewReader(bad), nil)
		if !errors.Is(err, ErrUnknownFrameType) {
			t.Fatalf("got %v, want ErrUnknownFrameType", err)
		}
	})
	t.Run("garbage-batch-payload", func(t *testing.T) {
		net, _ := mustCompile("blocks")
		_, _, _, err := decodeBatch(net, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, nil)
		if !errors.Is(err, ErrBadPayload) {
			t.Fatalf("got %v, want ErrBadPayload", err)
		}
	})
	t.Run("garbage-hello", func(t *testing.T) {
		_, err := decodeHello([]byte{0x01, 0x00, 0xff})
		if err == nil {
			t.Fatal("decoded garbage hello")
		}
	})
	t.Run("trailing-bytes", func(t *testing.T) {
		net, changes := mustCompile("blocks")
		ms := []parallel.Message{{Kind: parallel.MsgCycle, Cycle: &parallel.CyclePacket{Changes: changes}}}
		buf, err := appendBatch(nil, ms, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := decodeBatch(net, append(buf, 0xab), nil); !errors.Is(err, ErrBadPayload) {
			t.Fatalf("got %v, want ErrBadPayload for trailing bytes", err)
		}
	})
}

// TestBatchRoundTrip re-encodes a decoded batch and requires
// byte-identical output: the codec is canonical, which is what lets
// the CI smoke test assert conflict-set byte parity across processes.
func TestBatchRoundTrip(t *testing.T) {
	net, changes := mustCompile("blocks")
	ms := []parallel.Message{
		{Kind: parallel.MsgCycle, Cycle: &parallel.CyclePacket{Changes: changes}},
	}
	buf, err := appendBatch(nil, ms, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, batch, src, err := decodeBatch(net, buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if batch != 7 || src != 3 || len(got) != len(ms) {
		t.Fatalf("batch=%d src=%d len=%d", batch, src, len(got))
	}
	buf2, err := appendBatch(nil, got, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatal("re-encoded batch differs: codec is not canonical")
	}
}

// FuzzTransportFrame fuzzes the frame reader and batch codec: no
// input may panic or over-read, and any payload that decodes must
// re-encode canonically (decode∘encode is a fixed point).
func FuzzTransportFrame(f *testing.F) {
	net, changes := mustCompile("blocks")
	seed := []parallel.Message{
		{Kind: parallel.MsgCycle, Cycle: &parallel.CyclePacket{Changes: changes}},
	}
	if buf, err := appendBatch(nil, seed, 1, 0); err == nil {
		var b bytes.Buffer
		writeFrame(&b, ftBatch, buf)
		f.Add(b.Bytes())
	}
	if hb, err := encodeHello(nil, hello{
		workers: 2, nbuckets: 4, partition: []int{0, 1, 0, 1},
	}, net); err == nil {
		var b bytes.Buffer
		writeFrame(&b, ftHello, hb)
		f.Add(b.Bytes())
	}
	f.Add([]byte{0, 0, 0, 1, byte(ftShutdown)})
	f.Fuzz(func(t *testing.T, data []byte) {
		ft, payload, err := readFrame(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		switch ft {
		case ftBatch:
			// Adversarial payloads may use non-minimal varints, so the
			// raw input need not re-encode byte-identically. The
			// canonical property is that ENCODER output is a fixed
			// point: decode, re-encode, decode, re-encode — the two
			// encoder outputs must match exactly.
			ms, batch, src, err := decodeBatch(net, payload, nil)
			if err != nil {
				return
			}
			buf, err := appendBatch(nil, ms, batch, src)
			if err != nil {
				t.Fatalf("decoded batch failed to re-encode: %v", err)
			}
			ms2, b2, s2, err := decodeBatch(net, buf, nil)
			if err != nil {
				t.Fatalf("re-encoded batch failed to decode: %v", err)
			}
			buf2, err := appendBatch(nil, ms2, b2, s2)
			if err != nil {
				t.Fatalf("second re-encode failed: %v", err)
			}
			if b2 != batch || s2 != src || !bytes.Equal(buf, buf2) {
				t.Fatalf("encoder output is not a fixed point:\n 1: %x\n 2: %x", buf, buf2)
			}
		case ftHello:
			decodeHello(payload)
		case ftActs, ftRelay:
			var d dec
			d.b = payload
			if ft == ftRelay {
				if _, err := d.i32(); err != nil {
					return
				}
			} else {
				if _, err := d.i32(); err != nil {
					return
				}
				if _, err := d.i32(); err != nil {
					return
				}
			}
			d.actList(net, nil)
		}
	})
}
