package transport

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"time"

	"mpcrete/internal/rete"
)

// The worker half of the multi-process star topology: one match
// process owning a partition slice of the hash-bucket space, mirroring
// parallel.worker message for message. It dials the control process,
// receives the compiled network in the hello handshake, and then runs
// the turn protocol: each incoming ftCycle/ftActs frame is one turn —
// constant tests (broadcast mode) or direct enqueue (routed mode), a
// breadth-first local drain identical to the in-process worker's, one
// coalesced ftRelay frame per remote destination, and a closing ftTurn
// frame carrying the processed count, the echoed recv stamps, the
// turn's measurement aggregate, and the conflict-set deltas.
//
// Frame order is the termination-detection argument: relays precede
// the turn frame on the same TCP stream, so the control process
// registers forwarded work (counter.Add, AddSent) before it
// deregisters the turn's processed messages (AddRecv, counter.Add(-n))
// — the exact Add-before-visible / Done-after-processed discipline the
// in-process runtime keeps with function-call ordering.

// protoVersion is the handshake protocol version; a mismatch aborts
// the handshake rather than mis-decoding frames. Version 2 added the
// migration protocol (ftRepart/ftBucketRelay/ftBucket), the trackLoads
// hello flag, and the per-bucket load section of ftTurn.
const protoVersion = 2

// wireAct is one routed activation with its routing metadata.
type wireAct struct {
	bucket int32
	depth  int32
	act    rete.Activation
}

func (e *enc) actList(acts []wireAct) {
	e.count(len(acts))
	for i := range acts {
		e.i32(acts[i].bucket)
		e.i32(acts[i].depth)
		e.activation(acts[i].act)
	}
}

func (d *dec) actList(net *rete.Network, buf []wireAct) ([]wireAct, error) {
	n, err := d.count(1 << 24)
	if err != nil {
		return nil, err
	}
	buf = buf[:0]
	for i := 0; i < n; i++ {
		var wa wireAct
		if wa.bucket, err = d.i32(); err != nil {
			return nil, err
		}
		if wa.depth, err = d.i32(); err != nil {
			return nil, err
		}
		if wa.act, err = d.activation(net); err != nil {
			return nil, err
		}
		buf = append(buf, wa)
	}
	return buf, nil
}

// turnAgg is the worker-side measurement aggregate shipped home in
// each ftTurn frame (merged into the control's flight recorder via
// obs.TrackRecorder.MergeRemote).
type turnAgg struct {
	handles  int64
	flushes  int64
	maxDepth int32
}

// hello is the decoded handshake.
type hello struct {
	id         int
	workers    int
	nbuckets   int
	routeRoots bool
	// trackLoads asks the worker to count activations per bucket and
	// report nonzero counts in each ftTurn frame (the control plane's
	// rebalance detector feeds on them).
	trackLoads bool
	partition  []int
	net        *rete.Network
}

func encodeHello(buf []byte, h hello, network *rete.Network) ([]byte, error) {
	e := enc{buf: buf}
	e.u64(protoVersion)
	e.int(h.id)
	e.int(h.workers)
	e.int(h.nbuckets)
	e.bool(h.routeRoots)
	e.bool(h.trackLoads)
	e.count(len(h.partition))
	for _, owner := range h.partition {
		e.int(owner)
	}
	var nb bytes.Buffer
	if err := rete.EncodeNetwork(&nb, network); err != nil {
		return nil, fmt.Errorf("transport: encoding network for handshake: %w", err)
	}
	e.count(nb.Len())
	e.buf = append(e.buf, nb.Bytes()...)
	return e.buf, nil
}

func decodeHello(payload []byte) (hello, error) {
	var h hello
	d := dec{b: payload}
	ver, err := d.u64()
	if err != nil {
		return h, err
	}
	if ver != protoVersion {
		return h, fmt.Errorf("%w: protocol version %d, want %d", ErrBadPayload, ver, protoVersion)
	}
	if h.id, err = d.int(); err != nil {
		return h, err
	}
	if h.workers, err = d.int(); err != nil {
		return h, err
	}
	if h.nbuckets, err = d.int(); err != nil {
		return h, err
	}
	if h.routeRoots, err = d.bool(); err != nil {
		return h, err
	}
	if h.trackLoads, err = d.bool(); err != nil {
		return h, err
	}
	if h.id < 0 || h.workers < 1 || h.id >= h.workers || h.nbuckets < 1 {
		return h, fmt.Errorf("%w: topology id=%d workers=%d nbuckets=%d", ErrBadPayload, h.id, h.workers, h.nbuckets)
	}
	np, err := d.count(1 << 24)
	if err != nil {
		return h, err
	}
	if np != h.nbuckets {
		return h, fmt.Errorf("%w: partition covers %d buckets, want %d", ErrBadPayload, np, h.nbuckets)
	}
	h.partition = make([]int, np)
	for i := range h.partition {
		if h.partition[i], err = d.int(); err != nil {
			return h, err
		}
		if h.partition[i] < 0 || h.partition[i] >= h.workers {
			return h, fmt.Errorf("%w: bucket %d owned by worker %d of %d", ErrBadPayload, i, h.partition[i], h.workers)
		}
	}
	nb, err := d.count(1 << 26)
	if err != nil {
		return h, err
	}
	if len(d.b) < nb {
		return h, d.fail("network bytes")
	}
	network, err := rete.DecodeNetwork(bytes.NewReader(d.b[:nb]))
	if err != nil {
		return h, fmt.Errorf("%w: decoding network: %v", ErrBadPayload, err)
	}
	h.net = network
	return h, nil
}

// Serve dials the control address, retrying until the timeout (worker
// processes typically race the control's Listen), and runs the worker
// protocol until shutdown (nil) or a fatal error.
func Serve(addr string, dialTimeout time.Duration) error {
	deadline := time.Now().Add(dialTimeout)
	var conn net.Conn
	var err error
	for {
		conn, err = net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: dialing control at %s: %w", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	return ServeConn(conn)
}

// ServeConn runs the worker protocol on an established control
// connection. It returns nil on a clean shutdown frame.
func ServeConn(conn net.Conn) error {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)

	ft, payload, err := readFrame(br, nil)
	if err != nil {
		return fmt.Errorf("transport: worker handshake: %w", err)
	}
	if ft != ftHello {
		return fmt.Errorf("%w: worker expected hello, got %s", ErrBadPayload, ft)
	}
	h, err := decodeHello(payload)
	if err != nil {
		return fmt.Errorf("transport: worker handshake: %w", err)
	}
	w := &wireWorker{
		hello:   h,
		proc:    rete.NewProcessor(h.net, h.nbuckets),
		outBufs: make([][]wireAct, h.workers),
	}
	if h.trackLoads {
		w.bucketLoad = make([]int64, h.nbuckets)
	}

	var ready enc
	ready.int(h.id)
	if err := writeFrame(bw, ftReady, ready.buf); err != nil {
		return fmt.Errorf("transport: worker ready: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("transport: worker ready: %w", err)
	}

	var fbuf []byte
	for {
		ft, payload, err := readFrame(br, fbuf)
		if err != nil {
			return fmt.Errorf("transport: worker %d read: %w", h.id, err)
		}
		fbuf = payload[:0]
		switch ft {
		case ftShutdown:
			return nil
		case ftCycle, ftActs:
			if err := w.turn(ft, payload, bw); err != nil {
				return fmt.Errorf("transport: worker %d turn: %w", h.id, err)
			}
			if err := bw.Flush(); err != nil {
				return fmt.Errorf("transport: worker %d write: %w", h.id, err)
			}
		case ftRepart:
			if err := w.repartition(payload, bw); err != nil {
				return fmt.Errorf("transport: worker %d repartition: %w", h.id, err)
			}
			if err := bw.Flush(); err != nil {
				return fmt.Errorf("transport: worker %d write: %w", h.id, err)
			}
		case ftBucket:
			if err := w.injectBucket(payload, bw); err != nil {
				return fmt.Errorf("transport: worker %d bucket inject: %w", h.id, err)
			}
			if err := bw.Flush(); err != nil {
				return fmt.Errorf("transport: worker %d write: %w", h.id, err)
			}
		default:
			return fmt.Errorf("%w: worker got unexpected %s frame", ErrBadPayload, ft)
		}
	}
}

// wireWorker is the match state of one worker process.
type wireWorker struct {
	hello
	proc *rete.Processor

	localQ      []wireAct
	rootScratch []rete.Activation
	outBufs     [][]wireAct // per-destination coalescing buffers
	instBuf     []rete.InstChange
	actScratch  []wireAct
	ebuf        []byte

	agg     turnAgg
	pending int // acts buffered in outBufs this turn

	// bucketLoad counts activations per bucket since the last turn
	// frame (nil unless hello.trackLoads); dirty lists the nonzero
	// entries so the turn encoder never scans the whole bucket space.
	bucketLoad []int64
	dirty      []int32
}

// turn handles one incoming protocol frame end to end and writes the
// relay and turn frames. Mirrors worker.loop in internal/parallel.
func (w *wireWorker) turn(ft frameType, payload []byte, out *bufio.Writer) error {
	d := dec{b: payload}
	batch, err := d.i32()
	if err != nil {
		return err
	}
	src, err := d.i32()
	if err != nil {
		return err
	}
	var n int // protocol messages processed this turn
	switch ft {
	case ftCycle:
		nch, err := d.count(1 << 24)
		if err != nil {
			return err
		}
		for i := 0; i < nch; i++ {
			ch, err := d.change()
			if err != nil {
				return err
			}
			// Broadcast mode: every worker runs the constant tests and
			// keeps the roots it owns. All roots of the turn are stored
			// before any is expanded (breadth-first; see drainLocal).
			w.rootScratch = w.proc.RootActivationsInto(ch, w.rootScratch[:0])
			for _, act := range w.rootScratch {
				b := w.proc.Bucket(act)
				if w.partition[b] == w.id {
					w.localQ = append(w.localQ, wireAct{bucket: int32(b), depth: 1, act: act})
				}
			}
		}
		n = 1
	case ftActs:
		if w.actScratch, err = d.actList(w.net, w.actScratch); err != nil {
			return err
		}
		w.localQ = append(w.localQ, w.actScratch...)
		n = len(w.actScratch)
	}
	if err := d.done(); err != nil {
		return err
	}
	w.drainLocal()

	// One coalesced relay frame per destination, then the turn frame —
	// in that order, on this one stream (see the package comment on
	// termination accounting).
	if w.pending > 0 {
		w.agg.flushes++
		for dst, buf := range w.outBufs {
			if len(buf) == 0 {
				continue
			}
			e := enc{buf: w.ebuf[:0]}
			e.i32(int32(dst))
			e.actList(buf)
			w.ebuf = e.buf[:0]
			if err := writeFrame(out, ftRelay, e.buf); err != nil {
				return err
			}
			w.outBufs[dst] = buf[:0]
		}
		w.pending = 0
	}

	return w.writeTurn(out, n, true, batch, src)
}

// writeTurn ends a turn on the wire: processed count, recv stamps
// (none for migration acks — they carry no causal batch), measurement
// aggregate, conflict-set deltas, and the per-bucket load section.
func (w *wireWorker) writeTurn(out *bufio.Writer, n int, stamped bool, batch, src int32) error {
	e := enc{buf: w.ebuf[:0]}
	e.int(n)
	if stamped {
		e.count(1)
		e.i32(batch)
		e.i32(src)
		e.i32(int32(n))
	} else {
		e.count(0)
	}
	e.i64(w.agg.handles)
	e.i64(w.agg.flushes)
	e.i32(w.agg.maxDepth)
	e.count(len(w.instBuf))
	for i := range w.instBuf {
		e.instChange(w.instBuf[i])
	}
	e.count(len(w.dirty))
	for _, b := range w.dirty {
		e.i32(b)
		e.i64(w.bucketLoad[b])
		w.bucketLoad[b] = 0
	}
	w.dirty = w.dirty[:0]
	w.ebuf = e.buf[:0]
	w.agg = turnAgg{}
	w.instBuf = w.instBuf[:0]
	return writeFrame(out, ftTurn, e.buf)
}

// repartition handles an ftRepart order: switch to the new partition,
// extract every listed bucket, ship each nonempty one through the
// control process (ftBucketRelay precedes the closing ftTurn on this
// stream, so the control registers the forwarded work before it
// deregisters this turn — the same ordering argument as relays).
func (w *wireWorker) repartition(payload []byte, out *bufio.Writer) error {
	d := dec{b: payload}
	np, err := d.count(1 << 24)
	if err != nil {
		return err
	}
	if np != w.nbuckets {
		return fmt.Errorf("%w: repartition covers %d buckets, want %d", ErrBadPayload, np, w.nbuckets)
	}
	newPart := make([]int, np)
	for i := range newPart {
		if newPart[i], err = d.int(); err != nil {
			return err
		}
		if newPart[i] < 0 || newPart[i] >= w.workers {
			return fmt.Errorf("%w: bucket %d owned by worker %d of %d", ErrBadPayload, i, newPart[i], w.workers)
		}
	}
	nm, err := d.count(1 << 24)
	if err != nil {
		return err
	}
	type move struct{ bucket, dst int32 }
	moves := make([]move, nm)
	for i := range moves {
		if moves[i].bucket, err = d.i32(); err != nil {
			return err
		}
		if moves[i].dst, err = d.i32(); err != nil {
			return err
		}
	}
	if err := d.done(); err != nil {
		return err
	}
	w.partition = newPart
	for _, mv := range moves {
		bc := w.proc.ExtractBucket(int(mv.bucket))
		if bc.Entries() == 0 {
			continue // nothing stored; ownership transfer is free
		}
		e := enc{buf: w.ebuf[:0]}
		e.i32(mv.dst)
		e.int(bc.Entries())
		e.bucketContents(bc)
		w.ebuf = e.buf[:0]
		if err := writeFrame(out, ftBucketRelay, e.buf); err != nil {
			return err
		}
	}
	return w.writeTurn(out, 1, false, 0, 0)
}

// injectBucket handles an ftBucket delivery: install the migrated
// contents and close the turn.
func (w *wireWorker) injectBucket(payload []byte, out *bufio.Writer) error {
	d := dec{b: payload}
	bc, err := d.bucketContents(w.net)
	if err != nil {
		return err
	}
	if err := d.done(); err != nil {
		return err
	}
	w.proc.InjectBucket(bc)
	return w.writeTurn(out, 1, false, 0, 0)
}

// drainLocal expands locally-owned activations breadth-first, exactly
// as the in-process worker does; remote successors coalesce into
// outBufs.
func (w *wireWorker) drainLocal() {
	for qi := 0; qi < len(w.localQ); qi++ {
		la := w.localQ[qi]
		w.processOne(la.act, int(la.bucket), la.depth)
	}
	w.localQ = w.localQ[:0]
}

func (w *wireWorker) processOne(act rete.Activation, bucket int, depth int32) {
	if act.Node.Kind == rete.KindProduction {
		w.instBuf = append(w.instBuf, w.proc.BuildInst(act))
		return
	}
	w.agg.handles++
	if depth > w.agg.maxDepth {
		w.agg.maxDepth = depth
	}
	if w.bucketLoad != nil {
		if w.bucketLoad[bucket] == 0 {
			w.dirty = append(w.dirty, int32(bucket))
		}
		w.bucketLoad[bucket]++
	}
	w.proc.ProcessAt(act, bucket,
		func(child rete.Activation) {
			if child.Node.Kind == rete.KindProduction {
				w.instBuf = append(w.instBuf, w.proc.BuildInst(child))
				return
			}
			b := w.proc.Bucket(child)
			owner := w.partition[b]
			if owner == w.id {
				w.localQ = append(w.localQ, wireAct{bucket: int32(b), depth: depth + 1, act: child})
				return
			}
			w.outBufs[owner] = append(w.outBufs[owner], wireAct{bucket: int32(b), depth: depth + 1, act: child})
			w.pending++
		},
		func(rete.InstChange) {
			panic("transport: unexpected instantiation emission")
		})
}
