package transport

import (
	"fmt"
	"testing"

	"mpcrete/internal/obs"
	"mpcrete/internal/ops5"
	"mpcrete/internal/parallel"
	"mpcrete/internal/rete"
	"mpcrete/internal/workloads"
)

// compileWorkload compiles a named workload and returns its network
// plus the initial changes.
func compileWorkload(t *testing.T, name string) (*rete.Network, []rete.Change) {
	t.Helper()
	wl, err := workloads.Named(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ops5.ParseProgram(wl.Program)
	if err != nil {
		t.Fatal(err)
	}
	wmes, err := ops5.ParseWMEs(wl.WMEs)
	if err != nil {
		t.Fatal(err)
	}
	net, err := rete.Compile(prog.Productions)
	if err != nil {
		t.Fatal(err)
	}
	changes := make([]rete.Change, len(wmes))
	for i, w := range wmes {
		w.ID, w.TimeTag = i+1, i+1
		changes[i] = rete.Change{Tag: rete.Add, WME: w}
	}
	return net, changes
}

func instKeys(insts []rete.InstChange) []string {
	keys := make([]string, len(insts))
	for i, ic := range insts {
		keys[i] = ic.Tag.String() + ic.Key()
	}
	return keys
}

// TestLoopbackParity holds the loopback TCP transport against the
// in-process reference: same network, same changes, identical netted
// conflict sets, in both broadcast and routed-roots modes.
func TestLoopbackParity(t *testing.T) {
	for _, wl := range []string{"blocks", "rubik-like"} {
		for _, routed := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/routed=%v", wl, routed), func(t *testing.T) {
				net, changes := compileWorkload(t, wl)
				ref, err := parallel.New(net, parallel.Options{Workers: 2, RouteRoots: routed})
				if err != nil {
					t.Fatal(err)
				}
				defer ref.Close()
				tcp, err := parallel.New(net, parallel.Options{
					Workers: 2, RouteRoots: routed, Transport: NewLoopback(net),
				})
				if err != nil {
					t.Fatal(err)
				}
				defer tcp.Close()

				want := instKeys(ref.Apply(changes))
				got := instKeys(tcp.Apply(changes))
				if len(want) == 0 {
					t.Fatalf("workload %s produced no instantiations; vacuous test", wl)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("conflict sets diverge\n tcp: %v\n ref: %v", got, want)
				}

				// Deletions must net against the stored state too.
				del := []rete.Change{{Tag: rete.Delete, WME: changes[0].WME}}
				want = instKeys(ref.Apply(del))
				got = instKeys(tcp.Apply(del))
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("deletion cycle diverges\n tcp: %v\n ref: %v", got, want)
				}
			})
		}
	}
}

// TestLoopbackStamps verifies causal batch stamps survive the wire:
// with a flight recorder attached, the per-cycle aggregates of a
// loopback run account every sent message as received.
func TestLoopbackStamps(t *testing.T) {
	net, changes := compileWorkload(t, "blocks")
	causal := parallel.NewFlightRecorder(2, 0, 0, rete.DefaultNBuckets)
	rt, err := parallel.New(net, parallel.Options{
		Workers: 2, Transport: NewLoopback(net), Causal: causal,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.Apply(changes)
	dump := rt.FlightDump()
	if len(dump.Cycles) != 1 {
		t.Fatalf("got %d cycle records, want 1", len(dump.Cycles))
	}
	tot := dump.Cycles[0].Total()
	if tot.Sends == 0 || tot.Sends != tot.Recvs {
		t.Fatalf("cycle aggregate sends=%d recvs=%d; want equal and nonzero", tot.Sends, tot.Recvs)
	}
	// Each recv event must carry a stamp that joins a send event.
	sends := map[int32]bool{}
	for _, tr := range dump.Tracks {
		for _, ev := range tr.Events {
			if ev.Kind == obs.EvSend && ev.Batch != 0 {
				sends[ev.Batch] = true
			}
		}
	}
	recvs := 0
	for _, tr := range dump.Tracks {
		for _, ev := range tr.Events {
			if ev.Kind == obs.EvRecv {
				recvs++
				if !sends[ev.Batch] {
					t.Fatalf("recv stamp %d has no matching send", ev.Batch)
				}
			}
		}
	}
	if recvs == 0 {
		t.Fatal("no recv events recorded")
	}
}

// TestLoopbackPostCloseDrop mirrors the mailbox dropped_post_close
// semantics: sends after Close are dropped and counted, not delivered
// and not fatal.
func TestLoopbackPostCloseDrop(t *testing.T) {
	net, _ := compileWorkload(t, "blocks")
	reg := obs.NewRegistry()
	dropped := reg.Counter("parallel.dropped_post_close")
	lb := NewLoopback(net)
	eps, err := lb.Open(1, parallel.EndpointOptions{Dropped: dropped})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()
	ep := eps[0]
	ep.Push(parallel.Message{Kind: parallel.MsgAct, Act: rightAct(net)}, 0, 0)
	ep.Close()
	ep.Push(parallel.Message{Kind: parallel.MsgAct, Act: rightAct(net)}, 0, 0)
	ep.PushBatch([]parallel.Message{{Kind: parallel.MsgAct, Act: rightAct(net)}, {Kind: parallel.MsgAct, Act: rightAct(net)}}, 0, 0)
	if got := dropped.Value(); got != 3 {
		t.Fatalf("dropped counter = %d, want 3", got)
	}
	// The pre-close message is still delivered before closure.
	batch, _, ok := ep.Drain(nil, nil)
	if !ok || len(batch) != 1 {
		t.Fatalf("drain after close: ok=%v len=%d, want the one pre-close message", ok, len(batch))
	}
	if _, _, ok := ep.Drain(nil, nil); ok {
		t.Fatal("second drain should report closed")
	}
}

// rightAct builds a minimal right activation for plumbing tests.
func rightAct(net *rete.Network) rete.Activation {
	var node *rete.Node
	for _, n := range net.Nodes {
		if len(n.Succs) == 0 && n.Kind != rete.KindProduction {
			node = n
			break
		}
	}
	if node == nil {
		node = net.Nodes[0]
	}
	return rete.Activation{
		Node: node,
		Side: rete.Right,
		Tag:  rete.Add,
		WME:  ops5.NewWME("probe", "v", ops5.N(1)),
	}
}
