package rete

import "fmt"

// Excise removes a production from the network (the OPS5 excise
// action): its terminal node is detached, and two-input or dummy nodes
// left without successors are garbage-collected recursively (shared
// prefixes survive as long as any other production uses them).
//
// Token memories live in matchers, not the network; entries belonging
// to excised nodes become unreachable and are never consulted again
// (their buckets are keyed by node identity). Matcher state therefore
// stays consistent without flushing.
func (net *Network) Excise(name string) error {
	info, ok := net.Prods[name]
	if !ok {
		return fmt.Errorf("rete: no production %q", name)
	}
	net.detach(info.Node)
	delete(net.Prods, name)
	for i, n := range net.ProdOrder {
		if n == name {
			net.ProdOrder = append(net.ProdOrder[:i], net.ProdOrder[i+1:]...)
			break
		}
	}
	return nil
}

// detach removes a node from its left input's successor list and from
// every alpha route, then garbage-collects newly childless ancestors.
func (net *Network) detach(n *Node) {
	parent := n.Parent
	if parent != nil {
		for i, s := range parent.Succs {
			if s == n {
				parent.Succs = append(parent.Succs[:i], parent.Succs[i+1:]...)
				break
			}
		}
	}
	for _, a := range net.Alphas {
		for i := 0; i < len(a.Routes); {
			if a.Routes[i].Node == n {
				a.Routes = append(a.Routes[:i], a.Routes[i+1:]...)
			} else {
				i++
			}
		}
	}
	n.detached = true
	// A two-input or dummy node with no remaining successors produces
	// nothing; collect it (unless another production's terminal hangs
	// off it, which "no successors" already excludes).
	if parent != nil && len(parent.Succs) == 0 && parent.Kind != KindProduction {
		net.detach(parent)
	}
}

// Detached reports whether the node has been excised from the network.
func (n *Node) Detached() bool { return n.detached }
