package rete

import (
	"fmt"
	"math/rand"
	"testing"

	"mpcrete/internal/ops5"
)

// harness couples a matcher with an accumulated conflict set and a
// mirror of working memory for naive comparison.
type harness struct {
	t       *testing.T
	prods   []*ops5.Production
	matcher *Matcher
	wm      map[int]*ops5.WME
	cs      map[string]bool
	nextID  int
}

func newHarness(t *testing.T, nbuckets int, srcs ...string) *harness {
	t.Helper()
	var prods []*ops5.Production
	for _, src := range srcs {
		p, err := ops5.ParseProduction(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		prods = append(prods, p)
	}
	net, err := Compile(prods)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return &harness{
		t:       t,
		prods:   prods,
		matcher: NewMatcher(net, MatcherOptions{NBuckets: nbuckets}),
		wm:      map[int]*ops5.WME{},
		cs:      map[string]bool{},
		nextID:  1,
	}
}

func (h *harness) apply(changes ...Change) {
	h.t.Helper()
	for _, ch := range changes {
		if ch.Tag == Add {
			h.wm[ch.WME.ID] = ch.WME
		} else {
			delete(h.wm, ch.WME.ID)
		}
	}
	for _, ic := range h.matcher.Apply(changes) {
		key := ic.Key()
		if ic.Tag == Add {
			if h.cs[key] {
				h.t.Fatalf("duplicate instantiation %s", key)
			}
			h.cs[key] = true
		} else {
			if !h.cs[key] {
				h.t.Fatalf("deletion of absent instantiation %s", key)
			}
			delete(h.cs, key)
		}
	}
}

func (h *harness) add(class string, pairs ...any) *ops5.WME {
	w := ops5.NewWME(class, pairs...)
	w.ID = h.nextID
	w.TimeTag = h.nextID
	h.nextID++
	h.apply(Change{Tag: Add, WME: w})
	return w
}

func (h *harness) remove(w *ops5.WME) { h.apply(Change{Tag: Delete, WME: w}) }

// checkNaive compares the accumulated conflict set with the
// brute-force reference over the current working memory.
func (h *harness) checkNaive() {
	h.t.Helper()
	wm := make([]*ops5.WME, 0, len(h.wm))
	for _, w := range h.wm {
		wm = append(wm, w)
	}
	want := naiveMatch(h.prods, wm)
	for k := range want {
		if !h.cs[k] {
			h.t.Fatalf("rete missing instantiation %s (have %v)", k, keys(h.cs))
		}
	}
	for k := range h.cs {
		if !want[k] {
			h.t.Fatalf("rete has spurious instantiation %s (want %v)", k, keys(want))
		}
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

const blocksProd = `
(p clear-blue
    (block ^name <b> ^color blue)
    (block ^on <b>)
    (hand ^state free)
    -->
    (remove 2))
`

func TestMatcherBasicJoin(t *testing.T) {
	h := newHarness(t, 64, blocksProd)
	b1 := h.add("block", "name", "b1", "color", "blue", "on", "table")
	h.add("block", "name", "b2", "on", "b1")
	if len(h.cs) != 0 {
		t.Fatalf("premature instantiation: %v", keys(h.cs))
	}
	hand := h.add("hand", "state", "free")
	if len(h.cs) != 1 {
		t.Fatalf("conflict set = %v, want 1 instantiation", keys(h.cs))
	}
	h.checkNaive()

	// Deleting the hand wme must retract the instantiation.
	h.remove(hand)
	if len(h.cs) != 0 {
		t.Fatalf("instantiation not retracted: %v", keys(h.cs))
	}
	h.checkNaive()

	// Re-adding restores it; removing the blue block retracts again.
	h.add("hand", "state", "free")
	if len(h.cs) != 1 {
		t.Fatal("instantiation not restored")
	}
	h.remove(b1)
	if len(h.cs) != 0 {
		t.Fatalf("retraction after block removal failed: %v", keys(h.cs))
	}
	h.checkNaive()
}

func TestMatcherSelfJoinSameWME(t *testing.T) {
	// One wme may match several CEs of the same production.
	h := newHarness(t, 16, `
(p pair (item ^v <x>) (item ^v <x>) --> (halt))
`)
	h.add("item", "v", 1)
	// (w1,w1) is a valid instantiation.
	if len(h.cs) != 1 {
		t.Fatalf("conflict set = %v, want [(w1,w1)]", keys(h.cs))
	}
	h.add("item", "v", 1)
	// (w1,w1) (w1,w2) (w2,w1) (w2,w2).
	if len(h.cs) != 4 {
		t.Fatalf("conflict set size = %d, want 4: %v", len(h.cs), keys(h.cs))
	}
	h.checkNaive()
}

func TestMatcherNegation(t *testing.T) {
	h := newHarness(t, 16, `
(p grab
    (block ^name <b>)
    -(hand ^holding <b>)
    -->
    (halt))
`)
	h.add("block", "name", "b1")
	if len(h.cs) != 1 {
		t.Fatalf("negated CE with empty memory should match, cs=%v", keys(h.cs))
	}
	hold := h.add("hand", "holding", "b1")
	if len(h.cs) != 0 {
		t.Fatalf("instantiation should retract when negation matches, cs=%v", keys(h.cs))
	}
	h.checkNaive()
	h.remove(hold)
	if len(h.cs) != 1 {
		t.Fatal("instantiation should return when blocker removed")
	}
	// A different block is unaffected by a hold on b1.
	h.add("hand", "holding", "b2")
	if len(h.cs) != 1 {
		t.Fatalf("unrelated hold retracted instantiation, cs=%v", keys(h.cs))
	}
	h.checkNaive()
}

func TestMatcherNegationFirstCE(t *testing.T) {
	// A production may begin with a negated CE.
	h := newHarness(t, 16, `
(p idle -(task ^state active) (clock ^t <t>) --> (halt))
`)
	h.add("clock", "t", 0)
	if len(h.cs) != 1 {
		t.Fatal("want instantiation with no active tasks")
	}
	task := h.add("task", "state", "active")
	if len(h.cs) != 0 {
		t.Fatal("active task should block")
	}
	h.remove(task)
	if len(h.cs) != 1 {
		t.Fatal("instantiation should come back")
	}
	h.checkNaive()
}

func TestMatcherPredicates(t *testing.T) {
	h := newHarness(t, 16, `
(p bigger (num ^v <x>) (num ^v > <x> ^v <= 10) --> (halt))
`)
	h.add("num", "v", 3)
	h.add("num", "v", 7)
	h.add("num", "v", 12)
	// pairs (x=3,7): 7>3 ok; (3,12):12>10 fails; (7,12) fails; (7,3) no; ...
	if len(h.cs) != 1 {
		t.Fatalf("cs = %v, want exactly (3,7)", keys(h.cs))
	}
	h.checkNaive()
}

func TestMatcherCrossProductNoEqTests(t *testing.T) {
	// A join with no variable tested hashes everything to one bucket
	// (the Tourney pathology) but must still be correct.
	h := newHarness(t, 64, `
(p cross (a ^x <u>) (b ^y <w>) --> (halt))
`)
	for i := 0; i < 5; i++ {
		h.add("a", "x", i)
	}
	for j := 0; j < 4; j++ {
		h.add("b", "y", j)
	}
	if len(h.cs) != 20 {
		t.Fatalf("cross product size = %d, want 20", len(h.cs))
	}
	h.checkNaive()
	// The join node must have no equality tests.
	net := h.matcher.Network()
	for _, n := range net.Nodes {
		if n.Kind == KindJoin && len(n.EqTests) != 0 {
			t.Errorf("node %d has unexpected eq tests %v", n.ID, n.EqTests)
		}
	}
}

func TestHashKeyConsistentAcrossSides(t *testing.T) {
	// A left token and right wme that pass the equality tests must
	// hash to the same key.
	p, err := ops5.ParseProduction(`(p x (a ^k <v>) (b ^k <v>) --> (halt))`)
	if err != nil {
		t.Fatal(err)
	}
	net, err := Compile([]*ops5.Production{p})
	if err != nil {
		t.Fatal(err)
	}
	var join *Node
	for _, n := range net.Nodes {
		if n.Kind == KindJoin {
			join = n
		}
	}
	if join == nil {
		t.Fatal("no join node")
	}
	for i := 0; i < 50; i++ {
		val := ops5.N(float64(i))
		wa := ops5.NewWME("a", "k", val)
		wb := ops5.NewWME("b", "k", val)
		lt := &Token{WMEs: []*ops5.WME{wa}}
		lk := HashKey(join, Left, lt, nil)
		rk := HashKey(join, Right, nil, wb)
		if lk != rk {
			t.Fatalf("hash mismatch for value %v: left %x right %x", val, lk, rk)
		}
	}
	// Different values should (generally) hash differently.
	k1 := HashKey(join, Right, nil, ops5.NewWME("b", "k", 1))
	k2 := HashKey(join, Right, nil, ops5.NewWME("b", "k", 2))
	if k1 == k2 {
		t.Error("distinct values collided (possible but FNV should separate 1 and 2)")
	}
}

// TestMatcherRandomizedDifferential drives random add/delete sequences
// through randomly generated productions and checks the conflict set
// against the brute-force matcher after every cycle, for both hashed
// and linear (single-bucket) memories.
func TestMatcherRandomizedDifferential(t *testing.T) {
	for _, nbuckets := range []int{1, 64} {
		nbuckets := nbuckets
		t.Run(fmt.Sprintf("buckets=%d", nbuckets), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 30; trial++ {
				srcs := randomProductions(rng, 1+rng.Intn(4))
				h := newHarness(t, nbuckets, srcs...)
				var live []*ops5.WME
				for step := 0; step < 40; step++ {
					if len(live) > 0 && rng.Intn(3) == 0 {
						i := rng.Intn(len(live))
						h.remove(live[i])
						live = append(live[:i], live[i+1:]...)
					} else {
						w := h.add(
							[]string{"a", "b", "c"}[rng.Intn(3)],
							"x", rng.Intn(3), "y", rng.Intn(3),
						)
						live = append(live, w)
					}
					h.checkNaive()
				}
			}
		})
	}
}

// randomProductions generates small random but valid productions over
// classes a/b/c, attributes x/y, variables u/v, and values 0..2.
func randomProductions(rng *rand.Rand, n int) []string {
	classes := []string{"a", "b", "c"}
	vars := []string{"<u>", "<v>"}
	preds := []string{"", "<> ", "> ", "< "}
	var srcs []string
	for i := 0; i < n; i++ {
		nce := 1 + rng.Intn(3)
		src := fmt.Sprintf("(p r%d", i)
		for c := 0; c < nce; c++ {
			neg := c > 0 && rng.Intn(4) == 0
			ce := ""
			if neg {
				ce = "-"
			}
			ce += "(" + classes[rng.Intn(3)]
			for _, attr := range []string{"x", "y"} {
				switch rng.Intn(4) {
				case 0: // skip attribute
				case 1:
					ce += fmt.Sprintf(" ^%s %d", attr, rng.Intn(3))
				default:
					ce += fmt.Sprintf(" ^%s %s%s", attr, preds[rng.Intn(4)], vars[rng.Intn(2)])
				}
			}
			ce += ")"
			src += " " + ce
		}
		src += " --> (halt))"
		srcs = append(srcs, src)
	}
	return srcs
}
