package rete

import (
	"testing"

	"mpcrete/internal/ops5"
)

func mustParse(t *testing.T, srcs ...string) []*ops5.Production {
	t.Helper()
	var prods []*ops5.Production
	for _, src := range srcs {
		p, err := ops5.ParseProduction(src)
		if err != nil {
			t.Fatal(err)
		}
		prods = append(prods, p)
	}
	return prods
}

func TestCompileSharing(t *testing.T) {
	// Two productions with an identical two-CE prefix share the alpha
	// patterns and the first join node.
	prods := mustParse(t,
		`(p p1 (a ^x <v>) (b ^x <v>) (c ^k 1) --> (halt))`,
		`(p p2 (a ^x <v>) (b ^x <v>) (c ^k 2) --> (halt))`,
	)
	net, err := Compile(prods)
	if err != nil {
		t.Fatal(err)
	}
	s := net.Stats()
	// join(a,b) shared; join(.,c ^k 1) and join(.,c ^k 2) distinct.
	if s.JoinNodes != 3 {
		t.Errorf("join nodes = %d, want 3 (one shared prefix)", s.JoinNodes)
	}
	if s.ProductionNodes != 2 {
		t.Errorf("production nodes = %d, want 2", s.ProductionNodes)
	}
	// Alpha patterns: a, b shared across productions; c^k1, c^k2 distinct.
	if s.AlphaPatterns != 4 {
		t.Errorf("alpha patterns = %d, want 4", s.AlphaPatterns)
	}

	unshared, err := CompileWith(prods, CompileOptions{DisableSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	us := unshared.Stats()
	if us.JoinNodes != 4 {
		t.Errorf("unshared join nodes = %d, want 4", us.JoinNodes)
	}
	if us.AlphaPatterns != 6 {
		t.Errorf("unshared alpha patterns = %d, want 6", us.AlphaPatterns)
	}
}

func TestCompileRejectsDuplicateNames(t *testing.T) {
	prods := mustParse(t,
		`(p same (a ^x 1) --> (halt))`,
		`(p same (a ^x 2) --> (halt))`,
	)
	if _, err := Compile(prods); err == nil {
		t.Fatal("expected duplicate-name error")
	}
}

func TestCompileVarDefs(t *testing.T) {
	prods := mustParse(t,
		`(p p1 (a ^x <v> ^y <w>) (b ^x <v> ^y <z>) --> (make c ^x <z> ^y <w>))`,
	)
	net, err := Compile(prods)
	if err != nil {
		t.Fatal(err)
	}
	info := net.Prods["p1"]
	want := map[string]VarDef{
		"v": {OrigCE: 0, Attr: "x"},
		"w": {OrigCE: 0, Attr: "y"},
		"z": {OrigCE: 1, Attr: "y"},
	}
	for v, d := range want {
		if info.VarDefs[v] != d {
			t.Errorf("VarDefs[%s] = %+v, want %+v", v, info.VarDefs[v], d)
		}
	}
	if info.TokenPos[0] != 0 || info.TokenPos[1] != 1 {
		t.Errorf("TokenPos = %v", info.TokenPos)
	}
}

func TestCompileNegatedTokenPos(t *testing.T) {
	prods := mustParse(t,
		`(p p1 (a ^x <v>) -(b ^x <v>) (c ^x <v>) --> (halt))`,
	)
	net, err := Compile(prods)
	if err != nil {
		t.Fatal(err)
	}
	info := net.Prods["p1"]
	if info.TokenPos[0] != 0 || info.TokenPos[1] != -1 || info.TokenPos[2] != 1 {
		t.Errorf("TokenPos = %v, want [0 -1 1]", info.TokenPos)
	}
	s := net.Stats()
	if s.NegativeNodes != 1 || s.JoinNodes != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCompileSingleCE(t *testing.T) {
	prods := mustParse(t, `(p solo (a ^x 1) --> (halt))`)
	net, err := Compile(prods)
	if err != nil {
		t.Fatal(err)
	}
	s := net.Stats()
	if s.JoinNodes != 0 || s.ProductionNodes != 1 {
		t.Errorf("stats = %+v, want zero joins", s)
	}
	m := NewMatcher(net, MatcherOptions{NBuckets: 16})
	w := ops5.NewWME("a", "x", 1)
	w.ID = 1
	out := m.Apply([]Change{{Tag: Add, WME: w}})
	if len(out) != 1 || out[0].Tag != Add {
		t.Fatalf("out = %+v", out)
	}
	out = m.Apply([]Change{{Tag: Delete, WME: w}})
	if len(out) != 1 || out[0].Tag != Delete {
		t.Fatalf("out = %+v", out)
	}
}

func TestAlphaConstTests(t *testing.T) {
	prods := mustParse(t,
		`(p p1 (a ^x { <v> > 2 } ^y <v> ^z << red green >>) --> (halt))`,
	)
	net, err := Compile(prods)
	if err != nil {
		t.Fatal(err)
	}
	alphas := net.AlphasForClass("a")
	if len(alphas) != 1 {
		t.Fatalf("alphas = %d", len(alphas))
	}
	a := alphas[0]
	cases := []struct {
		w    *ops5.WME
		want bool
	}{
		{ops5.NewWME("a", "x", 3, "y", 3, "z", "red"), true},
		{ops5.NewWME("a", "x", 2, "y", 2, "z", "red"), false},  // x > 2 fails
		{ops5.NewWME("a", "x", 5, "y", 4, "z", "red"), false},  // x != y (intra-CE)
		{ops5.NewWME("a", "x", 5, "y", 5, "z", "blue"), false}, // disjunction fails
		{ops5.NewWME("b", "x", 5, "y", 5, "z", "red"), false},  // wrong class
	}
	for i, c := range cases {
		if got := a.Matches(c.w); got != c.want {
			t.Errorf("case %d: Matches(%v) = %v, want %v", i, c.w, got, c.want)
		}
	}
}

func TestNetworkTwoInputCount(t *testing.T) {
	prods := mustParse(t,
		`(p p1 (a ^x <v>) (b ^x <v>) -(c ^x <v>) --> (halt))`,
	)
	net, err := Compile(prods)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.TwoInputCount(); got != 2 {
		t.Errorf("TwoInputCount = %d, want 2", got)
	}
}
