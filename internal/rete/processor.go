package rete

import (
	"sort"

	"mpcrete/internal/ops5"
)

// Activation is one unit of match work: a token arriving at a node's
// left or right input. It is the currency both of the sequential
// Matcher and of the distributed runtime, whose workers exchange
// Activations as messages.
type Activation struct {
	Node  *Node
	Side  Side
	Tag   Tag
	Token *Token    // set for left activations
	WME   *ops5.WME // set for right activations
}

// HashKey returns the distributed-hash-table key of the activation.
func (a Activation) HashKey() uint64 { return HashKey(a.Node, a.Side, a.Token, a.WME) }

// Processor owns a pair of hashed token memories and knows how to
// perform single node activations against them. It has no queue and no
// policy: callers decide where emitted successor activations go (the
// sequential matcher enqueues them; a distributed worker routes them to
// the owner of their hash bucket).
type Processor struct {
	net   *Network
	left  *Memory
	right *Memory
	arena tokenArena
	// bstack is the bounded enumerator's reusable DFS stack of candidate
	// wmes, one slot per positive collector of the group being
	// enumerated (see bounded.go).
	bstack []*ops5.WME
	// bmem is the enumerator's per-activation partition of the group's
	// bucket: one wme list per collector, rebuilt in a single bucket
	// pass so the DFS scans only its own position's candidates instead
	// of re-filtering the whole shared bucket at every level.
	bmem [][]*ops5.WME
}

// NewProcessor creates a processor with the given bucket count
// (DefaultNBuckets when 0; 1 degenerates to linear memories).
func NewProcessor(net *Network, nbuckets int) *Processor {
	if nbuckets == 0 {
		nbuckets = DefaultNBuckets
	}
	return &Processor{
		net:   net,
		left:  NewMemory(Left, nbuckets),
		right: NewMemory(Right, nbuckets),
	}
}

// Network returns the compiled network.
func (p *Processor) Network() *Network { return p.net }

// NBuckets returns the memory bucket count.
func (p *Processor) NBuckets() int { return p.left.NBuckets() }

// Memories exposes the left and right hash tables.
func (p *Processor) Memories() (left, right *Memory) { return p.left, p.right }

// Bucket maps an activation to its hash-bucket index.
func (p *Processor) Bucket(a Activation) int { return p.left.Bucket(a.HashKey()) }

// Reset empties both memories (keeping their bucket storage) and drops
// the arena's references to consumed chunks, returning the processor
// to its freshly-constructed state over the same network — the
// session-pool reuse hook. Only legal at quiescence.
func (p *Processor) Reset() {
	p.left.Reset()
	p.right.Reset()
	p.arena.reset()
}

// RootActivations runs the constant tests for one wme change and
// returns the resulting activations (the paper's "tokens generated
// directly by wmes"). Copy-and-constraint node copies filter right
// tokens here.
func (p *Processor) RootActivations(ch Change) []Activation {
	return p.RootActivationsInto(ch, nil)
}

// RootActivationsInto is RootActivations appending into a reusable
// buffer — the entry point for hot-path callers (the parallel runtime's
// per-cycle constant-test pass, and the control processor when it
// hash-routes root activations to their owners instead of
// broadcasting). Left root tokens are carved from the processor's
// arena.
func (p *Processor) RootActivationsInto(ch Change, out []Activation) []Activation {
	for _, a := range p.net.AlphasForClass(ch.WME.Class) {
		if !a.Matches(ch.WME) {
			continue
		}
		for _, r := range a.Routes {
			if r.Side == Right && !r.Node.AcceptsRight(ch.WME) {
				continue
			}
			act := Activation{Node: r.Node, Side: r.Side, Tag: ch.Tag, WME: ch.WME}
			if r.Side == Left {
				t := p.arena.newToken(1)
				t.WMEs[0] = ch.WME
				act.Token = t
				act.WME = nil
			}
			out = append(out, act)
		}
	}
	return out
}

// Process performs one activation: production-node activations invoke
// inst; dummy nodes forward; join and negative nodes update this
// processor's memories and emit successor (left) activations via emit.
// The caller must route every activation for a given bucket to the
// same Processor, or memory state will be inconsistent.
func (p *Processor) Process(a Activation, emit func(Activation), inst func(InstChange)) {
	p.ProcessAt(a, p.Bucket(a), emit, inst)
}

// ProcessAt is Process with the activation's hash bucket supplied by
// the caller. Both the sequential matcher and the parallel runtime
// already compute the bucket to route the activation (for the trace
// event and for worker ownership respectively), so this entry point
// halves the HashKey work on the hot path. bucket is ignored for
// production and dummy nodes, which touch no memory.
func (p *Processor) ProcessAt(a Activation, bucket int, emit func(Activation), inst func(InstChange)) {
	switch a.Node.Kind {
	case KindProduction:
		inst(p.BuildInst(a))
	case KindDummy:
		p.emitTo(a.Node, a.Token, a.Tag, emit)
	case KindJoin:
		p.processJoin(a, bucket, emit)
	case KindNegative:
		p.processNegative(a, bucket, emit)
	case KindBounded:
		p.processBounded(a, bucket, emit)
	}
}

// BucketContents is the extracted state of one hash-bucket pair,
// the unit a distributed implementation migrates when re-partitioning.
// The paper judged this "too costly" to do dynamically; the parallel
// runtime implements it so the cost can be measured rather than
// assumed.
type BucketContents struct {
	Bucket int
	// LeftNodes/LeftTokens/LeftCounts are parallel slices describing
	// the left-memory entries (counts matter for negative nodes).
	LeftNodes  []*Node
	LeftTokens []*Token
	LeftCounts []int
	// RightNodes/RightWMEs describe the right-memory entries.
	RightNodes []*Node
	RightWMEs  []*ops5.WME
}

// Entries returns the number of stored tokens in the pair.
func (bc *BucketContents) Entries() int { return len(bc.LeftTokens) + len(bc.RightWMEs) }

// ExtractBucket removes and returns the contents of bucket b in both
// memories. The caller must be quiescent (no activation in flight for
// this bucket).
func (p *Processor) ExtractBucket(b int) *BucketContents {
	bc := &BucketContents{Bucket: b}
	for _, e := range p.left.extract(b) {
		bc.LeftNodes = append(bc.LeftNodes, e.node)
		bc.LeftTokens = append(bc.LeftTokens, e.token)
		bc.LeftCounts = append(bc.LeftCounts, e.count)
	}
	for _, e := range p.right.extract(b) {
		bc.RightNodes = append(bc.RightNodes, e.node)
		bc.RightWMEs = append(bc.RightWMEs, e.wme)
	}
	return bc
}

// InjectBucket installs previously extracted contents into this
// processor's memories. Bucket indices are global, so the receiving
// processor stores them at the same index.
func (p *Processor) InjectBucket(bc *BucketContents) {
	var lefts, rights []*memEntry
	for i := range bc.LeftTokens {
		lefts = append(lefts, &memEntry{node: bc.LeftNodes[i], token: bc.LeftTokens[i], count: bc.LeftCounts[i]})
	}
	for i := range bc.RightWMEs {
		rights = append(rights, &memEntry{node: bc.RightNodes[i], wme: bc.RightWMEs[i]})
	}
	p.left.inject(bc.Bucket, lefts)
	p.right.inject(bc.Bucket, rights)
}

// emitTo fans a token out to every successor of n as left activations.
func (p *Processor) emitTo(n *Node, t *Token, tag Tag, emit func(Activation)) {
	for _, s := range n.Succs {
		emit(Activation{Node: s, Side: Left, Tag: tag, Token: t})
	}
}

func (p *Processor) processJoin(a Activation, b int, emit func(Activation)) {
	n := a.Node
	if a.Side == Left {
		if a.Tag == Add {
			p.left.addLeft(b, n, a.Token)
		} else if p.left.removeLeft(b, n, a.Token) == nil {
			// Duplicate delete: the token's join effects were already
			// unwound when it was first removed. Scanning again would
			// emit a second wave of successor deletes.
			return
		}
		p.right.scan(b, n, func(e *memEntry) {
			if p.testsPass(n, a.Token, e.wme) {
				p.emitTo(n, p.extend(a.Token, e.wme), a.Tag, emit)
			}
		})
		return
	}
	if a.Tag == Add {
		p.right.addRight(b, n, a.WME)
	} else if p.right.removeRight(b, n, a.WME.ID) == nil {
		// Duplicate delete of a wme already out of right memory.
		return
	}
	p.left.scan(b, n, func(e *memEntry) {
		if p.testsPass(n, e.token, a.WME) {
			p.emitTo(n, p.extend(e.token, a.WME), a.Tag, emit)
		}
	})
}

func (p *Processor) processNegative(a Activation, b int, emit func(Activation)) {
	n := a.Node
	if a.Side == Left {
		if a.Tag == Add {
			count := 0
			p.right.scan(b, n, func(e *memEntry) {
				if p.testsPass(n, a.Token, e.wme) {
					count++
				}
			})
			entry := p.left.addLeft(b, n, a.Token)
			entry.count = count
			if count == 0 {
				p.emitTo(n, a.Token, Add, emit)
			}
			return
		}
		if e := p.left.removeLeft(b, n, a.Token); e != nil && e.count == 0 {
			p.emitTo(n, a.Token, Delete, emit)
		}
		return
	}
	if a.Tag == Add {
		p.right.addRight(b, n, a.WME)
		p.left.scan(b, n, func(e *memEntry) {
			if p.testsPass(n, e.token, a.WME) {
				e.count++
				if e.count == 1 {
					p.emitTo(n, e.token, Delete, emit)
				}
			}
		})
		return
	}
	if p.right.removeRight(b, n, a.WME.ID) == nil {
		// Duplicate delete: the counts were already decremented when
		// the wme was first removed; decrementing again would drive
		// them negative and break the next add's 0 -> 1 transition,
		// leaking a stale instantiation.
		return
	}
	p.left.scan(b, n, func(e *memEntry) {
		if p.testsPass(n, e.token, a.WME) {
			e.count--
			if e.count == 0 {
				p.emitTo(n, e.token, Add, emit)
			}
		}
	})
}

func (p *Processor) testsPass(n *Node, t *Token, w *ops5.WME) bool {
	for _, jt := range n.Tests {
		if !jt.Eval(t, w) {
			return false
		}
	}
	return true
}

// BuildInst converts a production-node activation into a conflict-set
// delta, mapping the compiled token back to original CE positions.
func (p *Processor) BuildInst(a Activation) InstChange {
	info := p.net.Prods[a.Node.Prod.Name]
	wmes := make([]*ops5.WME, len(info.Prod.LHS))
	var tags []int
	for i, pos := range info.TokenPos {
		if pos >= 0 {
			wmes[i] = a.Token.WMEs[pos]
			tags = append(tags, wmes[i].TimeTag)
		}
	}
	sort.Ints(tags)
	return InstChange{
		Tag:      a.Tag,
		Prod:     info.Prod,
		WMEs:     wmes,
		TimeTags: tags,
	}
}
