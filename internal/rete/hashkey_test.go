package rete

import (
	"hash/fnv"
	"testing"

	"mpcrete/internal/ops5"
)

// refHashKey is the original hash/fnv-based implementation; the
// inlined HashKey must keep producing identical keys so bucket
// assignments (and with them traces, partition statistics, and the
// distributed runtime's routing) are stable across the optimization.
func refHashKey(n *Node, side Side, t *Token, w *ops5.WME) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	id := uint64(n.ID)
	for i := 0; i < 8; i++ {
		buf[i] = byte(id >> (8 * i))
	}
	h.Write(buf[:])
	for _, jt := range n.EqTests {
		var v ops5.Value
		if side == Left {
			v = t.WMEs[jt.LeftPos].Get(jt.LeftAttr)
		} else {
			v = w.Get(jt.RightAttr)
		}
		h.Write([]byte(v.Key()))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

func TestHashKeyMatchesFNVReference(t *testing.T) {
	var prods []*ops5.Production
	for _, src := range []string{
		`(p join (a ^x <v> ^y <u>) (b ^x <v> ^z <u>) --> (halt))`,
		`(p nums (c ^n <m>) (d ^n <m>) --> (halt))`,
		`(p cross (a ^x <v>) (d ^q <r>) --> (halt))`,
	} {
		p, err := ops5.ParseProduction(src)
		if err != nil {
			t.Fatal(err)
		}
		prods = append(prods, p)
	}
	net, err := Compile(prods)
	if err != nil {
		t.Fatal(err)
	}
	proc := NewProcessor(net, 64)
	wmes := []*ops5.WME{
		ops5.NewWME("a", "x", "red", "y", 3),
		ops5.NewWME("a", "x", 2.5, "y", "blue"),
		ops5.NewWME("b", "x", "red", "z", 3),
		ops5.NewWME("c", "n", -17),
		ops5.NewWME("d", "n", -17, "q", "deep"),
	}
	checked := 0
	for i, w := range wmes {
		w.ID, w.TimeTag = i+1, i+1
		for _, act := range proc.RootActivations(Change{Tag: Add, WME: w}) {
			if got, want := act.HashKey(), refHashKey(act.Node, act.Side, act.Token, act.WME); got != want {
				t.Errorf("HashKey(%v %v) = %#x, reference %#x", act.Node.ID, act.Side, got, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no root activations generated")
	}
}
