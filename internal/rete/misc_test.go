package rete

import (
	"strings"
	"testing"
)

func TestSideTagKindStrings(t *testing.T) {
	if Left.String() != "L" || Right.String() != "R" {
		t.Error("side strings")
	}
	if Add.String() != "+" || Delete.String() != "-" {
		t.Error("tag strings")
	}
	for k, want := range map[NodeKind]string{
		KindJoin: "join", KindNegative: "negative", KindDummy: "dummy", KindProduction: "production",
	} {
		if k.String() != want {
			t.Errorf("kind %d = %q, want %q", k, k, want)
		}
	}
}

func TestMatcherCycleCounter(t *testing.T) {
	net := compileT(t, []string{`(p p1 (a ^x 1) --> (halt))`})
	m := NewMatcher(net, MatcherOptions{NBuckets: 4})
	if m.Cycle() != 0 {
		t.Error("fresh matcher cycle != 0")
	}
	m.Apply(nil)
	m.Apply(nil)
	if m.Cycle() != 2 {
		t.Errorf("cycle = %d", m.Cycle())
	}
}

func TestProcessorAccessors(t *testing.T) {
	net := compileT(t, []string{`(p p1 (a ^x 1) --> (halt))`})
	p := NewProcessor(net, 0) // default bucket count
	if p.NBuckets() != DefaultNBuckets {
		t.Errorf("NBuckets = %d", p.NBuckets())
	}
	if p.Network() != net {
		t.Error("Network identity")
	}
	left, right := p.Memories()
	if left.NBuckets() != DefaultNBuckets || right.NBuckets() != DefaultNBuckets {
		t.Error("memory bucket counts")
	}
}

func TestExtractInjectBucketDirect(t *testing.T) {
	net := compileT(t, []string{`(p p1 (a ^x <v>) -(b ^x <v>) --> (halt))`})
	src := NewProcessor(net, 16)
	dst := NewProcessor(net, 16)

	// Populate: one left token (with a negative-node count) and one
	// right wme in some buckets.
	var insts []InstChange
	emit := func(a Activation) {
		src.Process(a, func(Activation) {}, func(ic InstChange) {})
	}
	_ = emit
	wa := mkWME(1, "a", "x", 5)
	wb := mkWME(2, "b", "x", 5)
	for _, ch := range []Change{{Tag: Add, WME: wa}, {Tag: Add, WME: wb}} {
		for _, act := range src.RootActivations(ch) {
			var rec func(a Activation)
			rec = func(a Activation) {
				if a.Node.Kind == KindProduction {
					insts = append(insts, src.BuildInst(a))
					return
				}
				src.Process(a, rec, func(InstChange) {})
			}
			rec(act)
		}
	}
	left, right := src.Memories()
	if left.Len() == 0 || right.Len() == 0 {
		t.Fatalf("populate failed: %d/%d", left.Len(), right.Len())
	}

	// Move every bucket's contents to dst.
	total := 0
	for b := 0; b < 16; b++ {
		bc := src.ExtractBucket(b)
		total += bc.Entries()
		dst.InjectBucket(bc)
	}
	if left.Len() != 0 || right.Len() != 0 {
		t.Error("source memories not emptied")
	}
	dl, dr := dst.Memories()
	if dl.Len() == 0 || dr.Len() == 0 {
		t.Error("destination memories not populated")
	}
	if total != dl.Len()+dr.Len() {
		t.Errorf("entries moved %d != stored %d", total, dl.Len()+dr.Len())
	}

	// Negative-node counts survive: deleting the b-wme at dst must
	// re-propagate the left token (count 1 -> 0).
	reborn := 0
	for _, act := range dst.RootActivations(Change{Tag: Delete, WME: wb}) {
		var rec func(a Activation)
		rec = func(a Activation) {
			if a.Node.Kind == KindProduction {
				if ic := dst.BuildInst(a); ic.Tag == Add {
					reborn++
				}
				return
			}
			dst.Process(a, rec, func(InstChange) {})
		}
		rec(act)
	}
	if reborn != 1 {
		t.Errorf("negation count lost in migration: reborn = %d, want 1", reborn)
	}
}

func TestConstTestString(t *testing.T) {
	prods := mustParse(t, `(p p1 (a ^x { <v> > 2 } ^y <v> ^z << red 3 >>) --> (halt))`)
	net, err := Compile(prods)
	if err != nil {
		t.Fatal(err)
	}
	a := net.AlphasForClass("a")[0]
	keys := make([]string, len(a.Tests))
	for i := range a.Tests {
		keys[i] = a.Tests[i].key()
	}
	joined := strings.Join(keys, " ")
	for _, want := range []string{"^x>", "<<", "@"} {
		if !strings.Contains(joined, want) {
			t.Errorf("alpha keys %q missing %q", joined, want)
		}
	}
}
