// Package rete implements the Rete match algorithm of Forgy (1982) in
// the hashed-memory formulation used by Tambe, Acharya & Gupta
// (CMU-CS-89-129): the left and right memories of all two-input nodes
// live in two global hash tables, and a node activation touches exactly
// one left/right bucket pair.
//
// The package provides the network compiler (with node sharing), a
// sequential matcher that doubles as the trace producer for the MPC
// simulator, and the source/network-level transformations analysed in
// the paper: unsharing, dummy nodes, and copy-and-constraint.
package rete

import (
	"fmt"
	"sort"
	"strings"

	"mpcrete/internal/ops5"
)

// Side identifies which input of a two-input node an activation is for.
type Side uint8

const (
	// Left is the input fed by the preceding beta-level node (or, for
	// the first two-input node of a production, by the first condition
	// element's constant tests).
	Left Side = iota
	// Right is the input fed by a condition element's constant tests.
	Right
)

// String returns "L" or "R".
func (s Side) String() string {
	if s == Left {
		return "L"
	}
	return "R"
}

// Tag marks an activation as an addition or a deletion, the +/- of the
// paper's tokens.
type Tag uint8

const (
	Add Tag = iota
	Delete
)

// String returns "+" or "-".
func (t Tag) String() string {
	if t == Add {
		return "+"
	}
	return "-"
}

// ConstTest is a single constant-test-node check applied to a wme
// while it filters down the alpha part of the network. Exactly one of
// Value, Disj, or OtherAttr is meaningful:
//
//   - Value: wme.Get(Attr) Op Value
//   - Disj: wme.Get(Attr) equals one of Disj
//   - OtherAttr: wme.Get(Attr) Op wme.Get(OtherAttr)  (intra-CE
//     variable consistency, e.g. (cell ^row <r> ^col <r>))
type ConstTest struct {
	Attr      string
	Op        ops5.PredOp
	Value     ops5.Value
	Disj      []ops5.Value
	OtherAttr string
	isOther   bool
}

// Eval applies the test to a wme.
func (ct *ConstTest) Eval(w *ops5.WME) bool {
	v := w.Get(ct.Attr)
	if len(ct.Disj) > 0 {
		for _, d := range ct.Disj {
			if v.Equal(d) {
				return true
			}
		}
		return false
	}
	if ct.isOther {
		return ct.Op.Apply(v, w.Get(ct.OtherAttr))
	}
	return ct.Op.Apply(v, ct.Value)
}

// key returns a canonical encoding used for alpha-pattern sharing.
func (ct *ConstTest) key() string {
	if len(ct.Disj) > 0 {
		parts := make([]string, len(ct.Disj))
		for i, d := range ct.Disj {
			parts[i] = d.Key()
		}
		sort.Strings(parts)
		return fmt.Sprintf("^%s<<%s>>", ct.Attr, strings.Join(parts, ","))
	}
	if ct.isOther {
		return fmt.Sprintf("^%s%s@%s", ct.Attr, ct.Op, ct.OtherAttr)
	}
	return fmt.Sprintf("^%s%s%s", ct.Attr, ct.Op, ct.Value.Key())
}

// AlphaRoute records one destination of an alpha pattern's output: wmes
// passing the pattern become Side activations of Node.
type AlphaRoute struct {
	Node *Node
	Side Side
}

// AlphaPattern is the compiled alpha part of one (or, with sharing,
// several) condition elements: a class filter plus constant tests.
type AlphaPattern struct {
	ID     int
	Class  string
	Tests  []ConstTest
	Routes []AlphaRoute
}

// Matches reports whether the wme passes the pattern's class filter and
// every constant test.
func (a *AlphaPattern) Matches(w *ops5.WME) bool {
	if w.Class != a.Class {
		return false
	}
	for i := range a.Tests {
		if !a.Tests[i].Eval(w) {
			return false
		}
	}
	return true
}

func (a *AlphaPattern) key() string {
	keys := make([]string, len(a.Tests))
	for i := range a.Tests {
		keys[i] = a.Tests[i].key()
	}
	sort.Strings(keys)
	return a.Class + "|" + strings.Join(keys, "|")
}

// buildAlphaTests derives the constant tests and the intra-CE variable
// consistency tests for a condition element. firstAttr records, for
// variables whose defining occurrence is inside this CE, the attribute
// bound first (used both for intra-CE tests and by the caller to
// register binding sites).
func buildAlphaTests(ce *ops5.CE, boundOutside func(string) bool) (tests []ConstTest, firstAttr map[string]string) {
	firstAttr = map[string]string{}
	for _, at := range ce.Tests {
		for _, term := range at.Terms {
			switch {
			case len(term.Disj) > 0:
				tests = append(tests, ConstTest{Attr: at.Attr, Op: ops5.OpEq, Disj: term.Disj})
			case term.Const != nil:
				tests = append(tests, ConstTest{Attr: at.Attr, Op: term.Op, Value: *term.Const})
			case term.Var != "":
				if boundOutside(term.Var) {
					continue // becomes a two-input node test
				}
				if prev, ok := firstAttr[term.Var]; ok {
					// Subsequent occurrence within the same CE: an
					// intra-element consistency test.
					tests = append(tests, ConstTest{Attr: at.Attr, Op: term.Op, OtherAttr: prev, isOther: true})
				} else if term.Op == ops5.OpEq {
					firstAttr[term.Var] = at.Attr
				}
				// A non-equality predicate on an unbound variable with
				// no prior occurrence constrains nothing (OPS5 treats
				// it as always true); it is dropped.
			}
		}
	}
	return tests, firstAttr
}
