package rete

import (
	"fmt"
	"sort"
	"strings"

	"mpcrete/internal/ops5"
)

// NodeKind discriminates the beta-level node types.
type NodeKind uint8

const (
	// KindJoin is a standard two-input node testing joint satisfaction
	// of a positive condition element with the partial instantiation on
	// its left input.
	KindJoin NodeKind = iota
	// KindNegative is the two-input node for a negated condition
	// element; it propagates left tokens with no matching right token,
	// using counted left-memory entries.
	KindNegative
	// KindDummy is a pass-through node introduced by the dummy-node
	// transformation (Section 5.2.1, method 2): it forwards left
	// activations unchanged to a subset of a split node's successors.
	KindDummy
	// KindProduction is a terminal node; left activations become
	// conflict-set insertions and deletions.
	KindProduction
	// KindBounded is a collector node of the worst-case-bounded variant
	// (CompileOptions.BoundedJoins): it stores only the wmes matching
	// its own condition element and, on each activation, lazily
	// enumerates complete instantiations across its group's collectors
	// instead of materializing intermediate beta tokens (see bounded.go).
	KindBounded
)

var kindNames = [...]string{"join", "negative", "dummy", "production", "bounded"}

// String names the node kind.
func (k NodeKind) String() string { return kindNames[k] }

// JoinTest is a variable-consistency test at a two-input node: the
// right wme's RightAttr value is compared (via Op) with the value at
// (LeftPos, LeftAttr) inside the left token.
type JoinTest struct {
	Op        ops5.PredOp
	RightAttr string
	LeftPos   int // index into the left token's wme list
	LeftAttr  string
}

func (jt JoinTest) key() string {
	return fmt.Sprintf("%s:%d.%s%s", jt.RightAttr, jt.LeftPos, jt.LeftAttr, jt.Op)
}

// Eval applies the test given the left token and the right wme.
func (jt JoinTest) Eval(t *Token, w *ops5.WME) bool {
	return jt.Op.Apply(w.Get(jt.RightAttr), t.WMEs[jt.LeftPos].Get(jt.LeftAttr))
}

// Node is a beta-level node of the Rete network. Join and negative
// nodes are the two-input nodes of the paper; production nodes are
// terminals; dummy nodes exist only as a transformation product.
type Node struct {
	ID   int
	Kind NodeKind
	// Tests are the variable tests of this two-input node. The subset
	// with Op == OpEq (EqTests) determines the hash bucket.
	Tests   []JoinTest
	EqTests []JoinTest
	// Parent is the node feeding this node's left input; nil when the
	// left input comes directly from an alpha pattern.
	Parent *Node
	Succs  []*Node
	// Prod is set on production nodes.
	Prod *ops5.Production
	// OrigCE is the production-LHS index (0-based, original order) of
	// the condition element on this node's right input; -1 for
	// production and dummy nodes.
	OrigCE int
	// TokenLen is the number of wmes in this node's output tokens.
	TokenLen int
	// LeftLen is the number of wmes in this node's left-input tokens.
	LeftLen int
	// copyIndex/copyCount implement copy-and-constraint: when
	// copyCount > 1 this node is copy copyIndex of a split node and
	// accepts only right wmes with discriminator % copyCount ==
	// copyIndex. Zero values mean "not a copy".
	copyIndex, copyCount int
	// detached marks nodes excised from the network.
	detached bool

	// group links the collector nodes and terminal of one
	// worst-case-bounded production (BoundedJoins); nil elsewhere.
	// bPos is this collector's join-order position inside the group and
	// bNeg marks collectors for negated condition elements.
	group *boundedGroup
	bPos  int
	bNeg  bool

	shareKey string
}

// IsTwoInput reports whether the node is a two-input (join or negative)
// node — the unit the paper's activation counts refer to.
func (n *Node) IsTwoInput() bool { return n.Kind == KindJoin || n.Kind == KindNegative }

// AcceptsRight reports whether this node accepts a given right wme;
// only copy-and-constraint copies ever reject one.
func (n *Node) AcceptsRight(w *ops5.WME) bool {
	if n.copyCount <= 1 {
		return true
	}
	return w.ID%n.copyCount == n.copyIndex
}

// VarDef records the defining occurrence of an LHS variable: the
// original condition-element index and attribute whose value the
// variable is bound to.
type VarDef struct {
	OrigCE int
	Attr   string
}

// ProdInfo is the per-production compilation record the engine needs to
// evaluate right-hand sides.
type ProdInfo struct {
	Prod *ops5.Production
	// Node is the production's terminal node.
	Node *Node
	// VarDefs maps each LHS variable to its defining occurrence.
	VarDefs map[string]VarDef
	// TokenPos maps original CE index -> position in the terminal
	// node's token (only positive CEs appear; negated CEs map to -1).
	TokenPos []int
}

// Network is a compiled Rete network.
type Network struct {
	Nodes   []*Node
	Alphas  []*AlphaPattern
	byClass map[string][]*AlphaPattern
	Prods   map[string]*ProdInfo
	// ProdOrder lists production names in definition order.
	ProdOrder []string

	opts CompileOptions
}

// CompileOptions control network construction.
type CompileOptions struct {
	// DisableSharing compiles every production with private alpha
	// patterns and two-input nodes (the paper's "unsharing",
	// Section 5.2.1 method 1, applied globally).
	DisableSharing bool
	// BoundedJoins compiles every production into the worst-case-bounded
	// variant: per-CE collector nodes with a selectivity-ordered lazy
	// enumerator instead of chained two-input nodes with beta memories
	// (see bounded.go). Join-node prefixes are never shared in this mode;
	// alpha patterns still are unless DisableSharing is also set.
	BoundedJoins bool
}

// NewNetwork returns an empty network ready for AddProduction.
func NewNetwork(opts CompileOptions) *Network {
	return &Network{
		byClass: map[string][]*AlphaPattern{},
		Prods:   map[string]*ProdInfo{},
		opts:    opts,
	}
}

// Compile builds a network from a set of productions with default
// options (sharing enabled).
func Compile(prods []*ops5.Production) (*Network, error) {
	return CompileWith(prods, CompileOptions{})
}

// CompileWith builds a network from a set of productions.
func CompileWith(prods []*ops5.Production, opts CompileOptions) (*Network, error) {
	net := NewNetwork(opts)
	for _, p := range prods {
		if err := net.AddProduction(p); err != nil {
			return nil, err
		}
	}
	return net, nil
}

// TwoInputCount returns the number of two-input (join + negative)
// nodes in the network.
func (net *Network) TwoInputCount() int {
	n := 0
	for _, nd := range net.Nodes {
		if nd.IsTwoInput() {
			n++
		}
	}
	return n
}

func (net *Network) newNode(kind NodeKind) *Node {
	n := &Node{ID: len(net.Nodes), Kind: kind, OrigCE: -1}
	net.Nodes = append(net.Nodes, n)
	return n
}

// internAlpha returns a shared alpha pattern for the given class and
// tests, creating it if necessary.
func (net *Network) internAlpha(class string, tests []ConstTest) *AlphaPattern {
	cand := &AlphaPattern{Class: class, Tests: tests}
	k := cand.key()
	if !net.opts.DisableSharing {
		for _, a := range net.byClass[class] {
			if a.key() == k {
				return a
			}
		}
	}
	cand.ID = len(net.Alphas)
	net.Alphas = append(net.Alphas, cand)
	net.byClass[class] = append(net.byClass[class], cand)
	return cand
}

func (net *Network) addRoute(a *AlphaPattern, n *Node, s Side) {
	for _, r := range a.Routes {
		if r.Node == n && r.Side == s {
			return
		}
	}
	a.Routes = append(a.Routes, AlphaRoute{Node: n, Side: s})
}

// AddProduction compiles one production into the network, sharing
// alpha patterns and join-node prefixes with previously added
// productions where structurally identical.
func (net *Network) AddProduction(p *ops5.Production) error {
	_, err := net.addProduction(p, !net.opts.DisableSharing)
	return err
}

// AddProductionPrivate compiles one production with private two-input
// nodes (alpha patterns may still be shared — they are stateless
// filters). It returns the newly created nodes, which start with empty
// memories: a live system primes them by replaying working memory
// through them alone (Matcher.ApplyFiltered), the correct way to add a
// production to a running Rete without corrupting shared node state.
func (net *Network) AddProductionPrivate(p *ops5.Production) ([]*Node, error) {
	before := len(net.Nodes)
	if _, err := net.addProduction(p, false); err != nil {
		return nil, err
	}
	return net.Nodes[before:], nil
}

func (net *Network) addProduction(p *ops5.Production, shareJoins bool) (*ProdInfo, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if _, dup := net.Prods[p.Name]; dup {
		return nil, fmt.Errorf("rete: duplicate production %q", p.Name)
	}
	if net.opts.BoundedJoins {
		return net.addProductionBounded(p)
	}

	// Compiled CE order: positive CEs in original order, then negated
	// CEs in original order. A negated CE cannot supply the first left
	// input, and placing all negations after the positive joins gives
	// this dialect a simple, order-independent semantics: a negated CE
	// is satisfied when no wme matches it under the bindings
	// established by ALL positive CEs (documented in the package
	// comment; classic OPS5 scopes unbound negated-CE variables to the
	// CE, which differs only when a variable's defining positive
	// occurrence follows the negated CE textually).
	order := make([]int, 0, len(p.LHS))
	for i, ce := range p.LHS {
		if !ce.Negated {
			order = append(order, i)
		}
	}
	for i, ce := range p.LHS {
		if ce.Negated {
			order = append(order, i)
		}
	}

	info := &ProdInfo{
		Prod:     p,
		VarDefs:  map[string]VarDef{},
		TokenPos: make([]int, len(p.LHS)),
	}
	for i := range info.TokenPos {
		info.TokenPos[i] = -1
	}

	// varPos maps a bound variable to (token position, attribute).
	type binding struct {
		pos  int
		attr string
	}
	varPos := map[string]binding{}

	var cur *Node // node producing the current left tokens (nil before the first join)
	var leftAlpha *AlphaPattern
	tokenLen := 0

	attach := func(n *Node) {
		if cur == nil {
			net.addRoute(leftAlpha, n, Left)
		} else {
			cur.Succs = append(cur.Succs, n)
		}
	}

	for seq, orig := range order {
		ce := &p.LHS[orig]
		boundOutside := func(v string) bool { _, ok := varPos[v]; return ok }
		alphaTests, firstAttr := buildAlphaTests(ce, boundOutside)
		alpha := net.internAlpha(ce.Class, alphaTests)

		if seq == 0 {
			// First (positive) CE: its alpha output is the left input
			// of the first two-input node.
			leftAlpha = alpha
			for v, attr := range firstAttr {
				varPos[v] = binding{pos: 0, attr: attr}
				info.VarDefs[v] = VarDef{OrigCE: orig, Attr: attr}
			}
			info.TokenPos[orig] = 0
			tokenLen = 1
			continue
		}

		// Build the join tests for variables already bound.
		var tests []JoinTest
		for _, at := range ce.Tests {
			for _, term := range at.Terms {
				if term.Var == "" {
					continue
				}
				b, ok := varPos[term.Var]
				if !ok {
					continue // defined inside this CE (alpha-level)
				}
				tests = append(tests, JoinTest{Op: term.Op, RightAttr: at.Attr, LeftPos: b.pos, LeftAttr: b.attr})
			}
		}

		kind := KindJoin
		if ce.Negated {
			kind = KindNegative
		}
		key := shareKeyFor(cur, leftAlpha, alpha, kind, tests)
		var node *Node
		if shareJoins {
			node = net.findShared(cur, leftAlpha, key)
		}
		if node == nil {
			node = net.newNode(kind)
			node.Tests = tests
			for _, t := range tests {
				if t.Op == ops5.OpEq {
					node.EqTests = append(node.EqTests, t)
				}
			}
			node.Parent = cur
			node.OrigCE = orig
			node.LeftLen = tokenLen
			node.TokenLen = tokenLen
			if kind == KindJoin {
				node.TokenLen++
			}
			node.shareKey = key
			attach(node)
			net.addRoute(alpha, node, Right)
		}

		if !ce.Negated {
			for v, attr := range firstAttr {
				varPos[v] = binding{pos: tokenLen, attr: attr}
				info.VarDefs[v] = VarDef{OrigCE: orig, Attr: attr}
			}
			info.TokenPos[orig] = tokenLen
			tokenLen++
		}
		cur = node
	}

	// Terminal production node.
	pn := net.newNode(KindProduction)
	pn.Prod = p
	pn.Parent = cur
	pn.LeftLen = tokenLen
	pn.TokenLen = tokenLen
	attach(pn)
	info.Node = pn

	net.Prods[p.Name] = info
	net.ProdOrder = append(net.ProdOrder, p.Name)
	return info, nil
}

// shareKeyFor canonically encodes a candidate two-input node for prefix
// sharing: same left source, same right alpha pattern, same kind, same
// tests.
func shareKeyFor(parent *Node, leftAlpha, alpha *AlphaPattern, kind NodeKind, tests []JoinTest) string {
	var b strings.Builder
	if parent != nil {
		fmt.Fprintf(&b, "n%d|", parent.ID)
	} else {
		fmt.Fprintf(&b, "a%d|", leftAlpha.ID)
	}
	fmt.Fprintf(&b, "r%d|k%d|", alpha.ID, kind)
	keys := make([]string, len(tests))
	for i, t := range tests {
		keys[i] = t.key()
	}
	sort.Strings(keys)
	b.WriteString(strings.Join(keys, ","))
	return b.String()
}

// findShared looks for an existing node with the given share key among
// the candidates reachable from the left source.
func (net *Network) findShared(parent *Node, leftAlpha *AlphaPattern, key string) *Node {
	if parent != nil {
		for _, s := range parent.Succs {
			if s.shareKey == key {
				return s
			}
		}
		return nil
	}
	for _, r := range leftAlpha.Routes {
		if r.Side == Left && r.Node.shareKey == key {
			return r.Node
		}
	}
	return nil
}

// AlphasForClass returns the alpha patterns filtering the given class.
func (net *Network) AlphasForClass(class string) []*AlphaPattern {
	return net.byClass[class]
}

// Stats summarizes network size.
type Stats struct {
	AlphaPatterns   int
	JoinNodes       int
	NegativeNodes   int
	DummyNodes      int
	ProductionNodes int
	BoundedNodes    int
}

// Stats computes node counts by kind.
func (net *Network) Stats() Stats {
	var s Stats
	s.AlphaPatterns = len(net.Alphas)
	for _, n := range net.Nodes {
		switch n.Kind {
		case KindJoin:
			s.JoinNodes++
		case KindNegative:
			s.NegativeNodes++
		case KindDummy:
			s.DummyNodes++
		case KindProduction:
			s.ProductionNodes++
		case KindBounded:
			s.BoundedNodes++
		}
	}
	return s
}
