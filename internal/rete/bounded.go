package rete

// Worst-case-bounded matching (CompileOptions.BoundedJoins), the
// CORGI-style sibling of the shared / unshared / copy-and-constraint
// variants.
//
// The classic compilation chains two-input nodes whose beta memories
// materialize every partial instantiation. When consecutive joins have
// no equality tests — the Tourney pathology of Section 5.2.2 — those
// memories grow as the product of the alpha memory sizes: k chained
// non-discriminating patterns over N wmes each store up to N^(k/2)
// tokens before the first selective test prunes anything.
//
// The bounded variant stores no partial instantiations at all. Each
// condition element gets one collector node (KindBounded) holding just
// the wmes matching its own alpha pattern; an activation lazily
// enumerates complete instantiations by depth-first search across the
// group's collector memories, with the activated wme pinned at its own
// position. Two compile-time decisions bound the search:
//
//   - join order: positive CEs are reordered most-discriminating-first
//     by a greedy pass that maximizes (equality links to already-placed
//     CEs, total links to placed CEs, constant-test count) with the
//     lowest textual index as the deterministic tie-break, so every
//     candidate is constrained as early as possible;
//
//   - eager constraint propagation: each cross-CE variable test is
//     hosted at the later of its two endpoints in join order (with the
//     comparison conversed when the textual direction flips), and the
//     pinned member's tests are additionally applied the moment the
//     position they reference is filled, not when the pin's own
//     position is reached.
//
// Cost bound: an activation first partitions the group's bucket into
// per-collector candidate lists in one pass, then the DFS touches, per
// join position, at most the wmes of one collector memory — each a
// subset of working memory — so one activation costs
// O(k · |WM| · t + matches) with no storage beyond the stack and the
// reused partition scratch: quadratic in (k, |WM|) in the worst case, against
// classic Rete's exponential beta growth on the same programs. The
// price is recomputation: wmes with high temporal redundancy re-scan
// collector memories that a beta memory would have cached, which is why
// this is a variant and not the default.
//
// The enumerator feeds the same InstChange stream as every other
// variant: completed stacks become left activations of the group's
// production node, so the engine, the parallel runtime, and the TCP
// transport consume bounded networks unchanged. All of a group's
// collectors hash to the group's home node id (see HashKey), keeping
// the group's memories — and therefore the whole enumeration — on one
// bucket owner.

import "mpcrete/internal/ops5"

// boundedGroup ties together one production's collector nodes and
// terminal. members is in join order: positive collectors at positions
// 0..nPos-1, then one collector per negated CE.
type boundedGroup struct {
	members  []*Node
	nPos     int
	terminal *Node
}

// home returns the node whose id keys every bucket of the group.
func (g *boundedGroup) home() *Node { return g.members[0] }

// bRawTest is a cross-CE variable test before it is assigned to a
// collector. CE indexes are original (textual) LHS positions: hostCE is
// the CE whose attribute is compared, bindCE the CE that textually
// bound the variable — exactly the test set the standard compiler
// builds, so reordering never changes which tests exist, only where
// they are evaluated.
type bRawTest struct {
	op       ops5.PredOp
	hostCE   int
	hostAttr string
	bindCE   int
	bindAttr string
}

// converseOp flips a comparison for evaluation with its operands
// swapped: a < b  <=>  b > a. Symmetric predicates are their own
// converse.
func converseOp(op ops5.PredOp) ops5.PredOp {
	switch op {
	case ops5.OpLt:
		return ops5.OpGt
	case ops5.OpGt:
		return ops5.OpLt
	case ops5.OpLe:
		return ops5.OpGe
	case ops5.OpGe:
		return ops5.OpLe
	}
	return op
}

// addProductionBounded compiles one production into a bounded collector
// group. The caller (addProduction) has already validated p and checked
// for duplicates.
func (net *Network) addProductionBounded(p *ops5.Production) (*ProdInfo, error) {
	var positives, negatives []int
	for i, ce := range p.LHS {
		if !ce.Negated {
			positives = append(positives, i)
		}
	}
	for i, ce := range p.LHS {
		if ce.Negated {
			negatives = append(negatives, i)
		}
	}

	info := &ProdInfo{
		Prod:     p,
		VarDefs:  map[string]VarDef{},
		TokenPos: make([]int, len(p.LHS)),
	}
	for i := range info.TokenPos {
		info.TokenPos[i] = -1
	}

	// Pass 1 — textual semantics. Walk the CEs in the same order as the
	// standard compiler (positives then negatives, textual within each)
	// and record, per CE, its alpha-level constant tests and the raw
	// cross-CE variable tests against earlier bindings. This fixes the
	// test set and the variable definitions before any reordering, so
	// the bounded network accepts exactly the instantiations the
	// standard network does.
	type binding struct {
		ce   int
		attr string
	}
	varPos := map[string]binding{}
	alphaTests := make([][]ConstTest, len(p.LHS))
	var raw []bRawTest
	for _, orig := range append(append([]int{}, positives...), negatives...) {
		ce := &p.LHS[orig]
		boundOutside := func(v string) bool { _, ok := varPos[v]; return ok }
		tests, firstAttr := buildAlphaTests(ce, boundOutside)
		alphaTests[orig] = tests
		for _, at := range ce.Tests {
			for _, term := range at.Terms {
				if term.Var == "" {
					continue
				}
				b, ok := varPos[term.Var]
				if !ok {
					continue // defined inside this CE (alpha-level)
				}
				raw = append(raw, bRawTest{op: term.Op, hostCE: orig, hostAttr: at.Attr, bindCE: b.ce, bindAttr: b.attr})
			}
		}
		if !ce.Negated {
			for v, attr := range firstAttr {
				varPos[v] = binding{ce: orig, attr: attr}
				info.VarDefs[v] = VarDef{OrigCE: orig, Attr: attr}
			}
		}
	}

	// Pass 2 — greedy join order over the positive CEs,
	// most-discriminating-first: seed with the CE carrying the most
	// constant tests, then repeatedly place the CE maximizing (equality
	// links to placed CEs, total links to placed CEs, constant-test
	// count), breaking every tie on the lowest textual index so the
	// order — and with it tokens, traces, and conflict-set keys — is
	// deterministic.
	nPos := len(positives)
	posIdx := make(map[int]int, nPos)
	for i, orig := range positives {
		posIdx[orig] = i
	}
	eqLinks := make([][]int, nPos)
	allLinks := make([][]int, nPos)
	for i := range eqLinks {
		eqLinks[i] = make([]int, nPos)
		allLinks[i] = make([]int, nPos)
	}
	for _, rt := range raw {
		hi, hok := posIdx[rt.hostCE]
		bi, bok := posIdx[rt.bindCE]
		if !hok || !bok {
			continue // involves a negated CE; does not guide ordering
		}
		allLinks[hi][bi]++
		allLinks[bi][hi]++
		if rt.op == ops5.OpEq {
			eqLinks[hi][bi]++
			eqLinks[bi][hi]++
		}
	}
	placed := make([]bool, nPos)
	joinOrder := make([]int, 0, nPos)
	for len(joinOrder) < nPos {
		best := -1
		var bestKey [4]int
		for c := 0; c < nPos; c++ {
			if placed[c] {
				continue
			}
			var eq, all int
			for _, pl := range joinOrder {
				eq += eqLinks[c][pl]
				all += allLinks[c][pl]
			}
			key := [4]int{eq, all, len(alphaTests[positives[c]]), -positives[c]}
			if best == -1 || boundedKeyGreater(key, bestKey) {
				best, bestKey = c, key
			}
		}
		placed[best] = true
		joinOrder = append(joinOrder, best)
	}

	// Build the collector chain in join order (negated CEs last, textual
	// order). The Parent/Succs chain carries no activations — the
	// enumerator emits straight to the terminal — but it gives excise,
	// DOT export, and the codec the same structural spine as every other
	// variant.
	ordered := make([]int, 0, len(p.LHS))
	for _, c := range joinOrder {
		ordered = append(ordered, positives[c])
	}
	ordered = append(ordered, negatives...)
	joinPos := make(map[int]int, len(ordered))
	for jp, orig := range ordered {
		joinPos[orig] = jp
	}

	g := &boundedGroup{nPos: nPos}
	var prev *Node
	for jp, orig := range ordered {
		ce := &p.LHS[orig]
		n := net.newNode(KindBounded)
		n.OrigCE = orig
		n.TokenLen = nPos
		n.group = g
		n.bPos = jp
		n.bNeg = ce.Negated
		if prev != nil {
			prev.Succs = append(prev.Succs, n)
			n.Parent = prev
		}
		net.addRoute(net.internAlpha(ce.Class, alphaTests[orig]), n, Right)
		g.members = append(g.members, n)
		if !ce.Negated {
			info.TokenPos[orig] = jp
		}
		prev = n
	}

	// Host every raw test at the later of its endpoints in join order,
	// conversing the comparison when the evaluation direction flips.
	// Negated collectors sit after all positives, so their tests always
	// stay home and reference only positive positions.
	for _, rt := range raw {
		hp, bp := joinPos[rt.hostCE], joinPos[rt.bindCE]
		var host *Node
		var jt JoinTest
		if hp > bp {
			host = g.members[hp]
			jt = JoinTest{Op: rt.op, RightAttr: rt.hostAttr, LeftPos: bp, LeftAttr: rt.bindAttr}
		} else {
			host = g.members[bp]
			jt = JoinTest{Op: converseOp(rt.op), RightAttr: rt.bindAttr, LeftPos: hp, LeftAttr: rt.hostAttr}
		}
		host.Tests = append(host.Tests, jt)
		if jt.Op == ops5.OpEq {
			host.EqTests = append(host.EqTests, jt)
		}
	}

	pn := net.newNode(KindProduction)
	pn.Prod = p
	pn.Parent = prev
	pn.LeftLen = nPos
	pn.TokenLen = nPos
	pn.group = g
	prev.Succs = append(prev.Succs, pn)
	g.terminal = pn
	info.Node = pn

	net.Prods[p.Name] = info
	net.ProdOrder = append(net.ProdOrder, p.Name)
	return info, nil
}

func boundedKeyGreater(a, b [4]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] > b[i]
		}
	}
	return false
}

// processBounded performs one collector activation: mutate the
// collector's right memory first (so the memory state already reflects
// this change), then lazily enumerate every complete instantiation the
// change creates or destroys, with the activated wme pinned at its own
// join position. Completed stacks go to the group's terminal as left
// activations — the same currency every other node kind emits.
//
// Mutate-before-enumerate is also what makes a wme reaching several
// collectors of one group emit each instantiation exactly once: on
// adds, only the last-processed of its activations sees every position
// populated; on deletes, only the first-processed still does.
func (p *Processor) processBounded(a Activation, b int, emit func(Activation)) {
	n := a.Node
	if a.Tag == Add {
		p.right.addRight(b, n, a.WME)
	} else if p.right.removeRight(b, n, a.WME.ID) == nil {
		// Duplicate delete: the first removal already unwound every
		// instantiation this wme participated in.
		return
	}
	g := n.group
	if cap(p.bstack) < g.nPos {
		p.bstack = make([]*ops5.WME, g.nPos)
	}
	p.bstack = p.bstack[:g.nPos]

	// Partition the group's bucket once: one candidate list per
	// collector (bPos is the member index), so each DFS level iterates
	// only its own collector's wmes. Other nodes sharing the bucket by
	// hash collision are skipped here instead of at every level.
	if cap(p.bmem) < len(g.members) {
		p.bmem = make([][]*ops5.WME, len(g.members))
	}
	p.bmem = p.bmem[:len(g.members)]
	for i := range p.bmem {
		p.bmem[i] = p.bmem[i][:0]
	}
	for _, e := range p.right.entries(b) {
		if e.node.group == g {
			p.bmem[e.node.bPos] = append(p.bmem[e.node.bPos], e.wme)
		}
	}

	// An empty candidate list at any positive position the pin does not
	// fill itself means no instantiation can complete: skip the DFS.
	for pos := 0; pos < g.nPos; pos++ {
		if len(p.bmem[pos]) == 0 && (n.bNeg || g.members[pos] != n) {
			return
		}
	}

	if n.bNeg {
		p.boundedEnumNeg(g, n, 0, a, emit)
	} else {
		p.boundedEnumPos(g, n, 0, a, emit)
	}
}

// boundedEnumPos extends the DFS stack at join position pos, with the
// activated wme pinned at pin's position. At a full stack the
// instantiation exists unless some negated collector has a matching
// wme.
func (p *Processor) boundedEnumPos(g *boundedGroup, pin *Node, pos int, a Activation, emit func(Activation)) {
	if pos == g.nPos {
		for _, m := range g.members[g.nPos:] {
			if p.boundedNegCount(m, nil) > 0 {
				return
			}
		}
		p.boundedEmit(g, a.Tag, emit)
		return
	}
	m := g.members[pos]
	if m == pin {
		if p.boundedTests(m, a.WME) {
			p.bstack[pos] = a.WME
			p.boundedEnumPos(g, pin, pos+1, a, emit)
		}
		return
	}
	for _, w := range p.bmem[pos] {
		if !p.boundedTests(m, w) {
			continue
		}
		if pos < pin.bPos && !p.boundedPinTests(pin, pos, a.WME, w) {
			continue
		}
		p.bstack[pos] = w
		p.boundedEnumPos(g, pin, pos+1, a, emit)
	}
}

// boundedEnumNeg enumerates the positive instantiations whose negation
// count transitions because of an activation at negated collector negm.
// The DFS prunes on negm's tests eagerly, so every completed stack is
// one the activated wme matches; the emission then requires the 0 <-> 1
// transition: no other wme of negm matches (on Add the wme itself is
// already stored, on Delete already gone), and every other negated
// collector is empty for this stack. An add of a blocking wme deletes
// the instantiation; a delete revives it.
func (p *Processor) boundedEnumNeg(g *boundedGroup, negm *Node, pos int, a Activation, emit func(Activation)) {
	if pos == g.nPos {
		if p.boundedNegCount(negm, a.WME) > 0 {
			return
		}
		for _, m := range g.members[g.nPos:] {
			if m != negm && p.boundedNegCount(m, nil) > 0 {
				return
			}
		}
		tag := Delete
		if a.Tag == Delete {
			tag = Add
		}
		p.boundedEmit(g, tag, emit)
		return
	}
	m := g.members[pos]
	for _, w := range p.bmem[pos] {
		if !p.boundedTests(m, w) {
			continue
		}
		if !p.boundedPinTests(negm, pos, a.WME, w) {
			continue
		}
		p.bstack[pos] = w
		p.boundedEnumNeg(g, negm, pos+1, a, emit)
	}
}

// boundedTests reports whether w can fill collector m's join position
// given the stack built so far; every test hosted at m references only
// earlier join positions by construction.
func (p *Processor) boundedTests(m *Node, w *ops5.WME) bool {
	for _, jt := range m.Tests {
		if !jt.Op.Apply(w.Get(jt.RightAttr), p.bstack[jt.LeftPos].Get(jt.LeftAttr)) {
			return false
		}
	}
	return true
}

// boundedPinTests applies pin's tests that reference join position pos
// to a candidate w for that position — eager constraint propagation, so
// the DFS prunes with the activated wme's bindings long before the
// pin's own position is reached.
func (p *Processor) boundedPinTests(pin *Node, pos int, pinW, w *ops5.WME) bool {
	for _, jt := range pin.Tests {
		if jt.LeftPos == pos && !jt.Op.Apply(pinW.Get(jt.RightAttr), w.Get(jt.LeftAttr)) {
			return false
		}
	}
	return true
}

// boundedNegCount counts the wmes in negated collector m's memory that
// match the full DFS stack, ignoring exclude (the activation's own wme
// on the negated add path, which is already stored).
func (p *Processor) boundedNegCount(m *Node, exclude *ops5.WME) int {
	count := 0
	for _, w := range p.bmem[m.bPos] {
		if w != exclude && p.boundedTests(m, w) {
			count++
		}
	}
	return count
}

// boundedEmit materializes the completed stack as an arena-carved token
// and emits it to the group's production node.
func (p *Processor) boundedEmit(g *boundedGroup, tag Tag, emit func(Activation)) {
	t := p.arena.newToken(g.nPos)
	copy(t.WMEs, p.bstack)
	emit(Activation{Node: g.terminal, Side: Left, Tag: tag, Token: t})
}
