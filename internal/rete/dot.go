package rete

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the network in Graphviz DOT form: alpha patterns as
// boxes feeding the two-input nodes (solid = left input, dashed =
// right input), join/negative/dummy nodes as ellipses, production
// nodes as double octagons. Useful for documentation and for
// eyeballing the effect of transformations (Fig 2-2 / Fig 5-3 style
// pictures).
func WriteDOT(w io.Writer, net *Network) error {
	var b strings.Builder
	b.WriteString("digraph rete {\n")
	b.WriteString("  rankdir=TB;\n  node [fontsize=10];\n")

	for _, a := range net.Alphas {
		label := a.Class
		for i := range a.Tests {
			label += "\\n" + a.Tests[i].key()
		}
		fmt.Fprintf(&b, "  alpha%d [shape=box, label=\"%s\"];\n", a.ID, label)
	}
	for _, n := range net.Nodes {
		if n.Detached() {
			continue
		}
		switch n.Kind {
		case KindProduction:
			fmt.Fprintf(&b, "  n%d [shape=doubleoctagon, label=\"%s\"];\n", n.ID, n.Prod.Name)
		case KindNegative:
			fmt.Fprintf(&b, "  n%d [shape=ellipse, label=\"not n%d\\n%s\"];\n", n.ID, n.ID, testsLabel(n))
		case KindDummy:
			fmt.Fprintf(&b, "  n%d [shape=circle, label=\"d%d\"];\n", n.ID, n.ID)
		case KindBounded:
			neg := ""
			if n.bNeg {
				neg = "not "
			}
			fmt.Fprintf(&b, "  n%d [shape=hexagon, label=\"%scollect@%d n%d\\n%s\"];\n", n.ID, neg, n.bPos, n.ID, testsLabel(n))
		default:
			extra := ""
			if n.copyCount > 1 {
				extra = fmt.Sprintf("\\ncopy %d/%d", n.copyIndex+1, n.copyCount)
			}
			fmt.Fprintf(&b, "  n%d [shape=ellipse, label=\"join n%d\\n%s%s\"];\n", n.ID, n.ID, testsLabel(n), extra)
		}
	}
	for _, a := range net.Alphas {
		for _, r := range a.Routes {
			style := "solid"
			if r.Side == Right {
				style = "dashed"
			}
			fmt.Fprintf(&b, "  alpha%d -> n%d [style=%s];\n", a.ID, r.Node.ID, style)
		}
	}
	for _, n := range net.Nodes {
		if n.Detached() {
			continue
		}
		for _, s := range n.Succs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", n.ID, s.ID)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func testsLabel(n *Node) string {
	if len(n.Tests) == 0 {
		return "(no tests)"
	}
	parts := make([]string, len(n.Tests))
	for i, t := range n.Tests {
		parts[i] = t.key()
	}
	return strings.Join(parts, "\\n")
}
