package rete

import "mpcrete/internal/ops5"

// Aliases keeping exported struct fields readable while the package
// consistently refers to the ops5 data model.
type (
	// WMEType aliases ops5.WME.
	WMEType = ops5.WME
	// ProductionType aliases ops5.Production.
	ProductionType = ops5.Production
)
