package rete

import (
	"fmt"

	"mpcrete/internal/ops5"
)

// Variants lists the compile-time network variant names accepted by
// CompileVariant, in canonical order. The same spellings are used by
// the difftest oracle matrix, ops5run/ops5d -variant, and the bench
// join family.
func Variants() []string { return []string{"shared", "unshared", "candc", "bounded"} }

// CompileVariant compiles prods as the named network variant:
//
//	"shared"    default compilation (alpha and join-prefix sharing)
//	"unshared"  no node sharing (Section 5.2.1 method 1, global)
//	"candc"     copy-and-constrain k=2 applied to every terminal join
//	            of a shared network (Section 5.2.2)
//	"bounded"   worst-case-bounded collector groups with the lazy
//	            enumerator (see bounded.go)
//
// The empty string means "shared". This is the single spelling of
// variant selection shared by every CLI and the difftest oracle.
func CompileVariant(prods []*ops5.Production, variant string) (*Network, error) {
	switch variant {
	case "", "shared":
		return Compile(prods)
	case "unshared":
		return CompileWith(prods, CompileOptions{DisableSharing: true})
	case "bounded":
		return CompileWith(prods, CompileOptions{BoundedJoins: true})
	case "candc":
		net, err := Compile(prods)
		if err != nil {
			return nil, err
		}
		// Split every terminal join (all successors are production
		// nodes). Chained splits are out: cloning a join rewires only
		// its original parent's successor list, so stacking copies
		// through a join-over-join pyramid loses replication paths —
		// the paper's source-level transformation likewise targets one
		// culprit node. Snapshot first: CopyAndConstrain appends clones
		// to net.Nodes.
		joins := make([]*Node, 0, len(net.Nodes))
		for _, n := range net.Nodes {
			if n.Kind != KindJoin {
				continue
			}
			terminal := true
			for _, s := range n.Succs {
				if s.Kind != KindProduction {
					terminal = false
					break
				}
			}
			if terminal {
				joins = append(joins, n)
			}
		}
		for _, n := range joins {
			if _, err := net.CopyAndConstrain(n, 2); err != nil {
				return nil, err
			}
		}
		return net, nil
	default:
		return nil, fmt.Errorf("rete: unknown network variant %q (want one of %v)", variant, Variants())
	}
}
