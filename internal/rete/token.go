package rete

import (
	"strconv"
	"strings"

	"mpcrete/internal/ops5"
)

// Token is a partial instantiation: the wmes matching the positive
// condition elements compiled so far, in compiled order.
type Token struct {
	WMEs []*ops5.WME
}

// Extend returns a new token with w appended.
func (t *Token) Extend(w *ops5.WME) *Token {
	wmes := make([]*ops5.WME, len(t.WMEs)+1)
	copy(wmes, t.WMEs)
	wmes[len(t.WMEs)] = w
	return &Token{WMEs: wmes}
}

// Same reports whether two tokens cover exactly the same wmes (by ID).
func (t *Token) Same(o *Token) bool {
	if len(t.WMEs) != len(o.WMEs) {
		return false
	}
	for i := range t.WMEs {
		if t.WMEs[i].ID != o.WMEs[i].ID {
			return false
		}
	}
	return true
}

// IDKey returns a canonical encoding of the token's wme ID list.
func (t *Token) IDKey() string {
	var b strings.Builder
	for i, w := range t.WMEs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(w.ID))
	}
	return b.String()
}

// String renders the token's wme IDs for diagnostics.
func (t *Token) String() string { return "[" + t.IDKey() + "]" }

// FNV-1a parameters; the inlined hash below must keep producing the
// same keys as hash/fnv (pinned by TestHashKeyMatchesFNVReference), so
// bucket assignments — and with them traces and partition statistics —
// are stable across the optimization.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashKey computes the distributed-hash-table key for an activation of
// node n: the node id plus the values bound to the variables tested for
// equality at n (Section 3.1). A left token supplies the left-side
// values, a right wme the right-side values; consistent pairs hash
// identically by construction. Nodes with no equality tests hash on
// the node id alone — the cross-product pathology observed in Tourney.
//
// The hash is FNV-1a, computed inline with no allocations (the
// hash/fnv writer and the materialized value keys were the hottest
// allocation sites of the parallel runtime's message plane).
//
// Nodes of a worst-case-bounded group (BoundedJoins) all hash on the
// group's home node id and ignore equality tests: the lazy enumerator
// needs every collector memory of a production in one bucket, so the
// whole group is deliberately clustered on one owner (the bounded
// analogue of the paper's cluster-on-one-processor remedy).
func HashKey(n *Node, side Side, t *Token, w *ops5.WME) uint64 {
	h := uint64(fnvOffset64)
	id := uint64(n.ID)
	if n.group != nil {
		id = uint64(n.group.members[0].ID)
	}
	for i := 0; i < 8; i++ {
		h = (h ^ uint64(byte(id>>(8*i)))) * fnvPrime64
	}
	if n.group != nil {
		return h
	}
	for _, jt := range n.EqTests {
		var v ops5.Value
		if side == Left {
			v = t.WMEs[jt.LeftPos].Get(jt.LeftAttr)
		} else {
			v = w.Get(jt.RightAttr)
		}
		h = v.HashFNV(h)
		h *= fnvPrime64 // separator byte 0: (h ^ 0) * prime
	}
	return h
}
