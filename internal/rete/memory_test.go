package rete

import (
	"testing"

	"mpcrete/internal/ops5"
)

func mkWME(id int, class string, pairs ...any) *ops5.WME {
	w := ops5.NewWME(class, pairs...)
	w.ID, w.TimeTag = id, id
	return w
}

func TestMemoryAddRemoveScan(t *testing.T) {
	m := NewMemory(Right, 8)
	n1 := &Node{ID: 1, Kind: KindJoin}
	n2 := &Node{ID: 2, Kind: KindJoin}

	w1, w2 := mkWME(1, "a"), mkWME(2, "a")
	m.addRight(3, n1, w1)
	m.addRight(3, n2, w2) // same bucket, different node
	m.addRight(5, n1, w2)

	if m.Len() != 3 {
		t.Fatalf("len = %d", m.Len())
	}
	// Scan filters by node.
	var seen []int
	m.scan(3, n1, func(e *memEntry) { seen = append(seen, e.wme.ID) })
	if len(seen) != 1 || seen[0] != 1 {
		t.Errorf("scan(3, n1) = %v", seen)
	}
	// Remove is node- and id-specific.
	if e := m.removeRight(3, n1, 2); e != nil {
		t.Error("removed wrong entry")
	}
	if e := m.removeRight(3, n1, 1); e == nil {
		t.Error("failed to remove present entry")
	}
	if m.Len() != 2 {
		t.Errorf("len = %d", m.Len())
	}
	// Double remove is nil.
	if e := m.removeRight(3, n1, 1); e != nil {
		t.Error("double remove returned entry")
	}
}

func TestMemoryLeftTokens(t *testing.T) {
	m := NewMemory(Left, 4)
	n := &Node{ID: 7, Kind: KindNegative}
	t1 := &Token{WMEs: []*ops5.WME{mkWME(1, "a"), mkWME(2, "b")}}
	t2 := &Token{WMEs: []*ops5.WME{mkWME(1, "a"), mkWME(3, "b")}}

	e1 := m.addLeft(2, n, t1)
	e1.count = 5
	m.addLeft(2, n, t2)

	// Removal matches by wme-id sequence.
	probe := &Token{WMEs: []*ops5.WME{mkWME(1, "a"), mkWME(2, "b")}}
	got := m.removeLeft(2, n, probe)
	if got == nil || got.count != 5 {
		t.Fatalf("removeLeft = %+v", got)
	}
	if m.Len() != 1 {
		t.Errorf("len = %d", m.Len())
	}
	// Token with different coverage does not match.
	if e := m.removeLeft(2, n, probe); e != nil {
		t.Error("removed absent token")
	}
}

func TestMemoryRejectsBadBucketCount(t *testing.T) {
	for _, n := range []int{0, -4, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMemory(%d) should panic", n)
				}
			}()
			NewMemory(Left, n)
		}()
	}
	// Powers of two are fine, including 1.
	NewMemory(Left, 1)
	NewMemory(Left, 4096)
}

func TestBucketSizes(t *testing.T) {
	m := NewMemory(Right, 4)
	n := &Node{ID: 1}
	m.addRight(0, n, mkWME(1, "a"))
	m.addRight(0, n, mkWME(2, "a"))
	m.addRight(3, n, mkWME(3, "a"))
	sizes := m.BucketSizes()
	want := []int{2, 0, 0, 1}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
}

func TestTokenOps(t *testing.T) {
	w1, w2 := mkWME(1, "a"), mkWME(2, "b")
	t1 := &Token{WMEs: []*ops5.WME{w1}}
	t2 := t1.Extend(w2)
	if len(t1.WMEs) != 1 || len(t2.WMEs) != 2 {
		t.Fatal("extend must not mutate the source token")
	}
	if !t2.Same(&Token{WMEs: []*ops5.WME{w1, w2}}) {
		t.Error("Same failed on identical coverage")
	}
	if t2.Same(t1) {
		t.Error("Same true for different lengths")
	}
	if t2.IDKey() != "1,2" {
		t.Errorf("IDKey = %q", t2.IDKey())
	}
	if t2.String() != "[1,2]" {
		t.Errorf("String = %q", t2.String())
	}
}

func TestProcessorRootActivations(t *testing.T) {
	net := compileT(t, []string{
		`(p p1 (a ^x 1) (b ^x <v>) --> (halt))`,
		`(p p2 (a ^x 2) --> (halt))`,
	})
	proc := NewProcessor(net, 16)

	// a^x=1 matches p1's first CE only (left activation).
	acts := proc.RootActivations(Change{Tag: Add, WME: mkWME(1, "a", "x", 1)})
	if len(acts) != 1 || acts[0].Side != Left || acts[0].Token == nil {
		t.Fatalf("acts = %+v", acts)
	}
	// a^x=2 matches p2 (a production-node left activation).
	acts = proc.RootActivations(Change{Tag: Add, WME: mkWME(2, "a", "x", 2)})
	if len(acts) != 1 || acts[0].Node.Kind != KindProduction {
		t.Fatalf("acts = %+v", acts)
	}
	// b matches p1's join right input.
	acts = proc.RootActivations(Change{Tag: Add, WME: mkWME(3, "b", "x", 9)})
	if len(acts) != 1 || acts[0].Side != Right || acts[0].WME == nil {
		t.Fatalf("acts = %+v", acts)
	}
	// Unknown class matches nothing.
	if acts := proc.RootActivations(Change{Tag: Add, WME: mkWME(4, "zzz")}); len(acts) != 0 {
		t.Fatalf("acts = %+v", acts)
	}
}

func TestProcessorProcessEmitsOnlyToCallback(t *testing.T) {
	net := compileT(t, []string{`(p p1 (a ^x <v>) (b ^x <v>) --> (halt))`})
	proc := NewProcessor(net, 16)

	var emitted []Activation
	emit := func(a Activation) { emitted = append(emitted, a) }
	noInst := func(InstChange) { t.Fatal("unexpected inst") }

	// Right wme first: stored, no matches.
	for _, a := range proc.RootActivations(Change{Tag: Add, WME: mkWME(1, "b", "x", 5)}) {
		proc.Process(a, emit, noInst)
	}
	if len(emitted) != 0 {
		t.Fatalf("emitted = %v", emitted)
	}
	// Matching left token: emits the joined token to the production
	// node.
	for _, a := range proc.RootActivations(Change{Tag: Add, WME: mkWME(2, "a", "x", 5)}) {
		proc.Process(a, emit, noInst)
	}
	if len(emitted) != 1 || emitted[0].Node.Kind != KindProduction {
		t.Fatalf("emitted = %+v", emitted)
	}
	if got := emitted[0].Token.IDKey(); got != "2,1" {
		t.Errorf("joined token = %q, want \"2,1\" (compiled CE order)", got)
	}
}
