package rete

import (
	"fmt"
	"sort"
)

// This file implements the three network transformations Section 5.2
// of the paper uses to attack the multiple-successor bottleneck and
// the non-discriminating-hash (cross-product) problem:
//
//  1. Unsharing (Fig 5-3): split a node with several successors into
//     per-successor copies so successor generation proceeds on
//     different processors. Globally, compiling with
//     CompileOptions.DisableSharing unshares every prefix.
//  2. Dummy nodes ([Gupta 86], ch. 4): interpose pass-through nodes
//     that divide a node's successors into 2-4 groups.
//  3. Copy-and-constraint (Stolfo's DADO technique): make k copies of
//     a join node, each matching a disjoint part of the right memory,
//     so a cross-product's successor generation is spread over k
//     hash sites.
//
// All transformations must be applied to a freshly compiled network,
// before any wme has been matched: they restructure node identity and
// therefore the hash-table layout.

// Unshare applies the Fig 5-3 transformation to the given two-input
// node: if the node has more than one successor, it is split into one
// copy per successor, each with a distinct node id (and therefore
// distinct hash buckets). The returned slice holds the resulting nodes
// (the original, now single-successor, node first). Some match work is
// duplicated across the copies, which the paper argues is acceptable
// (sharing buys only a factor of 1.1-1.6 overall).
func (net *Network) Unshare(n *Node) ([]*Node, error) {
	if !n.IsTwoInput() {
		return nil, fmt.Errorf("rete: cannot unshare %s node %d", n.Kind, n.ID)
	}
	if len(n.Succs) <= 1 {
		return []*Node{n}, nil
	}
	succs := n.Succs
	result := []*Node{n}
	n.Succs = []*Node{succs[0]}
	for _, s := range succs[1:] {
		c := net.cloneNode(n)
		c.Succs = []*Node{s}
		if s.Parent == n {
			s.Parent = c
		}
		result = append(result, c)
	}
	return result, nil
}

// UnshareFanoutAbove splits every two-input node whose successor count
// exceeds maxFanout, returning the number of nodes split. It is the
// whole-network form used for the Weaver experiment (Fig 5-4).
func (net *Network) UnshareFanoutAbove(maxFanout int) (split int, err error) {
	if maxFanout < 1 {
		return 0, fmt.Errorf("rete: maxFanout must be >= 1, got %d", maxFanout)
	}
	// Snapshot: cloning appends to net.Nodes.
	nodes := make([]*Node, len(net.Nodes))
	copy(nodes, net.Nodes)
	for _, n := range nodes {
		if n.IsTwoInput() && len(n.Succs) > maxFanout {
			if _, err := net.Unshare(n); err != nil {
				return split, err
			}
			split++
		}
	}
	return split, nil
}

// InsertDummies interposes `parts` dummy pass-through nodes between n
// and its successors, dividing the successor set into near-equal
// groups (Section 5.2.1, method 2). The dummy activations are real
// work items and hash to their own buckets, so the fan-out is spread
// over `parts` sites at the cost of one extra network level.
func (net *Network) InsertDummies(n *Node, parts int) ([]*Node, error) {
	if !n.IsTwoInput() {
		return nil, fmt.Errorf("rete: cannot insert dummies below %s node %d", n.Kind, n.ID)
	}
	if parts < 2 || parts > len(n.Succs) {
		return nil, fmt.Errorf("rete: dummy parts %d out of range 2..%d", parts, len(n.Succs))
	}
	succs := n.Succs
	n.Succs = nil
	dummies := make([]*Node, parts)
	for i := range dummies {
		d := net.newNode(KindDummy)
		d.Parent = n
		d.LeftLen = n.TokenLen
		d.TokenLen = n.TokenLen
		dummies[i] = d
		n.Succs = append(n.Succs, d)
	}
	for i, s := range succs {
		d := dummies[i%parts]
		d.Succs = append(d.Succs, s)
		if s.Parent == n {
			s.Parent = d
		}
	}
	return dummies, nil
}

// CopyAndConstrain makes k copies of join node n (the original becomes
// copy 0), each accepting only right wmes whose id ≡ copy index
// (mod k). Left tokens are replicated to every copy; right memory is
// partitioned. The union of the copies' outputs equals the original
// node's output, but successor generation — and, because each copy has
// its own node id, the hash buckets — are spread k ways. This is the
// network-level equivalent of the paper's source-level
// copy-and-constraint (Section 5.2.2); the id-based discriminator
// substitutes for the value partition of the original formulation,
// which is unavailable when the join tests no variable at all.
func (net *Network) CopyAndConstrain(n *Node, k int) ([]*Node, error) {
	if n.Kind != KindJoin {
		return nil, fmt.Errorf("rete: copy-and-constraint applies to join nodes, not %s node %d", n.Kind, n.ID)
	}
	if k < 2 {
		return nil, fmt.Errorf("rete: copy count %d must be >= 2", k)
	}
	if n.copyCount > 1 {
		return nil, fmt.Errorf("rete: node %d is already a copy-and-constraint copy", n.ID)
	}
	copies := []*Node{n}
	for i := 1; i < k; i++ {
		c := net.cloneNode(n)
		c.Succs = append([]*Node(nil), n.Succs...)
		copies = append(copies, c)
	}
	for i, c := range copies {
		c.copyIndex = i
		c.copyCount = k
	}
	return copies, nil
}

// cloneNode duplicates a two-input node: fresh id, same tests, wired to
// the same left input (parent or alpha) and the same right alpha
// patterns. Successors are left empty for the caller to assign.
func (net *Network) cloneNode(n *Node) *Node {
	c := net.newNode(n.Kind)
	c.Tests = append([]JoinTest(nil), n.Tests...)
	c.EqTests = append([]JoinTest(nil), n.EqTests...)
	c.Parent = n.Parent
	c.OrigCE = n.OrigCE
	c.TokenLen = n.TokenLen
	c.LeftLen = n.LeftLen
	if n.Parent != nil {
		n.Parent.Succs = append(n.Parent.Succs, c)
	}
	for _, a := range net.Alphas {
		var add []AlphaRoute
		for _, r := range a.Routes {
			if r.Node == n {
				add = append(add, AlphaRoute{Node: c, Side: r.Side})
			}
		}
		a.Routes = append(a.Routes, add...)
	}
	return c
}

// FanoutProfile returns, for every two-input node, the successor count,
// sorted descending — the diagnostic used to pick unsharing and dummy
// targets.
func (net *Network) FanoutProfile() []int {
	var prof []int
	for _, n := range net.Nodes {
		if n.IsTwoInput() {
			prof = append(prof, len(n.Succs))
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(prof)))
	return prof
}
