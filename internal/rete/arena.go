package rete

import "mpcrete/internal/ops5"

// Arena chunk sizes. Tokens are small (one slice header), so a chunk
// amortizes the per-token allocation to ~1/256; wme-pointer backing is
// carved from larger blocks because token widths vary.
const (
	tokenChunkLen  = 256
	wmeRefChunkLen = 1024
)

// tokenArena amortizes Token and wme-slice allocation for a single
// Processor. Tokens produced by the match are long-lived (they are
// stored in the left memories), so the arena never recycles them
// individually: it hands out pointers into chunk-allocated blocks and
// drops its own reference to a block once the block is exhausted, at
// which point the block's lifetime is exactly the lifetime of the
// tokens carved from it. Steady-state match cycles therefore cost
// O(tokens/chunk) allocations instead of two per token (the Token and
// its WMEs backing array).
//
// The arena is single-owner, like the Processor that embeds it: the
// sequential Matcher and each parallel worker own one apiece.
type tokenArena struct {
	tokens []Token     // unconsumed tail of the current token chunk
	wmes   []*ops5.WME // unconsumed tail of the current backing chunk
}

// reset keeps the unconsumed chunk tails (still zeroed, still usable)
// but is otherwise a no-op: tokens already carved out become garbage
// when the memories that stored them are Reset. It exists so
// Processor.Reset has a single arena hook if recycling ever grows
// smarter.
func (ar *tokenArena) reset() {}

// newToken returns a fresh token with an n-wide WMEs slice, both carved
// from the arena. The slice is full-capacity-capped so an append can
// never bleed into a neighbouring token's backing.
func (ar *tokenArena) newToken(n int) *Token {
	if len(ar.tokens) == 0 {
		ar.tokens = make([]Token, tokenChunkLen)
	}
	t := &ar.tokens[0]
	ar.tokens = ar.tokens[1:]
	if n > len(ar.wmes) {
		size := wmeRefChunkLen
		if n > size {
			size = n
		}
		ar.wmes = make([]*ops5.WME, size)
	}
	t.WMEs = ar.wmes[:n:n]
	ar.wmes = ar.wmes[n:]
	return t
}

// extend returns a token covering t's wmes plus w, carved from the
// processor's arena — the hot-path replacement for Token.Extend.
func (p *Processor) extend(t *Token, w *ops5.WME) *Token {
	nt := p.arena.newToken(len(t.WMEs) + 1)
	copy(nt.WMEs, t.WMEs)
	nt.WMEs[len(t.WMEs)] = w
	return nt
}
