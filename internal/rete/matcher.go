package rete

import (
	"strconv"
)

// Change is one working-memory change presented to the matcher: an
// added or deleted wme. A modify action is presented as a delete
// followed by an add, as in OPS5.
type Change struct {
	Tag Tag
	WME *WMEType
}

// WMEType aliases ops5.WME for Change's field without an extra import
// at call sites. (Defined in wme_alias.go.)

// Event describes one two-input (or dummy) node activation, the unit
// of work the MPC simulator schedules. Seq numbers are assigned in
// processing order; ParentSeq is -1 for activations generated directly
// from wme changes by the constant tests (the paper's coarse-grained
// roots) and otherwise names the activation that generated this token.
type Event struct {
	Seq       int
	ParentSeq int
	Cycle     int
	Node      *Node
	Side      Side
	Tag       Tag
	Key       uint64
	Bucket    int
}

// InstChange is a conflict-set delta produced by a production node.
type InstChange struct {
	Tag  Tag
	Prod *ProductionType
	// WMEs holds the matched wmes indexed by original condition-element
	// position; entries for negated CEs are nil.
	WMEs []*WMEType
	// TimeTags are the sorted time tags of the matched wmes (used by
	// conflict resolution).
	TimeTags  []int
	ParentSeq int
	Cycle     int
}

// Key identifies the instantiation by production name and matched wme
// IDs; an add and its corresponding delete share a key. The encoding
// is exactly fmt.Sprintf("%s%v", name, ids) — e.g. `pair[3 17]` — but
// built with strconv because Key is on the conflict-set netting hot
// path of the parallel runtime.
func (ic *InstChange) Key() string {
	b := make([]byte, 0, len(ic.Prod.Name)+2+8*len(ic.WMEs))
	b = append(b, ic.Prod.Name...)
	b = append(b, '[')
	first := true
	for _, w := range ic.WMEs {
		if w == nil {
			continue
		}
		if !first {
			b = append(b, ' ')
		}
		first = false
		b = strconv.AppendInt(b, int64(w.ID), 10)
	}
	b = append(b, ']')
	return string(b)
}

// Listener observes match activity; the trace recorder implements it.
type Listener interface {
	// BeginCycle is called once per Apply with the cycle number and the
	// wme changes driving it.
	BeginCycle(cycle int, changes []Change)
	// Activation is called for every two-input / dummy node activation.
	Activation(ev Event)
	// Instantiation is called for every conflict-set delta.
	Instantiation(ch InstChange)
	// EndCycle is called when the match phase reaches fixpoint.
	EndCycle(cycle int)
}

// queued is an activation awaiting processing, with trace parentage.
type queued struct {
	act       Activation
	parentSeq int
}

// MatcherOptions configure the sequential matcher.
type MatcherOptions struct {
	// NBuckets is the size (power of two) of each global hash table.
	// NBuckets == 1 degenerates to the classic linear token memories —
	// the ablation baseline for hashed memories.
	NBuckets int
	// Listener, if non-nil, observes every activation.
	Listener Listener
}

// DefaultNBuckets is the paper-scale hash-table size used when
// MatcherOptions.NBuckets is zero.
const DefaultNBuckets = 1024

// Matcher runs the Rete match phase sequentially over the two global
// hashed memories. It is both the reference implementation the engine
// uses and the producer of hash-table activity traces for the MPC
// simulator. All activation work is delegated to a Processor; the
// matcher adds the FIFO queue, cycle bookkeeping, and trace events.
type Matcher struct {
	proc     *Processor
	listener Listener
	cycle    int
	seq      int
	queue    []queued
	rootBuf  []Activation // scratch for RootActivationsInto, reused across changes
}

// NewMatcher creates a matcher over a compiled network.
func NewMatcher(net *Network, opts MatcherOptions) *Matcher {
	return &Matcher{
		proc:     NewProcessor(net, opts.NBuckets),
		listener: opts.Listener,
	}
}

// Network returns the compiled network the matcher runs.
func (m *Matcher) Network() *Network { return m.proc.Network() }

// Memories exposes the left and right global hash tables (for
// diagnostics and tests).
func (m *Matcher) Memories() (left, right *Memory) { return m.proc.Memories() }

// Cycle returns the number of completed match phases.
func (m *Matcher) Cycle() int { return m.cycle }

// Reset returns the matcher to its freshly-constructed state over the
// same network: empty memories (storage retained), cycle and sequence
// counters rewound, queue emptied. It is the session-pool reuse hook —
// a Reset matcher behaves exactly like NewMatcher's result without
// reallocating its hash tables.
func (m *Matcher) Reset() {
	m.proc.Reset()
	m.cycle = 0
	m.seq = 0
	m.queue = m.queue[:0]
}

// Apply runs one match phase over the given wme changes and returns
// the conflict-set deltas in deterministic generation order.
func (m *Matcher) Apply(changes []Change) []InstChange {
	return m.ApplyFiltered(changes, nil)
}

// ApplyFiltered is Apply with the root activations restricted to nodes
// accepted by allow (nil accepts every node). It is the priming path
// for productions added to a live system: replaying working memory
// with allow restricted to the production's private new nodes
// populates exactly their memories and nothing else.
func (m *Matcher) ApplyFiltered(changes []Change, allow func(*Node) bool) []InstChange {
	m.cycle++
	m.seq = 0
	if m.listener != nil {
		m.listener.BeginCycle(m.cycle, changes)
	}

	for _, ch := range changes {
		m.rootBuf = m.proc.RootActivationsInto(ch, m.rootBuf[:0])
		for _, act := range m.rootBuf {
			if allow != nil && !allow(act.Node) {
				continue
			}
			m.queue = append(m.queue, queued{act: act, parentSeq: -1})
		}
	}

	var out []InstChange
	// Drain by index rather than popping the slice front: reslicing
	// m.queue[1:] would walk the append cursor down the backing array
	// and force a fresh allocation every few cycles even at steady
	// state.
	for head := 0; head < len(m.queue); head++ {
		m.step(m.queue[head], &out)
	}
	m.queue = m.queue[:0]

	if m.listener != nil {
		m.listener.EndCycle(m.cycle)
	}
	return out
}

func (m *Matcher) step(q queued, out *[]InstChange) {
	if q.act.Node.Kind == KindProduction {
		ch := m.proc.BuildInst(q.act)
		ch.ParentSeq = q.parentSeq
		ch.Cycle = m.cycle
		*out = append(*out, ch)
		if m.listener != nil {
			m.listener.Instantiation(ch)
		}
		return
	}

	key := q.act.HashKey()
	ev := Event{
		Seq:       m.seq,
		ParentSeq: q.parentSeq,
		Cycle:     m.cycle,
		Node:      q.act.Node,
		Side:      q.act.Side,
		Tag:       q.act.Tag,
		Key:       key,
		Bucket:    m.proc.Bucket(q.act),
	}
	m.seq++
	if m.listener != nil {
		m.listener.Activation(ev)
	}

	m.proc.ProcessAt(q.act, ev.Bucket,
		func(child Activation) {
			m.queue = append(m.queue, queued{act: child, parentSeq: ev.Seq})
		},
		func(InstChange) {
			panic("rete: Processor emitted an instantiation for a non-production node")
		})
}
