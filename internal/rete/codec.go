package rete

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"mpcrete/internal/ops5"
)

// This file implements a compact binary encoding of compiled networks,
// the engineering concern of Section 3.1: a large OPS5 program's
// in-line-expanded Rete code runs to megabytes, while a message-
// passing node may have 10-20 Kbytes of local memory, so the paper
// proposes encoding two-input nodes as small fixed records indexed by
// node id. EncodeNetwork/DecodeNetwork serialize the full compiled
// graph — including transformation products (unshared copies, dummy
// nodes, copy-and-constraint copies), which mere recompilation of the
// source productions would lose.

// Format 2 added the compile-option flags word, the per-node bounded
// fields (bPos/bNeg), and the per-production bounded collector-group
// member list.
const netMagic = "RETENET2"

// Compile-option flag bits in the header flags word.
const (
	netFlagDisableSharing = 1 << iota
	netFlagBoundedJoins
)

type netWriter struct {
	w   *bufio.Writer
	err error
}

func (nw *netWriter) u64(v uint64) {
	if nw.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, nw.err = nw.w.Write(buf[:n])
}

func (nw *netWriter) i64(v int64) {
	if nw.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, nw.err = nw.w.Write(buf[:n])
}

func (nw *netWriter) str(s string) {
	nw.u64(uint64(len(s)))
	if nw.err == nil {
		_, nw.err = nw.w.WriteString(s)
	}
}

func (nw *netWriter) value(v ops5.Value) {
	nw.u64(uint64(v.Kind))
	switch v.Kind {
	case ops5.KindSym:
		nw.str(v.Sym)
	case ops5.KindNum:
		nw.u64(math.Float64bits(v.Num))
	}
}

type netReader struct {
	r *bufio.Reader
}

func (nr *netReader) u64() (uint64, error) { return binary.ReadUvarint(nr.r) }
func (nr *netReader) i64() (int64, error)  { return binary.ReadVarint(nr.r) }

func (nr *netReader) intn(max int) (int, error) {
	v, err := nr.u64()
	if err != nil {
		return 0, err
	}
	if v > uint64(max) {
		return 0, fmt.Errorf("rete: decoded count %d exceeds limit %d", v, max)
	}
	return int(v), nil
}

func (nr *netReader) str() (string, error) {
	n, err := nr.intn(1 << 20)
	if err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(nr.r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func (nr *netReader) value() (ops5.Value, error) {
	kind, err := nr.u64()
	if err != nil {
		return ops5.Value{}, err
	}
	switch ops5.Kind(kind) {
	case ops5.KindNil:
		return ops5.Value{}, nil
	case ops5.KindSym:
		s, err := nr.str()
		return ops5.S(s), err
	case ops5.KindNum:
		b, err := nr.u64()
		return ops5.N(math.Float64frombits(b)), err
	}
	return ops5.Value{}, fmt.Errorf("rete: bad value kind %d", kind)
}

// EncodeNetwork writes the compiled network in the compact binary
// format.
func EncodeNetwork(w io.Writer, net *Network) error {
	nw := &netWriter{w: bufio.NewWriter(w)}
	if _, err := nw.w.WriteString(netMagic); err != nil {
		return err
	}

	// Compile-option flags, so dynamic production adds on a decoded
	// network compile the same variant the original did.
	var flags uint64
	if net.opts.DisableSharing {
		flags |= netFlagDisableSharing
	}
	if net.opts.BoundedJoins {
		flags |= netFlagBoundedJoins
	}
	nw.u64(flags)

	// Productions as source text (Production.String round-trips).
	nw.u64(uint64(len(net.ProdOrder)))
	for _, name := range net.ProdOrder {
		nw.str(net.Prods[name].Prod.String())
	}

	// Alpha patterns.
	nw.u64(uint64(len(net.Alphas)))
	for _, a := range net.Alphas {
		nw.str(a.Class)
		nw.u64(uint64(len(a.Tests)))
		for i := range a.Tests {
			ct := &a.Tests[i]
			nw.str(ct.Attr)
			nw.u64(uint64(ct.Op))
			nw.u64(uint64(len(ct.Disj)))
			for _, d := range ct.Disj {
				nw.value(d)
			}
			if ct.isOther {
				nw.u64(1)
				nw.str(ct.OtherAttr)
			} else {
				nw.u64(0)
				nw.value(ct.Value)
			}
		}
		nw.u64(uint64(len(a.Routes)))
		for _, r := range a.Routes {
			nw.u64(uint64(r.Node.ID))
			nw.u64(uint64(r.Side))
		}
	}

	// Nodes: the paper's compact per-node records.
	nw.u64(uint64(len(net.Nodes)))
	for _, n := range net.Nodes {
		nw.u64(uint64(n.Kind))
		nw.i64(int64(n.OrigCE))
		nw.u64(uint64(n.TokenLen))
		nw.u64(uint64(n.LeftLen))
		nw.u64(uint64(n.copyIndex))
		nw.u64(uint64(n.copyCount))
		if n.detached {
			nw.u64(1)
		} else {
			nw.u64(0)
		}
		nw.u64(uint64(n.bPos))
		if n.bNeg {
			nw.u64(1)
		} else {
			nw.u64(0)
		}
		if n.Parent != nil {
			nw.i64(int64(n.Parent.ID))
		} else {
			nw.i64(-1)
		}
		nw.u64(uint64(len(n.Succs)))
		for _, s := range n.Succs {
			nw.u64(uint64(s.ID))
		}
		nw.u64(uint64(len(n.Tests)))
		for _, t := range n.Tests {
			nw.u64(uint64(t.Op))
			nw.str(t.RightAttr)
			nw.u64(uint64(t.LeftPos))
			nw.str(t.LeftAttr)
		}
		if n.Kind == KindProduction {
			nw.str(n.Prod.Name)
		}
		nw.str(n.shareKey)
	}

	// Per-production info.
	for _, name := range net.ProdOrder {
		info := net.Prods[name]
		nw.u64(uint64(info.Node.ID))
		nw.u64(uint64(len(info.VarDefs)))
		for _, v := range sortedVarNames(info.VarDefs) {
			d := info.VarDefs[v]
			nw.str(v)
			nw.u64(uint64(d.OrigCE))
			nw.str(d.Attr)
		}
		nw.u64(uint64(len(info.TokenPos)))
		for _, p := range info.TokenPos {
			nw.i64(int64(p))
		}
		// Bounded collector group: member node ids in join order (empty
		// for the other variants).
		if g := info.Node.group; g != nil {
			nw.u64(uint64(len(g.members)))
			for _, m := range g.members {
				nw.u64(uint64(m.ID))
			}
		} else {
			nw.u64(0)
		}
	}

	if nw.err != nil {
		return nw.err
	}
	return nw.w.Flush()
}

func sortedVarNames(m map[string]VarDef) []string {
	names := make([]string, 0, len(m))
	for v := range m {
		names = append(names, v)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// DecodeNetwork reads a network written by EncodeNetwork.
func DecodeNetwork(r io.Reader) (*Network, error) {
	nr := &netReader{r: bufio.NewReader(r)}
	magic := make([]byte, len(netMagic))
	if _, err := io.ReadFull(nr.r, magic); err != nil {
		return nil, fmt.Errorf("rete: reading network header: %w", err)
	}
	if string(magic) != netMagic {
		return nil, fmt.Errorf("rete: bad network magic %q", magic)
	}
	flags, err := nr.u64()
	if err != nil {
		return nil, err
	}

	net := NewNetwork(CompileOptions{
		DisableSharing: flags&netFlagDisableSharing != 0,
		BoundedJoins:   flags&netFlagBoundedJoins != 0,
	})

	nprods, err := nr.intn(1 << 20)
	if err != nil {
		return nil, err
	}
	prods := make([]*ops5.Production, nprods)
	for i := range prods {
		src, err := nr.str()
		if err != nil {
			return nil, err
		}
		p, err := ops5.ParseProduction(src)
		if err != nil {
			return nil, fmt.Errorf("rete: reparsing production %d: %w", i, err)
		}
		prods[i] = p
	}

	nalphas, err := nr.intn(1 << 20)
	if err != nil {
		return nil, err
	}
	type routeRef struct {
		alpha *AlphaPattern
		node  int
		side  Side
	}
	var routes []routeRef
	for i := 0; i < nalphas; i++ {
		a := &AlphaPattern{ID: i}
		if a.Class, err = nr.str(); err != nil {
			return nil, err
		}
		ntests, err := nr.intn(1 << 16)
		if err != nil {
			return nil, err
		}
		for j := 0; j < ntests; j++ {
			var ct ConstTest
			if ct.Attr, err = nr.str(); err != nil {
				return nil, err
			}
			op, err := nr.u64()
			if err != nil {
				return nil, err
			}
			ct.Op = ops5.PredOp(op)
			ndisj, err := nr.intn(1 << 16)
			if err != nil {
				return nil, err
			}
			for d := 0; d < ndisj; d++ {
				v, err := nr.value()
				if err != nil {
					return nil, err
				}
				ct.Disj = append(ct.Disj, v)
			}
			other, err := nr.u64()
			if err != nil {
				return nil, err
			}
			if other == 1 {
				ct.isOther = true
				if ct.OtherAttr, err = nr.str(); err != nil {
					return nil, err
				}
			} else {
				if ct.Value, err = nr.value(); err != nil {
					return nil, err
				}
			}
			a.Tests = append(a.Tests, ct)
		}
		nroutes, err := nr.intn(1 << 20)
		if err != nil {
			return nil, err
		}
		for j := 0; j < nroutes; j++ {
			nid, err := nr.u64()
			if err != nil {
				return nil, err
			}
			side, err := nr.u64()
			if err != nil {
				return nil, err
			}
			routes = append(routes, routeRef{alpha: a, node: int(nid), side: Side(side)})
		}
		net.Alphas = append(net.Alphas, a)
		net.byClass[a.Class] = append(net.byClass[a.Class], a)
	}

	nnodes, err := nr.intn(1 << 22)
	if err != nil {
		return nil, err
	}
	parents := make([]int, nnodes)
	succs := make([][]int, nnodes)
	prodNames := make([]string, nnodes)
	for i := 0; i < nnodes; i++ {
		kind, err := nr.u64()
		if err != nil {
			return nil, err
		}
		n := net.newNode(NodeKind(kind))
		origCE, err := nr.i64()
		if err != nil {
			return nil, err
		}
		n.OrigCE = int(origCE)
		if tl, err := nr.u64(); err == nil {
			n.TokenLen = int(tl)
		} else {
			return nil, err
		}
		if ll, err := nr.u64(); err == nil {
			n.LeftLen = int(ll)
		} else {
			return nil, err
		}
		if ci, err := nr.u64(); err == nil {
			n.copyIndex = int(ci)
		} else {
			return nil, err
		}
		if cc, err := nr.u64(); err == nil {
			n.copyCount = int(cc)
		} else {
			return nil, err
		}
		if det, err := nr.u64(); err == nil {
			n.detached = det == 1
		} else {
			return nil, err
		}
		if bp, err := nr.u64(); err == nil {
			n.bPos = int(bp)
		} else {
			return nil, err
		}
		if bn, err := nr.u64(); err == nil {
			n.bNeg = bn == 1
		} else {
			return nil, err
		}
		parent, err := nr.i64()
		if err != nil {
			return nil, err
		}
		parents[i] = int(parent)
		nsuccs, err := nr.intn(1 << 20)
		if err != nil {
			return nil, err
		}
		for j := 0; j < nsuccs; j++ {
			sid, err := nr.u64()
			if err != nil {
				return nil, err
			}
			succs[i] = append(succs[i], int(sid))
		}
		ntests, err := nr.intn(1 << 16)
		if err != nil {
			return nil, err
		}
		for j := 0; j < ntests; j++ {
			var jt JoinTest
			op, err := nr.u64()
			if err != nil {
				return nil, err
			}
			jt.Op = ops5.PredOp(op)
			if jt.RightAttr, err = nr.str(); err != nil {
				return nil, err
			}
			lp, err := nr.u64()
			if err != nil {
				return nil, err
			}
			jt.LeftPos = int(lp)
			if jt.LeftAttr, err = nr.str(); err != nil {
				return nil, err
			}
			n.Tests = append(n.Tests, jt)
			if jt.Op == ops5.OpEq {
				n.EqTests = append(n.EqTests, jt)
			}
		}
		if n.Kind == KindProduction {
			if prodNames[i], err = nr.str(); err != nil {
				return nil, err
			}
		}
		if n.shareKey, err = nr.str(); err != nil {
			return nil, err
		}
	}

	// Resolve graph references.
	nodeAt := func(id int) (*Node, error) {
		if id < 0 || id >= len(net.Nodes) {
			return nil, fmt.Errorf("rete: node id %d out of range", id)
		}
		return net.Nodes[id], nil
	}
	for i, n := range net.Nodes {
		if parents[i] >= 0 {
			p, err := nodeAt(parents[i])
			if err != nil {
				return nil, err
			}
			n.Parent = p
		}
		for _, sid := range succs[i] {
			s, err := nodeAt(sid)
			if err != nil {
				return nil, err
			}
			n.Succs = append(n.Succs, s)
		}
	}
	byName := map[string]*ops5.Production{}
	for _, p := range prods {
		byName[p.Name] = p
	}
	for i, n := range net.Nodes {
		if n.Kind == KindProduction {
			p, ok := byName[prodNames[i]]
			if !ok {
				return nil, fmt.Errorf("rete: production node references unknown production %q", prodNames[i])
			}
			n.Prod = p
		}
	}
	for _, rr := range routes {
		n, err := nodeAt(rr.node)
		if err != nil {
			return nil, err
		}
		rr.alpha.Routes = append(rr.alpha.Routes, AlphaRoute{Node: n, Side: rr.side})
	}

	// Per-production info.
	for _, p := range prods {
		info := &ProdInfo{Prod: p, VarDefs: map[string]VarDef{}}
		nid, err := nr.u64()
		if err != nil {
			return nil, err
		}
		if info.Node, err = nodeAt(int(nid)); err != nil {
			return nil, err
		}
		nvars, err := nr.intn(1 << 16)
		if err != nil {
			return nil, err
		}
		for j := 0; j < nvars; j++ {
			v, err := nr.str()
			if err != nil {
				return nil, err
			}
			ce, err := nr.u64()
			if err != nil {
				return nil, err
			}
			attr, err := nr.str()
			if err != nil {
				return nil, err
			}
			info.VarDefs[v] = VarDef{OrigCE: int(ce), Attr: attr}
		}
		npos, err := nr.intn(1 << 16)
		if err != nil {
			return nil, err
		}
		for j := 0; j < npos; j++ {
			pos, err := nr.i64()
			if err != nil {
				return nil, err
			}
			info.TokenPos = append(info.TokenPos, int(pos))
		}
		nmembers, err := nr.intn(1 << 16)
		if err != nil {
			return nil, err
		}
		if nmembers > 0 {
			g := &boundedGroup{terminal: info.Node}
			for j := 0; j < nmembers; j++ {
				mid, err := nr.u64()
				if err != nil {
					return nil, err
				}
				m, err := nodeAt(int(mid))
				if err != nil {
					return nil, err
				}
				if m.Kind != KindBounded {
					return nil, fmt.Errorf("rete: bounded group member %d is a %s node", m.ID, m.Kind)
				}
				g.members = append(g.members, m)
				m.group = g
				if !m.bNeg {
					g.nPos++
				}
			}
			info.Node.group = g
		}
		net.Prods[p.Name] = info
		net.ProdOrder = append(net.ProdOrder, p.Name)
	}
	return net, nil
}
