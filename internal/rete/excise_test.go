package rete

import (
	"testing"

	"mpcrete/internal/ops5"
)

func TestExciseDetachesAndGarbageCollects(t *testing.T) {
	net := compileT(t, sharedFanoutProds)
	if err := net.Excise("o2"); err != nil {
		t.Fatal(err)
	}
	if _, ok := net.Prods["o2"]; ok {
		t.Error("o2 still registered")
	}
	// The shared (a,b) join survives (o1 and o3 use it) but loses one
	// successor chain.
	shared := sharedJoin(t, net)
	if len(shared.Succs) != 2 {
		t.Errorf("shared join fan-out = %d, want 2", len(shared.Succs))
	}
	// Matching still works for the survivors.
	cs := runConflictSet(t, net, fanoutWMEs())
	for key := range cs {
		if key[:2] == "o2" {
			t.Errorf("excised production matched: %s", key)
		}
	}
	if len(cs) != 8 { // 4 (a,b) pairs x 2 surviving productions
		t.Errorf("conflict set = %d, want 8", len(cs))
	}
}

func TestExciseSingleUserChainFullyCollected(t *testing.T) {
	net := compileT(t, []string{
		`(p solo (a ^x <v>) (b ^x <v>) (c ^k 9) --> (halt))`,
	})
	joins := net.TwoInputCount()
	if joins != 2 {
		t.Fatalf("joins = %d", joins)
	}
	if err := net.Excise("solo"); err != nil {
		t.Fatal(err)
	}
	// All two-input nodes are detached and no alpha routes remain.
	for _, n := range net.Nodes {
		if n.IsTwoInput() && !n.Detached() {
			t.Errorf("node %d still attached", n.ID)
		}
	}
	for _, a := range net.Alphas {
		if len(a.Routes) != 0 {
			t.Errorf("alpha %s still routes to %d nodes", a.Class, len(a.Routes))
		}
	}
	// Feeding wmes produces nothing.
	m := NewMatcher(net, MatcherOptions{NBuckets: 16})
	w := ops5.NewWME("a", "x", 1)
	w.ID = 1
	if out := m.Apply([]Change{{Tag: Add, WME: w}}); len(out) != 0 {
		t.Errorf("excised network produced %v", out)
	}
}

func TestExciseUnknownProduction(t *testing.T) {
	net := compileT(t, sharedFanoutProds)
	if err := net.Excise("nope"); err == nil {
		t.Error("unknown production accepted")
	}
}

func TestApplyFilteredPrimesOnlyNewNodes(t *testing.T) {
	net := compileT(t, []string{`(p orig (a ^x <v>) (b ^x <v>) --> (halt))`})
	m := NewMatcher(net, MatcherOptions{NBuckets: 32})
	var wmes []*ops5.WME
	for i := 1; i <= 4; i++ {
		class := "a"
		if i%2 == 0 {
			class = "b"
		}
		w := ops5.NewWME(class, "x", 1)
		w.ID, w.TimeTag = i, i
		wmes = append(wmes, w)
		m.Apply([]Change{{Tag: Add, WME: w}})
	}
	left, right := m.Memories()
	lBefore, rBefore := left.Len(), right.Len()

	p, err := ops5.ParseProduction(`(p added (a ^x <v>) (b ^x <v>) --> (halt))`)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := net.AddProductionPrivate(p)
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[*Node]bool{}
	for _, n := range nodes {
		allowed[n] = true
	}
	var changes []Change
	for _, w := range wmes {
		changes = append(changes, Change{Tag: Add, WME: w})
	}
	out := m.ApplyFiltered(changes, func(n *Node) bool { return allowed[n] })
	// 2 a-wmes x 2 b-wmes instantiations for the new production.
	adds := 0
	for _, ic := range out {
		if ic.Prod.Name != "added" {
			t.Errorf("priming produced instantiation for %s", ic.Prod.Name)
		}
		if ic.Tag == Add {
			adds++
		}
	}
	if adds != 4 {
		t.Errorf("primed instantiations = %d, want 4", adds)
	}
	// The original production's node memories grew only by the new
	// nodes' private entries: original join memories unchanged means
	// total growth equals exactly the primed tokens (2 lefts + 2
	// rights at the private join).
	lAfter, rAfter := left.Len(), right.Len()
	if lAfter-lBefore != 2 || rAfter-rBefore != 2 {
		t.Errorf("memory growth = %d/%d, want 2/2 (private nodes only)", lAfter-lBefore, rAfter-rBefore)
	}
}
