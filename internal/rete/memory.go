package rete

import (
	"fmt"

	"mpcrete/internal/ops5"
)

// memEntry is one stored token (left side) or wme (right side) in a
// hash bucket, qualified by its owning two-input node. Left entries of
// negative nodes carry the count of matching right tokens.
type memEntry struct {
	node  *Node
	token *Token    // left entries
	wme   *ops5.WME // right entries
	count int       // negative-node left entries: matching right wmes
}

// memEntryChunkLen is the arena chunk size for memEntry allocation.
const memEntryChunkLen = 256

// Memory is one of the two global hash tables (left or right). Buckets
// hold entries for many nodes; an activation scans only its own bucket,
// filtering by node identity — exactly the paper's data structure.
//
// Entries are carved from chunks (chunk holds the current tail) so
// steady-state add/remove churn allocates O(1/memEntryChunkLen) per
// stored token instead of one heap object each. Removed entries are
// never reused — a scan interrupted by recursive processing may still
// hold pointers into the bucket's old slice — so a chunk becomes
// garbage only when every entry carved from it is unreachable.
type Memory struct {
	side    Side
	buckets [][]*memEntry
	size    int
	chunk   []memEntry
}

// newEntry carves a zeroed entry from the current chunk.
func (m *Memory) newEntry() *memEntry {
	if len(m.chunk) == 0 {
		m.chunk = make([]memEntry, memEntryChunkLen)
	}
	e := &m.chunk[0]
	m.chunk = m.chunk[1:]
	return e
}

// NewMemory creates a memory with the given power-of-two bucket count.
func NewMemory(side Side, nbuckets int) *Memory {
	if nbuckets <= 0 || nbuckets&(nbuckets-1) != 0 {
		panic(fmt.Sprintf("rete: bucket count %d is not a positive power of two", nbuckets))
	}
	return &Memory{side: side, buckets: make([][]*memEntry, nbuckets)}
}

// NBuckets returns the bucket count.
func (m *Memory) NBuckets() int { return len(m.buckets) }

// Len returns the number of stored entries.
func (m *Memory) Len() int { return m.size }

// Bucket reduces a 64-bit hash key to a bucket index.
func (m *Memory) Bucket(key uint64) int { return int(key & uint64(len(m.buckets)-1)) }

// addLeft stores a left token for node n in bucket b and returns the
// entry (so negative nodes can maintain counts).
func (m *Memory) addLeft(b int, n *Node, t *Token) *memEntry {
	e := m.newEntry()
	e.node, e.token = n, t
	m.buckets[b] = append(m.buckets[b], e)
	m.size++
	return e
}

// addRight stores a right wme for node n in bucket b.
func (m *Memory) addRight(b int, n *Node, w *ops5.WME) *memEntry {
	e := m.newEntry()
	e.node, e.wme = n, w
	m.buckets[b] = append(m.buckets[b], e)
	m.size++
	return e
}

// removeLeft deletes the left entry for node n whose token covers the
// same wmes as t; it returns the removed entry or nil if absent.
func (m *Memory) removeLeft(b int, n *Node, t *Token) *memEntry {
	bucket := m.buckets[b]
	for i, e := range bucket {
		if e.node == n && e.token != nil && e.token.Same(t) {
			m.buckets[b] = append(bucket[:i], bucket[i+1:]...)
			m.size--
			return e
		}
	}
	return nil
}

// removeRight deletes the right entry for node n holding wme id; it
// returns the removed entry or nil if absent.
func (m *Memory) removeRight(b int, n *Node, id int) *memEntry {
	bucket := m.buckets[b]
	for i, e := range bucket {
		if e.node == n && e.wme != nil && e.wme.ID == id {
			m.buckets[b] = append(bucket[:i], bucket[i+1:]...)
			m.size--
			return e
		}
	}
	return nil
}

// entries returns bucket b's entry slice for callers that partition a
// whole bucket in one pass (the bounded enumerator). Read-only: the
// slice aliases live storage.
func (m *Memory) entries(b int) []*memEntry { return m.buckets[b] }

// scan visits every entry for node n in bucket b.
func (m *Memory) scan(b int, n *Node, visit func(*memEntry)) {
	for _, e := range m.buckets[b] {
		if e.node == n {
			visit(e)
		}
	}
}

// Reset empties every bucket while keeping the bucket slices' backing
// arrays for reuse — the session-pool hook. Stored entry pointers are
// nilled out so the entries (and the tokens and wmes they reference)
// become collectible; the unconsumed tail of the current chunk stays
// usable. Only legal at quiescence (no scan in progress).
func (m *Memory) Reset() {
	for i, b := range m.buckets {
		for j := range b {
			b[j] = nil
		}
		m.buckets[i] = b[:0]
	}
	m.size = 0
}

// BucketSizes returns the entry count per bucket (for distribution
// diagnostics).
func (m *Memory) BucketSizes() []int {
	sizes := make([]int, len(m.buckets))
	for i, b := range m.buckets {
		sizes[i] = len(b)
	}
	return sizes
}

// extract removes and returns all entries of bucket b (bucket
// migration support).
func (m *Memory) extract(b int) []*memEntry {
	entries := m.buckets[b]
	m.buckets[b] = nil
	m.size -= len(entries)
	return entries
}

// inject appends entries to bucket b (bucket migration support).
func (m *Memory) inject(b int, entries []*memEntry) {
	m.buckets[b] = append(m.buckets[b], entries...)
	m.size += len(entries)
}
