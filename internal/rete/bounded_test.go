package rete

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"mpcrete/internal/ops5"
)

// crossChainSrc mirrors workloads.CrossChain (which cannot be imported
// here — workloads depends on engine): k chained classes listed in the
// adversarial evens-then-odds textual order.
func crossChainSrc(k int) string {
	src := ""
	for i := 0; i < k; i++ {
		src += fmt.Sprintf("(literalize link%d a b)\n", i)
	}
	src += "(literalize hit lo)\n(p chain\n"
	for i := 0; i < k; i += 2 {
		src += fmt.Sprintf("    (link%d ^a <x%d> ^b <x%d>)\n", i, i, i+1)
	}
	for i := 1; i < k; i += 2 {
		src += fmt.Sprintf("    (link%d ^a <x%d> ^b <x%d>)\n", i, i, i+1)
	}
	return src + "    -->\n    (make hit ^lo <x0>))\n"
}

// tourneySrc/tourneyWMEs mirror workloads.TourneyLike(WMEs): the
// Tourney-shaped cross-product with a negated CE.
const tourneySrc = `
(literalize team name)
(literalize slot round field)
(literalize pairing team round field)
(literalize phase name)

(p propose-pairing
    (phase ^name propose)
    (team ^name <t>)
    (slot ^round <r> ^field <f>)
    -(pairing ^team <t> ^round <r>)
    -->
    (make pairing ^team <t> ^round <r> ^field <f>))

(p done-proposing
    (phase ^name propose)
    -(team)
    -->
    (halt))
`

func tourneyWMEs(t, s int) string {
	out := "(phase ^name propose)\n"
	for i := 1; i <= t; i++ {
		out += fmt.Sprintf("(team ^name t%d)\n", i)
	}
	for i := 1; i <= s; i++ {
		out += fmt.Sprintf("(slot ^round %d ^field f%d)\n", i, i%2+1)
	}
	return out
}

// newBoundedHarness is newHarness over a worst-case-bounded network.
func newBoundedHarness(t *testing.T, nbuckets int, srcs ...string) *harness {
	t.Helper()
	var prods []*ops5.Production
	for _, src := range srcs {
		p, err := ops5.ParseProduction(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		prods = append(prods, p)
	}
	net, err := CompileWith(prods, CompileOptions{BoundedJoins: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return &harness{
		t:       t,
		prods:   prods,
		matcher: NewMatcher(net, MatcherOptions{NBuckets: nbuckets}),
		wm:      map[int]*ops5.WME{},
		cs:      map[string]bool{},
		nextID:  1,
	}
}

func TestBoundedBasicJoin(t *testing.T) {
	h := newBoundedHarness(t, 64, blocksProd)
	b1 := h.add("block", "name", "b1", "color", "blue", "on", "table")
	h.add("block", "name", "b2", "on", "b1")
	if len(h.cs) != 0 {
		t.Fatalf("premature instantiation: %v", keys(h.cs))
	}
	hand := h.add("hand", "state", "free")
	if len(h.cs) != 1 {
		t.Fatalf("conflict set = %v, want 1 instantiation", keys(h.cs))
	}
	h.checkNaive()

	h.remove(hand)
	if len(h.cs) != 0 {
		t.Fatalf("instantiation not retracted: %v", keys(h.cs))
	}
	h.checkNaive()

	h.add("hand", "state", "free")
	h.checkNaive()
	h.remove(b1)
	if len(h.cs) != 0 {
		t.Fatalf("instantiation survived block removal: %v", keys(h.cs))
	}
	h.checkNaive()
}

func TestBoundedNegationTransitions(t *testing.T) {
	h := newBoundedHarness(t, 64, `
(p propose
    (phase ^name propose)
    (team ^name <t>)
    (slot ^round <r>)
    -(pairing ^team <t> ^round <r>)
    -->
    (halt))`)
	h.add("phase", "name", "propose")
	team := h.add("team", "name", "t1")
	h.add("slot", "round", 1)
	if len(h.cs) != 1 {
		t.Fatalf("conflict set = %v, want the unblocked instantiation", keys(h.cs))
	}
	h.checkNaive()

	// Adding the blocking wme retracts; a second blocker is a no-op;
	// removing them in either order revives only at the last removal.
	p1 := h.add("pairing", "team", "t1", "round", 1)
	if len(h.cs) != 0 {
		t.Fatalf("blocker did not retract: %v", keys(h.cs))
	}
	h.checkNaive()
	p2 := h.add("pairing", "team", "t1", "round", 1)
	h.checkNaive()
	h.remove(p1)
	if len(h.cs) != 0 {
		t.Fatalf("revived with one blocker still present: %v", keys(h.cs))
	}
	h.checkNaive()
	h.remove(p2)
	if len(h.cs) != 1 {
		t.Fatalf("did not revive after last blocker left: %v", keys(h.cs))
	}
	h.checkNaive()

	// Removing a positive member while unblocked retracts normally.
	h.remove(team)
	if len(h.cs) != 0 {
		t.Fatalf("instantiation survived team removal: %v", keys(h.cs))
	}
	h.checkNaive()
}

// TestBoundedSameWMEMultipleCollectors pins exactly-once emission when
// one wme reaches several collectors of the same group (same class in
// several CEs).
func TestBoundedSameWMEMultipleCollectors(t *testing.T) {
	h := newBoundedHarness(t, 64, `
(p pair (a ^x <u>) (a ^y <u>) --> (halt))`)
	w := h.add("a", "x", 1, "y", 1)
	h.checkNaive()
	h.add("a", "x", 2, "y", 1)
	h.checkNaive()
	h.remove(w)
	h.checkNaive()
}

// TestBoundedRandomizedDifferential is the property test of the issue:
// bounded-join conflict sets must be byte-identical to the brute-force
// matcher on random programs after every change, for hashed and linear
// memories. The harness additionally faults on duplicate insertions and
// deletes of absent instantiations, so emission multiplicity is checked
// too, not just the final set.
func TestBoundedRandomizedDifferential(t *testing.T) {
	for _, nbuckets := range []int{1, 64} {
		nbuckets := nbuckets
		t.Run(fmt.Sprintf("buckets=%d", nbuckets), func(t *testing.T) {
			rng := rand.New(rand.NewSource(43))
			for trial := 0; trial < 30; trial++ {
				srcs := randomProductions(rng, 1+rng.Intn(4))
				h := newBoundedHarness(t, nbuckets, srcs...)
				var live []*ops5.WME
				for step := 0; step < 40; step++ {
					if len(live) > 0 && rng.Intn(3) == 0 {
						i := rng.Intn(len(live))
						h.remove(live[i])
						live = append(live[:i], live[i+1:]...)
					} else {
						w := h.add(
							[]string{"a", "b", "c"}[rng.Intn(3)],
							"x", rng.Intn(3), "y", rng.Intn(3),
						)
						live = append(live, w)
					}
					h.checkNaive()
				}
			}
		})
	}
}

// TestBoundedJoinOrderRecoversChain compiles the adversarial
// cross-product program (CEs listed evens-then-odds) and asserts the
// greedy ordering pass recovers the value chain: join position i holds
// class link<i>, regardless of textual position.
func TestBoundedJoinOrderRecoversChain(t *testing.T) {
	prog, err := ops5.ParseProgram(crossChainSrc(6))
	if err != nil {
		t.Fatal(err)
	}
	net, err := CompileWith(prog.Productions, CompileOptions{BoundedJoins: true})
	if err != nil {
		t.Fatal(err)
	}
	info := net.Prods["chain"]
	// Textual CE order is link0,link2,link4,link1,link3,link5; the chain
	// order maps textual index -> join position as follows.
	want := []int{0, 2, 4, 1, 3, 5}
	for i, jp := range info.TokenPos {
		if jp != want[i] {
			t.Fatalf("TokenPos = %v, want %v (textual CE %d at join position %d)", info.TokenPos, want, i, jp)
		}
	}
	// Determinism: recompiling yields the identical order.
	net2, err := CompileWith(prog.Productions, CompileOptions{BoundedJoins: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range info.TokenPos {
		if net2.Prods["chain"].TokenPos[i] != info.TokenPos[i] {
			t.Fatalf("join order not deterministic: %v vs %v", info.TokenPos, net2.Prods["chain"].TokenPos)
		}
	}
}

// TestBoundedHashKeyClustersGroup asserts every collector of a group
// (and for every wme) hashes to the group's home bucket, the clustering
// HashKey promises for bounded nodes.
func TestBoundedHashKeyClustersGroup(t *testing.T) {
	prog, err := ops5.ParseProgram(crossChainSrc(4))
	if err != nil {
		t.Fatal(err)
	}
	net, err := CompileWith(prog.Productions, CompileOptions{BoundedJoins: true})
	if err != nil {
		t.Fatal(err)
	}
	var home uint64
	first := true
	for _, n := range net.Nodes {
		if n.Kind != KindBounded {
			continue
		}
		for j := 0; j < 3; j++ {
			w := ops5.NewWME(fmt.Sprintf("link%d", j), "a", j, "b", j+1)
			k := HashKey(n, Right, nil, w)
			if first {
				home, first = k, false
			}
			if k != home {
				t.Fatalf("node %d hashes to %x, group home is %x", n.ID, k, home)
			}
		}
	}
	if first {
		t.Fatal("no bounded nodes compiled")
	}
}

func TestBoundedStats(t *testing.T) {
	prog, err := ops5.ParseProgram(crossChainSrc(4))
	if err != nil {
		t.Fatal(err)
	}
	net, err := CompileWith(prog.Productions, CompileOptions{BoundedJoins: true})
	if err != nil {
		t.Fatal(err)
	}
	s := net.Stats()
	if s.BoundedNodes != 4 || s.JoinNodes != 0 || s.NegativeNodes != 0 {
		t.Fatalf("stats = %+v, want 4 bounded collectors and no two-input nodes", s)
	}
}

// TestBoundedCodecRoundTrip proves a bounded network survives the
// binary codec: the decoded network matches identically to the
// original (the TCP runtime ships networks this way).
func TestBoundedCodecRoundTrip(t *testing.T) {
	prog, err := ops5.ParseProgram(tourneySrc)
	if err != nil {
		t.Fatal(err)
	}
	net, err := CompileWith(prog.Productions, CompileOptions{BoundedJoins: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeNetwork(&buf, net); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}

	wmes, err := ops5.ParseWMEs(tourneyWMEs(5, 4))
	if err != nil {
		t.Fatal(err)
	}
	changes := make([]Change, len(wmes))
	for i, w := range wmes {
		w.ID, w.TimeTag = i+1, i+1
		changes[i] = Change{Tag: Add, WME: w}
	}
	run := func(n *Network) []string {
		m := NewMatcher(n, MatcherOptions{NBuckets: 64})
		var out []string
		for _, ic := range m.Apply(changes) {
			out = append(out, fmt.Sprintf("%v %s", ic.Tag, ic.Key()))
		}
		sort.Strings(out)
		return out
	}
	a, b := run(net), run(dec)
	if len(a) == 0 {
		t.Fatal("no instantiations produced; workload too small to prove anything")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("decoded network diverges:\n original: %v\n decoded:  %v", a, b)
	}
}

// TestBoundedAllocsSteadyState pins the enumerator's iterator path to
// O(1) steady-state allocations per activation: with the DFS stack and
// token arena warm, add/delete cycles that enumerate partial matches
// but complete none must not allocate at all.
func TestBoundedAllocsSteadyState(t *testing.T) {
	prog, err := ops5.ParseProgram(crossChainSrc(4))
	if err != nil {
		t.Fatal(err)
	}
	net, err := CompileWith(prog.Productions, CompileOptions{BoundedJoins: true})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(net, MatcherOptions{NBuckets: 64})

	// Resident link0/link1 wmes; no link3 ever exists, so the measured
	// activations drive the DFS through real partial enumerations that
	// never complete an instantiation.
	id := 1
	var warm []Change
	for j := 1; j <= 8; j++ {
		for _, cls := range []string{"link0", "link1"} {
			w := ops5.NewWME(cls, "a", j, "b", j+1)
			w.ID, w.TimeTag = id, id
			id++
			warm = append(warm, Change{Tag: Add, WME: w})
		}
	}
	if insts := m.Apply(warm); len(insts) != 0 {
		t.Fatalf("unexpected instantiations from a headless chain: %d", len(insts))
	}

	w := ops5.NewWME("link2", "a", 4, "b", 5)
	w.ID, w.TimeTag = id, id
	adds := []Change{{Tag: Add, WME: w}}
	dels := []Change{{Tag: Delete, WME: w}}
	m.Apply(adds)
	m.Apply(dels) // warm the queue and memory chunks once

	avg := testing.AllocsPerRun(100, func() {
		m.Apply(adds)
		m.Apply(dels)
	})
	if avg > 1 {
		t.Errorf("steady-state bounded activation pair allocates %.1f times, want <= 1", avg)
	}
}
