package rete

import (
	"fmt"
	"sort"

	"mpcrete/internal/ops5"
)

// naiveMatch is a brute-force reference matcher used to validate the
// Rete implementation: it enumerates every instantiation of every
// production over the given working memory by backtracking, with the
// same dialect semantics as the compiler (negated CEs evaluated after
// all positive CEs under the full positive bindings).
//
// It returns the set of instantiation keys in InstChange.Key format.
func naiveMatch(prods []*ops5.Production, wm []*ops5.WME) map[string]bool {
	out := map[string]bool{}
	for _, p := range prods {
		naiveProduction(p, wm, out)
	}
	return out
}

func naiveProduction(p *ops5.Production, wm []*ops5.WME, out map[string]bool) {
	var positives, negatives []int
	for i, ce := range p.LHS {
		if ce.Negated {
			negatives = append(negatives, i)
		} else {
			positives = append(positives, i)
		}
	}
	bindings := map[string]ops5.Value{}
	chosen := make(map[int]*ops5.WME) // orig CE index -> wme

	var rec func(k int)
	rec = func(k int) {
		if k == len(positives) {
			for _, ni := range negatives {
				if naiveAnyMatch(&p.LHS[ni], wm, bindings) {
					return
				}
			}
			ids := make([]int, 0, len(positives))
			for _, pi := range positives {
				ids = append(ids, chosen[pi].ID)
			}
			out[fmt.Sprintf("%s%v", p.Name, ids)] = true
			return
		}
		ce := &p.LHS[positives[k]]
		for _, w := range wm {
			newly := naiveCEMatch(ce, w, bindings)
			if newly == nil {
				continue
			}
			chosen[positives[k]] = w
			rec(k + 1)
			delete(chosen, positives[k])
			for _, v := range newly {
				delete(bindings, v)
			}
		}
	}
	rec(0)
}

// naiveCEMatch tests one wme against one CE under the current
// bindings. On success it ADDS the CE's newly bound variables to
// bindings and returns their names (for undo); on failure it returns
// nil and leaves bindings untouched.
func naiveCEMatch(ce *ops5.CE, w *ops5.WME, bindings map[string]ops5.Value) []string {
	if w.Class != ce.Class {
		return nil
	}
	local := map[string]ops5.Value{}
	lookup := func(v string) (ops5.Value, bool) {
		if val, ok := local[v]; ok {
			return val, true
		}
		val, ok := bindings[v]
		return val, ok
	}
	for _, at := range ce.Tests {
		val := w.Get(at.Attr)
		for _, term := range at.Terms {
			switch {
			case len(term.Disj) > 0:
				ok := false
				for _, d := range term.Disj {
					if val.Equal(d) {
						ok = true
						break
					}
				}
				if !ok {
					return nil
				}
			case term.Const != nil:
				if !term.Op.Apply(val, *term.Const) {
					return nil
				}
			case term.Var != "":
				if bound, ok := lookup(term.Var); ok {
					if !term.Op.Apply(val, bound) {
						return nil
					}
				} else if term.Op == ops5.OpEq {
					local[term.Var] = val
				}
				// Non-equality predicate on an unbound variable
				// constrains nothing (matches compiler behaviour).
			}
		}
	}
	newly := make([]string, 0, len(local))
	for v, val := range local {
		bindings[v] = val
		newly = append(newly, v)
	}
	sort.Strings(newly)
	return newly
}

// naiveAnyMatch reports whether any wme matches the (negated) CE under
// the current bindings; the CE's own local variables may bind freely.
func naiveAnyMatch(ce *ops5.CE, wm []*ops5.WME, bindings map[string]ops5.Value) bool {
	for _, w := range wm {
		newly := naiveCEMatch(ce, w, bindings)
		if newly != nil {
			for _, v := range newly {
				delete(bindings, v)
			}
			return true
		}
	}
	return false
}
