package rete

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"mpcrete/internal/ops5"
)

// roundTripNetwork encodes and decodes a network.
func roundTripNetwork(t *testing.T, net *Network) *Network {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeNetwork(&buf, net); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestNetworkCodecRoundTripStructure(t *testing.T) {
	net := compileT(t, sharedFanoutProds)
	got := roundTripNetwork(t, net)
	if a, b := net.Stats(), got.Stats(); a != b {
		t.Errorf("stats changed: %+v vs %+v", a, b)
	}
	if len(got.ProdOrder) != len(net.ProdOrder) {
		t.Fatalf("prod order = %v", got.ProdOrder)
	}
	for i, name := range net.ProdOrder {
		if got.ProdOrder[i] != name {
			t.Errorf("prod order[%d] = %q, want %q", i, got.ProdOrder[i], name)
		}
	}
	// VarDefs and TokenPos survive.
	for name, info := range net.Prods {
		gi := got.Prods[name]
		if gi == nil {
			t.Fatalf("missing production %s", name)
		}
		if len(gi.VarDefs) != len(info.VarDefs) {
			t.Errorf("%s: vardefs %v vs %v", name, gi.VarDefs, info.VarDefs)
		}
		for v, d := range info.VarDefs {
			if gi.VarDefs[v] != d {
				t.Errorf("%s: vardef %s = %+v, want %+v", name, v, gi.VarDefs[v], d)
			}
		}
	}
}

func TestNetworkCodecPreservesMatching(t *testing.T) {
	wmes := fanoutWMEs()
	net := compileT(t, sharedFanoutProds)
	base := runConflictSet(t, net, wmes)

	// Decode a fresh copy (the original already holds token state from
	// nothing — networks are stateless; memories live in the matcher).
	got := roundTripNetwork(t, compileT(t, sharedFanoutProds))
	after := runConflictSet(t, got, wmes)
	if !conflictSetsEqual(base, after) {
		t.Errorf("decoded network diverged: %v vs %v", base, after)
	}
}

func TestNetworkCodecPreservesTransformations(t *testing.T) {
	wmes := fanoutWMEs()

	// Transformed network: unshare + dummies + copy-and-constraint on
	// a second cross-product production.
	srcs := append([]string{}, sharedFanoutProds...)
	srcs = append(srcs, `(p cross (a ^x <u>) (c ^k <w>) --> (halt))`)
	net := compileT(t, srcs)
	if _, err := net.Unshare(sharedJoin(t, net)); err != nil {
		t.Fatal(err)
	}
	var cross *Node
	for _, n := range net.Nodes {
		// The cross production's join: no tests at all (the c^k joins
		// of the shared productions also lack eq tests but are keyed
		// to constant-test alphas).
		if n.Kind == KindJoin && len(n.Tests) == 0 && n.Prod == nil && len(n.Succs) == 1 && n.Succs[0].Prod != nil && n.Succs[0].Prod.Name == "cross" {
			cross = n
		}
	}
	if cross == nil {
		t.Fatal("no cross-product join")
	}
	if _, err := net.CopyAndConstrain(cross, 3); err != nil {
		t.Fatal(err)
	}

	base := runConflictSet(t, net, wmes)
	got := roundTripNetwork(t, net)
	// Copy-and-constraint state must survive: each copy accepts a
	// disjoint share of right wmes.
	var copies []*Node
	for _, n := range got.Nodes {
		if n.Kind == KindJoin && n.copyCount == 3 {
			copies = append(copies, n)
		}
	}
	if len(copies) != 3 {
		t.Fatalf("decoded copies = %d", len(copies))
	}
	for id := 0; id < 9; id++ {
		w := ops5.NewWME("c", "k", 1)
		w.ID = id
		accepts := 0
		for _, c := range copies {
			if c.AcceptsRight(w) {
				accepts++
			}
		}
		if accepts != 1 {
			t.Errorf("wme %d accepted by %d decoded copies", id, accepts)
		}
	}
	after := runConflictSet(t, got, wmes)
	if !conflictSetsEqual(base, after) {
		t.Errorf("decoded transformed network diverged (%d vs %d)", len(base), len(after))
	}
}

func TestNetworkCodecRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		srcs := randomProductions(rng, 1+rng.Intn(4))
		net := compileT(t, srcs)
		got := roundTripNetwork(t, net)

		// Drive both with the same random wme stream.
		var wmes []*ops5.WME
		id := 1
		for i := 0; i < 30; i++ {
			w := ops5.NewWME([]string{"a", "b", "c"}[rng.Intn(3)], "x", rng.Intn(3), "y", rng.Intn(3))
			w.ID, w.TimeTag = id, id
			id++
			wmes = append(wmes, w)
		}
		base := runConflictSet(t, net, wmes)
		after := runConflictSet(t, got, wmes)
		if !conflictSetsEqual(base, after) {
			t.Fatalf("trial %d (%v): decoded network diverged", trial, srcs)
		}
	}
}

func TestNetworkCodecErrors(t *testing.T) {
	if _, err := DecodeNetwork(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := DecodeNetwork(strings.NewReader("NOTMAGIC")); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated stream.
	net := compileT(t, sharedFanoutProds)
	var buf bytes.Buffer
	if err := EncodeNetwork(&buf, net); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(netMagic) + 1, len(full) / 2, len(full) - 1} {
		if _, err := DecodeNetwork(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestNetworkCodecCompactness(t *testing.T) {
	// The point of the encoding: small per-node footprint. The
	// sharedFanoutProds network has 3 joins + 3 production nodes; the
	// whole serialized network (including production source) must stay
	// well under a message-passing node's 10-20KB local memory.
	net := compileT(t, sharedFanoutProds)
	var buf bytes.Buffer
	if err := EncodeNetwork(&buf, net); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 4096 {
		t.Errorf("encoded network = %d bytes, want < 4096", buf.Len())
	}
}

func TestWriteDOT(t *testing.T) {
	net := compileT(t, sharedFanoutProds)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, net); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph rete", "shape=box", "doubleoctagon", "o1", "o2", "o3", "style=dashed"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Detached nodes disappear from the picture.
	if err := net.Excise("o2"); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteDOT(&buf, net); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "\"o2\"") {
		t.Error("excised production still rendered")
	}
	// Balanced braces make it at least superficially valid DOT.
	if strings.Count(buf.String(), "{") != strings.Count(buf.String(), "}") {
		t.Error("unbalanced braces")
	}
}
