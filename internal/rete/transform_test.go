package rete

import (
	"fmt"
	"math/rand"
	"testing"

	"mpcrete/internal/ops5"
)

// sharedFanoutProds defines three productions sharing the (a,b) join,
// giving that node fan-out 3.
var sharedFanoutProds = []string{
	`(p o1 (a ^x <v>) (b ^x <v>) (c ^k 1) --> (halt))`,
	`(p o2 (a ^x <v>) (b ^x <v>) (c ^k 2) --> (halt))`,
	`(p o3 (a ^x <v>) (b ^x <v>) (c ^k 3) --> (halt))`,
}

func compileT(t *testing.T, srcs []string) *Network {
	t.Helper()
	net, err := Compile(mustParse(t, srcs...))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func sharedJoin(t *testing.T, net *Network) *Node {
	t.Helper()
	for _, n := range net.Nodes {
		if n.IsTwoInput() && len(n.Succs) > 1 {
			return n
		}
	}
	t.Fatal("no shared join found")
	return nil
}

// runConflictSet drives the same wme sequence through a matcher and
// returns the resulting conflict-set key set.
func runConflictSet(t *testing.T, net *Network, wmes []*ops5.WME) map[string]bool {
	t.Helper()
	m := NewMatcher(net, MatcherOptions{NBuckets: 64})
	cs := map[string]bool{}
	for _, w := range wmes {
		for _, ic := range m.Apply([]Change{{Tag: Add, WME: w}}) {
			if ic.Tag == Add {
				cs[ic.Key()] = true
			} else {
				delete(cs, ic.Key())
			}
		}
	}
	return cs
}

func fanoutWMEs() []*ops5.WME {
	var wmes []*ops5.WME
	id := 1
	mk := func(class string, pairs ...any) {
		w := ops5.NewWME(class, pairs...)
		w.ID = id
		w.TimeTag = id
		id++
		wmes = append(wmes, w)
	}
	for i := 0; i < 4; i++ {
		mk("a", "x", i)
		mk("b", "x", i)
	}
	mk("c", "k", 1)
	mk("c", "k", 2)
	mk("c", "k", 3)
	return wmes
}

func conflictSetsEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestUnsharePreservesMatches(t *testing.T) {
	wmes := fanoutWMEs()
	base := runConflictSet(t, compileT(t, sharedFanoutProds), wmes)
	if len(base) != 12 {
		t.Fatalf("baseline conflict set = %d, want 12", len(base))
	}

	net := compileT(t, sharedFanoutProds)
	n := sharedJoin(t, net)
	copies, err := net.Unshare(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(copies) != 3 {
		t.Fatalf("unshare produced %d nodes, want 3", len(copies))
	}
	for _, c := range copies {
		if len(c.Succs) != 1 {
			t.Errorf("node %d fan-out = %d, want 1", c.ID, len(c.Succs))
		}
	}
	after := runConflictSet(t, net, wmes)
	if !conflictSetsEqual(base, after) {
		t.Errorf("unshare changed matches: %v vs %v", base, after)
	}
}

func TestUnshareFanoutAbove(t *testing.T) {
	net := compileT(t, sharedFanoutProds)
	split, err := net.UnshareFanoutAbove(2)
	if err != nil {
		t.Fatal(err)
	}
	if split != 1 {
		t.Errorf("split = %d, want 1", split)
	}
	for _, n := range net.Nodes {
		if n.IsTwoInput() && len(n.Succs) > 2 {
			t.Errorf("node %d still has fan-out %d", n.ID, len(n.Succs))
		}
	}
	if _, err := net.UnshareFanoutAbove(0); err == nil {
		t.Error("want error for maxFanout 0")
	}
}

func TestInsertDummiesPreservesMatches(t *testing.T) {
	wmes := fanoutWMEs()
	base := runConflictSet(t, compileT(t, sharedFanoutProds), wmes)

	net := compileT(t, sharedFanoutProds)
	n := sharedJoin(t, net)
	dummies, err := net.InsertDummies(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dummies) != 2 {
		t.Fatalf("dummies = %d", len(dummies))
	}
	if len(n.Succs) != 2 {
		t.Errorf("split node fan-out = %d, want 2 dummies", len(n.Succs))
	}
	if got := net.Stats().DummyNodes; got != 2 {
		t.Errorf("dummy node count = %d", got)
	}
	after := runConflictSet(t, net, wmes)
	if !conflictSetsEqual(base, after) {
		t.Errorf("dummy insertion changed matches: %v vs %v", base, after)
	}
}

func TestInsertDummiesValidation(t *testing.T) {
	net := compileT(t, sharedFanoutProds)
	n := sharedJoin(t, net)
	if _, err := net.InsertDummies(n, 1); err == nil {
		t.Error("want error for parts=1")
	}
	if _, err := net.InsertDummies(n, 99); err == nil {
		t.Error("want error for parts > fan-out")
	}
}

func TestCopyAndConstrainPreservesMatches(t *testing.T) {
	// A pure cross-product join: no equality tests.
	srcs := []string{`(p cross (a ^x <u>) (b ^y <w>) --> (halt))`}
	var wmes []*ops5.WME
	id := 1
	for i := 0; i < 6; i++ {
		w := ops5.NewWME("a", "x", i)
		w.ID, w.TimeTag = id, id
		id++
		wmes = append(wmes, w)
		w2 := ops5.NewWME("b", "y", i)
		w2.ID, w2.TimeTag = id, id
		id++
		wmes = append(wmes, w2)
	}
	base := runConflictSet(t, compileT(t, srcs), wmes)
	if len(base) != 36 {
		t.Fatalf("baseline cross product = %d, want 36", len(base))
	}

	net := compileT(t, srcs)
	var join *Node
	for _, n := range net.Nodes {
		if n.Kind == KindJoin {
			join = n
		}
	}
	copies, err := net.CopyAndConstrain(join, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(copies) != 3 {
		t.Fatalf("copies = %d", len(copies))
	}
	after := runConflictSet(t, net, wmes)
	if !conflictSetsEqual(base, after) {
		t.Errorf("copy-and-constraint changed matches (%d vs %d)", len(base), len(after))
	}

	// Right memory must be partitioned: each copy accepts a disjoint
	// subset of wme ids.
	for id := 0; id < 10; id++ {
		w := ops5.NewWME("b", "y", 0)
		w.ID = id
		accepts := 0
		for _, c := range copies {
			if c.AcceptsRight(w) {
				accepts++
			}
		}
		if accepts != 1 {
			t.Errorf("wme %d accepted by %d copies, want exactly 1", id, accepts)
		}
	}
}

func TestCopyAndConstrainValidation(t *testing.T) {
	net := compileT(t, []string{`(p p1 (a ^x <v>) -(b ^x <v>) --> (halt))`})
	var neg *Node
	for _, n := range net.Nodes {
		if n.Kind == KindNegative {
			neg = n
		}
	}
	if _, err := net.CopyAndConstrain(neg, 2); err == nil {
		t.Error("copy-and-constraint on a negative node must fail")
	}
}

// TestTransformsRandomizedEquivalence checks on random workloads, with
// deletions, that each transformation preserves the conflict set.
func TestTransformsRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	srcs := sharedFanoutProds

	for trial := 0; trial < 10; trial++ {
		// Build a random add/delete schedule.
		type op struct {
			tag Tag
			w   *ops5.WME
		}
		var ops []op
		var live []*ops5.WME
		id := 1
		for step := 0; step < 60; step++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(live))
				ops = append(ops, op{Delete, live[i]})
				live = append(live[:i], live[i+1:]...)
			} else {
				var w *ops5.WME
				switch rng.Intn(3) {
				case 0:
					w = ops5.NewWME("a", "x", rng.Intn(3))
				case 1:
					w = ops5.NewWME("b", "x", rng.Intn(3))
				default:
					w = ops5.NewWME("c", "k", 1+rng.Intn(3))
				}
				w.ID, w.TimeTag = id, id
				id++
				ops = append(ops, op{Add, w})
				live = append(live, w)
			}
		}

		run := func(net *Network) map[string]bool {
			m := NewMatcher(net, MatcherOptions{NBuckets: 32})
			cs := map[string]bool{}
			for _, o := range ops {
				for _, ic := range m.Apply([]Change{{Tag: o.tag, WME: o.w}}) {
					if ic.Tag == Add {
						cs[ic.Key()] = true
					} else {
						delete(cs, ic.Key())
					}
				}
			}
			return cs
		}

		base := run(compileT(t, srcs))

		unshared := compileT(t, srcs)
		if _, err := unshared.UnshareFanoutAbove(1); err != nil {
			t.Fatal(err)
		}
		if got := run(unshared); !conflictSetsEqual(base, got) {
			t.Fatalf("trial %d: unsharing diverged: %v vs %v", trial, base, got)
		}

		dummied := compileT(t, srcs)
		if _, err := dummied.InsertDummies(sharedJoin(t, dummied), 3); err != nil {
			t.Fatal(err)
		}
		if got := run(dummied); !conflictSetsEqual(base, got) {
			t.Fatalf("trial %d: dummies diverged: %v vs %v", trial, base, got)
		}

		cc := compileT(t, srcs)
		if _, err := cc.CopyAndConstrain(sharedJoin(t, cc), 2); err != nil {
			t.Fatal(err)
		}
		if got := run(cc); !conflictSetsEqual(base, got) {
			t.Fatalf("trial %d: copy-and-constraint diverged: %v vs %v", trial, base, got)
		}

		globalUnshare := compileT(t, srcs)
		_ = globalUnshare
		fullyUnshared, err := CompileWith(mustParse(t, srcs...), CompileOptions{DisableSharing: true})
		if err != nil {
			t.Fatal(err)
		}
		if got := run(fullyUnshared); !conflictSetsEqual(base, got) {
			t.Fatalf("trial %d: DisableSharing diverged: %v vs %v", trial, base, got)
		}
	}
}

func TestFanoutProfile(t *testing.T) {
	net := compileT(t, sharedFanoutProds)
	prof := net.FanoutProfile()
	if len(prof) == 0 || prof[0] != 3 {
		t.Errorf("profile = %v, want leading 3", prof)
	}
	for i := 1; i < len(prof); i++ {
		if prof[i] > prof[i-1] {
			t.Errorf("profile not sorted descending: %v", prof)
		}
	}
}

func ExampleNetwork_Unshare() {
	prods, _ := ops5.ParseProduction(`(p o1 (a ^x <v>) (b ^x <v>) --> (halt))`)
	net, _ := Compile([]*ops5.Production{prods})
	fmt.Println(net.Stats().JoinNodes)
	// Output: 1
}
