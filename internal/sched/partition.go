// Package sched implements the hash-bucket-to-processor distribution
// strategies analysed in Section 5.2.2 of the paper — round-robin,
// random, and the off-line greedy (LPT) algorithm — together with the
// balls-in-bins probabilistic model of active-bucket distribution the
// paper uses to explain why uniform strategies fall short.
package sched

import (
	"fmt"
	"math/rand"
)

// Partition maps each hash-bucket index to a match-processor index in
// [0, P).
type Partition []int

// Procs returns the number of processors the partition targets
// (max value + 1); an empty partition has zero processors.
func (p Partition) Procs() int {
	max := -1
	for _, v := range p {
		if v > max {
			max = v
		}
	}
	return max + 1
}

// Validate checks every bucket is assigned a processor in [0, procs).
func (p Partition) Validate(procs int) error {
	for b, v := range p {
		if v < 0 || v >= procs {
			return fmt.Errorf("sched: bucket %d assigned to processor %d, want [0,%d)", b, v, procs)
		}
	}
	return nil
}

// RoundRobin assigns bucket i to processor i mod procs — the paper's
// default distribution.
func RoundRobin(nbuckets, procs int) Partition {
	p := make(Partition, nbuckets)
	for i := range p {
		p[i] = i % procs
	}
	return p
}

// Random assigns buckets to processors uniformly at random (seeded,
// reproducible) — the alternative the paper tried, which "failed to
// provide a significant improvement".
func Random(nbuckets, procs int, seed int64) Partition {
	rng := rand.New(rand.NewSource(seed))
	p := make(Partition, nbuckets)
	for i := range p {
		p[i] = rng.Intn(procs)
	}
	return p
}

// Greedy computes an off-line longest-processing-time-first assignment
// from known per-bucket loads (activation counts): buckets are placed
// heaviest-first onto the least-loaded processor. This is the paper's
// greedy algorithm; it needs the very trace knowledge a real system
// would lack, and so bounds what any distribution strategy could gain
// (the paper measured ≈1.4x).
func Greedy(load map[int]int, nbuckets, procs int) Partition {
	type bucketLoad struct{ bucket, load int }
	order := make([]bucketLoad, 0, len(load))
	for b, l := range load {
		order = append(order, bucketLoad{b, l})
	}
	// Heaviest first; ties by bucket index for determinism.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if b.load > a.load || (b.load == a.load && b.bucket < a.bucket) {
				order[j-1], order[j] = b, a
			} else {
				break
			}
		}
	}
	p := make(Partition, nbuckets)
	for i := range p {
		p[i] = -1
	}
	procLoad := make([]int, procs)
	for _, bl := range order {
		best := 0
		for i := 1; i < procs; i++ {
			if procLoad[i] < procLoad[best] {
				best = i
			}
		}
		p[bl.bucket] = best
		procLoad[best] += bl.load
	}
	// Inactive buckets round-robin over processors.
	next := 0
	for b := range p {
		if p[b] == -1 {
			p[b] = next % procs
			next++
		}
	}
	return p
}

// GreedyAggregate builds a single greedy partition from the load
// summed over all cycles. Unlike GreedyPerCycle it is realizable in
// practice (one static assignment, no per-cycle migration) — and it is
// exactly the strategy the paper's analysis predicts will disappoint:
// "the aggregated distribution of the tokens ... is more or less even;
// however, the distribution of tokens at the level of an individual
// MRA cycle is quite uneven" (Section 5.2.2). Balancing the aggregate
// does not balance any single cycle.
func GreedyAggregate(loads []map[int]int, nbuckets, procs int) Partition {
	total := map[int]int{}
	for _, load := range loads {
		for b, l := range load {
			total[b] += l
		}
	}
	return Greedy(total, nbuckets, procs)
}

// GreedyPerCycle builds one greedy partition per cycle from per-cycle
// bucket loads (trace.BucketLoad output). The paper's greedy run
// re-distributes buckets every cycle, which is why it is an upper
// bound rather than a practical scheme: Rete state (the tokens already
// stored in buckets) cannot actually be migrated for free.
func GreedyPerCycle(loads []map[int]int, nbuckets, procs int) []Partition {
	out := make([]Partition, len(loads))
	for i, load := range loads {
		out[i] = Greedy(load, nbuckets, procs)
	}
	return out
}

// LoadPerProc aggregates a load map under a partition: the total
// activations each processor would process.
func LoadPerProc(p Partition, load map[int]int, procs int) []int {
	out := make([]int, procs)
	for b, l := range load {
		if b >= 0 && b < len(p) {
			out[p[b]] += l
		}
	}
	return out
}

// Imbalance is max/mean of per-processor load (1.0 = perfectly even);
// it is the quantity the greedy distribution minimizes.
func Imbalance(perProc []int) float64 {
	max, sum := 0, 0
	for _, l := range perProc {
		if l > max {
			max = l
		}
		sum += l
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(perProc))
	return float64(max) / mean
}
