package sched

import (
	"fmt"
	"strings"
)

// Strategy is a named bucket-distribution policy. It unifies the
// free-function strategies (RoundRobin, Random, Greedy/GreedyAggregate,
// GreedyPerCycle) behind one interface so the sweep engine and the
// CLIs can select a policy by name instead of switching on strings.
type Strategy interface {
	// Name identifies the strategy in sweep keys and CLI flags.
	Name() string
	// Assign produces a static bucket-to-processor map. load is the
	// per-cycle bucket load (trace.BucketLoad output); uniform
	// strategies ignore it.
	Assign(load []map[int]int, nbuckets, procs int) Partition
}

// PerCycleStrategy is a Strategy that can also redistribute buckets
// every cycle — the paper's off-line greedy oracle. Callers that can
// apply per-cycle partitions should type-assert to this interface.
type PerCycleStrategy interface {
	Strategy
	// AssignPerCycle produces one partition per cycle.
	AssignPerCycle(load []map[int]int, nbuckets, procs int) []Partition
}

// RoundRobinStrategy is the paper's default distribution.
type RoundRobinStrategy struct{}

func (RoundRobinStrategy) Name() string { return "round-robin" }

func (RoundRobinStrategy) Assign(_ []map[int]int, nbuckets, procs int) Partition {
	return RoundRobin(nbuckets, procs)
}

// RandomStrategy distributes buckets uniformly at random (seeded,
// reproducible).
type RandomStrategy struct{ Seed int64 }

func (RandomStrategy) Name() string { return "random" }

func (s RandomStrategy) Assign(_ []map[int]int, nbuckets, procs int) Partition {
	return Random(nbuckets, procs, s.Seed)
}

// GreedyAggregateStrategy balances the load summed over all cycles
// with the greedy (LPT) algorithm — the realizable static variant.
type GreedyAggregateStrategy struct{}

func (GreedyAggregateStrategy) Name() string { return "greedy-aggregate" }

func (GreedyAggregateStrategy) Assign(load []map[int]int, nbuckets, procs int) Partition {
	return GreedyAggregate(load, nbuckets, procs)
}

// GreedyPerCycleStrategy is the paper's per-cycle greedy oracle. Its
// static Assign falls back to the aggregate balance for callers that
// cannot migrate buckets between cycles.
type GreedyPerCycleStrategy struct{}

func (GreedyPerCycleStrategy) Name() string { return "greedy-per-cycle" }

func (GreedyPerCycleStrategy) Assign(load []map[int]int, nbuckets, procs int) Partition {
	return GreedyAggregate(load, nbuckets, procs)
}

func (GreedyPerCycleStrategy) AssignPerCycle(load []map[int]int, nbuckets, procs int) []Partition {
	return GreedyPerCycle(load, nbuckets, procs)
}

// Strategies lists the built-in strategies in presentation order,
// with the given seed for the random policy.
func Strategies(seed int64) []Strategy {
	return []Strategy{
		RoundRobinStrategy{},
		RandomStrategy{Seed: seed},
		GreedyAggregateStrategy{},
		GreedyPerCycleStrategy{},
		AdaptiveStrategy{},
	}
}

// StrategyNames lists the canonical names StrategyByName accepts.
func StrategyNames() []string {
	names := make([]string, 0, 5)
	for _, s := range Strategies(0) {
		names = append(names, s.Name())
	}
	return names
}

// StrategyByName resolves a distribution strategy from a CLI flag or
// sweep spec. seed only affects the random strategy. Historical
// aliases ("roundrobin", "greedy") are accepted.
func StrategyByName(name string, seed int64) (Strategy, error) {
	switch name {
	case "round-robin", "roundrobin":
		return RoundRobinStrategy{}, nil
	case "random":
		return RandomStrategy{Seed: seed}, nil
	case "greedy-aggregate", "aggregate":
		return GreedyAggregateStrategy{}, nil
	case "greedy-per-cycle", "greedy":
		return GreedyPerCycleStrategy{}, nil
	case "adaptive":
		return AdaptiveStrategy{}, nil
	}
	return nil, fmt.Errorf("sched: unknown strategy %q (have %s)", name, strings.Join(StrategyNames(), ", "))
}
