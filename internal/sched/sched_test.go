package sched

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRoundRobin(t *testing.T) {
	p := RoundRobin(8, 3)
	want := Partition{0, 1, 2, 0, 1, 2, 0, 1}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("p = %v", p)
		}
	}
	if err := p.Validate(3); err != nil {
		t.Fatal(err)
	}
	if p.Procs() != 3 {
		t.Errorf("Procs = %d", p.Procs())
	}
}

func TestRandomPartitionValidAndSeeded(t *testing.T) {
	a := Random(128, 7, 99)
	b := Random(128, 7, 99)
	c := Random(128, 7, 100)
	if err := a.Validate(7); err != nil {
		t.Fatal(err)
	}
	same := true
	diff := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed should reproduce partition")
	}
	if !diff {
		t.Error("different seeds should (almost surely) differ")
	}
}

func TestGreedyBalancesBetterThanRoundRobin(t *testing.T) {
	// Skewed load: active buckets clustered on round-robin residue 0.
	load := map[int]int{}
	for i := 0; i < 16; i++ {
		load[i*4] = 10 // all on proc 0 under round-robin with P=4
	}
	nb, procs := 64, 4
	rr := LoadPerProc(RoundRobin(nb, procs), load, procs)
	gr := LoadPerProc(Greedy(load, nb, procs), load, procs)
	if Imbalance(gr) > Imbalance(rr) {
		t.Errorf("greedy imbalance %v worse than round-robin %v", Imbalance(gr), Imbalance(rr))
	}
	if Imbalance(gr) != 1.0 {
		t.Errorf("greedy should balance equal-load buckets perfectly, got %v", Imbalance(gr))
	}
}

func TestGreedyIsNearOptimal(t *testing.T) {
	// LPT guarantee: max load <= (4/3 - 1/3m) * OPT. With unit jobs
	// it is optimal; check a mixed case stays within the bound.
	load := map[int]int{0: 7, 1: 5, 2: 4, 3: 4, 4: 3, 5: 3, 6: 2}
	procs := 3
	p := Greedy(load, 8, procs)
	per := LoadPerProc(p, load, procs)
	max := 0
	total := 0
	for _, l := range per {
		if l > max {
			max = l
		}
		total += l
	}
	opt := int(math.Ceil(float64(total) / float64(procs))) // lower bound
	if float64(max) > (4.0/3.0)*float64(opt)+1 {
		t.Errorf("greedy max %d too far above bound %d (per=%v)", max, opt, per)
	}
}

func TestGreedyAssignsAllBuckets(t *testing.T) {
	f := func(seed int64) bool {
		load := map[int]int{int(seed%32 + 32): 5, 3: 2}
		p := Greedy(load, 64, 4)
		return p.Validate(4) == nil && len(p) == 64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGreedyPerCycle(t *testing.T) {
	loads := []map[int]int{{0: 5, 1: 5}, {2: 9}}
	ps := GreedyPerCycle(loads, 8, 2)
	if len(ps) != 2 {
		t.Fatalf("partitions = %d", len(ps))
	}
	per0 := LoadPerProc(ps[0], loads[0], 2)
	if per0[0] != 5 || per0[1] != 5 {
		t.Errorf("cycle 0 load = %v", per0)
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance([]int{5, 5, 5}); got != 1.0 {
		t.Errorf("even imbalance = %v", got)
	}
	if got := Imbalance([]int{15, 0, 0}); got != 3.0 {
		t.Errorf("skew imbalance = %v", got)
	}
	if got := Imbalance([]int{0, 0}); got != 1.0 {
		t.Errorf("zero-load imbalance = %v", got)
	}
}

// TestModelConclusion1: completely even and totally uneven
// distributions are both rare (< 1%) at paper-like scale.
func TestModelConclusion1(t *testing.T) {
	m := Model{Buckets: 512, Active: 64, Procs: 16}
	if p := m.PEven(); p >= 0.01 {
		t.Errorf("P(even) = %v, want < 1%%", p)
	}
	if p := m.PAllOnOne(); p >= 1e-10 {
		t.Errorf("P(all-on-one) = %v, want tiny", p)
	}
	mc := m.MonteCarlo(2000, 1)
	if mc.PEvenObserved >= 0.01 {
		t.Errorf("observed P(even) = %v, want < 1%%", mc.PEvenObserved)
	}
	// The expected distribution is in between: max load above mean but
	// far below total.
	mean := float64(m.Active) / float64(m.Procs)
	if mc.EMaxLoad <= mean || mc.EMaxLoad >= float64(m.Active) {
		t.Errorf("E[max] = %v outside (mean=%v, total=%v)", mc.EMaxLoad, mean, m.Active)
	}
}

// TestModelConclusion2: increasing the proportion of active buckets
// makes the distribution more even (speedup bound closer to P).
func TestModelConclusion2(t *testing.T) {
	procs := 16
	sparse := Model{Buckets: 512, Active: 32, Procs: procs}.MonteCarlo(2000, 2)
	dense := Model{Buckets: 512, Active: 384, Procs: procs}.MonteCarlo(2000, 2)
	sparseEff := sparse.SpeedupBound / float64(procs)
	denseEff := dense.SpeedupBound / float64(procs)
	if denseEff <= sparseEff {
		t.Errorf("dense efficiency %v should exceed sparse %v", denseEff, sparseEff)
	}
}

// TestModelConclusion3: with more processors, the distribution gets
// relatively more uneven, so parallel efficiency drops.
func TestModelConclusion3(t *testing.T) {
	eff := func(procs int) float64 {
		m := Model{Buckets: 512, Active: 64, Procs: procs}
		return m.MonteCarlo(2000, 3).SpeedupBound / float64(procs)
	}
	e4, e16, e64 := eff(4), eff(16), eff(64)
	if !(e4 > e16 && e16 > e64) {
		t.Errorf("efficiency should fall with processors: %v, %v, %v", e4, e16, e64)
	}
}

func TestModelDegenerateCases(t *testing.T) {
	if p := (Model{Buckets: 8, Active: 0, Procs: 4}).PEven(); p != 1 {
		t.Errorf("empty cycle P(even) = %v", p)
	}
	if got := (Model{Buckets: 8, Active: 0, Procs: 4}).MonteCarlo(10, 1).SpeedupBound; got != 1 {
		t.Errorf("empty cycle speedup bound = %v", got)
	}
	if p := (Model{Buckets: 8, Active: 5, Procs: 3}).PEven(); p != 0 {
		t.Errorf("indivisible P(even) = %v, want 0", p)
	}
	// Single processor: always "even" in the trivial sense.
	mc := Model{Buckets: 8, Active: 8, Procs: 1}.MonteCarlo(100, 4)
	if mc.EMaxLoad != 8 || mc.SpeedupBound != 1 {
		t.Errorf("P=1 result = %+v", mc)
	}
}

func TestPEvenMatchesMonteCarloRandomAssignment(t *testing.T) {
	// For small numbers the analytic multinomial and a direct
	// simulation of independent placement agree.
	m := Model{Buckets: 64, Active: 4, Procs: 2}
	want := m.PEven() // C(4,2)/2^4 = 6/16 = 0.375
	if math.Abs(want-0.375) > 1e-9 {
		t.Fatalf("analytic P(even) = %v, want 0.375", want)
	}
}

func TestGreedyAggregateVsPerCycle(t *testing.T) {
	// Two cycles whose hot buckets alternate: aggregate load is even,
	// per-cycle load is not. Balancing the aggregate cannot balance
	// either cycle — the paper's Section 5.2.2 observation.
	nb, procs := 16, 4
	cycleA := map[int]int{0: 10, 1: 10, 2: 10, 3: 10} // buckets 0-3 hot
	cycleB := map[int]int{4: 10, 5: 10, 6: 10, 7: 10} // buckets 4-7 hot
	loads := []map[int]int{cycleA, cycleB}

	agg := GreedyAggregate(loads, nb, procs)
	per := GreedyPerCycle(loads, nb, procs)

	// The aggregate partition balances the sum perfectly...
	total := map[int]int{}
	for _, l := range loads {
		for b, v := range l {
			total[b] += v
		}
	}
	if im := Imbalance(LoadPerProc(agg, total, procs)); im != 1.0 {
		t.Errorf("aggregate imbalance on total = %v, want 1.0", im)
	}
	// ...and the per-cycle oracle balances each cycle perfectly...
	for i, l := range loads {
		if im := Imbalance(LoadPerProc(per[i], l, procs)); im != 1.0 {
			t.Errorf("oracle imbalance on cycle %d = %v, want 1.0", i, im)
		}
	}
	// The interesting comparison: on INDIVIDUAL cycles the aggregate
	// partition may or may not balance; the oracle is never worse.
	for i, l := range loads {
		aggIm := Imbalance(LoadPerProc(agg, l, procs))
		perIm := Imbalance(LoadPerProc(per[i], l, procs))
		if perIm > aggIm {
			t.Errorf("cycle %d: oracle imbalance %v worse than aggregate %v", i, perIm, aggIm)
		}
	}
}
