package sched

import (
	"reflect"
	"testing"
)

func TestRebalanceEnabled(t *testing.T) {
	if (Rebalance{}).Enabled() {
		t.Error("zero Rebalance reports enabled")
	}
	if !(Rebalance{Threshold: 1.2}).Enabled() {
		t.Error("Threshold 1.2 reports disabled")
	}
	if !DefaultRebalance().Enabled() {
		t.Error("DefaultRebalance reports disabled")
	}
}

// TestBalancerMigratesHotBucket drives a skewed load (one bucket
// dominating a round-robin partition) and checks the balancer moves
// hot buckets off the overloaded worker, improving imbalance.
func TestBalancerMigratesHotBucket(t *testing.T) {
	const nbuckets, procs = 8, 2
	init := RoundRobin(nbuckets, procs)
	bl := NewBalancer(Rebalance{Threshold: 1.2, MinInterval: 1}, init, procs)
	// Buckets 0 and 2 are hot; both live on worker 0 under round-robin.
	bl.Observe(0, 100)
	bl.Observe(2, 90)
	bl.Observe(1, 5)
	before := bl.Imbalance()
	part, ok := bl.EndCycle()
	if !ok {
		t.Fatalf("no migration for imbalance %.2f", before)
	}
	if part[0] == part[2] {
		t.Errorf("hot buckets 0 and 2 still share worker %d: %v", part[0], part)
	}
	if got := bl.Imbalance(); got >= before {
		t.Errorf("imbalance did not improve: %.3f -> %.3f", before, got)
	}
	// Cold buckets must not churn.
	for b := 3; b < nbuckets; b++ {
		if part[b] != init[b] {
			t.Errorf("cold bucket %d moved %d -> %d", b, init[b], part[b])
		}
	}
}

func TestBalancerRespectsMinInterval(t *testing.T) {
	init := RoundRobin(8, 2)
	bl := NewBalancer(Rebalance{Threshold: 1.1, MinInterval: 3}, init, 2)
	migrations := 0
	for cycle := 0; cycle < 9; cycle++ {
		// Persistent skew: worker 0's buckets get all the load, and the
		// hot bucket alternates so a fresh replan is always profitable.
		bl.Observe((cycle%2)*2, 100)
		bl.Observe((cycle%2)*2+4, 60)
		if _, ok := bl.EndCycle(); ok {
			migrations++
		}
	}
	if migrations > 3 {
		t.Errorf("%d migrations in 9 cycles with MinInterval=3", migrations)
	}
	if migrations == 0 {
		t.Error("no migrations at all under persistent skew")
	}
}

func TestBalancerMaxMoves(t *testing.T) {
	init := make(Partition, 8) // everything on worker 0
	bl := NewBalancer(Rebalance{Threshold: 1.01, MinInterval: 1, MaxMoves: 1}, init, 4)
	for b := 0; b < 8; b++ {
		bl.Observe(b, int64(10+b))
	}
	part, ok := bl.EndCycle()
	if !ok {
		t.Fatal("no migration despite maximal skew")
	}
	if moves := PartitionMoves(init, part); len(moves) != 1 {
		t.Errorf("MaxMoves=1 migrated %d buckets: %v", len(moves), moves)
	}
}

func TestBalancerIdleNeverMigrates(t *testing.T) {
	bl := NewBalancer(Rebalance{Threshold: 1.1, MinInterval: 1}, RoundRobin(16, 4), 4)
	for cycle := 0; cycle < 10; cycle++ {
		if part, ok := bl.EndCycle(); ok {
			t.Fatalf("idle balancer migrated at cycle %d: %v", cycle, part)
		}
	}
}

func TestBalancerHysteresisBlocksMarginalPlans(t *testing.T) {
	// Two buckets, two workers, both buckets on worker 0: moving one
	// improves imbalance from 2.0 to ~1.05 — blocked only by an
	// enormous hysteresis.
	init := Partition{0, 0}
	bl := NewBalancer(Rebalance{Threshold: 1.1, Hysteresis: 5, MinInterval: 1}, init, 2)
	bl.Observe(0, 100)
	bl.Observe(1, 95)
	if part, ok := bl.EndCycle(); ok {
		t.Fatalf("hysteresis 5 allowed migration: %v", part)
	}
	bl2 := NewBalancer(Rebalance{Threshold: 1.1, Hysteresis: 0.05, MinInterval: 1}, init, 2)
	bl2.Observe(0, 100)
	bl2.Observe(1, 95)
	if _, ok := bl2.EndCycle(); !ok {
		t.Fatal("hysteresis 0.05 blocked a halving of imbalance")
	}
}

// TestBalancerDeterministic pins that two balancers fed the identical
// observation sequence plan identical migrations — the property the
// cross-engine parity oracle relies on.
func TestBalancerDeterministic(t *testing.T) {
	mk := func() []Partition {
		bl := NewBalancer(Rebalance{Threshold: 1.2, MinInterval: 2}, RoundRobin(32, 4), 4)
		var parts []Partition
		for cycle := 0; cycle < 40; cycle++ {
			for b := 0; b < 32; b++ {
				bl.Observe(b, int64((b*7+cycle*13)%11))
			}
			bl.Observe(cycle%32, 200)
			if p, ok := bl.EndCycle(); ok {
				parts = append(parts, p)
			}
		}
		return parts
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("balancer plans diverged:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Error("rotating hot spot produced no migrations")
	}
}

func TestPartitionMoves(t *testing.T) {
	old := Partition{0, 1, 0, 1}
	new := Partition{0, 0, 1, 1}
	if got := PartitionMoves(old, new); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("PartitionMoves = %v, want [1 2]", got)
	}
	if got := PartitionMoves(old, old); got != nil {
		t.Errorf("PartitionMoves(same) = %v, want nil", got)
	}
}

func TestAdaptiveStrategyRegistration(t *testing.T) {
	s, err := StrategyByName("adaptive", 0)
	if err != nil {
		t.Fatalf("StrategyByName(adaptive): %v", err)
	}
	rs, ok := s.(RebalanceStrategy)
	if !ok {
		t.Fatal("adaptive does not implement RebalanceStrategy")
	}
	if !rs.RebalanceConfig().Enabled() {
		t.Error("adaptive zero value has disabled rebalance config")
	}
	if got := (AdaptiveStrategy{Rebalance: Rebalance{Threshold: 9}}).RebalanceConfig().Threshold; got != 9 {
		t.Errorf("explicit knobs not honoured: threshold %v", got)
	}
	if p := s.Assign(nil, 8, 2); !reflect.DeepEqual(p, RoundRobin(8, 2)) {
		t.Errorf("adaptive static Assign = %v, want round-robin", p)
	}
	found := false
	for _, name := range StrategyNames() {
		if name == "adaptive" {
			found = true
		}
	}
	if !found {
		t.Errorf("adaptive missing from StrategyNames: %v", StrategyNames())
	}
}
